# Empty compiler generated dependencies file for strassen_eigen.
# This may be replaced when dependencies are built.
