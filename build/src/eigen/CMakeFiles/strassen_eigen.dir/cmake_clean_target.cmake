file(REMOVE_RECURSE
  "libstrassen_eigen.a"
)
