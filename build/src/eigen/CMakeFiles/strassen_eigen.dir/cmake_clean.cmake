file(REMOVE_RECURSE
  "CMakeFiles/strassen_eigen.dir/householder_qr.cpp.o"
  "CMakeFiles/strassen_eigen.dir/householder_qr.cpp.o.d"
  "CMakeFiles/strassen_eigen.dir/isda.cpp.o"
  "CMakeFiles/strassen_eigen.dir/isda.cpp.o.d"
  "CMakeFiles/strassen_eigen.dir/jacobi.cpp.o"
  "CMakeFiles/strassen_eigen.dir/jacobi.cpp.o.d"
  "libstrassen_eigen.a"
  "libstrassen_eigen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strassen_eigen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
