# Empty dependencies file for strassen_compare.
# This may be replaced when dependencies are built.
