
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compare/dgemms_like.cpp" "src/compare/CMakeFiles/strassen_compare.dir/dgemms_like.cpp.o" "gcc" "src/compare/CMakeFiles/strassen_compare.dir/dgemms_like.cpp.o.d"
  "/root/repo/src/compare/dgemmw_like.cpp" "src/compare/CMakeFiles/strassen_compare.dir/dgemmw_like.cpp.o" "gcc" "src/compare/CMakeFiles/strassen_compare.dir/dgemmw_like.cpp.o.d"
  "/root/repo/src/compare/sgemms_like.cpp" "src/compare/CMakeFiles/strassen_compare.dir/sgemms_like.cpp.o" "gcc" "src/compare/CMakeFiles/strassen_compare.dir/sgemms_like.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/strassen_core.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/strassen_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/strassen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
