file(REMOVE_RECURSE
  "libstrassen_compare.a"
)
