file(REMOVE_RECURSE
  "CMakeFiles/strassen_compare.dir/dgemms_like.cpp.o"
  "CMakeFiles/strassen_compare.dir/dgemms_like.cpp.o.d"
  "CMakeFiles/strassen_compare.dir/dgemmw_like.cpp.o"
  "CMakeFiles/strassen_compare.dir/dgemmw_like.cpp.o.d"
  "CMakeFiles/strassen_compare.dir/sgemms_like.cpp.o"
  "CMakeFiles/strassen_compare.dir/sgemms_like.cpp.o.d"
  "libstrassen_compare.a"
  "libstrassen_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strassen_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
