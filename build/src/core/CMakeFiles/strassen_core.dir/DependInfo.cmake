
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/add_kernels.cpp" "src/core/CMakeFiles/strassen_core.dir/add_kernels.cpp.o" "gcc" "src/core/CMakeFiles/strassen_core.dir/add_kernels.cpp.o.d"
  "/root/repo/src/core/cabi.cpp" "src/core/CMakeFiles/strassen_core.dir/cabi.cpp.o" "gcc" "src/core/CMakeFiles/strassen_core.dir/cabi.cpp.o.d"
  "/root/repo/src/core/cutoff.cpp" "src/core/CMakeFiles/strassen_core.dir/cutoff.cpp.o" "gcc" "src/core/CMakeFiles/strassen_core.dir/cutoff.cpp.o.d"
  "/root/repo/src/core/dgefmm.cpp" "src/core/CMakeFiles/strassen_core.dir/dgefmm.cpp.o" "gcc" "src/core/CMakeFiles/strassen_core.dir/dgefmm.cpp.o.d"
  "/root/repo/src/core/gemm_backend.cpp" "src/core/CMakeFiles/strassen_core.dir/gemm_backend.cpp.o" "gcc" "src/core/CMakeFiles/strassen_core.dir/gemm_backend.cpp.o.d"
  "/root/repo/src/core/padding.cpp" "src/core/CMakeFiles/strassen_core.dir/padding.cpp.o" "gcc" "src/core/CMakeFiles/strassen_core.dir/padding.cpp.o.d"
  "/root/repo/src/core/peeling.cpp" "src/core/CMakeFiles/strassen_core.dir/peeling.cpp.o" "gcc" "src/core/CMakeFiles/strassen_core.dir/peeling.cpp.o.d"
  "/root/repo/src/core/strassen_original.cpp" "src/core/CMakeFiles/strassen_core.dir/strassen_original.cpp.o" "gcc" "src/core/CMakeFiles/strassen_core.dir/strassen_original.cpp.o.d"
  "/root/repo/src/core/winograd.cpp" "src/core/CMakeFiles/strassen_core.dir/winograd.cpp.o" "gcc" "src/core/CMakeFiles/strassen_core.dir/winograd.cpp.o.d"
  "/root/repo/src/core/workspace.cpp" "src/core/CMakeFiles/strassen_core.dir/workspace.cpp.o" "gcc" "src/core/CMakeFiles/strassen_core.dir/workspace.cpp.o.d"
  "/root/repo/src/core/zgefmm.cpp" "src/core/CMakeFiles/strassen_core.dir/zgefmm.cpp.o" "gcc" "src/core/CMakeFiles/strassen_core.dir/zgefmm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blas/CMakeFiles/strassen_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/strassen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
