# Empty dependencies file for strassen_core.
# This may be replaced when dependencies are built.
