file(REMOVE_RECURSE
  "CMakeFiles/strassen_core.dir/add_kernels.cpp.o"
  "CMakeFiles/strassen_core.dir/add_kernels.cpp.o.d"
  "CMakeFiles/strassen_core.dir/cabi.cpp.o"
  "CMakeFiles/strassen_core.dir/cabi.cpp.o.d"
  "CMakeFiles/strassen_core.dir/cutoff.cpp.o"
  "CMakeFiles/strassen_core.dir/cutoff.cpp.o.d"
  "CMakeFiles/strassen_core.dir/dgefmm.cpp.o"
  "CMakeFiles/strassen_core.dir/dgefmm.cpp.o.d"
  "CMakeFiles/strassen_core.dir/gemm_backend.cpp.o"
  "CMakeFiles/strassen_core.dir/gemm_backend.cpp.o.d"
  "CMakeFiles/strassen_core.dir/padding.cpp.o"
  "CMakeFiles/strassen_core.dir/padding.cpp.o.d"
  "CMakeFiles/strassen_core.dir/peeling.cpp.o"
  "CMakeFiles/strassen_core.dir/peeling.cpp.o.d"
  "CMakeFiles/strassen_core.dir/strassen_original.cpp.o"
  "CMakeFiles/strassen_core.dir/strassen_original.cpp.o.d"
  "CMakeFiles/strassen_core.dir/winograd.cpp.o"
  "CMakeFiles/strassen_core.dir/winograd.cpp.o.d"
  "CMakeFiles/strassen_core.dir/workspace.cpp.o"
  "CMakeFiles/strassen_core.dir/workspace.cpp.o.d"
  "CMakeFiles/strassen_core.dir/zgefmm.cpp.o"
  "CMakeFiles/strassen_core.dir/zgefmm.cpp.o.d"
  "libstrassen_core.a"
  "libstrassen_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strassen_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
