file(REMOVE_RECURSE
  "libstrassen_core.a"
)
