file(REMOVE_RECURSE
  "CMakeFiles/strassen_support.dir/matrix.cpp.o"
  "CMakeFiles/strassen_support.dir/matrix.cpp.o.d"
  "CMakeFiles/strassen_support.dir/opcount.cpp.o"
  "CMakeFiles/strassen_support.dir/opcount.cpp.o.d"
  "CMakeFiles/strassen_support.dir/random.cpp.o"
  "CMakeFiles/strassen_support.dir/random.cpp.o.d"
  "CMakeFiles/strassen_support.dir/stats.cpp.o"
  "CMakeFiles/strassen_support.dir/stats.cpp.o.d"
  "CMakeFiles/strassen_support.dir/table.cpp.o"
  "CMakeFiles/strassen_support.dir/table.cpp.o.d"
  "libstrassen_support.a"
  "libstrassen_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strassen_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
