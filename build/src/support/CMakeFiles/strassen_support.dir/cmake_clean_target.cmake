file(REMOVE_RECURSE
  "libstrassen_support.a"
)
