# Empty compiler generated dependencies file for strassen_support.
# This may be replaced when dependencies are built.
