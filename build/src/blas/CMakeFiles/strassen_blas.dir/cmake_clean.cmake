file(REMOVE_RECURSE
  "CMakeFiles/strassen_blas.dir/gemm.cpp.o"
  "CMakeFiles/strassen_blas.dir/gemm.cpp.o.d"
  "CMakeFiles/strassen_blas.dir/kernels.cpp.o"
  "CMakeFiles/strassen_blas.dir/kernels.cpp.o.d"
  "CMakeFiles/strassen_blas.dir/level1.cpp.o"
  "CMakeFiles/strassen_blas.dir/level1.cpp.o.d"
  "CMakeFiles/strassen_blas.dir/level2.cpp.o"
  "CMakeFiles/strassen_blas.dir/level2.cpp.o.d"
  "CMakeFiles/strassen_blas.dir/machine.cpp.o"
  "CMakeFiles/strassen_blas.dir/machine.cpp.o.d"
  "CMakeFiles/strassen_blas.dir/trsm.cpp.o"
  "CMakeFiles/strassen_blas.dir/trsm.cpp.o.d"
  "libstrassen_blas.a"
  "libstrassen_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strassen_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
