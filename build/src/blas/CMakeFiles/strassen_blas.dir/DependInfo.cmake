
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blas/gemm.cpp" "src/blas/CMakeFiles/strassen_blas.dir/gemm.cpp.o" "gcc" "src/blas/CMakeFiles/strassen_blas.dir/gemm.cpp.o.d"
  "/root/repo/src/blas/kernels.cpp" "src/blas/CMakeFiles/strassen_blas.dir/kernels.cpp.o" "gcc" "src/blas/CMakeFiles/strassen_blas.dir/kernels.cpp.o.d"
  "/root/repo/src/blas/level1.cpp" "src/blas/CMakeFiles/strassen_blas.dir/level1.cpp.o" "gcc" "src/blas/CMakeFiles/strassen_blas.dir/level1.cpp.o.d"
  "/root/repo/src/blas/level2.cpp" "src/blas/CMakeFiles/strassen_blas.dir/level2.cpp.o" "gcc" "src/blas/CMakeFiles/strassen_blas.dir/level2.cpp.o.d"
  "/root/repo/src/blas/machine.cpp" "src/blas/CMakeFiles/strassen_blas.dir/machine.cpp.o" "gcc" "src/blas/CMakeFiles/strassen_blas.dir/machine.cpp.o.d"
  "/root/repo/src/blas/trsm.cpp" "src/blas/CMakeFiles/strassen_blas.dir/trsm.cpp.o" "gcc" "src/blas/CMakeFiles/strassen_blas.dir/trsm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/strassen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
