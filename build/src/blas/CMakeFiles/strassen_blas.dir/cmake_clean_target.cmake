file(REMOVE_RECURSE
  "libstrassen_blas.a"
)
