# Empty dependencies file for strassen_blas.
# This may be replaced when dependencies are built.
