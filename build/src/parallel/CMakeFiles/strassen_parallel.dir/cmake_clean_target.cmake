file(REMOVE_RECURSE
  "libstrassen_parallel.a"
)
