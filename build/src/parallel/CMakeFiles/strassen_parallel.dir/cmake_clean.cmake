file(REMOVE_RECURSE
  "CMakeFiles/strassen_parallel.dir/parallel_gemm.cpp.o"
  "CMakeFiles/strassen_parallel.dir/parallel_gemm.cpp.o.d"
  "CMakeFiles/strassen_parallel.dir/parallel_strassen.cpp.o"
  "CMakeFiles/strassen_parallel.dir/parallel_strassen.cpp.o.d"
  "CMakeFiles/strassen_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/strassen_parallel.dir/thread_pool.cpp.o.d"
  "libstrassen_parallel.a"
  "libstrassen_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strassen_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
