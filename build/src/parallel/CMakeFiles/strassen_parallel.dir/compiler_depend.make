# Empty compiler generated dependencies file for strassen_parallel.
# This may be replaced when dependencies are built.
