file(REMOVE_RECURSE
  "CMakeFiles/strassen_solver.dir/lu.cpp.o"
  "CMakeFiles/strassen_solver.dir/lu.cpp.o.d"
  "libstrassen_solver.a"
  "libstrassen_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strassen_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
