file(REMOVE_RECURSE
  "libstrassen_solver.a"
)
