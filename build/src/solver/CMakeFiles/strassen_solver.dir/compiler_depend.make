# Empty compiler generated dependencies file for strassen_solver.
# This may be replaced when dependencies are built.
