file(REMOVE_RECURSE
  "libstrassen_model.a"
)
