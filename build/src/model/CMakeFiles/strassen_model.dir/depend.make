# Empty dependencies file for strassen_model.
# This may be replaced when dependencies are built.
