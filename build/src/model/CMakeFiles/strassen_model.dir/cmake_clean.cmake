file(REMOVE_RECURSE
  "CMakeFiles/strassen_model.dir/cutoff_theory.cpp.o"
  "CMakeFiles/strassen_model.dir/cutoff_theory.cpp.o.d"
  "CMakeFiles/strassen_model.dir/opmodel.cpp.o"
  "CMakeFiles/strassen_model.dir/opmodel.cpp.o.d"
  "libstrassen_model.a"
  "libstrassen_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strassen_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
