
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/cutoff_theory.cpp" "src/model/CMakeFiles/strassen_model.dir/cutoff_theory.cpp.o" "gcc" "src/model/CMakeFiles/strassen_model.dir/cutoff_theory.cpp.o.d"
  "/root/repo/src/model/opmodel.cpp" "src/model/CMakeFiles/strassen_model.dir/opmodel.cpp.o" "gcc" "src/model/CMakeFiles/strassen_model.dir/opmodel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/strassen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
