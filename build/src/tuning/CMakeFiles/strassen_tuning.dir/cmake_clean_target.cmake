file(REMOVE_RECURSE
  "libstrassen_tuning.a"
)
