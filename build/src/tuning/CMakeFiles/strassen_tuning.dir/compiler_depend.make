# Empty compiler generated dependencies file for strassen_tuning.
# This may be replaced when dependencies are built.
