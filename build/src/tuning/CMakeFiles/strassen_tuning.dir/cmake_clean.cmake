file(REMOVE_RECURSE
  "CMakeFiles/strassen_tuning.dir/cost_model.cpp.o"
  "CMakeFiles/strassen_tuning.dir/cost_model.cpp.o.d"
  "CMakeFiles/strassen_tuning.dir/crossover.cpp.o"
  "CMakeFiles/strassen_tuning.dir/crossover.cpp.o.d"
  "CMakeFiles/strassen_tuning.dir/persist.cpp.o"
  "CMakeFiles/strassen_tuning.dir/persist.cpp.o.d"
  "libstrassen_tuning.a"
  "libstrassen_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strassen_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
