
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuning/cost_model.cpp" "src/tuning/CMakeFiles/strassen_tuning.dir/cost_model.cpp.o" "gcc" "src/tuning/CMakeFiles/strassen_tuning.dir/cost_model.cpp.o.d"
  "/root/repo/src/tuning/crossover.cpp" "src/tuning/CMakeFiles/strassen_tuning.dir/crossover.cpp.o" "gcc" "src/tuning/CMakeFiles/strassen_tuning.dir/crossover.cpp.o.d"
  "/root/repo/src/tuning/persist.cpp" "src/tuning/CMakeFiles/strassen_tuning.dir/persist.cpp.o" "gcc" "src/tuning/CMakeFiles/strassen_tuning.dir/persist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/strassen_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/strassen_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/strassen_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/strassen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
