# Empty compiler generated dependencies file for bench_tab6_eigensolver.
# This may be replaced when dependencies are built.
