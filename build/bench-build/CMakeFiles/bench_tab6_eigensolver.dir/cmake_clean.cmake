file(REMOVE_RECURSE
  "../bench/bench_tab6_eigensolver"
  "../bench/bench_tab6_eigensolver.pdb"
  "CMakeFiles/bench_tab6_eigensolver.dir/bench_tab6_eigensolver.cpp.o"
  "CMakeFiles/bench_tab6_eigensolver.dir/bench_tab6_eigensolver.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab6_eigensolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
