file(REMOVE_RECURSE
  "../bench/bench_ablation_odd_sizes"
  "../bench/bench_ablation_odd_sizes.pdb"
  "CMakeFiles/bench_ablation_odd_sizes.dir/bench_ablation_odd_sizes.cpp.o"
  "CMakeFiles/bench_ablation_odd_sizes.dir/bench_ablation_odd_sizes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_odd_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
