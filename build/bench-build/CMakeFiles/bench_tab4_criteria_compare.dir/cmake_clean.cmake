file(REMOVE_RECURSE
  "../bench/bench_tab4_criteria_compare"
  "../bench/bench_tab4_criteria_compare.pdb"
  "CMakeFiles/bench_tab4_criteria_compare.dir/bench_tab4_criteria_compare.cpp.o"
  "CMakeFiles/bench_tab4_criteria_compare.dir/bench_tab4_criteria_compare.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_criteria_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
