# Empty dependencies file for bench_tab4_criteria_compare.
# This may be replaced when dependencies are built.
