file(REMOVE_RECURSE
  "../bench/bench_tab2_square_cutoffs"
  "../bench/bench_tab2_square_cutoffs.pdb"
  "CMakeFiles/bench_tab2_square_cutoffs.dir/bench_tab2_square_cutoffs.cpp.o"
  "CMakeFiles/bench_tab2_square_cutoffs.dir/bench_tab2_square_cutoffs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_square_cutoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
