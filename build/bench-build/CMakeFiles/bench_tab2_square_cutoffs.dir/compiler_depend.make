# Empty compiler generated dependencies file for bench_tab2_square_cutoffs.
# This may be replaced when dependencies are built.
