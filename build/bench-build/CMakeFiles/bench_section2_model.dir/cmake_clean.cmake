file(REMOVE_RECURSE
  "../bench/bench_section2_model"
  "../bench/bench_section2_model.pdb"
  "CMakeFiles/bench_section2_model.dir/bench_section2_model.cpp.o"
  "CMakeFiles/bench_section2_model.dir/bench_section2_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_section2_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
