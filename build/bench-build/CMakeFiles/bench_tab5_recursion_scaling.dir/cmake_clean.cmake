file(REMOVE_RECURSE
  "../bench/bench_tab5_recursion_scaling"
  "../bench/bench_tab5_recursion_scaling.pdb"
  "CMakeFiles/bench_tab5_recursion_scaling.dir/bench_tab5_recursion_scaling.cpp.o"
  "CMakeFiles/bench_tab5_recursion_scaling.dir/bench_tab5_recursion_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_recursion_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
