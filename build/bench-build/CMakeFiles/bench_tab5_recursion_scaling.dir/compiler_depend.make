# Empty compiler generated dependencies file for bench_tab5_recursion_scaling.
# This may be replaced when dependencies are built.
