file(REMOVE_RECURSE
  "../bench/bench_ext_zgefmm"
  "../bench/bench_ext_zgefmm.pdb"
  "CMakeFiles/bench_ext_zgefmm.dir/bench_ext_zgefmm.cpp.o"
  "CMakeFiles/bench_ext_zgefmm.dir/bench_ext_zgefmm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_zgefmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
