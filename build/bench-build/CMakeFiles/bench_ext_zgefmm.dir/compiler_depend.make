# Empty compiler generated dependencies file for bench_ext_zgefmm.
# This may be replaced when dependencies are built.
