# Empty compiler generated dependencies file for bench_tab3_rect_cutoffs.
# This may be replaced when dependencies are built.
