file(REMOVE_RECURSE
  "../bench/bench_tab3_rect_cutoffs"
  "../bench/bench_tab3_rect_cutoffs.pdb"
  "CMakeFiles/bench_tab3_rect_cutoffs.dir/bench_tab3_rect_cutoffs.cpp.o"
  "CMakeFiles/bench_tab3_rect_cutoffs.dir/bench_tab3_rect_cutoffs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_rect_cutoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
