file(REMOVE_RECURSE
  "../bench/bench_app_lu"
  "../bench/bench_app_lu.pdb"
  "CMakeFiles/bench_app_lu.dir/bench_app_lu.cpp.o"
  "CMakeFiles/bench_app_lu.dir/bench_app_lu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
