# Empty compiler generated dependencies file for bench_app_lu.
# This may be replaced when dependencies are built.
