file(REMOVE_RECURSE
  "../bench/bench_fig2_square_crossover"
  "../bench/bench_fig2_square_crossover.pdb"
  "CMakeFiles/bench_fig2_square_crossover.dir/bench_fig2_square_crossover.cpp.o"
  "CMakeFiles/bench_fig2_square_crossover.dir/bench_fig2_square_crossover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_square_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
