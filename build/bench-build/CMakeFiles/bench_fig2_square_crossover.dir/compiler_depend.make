# Empty compiler generated dependencies file for bench_fig2_square_crossover.
# This may be replaced when dependencies are built.
