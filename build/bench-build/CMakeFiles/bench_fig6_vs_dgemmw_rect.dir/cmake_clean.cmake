file(REMOVE_RECURSE
  "../bench/bench_fig6_vs_dgemmw_rect"
  "../bench/bench_fig6_vs_dgemmw_rect.pdb"
  "CMakeFiles/bench_fig6_vs_dgemmw_rect.dir/bench_fig6_vs_dgemmw_rect.cpp.o"
  "CMakeFiles/bench_fig6_vs_dgemmw_rect.dir/bench_fig6_vs_dgemmw_rect.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_vs_dgemmw_rect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
