# Empty compiler generated dependencies file for bench_fig3_vs_dgemms.
# This may be replaced when dependencies are built.
