file(REMOVE_RECURSE
  "../bench/bench_fig3_vs_dgemms"
  "../bench/bench_fig3_vs_dgemms.pdb"
  "CMakeFiles/bench_fig3_vs_dgemms.dir/bench_fig3_vs_dgemms.cpp.o"
  "CMakeFiles/bench_fig3_vs_dgemms.dir/bench_fig3_vs_dgemms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_vs_dgemms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
