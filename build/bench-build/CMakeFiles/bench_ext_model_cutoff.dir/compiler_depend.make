# Empty compiler generated dependencies file for bench_ext_model_cutoff.
# This may be replaced when dependencies are built.
