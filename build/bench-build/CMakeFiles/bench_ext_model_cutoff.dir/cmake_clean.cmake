file(REMOVE_RECURSE
  "../bench/bench_ext_model_cutoff"
  "../bench/bench_ext_model_cutoff.pdb"
  "CMakeFiles/bench_ext_model_cutoff.dir/bench_ext_model_cutoff.cpp.o"
  "CMakeFiles/bench_ext_model_cutoff.dir/bench_ext_model_cutoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_model_cutoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
