# Empty compiler generated dependencies file for bench_fig5_vs_dgemmw_square.
# This may be replaced when dependencies are built.
