file(REMOVE_RECURSE
  "../bench/bench_fig5_vs_dgemmw_square"
  "../bench/bench_fig5_vs_dgemmw_square.pdb"
  "CMakeFiles/bench_fig5_vs_dgemmw_square.dir/bench_fig5_vs_dgemmw_square.cpp.o"
  "CMakeFiles/bench_fig5_vs_dgemmw_square.dir/bench_fig5_vs_dgemmw_square.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_vs_dgemmw_square.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
