file(REMOVE_RECURSE
  "../bench/bench_tab1_memory"
  "../bench/bench_tab1_memory.pdb"
  "CMakeFiles/bench_tab1_memory.dir/bench_tab1_memory.cpp.o"
  "CMakeFiles/bench_tab1_memory.dir/bench_tab1_memory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
