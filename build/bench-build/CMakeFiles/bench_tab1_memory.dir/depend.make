# Empty dependencies file for bench_tab1_memory.
# This may be replaced when dependencies are built.
