file(REMOVE_RECURSE
  "../bench/bench_fig4_vs_sgemms"
  "../bench/bench_fig4_vs_sgemms.pdb"
  "CMakeFiles/bench_fig4_vs_sgemms.dir/bench_fig4_vs_sgemms.cpp.o"
  "CMakeFiles/bench_fig4_vs_sgemms.dir/bench_fig4_vs_sgemms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_vs_sgemms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
