# Empty dependencies file for bench_fig4_vs_sgemms.
# This may be replaced when dependencies are built.
