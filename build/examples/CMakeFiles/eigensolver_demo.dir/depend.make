# Empty dependencies file for eigensolver_demo.
# This may be replaced when dependencies are built.
