file(REMOVE_RECURSE
  "CMakeFiles/eigensolver_demo.dir/eigensolver_demo.cpp.o"
  "CMakeFiles/eigensolver_demo.dir/eigensolver_demo.cpp.o.d"
  "eigensolver_demo"
  "eigensolver_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eigensolver_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
