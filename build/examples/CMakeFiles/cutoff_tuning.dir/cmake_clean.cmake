file(REMOVE_RECURSE
  "CMakeFiles/cutoff_tuning.dir/cutoff_tuning.cpp.o"
  "CMakeFiles/cutoff_tuning.dir/cutoff_tuning.cpp.o.d"
  "cutoff_tuning"
  "cutoff_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cutoff_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
