# Empty dependencies file for cutoff_tuning.
# This may be replaced when dependencies are built.
