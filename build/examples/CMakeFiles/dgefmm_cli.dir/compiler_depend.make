# Empty compiler generated dependencies file for dgefmm_cli.
# This may be replaced when dependencies are built.
