# Empty dependencies file for dgefmm_cli.
# This may be replaced when dependencies are built.
