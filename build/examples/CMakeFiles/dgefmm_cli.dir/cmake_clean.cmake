file(REMOVE_RECURSE
  "CMakeFiles/dgefmm_cli.dir/dgefmm_cli.cpp.o"
  "CMakeFiles/dgefmm_cli.dir/dgefmm_cli.cpp.o.d"
  "dgefmm_cli"
  "dgefmm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgefmm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
