file(REMOVE_RECURSE
  "CMakeFiles/rectangular_speedup.dir/rectangular_speedup.cpp.o"
  "CMakeFiles/rectangular_speedup.dir/rectangular_speedup.cpp.o.d"
  "rectangular_speedup"
  "rectangular_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rectangular_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
