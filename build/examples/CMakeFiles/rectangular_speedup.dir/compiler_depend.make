# Empty compiler generated dependencies file for rectangular_speedup.
# This may be replaced when dependencies are built.
