# Empty compiler generated dependencies file for memory_report.
# This may be replaced when dependencies are built.
