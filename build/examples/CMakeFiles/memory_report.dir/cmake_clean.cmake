file(REMOVE_RECURSE
  "CMakeFiles/memory_report.dir/memory_report.cpp.o"
  "CMakeFiles/memory_report.dir/memory_report.cpp.o.d"
  "memory_report"
  "memory_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
