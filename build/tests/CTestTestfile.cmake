# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_blas[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_cutoff[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_workspace[1]_include.cmake")
include("/root/repo/build/tests/test_opcount[1]_include.cmake")
include("/root/repo/build/tests/test_compare[1]_include.cmake")
include("/root/repo/build/tests/test_tuning[1]_include.cmake")
include("/root/repo/build/tests/test_eigen[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_zgefmm[1]_include.cmake")
include("/root/repo/build/tests/test_cost_model[1]_include.cmake")
include("/root/repo/build/tests/test_stability[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_cabi[1]_include.cmake")
include("/root/repo/build/tests/test_persist[1]_include.cmake")
