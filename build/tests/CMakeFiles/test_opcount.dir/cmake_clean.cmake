file(REMOVE_RECURSE
  "CMakeFiles/test_opcount.dir/test_opcount.cpp.o"
  "CMakeFiles/test_opcount.dir/test_opcount.cpp.o.d"
  "test_opcount"
  "test_opcount.pdb"
  "test_opcount[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
