# Empty compiler generated dependencies file for test_zgefmm.
# This may be replaced when dependencies are built.
