file(REMOVE_RECURSE
  "CMakeFiles/test_zgefmm.dir/test_zgefmm.cpp.o"
  "CMakeFiles/test_zgefmm.dir/test_zgefmm.cpp.o.d"
  "test_zgefmm"
  "test_zgefmm.pdb"
  "test_zgefmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zgefmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
