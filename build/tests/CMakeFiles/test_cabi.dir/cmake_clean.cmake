file(REMOVE_RECURSE
  "CMakeFiles/test_cabi.dir/test_cabi.cpp.o"
  "CMakeFiles/test_cabi.dir/test_cabi.cpp.o.d"
  "test_cabi"
  "test_cabi.pdb"
  "test_cabi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cabi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
