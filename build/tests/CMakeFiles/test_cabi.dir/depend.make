# Empty dependencies file for test_cabi.
# This may be replaced when dependencies are built.
