// Micro-benchmarks for the packed-GEMM primitives: per-kernel DGEMM
// throughput (scalar vs explicit SIMD micro-kernels), intra-GEMM
// macro-loop thread scaling, and the quadrant-combine bandwidth. These are
// the rates whose ratio determines where the Strassen crossover lands.
//
// Besides the human-readable report, the run emits a machine-readable
// BENCH_kernels.json (path overridable via STRASSEN_BENCH_JSON) recording
// per-kernel MFLOPS, the best-over-scalar speedup, and the thread-scaling
// efficiency, so the performance trajectory of the dispatch layer is
// tracked across commits.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "blas/kernels.hpp"
#include "blas/packed_loop.hpp"
#include "core/add_kernels.hpp"
#include "support/thread_pool.hpp"

using namespace strassen;

namespace {

double mflops(index_t m, index_t n, index_t k, double seconds) {
  return 2.0 * double(m) * double(n) * double(k) / seconds * 1e-6;
}

// Minimum-of-reps DGEMM timing under the currently active kernel.
double time_kernel_dgemm(bench::Problem& p, int reps) {
  return bench::time_problem(
      p,
      [&] {
        blas::dgemm(Trans::no, Trans::no, p.m(), p.n(), p.k(), 1.0,
                    p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), 0.0,
                    p.c.data(), p.c.ld());
      },
      reps);
}

// Minimum-of-reps SGEMM timing under the currently active kernel.
double time_kernel_sgemm(bench::ProblemF& p, int reps) {
  return bench::time_problem(
      p,
      [&] {
        blas::sgemm(Trans::no, Trans::no, p.m(), p.n(), p.k(), 1.0f,
                    p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), 0.0f,
                    p.c.data(), p.c.ld());
      },
      reps);
}

struct KernelResult {
  std::string name;
  std::string arch;
  std::string elem;
  double mflops_1t = 0.0;
};

struct ScalePoint {
  int threads = 0;
  double mflops = 0.0;
  double efficiency = 0.0;  ///< mflops / (threads * mflops@1)
};

}  // namespace

int main() {
  bench::banner("micro: kernel dispatch + intra-GEMM threading",
                "section 4 rate assumptions (leaf DGEMM speed) + the "
                "arXiv:1605.01078 parallel packed loop");

  const index_t msize = bench::pick<index_t>(1024, 1536);
  const int reps = bench::pick(3, 5);
  bench::Problem p(msize, msize, msize);

  // ---- per-kernel single-thread DGEMM rate --------------------------
  std::vector<KernelResult> kernels;
  double scalar_mflops = 0.0;
  {
    blas::ScopedGemmThreads serial(1);
    std::printf("single-thread DGEMM, m=n=k=%d:\n", int(msize));
    for (const blas::KernelArch arch : blas::kAllKernelArches) {
      if (!blas::kernel_supported(arch)) {
        std::printf("  %-12s (not supported on this binary/CPU)\n",
                    blas::kernel_arch_name(arch));
        continue;
      }
      blas::ScopedKernel pin(arch);
      const double sec = time_kernel_dgemm(p, reps);
      KernelResult r;
      r.name = blas::active_kernel().name;
      r.arch = blas::kernel_arch_name(arch);
      r.elem = "f64";
      r.mflops_1t = mflops(msize, msize, msize, sec);
      if (arch == blas::KernelArch::scalar) scalar_mflops = r.mflops_1t;
      std::printf("  %-12s %10.1f MFLOPS  (%.3f s)\n", r.name.c_str(),
                  r.mflops_1t, sec);
      kernels.push_back(r);
    }
  }
  double best_mflops = 0.0;
  std::string best_name;
  for (const KernelResult& r : kernels) {
    if (r.mflops_1t > best_mflops) {
      best_mflops = r.mflops_1t;
      best_name = r.name;
    }
  }
  const double speedup =
      scalar_mflops > 0.0 ? best_mflops / scalar_mflops : 0.0;
  std::printf("best kernel: %s, %.2fx over scalar\n\n", best_name.c_str(),
              speedup);

  // ---- per-kernel single-thread SGEMM rate --------------------------
  // The float tiles are twice as wide (8 lanes per AVX-512 register become
  // 16), so the interesting ratio is f32-over-f64 per arch: how much of
  // the theoretical 2x the packed skeleton keeps.
  double best_f32 = 0.0;
  std::string best_f32_name;
  {
    bench::ProblemF pf(msize, msize, msize);
    blas::ScopedGemmThreads serial(1);
    std::printf("single-thread SGEMM, m=n=k=%d:\n", int(msize));
    for (const blas::KernelArch arch : blas::kAllKernelArches) {
      if (!blas::kernel_supported(arch)) continue;
      blas::ScopedKernel pin(arch);
      const double sec = time_kernel_sgemm(pf, reps);
      KernelResult r;
      r.name = blas::active_kernel_f().name;
      r.arch = blas::kernel_arch_name(arch);
      r.elem = "f32";
      r.mflops_1t = mflops(msize, msize, msize, sec);
      double f64_rate = 0.0;
      for (const KernelResult& d : kernels) {
        if (d.elem == "f64" && d.arch == r.arch) f64_rate = d.mflops_1t;
      }
      std::printf("  %-12s %10.1f MFLOPS  (%.3f s, %.2fx f64 %s)\n",
                  r.name.c_str(), r.mflops_1t, sec,
                  f64_rate > 0.0 ? r.mflops_1t / f64_rate : 0.0,
                  r.arch.c_str());
      if (r.mflops_1t > best_f32) {
        best_f32 = r.mflops_1t;
        best_f32_name = r.name;
      }
      kernels.push_back(r);
    }
  }
  const double f32_over_f64 = best_mflops > 0.0 ? best_f32 / best_mflops : 0.0;
  std::printf("best f32 kernel: %s, %.2fx over best f64\n\n",
              best_f32_name.c_str(), f32_over_f64);

  // ---- thread scaling of the packed macro loop ----------------------
  // Same shape, best kernel, fanning the ic loop over the pool. Thread
  // counts beyond the pool size still partition the work (the caller helps
  // execute) but cannot add cores, so the sweep stops at the pool size.
  std::vector<ScalePoint> scaling;
  {
    const std::size_t workers = parallel::global_pool().size();
    std::printf("packed_gemm_multi thread scaling (pool: %zu worker%s):\n",
                workers, workers == 1 ? "" : "s");
    const blas::GemmBlocking bk = blas::blocking_for(blas::active_machine());
    // Warm both element sizes' scratch up front: the float rows above may
    // have left per-worker float scratch warm while the double scratch for
    // this blocking is still cold (each element size owns its own buffers).
    blas::ensure_pack_capacity_all_workers<double>(bk);
    blas::ensure_pack_capacity_all_workers<float>(
        blas::blocking_for_f(blas::active_machine()));
    double base = 0.0;
    for (int t = 1; t <= int(workers); t *= 2) {
      blas::ScopedGemmThreads fan(t);
      const double sec = bench::time_problem(
          p,
          [&] {
            const blas::PackComb pa = blas::pack_comb(p.a.view());
            const blas::PackComb pb = blas::pack_comb(p.b.view());
            const blas::WriteDest dst =
                blas::write_dest(p.c.view(), 1.0, 0.0);
            blas::packed_gemm_multi(bk, p.m(), p.n(), p.k(), pa, pb, &dst,
                                    1);
          },
          reps);
      ScalePoint s;
      s.threads = t;
      s.mflops = mflops(msize, msize, msize, sec);
      if (t == 1) base = s.mflops;
      s.efficiency = base > 0.0 ? s.mflops / (double(t) * base) : 0.0;
      std::printf("  threads=%-3d %10.1f MFLOPS  efficiency %.2f\n", t,
                  s.mflops, s.efficiency);
      scaling.push_back(s);
    }
  }
  std::printf("\n");

  // ---- quadrant-combine bandwidth per kernel ------------------------
  {
    const index_t am = bench::pick<index_t>(1024, 2048);
    Rng rng(2);
    Matrix x = random_matrix(am, am, rng);
    Matrix y = random_matrix(am, am, rng);
    Matrix d(am, am);
    std::printf("quadrant add bandwidth, %d x %d:\n", int(am), int(am));
    for (const blas::KernelArch arch : blas::kAllKernelArches) {
      if (!blas::kernel_supported(arch)) continue;
      blas::ScopedKernel pin(arch);
      double best = 1e300;
      for (int r = 0; r < reps; ++r) {
        Timer timer;
        core::add(x.view(), y.view(), d.view());
        best = std::min(best, timer.seconds());
      }
      const double gbs = 3.0 * double(am) * double(am) * 8.0 / best * 1e-9;
      std::printf("  %-12s %8.2f GB/s\n", blas::active_kernel().name, gbs);
    }
  }
  std::printf("\n");

  // ---- machine-profile blockings (the paper's three machines) --------
  // Smaller shape: this section tracks the relative cost of the historical
  // c90/t3d blocking choices and the transposed-operand path, not peak rate.
  {
    const index_t pm = bench::pick<index_t>(384, 768);
    bench::Problem q(pm, pm, pm);
    blas::ScopedGemmThreads serial(1);
    std::printf("machine-profile DGEMM, m=n=k=%d:\n", int(pm));
    for (const blas::Machine mach :
         {blas::Machine::rs6000, blas::Machine::c90, blas::Machine::t3d}) {
      blas::ScopedMachine guard(mach);
      const double sec = time_kernel_dgemm(q, reps);
      std::printf("  %-8s %10.1f MFLOPS\n",
                  blas::machine_name(mach).c_str(),
                  mflops(pm, pm, pm, sec));
    }
    const double tsec = bench::time_problem(
        q,
        [&] {
          blas::dgemm(Trans::transpose, Trans::transpose, pm, pm, pm, 1.0,
                      q.a.data(), q.a.ld(), q.b.data(), q.b.ld(), 0.0,
                      q.c.data(), q.c.ld());
        },
        reps);
    std::printf("  %-8s %10.1f MFLOPS  (A^T * B^T)\n", "trans",
                mflops(pm, pm, pm, tsec));
  }
  std::printf("\n");

  // ---- machine-readable record --------------------------------------
  const char* json_env = std::getenv("STRASSEN_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_kernels.json";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"shape\": {\"m\": %d, \"n\": %d, \"k\": %d},\n",
               int(msize), int(msize), int(msize));
  std::fprintf(f, "  \"pool_workers\": %zu,\n",
               parallel::global_pool().size());
  std::fprintf(f, "  \"bench_threads\": %zu,\n", bench::bench_threads());
  std::fprintf(f, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"arch\": \"%s\", "
                 "\"elem\": \"%s\", \"mflops_1t\": %.1f}%s\n",
                 kernels[i].name.c_str(), kernels[i].arch.c_str(),
                 kernels[i].elem.c_str(), kernels[i].mflops_1t,
                 i + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"best_kernel\": \"%s\",\n", best_name.c_str());
  std::fprintf(f, "  \"speedup_best_over_scalar\": %.3f,\n", speedup);
  std::fprintf(f, "  \"best_kernel_f32\": \"%s\",\n", best_f32_name.c_str());
  std::fprintf(f, "  \"speedup_f32_over_f64_best\": %.3f,\n", f32_over_f64);
  std::fprintf(f, "  \"thread_scaling\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    std::fprintf(f,
                 "    {\"threads\": %d, \"mflops\": %.1f, "
                 "\"efficiency\": %.3f}%s\n",
                 scaling[i].threads, scaling[i].mflops,
                 scaling[i].efficiency, i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
