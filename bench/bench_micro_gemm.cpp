// Micro-benchmarks (google-benchmark): raw DGEMM throughput per machine
// profile and the Strassen add-kernel bandwidth. These are the primitives
// whose ratio determines where the Strassen crossover lands.
#include <benchmark/benchmark.h>

#include "blas/gemm.hpp"
#include "blas/machine.hpp"
#include "core/add_kernels.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"

using namespace strassen;

namespace {

void bm_dgemm(benchmark::State& state, blas::Machine mach) {
  const index_t m = state.range(0);
  Rng rng(1);
  Matrix a = random_matrix(m, m, rng);
  Matrix b = random_matrix(m, m, rng);
  Matrix c(m, m);
  c.fill(0.0);
  blas::ScopedMachine guard(mach);
  for (auto _ : state) {
    blas::dgemm(Trans::no, Trans::no, m, m, m, 1.0, a.data(), m, b.data(), m,
                0.0, c.data(), m);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * double(m) * double(m) * double(m) * double(state.iterations()) *
          1e-9,
      benchmark::Counter::kIsRate);
}

void bm_add_kernel(benchmark::State& state) {
  const index_t m = state.range(0);
  Rng rng(2);
  Matrix x = random_matrix(m, m, rng);
  Matrix y = random_matrix(m, m, rng);
  Matrix d(m, m);
  for (auto _ : state) {
    core::add(x.view(), y.view(), d.view());
    benchmark::DoNotOptimize(d.data());
  }
  state.counters["GB/s"] = benchmark::Counter(
      3.0 * double(m) * double(m) * 8.0 * double(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

void bm_dgemm_transposed(benchmark::State& state) {
  const index_t m = state.range(0);
  Rng rng(3);
  Matrix a = random_matrix(m, m, rng);
  Matrix b = random_matrix(m, m, rng);
  Matrix c(m, m);
  c.fill(0.0);
  for (auto _ : state) {
    blas::dgemm(Trans::transpose, Trans::transpose, m, m, m, 1.0, a.data(),
                m, b.data(), m, 0.0, c.data(), m);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * double(m) * double(m) * double(m) * double(state.iterations()) *
          1e-9,
      benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK_CAPTURE(bm_dgemm, rs6000, blas::Machine::rs6000)
    ->Arg(128)
    ->Arg(384)
    ->Arg(768)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_dgemm, c90, blas::Machine::c90)
    ->Arg(128)
    ->Arg(384)
    ->Arg(768)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_dgemm, t3d, blas::Machine::t3d)
    ->Arg(128)
    ->Arg(384)
    ->Arg(768)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_dgemm_transposed)->Arg(384)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_add_kernel)->Arg(256)->Arg(1024)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
