// Serving front-end benchmark: a mixed-shape request trace pushed through
// serve::Queue under several admission configurations -- unlimited budget,
// an exactly-sized (undersized for concurrency) budget, a tiny budget under
// the shed policy, and a small bounded queue under the reject policy.
// Reports end-to-end throughput and the queue's p50/p99 completion
// latencies, and emits BENCH_serving.json (path overridable via
// STRASSEN_BENCH_JSON). The undersized-budget row is the robustness claim:
// requests serialize on the workspace pool instead of OOMing or hanging.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "parallel/parallel_strassen.hpp"
#include "parallel/task_dag.hpp"
#include "serve/serve.hpp"

using namespace strassen;

namespace {

struct TraceShape {
  index_t n;
  double alpha, beta;
};

struct ConfigResult {
  std::string name;
  std::string policy;
  std::size_t budget;
  std::size_t queue_cap;
  int workers;
  std::size_t requests = 0;
  double seconds = 0.0;
  double rps = 0.0;
  serve::ServingStats stats;
};

// Submits the whole trace from `submitters` threads, each waiting its
// tickets in small bursts over a reused ring of C buffers, and returns the
// wall time from first submit to last completion.
double run_trace(serve::Queue& q, const std::vector<TraceShape>& shapes,
                 const std::vector<Matrix>& as, const std::vector<Matrix>& bs,
                 std::size_t requests, int submitters) {
  constexpr std::size_t kBurst = 4;
  Timer timer;
  std::vector<std::thread> threads;
  for (int s = 0; s < submitters; ++s) {
    threads.emplace_back([&, s] {
      const index_t max_n =
          std::max_element(shapes.begin(), shapes.end(),
                           [](const TraceShape& x, const TraceShape& y) {
                             return x.n < y.n;
                           })
              ->n;
      std::vector<Matrix> cs;
      for (std::size_t j = 0; j < kBurst; ++j) cs.emplace_back(max_n, max_n);
      const std::size_t share =
          requests / static_cast<std::size_t>(submitters);
      std::vector<serve::Ticket> tickets;
      for (std::size_t i = 0; i < share; i += kBurst) {
        tickets.clear();
        const std::size_t burst = std::min(kBurst, share - i);
        for (std::size_t j = 0; j < burst; ++j) {
          const std::size_t seq =
              static_cast<std::size_t>(s) * share + i + j;
          const TraceShape& ts = shapes[seq % shapes.size()];
          serve::GemmRequest req;
          req.m = ts.n;
          req.n = ts.n;
          req.k = ts.n;
          req.alpha = ts.alpha;
          req.beta = ts.beta;
          req.a = as[seq % shapes.size()].data();
          req.lda = as[seq % shapes.size()].ld();
          req.b = bs[seq % shapes.size()].data();
          req.ldb = bs[seq % shapes.size()].ld();
          req.c = cs[j].data();
          req.ldc = cs[j].ld();
          req.cutoff = core::CutoffCriterion::square_simple(96);
          req.on_failure = core::FailurePolicy::fallback;
          tickets.push_back(q.submit(req));
        }
        for (serve::Ticket& t : tickets) t.wait();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return timer.seconds();
}

}  // namespace

int main() {
  bench::banner("serving front-end: mixed-shape trace, policies x budgets",
                "robust async serving extension (DESIGN.md section 12)");

  const bool full = bench::full_mode();
  const std::vector<TraceShape> shapes =
      full ? std::vector<TraceShape>{{384, 1.0, 0.0},
                                     {512, 1.5, -0.5},
                                     {768, 1.0, 1.0},
                                     {1024, 1.0, 0.0}}
           : std::vector<TraceShape>{{128, 1.0, 0.0},
                                     {192, 1.5, -0.5},
                                     {256, 1.0, 1.0},
                                     {320, 1.0, 0.0}};
  const std::size_t requests = full ? 384 : 96;
  const int submitters = 2;

  // Shared read-only operands, one pair per trace shape.
  std::vector<Matrix> as, bs;
  {
    Rng rng(2024);
    for (const TraceShape& ts : shapes) {
      as.push_back(random_matrix(ts.n, ts.n, rng));
      bs.push_back(random_matrix(ts.n, ts.n, rng));
    }
  }

  // The exact price of the largest shape on either execution path: a
  // budget of this size admits every request but at most one largest-shape
  // run at a time -- deliberately undersized for the concurrency level.
  const index_t max_n = shapes.back().n;
  std::size_t tight = 0;
  {
    parallel::ParallelDgefmmConfig pcfg;
    pcfg.cutoff = core::CutoffCriterion::square_simple(96);
    tight = static_cast<std::size_t>(
        parallel::plan_dag(max_n, max_n, max_n, pcfg).workspace);
    core::DgefmmConfig scfg;
    scfg.cutoff = core::CutoffCriterion::square_simple(96);
    tight = std::max(
        tight, static_cast<std::size_t>(core::dgefmm_workspace_doubles(
                   max_n, max_n, max_n, 1.0, scfg)));
  }

  struct Config {
    const char* name;
    serve::OverflowPolicy policy;
    std::size_t budget;
    std::size_t queue_cap;
    int workers;
  };
  // Serving workers follow the bench thread budget like the parallel
  // benches (STRASSEN_BENCH_THREADS=N overrides; ServeOptions clamps).
  const int workers = static_cast<int>(
      std::min<std::size_t>(bench::bench_threads(), 64));
  const Config configs[] = {
      {"block-unlimited", serve::OverflowPolicy::block, 0, 64, workers},
      {"block-tight", serve::OverflowPolicy::block, tight, 64, workers},
      {"shed-tiny", serve::OverflowPolicy::shed, 1024, 64, workers},
      {"reject-cap4", serve::OverflowPolicy::reject, 0, 4, workers},
  };

  std::vector<ConfigResult> results;
  for (const Config& cc : configs) {
    serve::ServeOptions opt;
    opt.policy = cc.policy;
    opt.budget_elements = cc.budget;
    opt.queue_cap = cc.queue_cap;
    opt.workers = cc.workers;
    serve::Queue q(opt);
    const double secs = run_trace(q, shapes, as, bs, requests, submitters);
    ConfigResult r;
    r.name = cc.name;
    r.policy = serve::overflow_policy_name(cc.policy);
    r.budget = cc.budget;
    r.queue_cap = cc.queue_cap;
    r.workers = cc.workers;
    r.requests = requests;
    r.seconds = secs;
    r.rps = static_cast<double>(requests) / secs;
    r.stats = q.stats();
    results.push_back(std::move(r));
  }

  TextTable table({"config", "policy", "budget", "req/s", "p50 ms", "p99 ms",
                   "done", "shed", "rej", "peak ws", "ws<=budget"});
  for (const ConfigResult& r : results) {
    const bool ws_ok = r.budget == 0 || r.stats.pool_peak <= r.budget;
    table.add_row(
        {r.name, r.policy,
         r.budget == 0 ? std::string("inf") : std::to_string(r.budget),
         fmt(r.rps, 1), fmt(r.stats.p50_ms, 2), fmt(r.stats.p99_ms, 2),
         std::to_string(r.stats.completed), std::to_string(r.stats.shed),
         std::to_string(r.stats.rejected),
         std::to_string(r.stats.pool_peak), ws_ok ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\n(block-tight serializes on an exactly-one-largest-run "
               "budget: no OOM, no hang, bounded peak; shed-tiny degrades "
               "every recursing request to the workspace-free GEMM)\n";

  const char* json_env = std::getenv("STRASSEN_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_serving.json";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"pool_workers\": %zu,\n",
               parallel::global_pool().size());
  std::fprintf(f, "  \"bench_threads\": %zu,\n", bench::bench_threads());
  std::fprintf(f, "  \"trace\": {\"requests\": %zu, \"submitters\": %d, "
                  "\"shapes\": [",
               requests, submitters);
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    std::fprintf(f, "%d%s", int(shapes[i].n),
                 i + 1 < shapes.size() ? ", " : "");
  }
  std::fprintf(f, "]},\n");
  std::fprintf(f, "  \"configs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::fprintf(
        f,
        "    {\"config\": \"%s\", \"policy\": \"%s\", "
        "\"budget_elements\": %zu, \"queue_cap\": %zu, \"workers\": %d, "
        "\"requests\": %zu, \"seconds\": %.6f, \"throughput_rps\": %.2f, "
        "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"max_ms\": %.3f, "
        "\"completed\": %llu, \"shed\": %llu, \"rejected\": %llu, "
        "\"expired\": %llu, \"failed\": %llu, \"pool_peak\": %zu, "
        "\"peak_within_budget\": %s}%s\n",
        r.name.c_str(), r.policy.c_str(), r.budget, r.queue_cap, r.workers,
        r.requests, r.seconds, r.rps, r.stats.p50_ms, r.stats.p99_ms,
        r.stats.max_ms,
        static_cast<unsigned long long>(r.stats.completed),
        static_cast<unsigned long long>(r.stats.shed),
        static_cast<unsigned long long>(r.stats.rejected),
        static_cast<unsigned long long>(r.stats.expired),
        static_cast<unsigned long long>(r.stats.failed),
        r.stats.pool_peak,
        r.budget == 0 || r.stats.pool_peak <= r.budget ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
