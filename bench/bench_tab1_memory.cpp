// Table 1: memory requirements of the Strassen codes for order-m
// multiplies. Unlike the paper (which quotes analytic bounds), this bench
// MEASURES the arena high-water mark of an actual run and prints it next
// to the analytic predictor and the paper's coefficient.
#include <iostream>

#include "bench_common.hpp"
#include "compare/dgemms_like.hpp"
#include "compare/dgemmw_like.hpp"
#include "compare/sgemms_like.hpp"

using namespace strassen;

namespace {

// Accumulated across every DGEFMM run so the failure-contract counters can
// be reported: any nonzero `fallbacks` would mean a run silently degraded
// to plain DGEMM and its "measured" peak is not a Strassen footprint.
core::DgefmmStats g_stats;

std::size_t measured_peak_dgefmm(index_t m, double beta,
                                 const core::DgefmmConfig& base) {
  core::DgefmmConfig cfg = base;
  cfg.stats = &g_stats;
  Arena arena;
  cfg.workspace = &arena;
  bench::Problem p(m, m, m);
  if (core::dgefmm(Trans::no, Trans::no, m, m, m, 1.0, p.a.data(), p.a.ld(),
                   p.b.data(), p.b.ld(), beta, p.c.data(), p.c.ld(),
                   cfg) != 0) {
    std::abort();
  }
  return arena.peak();
}

}  // namespace

int main() {
  bench::banner("measured temporary-memory footprints (order-m multiply)",
                "Table 1");
  const index_t m = bench::pick<index_t>(512, 1024);
  const double m2 = double(m) * double(m);
  const double tau = 8.0;  // deep recursion => asymptotic coefficients
  auto c = [&](double doubles) { return fmt(doubles / m2, 3); };

  core::DgefmmConfig dgefmm_cfg;
  dgefmm_cfg.cutoff = core::CutoffCriterion::square_simple(tau);
  core::DgefmmConfig s1 = dgefmm_cfg;
  s1.scheme = core::Scheme::strassen1;
  core::DgefmmConfig s2 = dgefmm_cfg;
  s2.scheme = core::Scheme::strassen2;

  TextTable t({"implementation", "beta", "measured/m^2", "predicted/m^2",
               "paper/m^2"});

  // DGEFMM (automatic scheme), both beta cases.
  t.add_row({"DGEFMM", "0",
             c(double(measured_peak_dgefmm(m, 0.0, dgefmm_cfg))),
             c(double(core::dgefmm_workspace_doubles(m, m, m, 0.0,
                                                     dgefmm_cfg))),
             "0.667"});
  t.add_row({"DGEFMM", "!=0",
             c(double(measured_peak_dgefmm(m, 1.0, dgefmm_cfg))),
             c(double(core::dgefmm_workspace_doubles(m, m, m, 1.0,
                                                     dgefmm_cfg))),
             "1.000"});
  t.add_row({"STRASSEN1", "0", c(double(measured_peak_dgefmm(m, 0.0, s1))),
             c(double(core::dgefmm_workspace_doubles(m, m, m, 0.0, s1))),
             "0.667"});
  t.add_row({"STRASSEN1", "!=0", c(double(measured_peak_dgefmm(m, 1.0, s1))),
             c(double(core::dgefmm_workspace_doubles(m, m, m, 1.0, s1))),
             "2.000 (bound)"});
  t.add_row({"STRASSEN2", "0", c(double(measured_peak_dgefmm(m, 0.0, s2))),
             c(double(core::dgefmm_workspace_doubles(m, m, m, 0.0, s2))),
             "1.000"});
  t.add_row({"STRASSEN2", "!=0", c(double(measured_peak_dgefmm(m, 1.0, s2))),
             c(double(core::dgefmm_workspace_doubles(m, m, m, 1.0, s2))),
             "1.000"});

  // DGEMMW-like.
  {
    compare::DgemmwConfig wcfg;
    wcfg.tau = tau;
    for (double beta : {0.0, 1.0}) {
      Arena arena;
      wcfg.workspace = &arena;
      bench::Problem p(m, m, m);
      compare::dgemmw(Trans::no, Trans::no, m, m, m, 1.0, p.a.data(),
                      p.a.ld(), p.b.data(), p.b.ld(), beta, p.c.data(),
                      p.c.ld(), wcfg);
      t.add_row({"DGEMMW-like", beta == 0.0 ? "0" : "!=0",
                 c(double(arena.peak())),
                 c(double(compare::dgemmw_workspace_doubles(m, m, m, beta,
                                                            wcfg))),
                 beta == 0.0 ? "0.667" : "1.667"});
    }
  }

  // DGEMMS-like (multiply-only).
  {
    compare::DgemmsConfig scfg;
    scfg.tau = tau;
    Arena arena;
    scfg.workspace = &arena;
    bench::Problem p(m, m, m);
    compare::dgemms(Trans::no, Trans::no, m, m, m, p.a.data(), p.a.ld(),
                    p.b.data(), p.b.ld(), p.c.data(), p.c.ld(), scfg);
    t.add_row({"DGEMMS-like (ESSL)", "n/a", c(double(arena.peak())),
               c(double(compare::dgemms_workspace_doubles(m, m, m, scfg))),
               "1.400"});
  }

  // SGEMMS-like.
  {
    compare::SgemmsConfig ccfg;
    ccfg.tau = tau;
    Arena arena;
    ccfg.workspace = &arena;
    bench::Problem p(m, m, m);
    compare::sgemms(Trans::no, Trans::no, m, m, m, 1.0, p.a.data(), p.a.ld(),
                    p.b.data(), p.b.ld(), 1.0, p.c.data(), p.c.ld(), ccfg);
    t.add_row({"SGEMMS-like (CRAY)", "any", c(double(arena.peak())),
               c(double(compare::sgemms_workspace_doubles(m, m, m, ccfg))),
               "2.333"});
  }

  t.print(std::cout);
  std::cout << "\nfailure contract: fallbacks=" << g_stats.fallbacks
            << " faults_injected=" << g_stats.faults_injected
            << (g_stats.fallbacks == 0
                    ? " (all measurements took the Strassen path)"
                    : " (WARNING: some runs degraded to plain DGEMM)")
            << "\n";
  std::cout << "\nreproduced claims: DGEFMM needs 2/3 m^2 (beta==0) and "
               "1 m^2 (beta!=0); vs DGEMMW general that is a 40% reduction, "
               "vs the CRAY organization >55% ('40 to more than 70 "
               "percent').\n";
  return 0;
}
