// Figure 2: ratio of DGEMM time to DGEFMM time (one level of recursion) as
// a function of square matrix order. The sawtooth comes from the odd-size
// fix-up work; the crossover point is the empirical square cutoff tau.
#include <iostream>

#include "bench_common.hpp"
#include "tuning/crossover.hpp"

using namespace strassen;

int main() {
  bench::banner("square crossover sweep (DGEMM / one-level DGEFMM)",
                "Figure 2 + Table 2 (RS/6000 row)");

  tuning::CrossoverOptions opts;
  opts.min_size = bench::pick<index_t>(96, 120);
  opts.max_size = bench::pick<index_t>(512, 1024);
  opts.step = bench::pick<index_t>(16, 4);
  opts.reps = bench::pick(2, 3);

  const auto result = tuning::find_square_crossover(opts);

  TextTable t({"m", "t(DGEMM)/t(DGEFMM,1 level)", "winner"});
  for (const auto& p : result.sweep) {
    t.add_row({fmt(static_cast<long long>(p.size)), fmt(p.ratio, 4),
               p.ratio > 1.0 ? "Strassen" : "DGEMM"});
  }
  t.print(std::cout);
  std::cout << "\nempirical square crossover tau = " << result.tau
            << "  (paper, RS/6000: ratio >1 from m=176, always from 214; "
               "chose tau=199)\n";
  std::cout << "note: odd orders pay peeling fix-ups, producing the "
               "paper's sawtooth when swept at step 1 (use FULL mode with a "
               "small step to see it).\n";
  return 0;
}
