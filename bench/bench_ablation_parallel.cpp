// Extension bench (the paper's "future work: parallelism"): serial DGEMM
// and DGEFMM vs the thread-parallel DGEMM (column panels) and the
// task-parallel Strassen top level (seven concurrent sub-products).
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "parallel/parallel_gemm.hpp"
#include "parallel/parallel_strassen.hpp"

using namespace strassen;

int main() {
  bench::banner("parallel extension: threads vs serial",
                "Section 5 future work (extension)");
  std::cout << "hardware threads: " << std::thread::hardware_concurrency()
            << "\n\n";

  const index_t m = bench::pick<index_t>(768, 2048);
  const double tau = 127.0;
  bench::Problem p(m, m, m);

  core::DgefmmConfig serial_cfg;
  serial_cfg.cutoff = core::CutoffCriterion::square_simple(tau);
  Arena arena;

  const double t_dgemm = bench::time_dgemm(p, 1.0, 0.0, 2);
  const double t_dgefmm =
      bench::time_dgefmm(p, 1.0, 0.0, serial_cfg, arena, 2);
  const double t_pgemm = bench::time_problem(
      p,
      [&] {
        parallel::dgemm_parallel(Trans::no, Trans::no, m, m, m, 1.0,
                                 p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                                 0.0, p.c.data(), p.c.ld());
      },
      2);
  parallel::ParallelDgefmmConfig par_cfg;
  par_cfg.cutoff = core::CutoffCriterion::square_simple(tau);
  const double t_pstrassen = bench::time_problem(
      p,
      [&] {
        parallel::dgefmm_parallel(Trans::no, Trans::no, m, m, m, 1.0,
                                  p.a.data(), p.a.ld(), p.b.data(),
                                  p.b.ld(), 0.0, p.c.data(), p.c.ld(),
                                  par_cfg);
      },
      2);

  TextTable t({"variant", "time (s)", "speedup vs DGEMM"});
  t.add_row({"DGEMM (serial)", fmt(t_dgemm, 4), "1.00"});
  t.add_row({"DGEFMM (serial)", fmt(t_dgefmm, 4),
             fmt(t_dgemm / t_dgefmm, 2)});
  t.add_row({"DGEMM, column-parallel", fmt(t_pgemm, 4),
             fmt(t_dgemm / t_pgemm, 2)});
  t.add_row({"DGEFMM, 7-task top level", fmt(t_pstrassen, 4),
             fmt(t_dgemm / t_pstrassen, 2)});
  t.print(std::cout);
  std::cout << "\n(the 7-task variant trades the serial code's memory "
               "economy for concurrency; with >= 7 cores it approaches "
               "7x over one level's serial products)\n";
  return 0;
}
