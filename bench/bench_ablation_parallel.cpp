// Parallel-scheduler ablation (the paper's "future work: parallelism"):
// the task-DAG Winograd top level swept over {thread budget} x {par_depth}
// x {scheme}, against the flat legacy baseline (each product leaf claims
// the whole pool -- the pre-DAG oversubscribing behaviour) and the plain
// DGEMM reference. Emits BENCH_parallel.json (path overridable via
// STRASSEN_BENCH_JSON) with per-configuration MFLOPS, speedups, a bitwise
// determinism check across thread budgets, and the predicted-vs-measured
// workspace of the single up-front reservation.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/workspace.hpp"
#include "parallel/parallel_strassen.hpp"
#include "parallel/task_dag.hpp"

using namespace strassen;

namespace {

double mflops(index_t m, index_t n, index_t k, double seconds) {
  return 2.0 * double(m) * double(n) * double(k) / seconds * 1e-6;
}

struct Config {
  const char* name;
  core::Scheme scheme;
  int par_depth;
  int leaf_gemm_threads;  // -1 moldable, 0 legacy whole-pool
};

struct Result {
  std::string name;
  std::size_t threads;
  int par_depth;
  int lanes;
  int leaf_gemm_threads;
  double seconds;
  double mf;
  double speedup_vs_dgemm;
  bool deterministic;           // bitwise equal to the 1-thread run
  long long ws_predicted;
  long long ws_measured;
};

}  // namespace

int main() {
  bench::banner("parallel ablation: task-DAG scheduler vs flat baseline",
                "Section 5 future work (extension)");

  const index_t m = bench::pick<index_t>(512, 2048);
  const double tau = 127.0;
  bench::Problem p(m, m, m);
  const std::size_t pool = parallel::global_pool().size();

  const double t_dgemm = bench::time_dgemm(p, 1.0, 0.0, 2);

  const Config configs[] = {
      {"dag-auto", core::Scheme::automatic, 1, -1},
      {"dag-auto-depth2", core::Scheme::automatic, 2, -1},
      {"dag-fused", core::Scheme::fused, 1, -1},
      {"dag-fused-depth2", core::Scheme::fused, 2, -1},
      {"flat-legacy", core::Scheme::automatic, 1, 0},
  };
  // Sweep up to bench_threads(), not just the pool: a CI host whose pool
  // defaults to one worker used to collapse this sweep to {1, 2}, so the
  // committed JSON never showed a multi-worker run. STRASSEN_BENCH_THREADS
  // restores the multi-lane budgets there (the DAG accepts more lanes than
  // workers by design).
  const std::size_t bt = bench::bench_threads();
  std::vector<std::size_t> budgets = {1, 2, pool != 0 ? pool : 1, bt};
  std::sort(budgets.begin(), budgets.end());
  budgets.erase(std::unique(budgets.begin(), budgets.end()), budgets.end());

  std::vector<Result> results;
  Matrix c_base(m, m);
  for (const Config& cc : configs) {
    bool have_base = false;
    for (const std::size_t threads : budgets) {
      parallel::ParallelDgefmmConfig cfg;
      cfg.cutoff = core::CutoffCriterion::square_simple(tau);
      cfg.scheme = cc.scheme;
      cfg.par_depth = cc.par_depth;
      cfg.leaf_gemm_threads = cc.leaf_gemm_threads;
      cfg.threads = threads;
      Arena arena;
      cfg.workspace = &arena;
      core::DgefmmStats stats;
      cfg.stats = &stats;
      const parallel::DagPlan plan = parallel::plan_dag(m, m, m, cfg);
      const double t = bench::time_problem(
          p,
          [&] {
            parallel::dgefmm_parallel(Trans::no, Trans::no, m, m, m, 1.0,
                                      p.a.data(), p.a.ld(), p.b.data(),
                                      p.b.ld(), 0.0, p.c.data(), p.c.ld(),
                                      cfg);
          },
          2);
      bool deterministic = true;
      if (!have_base) {
        copy(p.c.view(), c_base.view());
        have_base = true;
      } else {
        deterministic =
            std::memcmp(c_base.data(), p.c.data(),
                        std::size_t(m) * std::size_t(m) *
                            sizeof(double)) == 0;
      }
      results.push_back(Result{
          cc.name, threads, plan.par_depth, plan.lanes,
          plan.leaf_gemm_threads, t, mflops(m, m, m, t), t_dgemm / t,
          deterministic, static_cast<long long>(plan.workspace),
          static_cast<long long>(stats.peak_workspace)});
    }
  }

  TextTable table({"config", "threads", "depth", "lanes", "leaf-g",
                   "time (s)", "MFLOPS", "vs DGEMM", "bitwise", "ws ok"});
  table.add_row({"dgemm-ref", "-", "-", "-", "-", fmt(t_dgemm, 4),
                 fmt(mflops(m, m, m, t_dgemm), 0), "1.00", "-", "-"});
  for (const Result& r : results) {
    table.add_row({r.name, std::to_string(r.threads),
                   std::to_string(r.par_depth), std::to_string(r.lanes),
                   std::to_string(r.leaf_gemm_threads), fmt(r.seconds, 4),
                   fmt(r.mf, 0), fmt(r.speedup_vs_dgemm, 2),
                   r.deterministic ? "yes" : "NO",
                   r.ws_predicted == r.ws_measured ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\n(bitwise: C identical to the same config's 1-thread run; "
               "ws ok: predicted reservation == measured high-water "
               "mark)\n";

  const char* json_env = std::getenv("STRASSEN_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_parallel.json";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"shape\": {\"m\": %d, \"n\": %d, \"k\": %d},\n",
               int(m), int(m), int(m));
  std::fprintf(f, "  \"pool_workers\": %zu,\n", pool);
  std::fprintf(f, "  \"bench_threads\": %zu,\n", bt);
  std::fprintf(f, "  \"dgemm_mflops\": %.1f,\n",
               mflops(m, m, m, t_dgemm));
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(
        f,
        "    {\"config\": \"%s\", \"threads\": %zu, \"par_depth\": %d, "
        "\"lanes\": %d, \"leaf_gemm_threads\": %d, \"seconds\": %.6f, "
        "\"mflops\": %.1f, \"speedup_vs_dgemm\": %.3f, "
        "\"deterministic\": %s, \"ws_predicted\": %lld, "
        "\"ws_measured\": %lld}%s\n",
        r.name.c_str(), r.threads, r.par_depth, r.lanes,
        r.leaf_gemm_threads, r.seconds, r.mf, r.speedup_vs_dgemm,
        r.deterministic ? "true" : "false", r.ws_predicted, r.ws_measured,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
