// Shared plumbing for the table/figure reproduction benchmarks.
//
// Every bench runs in a reduced "smoke" mode by default so the whole suite
// finishes in minutes; set STRASSEN_BENCH_FULL=1 for paper-scale problem
// sizes (the paper swept square orders to ~2200 and rectangular dimensions
// to ~2050).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "blas/gemm.hpp"
#include "blas/kernels.hpp"
#include "blas/machine.hpp"
#include "blas/packed_loop.hpp"
#include "core/dgefmm.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/timing.hpp"

namespace strassen::bench {

/// True when STRASSEN_BENCH_FULL=1 (paper-scale sizes).
inline bool full_mode() {
  const char* env = std::getenv("STRASSEN_BENCH_FULL");
  return env != nullptr && std::string(env) == "1";
}

/// Picks the smoke or full value.
template <class T>
T pick(T smoke, T full) {
  return full_mode() ? full : smoke;
}

/// Thread budget the parallel benches sweep up to. STRASSEN_BENCH_THREADS=N
/// overrides; 0/unset resolves to the pool size. The override exists so a
/// bench host whose pool defaults small (CI containers often report one
/// hardware thread) can still exercise multi-lane schedules -- the DAG
/// planner deliberately does not clamp lanes to workers.
inline std::size_t bench_threads() {
  const char* env = std::getenv("STRASSEN_BENCH_THREADS");
  if (env != nullptr && *env != '\0') {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const std::size_t pool = parallel::global_pool().size();
  return pool != 0 ? pool : 1;
}

/// Prints the standard bench banner, including the micro-kernel variant and
/// intra-GEMM thread setting the timed runs will use (the two knobs that
/// dominate the absolute rates; see DESIGN.md section 9).
inline void banner(const std::string& what, const std::string& paper_ref) {
  std::cout << "=== " << what << " ===\n";
  std::cout << "reproduces: " << paper_ref << "\n";
  const int gt = blas::gemm_threads();
  std::cout << "kernel: " << blas::active_kernel().name
            << "  [STRASSEN_KERNEL=scalar|avx2|avx512|auto]\n";
  std::cout << "gemm threads: ";
  if (gt == 0) {
    std::cout << "auto (pool size)";
  } else {
    std::cout << gt;
  }
  std::cout << "  [STRASSEN_GEMM_THREADS=N, 1 = serial]\n";
  const char* pd = std::getenv("STRASSEN_PAR_DEPTH");
  const char* pl = std::getenv("STRASSEN_PAR_LANES");
  std::cout << "scheduler: pool=" << parallel::global_pool().size()
            << " workers, bench threads=" << bench_threads()
            << " [STRASSEN_BENCH_THREADS=N], par_depth="
            << (pd != nullptr && *pd != '\0' ? pd : "auto") << ", lanes="
            << (pl != nullptr && *pl != '\0' ? pl : "auto")
            << "  [STRASSEN_PAR_DEPTH=1|2, STRASSEN_PAR_LANES=N]\n";
  std::cout << "mode: " << (full_mode() ? "FULL (paper-scale)" : "smoke")
            << "  [STRASSEN_BENCH_FULL=1 for paper-scale sizes]\n\n";
}

/// Name of the schedule a DGEFMM config actually executes for a given beta.
/// Scheme::automatic (and the classic recursion below a fused top) resolves
/// by beta only at run time, so benches must report it explicitly instead
/// of echoing the configured enum.
inline std::string schedule_run_name(const core::DgefmmConfig& cfg,
                                     double beta) {
  const char* resolved = beta == 0.0 ? "STRASSEN1" : "STRASSEN2";
  switch (cfg.scheme) {
    case core::Scheme::automatic:
      return std::string(resolved) + " (automatic)";
    case core::Scheme::fused:
      return "FUSED x" + std::to_string(cfg.fused_levels) + ", " + resolved +
             " below the fusion";
    default:
      return core::scheme_name(cfg.scheme);
  }
}

/// Prints the schedule line of a bench header: which schedule the timed
/// DGEFMM calls run for this beta case.
inline void report_schedule(const core::DgefmmConfig& cfg, double beta) {
  std::cout << "schedule (beta=" << beta
            << "): " << schedule_run_name(cfg, beta) << "\n";
}

/// A reusable triple of random matrices for C = alpha*A*B + beta*C, in
/// either element type (Problem = double, ProblemF = float).
template <class T>
struct ProblemT {
  MatrixT<T> a, b, c, c0;
  ProblemT(index_t m, index_t k, index_t n, std::uint64_t seed = 12345)
      : a(m, k), b(k, n), c(m, n), c0(m, n) {
    Rng rng(seed);
    fill_random(a.view(), rng);
    fill_random(b.view(), rng);
    fill_random(c0.view(), rng);
    copy(c0.view(), c.view());
  }
  void reset_c() { copy(c0.view(), c.view()); }
  index_t m() const { return a.rows(); }
  index_t k() const { return a.cols(); }
  index_t n() const { return b.cols(); }
};

using Problem = ProblemT<double>;
using ProblemF = ProblemT<float>;

/// Minimum-of-reps timing of fn, resetting C before each run so beta != 0
/// cases are well-defined.
template <class T, class F>
double time_problem(ProblemT<T>& p, F&& fn, int reps = 3) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    p.reset_c();
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

/// Times the baseline DGEMM on problem p.
inline double time_dgemm(Problem& p, double alpha, double beta,
                         int reps = 3) {
  return time_problem(
      p,
      [&] {
        blas::dgemm(Trans::no, Trans::no, p.m(), p.n(), p.k(), alpha,
                    p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), beta,
                    p.c.data(), p.c.ld());
      },
      reps);
}

/// Times DGEFMM with the given configuration (workspace arena reused).
inline double time_dgefmm(Problem& p, double alpha, double beta,
                          core::DgefmmConfig cfg, Arena& arena,
                          int reps = 3) {
  cfg.workspace = &arena;
  return time_problem(
      p,
      [&] {
        if (core::dgefmm(Trans::no, Trans::no, p.m(), p.n(), p.k(), alpha,
                         p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), beta,
                         p.c.data(), p.c.ld(), cfg) != 0) {
          std::abort();
        }
      },
      reps);
}

}  // namespace strassen::bench
