// Second application study: blocked LU factorization (linear-system
// solution), after Bailey, Lee & Simon (reference [3] of the paper). The
// trailing-matrix update is the only GEMM in the factorization; running the
// identical code with DGEMM and with DGEFMM shows the application-level
// gain, Table 6-style.
#include <iostream>
#include <memory>
#include <utility>

#include "bench_common.hpp"
#include "solver/lu.hpp"

using namespace strassen;

int main() {
  bench::banner("blocked LU factorization with DGEMM vs DGEFMM",
                "reference [3] application (companion to Table 6)");

  // Bailey et al. ran Strassen on the trailing update, which only pays when
  // the inner dimension (the panel width) clears the rectangular cutoff --
  // so the Strassen configuration uses wide panels.
  const index_t n = bench::pick<index_t>(896, 2048);
  const index_t block = bench::pick<index_t>(192, 256);
  std::cout << "random " << n << "x" << n << " system, panel width " << block
            << "\n\n";

  Rng rng(15);
  Matrix a = random_matrix(n, n, rng);
  for (index_t i = 0; i < n; ++i) a(i, i) += 4.0;  // moderate conditioning
  Matrix b = random_matrix(n, 1, rng);

  auto run = [&](core::GemmFn gemm, solver::LuStats& stats) {
    solver::LuOptions opts;
    opts.block = block;
    opts.gemm = std::move(gemm);
    solver::LuFactors f = solver::lu_factor(a.view(), opts, &stats);
    Matrix x = solver::lu_solve(f, b.view());
    return solver::relative_residual(a.view(), x.view(), b.view());
  };

  // DGEFMM backend with a host-appropriate cutoff (the smoke-mode host
  // crossover sits near 128; see bench_fig2_square_crossover).
  auto arena = std::make_shared<Arena>();
  core::GemmFn dgefmm_backend = [arena](Trans ta, Trans tb, index_t mm,
                                        index_t nn, index_t kk, double alpha,
                                        const double* aa, index_t lda,
                                        const double* bb, index_t ldb,
                                        double beta, double* cc,
                                        index_t ldc) {
    core::DgefmmConfig cfg;
    cfg.cutoff = core::CutoffCriterion::square_simple(127.0);
    cfg.workspace = arena.get();
    if (core::dgefmm(ta, tb, mm, nn, kk, alpha, aa, lda, bb, ldb, beta, cc,
                     ldc, cfg) != 0) {
      std::abort();
    }
  };

  solver::LuStats s_dgemm, s_dgefmm;
  const double r1 = run(core::gemm_backend_dgemm(), s_dgemm);
  const double r2 = run(std::move(dgefmm_backend), s_dgefmm);

  TextTable t({"", "using DGEMM", "using DGEFMM", "ratio"});
  t.add_row({"factor time (s)", fmt(s_dgemm.total_seconds, 3),
             fmt(s_dgefmm.total_seconds, 3),
             fmt(s_dgefmm.total_seconds / s_dgemm.total_seconds, 3)});
  t.add_row({"GEMM time (s)", fmt(s_dgemm.mm_seconds, 3),
             fmt(s_dgefmm.mm_seconds, 3),
             fmt(s_dgefmm.mm_seconds / s_dgemm.mm_seconds, 3)});
  t.print(std::cout);
  std::cout << "\nGEMM fraction of the factorization (DGEMM run): "
            << fmt(100.0 * s_dgemm.mm_seconds / s_dgemm.total_seconds, 1)
            << "%\n";
  std::cout << "solution residuals: DGEMM " << r1 << ", DGEFMM " << r2
            << "\n";
  std::cout << "(the trailing updates are (n-j) x (n-j) x " << block
            << " rectangular multiplies; Strassen engages once both trailing "
               "extents clear the cutoff, so the gain grows with n -- run "
               "FULL mode for the paper-scale picture)\n";
  return (r1 < 1e-12 && r2 < 1e-11) ? 0 : 1;
}
