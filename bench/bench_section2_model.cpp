// Regenerates the Section 2 operation-count analysis of the paper: the
// one-level ratio (eq. 1), the theoretical cutoff, the Winograd-vs-original
// comparison, the value of cutoffs at order 256, and the rectangular
// boundary example. Pure integer arithmetic -- instantaneous.
#include <iostream>

#include "bench_common.hpp"
#include "model/cutoff_theory.hpp"
#include "model/opmodel.hpp"

using namespace strassen;

int main() {
  bench::banner("Section 2 operation-count analysis", "paper Section 2");

  std::cout << "one-level ratio (eq. 1), square m:\n";
  TextTable t1({"m", "ratio", "limit 7/8"});
  for (index_t m : {16, 32, 64, 256, 1024, 1 << 20}) {
    t1.add_row({fmt(static_cast<long long>(m)),
                fmt(model::one_level_ratio_square(m), 5), "0.87500"});
  }
  t1.print(std::cout);

  std::cout << "\ntheoretical square cutoff (eq. 7/8): m <= "
            << model::theoretical_square_cutoff() << "   (paper: 12)\n";

  std::cout << "\nWinograd (eq. 4) vs original Strassen (eq. 5), deep "
               "recursion improvement:\n";
  TextTable t2({"m0", "limit ratio (5)/(4)", "improvement", "paper"});
  for (index_t m0 : {1, 7, 12}) {
    const double r = (5.0 + 2.0 * double(m0)) / (4.0 + 2.0 * double(m0));
    const char* paper = m0 == 1 ? "14.3%" : (m0 == 7 ? "5.26%" : "3.45%");
    t2.add_row({fmt(static_cast<long long>(m0)), fmt(r, 5),
                fmt(100.0 * (1.0 - 1.0 / r), 2) + "%", paper});
  }
  t2.print(std::cout);

  const double no_cut = double(model::winograd_cost_square(1, 8));
  const double cut12 = double(model::winograd_cost_square(8, 5));
  std::cout << "\ncutoff value at order 256 (eq. 4, d=8/m0=1 vs d=5/m0=8):\n"
            << "  improvement from cutoffs = "
            << fmt(100.0 * (1.0 - cut12 / no_cut), 1)
            << "%   (paper: 38.2%)\n";

  std::cout << "\nrectangular boundary example (m,k,n) = (6,14,86):\n"
            << "  recursion beneficial: "
            << (model::recursion_beneficial(6, 14, 86) ? "yes" : "no")
            << "   (paper: yes, although m=6 < square cutoff 12)\n"
            << "  smallest beneficial even m at k=14, n=86: "
            << model::min_beneficial_m(14, 86) << "\n";
  return 0;
}
