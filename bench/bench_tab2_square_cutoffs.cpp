// Table 2: empirically determined square cutoffs tau on the three machine
// profiles. The paper measured 199 (RS/6000), 129 (C90), 325 (T3D); the
// reproduction claim is the EXISTENCE of a machine-dependent, moderate-size
// crossover, not its absolute value (the profiles are kernel styles on one
// host -- see DESIGN.md, Substitutions).
#include <iostream>

#include "bench_common.hpp"
#include "tuning/crossover.hpp"

using namespace strassen;

int main() {
  bench::banner("empirical square cutoffs per machine profile", "Table 2");

  tuning::CrossoverOptions opts;
  opts.min_size = bench::pick<index_t>(64, 64);
  opts.max_size = bench::pick<index_t>(512, 1536);
  opts.step = bench::pick<index_t>(32, 16);
  opts.reps = bench::pick(2, 3);

  TextTable t({"machine profile", "empirical tau", "paper tau"});
  const long long paper_tau[] = {199, 129, 325};
  int i = 0;
  for (blas::Machine mach : blas::kAllMachines) {
    blas::ScopedMachine guard(mach);
    const auto result = tuning::find_square_crossover(opts);
    t.add_row({blas::machine_name(mach),
               fmt(static_cast<long long>(result.tau)), fmt(paper_tau[i++])});
  }
  t.print(std::cout);
  std::cout << "\n(a tau equal to the sweep maximum means DGEMM still wins "
            << "everywhere in range on that profile; rerun with "
            << "STRASSEN_BENCH_FULL=1 for a wider sweep)\n";
  return 0;
}
