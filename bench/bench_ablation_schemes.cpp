// Ablation: the computation schedules. STRASSEN1 vs STRASSEN2 for both
// beta cases (the paper: "our STRASSEN2 construction not only saves
// temporary memory but yields a code that has higher performance ... due
// to better locality of memory usage"), and Winograd vs the original 1969
// construction (15 vs 18 additions per level).
#include <iostream>

#include "bench_common.hpp"

using namespace strassen;

int main() {
  bench::banner("schedule ablation: STRASSEN1 / STRASSEN2 / original",
                "Section 3.2 + eqs. (4)-(5) design choices");

  const index_t m = bench::pick<index_t>(512, 1536);
  const double tau = bench::pick<double>(63.0, 127.0);
  bench::Problem p(m, m, m);

  struct Row {
    const char* label;
    core::Scheme scheme;
    double beta;
  };
  const Row rows[] = {
      {"STRASSEN1, beta=0", core::Scheme::strassen1, 0.0},
      {"STRASSEN2, beta=0", core::Scheme::strassen2, 0.0},
      {"original,  beta=0", core::Scheme::original, 0.0},
      {"STRASSEN1, beta=1", core::Scheme::strassen1, 1.0},
      {"STRASSEN2, beta=1", core::Scheme::strassen2, 1.0},
      {"original,  beta=1", core::Scheme::original, 1.0},
      {"automatic, beta=0", core::Scheme::automatic, 0.0},
      {"automatic, beta=1", core::Scheme::automatic, 1.0},
      {"fused,     beta=0", core::Scheme::fused, 0.0},
      {"fused,     beta=1", core::Scheme::fused, 1.0},
  };

  TextTable t({"configured", "ran", "time (s)", "workspace (doubles)",
               "workspace/m^2"});
  for (const Row& r : rows) {
    core::DgefmmConfig cfg;
    cfg.cutoff = core::CutoffCriterion::square_simple(tau);
    cfg.scheme = r.scheme;
    Arena arena;
    const double time = bench::time_dgefmm(p, 1.0, r.beta, cfg, arena, 2);
    t.add_row({r.label, bench::schedule_run_name(cfg, r.beta), fmt(time, 4),
               fmt(static_cast<long long>(arena.peak())),
               fmt(double(arena.peak()) / (double(m) * double(m)), 3)});
  }
  t.print(std::cout);
  std::cout << "\nreproduced claims: the automatic scheme picks the best "
               "schedule per beta case; STRASSEN2 handles beta!=0 with the "
               "minimum m^2 workspace; the Winograd schedules beat the "
               "original construction (fewer additions).\n";
  return 0;
}
