// Figure 4: DGEFMM vs the CRAY SGEMMS-like comparator (original 1969
// Strassen variant, memory-hungry all-products-then-combine schedule,
// dynamic padding) on the C90 machine profile. Reproduced claims: the two
// codes are broadly comparable, with DGEFMM's Winograd schedule doing
// fewer additions and far less temporary memory traffic.
#include <iostream>

#include "bench_common.hpp"
#include "compare/sgemms_like.hpp"

using namespace strassen;

int main() {
  bench::banner("DGEFMM vs CRAY SGEMMS-like (square, C90 profile)",
                "Figure 4");
  blas::ScopedMachine guard(blas::Machine::c90);

  const index_t lo = bench::pick<index_t>(160, 200);
  const index_t hi = bench::pick<index_t>(640, 2000);
  const index_t step = bench::pick<index_t>(64, 100);
  const double tau = 129.0;  // the paper's C90 crossover

  core::DgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::square_simple(tau);
  bench::report_schedule(cfg, 0.0);
  std::cout << "\n";

  TextTable t({"m", "t(DGEFMM)/t(SGEMMS-like)"});
  Arena arena_f, arena_s;
  double sum = 0.0;
  int count = 0;
  for (index_t m = lo; m <= hi; m += step) {
    bench::Problem p(m, m, m);
    const int reps = m >= 1024 ? 1 : 2;
    const double t_f = bench::time_dgefmm(p, 1.0, 0.0, cfg, arena_f, reps);
    compare::SgemmsConfig scfg;
    scfg.tau = tau;
    scfg.workspace = &arena_s;
    const double t_s = bench::time_problem(
        p,
        [&] {
          compare::sgemms(Trans::no, Trans::no, m, m, m, 1.0, p.a.data(),
                          p.a.ld(), p.b.data(), p.b.ld(), 0.0, p.c.data(),
                          p.c.ld(), scfg);
        },
        reps);
    t.add_row({fmt(static_cast<long long>(m)), fmt(t_f / t_s, 4)});
    sum += t_f / t_s;
    ++count;
  }
  t.print(std::cout);
  std::cout << "\naverage ratio: " << fmt(sum / count, 4)
            << "   (paper: 1.066 against the vendor-tuned CRAY routine; "
               "here both codes share kernels, so DGEFMM's lower add count "
               "and memory traffic shows directly)\n";
  std::cout << "workspace at m=" << hi << ": DGEFMM "
            << core::dgefmm_workspace_doubles(hi, hi, hi, 0.0, cfg)
            << " doubles vs SGEMMS-like "
            << compare::sgemms_workspace_doubles(hi, hi, hi,
                                                 compare::SgemmsConfig{tau})
            << " doubles\n";
  return 0;
}
