// Figure 6: DGEFMM vs DGEMMW-like on randomly generated RECTANGULAR
// problems, plotted against log10(2mkn), with general alpha and beta.
// Reproduced claim: the average ratio improves for rectangular problems
// relative to the square case (paper: 0.974 vs 0.991) because DGEMMW's
// simple cutoff (eq. 11) forgoes beneficial recursions that DGEFMM's
// hybrid criterion (eq. 15) takes.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "compare/dgemmw_like.hpp"
#include "support/stats.hpp"

using namespace strassen;

int main() {
  bench::banner("DGEFMM vs DGEMMW-like (random rectangular, general a/b)",
                "Figure 6");

  // Dimension ranges follow the paper: from around the rectangular
  // parameters (75/125/95) up to the sweep maximum.
  const index_t hi = bench::pick<index_t>(512, 2050);
  const int samples = bench::pick(14, 100);
  const double alpha = 0.7, beta = 0.3;

  core::DgefmmConfig cfg;  // paper-default hybrid criterion (199,75,125,95)
  bench::report_schedule(cfg, beta);
  std::cout << "\n";

  TextTable t({"log10(2mkn)", "m", "k", "n", "ratio"});
  Arena arena_f, arena_w;
  std::vector<double> ratios;
  Rng rng(777);
  for (int s = 0; s < samples; ++s) {
    const index_t m = rng.uniform_index(75, hi);
    const index_t k = rng.uniform_index(125, hi);
    const index_t n = rng.uniform_index(95, hi);
    bench::Problem p(m, k, n, static_cast<std::uint64_t>(s) + 1);
    compare::DgemmwConfig wcfg;
    wcfg.tau = 199.0;
    wcfg.workspace = &arena_w;
    const double t_f = bench::time_dgefmm(p, alpha, beta, cfg, arena_f, 2);
    const double t_w = bench::time_problem(
        p,
        [&] {
          compare::dgemmw(Trans::no, Trans::no, m, n, k, alpha, p.a.data(),
                          p.a.ld(), p.b.data(), p.b.ld(), beta, p.c.data(),
                          p.c.ld(), wcfg);
        },
        2);
    const double logwork = std::log10(2.0 * double(m) * double(k) * double(n));
    t.add_row({fmt(logwork, 2), fmt(static_cast<long long>(m)),
               fmt(static_cast<long long>(k)), fmt(static_cast<long long>(n)),
               fmt(t_f / t_w, 4)});
    ratios.push_back(t_f / t_w);
  }
  t.print(std::cout);
  const Summary s = summarize(ratios);
  std::cout << "\naverage ratio: " << fmt(s.mean, 4)
            << "  median: " << fmt(s.median, 4)
            << "   (paper: average 0.974 -- better than the square-case "
               "0.991 thanks to the hybrid rectangular criterion)\n";
  return 0;
}
