// Table 6: the ISDA symmetric eigensolver timed with DGEMM and with
// DGEFMM as its matrix-multiplication kernel (the paper's 1000x1000
// RS/6000 run: total 1168 -> 974 s, MM time 1030 -> 812 s, i.e. ~20% off
// the MM time). Reproduced claims: the solver is MM-dominated, and
// renaming DGEMM to DGEFMM yields a real application-level gain.
#include <iostream>

#include "bench_common.hpp"
#include "eigen/isda.hpp"

using namespace strassen;

int main() {
  bench::banner("ISDA eigensolver with DGEMM vs DGEFMM", "Table 6");

  const index_t n = bench::pick<index_t>(500, 1000);
  std::cout << "random symmetric " << n << "x" << n << " matrix\n\n";

  Rng rng(9);
  Matrix a(n, n);
  fill_random_symmetric(a.view(), rng);

  auto run = [&](eigen::GemmFn gemm) {
    eigen::IsdaOptions opts;
    opts.base_size = 32;
    opts.gemm = std::move(gemm);
    return eigen::isda_eigensolver(a.view(), opts);
  };

  const auto base = run(eigen::gemm_backend_dgemm());
  const auto fast = run(eigen::gemm_backend_dgefmm());

  TextTable t({"", "using DGEMM", "using DGEFMM", "ratio"});
  t.add_row({"total time (s)", fmt(base.stats.total_seconds, 2),
             fmt(fast.stats.total_seconds, 2),
             fmt(fast.stats.total_seconds / base.stats.total_seconds, 3)});
  t.add_row({"MM time (s)", fmt(base.stats.mm_seconds, 2),
             fmt(fast.stats.mm_seconds, 2),
             fmt(fast.stats.mm_seconds / base.stats.mm_seconds, 3)});
  t.print(std::cout);

  double max_dw = 0.0;
  for (std::size_t i = 0; i < base.eigenvalues.size(); ++i) {
    max_dw = std::max(max_dw,
                      std::abs(base.eigenvalues[i] - fast.eigenvalues[i]));
  }
  std::cout << "\nMM fraction of total (DGEMM run): "
            << fmt(100.0 * base.stats.mm_seconds / base.stats.total_seconds,
                   1)
            << "%   (paper: 88%)\n";
  std::cout << "paper ratios: total 974/1168 = 0.834, MM 812/1030 = 0.788\n";
  std::cout << "max eigenvalue difference between backends: " << max_dw
            << "\n";
  std::cout << "GEMM calls: " << base.stats.gemm_calls
            << ", beta iterations: " << base.stats.beta_iterations
            << ", splits: " << base.stats.splits << "\n";
  return 0;
}
