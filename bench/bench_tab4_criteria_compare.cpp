// Table 4: comparison of rectangular cutoff criteria. For each pair of
// criteria, random (m, k, n) problems are rejection-sampled so that the two
// criteria make OPPOSITE recursion decisions at the top level (on problems
// where they agree the codes are identical, as the paper notes), then
// DGEFMM is timed under both and the ratio new/other is summarized by
// range, quartiles, and average.
//
// Also prints the Section 4.2 motivating case m=160, k=1957, n=957 (full
// mode), where criterion (11) forgoes a beneficial extra recursion.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "support/stats.hpp"
#include "tuning/crossover.hpp"

using namespace strassen;
using core::CutoffCriterion;

namespace {

struct Comparison {
  std::string label;
  CutoffCriterion ours;   // (15)
  CutoffCriterion other;  // (11) or (12)
  bool two_dims_large;
  int samples;
};

double time_with(bench::Problem& p, const CutoffCriterion& cut,
                 Arena& arena) {
  core::DgefmmConfig cfg;
  cfg.cutoff = cut;
  return bench::time_dgefmm(p, 1.0, 0.0, cfg, arena, 2);
}

}  // namespace

int main() {
  bench::banner("cutoff criteria comparison on random problems",
                "Table 4 (plus the Section 4.2 rectangular example)");
  bench::report_schedule(core::DgefmmConfig{}, 0.0);

  // As in the paper, the criterion parameters are tuned on the actual host
  // first (Section 4.2 performs the Table 2/3 measurements before the
  // Table 4 comparison); a coarse search suffices here.
  tuning::CrossoverOptions topts;
  topts.min_size = 64;
  topts.max_size = bench::pick<index_t>(320, 768);
  topts.step = 32;
  topts.fixed_large = bench::pick<index_t>(448, 1500);
  topts.reps = 2;
  const CutoffCriterion tuned = tuning::tune_hybrid_criterion(topts);
  std::cout << "host-tuned criterion: " << tuned.describe() << "\n\n";
  const double tau = tuned.tau, tm = tuned.tau_m, tk = tuned.tau_k,
               tn = tuned.tau_n;
  const CutoffCriterion ours = CutoffCriterion::hybrid(tau, tm, tk, tn);
  const CutoffCriterion simple = CutoffCriterion::square_simple(tau);
  const CutoffCriterion higham = CutoffCriterion::higham_scaled(tau);

  // Dimension range as in the paper: from the smaller of tau/3 and the
  // rectangular parameters up to the sweep maximum.
  const index_t lo = std::max<index_t>(
      16, static_cast<index_t>(
              std::min(std::min(tau / 3.0, tm), std::min(tk, tn))));
  const index_t hi = bench::pick<index_t>(448, 2050);
  const index_t big = bench::pick<index_t>(384, 1800);
  const int n_small = bench::pick(8, 60);
  const int n_large = bench::pick(12, 120);

  std::vector<Comparison> comparisons = {
      {"(15)/(11)", ours, simple, false, n_small},
      {"(15)/(12)", ours, higham, false, n_large},
      {"(15)/(12), two dims large", ours, higham, true, n_small},
  };

  TextTable t({"comparison", "samples", "range", "quartiles", "average",
               "paper avg"});
  const char* paper_avg[] = {"0.9529", "1.0017", "0.9888"};
  int ci = 0;
  Rng rng(2024);
  for (const Comparison& cmp : comparisons) {
    std::vector<double> ratios;
    Arena arena;
    int tries = 0;
    while (static_cast<int>(ratios.size()) < cmp.samples &&
           tries < cmp.samples * 400) {
      ++tries;
      index_t m, k, n;
      if (cmp.two_dims_large) {
        m = rng.uniform_index(lo, hi);
        k = rng.uniform_index(big, hi);
        n = rng.uniform_index(big, hi);
        // Rotate which dimension is the small one.
        const index_t which = rng.uniform_index(0, 2);
        if (which == 1) std::swap(m, k);
        if (which == 2) std::swap(m, n);
      } else {
        m = rng.uniform_index(lo, hi);
        k = rng.uniform_index(lo, hi);
        n = rng.uniform_index(lo, hi);
      }
      if (cmp.ours.stop(m, k, n, 0) == cmp.other.stop(m, k, n, 0)) continue;
      bench::Problem p(m, k, n, static_cast<std::uint64_t>(tries));
      const double t_ours = time_with(p, cmp.ours, arena);
      const double t_other = time_with(p, cmp.other, arena);
      ratios.push_back(t_ours / t_other);
    }
    if (ratios.empty()) {
      // On hosts where the tuned rectangular parameters all exceed tau,
      // the hybrid and simple criteria coincide and there is nothing to
      // time -- the criteria have identical performance by construction.
      t.add_row({cmp.label, "0", "criteria agree", "everywhere in range",
                 "1.0000", paper_avg[ci++]});
      continue;
    }
    const Summary s = summarize(ratios);
    t.add_row({cmp.label, fmt(static_cast<long long>(s.count)),
               fmt(s.min, 4) + "-" + fmt(s.max, 4),
               fmt(s.q1, 4) + ";" + fmt(s.median, 4) + ";" + fmt(s.q3, 4),
               fmt(s.mean, 4), paper_avg[ci++]});
  }
  t.print(std::cout);
  std::cout << "\nratios < 1 mean the paper's hybrid criterion (15) is "
               "faster on problems where the criteria disagree.\n";

  // The Section 4.2 named example (full mode only; it needs k ~ 2000).
  if (bench::full_mode()) {
    bench::Problem p(160, 1957, 957);
    Arena arena;
    const double t_simple = time_with(p, simple, arena);
    const double t_ours = time_with(p, ours, arena);
    std::cout << "\nSection 4.2 example m=160 k=1957 n=957: hybrid/simple = "
              << fmt(t_ours / t_simple, 4) << "  (paper: 0.914)\n";
  }
  return 0;
}
