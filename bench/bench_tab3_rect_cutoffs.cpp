// Table 3: empirically determined rectangular cutoff parameters tau_m,
// tau_k, tau_n per machine profile (two dimensions fixed large, the third
// swept). The paper's headline observations, which this bench reproduces:
//  (a) DGEMM performance is NOT symmetric in the matrix dimensions
//      (tau_m != tau_k != tau_n), and
//  (b) tau_m + tau_k + tau_n generally differs from the square tau.
#include <iostream>

#include "bench_common.hpp"
#include "tuning/crossover.hpp"

using namespace strassen;

int main() {
  bench::banner("empirical rectangular cutoff parameters", "Table 3");

  tuning::CrossoverOptions opts;
  opts.min_size = bench::pick<index_t>(32, 48);
  opts.max_size = bench::pick<index_t>(384, 1024);
  opts.step = bench::pick<index_t>(32, 16);
  opts.fixed_large = bench::pick<index_t>(512, 1500);
  opts.reps = bench::pick(2, 3);

  TextTable t({"machine profile", "tau_m", "tau_k", "tau_n", "sum",
               "paper (tau_m,tau_k,tau_n)"});
  const char* paper[] = {"(75, 125, 95), sum 295", "(80, 45, 20), sum 145",
                         "(125, 75, 109), sum 309"};
  int i = 0;
  for (blas::Machine mach : blas::kAllMachines) {
    blas::ScopedMachine guard(mach);
    const auto rect = tuning::find_rectangular_params(opts);
    t.add_row({blas::machine_name(mach),
               fmt(static_cast<long long>(rect.tau_m)),
               fmt(static_cast<long long>(rect.tau_k)),
               fmt(static_cast<long long>(rect.tau_n)),
               fmt(static_cast<long long>(rect.tau_m + rect.tau_k +
                                          rect.tau_n)),
               paper[i++]});
  }
  t.print(std::cout);
  std::cout << "\n(the asymmetry pattern is profile-specific, as on the "
               "paper's machines; with two dimensions large, small swept "
               "dimensions already profit from recursion, so tau_* sit "
               "well below the square tau)\n";
  return 0;
}
