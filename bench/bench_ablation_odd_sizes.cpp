// Ablation: dynamic peeling (the paper's choice) vs dynamic padding
// (Douglas et al.) vs static padding, on deliberately awkward odd sizes.
// The paper argues peeling wins on operation count and memory; this bench
// measures both time and workspace for each strategy.
#include <iostream>

#include "bench_common.hpp"

using namespace strassen;

int main() {
  bench::banner("odd-dimension strategies: peeling vs padding",
                "Section 3.3 design choice (ablation)");
  bench::report_schedule(core::DgefmmConfig{}, 0.0);

  const index_t base = bench::pick<index_t>(256, 1024);
  // Worst-case odd patterns: all-odd just above a power of two (padding
  // must round the whole recursion tree up), mixed odd/even, primes.
  const index_t sizes[][3] = {{base + 1, base + 1, base + 1},
                              {base - 1, base + 1, base - 1},
                              {base + 1, base, base},
                              {257, 509, 251}};

  TextTable t({"m,k,n", "strategy", "time (s)", "workspace (doubles)",
               "peel fixups", "pad copies"});
  for (const auto& s : sizes) {
    bench::Problem p(s[0], s[1], s[2]);
    for (core::OddStrategy odd : {core::OddStrategy::dynamic_peeling,
                                  core::OddStrategy::dynamic_padding,
                                  core::OddStrategy::static_padding}) {
      core::DgefmmConfig cfg;
      cfg.cutoff = core::CutoffCriterion::square_simple(
          bench::pick<double>(63.0, 127.0));
      cfg.odd = odd;
      core::DgefmmStats stats;
      cfg.stats = &stats;
      Arena arena;
      const double time = bench::time_dgefmm(p, 1.0, 0.0, cfg, arena, 2);
      const char* name = odd == core::OddStrategy::dynamic_peeling
                             ? "dynamic peeling"
                             : (odd == core::OddStrategy::dynamic_padding
                                    ? "dynamic padding"
                                    : "static padding");
      t.add_row({fmt(static_cast<long long>(s[0])) + "," +
                     fmt(static_cast<long long>(s[1])) + "," +
                     fmt(static_cast<long long>(s[2])),
                 name, fmt(time, 4),
                 fmt(static_cast<long long>(arena.peak())),
                 fmt(stats.peel_fixups), fmt(stats.pad_copies)});
    }
  }
  t.print(std::cout);
  std::cout << "\nreproduced claim: peeling needs no extra workspace beyond "
               "the even core and is competitive in time -- 'the dynamic "
               "peeling technique using rank-one updates is indeed a viable "
               "alternative' (Section 4.3).\n";
  return 0;
}
