// Extension bench: complex multiplication. ZGEFMM (3M decomposition with
// DGEFMM inside) against the conventional 4M ZGEMM -- the feature the paper
// notes DGEMMW had and DGEFMM lacked. Expected gain compounds the 3M
// saving (3 real multiplies instead of 4) with Strassen's saving on each.
#include <complex>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/zgefmm.hpp"

using namespace strassen;
using cplx = std::complex<double>;

int main() {
  bench::banner("complex multiply: 3M ZGEFMM vs 4M ZGEMM",
                "extension (cf. Section 4.3's DGEMMW complex-support note)");

  const index_t lo = bench::pick<index_t>(192, 256);
  const index_t hi = bench::pick<index_t>(640, 1536);
  const index_t step = bench::pick<index_t>(112, 256);
  const cplx alpha(0.7, -0.2), beta(0.3, 0.1);

  core::DgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::square_simple(127);
  Arena arena;
  cfg.workspace = &arena;

  TextTable t({"m", "t(ZGEMM 4M) s", "t(ZGEFMM 3M) s", "ratio 3M/4M"});
  double sum = 0.0;
  int count = 0;
  for (index_t m = lo; m <= hi; m += step) {
    Rng rng(static_cast<std::uint64_t>(m));
    std::vector<cplx> a(static_cast<std::size_t>(m * m));
    std::vector<cplx> b(static_cast<std::size_t>(m * m));
    std::vector<cplx> c0(static_cast<std::size_t>(m * m));
    for (auto& x : a) x = cplx(rng.uniform(), rng.uniform());
    for (auto& x : b) x = cplx(rng.uniform(), rng.uniform());
    for (auto& x : c0) x = cplx(rng.uniform(), rng.uniform());
    auto c = c0;
    const int reps = m >= 1024 ? 1 : 2;

    double t4m = 1e300, t3m = 1e300;
    for (int r = 0; r < reps; ++r) {
      c = c0;
      Timer timer;
      if (core::zgemm4m(Trans::no, Trans::no, m, m, m, alpha, a.data(), m,
                        b.data(), m, beta, c.data(), m) != 0) {
        std::abort();
      }
      t4m = std::min(t4m, timer.seconds());
    }
    for (int r = 0; r < reps; ++r) {
      c = c0;
      Timer timer;
      if (core::zgefmm(Trans::no, Trans::no, m, m, m, alpha, a.data(), m,
                       b.data(), m, beta, c.data(), m, cfg) != 0) {
        std::abort();
      }
      t3m = std::min(t3m, timer.seconds());
    }
    t.add_row({fmt(static_cast<long long>(m)), fmt(t4m, 4), fmt(t3m, 4),
               fmt(t3m / t4m, 4)});
    sum += t3m / t4m;
    ++count;
  }
  t.print(std::cout);
  std::cout << "\naverage ratio: " << fmt(sum / count, 4)
            << "  (3/4 = 0.75 from the 3M decomposition alone; Strassen "
               "recursion pushes it lower as m grows)\n";
  return 0;
}
