// Extension bench: the model-derived cutoff (companion report [14]) vs the
// empirically tuned one. Fits the DGEMM and add-kernel cost models from a
// few timed samples, derives the hybrid criterion analytically, and
// compares it with the full crossover-sweep tuner -- per machine profile.
#include <iostream>

#include "bench_common.hpp"
#include "tuning/cost_model.hpp"
#include "tuning/crossover.hpp"

using namespace strassen;

int main() {
  bench::banner("model-derived vs empirically tuned cutoff parameters",
                "Section 3.4 / companion report [14] (extension)");

  const index_t fit_size = bench::pick<index_t>(384, 1024);
  tuning::CrossoverOptions opts;
  opts.min_size = 64;
  opts.max_size = bench::pick<index_t>(384, 1024);
  opts.step = 32;
  opts.fixed_large = bench::pick<index_t>(512, 1500);
  opts.reps = 2;

  TextTable t({"machine", "source", "tau", "tau_m", "tau_k", "tau_n"});
  for (blas::Machine mach : blas::kAllMachines) {
    blas::ScopedMachine guard(mach);

    const tuning::GemmCostModel gemm =
        tuning::measure_gemm_cost_model(fit_size, 2);
    const tuning::AddCostModel add =
        tuning::measure_add_cost_model(fit_size, 2);
    const core::CutoffCriterion model_crit =
        tuning::criterion_from_models(gemm, add);
    t.add_row({blas::machine_name(mach), "cost model", fmt(model_crit.tau, 0),
               fmt(model_crit.tau_m, 0), fmt(model_crit.tau_k, 0),
               fmt(model_crit.tau_n, 0)});

    const core::CutoffCriterion tuned = tuning::tune_hybrid_criterion(opts);
    t.add_row({blas::machine_name(mach), "sweep tuner", fmt(tuned.tau, 0),
               fmt(tuned.tau_m, 0), fmt(tuned.tau_k, 0),
               fmt(tuned.tau_n, 0)});
  }
  t.print(std::cout);
  std::cout << "\nthe model fit needs ~16 timed samples per machine; the "
               "sweep tuner needs hundreds. Agreement in the tau magnitudes "
               "validates the report-[14] modeling approach; discrepancies "
               "mark where the linear cost model misses cache effects.\n";
  return 0;
}
