// Figure 5: DGEFMM vs the DGEMMW-like comparator (Douglas et al.) on
// square matrices with general alpha and beta. Reproduced claim: DGEFMM's
// STRASSEN2 schedule, which folds beta*C into the recursion with the
// minimal three temporaries, is at least on par with DGEMMW's
// full-product-temporary approach (paper average 0.991) while using 40%
// less memory.
#include <iostream>

#include "bench_common.hpp"
#include "compare/dgemmw_like.hpp"

using namespace strassen;

int main() {
  bench::banner("DGEFMM vs DGEMMW-like (square, general alpha/beta)",
                "Figure 5");

  const index_t lo = bench::pick<index_t>(192, 200);
  const index_t hi = bench::pick<index_t>(640, 2200);
  const index_t step = bench::pick<index_t>(64, 100);
  const double tau = 199.0;
  const double alpha = 0.7, beta = 0.3;

  core::DgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::square_simple(tau);
  bench::report_schedule(cfg, beta);
  bench::report_schedule(cfg, 0.0);
  std::cout << "\n";

  TextTable t({"m", "ratio general", "ratio (a=1,b=0)"});
  Arena arena_f, arena_w;
  double sum_general = 0.0, sum_simple = 0.0;
  int count = 0;
  for (index_t m = lo; m <= hi; m += step) {
    bench::Problem p(m, m, m);
    const int reps = m >= 1024 ? 1 : 2;
    compare::DgemmwConfig wcfg;
    wcfg.tau = tau;
    wcfg.workspace = &arena_w;
    auto time_w = [&](double a, double b) {
      return bench::time_problem(
          p,
          [&] {
            compare::dgemmw(Trans::no, Trans::no, m, m, m, a, p.a.data(),
                            p.a.ld(), p.b.data(), p.b.ld(), b, p.c.data(),
                            p.c.ld(), wcfg);
          },
          reps);
    };
    const double rg = bench::time_dgefmm(p, alpha, beta, cfg, arena_f, reps) /
                      time_w(alpha, beta);
    const double rs = bench::time_dgefmm(p, 1.0, 0.0, cfg, arena_f, reps) /
                      time_w(1.0, 0.0);
    t.add_row({fmt(static_cast<long long>(m)), fmt(rg, 4), fmt(rs, 4)});
    sum_general += rg;
    sum_simple += rs;
    ++count;
  }
  t.print(std::cout);
  std::cout << "\naverage ratio, general alpha/beta: "
            << fmt(sum_general / count, 4) << "   (paper: 0.991)\n";
  std::cout << "average ratio, alpha=1/beta=0   : "
            << fmt(sum_simple / count, 4)
            << "   (paper: 1.0089 -- the beta==0 paths are near-identical "
               "schedules)\n";
  return 0;
}
