// Extension: the packing-fused schedule vs the classic schedules over the
// Figure 2 square sweep. The fused top level forms the Strassen operand
// sums inside the GEMM packing pass and scatters each product into its C
// quadrants from the micro-kernel epilogue, so it removes the O(n^2)
// add-pass traffic (and the arena temporaries) the STRASSEN1/STRASSEN2
// schedules spend at the levels it covers. Expected shape: fused matches
// or beats STRASSEN1 from moderate orders upward, with the gap opening as
// the add passes stop fitting in cache.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

using namespace strassen;

int main() {
  bench::banner("packing-fused schedule vs STRASSEN1/STRASSEN2 vs DGEMM",
                "Figure 2 sweep (extension: fused packing)");

  const double tau = bench::pick<double>(63.0, 127.0);
  const index_t lo = bench::pick<index_t>(256, 256);
  const index_t hi = bench::pick<index_t>(1280, 2176);
  const index_t step = bench::pick<index_t>(256, 192);
  const double alpha = 1.0, beta = 0.25;  // general case: all schedules pay beta

  core::DgefmmConfig base;
  base.cutoff = core::CutoffCriterion::square_simple(tau);

  core::DgefmmConfig s1 = base, s2 = base, fused1 = base, fused2 = base;
  s1.scheme = core::Scheme::strassen1;
  s2.scheme = core::Scheme::strassen2;
  fused1.scheme = fused2.scheme = core::Scheme::fused;
  fused1.fused_levels = 1;
  fused2.fused_levels = 2;
  bench::report_schedule(s1, beta);
  bench::report_schedule(s2, beta);
  bench::report_schedule(fused1, beta);
  bench::report_schedule(fused2, beta);
  std::cout << "\n";

  TextTable t({"m", "MF(DGEMM)", "MF(S1)", "MF(S2)", "MF(fused L1)",
               "MF(fused L2)", "S1/best-fused", "ws fused/S2"});
  Arena a_s1, a_s2, a_f1, a_f2;
  int wins = 0, rows = 0;
  for (index_t m = lo; m <= hi; m += step) {
    bench::Problem p(m, m, m);
    const int reps = m >= 1024 ? 2 : 3;
    const double flop = 2.0 * double(m) * double(m) * double(m);
    const double mf = 1e-6 * flop;
    const double t_dgemm = bench::time_dgemm(p, alpha, beta, reps);
    const double t_s1 = bench::time_dgefmm(p, alpha, beta, s1, a_s1, reps);
    const double t_s2 = bench::time_dgefmm(p, alpha, beta, s2, a_s2, reps);
    const double t_f1 = bench::time_dgefmm(p, alpha, beta, fused1, a_f1, reps);
    const double t_f2 = bench::time_dgefmm(p, alpha, beta, fused2, a_f2, reps);
    // The fusion depth is a tuning knob like tau; compare the better one.
    const double t_f = std::min(t_f1, t_f2);
    const count_t w_f = core::dgefmm_workspace_doubles(m, m, m, beta, fused2);
    const count_t w_s2 = core::dgefmm_workspace_doubles(m, m, m, beta, s2);
    t.add_row({fmt(static_cast<long long>(m)), fmt(mf / t_dgemm, 1),
               fmt(mf / t_s1, 1), fmt(mf / t_s2, 1), fmt(mf / t_f1, 1),
               fmt(mf / t_f2, 1), fmt(t_s1 / t_f, 3),
               fmt(w_s2 > 0 ? double(w_f) / double(w_s2) : 0.0, 3)});
    if (m >= 1024) {
      ++rows;
      if (t_f <= t_s1) ++wins;
    }
  }
  t.print(std::cout);
  std::cout << "\nfused >= STRASSEN1 throughput at " << wins << "/" << rows
            << " orders m >= 1024 (acceptance target: all).\n";
  std::cout << "ws fused/S2 < 1 everywhere: the fused levels allocate no "
               "arena temporaries at all; only leaves that still recurse "
               "classically materialize operands, at quarter dimensions.\n";
  return 0;
}
