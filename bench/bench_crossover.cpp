// Crossover bench (tentpole for the auto-tuning PR): run a real autotune
// pass on this host, install the resulting policy, then sweep square orders
// m = 1024..8192 (smoke: smaller) across every schedule the library has --
// plain DGEMM, the classic eq.-15 hybrid, forced STRASSEN1/STRASSEN2,
// fused x2, the task-DAG top level at 1..bench_threads() lanes, and
// finally `use_tuned` dispatch consulting the freshly installed policy.
// Emits BENCH_crossover.json with per-shape times, the tuned-path the
// policy selected at each shape, and the tuned-vs-DGEMM speedup the
// acceptance gate reads (>= 1.15x at the largest shape where the host
// allows).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/tuned_policy.hpp"
#include "core/workspace.hpp"
#include "parallel/parallel_strassen.hpp"
#include "parallel/task_dag.hpp"
#include "tuning/autotune.hpp"

using namespace strassen;

namespace {

double mflops(index_t m, index_t n, index_t k, double seconds) {
  return 2.0 * double(m) * double(n) * double(k) / seconds * 1e-6;
}

struct Run {
  std::string config;
  std::size_t threads;
  double seconds;
  double mf;
  double speedup_vs_dgemm;
};

struct ShapeResult {
  index_t m;
  double dgemm_seconds;
  std::vector<Run> runs;
  std::string tuned_path;   // what the installed policy picked here
  double tuned_speedup;     // tuned dispatch vs own DGEMM
  bool deterministic;       // tuned run bitwise equal across thread budgets
};

// Times one parallel (task-DAG capable) configuration on p.
double time_parallel(bench::Problem& p, parallel::ParallelDgefmmConfig cfg,
                     Arena& arena, int reps) {
  cfg.workspace = &arena;
  const index_t m = p.m();
  return bench::time_problem(
      p,
      [&] {
        if (parallel::dgefmm_parallel(Trans::no, Trans::no, m, m, m, 1.0,
                                      p.a.data(), p.a.ld(), p.b.data(),
                                      p.b.ld(), 0.0, p.c.data(), p.c.ld(),
                                      cfg) != 0) {
          std::abort();
        }
      },
      reps);
}

}  // namespace

int main() {
  bench::banner("crossover auto-tuning: tuned hybrid vs every schedule",
                "Section 4.2 eq. 15, extended per-kernel/per-scheme");

  const std::size_t bt = bench::bench_threads();
  const std::size_t pool = parallel::global_pool().size();

  // Stage 1: measure this host. A modest sweep is enough -- the crossovers
  // live well below the bench shapes, and the persisted taus extrapolate
  // upward in Strassen's favour.
  tuning::AutotuneOptions opts;
  opts.min_size = 256;
  opts.max_size = bench::pick<index_t>(768, 2048);
  opts.reps = bench::pick(1, 2);
  opts.dag_threads = bt;
  std::printf("autotuning (sweep %d..%d, reps %d, dag threads %zu)...\n",
              int(opts.min_size), int(opts.max_size), opts.reps, bt);
  const tuning::TunedCriteria tuned = tuning::autotune_double(opts);
  std::printf(
      "  kernel %s  tau_fused %.0f  tau_fused2 %.0f  tau_hybrid %.0f  "
      "tau_s2 %.0f  tau_dag %.0f\n",
      tuned.kernel.c_str(), tuned.tau_fused, tuned.tau_fused2,
      tuned.tau_hybrid, tuned.tau_s2, tuned.tau_dag);
  if (!tuning::install_criteria(tuned)) {
    std::fprintf(stderr, "install_criteria rejected the fresh criteria\n");
    return 1;
  }

  // Stage 2: sweep shapes across schedules. Min-of-2 everywhere: host
  // frequency drift between consecutive 20-second runs is larger than the
  // crossover margins being measured, and a single rep charges whichever
  // config runs during the slow phase (the spread between two runs of the
  // *same* schedule at m = 8192 was measured at 11%).
  std::vector<index_t> shapes =
      bench::full_mode()
          ? std::vector<index_t>{1024, 2048, 3072, 4096, 6144, 8192}
          : std::vector<index_t>{384, 768, 1024};

  std::vector<ShapeResult> results;
  for (const index_t m : shapes) {
    const int reps = 2;
    bench::Problem p(m, m, m);
    // Untimed warmup: first contact with the fresh operands (page faults)
    // must not land inside the first timed config -- it is the baseline
    // every other config is normalized against.
    (void)bench::time_dgemm(p, 1.0, 0.0, 1);
    ShapeResult sr;
    sr.m = m;
    sr.dgemm_seconds = bench::time_dgemm(p, 1.0, 0.0, reps);

    auto add = [&](const std::string& name, std::size_t threads, double t) {
      sr.runs.push_back(
          Run{name, threads, t, mflops(m, m, m, t), sr.dgemm_seconds / t});
    };
    add("dgemm", 1, sr.dgemm_seconds);

    Arena arena;
    {  // the classic eq.-15 hybrid and the forced schemes, tuned cutoffs
      core::DgefmmConfig cfg;
      cfg.cutoff = tuned.beta_zero;
      cfg.scheme = core::Scheme::automatic;
      add("hybrid-auto", 1, bench::time_dgefmm(p, 1.0, 0.0, cfg, arena, reps));
      cfg.scheme = core::Scheme::strassen1;
      add("strassen1", 1, bench::time_dgefmm(p, 1.0, 0.0, cfg, arena, reps));
      cfg.scheme = core::Scheme::strassen2;
      add("strassen2", 1, bench::time_dgefmm(p, 1.0, 0.0, cfg, arena, reps));
      cfg.scheme = core::Scheme::fused;
      cfg.fused_levels = 2;
      add("fused-x2", 1, bench::time_dgefmm(p, 1.0, 0.0, cfg, arena, reps));
    }
    {  // the task-DAG schedule at each thread budget
      std::vector<std::size_t> budgets = {1, bt};
      std::sort(budgets.begin(), budgets.end());
      budgets.erase(std::unique(budgets.begin(), budgets.end()),
                    budgets.end());
      for (const std::size_t threads : budgets) {
        parallel::ParallelDgefmmConfig cfg;
        cfg.cutoff = tuned.beta_zero;
        cfg.scheme = core::Scheme::fused;
        cfg.threads = threads;
        add("dag", threads, time_parallel(p, cfg, arena, reps));
      }
    }
    {  // tuned dispatch: the policy picks the path, we record which
      parallel::ParallelDgefmmConfig cfg;
      cfg.use_tuned = true;
      cfg.threads = bt;
      core::DgefmmStats stats;
      cfg.stats = &stats;
      const double t = time_parallel(p, cfg, arena, reps);
      add("tuned", bt, t);
      sr.tuned_path =
          stats.tuned_path != nullptr ? stats.tuned_path : "(none)";
      sr.tuned_speedup = sr.dgemm_seconds / t;
      sr.deterministic = true;
      if (bt > 1) {  // bitwise identity across thread budgets
        Matrix c_ref(m, m);
        copy(p.c.view(), c_ref.view());
        parallel::ParallelDgefmmConfig one = cfg;
        one.threads = 1;
        (void)time_parallel(p, one, arena, 1);
        sr.deterministic =
            std::memcmp(c_ref.data(), p.c.data(),
                        std::size_t(m) * std::size_t(m) * sizeof(double)) ==
            0;
      }
    }
    results.push_back(sr);

    std::printf("m=%d: dgemm %.3fs, tuned %.3fs (%.2fx, path %s%s)\n",
                int(m), sr.dgemm_seconds,
                sr.runs.back().seconds, sr.tuned_speedup,
                sr.tuned_path.c_str(),
                sr.deterministic ? "" : ", NOT bitwise-stable");
  }

  TextTable table({"m", "config", "threads", "time (s)", "MFLOPS",
                   "vs DGEMM", "tuned path"});
  for (const ShapeResult& sr : results) {
    for (const Run& r : sr.runs) {
      table.add_row({std::to_string(sr.m), r.config,
                     std::to_string(r.threads), fmt(r.seconds, 4),
                     fmt(r.mf, 0), fmt(r.speedup_vs_dgemm, 2),
                     r.config == "tuned" ? sr.tuned_path : "-"});
    }
  }
  table.print(std::cout);

  const char* json_env = std::getenv("STRASSEN_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_crossover.json";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"kernel\": \"%s\",\n", tuned.kernel.c_str());
  std::fprintf(f, "  \"pool_workers\": %zu,\n", pool);
  std::fprintf(f, "  \"bench_threads\": %zu,\n", bt);
  std::fprintf(f,
               "  \"criteria\": {\"tau_fused\": %.1f, \"tau_fused2\": %.1f, "
               "\"tau_hybrid\": %.1f, \"tau_s2\": %.1f, \"tau_dag\": %.1f, "
               "\"threads\": %d},\n",
               tuned.tau_fused, tuned.tau_fused2, tuned.tau_hybrid,
               tuned.tau_s2, tuned.tau_dag, tuned.threads);
  std::fprintf(f, "  \"shapes\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ShapeResult& sr = results[i];
    std::fprintf(f,
                 "    {\"m\": %d, \"tuned_path\": \"%s\", "
                 "\"tuned_speedup_vs_dgemm\": %.3f, \"deterministic\": %s, "
                 "\"runs\": [\n",
                 int(sr.m), sr.tuned_path.c_str(), sr.tuned_speedup,
                 sr.deterministic ? "true" : "false");
    for (std::size_t j = 0; j < sr.runs.size(); ++j) {
      const Run& r = sr.runs[j];
      std::fprintf(f,
                   "      {\"config\": \"%s\", \"threads\": %zu, "
                   "\"seconds\": %.6f, \"mflops\": %.1f, "
                   "\"speedup_vs_dgemm\": %.3f}%s\n",
                   r.config.c_str(), r.threads, r.seconds, r.mf,
                   r.speedup_vs_dgemm, j + 1 < sr.runs.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
