// Table 5: DGEMM vs DGEFMM times at the smallest orders that trigger 1, 2,
// 3, ... levels of recursion (m = 2^j (tau+1)), with alpha = 1/3 and
// beta = 1/4 as in the paper. Reproduced claims:
//  * DGEFMM's time grows by ~7x per doubling (the Strassen exponent),
//  * at the deepest level DGEFMM/DGEMM lands around 0.66-0.78.
#include <iostream>

#include "bench_common.hpp"

using namespace strassen;

int main() {
  bench::banner("recursion-depth scaling, alpha=1/3 beta=1/4", "Table 5");

  const double alpha = 1.0 / 3.0, beta = 1.0 / 4.0;
  // The paper uses each machine's measured tau; we use a fixed moderate tau
  // so the bench runs everywhere, and let the cutoff be exactly tau so that
  // order 2^j (tau+1) performs j recursions.
  const index_t tau = bench::pick<index_t>(128, 199);
  const int max_level = bench::pick(2, 4);

  core::DgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::square_simple(static_cast<double>(tau));
  bench::report_schedule(cfg, beta);
  std::cout << "\n";

  TextTable t({"order", "levels", "t(DGEMM) s", "t(DGEFMM) s",
               "DGEFMM/DGEMM", "DGEFMM growth"});
  Arena arena;
  double prev_dgefmm = 0.0;
  for (int j = 0; j <= max_level; ++j) {
    const index_t m = (index_t{1} << j) * (tau + 1);
    bench::Problem p(m, m, m);
    core::DgefmmStats stats;
    cfg.stats = &stats;
    const int reps = j >= 3 ? 1 : 2;
    const double t_dgemm = bench::time_dgemm(p, alpha, beta, reps);
    stats.reset();
    const double t_dgefmm = bench::time_dgefmm(p, alpha, beta, cfg, arena,
                                               reps);
    t.add_row({fmt(static_cast<long long>(m)),
               fmt(static_cast<long long>(stats.max_depth)),
               fmt(t_dgemm, 4), fmt(t_dgefmm, 4),
               fmt(t_dgefmm / t_dgemm, 3),
               prev_dgefmm > 0.0 ? fmt(t_dgefmm / prev_dgefmm, 2) + "x"
                                 : "-"});
    prev_dgefmm = t_dgefmm;
  }
  t.print(std::cout);
  std::cout << "\npaper: DGEFMM growth within 10% of the theoretical 7x per "
               "doubling; final-row DGEFMM/DGEMM between 0.66 and 0.78.\n";
  return 0;
}
