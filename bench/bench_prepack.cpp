// Prepacked-operand serving benchmark: a repeated-weights trace (many
// skinny activations against a handful of shared B matrices) pushed
// through serve::Queue twice -- once packing B fresh inside every request,
// once streaming each shape's B from a blas::gefmm_pack_b handle carried
// on the submission. The shapes sit below the recursion cutoff, so every
// request runs the single top-level packed GEMM that consults the handle;
// with m << k,n the B-pack traffic dominates that call, which is exactly
// the serving workload the prepack API exists for. Emits
// BENCH_prepack.json (path overridable via STRASSEN_BENCH_JSON) with the
// fresh/prepacked throughputs and their ratio.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "blas/pack_operand.hpp"
#include "serve/serve.hpp"

using namespace strassen;

namespace {

struct TraceShape {
  index_t m, k, n;
};

struct ModeResult {
  std::string name;
  std::size_t requests = 0;
  double seconds = 0.0;
  double rps = 0.0;
  serve::ServingStats stats;
};

// Submits the whole trace from `submitters` threads, round-robin over the
// shapes, waiting tickets in small bursts over a reused ring of C buffers.
// `packs[i]` (when non-null) rides on every request against shape i.
double run_trace(serve::Queue& q, const std::vector<TraceShape>& shapes,
                 const std::vector<Matrix>& as, const std::vector<Matrix>& bs,
                 const std::vector<const blas::PackedOperand*>& packs,
                 std::size_t requests, int submitters) {
  constexpr std::size_t kBurst = 4;
  Timer timer;
  std::vector<std::thread> threads;
  for (int s = 0; s < submitters; ++s) {
    threads.emplace_back([&, s] {
      index_t max_m = 1, max_n = 1;
      for (const TraceShape& ts : shapes) {
        max_m = std::max(max_m, ts.m);
        max_n = std::max(max_n, ts.n);
      }
      std::vector<Matrix> cs;
      for (std::size_t j = 0; j < kBurst; ++j) cs.emplace_back(max_m, max_n);
      const std::size_t share =
          requests / static_cast<std::size_t>(submitters);
      std::vector<serve::Ticket> tickets;
      for (std::size_t i = 0; i < share; i += kBurst) {
        tickets.clear();
        const std::size_t burst = std::min(kBurst, share - i);
        for (std::size_t j = 0; j < burst; ++j) {
          const std::size_t seq =
              static_cast<std::size_t>(s) * share + i + j;
          const std::size_t si = seq % shapes.size();
          const TraceShape& ts = shapes[si];
          serve::GemmRequest req;
          req.m = ts.m;
          req.n = ts.n;
          req.k = ts.k;
          req.alpha = 1.0;
          req.beta = 0.0;
          req.a = as[si].data();
          req.lda = as[si].ld();
          req.b = bs[si].data();
          req.ldb = bs[si].ld();
          req.c = cs[j].data();
          req.ldc = cs[j].ld();
          req.on_failure = core::FailurePolicy::fallback;
          req.packed_b = packs[si];
          tickets.push_back(q.submit(req));
        }
        for (serve::Ticket& t : tickets) t.wait();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return timer.seconds();
}

ModeResult run_mode(const char* name, const std::vector<TraceShape>& shapes,
                    const std::vector<Matrix>& as,
                    const std::vector<Matrix>& bs,
                    const std::vector<const blas::PackedOperand*>& packs,
                    std::size_t requests, int submitters, int workers) {
  serve::ServeOptions opt;
  opt.policy = serve::OverflowPolicy::block;
  opt.workers = workers;
  serve::Queue q(opt);
  // Warm the queue, the thread pool, and the pack scratch before timing.
  run_trace(q, shapes, as, bs, packs, shapes.size() * 2, submitters);
  const serve::ServingStats warm = q.stats();
  const double secs = run_trace(q, shapes, as, bs, packs, requests,
                                submitters);
  ModeResult r;
  r.name = name;
  r.requests = requests;
  r.seconds = secs;
  r.rps = static_cast<double>(requests) / secs;
  r.stats = q.stats();
  // Subtract the warm-up's counters so hit/miss reflect the timed trace.
  r.stats.gefmm.pack_hits -= warm.gefmm.pack_hits;
  r.stats.gefmm.pack_misses -= warm.gefmm.pack_misses;
  return r;
}

}  // namespace

int main() {
  bench::banner("prepacked operands: repeated-weights serving trace",
                "prepack API extension (DESIGN.md section 15)");

  const bool full = bench::full_mode();
  std::vector<TraceShape> shapes;
  // Skinny activation heights: with m << k,n the per-request B pack is the
  // dominant memory traffic of the single packed GEMM each request runs
  // (the pack-to-compute ratio scales as 1/m), which is the shape class
  // weight-stationary serving actually submits.
  const std::vector<index_t> ms = full ? std::vector<index_t>{8, 16}
                                       : std::vector<index_t>{8, 16};
  const std::vector<index_t> kns =
      full ? std::vector<index_t>{384, 512, 768, 1024}
           : std::vector<index_t>{256, 384};
  for (index_t m : ms) {
    for (index_t kn : kns) shapes.push_back({m, kn, kn});
  }
  const std::size_t requests = full ? 1024 : 256;
  const int submitters = 2;
  const int workers = static_cast<int>(
      std::min<std::size_t>(bench::bench_threads(), 64));

  // Shared read-only operands: one activation A and one weights B per
  // shape. The whole point of the trace is that B repeats.
  std::vector<Matrix> as, bs;
  {
    Rng rng(4242);
    for (const TraceShape& ts : shapes) {
      as.push_back(random_matrix(ts.m, ts.k, rng));
      bs.push_back(random_matrix(ts.k, ts.n, rng));
    }
  }

  // Pack every shape's B once; the handles back the whole prepacked trace.
  std::vector<blas::PackedOperand> handles;
  handles.reserve(shapes.size());
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    handles.push_back(blas::gefmm_pack_b<double>(
        make_view(bs[i].data(), shapes[i].k, shapes[i].n, bs[i].ld())));
  }
  std::vector<const blas::PackedOperand*> fresh(shapes.size(), nullptr);
  std::vector<const blas::PackedOperand*> packed;
  packed.reserve(shapes.size());
  for (const blas::PackedOperand& h : handles) packed.push_back(&h);

  const ModeResult rf = run_mode("fresh", shapes, as, bs, fresh, requests,
                                 submitters, workers);
  const ModeResult rp = run_mode("prepacked", shapes, as, bs, packed,
                                 requests, submitters, workers);
  const double speedup = rp.rps / rf.rps;

  TextTable table({"mode", "req/s", "p50 ms", "p99 ms", "done", "pack hits",
                   "pack misses"});
  for (const ModeResult* r : {&rf, &rp}) {
    table.add_row({r->name, fmt(r->rps, 1), fmt(r->stats.p50_ms, 2),
                   fmt(r->stats.p99_ms, 2),
                   std::to_string(r->stats.completed),
                   std::to_string(r->stats.gefmm.pack_hits),
                   std::to_string(r->stats.gefmm.pack_misses)});
  }
  table.print(std::cout);
  std::cout << "\nprepacked/fresh throughput: " << fmt(speedup, 2)
            << "x (every prepacked request streams B from its handle; "
               "hits count streamed operand blocks)\n";
  if (rp.stats.gefmm.pack_hits == 0) {
    std::cout << "WARNING: prepacked trace recorded no pack hits -- the "
                 "handles were not consulted\n";
  }

  const char* json_env = std::getenv("STRASSEN_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_prepack.json";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"kernel\": \"%s\",\n", blas::active_kernel().name);
  std::fprintf(f, "  \"pool_workers\": %zu,\n",
               parallel::global_pool().size());
  std::fprintf(f, "  \"bench_threads\": %zu,\n", bench::bench_threads());
  std::fprintf(f,
               "  \"trace\": {\"requests\": %zu, \"submitters\": %d, "
               "\"workers\": %d, \"shapes\": [",
               requests, submitters, workers);
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    std::fprintf(f, "{\"m\": %d, \"k\": %d, \"n\": %d}%s",
                 static_cast<int>(shapes[i].m), static_cast<int>(shapes[i].k),
                 static_cast<int>(shapes[i].n),
                 i + 1 < shapes.size() ? ", " : "");
  }
  std::fprintf(f, "]},\n");
  for (const ModeResult* r : {&rf, &rp}) {
    std::fprintf(
        f,
        "  \"%s\": {\"seconds\": %.6f, \"throughput_rps\": %.2f, "
        "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"completed\": %llu, "
        "\"pack_hits\": %llu, \"pack_misses\": %llu},\n",
        r->name.c_str(), r->seconds, r->rps, r->stats.p50_ms, r->stats.p99_ms,
        static_cast<unsigned long long>(r->stats.completed),
        static_cast<unsigned long long>(r->stats.gefmm.pack_hits),
        static_cast<unsigned long long>(r->stats.gefmm.pack_misses));
  }
  std::fprintf(f, "  \"speedup\": %.3f,\n", speedup);
  std::fprintf(f, "  \"target\": 1.3,\n");
  std::fprintf(f, "  \"met_target\": %s\n", speedup >= 1.3 ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
