// Stability ablation: measured maximum error against a long-double
// reference as a function of recursion depth, for the Winograd variant,
// the original 1969 variant, and conventional DGEMM. Quantifies the
// Brent/Higham stability discussion the paper's introduction relies on.
#include <iostream>

#include "bench_common.hpp"

using namespace strassen;

namespace {

Matrix long_double_product(const Matrix& a, const Matrix& b) {
  const index_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      long double sum = 0.0L;
      for (index_t p = 0; p < k; ++p) {
        sum += static_cast<long double>(a(i, p)) *
               static_cast<long double>(b(p, j));
      }
      c(i, j) = static_cast<double>(sum);
    }
  }
  return c;
}

}  // namespace

int main() {
  bench::banner("error growth vs recursion depth (long-double reference)",
                "introduction's stability discussion (Brent, Higham)");

  const index_t n = bench::pick<index_t>(256, 512);
  Rng rng(5150);
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  const Matrix truth = long_double_product(a, b);
  std::cout << "random " << n << "x" << n << " matrices, entries in [-1,1); "
            << "errors are max |C - C_longdouble|\n\n";

  auto error_at = [&](int depth, core::Scheme scheme) {
    Matrix c(n, n);
    fill(c.view(), 0.0);
    core::DgefmmConfig cfg;
    cfg.cutoff = core::CutoffCriterion::fixed_depth(depth);
    cfg.scheme = scheme;
    if (core::dgefmm(Trans::no, Trans::no, n, n, n, 1.0, a.data(), n,
                     b.data(), n, 0.0, c.data(), n, cfg) != 0) {
      std::abort();
    }
    return max_abs_diff(c.view(), truth.view());
  };

  TextTable t({"depth", "DGEFMM (Winograd)", "original variant",
               "vs depth 0 (Winograd)"});
  const double base = error_at(0, core::Scheme::automatic);
  const int max_depth = bench::pick(4, 6);
  for (int d = 0; d <= max_depth; ++d) {
    const double w = error_at(d, core::Scheme::automatic);
    const double o = error_at(d, core::Scheme::original);
    t.add_row({fmt(static_cast<long long>(d)), fmt(w * 1e15, 2) + "e-15",
               fmt(o * 1e15, 2) + "e-15", fmt(w / base, 1) + "x"});
  }
  t.print(std::cout);
  std::cout << "\nreproduced claim: error grows by a small constant factor "
               "per level (Higham's normwise bound), supporting the paper's "
               "position that Strassen is stable enough for production use; "
               "depth 0 is conventional DGEMM.\n";
  return 0;
}
