// Stability ablation, two stages:
//
//  1. error growth vs recursion depth (double): measured maximum error
//     against a long-double reference for the Winograd variant and the
//     original 1969 variant. Quantifies the Brent/Higham stability
//     discussion the paper's introduction relies on.
//
//  2. precision harness (both element types): Higham-style forward error
//     against a promoted reference, next to the speedup each schedule
//     buys over the plain GEMM of the same precision, for
//     C / STRASSEN1 / STRASSEN2 / FUSED in double and float. Winograd's
//     error constant is precision-independent; what changes is the
//     epsilon it multiplies, so the normalized error-vs-speed trade must
//     have the same shape in both precisions. Emits BENCH_precision.json
//     (path overridable via STRASSEN_BENCH_JSON).
#include <cstdio>
#include <iostream>
#include <string>
#include <type_traits>
#include <vector>

#include "bench_common.hpp"
#include "core/sgefmm.hpp"

using namespace strassen;

namespace {

// Promote-and-accumulate reference: entries widened to long double, the
// result rounded once to double. One definition serves both precisions.
template <class T>
Matrix promoted_product(const MatrixT<T>& a, const MatrixT<T>& b) {
  const index_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      long double sum = 0.0L;
      for (index_t p = 0; p < k; ++p) {
        sum += static_cast<long double>(a.view()(i, p)) *
               static_cast<long double>(b.view()(p, j));
      }
      c.view()(i, j) = static_cast<double>(sum);
    }
  }
  return c;
}

// Max |C - truth| with C in either precision, compared in double.
template <class T>
double forward_error(const Matrix& truth, const MatrixT<T>& got) {
  double err = 0.0;
  for (index_t j = 0; j < truth.cols(); ++j) {
    for (index_t i = 0; i < truth.rows(); ++i) {
      const double d =
          truth.view()(i, j) - static_cast<double>(got.view()(i, j));
      err = std::max(err, d < 0 ? -d : d);
    }
  }
  return err;
}

struct PrecisionRow {
  std::string elem;
  std::string scheme;
  double max_error;
  double error_vs_gemm;
  double seconds;
  double mflops;
  double speedup_vs_gemm;
};

template <class T>
double time_gemm_t(bench::ProblemT<T>& p, int reps) {
  return bench::time_problem(
      p,
      [&] {
        if constexpr (std::is_same_v<T, float>) {
          blas::sgemm(Trans::no, Trans::no, p.m(), p.n(), p.k(), 1.0f,
                      p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), 0.0f,
                      p.c.data(), p.c.ld());
        } else {
          blas::dgemm(Trans::no, Trans::no, p.m(), p.n(), p.k(), 1.0,
                      p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), 0.0,
                      p.c.data(), p.c.ld());
        }
      },
      reps);
}

template <class T>
double time_gefmm_t(bench::ProblemT<T>& p, core::GefmmConfigT<T> cfg,
                    ArenaT<T>& arena, int reps) {
  cfg.workspace = &arena;
  return bench::time_problem(
      p,
      [&] {
        int info;
        if constexpr (std::is_same_v<T, float>) {
          info = core::sgefmm(Trans::no, Trans::no, p.m(), p.n(), p.k(),
                              1.0f, p.a.data(), p.a.ld(), p.b.data(),
                              p.b.ld(), 0.0f, p.c.data(), p.c.ld(), cfg);
        } else {
          info = core::dgefmm(Trans::no, Trans::no, p.m(), p.n(), p.k(), 1.0,
                              p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                              0.0, p.c.data(), p.c.ld(), cfg);
        }
        if (info != 0) std::abort();
      },
      reps);
}

// Runs the error-vs-speed harness for one element type; appends one row
// per schedule (timing leaves the schedule's product in p.c, so the same
// run yields both the time and the error).
template <class T>
void precision_rows(const char* elem, index_t n, int reps,
                    std::vector<PrecisionRow>& rows) {
  bench::ProblemT<T> p(n, n, n, /*seed=*/5151);
  const Matrix truth = promoted_product(p.a, p.b);
  const double flop = 2.0 * static_cast<double>(n) * n * n;

  const double t_gemm = time_gemm_t(p, reps);
  const double e_gemm = forward_error(truth, p.c);
  rows.push_back({elem, "C", e_gemm, 1.0, t_gemm, flop / t_gemm / 1e6, 1.0});

  const struct {
    const char* name;
    core::Scheme scheme;
  } kSchemes[] = {
      {"STRASSEN1", core::Scheme::strassen1},
      {"STRASSEN2", core::Scheme::strassen2},
      {"FUSED", core::Scheme::fused},
  };
  ArenaT<T> arena;
  for (const auto& s : kSchemes) {
    core::GefmmConfigT<T> cfg;
    cfg.scheme = s.scheme;
    const double t = time_gefmm_t(p, cfg, arena, reps);
    const double e = forward_error(truth, p.c);
    rows.push_back({elem, s.name, e, e_gemm > 0 ? e / e_gemm : 0.0, t,
                    flop / t / 1e6, t_gemm / t});
  }
}

}  // namespace

int main() {
  bench::banner("error growth vs recursion depth + precision harness",
                "introduction's stability discussion (Brent, Higham); "
                "Kouya's per-precision Winograd accuracy study");

  // ---- stage 1: error vs recursion depth, double --------------------
  {
    const index_t n = bench::pick<index_t>(256, 512);
    Rng rng(5150);
    Matrix a = random_matrix(n, n, rng);
    Matrix b = random_matrix(n, n, rng);
    const Matrix truth = promoted_product(a, b);
    std::cout << "random " << n << "x" << n
              << " matrices, entries in [-1,1); "
              << "errors are max |C - C_longdouble|\n\n";

    auto error_at = [&](int depth, core::Scheme scheme) {
      Matrix c(n, n);
      fill(c.view(), 0.0);
      core::DgefmmConfig cfg;
      cfg.cutoff = core::CutoffCriterion::fixed_depth(depth);
      cfg.scheme = scheme;
      if (core::dgefmm(Trans::no, Trans::no, n, n, n, 1.0, a.data(), n,
                       b.data(), n, 0.0, c.data(), n, cfg) != 0) {
        std::abort();
      }
      return max_abs_diff(c.view(), truth.view());
    };

    TextTable t({"depth", "DGEFMM (Winograd)", "original variant",
                 "vs depth 0 (Winograd)"});
    const double base = error_at(0, core::Scheme::automatic);
    const int max_depth = bench::pick(4, 6);
    for (int d = 0; d <= max_depth; ++d) {
      const double w = error_at(d, core::Scheme::automatic);
      const double o = error_at(d, core::Scheme::original);
      t.add_row({fmt(static_cast<long long>(d)), fmt(w * 1e15, 2) + "e-15",
                 fmt(o * 1e15, 2) + "e-15", fmt(w / base, 1) + "x"});
    }
    t.print(std::cout);
    std::cout << "\nreproduced claim: error grows by a small constant "
                 "factor per level (Higham's normwise bound), supporting "
                 "the paper's position that Strassen is stable enough for "
                 "production use; depth 0 is conventional DGEMM.\n\n";
  }

  // ---- stage 2: forward error vs speed, both precisions -------------
  const index_t pn = bench::pick<index_t>(512, 1024);
  const int reps = 3;
  std::vector<PrecisionRow> rows;
  precision_rows<double>("f64", pn, reps, rows);
  precision_rows<float>("f32", pn, reps, rows);

  std::cout << "precision harness: " << pn << "x" << pn
            << ", forward error vs a promoted long-double reference, "
               "speedup vs the plain GEMM of the same precision\n\n";
  TextTable pt({"elem", "schedule", "max fwd error", "error vs GEMM",
                "MFLOPS", "speedup vs GEMM"});
  auto sci = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2e", v);
    return std::string(buf);
  };
  for (const PrecisionRow& r : rows) {
    pt.add_row({r.elem, r.scheme, sci(r.max_error),
                fmt(r.error_vs_gemm, 2) + "x", fmt(r.mflops, 1),
                fmt(r.speedup_vs_gemm, 2) + "x"});
  }
  pt.print(std::cout);
  std::cout << "\nreading: each Strassen schedule trades a small constant "
               "error-growth factor for speed, and the normalized factor "
               "is the same in f32 and f64 -- the instantiation changes "
               "the epsilon, not the algorithm's stability character.\n";

  // ---- machine-readable record --------------------------------------
  const char* json_env = std::getenv("STRASSEN_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_precision.json";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"shape\": {\"m\": %d, \"n\": %d, \"k\": %d},\n",
               int(pn), int(pn), int(pn));
  std::fprintf(f, "  \"pool_workers\": %zu,\n",
               parallel::global_pool().size());
  std::fprintf(f, "  \"bench_threads\": %zu,\n", bench::bench_threads());
  std::fprintf(f, "  \"reps\": %d,\n", reps);
  std::fprintf(f, "  \"kernel_f64\": \"%s\",\n", blas::active_kernel().name);
  std::fprintf(f, "  \"kernel_f32\": \"%s\",\n",
               blas::active_kernel_f().name);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PrecisionRow& r = rows[i];
    std::fprintf(f,
                 "    {\"elem\": \"%s\", \"scheme\": \"%s\", "
                 "\"max_error\": %.6e, \"error_vs_gemm\": %.3f, "
                 "\"seconds\": %.6f, \"mflops\": %.1f, "
                 "\"speedup_vs_gemm\": %.3f}%s\n",
                 r.elem.c_str(), r.scheme.c_str(), r.max_error,
                 r.error_vs_gemm, r.seconds, r.mflops, r.speedup_vs_gemm,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
