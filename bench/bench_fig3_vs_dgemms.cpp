// Figure 3: DGEFMM vs the IBM ESSL-style DGEMMS comparator on square
// matrices. DGEMMS only multiplies (C = op(A) op(B)); in the general
// alpha/beta case the caller must add an explicit scale-and-update pass,
// which is exactly how the paper timed it ("an extra loop for the scaling
// and update of C"). Reproduced claim: DGEFMM closes the gap in the
// general case relative to the multiply-only case, because it folds the
// update into the recursion for free.
#include <iostream>

#include "bench_common.hpp"
#include "compare/dgemms_like.hpp"

using namespace strassen;

namespace {

double time_dgemms_with_update(bench::Problem& p, double alpha, double beta,
                               Matrix& prod, Arena& arena, int reps) {
  compare::DgemmsConfig cfg;
  cfg.tau = 127.0;
  cfg.workspace = &arena;
  const index_t m = p.m(), n = p.n();
  return bench::time_problem(
      p,
      [&] {
        if (alpha == 1.0 && beta == 0.0) {
          compare::dgemms(Trans::no, Trans::no, m, n, p.k(), p.a.data(),
                          p.a.ld(), p.b.data(), p.b.ld(), p.c.data(),
                          p.c.ld(), cfg);
          return;
        }
        // The caller-side update loop the paper added around DGEMMS.
        compare::dgemms(Trans::no, Trans::no, m, n, p.k(), p.a.data(),
                        p.a.ld(), p.b.data(), p.b.ld(), prod.data(),
                        prod.ld(), cfg);
        for (index_t j = 0; j < n; ++j) {
          for (index_t i = 0; i < m; ++i) {
            p.c(i, j) = alpha * prod(i, j) + beta * p.c(i, j);
          }
        }
      },
      reps);
}

}  // namespace

int main() {
  bench::banner("DGEFMM vs IBM DGEMMS-like (square)", "Figure 3");

  const index_t lo = bench::pick<index_t>(192, 200);
  const index_t hi = bench::pick<index_t>(640, 2200);
  const index_t step = bench::pick<index_t>(64, 100);

  core::DgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::square_simple(127);
  bench::report_schedule(cfg, 0.0);
  bench::report_schedule(cfg, 0.3);
  std::cout << "\n";

  TextTable t({"m", "ratio (a=1,b=0)", "ratio (general a,b)"});
  Arena arena_f, arena_s;
  double sum_simple = 0.0, sum_general = 0.0;
  int count = 0;
  for (index_t m = lo; m <= hi; m += step) {
    bench::Problem p(m, m, m);
    Matrix prod(m, m);
    const int reps = m >= 1024 ? 1 : 2;
    const double f_simple = bench::time_dgefmm(p, 1.0, 0.0, cfg, arena_f, reps);
    const double s_simple =
        time_dgemms_with_update(p, 1.0, 0.0, prod, arena_s, reps);
    const double f_general =
        bench::time_dgefmm(p, 0.7, 0.3, cfg, arena_f, reps);
    const double s_general =
        time_dgemms_with_update(p, 0.7, 0.3, prod, arena_s, reps);
    t.add_row({fmt(static_cast<long long>(m)), fmt(f_simple / s_simple, 4),
               fmt(f_general / s_general, 4)});
    sum_simple += f_simple / s_simple;
    sum_general += f_general / s_general;
    ++count;
  }
  t.print(std::cout);
  std::cout << "\naverage ratio, alpha=1/beta=0 : "
            << fmt(sum_simple / count, 4)
            << "   (paper: 1.052 -- ESSL's hand-tuned kernels win)\n";
  std::cout << "average ratio, general        : "
            << fmt(sum_general / count, 4)
            << "   (paper: 1.028 -- the gap narrows because DGEMMS pays an "
               "external update pass)\n";
  std::cout << "paper's mechanism: DGEMMS pays an external O(m^2) update "
               "pass in the general case while DGEFMM folds it into the "
               "recursion (STRASSEN2); DGEFMM's general path in turn does "
               "extra leaf accumulations, so the net direction is "
               "machine-dependent. The vendor-tuning advantage behind the "
               "paper's >1 averages is structurally absent here -- both "
               "codes share kernels (see EXPERIMENTS.md).\n";
  return 0;
}
