// Shared source pass: stripping, line splitting, token utilities, and the
// annotation/suppression parser every rule consumes.
#include "lint.hpp"

#include <cctype>

namespace lint {

void Sink::report(const SourceFile& f, long line, const std::string& rule,
                  const std::string& message) {
  const std::size_t idx = static_cast<std::size_t>(line - 1);
  if (idx < f.notes.size()) {
    for (const std::string& sup : f.notes[idx].suppressed) {
      if (sup == rule) {
        ++suppressed_;
        return;
      }
    }
  }
  findings_.push_back({f.path, line, rule, message});
}

void Sink::report_raw(const std::string& file, long line,
                      const std::string& rule, const std::string& message) {
  findings_.push_back({file, line, rule, message});
}

std::string strip_comments_and_strings(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  enum class St { code, line_comment, block_comment, str, chr };
  St st = St::code;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case St::code:
        if (c == '/' && next == '/') {
          st = St::line_comment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::block_comment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          st = St::str;
          out += '"';
        } else if (c == '\'') {
          st = St::chr;
          out += '\'';
        } else {
          out += c;
        }
        break;
      case St::line_comment:
        if (c == '\n') {
          st = St::code;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case St::block_comment:
        if (c == '*' && next == '/') {
          st = St::code;
          out += "  ";
          ++i;
        } else {
          out += (c == '\n') ? '\n' : ' ';
        }
        break;
      case St::str:
        if (c == '\\') {
          out += "  ";
          ++i;
          if (next == '\n') out.back() = '\n';
        } else if (c == '"') {
          st = St::code;
          out += '"';
        } else {
          out += (c == '\n') ? '\n' : ' ';
        }
        break;
      case St::chr:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          st = St::code;
          out += '\'';
        } else {
          out += ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool has_token(const std::string& line, const std::string& token) {
  return find_token(line, token) != std::string::npos;
}

std::size_t find_token(const std::string& line, const std::string& token,
                       std::size_t from) {
  std::size_t pos = from;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok =
        pos == 0 || (!is_ident(line[pos - 1]) || !is_ident(token.front()));
    const std::size_t end = pos + token.size();
    const bool right_ok =
        end >= line.size() ||
        (!is_ident(line[end]) || !is_ident(token[token.size() - 1]));
    if (left_ok && right_ok) return pos;
    ++pos;
  }
  return std::string::npos;
}

namespace {

// Trims ASCII whitespace from both ends.
std::string trimmed(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return s.substr(b, e - b);
}

// Reads the identifier-or-dash word starting at `pos`.
std::string word_at(const std::string& s, std::size_t pos) {
  std::size_t end = pos;
  while (end < s.size() && (is_ident(s[end]) || s[end] == '-')) ++end;
  return s.substr(pos, end - pos);
}

}  // namespace

LineNotes parse_notes(const std::string& raw_line, const std::string& path,
                      long line, Sink& sink) {
  LineNotes notes;
  // Only comment text carries annotations; everything after the first `//`
  // is close enough for this codebase (block comments don't carry them).
  const std::size_t slash = raw_line.find("//");
  if (slash == std::string::npos) return notes;
  const std::string comment = raw_line.substr(slash + 2);

  static const std::string kOk = "strassen-lint-ok(";
  std::size_t pos = 0;
  while ((pos = comment.find(kOk, pos)) != std::string::npos) {
    const std::size_t body_begin = pos + kOk.size();
    const std::size_t close = comment.find(')', body_begin);
    pos = body_begin;
    if (close == std::string::npos) {
      sink.report_raw(path, line, "bad-suppression",
                      "unterminated strassen-lint-ok(...) annotation");
      continue;
    }
    const std::string body = comment.substr(body_begin, close - body_begin);
    const std::size_t colon = body.find(':');
    const std::string rule = trimmed(
        colon == std::string::npos ? body : body.substr(0, colon));
    const std::string reason =
        colon == std::string::npos ? "" : trimmed(body.substr(colon + 1));
    if (!is_known_rule(rule)) {
      sink.report_raw(path, line, "bad-suppression",
                      "strassen-lint-ok names unknown rule `" + rule + "`");
      continue;
    }
    if (reason.empty()) {
      sink.report_raw(path, line, "bad-suppression",
                      "strassen-lint-ok(" + rule +
                          ") needs a reason: "
                          "`strassen-lint-ok(" +
                          rule + ": <why this site is exempt>)`");
      continue;
    }
    notes.suppressed.push_back(rule);
  }

  // `relaxed: <word>` -- rule 5's justification vocabulary.
  const std::size_t rel = find_token(comment, "relaxed");
  if (rel != std::string::npos) {
    std::size_t p = rel + 7;
    while (p < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[p])) != 0) {
      ++p;
    }
    if (p < comment.size() && comment[p] == ':') {
      ++p;
      while (p < comment.size() &&
             std::isspace(static_cast<unsigned char>(comment[p])) != 0) {
        ++p;
      }
      notes.relaxed_tag = word_at(comment, p);
    }
  }

  // `handoff: <reason>` -- rule 7's sanctioned early-unlock annotation.
  const std::size_t ho = find_token(comment, "handoff");
  if (ho != std::string::npos) {
    std::size_t p = ho + 7;
    while (p < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[p])) != 0) {
      ++p;
    }
    if (p < comment.size() && comment[p] == ':' &&
        !trimmed(comment.substr(p + 1)).empty()) {
      notes.handoff = true;
    }
  }
  return notes;
}

void attach_comment_only_notes(SourceFile& f) {
  for (std::size_t i = 0; i + 1 < f.notes.size(); ++i) {
    const bool comment_only =
        trimmed(f.lines[i]).empty() &&
        (!f.notes[i].suppressed.empty() || !f.notes[i].relaxed_tag.empty() ||
         f.notes[i].handoff);
    if (!comment_only) continue;
    // Attach to the next line; chains of comment-only lines cascade
    // forward until they reach code.
    LineNotes& next = f.notes[i + 1];
    for (std::string& s : f.notes[i].suppressed) {
      next.suppressed.push_back(std::move(s));
    }
    f.notes[i].suppressed.clear();
    if (next.relaxed_tag.empty()) {
      next.relaxed_tag = std::move(f.notes[i].relaxed_tag);
    }
    f.notes[i].relaxed_tag.clear();
    next.handoff = next.handoff || f.notes[i].handoff;
    f.notes[i].handoff = false;
  }
}

}  // namespace lint
