// Internal registry wiring: the per-rule entry points assembled by
// rule_table() in registry.cpp.
#pragma once

#include "lint.hpp"

namespace lint {

// rules_core.cpp (serial-era invariants, rules 1-4)
void rule_alloc_discipline(const SourceFile& f, Sink& sink);
void rule_nofail_regions(const SourceFile& f, Sink& sink);
void rule_acquire_before_dispatch(const SourceFile& f, Sink& sink);
void rule_nodiscard(const SourceFile& f, Sink& sink);

// rules_concurrency.cpp (concurrency discipline, rules 5-8)
void rule_relaxed_justification(const SourceFile& f, Sink& sink);
void rule_cv_discipline(const SourceFile& f, Sink& sink);
void rule_lock_discipline(const SourceFile& f, Sink& sink);
void rule_blocking_call(const SourceFile& f, Sink& sink);

}  // namespace lint
