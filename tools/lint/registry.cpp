#include "rules.hpp"

namespace lint {

const std::vector<Rule>& rule_table() {
  static const std::vector<Rule> kRules = {
      {"alloc-outside-support",
       "Table 1 subsystems draw temporaries from the Arena/pack scratch",
       rule_alloc_discipline},
      {"alloc-in-nofail",
       "no fallible acquisition inside a ScopedSuspend no-fail region",
       rule_nofail_regions},
      {"fallible-after-c-write",
       "drivers acquire all workspace before the first write to C",
       rule_acquire_before_dispatch},
      {"missing-nodiscard",
       "fallible value-returning entry points are [[nodiscard]]",
       rule_nodiscard},
      {"relaxed-justification",
       "memory_order_relaxed sites carry a vocabulary justification",
       rule_relaxed_justification},
      {"cv-discipline",
       "CV wait uses the predicate overload; timed waits poll inside loops",
       rule_cv_discipline},
      {"lock-discipline",
       "mutexes held via RAII guards; early unlocks are annotated hand-offs",
       rule_lock_discipline},
      {"blocking-call",
       "no CV wait/sleep/submit inside worker task bodies or no-fail regions",
       rule_blocking_call},
  };
  return kRules;
}

bool is_known_rule(const std::string& id) {
  for (const Rule& r : rule_table()) {
    if (id == r.id) return true;
  }
  return false;
}

}  // namespace lint
