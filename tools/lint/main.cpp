// Driver: walks the given roots, runs every registered rule over each
// source file, and reports findings as text (and JSON when asked).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

namespace fs = std::filesystem;

bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

// Loads and scans every source file under `root` (or `root` itself when it
// is a file). Returns 0 on success, 2 on IO error.
int scan_root(const fs::path& root, lint::Sink& sink) {
  std::error_code ec;
  const bool is_dir = fs::is_directory(root, ec);
  if (ec) {
    std::cerr << "strassen_lint: cannot stat " << root << ": "
              << ec.message() << "\n";
    return 2;
  }
  std::vector<fs::path> files;
  if (is_dir) {
    for (fs::recursive_directory_iterator it(root, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (it->is_regular_file() && is_source_file(it->path())) {
        files.push_back(it->path());
      }
    }
    if (ec) {
      std::cerr << "strassen_lint: walking " << root << ": " << ec.message()
                << "\n";
      return 2;
    }
  } else {
    files.push_back(root);
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& p : files) {
    std::ifstream in(p);
    if (!in) {
      std::cerr << "strassen_lint: cannot read " << p << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string raw = ss.str();

    lint::SourceFile f;
    f.path = p.string();
    f.rel = is_dir ? fs::relative(p, root, ec).generic_string()
                   : p.filename().generic_string();
    f.lines = lint::split_lines(lint::strip_comments_and_strings(raw));
    const std::vector<std::string> raw_lines = lint::split_lines(raw);
    f.notes.reserve(raw_lines.size());
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
      f.notes.push_back(lint::parse_notes(raw_lines[i], f.path,
                                          static_cast<long>(i + 1), sink));
    }
    lint::attach_comment_only_notes(f);
    for (const lint::Rule& rule : lint::rule_table()) {
      rule.run(f, sink);
    }
  }
  return 0;
}

int usage() {
  std::cerr << "usage: strassen_lint [--json <path>] [--list-rules] "
               "<src-root> [more roots...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) return usage();
      json_path = argv[++i];
    } else if (arg == "--list-rules") {
      for (const lint::Rule& r : lint::rule_table()) {
        std::cout << r.id << ": " << r.summary << "\n";
      }
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage();

  lint::Sink sink;
  for (const std::string& root : roots) {
    const int rc = scan_root(fs::path(root), sink);
    if (rc != 0) return rc;
  }
  for (const lint::Finding& f : sink.findings()) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!json_path.empty() &&
      !lint::write_findings_json(json_path, sink.findings(),
                                 sink.suppressed())) {
    std::cerr << "strassen_lint: cannot write " << json_path << "\n";
    return 2;
  }
  if (!sink.findings().empty()) {
    std::cout << sink.findings().size() << " finding(s)";
    if (sink.suppressed() > 0) {
      std::cout << ", " << sink.suppressed() << " suppressed";
    }
    std::cout << ".\n";
    return 1;
  }
  std::cout << "strassen_lint: clean";
  if (sink.suppressed() > 0) {
    std::cout << " (" << sink.suppressed() << " suppressed)";
  }
  std::cout << ".\n";
  return 0;
}
