// Rules 1-4: the serial-era invariants (allocation discipline, no-fail
// regions, acquire-before-first-C-write, [[nodiscard]] coverage), migrated
// from the original single-file linter.
#include "lint.hpp"

namespace lint {

// --- rule 1: allocation discipline -----------------------------------------
//
// The computational subsystems (src/core, src/blas, src/compare) draw every
// temporary from the Arena / the pack scratch. Raw `new`, malloc/calloc,
// and growable std::vector use there would silently break the
// measured-workspace story (Table 1). tuning/, parallel/, eigen/, solver/
// legitimately use containers for non-numeric bookkeeping and are exempt,
// as is support/ which implements the allocators themselves.

namespace {

bool in_alloc_checked_subsystem(const std::string& rel) {
  return rel.rfind("core/", 0) == 0 || rel.rfind("blas/", 0) == 0 ||
         rel.rfind("compare/", 0) == 0;
}

}  // namespace

void rule_alloc_discipline(const SourceFile& f, Sink& sink) {
  if (!in_alloc_checked_subsystem(f.rel)) return;
  static const struct {
    const char* token;
    const char* what;
  } kForbidden[] = {
      {"new", "raw `new`"},
      {"malloc(", "malloc"},
      {"calloc(", "calloc"},
      {"realloc(", "realloc"},
      {"std::vector", "std::vector"},
      {"push_back(", "vector growth (push_back)"},
      {"emplace_back(", "vector growth (emplace_back)"},
      {".resize(", "container growth (resize)"},
  };
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const std::size_t first = f.lines[i].find_first_not_of(" \t");
    if (first != std::string::npos && f.lines[i][first] == '#') {
      continue;  // preprocessor line (e.g. `#include <new>`)
    }
    for (const auto& fb : kForbidden) {
      if (has_token(f.lines[i], fb.token)) {
        sink.report(f, static_cast<long>(i + 1), "alloc-outside-support",
                    std::string(fb.what) +
                        " in a Table 1-accounted subsystem; draw temporaries "
                        "from the Arena or the pack scratch");
      }
    }
  }
}

// --- rule 2: no allocation inside ScopedSuspend scopes ---------------------
//
// Code textually inside a faultinject::ScopedSuspend scope has declared
// "acquisition is behind us" -- any Arena alloc/reserve, pack-capacity
// warm-up, or AlignedBuffer construction inside such a scope re-introduces
// a failure point the DESIGN.md section 7 contract says cannot exist.

void rule_nofail_regions(const SourceFile& f, Sink& sink) {
  static const char* kFallible[] = {
      ".alloc(",  "->alloc(",  ".reserve(", "->reserve(",
      ".probe(",  "->probe(",  "ensure_pack_capacity(", "AlignedBuffer(",
      // The pool-worker warm-up and the throwing batch entry points are
      // acquisitions too: each may throw bad_alloc or TaskError. Only
      // run_batch_nofail is sanctioned inside a no-fail region.
      "ensure_pack_capacity_all_workers(", "run_on_each_worker(",
      "run_batch(",
      // DagRun construction allocates every piece of scheduling state a
      // run_dag call needs; like run_batch it belongs to the pre-flight,
      // never inside a no-fail region (run_dag itself is sanctioned).
      "DagRun(",
      // Serving-layer acquisitions: Queue submission allocates request
      // state and may block or throw per the overflow policy, and a pool
      // carve is exactly the fallible step admission control exists to
      // front-load.
      ".submit(", "->submit(", "try_acquire(",
      // The madvise wrapper and the autotune persistence writes are
      // acquisition-phase work too: huge-page advice belongs with the
      // buffer's construction, and a criteria-file write can fail on any
      // filesystem error. Neither may hide inside a no-fail region.
      "advise_huge_pages(", "save_criteria_file(", "load_criteria_file(",
      // Prepack-handle construction allocates (or validates) the packed
      // image; it is acquisition-phase work by definition. The panel
      // cache's infallible filler is named fill_packed_image precisely so
      // it stays off this list.
      "pack_operand(", "gefmm_pack_a(", "gefmm_pack_b(",
  };
  int depth = 0;
  int suspend_depth = -1;  // brace depth at the ScopedSuspend declaration
  long suspend_line = 0;
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const std::string& line = f.lines[i];
    // The declaration commits the rest of its enclosing scope.
    if (suspend_depth < 0 && has_token(line, "ScopedSuspend")) {
      suspend_depth = depth;
      suspend_line = static_cast<long>(i + 1);
    } else if (suspend_depth >= 0) {
      for (const char* tok : kFallible) {
        if (has_token(line, tok)) {
          sink.report(f, static_cast<long>(i + 1), "alloc-in-nofail",
                      std::string("fallible call `") + tok +
                          "` inside the no-fail region opened by "
                          "ScopedSuspend at line " +
                          std::to_string(suspend_line));
        }
      }
    }
    for (const char c : line) {
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
        if (suspend_depth >= 0 && depth <= suspend_depth) {
          suspend_depth = -1;  // the suspend's scope ended
        }
      }
    }
  }
}

// --- rule 3: acquire-before-first-C-write in drivers -----------------------
//
// In the driver functions (the shared gefmm templates plus the
// dgefmm*/sgefmm* entry points that instantiate them), every fallible
// acquisition must precede the dispatch into the computation (which is
// when C is first written). A fallible call after dispatch could fail with
// C half-written, which the strict policy forbids. Checking the shared
// template covers both element-type instantiations at once.

namespace {

// A dispatch token marks the first point at which C may be written.
bool is_dispatch(const std::string& line) {
  static const char* kDispatch[] = {
      "detail::fmm(", "fmm_fused(",    "pad_static(",
      "gemm_view(",   "run_task_dag(", "blas::dgemm(",
      "blas::sgemm(", "dispatch_request(",
  };
  for (const char* tok : kDispatch) {
    if (has_token(line, tok)) return true;
  }
  return false;
}

}  // namespace

void rule_acquire_before_dispatch(const SourceFile& f, Sink& sink) {
  static const char* kFallible[] = {
      ".reserve(", "->reserve(",           ".probe(",       "->probe(",
      ".alloc(",   "->alloc(",             "AlignedBuffer(",
      "ensure_pack_capacity(",             "run_on_each_worker(",
      "ensure_pack_capacity_all_workers(", "run_batch(",
      "DagRun(",   ".submit(",             "->submit(",
      "try_acquire(",                      "advise_huge_pages(",
      "save_criteria_file(",               "load_criteria_file(",
      "pack_operand(", "gefmm_pack_a(",    "gefmm_pack_b(",
  };
  int depth = 0;
  bool in_driver = false;
  int driver_depth = 0;
  bool dispatched = false;
  bool pending_driver = false;  // signature seen, body brace not yet opened
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const std::string& line = f.lines[i];
    if (!in_driver && !pending_driver) {
      // A driver definition: the function name is one of the public
      // entry points or the shared element-generic templates behind them
      // (declarations and call statements end with ';' before any '{').
      // The templates are listed explicitly so the single definition is
      // checked on behalf of both the double and float instantiations.
      // execute_request is the serving worker's driver: it carves the
      // request's lease from the pool before dispatch_request writes C.
      static const char* kDriverNames[] = {
          "dgefmm", "sgefmm", "gefmm_view_t", "gefmm_t", "gefmm_parallel_t",
          "execute_request",
      };
      for (const char* name : kDriverNames) {
        const std::size_t pos = line.find(name);
        if (pos != std::string::npos &&
            (pos == 0 || !is_ident(line[pos - 1])) &&
            line.find('(', pos) != std::string::npos) {
          pending_driver = true;
          break;
        }
      }
    }
    if (in_driver) {
      if (dispatched) {
        for (const char* tok : kFallible) {
          if (has_token(line, tok)) {
            sink.report(f, static_cast<long>(i + 1), "fallible-after-c-write",
                        std::string("fallible call `") + tok +
                            "` after the driver dispatched into the "
                            "computation; acquire all workspace before the "
                            "first write to C (DESIGN.md section 7)");
          }
        }
      }
      if (is_dispatch(line)) dispatched = true;
    }
    for (std::size_t ci = 0; ci < line.size(); ++ci) {
      const char c = line[ci];
      // Definitions live at any brace depth (the sources wrap everything
      // in namespaces), so a pending signature arms at the next '{'; a
      // ';' first means it was only a declaration or a call statement.
      if (c == ';' && pending_driver) {
        pending_driver = false;
      } else if (c == '{') {
        if (pending_driver) {
          pending_driver = false;
          in_driver = true;
          driver_depth = depth;
          dispatched = false;
        }
        ++depth;
      } else if (c == '}') {
        --depth;
        if (in_driver && depth <= driver_depth) {
          in_driver = false;
          dispatched = false;
        }
      }
    }
  }
}

// --- rule 4: [[nodiscard]] on fallible value-returning APIs ----------------
//
// Entry points whose return value carries the argument-check/failure
// result must be annotated so call sites cannot silently drop it.
// (Arena::reserve and Arena::probe are fallible but report through
// exceptions and return void -- GCC rejects [[nodiscard]] on void returns
// -- so the table covers the value-returning surface.)

namespace {

struct NodiscardEntry {
  const char* file_suffix;  // header that owns the declaration
  const char* symbol;       // declaration substring to locate
};

constexpr NodiscardEntry kNodiscardTable[] = {
    {"core/dgefmm.hpp", "int dgefmm("},
    {"core/dgefmm.hpp", "count_t dgefmm_workspace_doubles("},
    {"core/sgefmm.hpp", "int sgefmm("},
    {"core/sgefmm.hpp", "count_t sgefmm_workspace_floats("},
    {"core/zgefmm.hpp", "int zgefmm("},
    {"core/zgefmm.hpp", "int zgemm4m("},
    {"core/cabi.hpp", "int strassen_dgefmm("},
    {"core/cabi.hpp", "int strassen_dgefmm_tuned("},
    {"core/cabi.hpp", "int strassen_sgefmm("},
    {"core/cabi.hpp", "int strassen_sgefmm_tuned("},
    {"core/workspace.hpp", "count_t workspace_doubles("},
    {"core/workspace.hpp", "count_t workspace_doubles_at("},
    {"core/workspace.hpp", "count_t workspace_floats("},
    {"core/workspace.hpp", "count_t parallel_workspace_doubles("},
    {"core/workspace.hpp", "count_t parallel_workspace_floats("},
    {"parallel/task_dag.hpp", "DagPlan plan_dag("},
    {"support/arena.hpp", "T* alloc("},
    {"support/arena_pool.hpp", "PoolLeaseT<T> try_acquire("},
    {"serve/serve.hpp", "TicketT<T> submit("},
    {"serve/serve_cabi.hpp", "int strassen_dgefmm_submit("},
    {"serve/serve_cabi.hpp", "int strassen_dgefmm_wait("},
    {"serve/serve_cabi.hpp", "int strassen_sgefmm_submit("},
    {"serve/serve_cabi.hpp", "int strassen_sgefmm_wait("},
    {"support/memadvise.hpp", "std::size_t advise_huge_pages("},
    {"tuning/persist.hpp", "bool save_criteria_file("},
    // The prepacked-operand surface (DESIGN.md section 15): dropping a
    // size query undersizes caller storage, dropping a handle leaks the
    // pack work, and dropping the consult/stream results silently skips
    // the hard-miss discipline.
    {"blas/pack_operand.hpp", "std::size_t gefmm_pack_a_elements("},
    {"blas/pack_operand.hpp", "std::size_t gefmm_pack_b_elements("},
    {"blas/pack_operand.hpp", "PackedOperandT<T> gefmm_pack_a("},
    {"blas/pack_operand.hpp", "PackedOperandT<T> gefmm_pack_b("},
    {"blas/pack_operand.hpp", "bool packed_operand_matches("},
    {"blas/gemm.hpp", "bool gemm_view_prepacked("},
    {"serve/serve_cabi.hpp", "int strassen_dgefmm_pack_b_size("},
    {"serve/serve_cabi.hpp", "int strassen_dgefmm_pack_b("},
    {"serve/serve_cabi.hpp", "int strassen_dgefmm_submit_packed("},
    {"serve/serve_cabi.hpp", "int strassen_sgefmm_pack_b_size("},
    {"serve/serve_cabi.hpp", "int strassen_sgefmm_pack_b("},
    {"serve/serve_cabi.hpp", "int strassen_sgefmm_submit_packed("},
};

}  // namespace

void rule_nodiscard(const SourceFile& f, Sink& sink) {
  for (const auto& e : kNodiscardTable) {
    const std::string suffix(e.file_suffix);
    if (f.rel != suffix) continue;
    bool found = false;
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      const std::size_t pos = f.lines[i].find(e.symbol);
      if (pos == std::string::npos) continue;
      found = true;
      // The annotation must appear in the same declaration statement:
      // on this line before the symbol, or on one of the two preceding
      // lines (attribute-on-its-own-line style).
      bool annotated =
          f.lines[i].substr(0, pos).find("[[nodiscard]]") !=
          std::string::npos;
      for (std::size_t back = 1; !annotated && back <= 2 && back <= i;
           ++back) {
        annotated = f.lines[i - back].find("[[nodiscard]]") !=
                    std::string::npos;
      }
      if (!annotated) {
        sink.report(f, static_cast<long>(i + 1), "missing-nodiscard",
                    std::string("fallible API `") + e.symbol +
                        "` must be declared [[nodiscard]]");
      }
      break;
    }
    if (!found) {
      sink.report(f, 1, "missing-nodiscard",
                  std::string("expected declaration `") + e.symbol +
                      "` not found (update the lint table if it moved)");
    }
  }
}

}  // namespace lint
