// Rules 5-8: the concurrency discipline (DESIGN.md section 13). PRs 4-7
// made the library concurrent -- work-stealing task DAG, global thread
// pool, CV/lock-dense serving queue -- and these rules put tooling behind
// the idioms that keep it correct: justified relaxed atomics, predicate
// waits, RAII-held mutexes, and non-blocking worker task bodies.
#include "lint.hpp"

#include <string>

namespace lint {

namespace {

// Identifier immediately preceding position `pos` (e.g. the receiver of a
// member call whose `.`/`->` starts at pos). Empty when the call is on a
// non-identifier expression.
std::string receiver_before(const std::string& line, std::size_t pos) {
  std::size_t end = pos;
  std::size_t begin = end;
  while (begin > 0 && is_ident(line[begin - 1])) --begin;
  return line.substr(begin, end - begin);
}

// The project convention the CV and mutex rules key on: condition
// variables are named *cv*, mutexes *mu* / *mutex* (which RAII guards --
// `lock`, `lk`, `guard` -- never are).
bool looks_like_cv(const std::string& name) {
  return name.find("cv") != std::string::npos ||
         name.find("CV") != std::string::npos;
}

bool looks_like_mutex(const std::string& name) {
  return name.find("mu") != std::string::npos ||
         name.find("mutex") != std::string::npos;
}

}  // namespace

// --- rule 5: relaxed atomics carry a justification -------------------------
//
// Every memory_order_relaxed load/store must carry a `// relaxed: <word>`
// annotation on its line (or on a comment-only line directly above), with
// the word drawn from a fixed vocabulary naming the only protocols for
// which relaxed ordering is sound in this codebase:
//
//   counter      statistics/progress counters whose value is read for
//                reporting only, or whose cross-thread ordering is
//                established by a mutex or an acq_rel RMW elsewhere;
//   cancel-token monotonic abort flags with no payload riding on them
//                (the observer re-synchronizes through a mutex or a
//                single-transition CAS before acting);
//   config-slot  process-wide configuration published before threads that
//                read it are reachable, or re-read under a lock;
//   injector     the fault-injection hooks, whose armed fast path is one
//                relaxed load by design (faultinject.hpp).
//
// An unannotated site or an unknown word is reported: the author must
// either name the protocol or upgrade the ordering.

void rule_relaxed_justification(const SourceFile& f, Sink& sink) {
  static const char* kVocabulary[] = {"counter", "cancel-token",
                                      "config-slot", "injector"};
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    if (!has_token(f.lines[i], "memory_order_relaxed")) continue;
    const std::string& tag =
        i < f.notes.size() ? f.notes[i].relaxed_tag : std::string();
    if (tag.empty()) {
      sink.report(f, static_cast<long>(i + 1), "relaxed-justification",
                  "memory_order_relaxed without a justification; annotate "
                  "the line with `// relaxed: "
                  "counter|cancel-token|config-slot|injector` or upgrade "
                  "the ordering (DESIGN.md section 13)");
      continue;
    }
    bool known = false;
    for (const char* v : kVocabulary) {
      if (tag == v) known = true;
    }
    if (!known) {
      sink.report(f, static_cast<long>(i + 1), "relaxed-justification",
                  "`// relaxed: " + tag +
                      "` is not in the justification vocabulary "
                      "(counter|cancel-token|config-slot|injector)");
    }
  }
}

// --- rule 6: condition-variable discipline ---------------------------------
//
// `cv.wait(lock)` without a predicate re-checks nothing on spurious or
// stolen wakeups; the predicate overload is mandatory. The timed waits
// (`wait_for`/`wait_until`) are used as periodic pollers here, so their
// naked two-argument form is permitted -- but only inside a loop that
// re-evaluates the queue state, never as a fire-once timed sleep.

namespace {

// Counts top-level commas of the call whose opening parenthesis is at
// (start_line, open_pos); scans across lines. Returns -1 when the call
// does not close within the file (malformed source).
int call_top_level_commas(const SourceFile& f, std::size_t start_line,
                          std::size_t open_pos) {
  int paren = 0, brace = 0, bracket = 0;
  int commas = 0;
  for (std::size_t li = start_line; li < f.lines.size(); ++li) {
    const std::string& line = f.lines[li];
    for (std::size_t ci = (li == start_line ? open_pos : 0); ci < line.size();
         ++ci) {
      switch (line[ci]) {
        case '(':
          ++paren;
          break;
        case ')':
          --paren;
          if (paren == 0) return commas;
          break;
        case '{':
          ++brace;
          break;
        case '}':
          --brace;
          break;
        case '[':
          ++bracket;
          break;
        case ']':
          --bracket;
          break;
        case ',':
          if (paren == 1 && brace == 0 && bracket == 0) ++commas;
          break;
        default:
          break;
      }
    }
  }
  return -1;
}

// Per-line loop-context tracker: scopes opened while a `for`/`while`/`do`
// token was pending are loop scopes; a `wait_for` textually inside any
// loop scope (or on the same line as the loop keyword, for brace-less
// single-statement loops) re-runs after waking.
class LoopTracker {
 public:
  // Processes one line. wait_positions receives, for every character
  // position of the line, whether a loop context covers it.
  void line_begin(const std::string& line) {
    line_ = &line;
    keyword_at_.assign(line.size(), false);
    for (const char* kw : {"for", "while", "do"}) {
      std::size_t pos = 0;
      while ((pos = find_token(line, kw, pos)) != std::string::npos) {
        keyword_at_[pos] = true;
        pos += 1;
      }
    }
  }

  // True when position `pos` of the current line sits in a loop.
  bool in_loop(std::size_t pos) const {
    for (const bool is_loop : scopes_) {
      if (is_loop) return true;
    }
    // Same-line single-statement loop: a loop keyword earlier on the line.
    for (std::size_t i = 0; i < pos && i < keyword_at_.size(); ++i) {
      if (keyword_at_[i]) return true;
    }
    return pending_;
  }

  // Advances brace/keyword state through the whole line.
  void line_end() {
    const std::string& line = *line_;
    for (std::size_t ci = 0; ci < line.size(); ++ci) {
      if (ci < keyword_at_.size() && keyword_at_[ci]) pending_ = true;
      const char c = line[ci];
      if (c == '{') {
        scopes_.push_back(pending_);
        pending_ = false;
      } else if (c == '}') {
        if (!scopes_.empty()) scopes_.pop_back();
      } else if (c == '(') {
        ++parens_;
      } else if (c == ')') {
        if (parens_ > 0) --parens_;
      } else if (c == ';' && parens_ == 0) {
        // End of a brace-less loop statement (or of `do ...; while();`).
        // Semicolons inside parentheses belong to a `for (a; b; c)` header
        // and do not end the pending loop.
        pending_ = false;
      }
    }
  }

 private:
  const std::string* line_ = nullptr;
  std::vector<bool> keyword_at_;
  std::vector<bool> scopes_;  // true entries are loop scopes
  int parens_ = 0;            // open parens (loop headers may span lines)
  bool pending_ = false;      // loop keyword seen, body not yet entered
};

}  // namespace

void rule_cv_discipline(const SourceFile& f, Sink& sink) {
  LoopTracker loops;
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const std::string& line = f.lines[i];
    loops.line_begin(line);
    static const struct {
      const char* token;
      bool timed;
    } kWaits[] = {
        {".wait_for(", true},
        {".wait_until(", true},
        {".wait(", false},
    };
    for (const auto& w : kWaits) {
      std::size_t pos = 0;
      while ((pos = find_token(line, w.token, pos)) != std::string::npos) {
        const std::string recv = receiver_before(line, pos);
        const std::size_t open =
            pos + std::string(w.token).size() - 1;  // the '('
        const std::size_t here = pos;
        pos += 1;
        if (!looks_like_cv(recv)) continue;
        const int commas = call_top_level_commas(f, i, open);
        if (!w.timed) {
          // wait(lock) has zero top-level commas; wait(lock, pred) one.
          if (commas == 0) {
            sink.report(f, static_cast<long>(i + 1), "cv-discipline",
                        "condition_variable::wait without a predicate; use "
                        "the predicate overload so spurious/stolen wakeups "
                        "re-check the state");
          }
        } else {
          // wait_for(lock, dur) / wait_until(lock, tp) have one top-level
          // comma; the predicate overloads have two.
          if (commas == 1 && !loops.in_loop(here)) {
            sink.report(f, static_cast<long>(i + 1), "cv-discipline",
                        "naked timed wait outside a loop; a "
                        "wait_for/wait_until poller must sit inside a loop "
                        "that re-checks the queue state (or use the "
                        "predicate overload)");
          }
        }
      }
    }
    loops.line_end();
  }
}

// --- rule 7: lock discipline -----------------------------------------------
//
// Mutexes are held via RAII guards only: a direct std::mutex::lock() /
// unlock() pair cannot be exception-safe here and defeats the guards the
// serving queue's hand-off protocol depends on. An early
// unique_lock::unlock() IS that hand-off protocol -- completing a request
// or running a task must not hold the queue mutex -- so it is permitted
// exactly when annotated `// handoff: <reason>`; re-locking a guard
// (unique_lock::lock) restores the RAII invariant and needs no annotation.

void rule_lock_discipline(const SourceFile& f, Sink& sink) {
  static const char* kCalls[] = {".lock()", "->lock()", ".unlock()",
                                 "->unlock()"};
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const std::string& line = f.lines[i];
    for (const char* call : kCalls) {
      std::size_t pos = 0;
      while ((pos = find_token(line, call, pos)) != std::string::npos) {
        const std::string recv = receiver_before(line, pos);
        const bool is_unlock = std::string(call).find("unlock") !=
                               std::string::npos;
        if (looks_like_mutex(recv)) {
          sink.report(f, static_cast<long>(i + 1), "lock-discipline",
                      "direct std::mutex::" +
                          std::string(is_unlock ? "unlock" : "lock") +
                          "() on `" + recv +
                          "`; hold mutexes via RAII guards "
                          "(lock_guard/unique_lock/scoped_lock) only");
        } else if (is_unlock) {
          const bool annotated =
              i < f.notes.size() && f.notes[i].handoff;
          if (!annotated) {
            sink.report(f, static_cast<long>(i + 1), "lock-discipline",
                        "early unique_lock::unlock() without a hand-off "
                        "annotation; mark the sanctioned hand-off point "
                        "with `// handoff: <reason>`");
          }
        }
        pos += 1;
      }
    }
  }
}

// --- rule 8: blocking-call ban in worker bodies and no-fail regions --------
//
// A pool-worker task body (the *_body functions the DAG executor runs on
// its lanes) that blocks -- on a CV, a sleep, or a nested Queue::submit --
// can deadlock the moldable allotment: the planner counted that lane as
// compute, and there is no spare worker to run whatever it waits for.
// ScopedSuspend no-fail regions make the same promise for a different
// reason: the driver's caller may already hold admission state that a
// blocking call would invert.

void rule_blocking_call(const SourceFile& f, Sink& sink) {
  static const char* kBlocking[] = {
      ".wait(",     "->wait(",     ".wait_for(",  "->wait_for(",
      ".wait_until(", "->wait_until(", "sleep_for(", "sleep_until(",
      ".submit(",   "->submit(",   "Queue::submit",
  };
  int depth = 0;
  // Worker-body tracking (rule 3's machinery, keyed on the *_body suffix).
  bool in_body = false;
  int body_depth = 0;
  bool pending_body = false;
  // Suspend-region tracking (rule 2's machinery).
  int suspend_depth = -1;
  long region_line = 0;
  const char* region_kind = "";
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const std::string& line = f.lines[i];
    if (!in_body && !pending_body) {
      // A worker-body definition: an identifier ending in `_body` followed
      // by '(' on the same line (the DAG node bodies are product_body /
      // combine_body; fixtures and future executors follow the suffix).
      std::size_t pos = 0;
      while ((pos = line.find("_body", pos)) != std::string::npos) {
        const std::size_t end = pos + 5;
        const bool ident_before = pos > 0 && is_ident(line[pos - 1]);
        if (ident_before && (end >= line.size() || !is_ident(line[end])) &&
            line.find('(', end) != std::string::npos) {
          pending_body = true;
          break;
        }
        pos = end;
      }
    }
    if (suspend_depth < 0 && has_token(line, "ScopedSuspend")) {
      suspend_depth = depth;
      region_line = static_cast<long>(i + 1);
      region_kind = "the ScopedSuspend no-fail region";
    }
    const bool in_region = in_body || suspend_depth >= 0;
    if (in_region && !pending_body) {
      for (const char* tok : kBlocking) {
        if (has_token(line, tok)) {
          const std::string where =
              in_body ? "a pool-worker task body"
                      : std::string(region_kind) + " opened at line " +
                            std::to_string(region_line);
          sink.report(f, static_cast<long>(i + 1), "blocking-call",
                      std::string("blocking call `") + tok + "` inside " +
                          where +
                          "; workers and no-fail regions must never "
                          "block on CVs, sleeps, or queue submission");
        }
      }
    }
    for (std::size_t ci = 0; ci < line.size(); ++ci) {
      const char c = line[ci];
      if (c == ';' && pending_body) {
        pending_body = false;
      } else if (c == '{') {
        if (pending_body) {
          pending_body = false;
          in_body = true;
          body_depth = depth;
        }
        ++depth;
      } else if (c == '}') {
        --depth;
        if (in_body && depth <= body_depth) in_body = false;
        if (suspend_depth >= 0 && depth <= suspend_depth) suspend_depth = -1;
      }
    }
  }
}

}  // namespace lint
