// strassen_lint: project-invariant linter for the DGEFMM sources.
//
// This is the multi-pass successor of the original single-file linter: a
// shared source pass (comment/string stripping, annotation parsing, token
// and scope utilities) feeding a registry of independent rules. Each rule
// enforces one invariant no general-purpose compiler pass checks, all of
// them load-bearing for the paper's claims, the DESIGN.md section 7 failure
// contract, or the section 13 concurrency discipline:
//
//  1. alloc-outside-support: the computational subsystems (src/core,
//     src/blas, src/compare) draw every temporary from the Arena / the
//     pack scratch; raw new/malloc/vector growth would silently break the
//     measured-workspace story.
//  2. alloc-in-nofail: no fallible acquisition textually inside a
//     faultinject::ScopedSuspend scope.
//  3. fallible-after-c-write: in driver functions, every fallible
//     acquisition precedes the dispatch into the computation.
//  4. missing-nodiscard: fallible value-returning entry points must be
//     declared [[nodiscard]].
//  5. relaxed-justification: every memory_order_relaxed load/store carries
//     a `// relaxed: <word>` annotation from the fixed vocabulary
//     (counter | cancel-token | config-slot | injector).
//  6. cv-discipline: condition-variable wait() must use the predicate
//     overload; naked wait_for/wait_until must sit inside a loop that
//     re-checks the queue state.
//  7. lock-discipline: mutexes are held via RAII guards only -- direct
//     std::mutex::lock()/unlock() is forbidden, and an early
//     unique_lock::unlock() needs a `// handoff: <reason>` annotation.
//  8. blocking-call: no cv.wait*/sleep_*/submit textually inside
//     pool-worker task bodies (functions named *_body) or ScopedSuspend
//     no-fail regions.
//
// Findings can be suppressed per line with a mandatory-reason annotation
// naming the rule and the reason, e.g.:
//
//     // strassen-lint-ok(alloc-outside-support: fixture exercising rule 1)
//
// A suppression with an unknown rule name or an empty reason is itself a
// finding (bad-suppression), so the escape hatch cannot rot silently.
//
// Plain-text analysis: comments and string/char literals are stripped
// (preserving line numbers), then rules run over tokens with brace-depth
// tracking. That is deliberately simple -- the invariants are textual
// properties of this codebase's idioms (condition variables are named
// *cv*, mutexes *mu*/*mutex*), and a false positive is fixed by
// restructuring the code to make the invariant obvious, which is the
// point.
//
// Usage: strassen_lint [--json <path>] <src-root> [more roots...]
// Exits 0 when clean, 1 when any finding is reported, 2 on usage/IO error.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lint {

struct Finding {
  std::string file;
  long line = 0;
  std::string rule;
  std::string message;
};

// Machine-readable annotations parsed from one raw source line's comments
// before stripping. An annotation written on a comment-only line attaches
// to the next line holding code (see attach_comment_only_notes).
struct LineNotes {
  std::vector<std::string> suppressed;  // rules named by strassen-lint-ok
  std::string relaxed_tag;              // `// relaxed: <word>` (rule 5)
  bool handoff = false;                 // `// handoff: <reason>` (rule 7)
};

struct SourceFile {
  std::string path;                // as reported in findings
  std::string rel;                 // path relative to the scanned root
  std::vector<std::string> lines;  // comment/string-stripped
  std::vector<LineNotes> notes;    // parallel to lines
};

// Collects findings, honoring per-line suppressions.
class Sink {
 public:
  // line is 1-based. Suppressed findings are counted, not recorded.
  void report(const SourceFile& f, long line, const std::string& rule,
              const std::string& message);
  // Unconditional (used for bad-suppression, which is not suppressible).
  void report_raw(const std::string& file, long line,
                  const std::string& rule, const std::string& message);

  const std::vector<Finding>& findings() const { return findings_; }
  long suppressed() const { return suppressed_; }

 private:
  std::vector<Finding> findings_;
  long suppressed_ = 0;
};

// One registered pass over a single file.
struct Rule {
  const char* id;
  const char* summary;
  void (*run)(const SourceFile&, Sink&);
};

// Every registered rule, in numeric order. Defined across rules_core.cpp
// and rules_concurrency.cpp, assembled in registry order by rule_table().
const std::vector<Rule>& rule_table();
bool is_known_rule(const std::string& id);

// --- source pass (source.cpp) ----------------------------------------------

// Replaces comments and string/char literal contents with spaces, keeping
// every newline so line numbers survive.
std::string strip_comments_and_strings(const std::string& in);

std::vector<std::string> split_lines(const std::string& text);

bool is_ident(char c);

// True if `token` occurs in `line` with no identifier character on either
// side (i.e. as a whole token; `token` itself may contain punctuation like
// "->alloc(").
bool has_token(const std::string& line, const std::string& token);

// First position of `token` as a whole token, or npos.
std::size_t find_token(const std::string& line, const std::string& token,
                       std::size_t from = 0);

// Parses the strassen-lint-ok / relaxed / handoff annotations out of one
// raw (unstripped) line; malformed suppressions are reported to `sink`.
LineNotes parse_notes(const std::string& raw_line, const std::string& path,
                      long line, Sink& sink);

// Moves the notes of comment-only lines onto the next line that holds
// code, so an annotation may precede its statement on its own line.
void attach_comment_only_notes(SourceFile& f);

// --- output (json.cpp) -----------------------------------------------------

// Writes {"findings": [...], "count": N, "suppressed": M}. Returns false
// on IO error.
bool write_findings_json(const std::string& path,
                         const std::vector<Finding>& findings,
                         long suppressed);

}  // namespace lint
