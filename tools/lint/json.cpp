// JSON findings writer: the machine-readable output scripts/lint.sh and
// scripts/check.sh archive so a failing gate points at a replayable
// artifact instead of scrollback.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace lint {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool write_findings_json(const std::string& path,
                         const std::vector<Finding>& findings,
                         long suppressed) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"file\": \"" << json_escape(f.file) << "\", "
        << "\"line\": " << f.line << ", "
        << "\"rule\": \"" << json_escape(f.rule) << "\", "
        << "\"message\": \"" << json_escape(f.message) << "\"}";
  }
  out << (first ? "" : "\n  ") << "],\n"
      << "  \"count\": " << findings.size() << ",\n"
      << "  \"suppressed\": " << suppressed << "\n}\n";
  return static_cast<bool>(out);
}

}  // namespace lint
