// Rule 3 fixture (violation): a driver performing fallible acquisitions
// (an arena carve and a prepack-image build) after dispatching into the
// computation (C already written).
namespace strassen::core {

int dgefmm(double* c, support::Arena& arena, long n) {
  blas::dgemm(c, n);
  double* extra = arena.alloc(n);
  auto pb = blas::gefmm_pack_b(bview);
  finish(extra, pb, c, n);
  return 0;
}

}  // namespace strassen::core
