// Rule 3 fixture (violation): a driver performing a fallible acquisition
// after dispatching into the computation (C already written).
namespace strassen::core {

int dgefmm(double* c, support::Arena& arena, long n) {
  blas::dgemm(c, n);
  double* extra = arena.alloc(n);
  finish(extra, c, n);
  return 0;
}

}  // namespace strassen::core
