// Rule 3 fixture (clean twin): every acquisition precedes the dispatch.
namespace strassen::core {

int dgefmm(double* c, support::Arena& arena, long n) {
  double* extra = arena.alloc(n);
  blas::dgemm(c, n);
  finish(extra, c, n);
  return 0;
}

}  // namespace strassen::core
