// Rule 3 fixture (clean twin): every acquisition precedes the dispatch.
namespace strassen::core {

int dgefmm(double* c, support::Arena& arena, long n) {
  double* extra = arena.alloc(n);
  auto pb = blas::gefmm_pack_b(bview);
  blas::dgemm(c, n);
  finish(extra, pb, c, n);
  return 0;
}

}  // namespace strassen::core
