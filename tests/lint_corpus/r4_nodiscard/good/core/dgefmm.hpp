// Rule 4 fixture (clean twin): both fallible entry points annotated.
#pragma once

namespace strassen::core {

using count_t = long long;

[[nodiscard]] int dgefmm(char transa, char transb, int m, int n, int k);

[[nodiscard]] count_t dgefmm_workspace_doubles(int m, int n, int k);

}  // namespace strassen::core
