// Rule 4 fixture (clean twin): the whole prepack surface annotated.
#pragma once

namespace strassen::blas {

[[nodiscard]] std::size_t gefmm_pack_a_elements(index_t m, index_t k);
[[nodiscard]] std::size_t gefmm_pack_b_elements(index_t k, index_t n);

template <class T>
[[nodiscard]] PackedOperandT<T> gefmm_pack_a(BasicView<const T> a);
template <class T>
[[nodiscard]] PackedOperandT<T> gefmm_pack_b(BasicView<const T> b);

template <class T>
[[nodiscard]] bool packed_operand_matches(const PackedOperandT<T>& h,
                                          char which, BasicView<const T> v);

}  // namespace strassen::blas
