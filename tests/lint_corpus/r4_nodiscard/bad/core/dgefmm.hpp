// Rule 4 fixture (violation): the dgefmm entry point missing its
// [[nodiscard]] annotation (the workspace predictor has one).
#pragma once

namespace strassen::core {

using count_t = long long;

int dgefmm(char transa, char transb, int m, int n, int k);

[[nodiscard]] count_t dgefmm_workspace_doubles(int m, int n, int k);

}  // namespace strassen::core
