// Rule 4 fixture (violation): the prepack surface with the pack-B entry
// point and the consult missing their [[nodiscard]] annotations.
#pragma once

namespace strassen::blas {

[[nodiscard]] std::size_t gefmm_pack_a_elements(index_t m, index_t k);
[[nodiscard]] std::size_t gefmm_pack_b_elements(index_t k, index_t n);

template <class T>
[[nodiscard]] PackedOperandT<T> gefmm_pack_a(BasicView<const T> a);

// Packs B; the handle owns the image.
template <class T>
PackedOperandT<T> gefmm_pack_b(BasicView<const T> b);

// Consults the stamp; a dropped result skips the hard-miss discipline.
template <class T>
bool packed_operand_matches(const PackedOperandT<T>& h, char which,
                            BasicView<const T> v);

}  // namespace strassen::blas
