// Rule 7 fixture (violation): a direct mutex lock/unlock pair, and an
// early guard unlock without a hand-off annotation.
namespace strassen {

void update(std::mutex& mu, long& value) {
  mu.lock();
  ++value;
  mu.unlock();
}

void publish(std::mutex& mu, long& value) {
  std::unique_lock<std::mutex> lock(mu);
  ++value;
  lock.unlock();
  notify_watchers();
}

}  // namespace strassen
