// Rule 7 fixture (clean twin): RAII guards, and the early unlock marked
// as a sanctioned hand-off point.
namespace strassen {

void update(std::mutex& mu, long& value) {
  std::lock_guard<std::mutex> guard(mu);
  ++value;
}

void publish(std::mutex& mu, long& value) {
  std::unique_lock<std::mutex> lock(mu);
  ++value;
  lock.unlock();  // handoff: notify watchers outside the lock
  notify_watchers();
}

}  // namespace strassen
