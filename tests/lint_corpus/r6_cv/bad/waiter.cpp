// Rule 6 fixture (violation): a predicate-less CV wait, and a naked timed
// wait used as a one-shot sleep instead of a polling loop.
namespace strassen {

void wait_ready(std::condition_variable& cv, std::mutex& mu, bool& ready) {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock);
  consume(ready);
}

void poll_once(std::condition_variable& cv, std::mutex& mu) {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait_for(lock, std::chrono::milliseconds(5));
}

}  // namespace strassen
