// Rule 6 fixture (clean twin): predicate overload, and the timed wait as
// a poller inside a loop that re-checks the state.
namespace strassen {

void wait_ready(std::condition_variable& cv, std::mutex& mu, bool& ready) {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ready; });
  consume(ready);
}

void poll(std::condition_variable& cv, std::mutex& mu, bool& ready) {
  std::unique_lock<std::mutex> lock(mu);
  while (!ready) {
    cv.wait_for(lock, std::chrono::milliseconds(5));
  }
}

}  // namespace strassen
