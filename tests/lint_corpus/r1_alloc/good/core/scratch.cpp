// Rule 1 fixture (clean twin): the same temporary drawn from the Arena.
namespace strassen::core {

double* pad_rows(support::Arena& arena, int m) {
  double* tmp = arena.alloc<double>(static_cast<std::size_t>(m));
  tmp[0] = 1.0;
  return tmp;
}

}  // namespace strassen::core
