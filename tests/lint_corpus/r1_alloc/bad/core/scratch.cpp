// Rule 1 fixture (violation): a Table 1-accounted subsystem growing a
// std::vector instead of drawing from the Arena.
namespace strassen::core {

int pad_rows(int m) {
  std::vector<double> tmp;
  tmp.push_back(1.0);
  return m + static_cast<int>(tmp.size());
}

}  // namespace strassen::core
