// Suppression fixture (violation): a reason-less suppression and one
// naming an unknown rule are themselves findings.
namespace strassen {

// strassen-lint-ok(lock-discipline)
int answer() { return 42; }

// strassen-lint-ok(not-a-rule: corpus fixture)
int other() { return 7; }

}  // namespace strassen
