// Suppression fixture (clean twin): a real rule 1 violation silenced by a
// well-formed suppression on the comment line above the statement.
namespace strassen::core {

int pad_count(int m) {
  // strassen-lint-ok(alloc-outside-support: corpus suppression demo)
  std::vector<int> tmp(3);
  return m + static_cast<int>(tmp.size());
}

}  // namespace strassen::core
