// Rule 8 fixture (violation): a pool-worker task body that blocks -- the
// planner counted this lane as compute, so sleeping here stalls the
// moldable allotment.
namespace strassen {

void product_body(void* arg, std::size_t lane) {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  run_leaf(arg, lane);
}

}  // namespace strassen
