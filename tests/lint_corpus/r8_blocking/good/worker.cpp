// Rule 8 fixture (clean twin): the task body computes and returns; any
// waiting happens in the scheduler, never on the lane.
namespace strassen {

void product_body(void* arg, std::size_t lane) {
  run_leaf(arg, lane);
}

}  // namespace strassen
