// Rule 5 fixture (violation): relaxed atomics without a vocabulary
// justification -- one unannotated, one with a word outside the
// vocabulary.
namespace strassen {

std::atomic<long> g_ops{0};
std::atomic<long> g_hits{0};

void bump_ops() { g_ops.fetch_add(1, std::memory_order_relaxed); }

void bump_hits() {
  g_hits.fetch_add(1, std::memory_order_relaxed);  // relaxed: because-fast
}

}  // namespace strassen
