// Rule 5 fixture (clean twin): every relaxed site names its protocol.
namespace strassen {

std::atomic<long> g_ops{0};
std::atomic<bool> g_cancel{false};

void bump_ops() {
  g_ops.fetch_add(1, std::memory_order_relaxed);  // relaxed: counter
}

bool canceled() {
  // relaxed: cancel-token
  return g_cancel.load(std::memory_order_relaxed);
}

}  // namespace strassen
