// Rule 2 fixture (clean twin): the acquisitions (arena carve and prepack
// image build) complete before the no-fail region opens.
namespace strassen {

void run_compute(support::Arena& arena, double* c, long n) {
  double* t = arena.alloc(n);
  auto pb = blas::gefmm_pack_b(bview);
  faultinject::ScopedSuspend suspend;
  accumulate(t, pb, c, n);
}

}  // namespace strassen
