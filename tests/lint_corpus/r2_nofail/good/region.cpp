// Rule 2 fixture (clean twin): the acquisition completes before the
// no-fail region opens.
namespace strassen {

void run_compute(support::Arena& arena, double* c, long n) {
  double* t = arena.alloc(n);
  faultinject::ScopedSuspend suspend;
  accumulate(t, c, n);
}

}  // namespace strassen
