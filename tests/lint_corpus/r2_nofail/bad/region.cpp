// Rule 2 fixture (violation): a fallible Arena acquisition textually
// inside a ScopedSuspend no-fail region, and a prepack-handle build
// (which allocates the packed image) inside the same region.
namespace strassen {

void run_compute(support::Arena& arena, double* c, long n) {
  faultinject::ScopedSuspend suspend;
  double* t = arena.alloc(n);
  auto pb = blas::gefmm_pack_b(bview);
  accumulate(t, pb, c, n);
}

}  // namespace strassen
