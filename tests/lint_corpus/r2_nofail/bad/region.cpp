// Rule 2 fixture (violation): a fallible Arena acquisition textually
// inside a ScopedSuspend no-fail region.
namespace strassen {

void run_compute(support::Arena& arena, double* c, long n) {
  faultinject::ScopedSuspend suspend;
  double* t = arena.alloc(n);
  accumulate(t, c, n);
}

}  // namespace strassen
