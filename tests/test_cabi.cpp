// Tests for the C and Fortran-77 bindings.
#include <gtest/gtest.h>

#include <cstdint>

#include "blas/gemm.hpp"
#include "core/cabi.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"

namespace strassen {
namespace {

TEST(CAbi, MatchesReference) {
  Rng rng(1);
  const index_t n = 100;
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c = random_matrix(n, n, rng);
  Matrix c_ref(n, n);
  copy(c.view(), c_ref.view());

  ASSERT_EQ(strassen_dgefmm('N', 'N', n, n, n, 1.5, a.data(), n, b.data(), n,
                            0.5, c.data(), n),
            0);
  blas::gemm_reference(Trans::no, Trans::no, n, n, n, 1.5, a.data(), n,
                       b.data(), n, 0.5, c_ref.data(), n);
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-10);
}

TEST(CAbi, LowercaseAndConjTransAccepted) {
  Rng rng(2);
  Matrix a = random_matrix(20, 30, rng);
  Matrix b = random_matrix(20, 25, rng);
  Matrix c(30, 25), c_ref(30, 25);
  fill(c.view(), 0.0);
  fill(c_ref.view(), 0.0);
  ASSERT_EQ(strassen_dgefmm('c', 'n', 30, 25, 20, 1.0, a.data(), 20,
                            b.data(), 20, 0.0, c.data(), 30),
            0);
  blas::gemm_reference(Trans::transpose, Trans::no, 30, 25, 20, 1.0,
                       a.data(), 20, b.data(), 20, 0.0, c_ref.data(), 30);
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-11);
}

TEST(CAbi, InvalidArgumentsReported) {
  double x = 0.0;
  EXPECT_EQ(strassen_dgefmm('X', 'N', 1, 1, 1, 1.0, &x, 1, &x, 1, 0.0, &x, 1),
            1);
  EXPECT_EQ(strassen_dgefmm('N', '?', 1, 1, 1, 1.0, &x, 1, &x, 1, 0.0, &x, 1),
            2);
  EXPECT_EQ(strassen_dgefmm('N', 'N', -1, 1, 1, 1.0, &x, 1, &x, 1, 0.0, &x, 1),
            3);
  EXPECT_EQ(strassen_dgefmm('N', 'N', 4, 4, 4, 1.0, &x, 2, &x, 4, 0.0, &x, 4),
            8);
}

TEST(CAbi, TunedVariantUsesGivenParameters) {
  Rng rng(3);
  const index_t n = 64;
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c1(n, n), c2(n, n);
  fill(c1.view(), 0.0);
  fill(c2.view(), 0.0);
  // tau = 8 forces recursion; tau huge forces plain DGEMM. Both must agree
  // numerically.
  ASSERT_EQ(strassen_dgefmm_tuned('N', 'N', n, n, n, 1.0, a.data(), n,
                                  b.data(), n, 0.0, c1.data(), n, 8, 8, 8, 8),
            0);
  ASSERT_EQ(strassen_dgefmm_tuned('N', 'N', n, n, n, 1.0, a.data(), n,
                                  b.data(), n, 0.0, c2.data(), n, 1e9, 1e9,
                                  1e9, 1e9),
            0);
  EXPECT_LT(max_abs_diff(c1.view(), c2.view()), 1e-11);
}

TEST(FortranAbi, PointerCallingConvention) {
  Rng rng(4);
  const std::int32_t n = 48;
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n), c_ref(n, n);
  fill(c.view(), 0.0);
  fill(c_ref.view(), 0.0);
  const char ta = 'N', tb = 'T';
  const double alpha = 2.0, beta = 0.0;
  std::int32_t info = -1;
  dgefmm_(&ta, &tb, &n, &n, &n, &alpha, a.data(), &n, b.data(), &n, &beta,
          c.data(), &n, &info);
  EXPECT_EQ(info, 0);
  blas::gemm_reference(Trans::no, Trans::transpose, n, n, n, alpha, a.data(),
                       n, b.data(), n, beta, c_ref.data(), n);
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-11);
}

TEST(FortranAbi, InfoReceivesArgumentErrors) {
  const char bad = 'Q', good = 'N';
  const std::int32_t n = 4, ld = 4;
  const double one = 1.0, zero = 0.0;
  double x[16] = {};
  std::int32_t info = 0;
  dgefmm_(&bad, &good, &n, &n, &n, &one, x, &ld, x, &ld, &zero, x, &ld,
          &info);
  EXPECT_EQ(info, 1);
}

}  // namespace
}  // namespace strassen
