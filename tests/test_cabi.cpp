// Tests for the C and Fortran-77 bindings.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/packed_loop.hpp"
#include "core/cabi.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"

namespace strassen {
namespace {

TEST(CAbi, MatchesReference) {
  Rng rng(1);
  const index_t n = 100;
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c = random_matrix(n, n, rng);
  Matrix c_ref(n, n);
  copy(c.view(), c_ref.view());

  ASSERT_EQ(strassen_dgefmm('N', 'N', n, n, n, 1.5, a.data(), n, b.data(), n,
                            0.5, c.data(), n),
            0);
  blas::gemm_reference(Trans::no, Trans::no, n, n, n, 1.5, a.data(), n,
                       b.data(), n, 0.5, c_ref.data(), n);
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-10);
}

TEST(CAbi, LowercaseAndConjTransAccepted) {
  Rng rng(2);
  Matrix a = random_matrix(20, 30, rng);
  Matrix b = random_matrix(20, 25, rng);
  Matrix c(30, 25), c_ref(30, 25);
  fill(c.view(), 0.0);
  fill(c_ref.view(), 0.0);
  ASSERT_EQ(strassen_dgefmm('c', 'n', 30, 25, 20, 1.0, a.data(), 20,
                            b.data(), 20, 0.0, c.data(), 30),
            0);
  blas::gemm_reference(Trans::transpose, Trans::no, 30, 25, 20, 1.0,
                       a.data(), 20, b.data(), 20, 0.0, c_ref.data(), 30);
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-11);
}

TEST(CAbi, InvalidArgumentsReported) {
  double x = 0.0;
  EXPECT_EQ(strassen_dgefmm('X', 'N', 1, 1, 1, 1.0, &x, 1, &x, 1, 0.0, &x, 1),
            1);
  EXPECT_EQ(strassen_dgefmm('N', '?', 1, 1, 1, 1.0, &x, 1, &x, 1, 0.0, &x, 1),
            2);
  EXPECT_EQ(strassen_dgefmm('N', 'N', -1, 1, 1, 1.0, &x, 1, &x, 1, 0.0, &x, 1),
            3);
  EXPECT_EQ(strassen_dgefmm('N', 'N', 4, 4, 4, 1.0, &x, 2, &x, 4, 0.0, &x, 4),
            8);
}

TEST(CAbi, TunedVariantUsesGivenParameters) {
  Rng rng(3);
  const index_t n = 64;
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c1(n, n), c2(n, n);
  fill(c1.view(), 0.0);
  fill(c2.view(), 0.0);
  // tau = 8 forces recursion; tau huge forces plain DGEMM. Both must agree
  // numerically.
  ASSERT_EQ(strassen_dgefmm_tuned('N', 'N', n, n, n, 1.0, a.data(), n,
                                  b.data(), n, 0.0, c1.data(), n, 8, 8, 8, 8),
            0);
  ASSERT_EQ(strassen_dgefmm_tuned('N', 'N', n, n, n, 1.0, a.data(), n,
                                  b.data(), n, 0.0, c2.data(), n, 1e9, 1e9,
                                  1e9, 1e9),
            0);
  EXPECT_LT(max_abs_diff(c1.view(), c2.view()), 1e-11);
}

TEST(FortranAbi, PointerCallingConvention) {
  Rng rng(4);
  const std::int32_t n = 48;
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n), c_ref(n, n);
  fill(c.view(), 0.0);
  fill(c_ref.view(), 0.0);
  const char ta = 'N', tb = 'T';
  const double alpha = 2.0, beta = 0.0;
  std::int32_t info = -1;
  dgefmm_(&ta, &tb, &n, &n, &n, &alpha, a.data(), &n, b.data(), &n, &beta,
          c.data(), &n, &info);
  EXPECT_EQ(info, 0);
  blas::gemm_reference(Trans::no, Trans::transpose, n, n, n, alpha, a.data(),
                       n, b.data(), n, beta, c_ref.data(), n);
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-11);
}

TEST(FortranAbi, InfoReceivesArgumentErrors) {
  const char bad = 'Q', good = 'N';
  const std::int32_t n = 4, ld = 4;
  const double one = 1.0, zero = 0.0;
  double x[16] = {};
  std::int32_t info = 0;
  dgefmm_(&bad, &good, &n, &n, &n, &one, x, &ld, x, &ld, &zero, x, &ld,
          &info);
  EXPECT_EQ(info, 1);
}

// Every documented bad-argument info code, with C verified untouched.
TEST(CAbi, BadArgumentTable) {
  struct Case {
    const char* what;
    char ta, tb;
    std::int64_t m, n, k, lda, ldb, ldc;
    int info;
  };
  const Case cases[] = {
      {"transa invalid", 'X', 'N', 4, 4, 4, 4, 4, 4, 1},
      {"transb invalid", 'N', '?', 4, 4, 4, 4, 4, 4, 2},
      {"m negative", 'N', 'N', -1, 4, 4, 4, 4, 4, 3},
      {"n negative", 'N', 'N', 4, -1, 4, 4, 4, 4, 4},
      {"k negative", 'N', 'N', 4, 4, -1, 4, 4, 4, 5},
      {"lda too small", 'N', 'N', 4, 4, 4, 3, 4, 4, 8},
      {"lda too small transposed", 'T', 'N', 4, 4, 8, 4, 8, 4, 8},
      {"ldb too small", 'N', 'N', 4, 4, 4, 4, 3, 4, 10},
      {"ldb too small transposed", 'N', 'T', 4, 8, 4, 4, 4, 4, 10},
      {"ldc too small", 'N', 'N', 4, 4, 4, 4, 4, 3, 13},
  };
  double a[64], b[64], c[64], c_before[64];
  for (int i = 0; i < 64; ++i) {
    a[i] = 1.0 + i;
    b[i] = 2.0 - i;
    c[i] = 0.25 * i;
    c_before[i] = c[i];
  }
  for (const Case& t : cases) {
    EXPECT_EQ(strassen_dgefmm(t.ta, t.tb, t.m, t.n, t.k, 1.5, a, t.lda, b,
                              t.ldb, 0.5, c, t.ldc),
              t.info)
        << t.what;
    EXPECT_EQ(std::memcmp(c, c_before, sizeof(c)), 0)
        << t.what << ": C must stay untouched on an argument error";
  }
}

// Degenerate quick returns must apply beta*C exactly once (exact IEEE
// scaling, no residual GEMM contribution) and never touch the ldc padding
// rows between m and ldc.
TEST(CAbi, QuickReturnsLeaveBetaCExact) {
  const std::int64_t m = 5, n = 4, ldc = 8;
  double a[8], b[8];
  for (int i = 0; i < 8; ++i) a[i] = b[i] = 3.0 + i;

  struct Case {
    const char* what;
    std::int64_t mm, nn, kk;
    double alpha, beta;
  };
  const Case cases[] = {
      {"m == 0", 0, n, 3, 1.5, 0.5},    {"n == 0", m, 0, 3, 1.5, 0.5},
      {"k == 0, scale", m, n, 0, 1.5, 0.5}, {"k == 0, zero", m, n, 0, 1.5, 0.0},
      {"alpha == 0, scale", m, n, 3, 0.0, 0.5},
      {"alpha == 0, keep", m, n, 3, 0.0, 1.0},
  };
  for (const Case& t : cases) {
    double c[ldc * n], c_before[ldc * n];
    for (int i = 0; i < ldc * n; ++i) c[i] = c_before[i] = 0.75 * i - 7.0;
    ASSERT_EQ(strassen_dgefmm('N', 'N', t.mm, t.nn, t.kk, t.alpha, a,
                              t.mm > 0 ? t.mm : 1, b, t.kk > 0 ? t.kk : 1,
                              t.beta, c, ldc),
              0)
        << t.what;
    for (std::int64_t j = 0; j < n; ++j) {
      for (std::int64_t i = 0; i < ldc; ++i) {
        const double before = c_before[i + j * ldc];
        const bool in_c = i < t.mm && j < t.nn;
        const double want = in_c ? t.beta * before : before;
        EXPECT_EQ(c[i + j * ldc], want)
            << t.what << " at (" << i << ", " << j << ")";
      }
    }
  }
}

// Regression for the failure contract at the boundary: with the binding
// workspace capped at a single double, no exception may escape the
// extern "C" entry points -- strict reports the documented negative info
// with C untouched, fallback (the default) still computes the product.
TEST(CAbi, TinyWorkspaceBudgetNeverLeaksExceptions) {
  Rng rng(6);
  const index_t n = 64;
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c = random_matrix(n, n, rng);
  Matrix c_ref(n, n);
  copy(c.view(), c_ref.view());
  blas::gemm_reference(Trans::no, Trans::no, n, n, n, 1.5, a.data(), n,
                       b.data(), n, 0.5, c_ref.data(), n);
  std::vector<double> snapshot(c.data(),
                               c.data() + static_cast<std::size_t>(n) * n);

  strassen_dgefmm_set_workspace_limit(1);

  // Strict: a typed negative info code, C bit-identical.
  strassen_dgefmm_set_failure_policy('S');
  EXPECT_EQ(strassen_dgefmm_tuned('N', 'N', n, n, n, 1.5, a.data(), n,
                                  b.data(), n, 0.5, c.data(), n, 8, 8, 8, 8),
            STRASSEN_INFO_WORKSPACE);
  EXPECT_EQ(std::memcmp(c.data(), snapshot.data(),
                        snapshot.size() * sizeof(double)),
            0);

  // Fallback (the binding default): degrade to plain DGEMM and succeed.
  strassen_dgefmm_set_failure_policy('F');
  EXPECT_EQ(strassen_dgefmm_tuned('N', 'N', n, n, n, 1.5, a.data(), n,
                                  b.data(), n, 0.5, c.data(), n, 8, 8, 8, 8),
            0);
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-10);

  strassen_dgefmm_set_workspace_limit(-1);
}

// Eight threads hammer the binding concurrently. The per-thread arenas
// (and per-thread policy/limit knobs) mean there is no shared state to
// race on; the tsan preset runs this under ThreadSanitizer.
TEST(CAbi, ConcurrentCallersShareNoState) {
  Rng rng(7);
  const index_t n = 96;
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c_ref(n, n);
  fill(c_ref.view(), 0.0);
  blas::gemm_reference(Trans::no, Trans::no, n, n, n, 1.0, a.data(), n,
                       b.data(), n, 0.0, c_ref.data(), n);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Matrix c(n, n);
      for (int it = 0; it < 4; ++it) {
        fill(c.view(), 0.0);
        // Odd threads run with a tight budget (exercising the per-thread
        // fallback), even threads with the full Strassen path.
        strassen_dgefmm_set_workspace_limit((t & 1) ? 1 : -1);
        if (strassen_dgefmm_tuned('N', 'N', n, n, n, 1.0, a.data(), n,
                                  b.data(), n, 0.0, c.data(), n, 8, 8, 8,
                                  8) != 0 ||
            max_abs_diff(c.view(), c_ref.view()) > 1e-10) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      strassen_dgefmm_release_workspace();
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// --- single-precision binding ----------------------------------------------

// Double-precision reference for a float product: promote the inputs, run
// the double reference GEMM, and compare in double. Bounds the float
// binding's forward error without trusting any float path.
Matrix promoted_sgemm_reference(const MatrixF& a, const MatrixF& b,
                                const MatrixF& c0, float alpha, float beta) {
  Matrix ap(a.rows(), a.cols()), bp(b.rows(), b.cols()),
      cp(c0.rows(), c0.cols());
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i)
      ap.view()(i, j) = static_cast<double>(a.view()(i, j));
  for (index_t j = 0; j < b.cols(); ++j)
    for (index_t i = 0; i < b.rows(); ++i)
      bp.view()(i, j) = static_cast<double>(b.view()(i, j));
  for (index_t j = 0; j < c0.cols(); ++j)
    for (index_t i = 0; i < c0.rows(); ++i)
      cp.view()(i, j) = static_cast<double>(c0.view()(i, j));
  blas::gemm_reference(Trans::no, Trans::no, ap.rows(), bp.cols(), ap.cols(),
                       static_cast<double>(alpha), ap.data(), ap.ld(),
                       bp.data(), bp.ld(), static_cast<double>(beta),
                       cp.data(), cp.ld());
  return cp;
}

double error_vs_promoted(const Matrix& want, const MatrixF& got) {
  double err = 0.0;
  for (index_t j = 0; j < want.cols(); ++j)
    for (index_t i = 0; i < want.rows(); ++i)
      err = std::max(err, std::abs(want.view()(i, j) -
                                   static_cast<double>(got.view()(i, j))));
  return err;
}

TEST(SgefmmCAbi, MatchesPromotedReference) {
  Rng rng(11);
  const index_t n = 100;
  MatrixF a = random_matrix_f(n, n, rng);
  MatrixF b = random_matrix_f(n, n, rng);
  MatrixF c = random_matrix_f(n, n, rng);
  const Matrix want = promoted_sgemm_reference(a, b, c, 1.5f, 0.5f);

  ASSERT_EQ(strassen_sgefmm('N', 'N', n, n, n, 1.5f, a.data(), n, b.data(),
                            n, 0.5f, c.data(), n),
            0);
  EXPECT_LT(error_vs_promoted(want, c), 64.0 * n * static_cast<double>(FLT_EPSILON));
}

// The float binding reports the same positional info codes as the double
// one, with C verified bit-identical on every argument error.
TEST(SgefmmCAbi, BadArgumentTable) {
  struct Case {
    const char* what;
    char ta, tb;
    std::int64_t m, n, k, lda, ldb, ldc;
    int info;
  };
  const Case cases[] = {
      {"transa invalid", 'X', 'N', 4, 4, 4, 4, 4, 4, 1},
      {"transb invalid", 'N', '?', 4, 4, 4, 4, 4, 4, 2},
      {"m negative", 'N', 'N', -1, 4, 4, 4, 4, 4, 3},
      {"n negative", 'N', 'N', 4, -1, 4, 4, 4, 4, 4},
      {"k negative", 'N', 'N', 4, 4, -1, 4, 4, 4, 5},
      {"lda too small", 'N', 'N', 4, 4, 4, 3, 4, 4, 8},
      {"lda too small transposed", 'T', 'N', 4, 4, 8, 4, 8, 4, 8},
      {"ldb too small", 'N', 'N', 4, 4, 4, 4, 3, 4, 10},
      {"ldb too small transposed", 'N', 'T', 4, 8, 4, 4, 4, 4, 10},
      {"ldc too small", 'N', 'N', 4, 4, 4, 4, 4, 3, 13},
  };
  float a[64], b[64], c[64], c_before[64];
  for (int i = 0; i < 64; ++i) {
    a[i] = 1.0f + static_cast<float>(i);
    b[i] = 2.0f - static_cast<float>(i);
    c[i] = 0.25f * static_cast<float>(i);
    c_before[i] = c[i];
  }
  for (const Case& t : cases) {
    EXPECT_EQ(strassen_sgefmm(t.ta, t.tb, t.m, t.n, t.k, 1.5f, a, t.lda, b,
                              t.ldb, 0.5f, c, t.ldc),
              t.info)
        << t.what;
    EXPECT_EQ(std::memcmp(c, c_before, sizeof(c)), 0)
        << t.what << ": C must stay untouched on an argument error";
  }
}

TEST(SgefmmFortranAbi, PointerCallingConvention) {
  Rng rng(12);
  const std::int32_t n = 48;
  MatrixF a = random_matrix_f(n, n, rng);
  MatrixF b = random_matrix_f(n, n, rng);
  MatrixF c(n, n);
  c.fill(0.0f);
  const Matrix want = promoted_sgemm_reference(a, b, c, 2.0f, 0.0f);
  const char ta = 'N', tb = 'N';
  const float alpha = 2.0f, beta = 0.0f;
  std::int32_t info = -1;
  sgefmm_(&ta, &tb, &n, &n, &n, &alpha, a.data(), &n, b.data(), &n, &beta,
          c.data(), &n, &info);
  EXPECT_EQ(info, 0);
  EXPECT_LT(error_vs_promoted(want, c), 64.0 * n * static_cast<double>(FLT_EPSILON));
}

// Float twin of the workspace-budget regression: with the float binding
// arena capped at one float, no exception may cross the extern "C"
// boundary -- strict reports STRASSEN_INFO_WORKSPACE with C bit-identical,
// fallback (the default) still computes the product.
TEST(SgefmmCAbi, TinyWorkspaceBudgetNeverLeaksExceptions) {
  Rng rng(13);
  const index_t n = 64;
  MatrixF a = random_matrix_f(n, n, rng);
  MatrixF b = random_matrix_f(n, n, rng);
  MatrixF c = random_matrix_f(n, n, rng);
  const Matrix want = promoted_sgemm_reference(a, b, c, 1.5f, 0.5f);
  std::vector<float> snapshot(c.data(),
                              c.data() + static_cast<std::size_t>(n) * n);

  strassen_sgefmm_set_workspace_limit(1);

  // Strict: a typed negative info code, C bit-identical.
  strassen_sgefmm_set_failure_policy('S');
  EXPECT_EQ(strassen_sgefmm_tuned('N', 'N', n, n, n, 1.5f, a.data(), n,
                                  b.data(), n, 0.5f, c.data(), n, 8, 8, 8, 8),
            STRASSEN_INFO_WORKSPACE);
  EXPECT_EQ(std::memcmp(c.data(), snapshot.data(),
                        snapshot.size() * sizeof(float)),
            0);

  // Fallback (the binding default): degrade to plain SGEMM and succeed.
  strassen_sgefmm_set_failure_policy('F');
  EXPECT_EQ(strassen_sgefmm_tuned('N', 'N', n, n, n, 1.5f, a.data(), n,
                                  b.data(), n, 0.5f, c.data(), n, 8, 8, 8, 8),
            0);
  EXPECT_LT(error_vs_promoted(want, c), 64.0 * n * static_cast<double>(FLT_EPSILON));

  strassen_sgefmm_set_workspace_limit(-1);
  strassen_sgefmm_release_workspace();
}

// The two bindings' per-thread knobs are independent: starving the double
// binding must not degrade (or fail) the float one, and vice versa.
TEST(SgefmmCAbi, PrecisionKnobsAreIndependent) {
  Rng rng(14);
  const index_t n = 64;
  MatrixF a = random_matrix_f(n, n, rng);
  MatrixF b = random_matrix_f(n, n, rng);
  MatrixF c(n, n);
  c.fill(0.0f);

  // Starve and strict-en the DOUBLE binding only; the float binding must
  // still acquire its own arena and succeed under its own (strict) policy.
  strassen_dgefmm_set_workspace_limit(1);
  strassen_dgefmm_set_failure_policy('S');
  strassen_sgefmm_set_failure_policy('S');
  EXPECT_EQ(strassen_sgefmm_tuned('N', 'N', n, n, n, 1.0f, a.data(), n,
                                  b.data(), n, 0.0f, c.data(), n, 8, 8, 8, 8),
            0);
  MatrixF zero(n, n);
  zero.fill(0.0f);
  const Matrix want = promoted_sgemm_reference(a, b, zero, 1.0f, 0.0f);
  EXPECT_LT(error_vs_promoted(want, c), 64.0 * n * static_cast<double>(FLT_EPSILON));

  strassen_dgefmm_set_workspace_limit(-1);
  strassen_dgefmm_set_failure_policy('F');
  strassen_sgefmm_set_failure_policy('F');
  strassen_sgefmm_release_workspace();
  strassen_dgefmm_release_workspace();
}

// Regression: release_workspace must release the *whole* per-thread
// retained footprint -- the binding arena and the packed-GEMM scratch the
// leaf kernels warmed on this thread -- not just the arena. A long-lived
// serving thread that stops issuing GEMMs should retain zero workspace.
TEST(CAbi, ReleaseWorkspaceAlsoReleasesPackScratch) {
  Rng rng(15);
  const index_t n = 160;
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n);
  c.fill(0.0);
  {
    // Pin the leaf GEMMs to the calling thread so the pack scratch under
    // test is this thread's own.
    blas::ScopedGemmThreads serial(1);
    ASSERT_EQ(strassen_dgefmm('N', 'N', n, n, n, 1.0, a.data(), n, b.data(),
                              n, 0.0, c.data(), n),
              0);
  }
  EXPECT_GT(blas::pack_capacity_elements<double>(), 0u)
      << "the packed loop must have warmed per-thread scratch";
  strassen_dgefmm_release_workspace();
  EXPECT_EQ(blas::pack_capacity_elements<double>(), 0u)
      << "release_workspace must drop the pack scratch too";

  MatrixF af = random_matrix_f(n, n, rng);
  MatrixF bf = random_matrix_f(n, n, rng);
  MatrixF cf(n, n);
  cf.fill(0.0f);
  {
    blas::ScopedGemmThreads serial(1);
    ASSERT_EQ(strassen_sgefmm('N', 'N', n, n, n, 1.0f, af.data(), n,
                              bf.data(), n, 0.0f, cf.data(), n),
              0);
  }
  EXPECT_GT(blas::pack_capacity_elements<float>(), 0u);
  strassen_sgefmm_release_workspace();
  EXPECT_EQ(blas::pack_capacity_elements<float>(), 0u);
  // The releases are per-type and per-thread: re-running immediately
  // re-acquires, so a release is never a correctness event.
  {
    blas::ScopedGemmThreads serial(1);
    ASSERT_EQ(strassen_dgefmm('N', 'N', n, n, n, 1.0, a.data(), n, b.data(),
                              n, 0.0, c.data(), n),
              0);
  }
  EXPECT_GT(blas::pack_capacity_elements<double>(), 0u);
  strassen_dgefmm_release_workspace();
}

}  // namespace
}  // namespace strassen
