// Tests for the parallel extension: thread pool semantics, the
// work-stealing DAG executor, the moldable pre-flight planner, and
// numerical agreement (plus bitwise determinism) of the parallel GEMM /
// parallel Strassen with the reference.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/prefetch.hpp"
#include "core/workspace.hpp"
#include "parallel/parallel_gemm.hpp"
#include "parallel/parallel_strassen.hpp"
#include "parallel/task_dag.hpp"
#include "support/thread_pool.hpp"
#include "support/matrix.hpp"
#include "support/memadvise.hpp"
#include "support/random.hpp"

namespace strassen {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  parallel::ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.run_batch(std::move(tasks));
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SequentialBatches) {
  parallel::ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 10; ++i) {
      tasks.push_back([&counter] { counter.fetch_add(1); });
    }
    pool.run_batch(std::move(tasks));
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPool, PropagatesTaskException) {
  parallel::ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] { throw std::runtime_error("boom"); });
  tasks.push_back([] {});
  EXPECT_THROW(pool.run_batch(std::move(tasks)), std::runtime_error);
  // The pool must remain usable after an exception.
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> more;
  more.push_back([&counter] { counter.fetch_add(1); });
  pool.run_batch(std::move(more));
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, EmptyBatchIsNoop) {
  parallel::ThreadPool pool(1);
  EXPECT_NO_THROW(pool.run_batch({}));
}

// --- DagRun / run_dag unit tests -------------------------------------------

// Shared state for hand-built DAG nodes: each body records the global order
// index it executed at.
struct DagProbe {
  std::atomic<int> seq{0};
  std::vector<int> order;  // one slot per node, written once
  explicit DagProbe(std::size_t n) : order(n, -1) {}
};

struct DagProbeNode {
  DagProbe* probe = nullptr;
  int id = 0;
};

void probe_body(void* arg, std::size_t /*lane*/) {
  auto* n = static_cast<DagProbeNode*>(arg);
  n->probe->order[static_cast<std::size_t>(n->id)] =
      n->probe->seq.fetch_add(1);
}

TEST(ThreadPoolDag, ExecutesAllNodesInDependencyOrder) {
  parallel::ThreadPool pool(3);
  // Diamond over 8 nodes: 0 -> {1,2,3} -> {4,5} -> 6 -> 7.
  const std::int32_t succ0[] = {1, 2, 3};
  const std::int32_t succ_mid[] = {4, 5};
  const std::int32_t succ_late[] = {6};
  const std::int32_t succ6[] = {7};
  DagProbe probe(8);
  DagProbeNode bodies[8];
  for (int i = 0; i < 8; ++i) bodies[i] = {&probe, i};
  parallel::ThreadPool::DagNode nodes[8] = {
      {&probe_body, &bodies[0], succ0, 3, 0},
      {&probe_body, &bodies[1], succ_mid, 2, 1},
      {&probe_body, &bodies[2], succ_mid, 2, 1},
      {&probe_body, &bodies[3], succ_mid, 2, 1},
      {&probe_body, &bodies[4], succ_late, 1, 3},
      {&probe_body, &bodies[5], succ_late, 1, 3},
      {&probe_body, &bodies[6], succ6, 1, 2},
      {&probe_body, &bodies[7], nullptr, 0, 1},
  };
  parallel::DagRun run(nodes, 8, 3);
  pool.run_dag(run);
  for (int i = 0; i < 8; ++i) EXPECT_GE(probe.order[i], 0) << "node " << i;
  for (int mid = 1; mid <= 3; ++mid) {
    EXPECT_LT(probe.order[0], probe.order[mid]);
    EXPECT_LT(probe.order[mid], probe.order[4]);
    EXPECT_LT(probe.order[mid], probe.order[5]);
  }
  EXPECT_LT(probe.order[4], probe.order[6]);
  EXPECT_LT(probe.order[5], probe.order[6]);
  EXPECT_LT(probe.order[6], probe.order[7]);
}

TEST(ThreadPoolDag, SingleLaneRunsEverythingOnCaller) {
  parallel::ThreadPool pool(2);
  const std::int32_t succ[] = {1};
  DagProbe probe(2);
  DagProbeNode bodies[2] = {{&probe, 0}, {&probe, 1}};
  parallel::ThreadPool::DagNode nodes[2] = {
      {&probe_body, &bodies[0], succ, 1, 0},
      {&probe_body, &bodies[1], nullptr, 0, 1},
  };
  parallel::DagRun run(nodes, 2, 1);
  pool.run_dag(run);
  EXPECT_EQ(probe.order[0], 0);
  EXPECT_EQ(probe.order[1], 1);
  EXPECT_EQ(run.steals(), 0);
  EXPECT_LE(run.peak_active(), 1);
}

// Forces a steal: the root readies both children into lane 0's own deque;
// child A then blocks until child B has started, which can only happen if
// the second lane stole B.
struct StealState {
  std::atomic<bool> b_started{false};
};

void steal_root(void*, std::size_t) {}

void steal_child_a(void* arg, std::size_t) {
  auto* st = static_cast<StealState*>(arg);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!st->b_started.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
}

void steal_child_b(void* arg, std::size_t) {
  static_cast<StealState*>(arg)->b_started.store(
      true, std::memory_order_release);
}

TEST(ThreadPoolDag, IdleLaneStealsFromBusyLane) {
  parallel::ThreadPool pool(2);
  StealState st;
  const std::int32_t succ[] = {1, 2};
  // Successors are pushed to the finishing lane's deque in array order and
  // popped LIFO, so the caller's lane runs node 2 (the waiter) first while
  // node 1 (the flag-setter) sits at the steal end of the deque.
  parallel::ThreadPool::DagNode nodes[3] = {
      {&steal_root, nullptr, succ, 2, 0},
      {&steal_child_b, &st, nullptr, 0, 1},
      {&steal_child_a, &st, nullptr, 0, 1},
  };
  parallel::DagRun run(nodes, 3, 2);
  pool.run_dag(run);
  EXPECT_TRUE(st.b_started.load());
  EXPECT_GE(run.steals(), 1);
}

TEST(ThreadPoolDag, PeakActiveBoundedByLanes) {
  parallel::ThreadPool pool(4);
  // 24 independent nodes, but only 2 lanes: the executor must never run
  // more than two bodies at once regardless of pool width -- the property
  // the moldable allotment relies on to prevent oversubscription.
  DagProbe probe(24);
  DagProbeNode bodies[24];
  parallel::ThreadPool::DagNode nodes[24];
  for (int i = 0; i < 24; ++i) {
    bodies[i] = {&probe, i};
    nodes[i] = {&probe_body, &bodies[i], nullptr, 0, 0};
  }
  parallel::DagRun run(nodes, 24, 2);
  pool.run_dag(run);
  for (int i = 0; i < 24; ++i) EXPECT_GE(probe.order[i], 0);
  EXPECT_LE(run.peak_active(), 2);
}

void throwing_body(void*, std::size_t) {
  throw std::runtime_error("dag node boom");
}

TEST(ThreadPoolDag, PropagatesNodeExceptionAndStaysUsable) {
  parallel::ThreadPool pool(2);
  DagProbe probe(1);
  DagProbeNode tail{&probe, 0};
  const std::int32_t succ[] = {1};
  parallel::ThreadPool::DagNode nodes[2] = {
      {&throwing_body, nullptr, succ, 1, 0},
      {&probe_body, &tail, nullptr, 0, 1},
  };
  parallel::DagRun run(nodes, 2, 2);
  EXPECT_THROW(pool.run_dag(run), std::runtime_error);
  // The failed node's successor was abandoned, not executed.
  EXPECT_EQ(probe.order[0], -1);
  // The pool must remain usable after a failed run.
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> more;
  more.push_back([&counter] { counter.fetch_add(1); });
  pool.run_batch(std::move(more));
  EXPECT_EQ(counter.load(), 1);
}

// --- Moldable planner ------------------------------------------------------

// Clears the scheduler environment knobs for the duration of a test so the
// automatic resolution paths are exercised regardless of the ctest matrix's
// environment, restoring them afterwards.
class ScopedClearPlanEnv {
 public:
  ScopedClearPlanEnv() {
    save("STRASSEN_PAR_DEPTH", depth_);
    save("STRASSEN_PAR_LANES", lanes_);
    unsetenv("STRASSEN_PAR_DEPTH");
    unsetenv("STRASSEN_PAR_LANES");
  }
  ~ScopedClearPlanEnv() {
    restore("STRASSEN_PAR_DEPTH", depth_);
    restore("STRASSEN_PAR_LANES", lanes_);
  }

 private:
  static void save(const char* name, std::string& slot) {
    const char* v = std::getenv(name);
    slot = v != nullptr ? v : "";
  }
  static void restore(const char* name, const std::string& v) {
    if (!v.empty()) setenv(name, v.c_str(), 1);
  }
  std::string depth_, lanes_;
};

TEST(DagPlan, AllotmentNeverOversubscribesBudget) {
  ScopedClearPlanEnv clear_env;
  for (int budget = 1; budget <= 16; ++budget) {
    parallel::ParallelDgefmmConfig cfg;
    cfg.threads = static_cast<std::size_t>(budget);
    const parallel::DagPlan plan = parallel::plan_dag(256, 256, 256, cfg);
    EXPECT_GE(plan.lanes, 1);
    EXPECT_LE(plan.lanes, plan.products);
    EXPECT_GE(plan.leaf_gemm_threads, 1);
    EXPECT_LE(plan.lanes * plan.leaf_gemm_threads, budget > 0 ? budget : 1)
        << "budget " << budget;
  }
}

TEST(DagPlan, DepthWidensWithBudgetAndRespectsFeasibility) {
  ScopedClearPlanEnv clear_env;
  parallel::ParallelDgefmmConfig cfg;
  cfg.threads = 4;
  EXPECT_EQ(parallel::plan_dag(256, 256, 256, cfg).par_depth, 1);
  cfg.threads = 14;
  const parallel::DagPlan wide = parallel::plan_dag(256, 256, 256, cfg);
  EXPECT_EQ(wide.par_depth, 2);
  EXPECT_EQ(wide.products, 49);
  EXPECT_EQ(wide.combines, 16);
  // 258 halves to 129 (odd): depth 2 is infeasible even when requested.
  cfg.par_depth = 2;
  EXPECT_EQ(parallel::plan_dag(258, 258, 258, cfg).par_depth, 1);
}

TEST(DagPlan, WorkspaceMatchesPredictor) {
  parallel::ParallelDgefmmConfig cfg;
  cfg.threads = 4;
  cfg.par_depth = 2;
  cfg.lanes = 3;
  cfg.cutoff = core::CutoffCriterion::square_simple(24);
  const parallel::DagPlan plan = parallel::plan_dag(160, 160, 160, cfg);
  core::DgefmmConfig child;
  child.cutoff = cfg.cutoff;
  child.scheme = cfg.scheme;
  EXPECT_EQ(plan.workspace,
            core::parallel_workspace_doubles(160, 160, 160, child, 2, 3));
  EXPECT_GT(plan.workspace, 0);
}

TEST(ParallelGemm, MatchesReference) {
  Rng rng(31);
  const index_t m = 90, n = 257, k = 70;
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c = random_matrix(m, n, rng);
  Matrix c_ref(m, n);
  copy(c.view(), c_ref.view());
  parallel::dgemm_parallel(Trans::no, Trans::no, m, n, k, 1.5, a.data(), m,
                           b.data(), k, 0.5, c.data(), m, 4);
  blas::gemm_reference(Trans::no, Trans::no, m, n, k, 1.5, a.data(), m,
                       b.data(), k, 0.5, c_ref.data(), m);
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-11);
}

TEST(ParallelGemm, TransposedOperands) {
  Rng rng(32);
  const index_t m = 64, n = 128, k = 80;
  Matrix a = random_matrix(k, m, rng);
  Matrix b = random_matrix(n, k, rng);
  Matrix c(m, n), c_ref(m, n);
  fill(c.view(), 0.0);
  fill(c_ref.view(), 0.0);
  parallel::dgemm_parallel(Trans::transpose, Trans::transpose, m, n, k, 1.0,
                           a.data(), k, b.data(), n, 0.0, c.data(), m, 3);
  blas::gemm_reference(Trans::transpose, Trans::transpose, m, n, k, 1.0,
                       a.data(), k, b.data(), n, 0.0, c_ref.data(), m);
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-11);
}

TEST(ParallelGemm, SmallProblemFallsBackToSerial) {
  Rng rng(33);
  const index_t m = 8, n = 8, k = 8;
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c(m, n), c_ref(m, n);
  fill(c.view(), 0.0);
  fill(c_ref.view(), 0.0);
  parallel::dgemm_parallel(Trans::no, Trans::no, m, n, k, 1.0, a.data(), m,
                           b.data(), k, 0.0, c.data(), m);
  blas::dgemm(Trans::no, Trans::no, m, n, k, 1.0, a.data(), m, b.data(), k,
              0.0, c_ref.data(), m);
  EXPECT_EQ(max_abs_diff(c.view(), c_ref.view()), 0.0);
}

class ParallelStrassenCases : public ::testing::TestWithParam<int> {};

TEST_P(ParallelStrassenCases, MatchesReference) {
  struct Case {
    index_t m, n, k;
    Trans ta, tb;
    double alpha, beta;
  };
  const std::vector<Case> cases = {
      {128, 128, 128, Trans::no, Trans::no, 1.0, 0.0},
      {129, 127, 125, Trans::no, Trans::no, 1.0, 0.0},
      {120, 140, 100, Trans::no, Trans::no, 2.0, -0.5},
      {96, 96, 96, Trans::transpose, Trans::no, 1.0, 1.0},
      {101, 99, 97, Trans::transpose, Trans::transpose, -1.0, 0.25},
      {16, 16, 16, Trans::no, Trans::no, 1.0, 0.0},  // serial fallback
  };
  const Case cs = cases[static_cast<std::size_t>(GetParam())];
  Rng rng(100 + static_cast<std::uint64_t>(GetParam()));
  const index_t a_rows = is_trans(cs.ta) ? cs.k : cs.m;
  const index_t a_cols = is_trans(cs.ta) ? cs.m : cs.k;
  const index_t b_rows = is_trans(cs.tb) ? cs.n : cs.k;
  const index_t b_cols = is_trans(cs.tb) ? cs.k : cs.n;
  Matrix a = random_matrix(a_rows, a_cols, rng);
  Matrix b = random_matrix(b_rows, b_cols, rng);
  Matrix c = random_matrix(cs.m, cs.n, rng);
  Matrix c_ref(cs.m, cs.n);
  copy(c.view(), c_ref.view());

  parallel::ParallelDgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::square_simple(24);
  ASSERT_EQ(parallel::dgefmm_parallel(cs.ta, cs.tb, cs.m, cs.n, cs.k,
                                      cs.alpha, a.data(), a.ld(), b.data(),
                                      b.ld(), cs.beta, c.data(), c.ld(), cfg),
            0);
  blas::gemm_reference(cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha, a.data(),
                       a.ld(), b.data(), b.ld(), cs.beta, c_ref.data(),
                       c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()),
            1e-11 * (static_cast<double>(cs.k) + 10.0));
}

INSTANTIATE_TEST_SUITE_P(Cases, ParallelStrassenCases, ::testing::Range(0, 6));

class ParallelFusedCases : public ::testing::TestWithParam<int> {};

TEST_P(ParallelFusedCases, FusedScheduleMatchesReference) {
  struct Case {
    index_t m, n, k;
    Trans ta, tb;
    double alpha, beta;
  };
  const std::vector<Case> cases = {
      {128, 128, 128, Trans::no, Trans::no, 1.0, 0.0},
      {129, 127, 125, Trans::no, Trans::no, 1.0, 0.0},
      {120, 140, 100, Trans::no, Trans::no, 2.0, -0.5},
      {96, 96, 96, Trans::transpose, Trans::no, 1.0, 1.0},
      {101, 99, 97, Trans::transpose, Trans::transpose, -1.0, 0.25},
      {16, 16, 16, Trans::no, Trans::no, 1.0, 0.0},  // serial fallback
  };
  const Case cs = cases[static_cast<std::size_t>(GetParam())];
  Rng rng(200 + static_cast<std::uint64_t>(GetParam()));
  const index_t a_rows = is_trans(cs.ta) ? cs.k : cs.m;
  const index_t a_cols = is_trans(cs.ta) ? cs.m : cs.k;
  const index_t b_rows = is_trans(cs.tb) ? cs.n : cs.k;
  const index_t b_cols = is_trans(cs.tb) ? cs.k : cs.n;
  Matrix a = random_matrix(a_rows, a_cols, rng);
  Matrix b = random_matrix(b_rows, b_cols, rng);
  Matrix c = random_matrix(cs.m, cs.n, rng);
  Matrix c_ref(cs.m, cs.n);
  copy(c.view(), c_ref.view());

  parallel::ParallelDgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::square_simple(24);
  cfg.scheme = core::Scheme::fused;
  ASSERT_EQ(parallel::dgefmm_parallel(cs.ta, cs.tb, cs.m, cs.n, cs.k,
                                      cs.alpha, a.data(), a.ld(), b.data(),
                                      b.ld(), cs.beta, c.data(), c.ld(), cfg),
            0);
  blas::gemm_reference(cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha, a.data(),
                       a.ld(), b.data(), b.ld(), cs.beta, c_ref.data(),
                       c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()),
            1e-11 * (static_cast<double>(cs.k) + 10.0));
}

INSTANTIATE_TEST_SUITE_P(Cases, ParallelFusedCases, ::testing::Range(0, 6));

TEST(ParallelStrassen, InvalidArgumentsReported) {
  Matrix a(8, 8), b(8, 8), c(8, 8);
  parallel::ParallelDgefmmConfig cfg;
  EXPECT_EQ(parallel::dgefmm_parallel(Trans::no, Trans::no, 8, 8, 8, 1.0,
                                      a.data(), 4, b.data(), 8, 0.0, c.data(),
                                      8, cfg),
            8);
}

// --- DAG scheduler: bitwise determinism and workspace exactness ------------

// C must be bitwise identical for every thread budget / lane count / steal
// order: combines apply their terms in the verified schedule's fixed order,
// and the block partition is static. Exercised over both schemes, both DAG
// depths, and even/odd shapes.
class DagDeterminismMatrix
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DagDeterminismMatrix, BitwiseIdenticalAcrossThreadCounts) {
  const int scheme_idx = std::get<0>(GetParam());
  const int par_depth = std::get<1>(GetParam());
  const index_t n = std::get<2>(GetParam()) == 0 ? 128 : 117;
  Rng rng(400 + static_cast<std::uint64_t>(scheme_idx * 10 + par_depth));
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c0 = random_matrix(n, n, rng);

  auto run_with_threads = [&](std::size_t threads, Matrix& c) {
    copy(c0.view(), c.view());
    parallel::ParallelDgefmmConfig cfg;
    cfg.cutoff = core::CutoffCriterion::square_simple(24);
    cfg.scheme = scheme_idx == 0 ? core::Scheme::automatic
                                 : core::Scheme::fused;
    cfg.par_depth = par_depth;
    cfg.threads = threads;
    ASSERT_EQ(parallel::dgefmm_parallel(Trans::no, Trans::no, n, n, n, 1.25,
                                        a.data(), a.ld(), b.data(), b.ld(),
                                        -0.5, c.data(), c.ld(), cfg),
              0);
  };

  Matrix base(n, n), wide(n, n), pool_sized(n, n);
  run_with_threads(1, base);  // one lane, serial leaves: the reference order
  run_with_threads(2, wide);
  run_with_threads(0, pool_sized);  // whatever the shared pool offers
  const std::size_t bytes =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n) *
      sizeof(double);
  EXPECT_EQ(std::memcmp(base.data(), wide.data(), bytes), 0);
  EXPECT_EQ(std::memcmp(base.data(), pool_sized.data(), bytes), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DagDeterminismMatrix,
    ::testing::Combine(::testing::Values(0, 1),   // automatic, fused
                       ::testing::Values(1, 2),   // par_depth
                       ::testing::Values(0, 1))); // even, odd shape

TEST(ParallelStrassen, WorkspacePredictionIsExact) {
  const index_t n = 144;
  Rng rng(55);
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n);
  fill(c.view(), 0.0);
  for (int depth = 1; depth <= 2; ++depth) {
    Arena arena;
    core::DgefmmStats stats;
    parallel::ParallelDgefmmConfig cfg;
    cfg.cutoff = core::CutoffCriterion::square_simple(24);
    cfg.par_depth = depth;
    cfg.threads = 4;
    cfg.workspace = &arena;
    cfg.stats = &stats;
    const parallel::DagPlan plan = parallel::plan_dag(n, n, n, cfg);
    ASSERT_EQ(parallel::dgefmm_parallel(Trans::no, Trans::no, n, n, n, 1.0,
                                        a.data(), a.ld(), b.data(), b.ld(),
                                        0.0, c.data(), c.ld(), cfg),
              0);
    // The single up-front reservation is carved exactly: predicted ==
    // reserved == measured high-water mark.
    EXPECT_EQ(arena.peak(), static_cast<std::size_t>(plan.workspace))
        << "par_depth " << depth;
    EXPECT_EQ(stats.peak_workspace, static_cast<std::size_t>(plan.workspace))
        << "par_depth " << depth;
    EXPECT_EQ(stats.dag_nodes,
              static_cast<count_t>(plan.products + plan.combines));
    EXPECT_EQ(stats.dag_lanes, plan.lanes);
  }
}

TEST(ParallelStrassen, LegacyWholePoolLeafFanoutStillCorrect) {
  // leaf_gemm_threads == 0 reproduces the pre-DAG behaviour (each product
  // leaf claims the whole pool); kept as the ablation baseline.
  const index_t n = 120;
  Rng rng(56);
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n), c_ref(n, n);
  fill(c.view(), 0.0);
  fill(c_ref.view(), 0.0);
  parallel::ParallelDgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::square_simple(24);
  cfg.leaf_gemm_threads = 0;
  ASSERT_EQ(parallel::dgefmm_parallel(Trans::no, Trans::no, n, n, n, 1.0,
                                      a.data(), a.ld(), b.data(), b.ld(),
                                      0.0, c.data(), c.ld(), cfg),
            0);
  blas::gemm_reference(Trans::no, Trans::no, n, n, n, 1.0, a.data(), a.ld(),
                       b.data(), b.ld(), 0.0, c_ref.data(), c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-11 * (n + 10.0));
}

TEST(ParallelStrassen, SchedulerStatsRecorded) {
  const index_t n = 128;
  Rng rng(57);
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n);
  fill(c.view(), 0.0);
  core::DgefmmStats stats;
  parallel::ParallelDgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::square_simple(24);
  cfg.par_depth = 2;
  cfg.lanes = 4;
  cfg.threads = 4;
  cfg.stats = &stats;
  ASSERT_EQ(parallel::dgefmm_parallel(Trans::no, Trans::no, n, n, n, 1.0,
                                      a.data(), a.ld(), b.data(), b.ld(),
                                      0.0, c.data(), c.ld(), cfg),
            0);
  EXPECT_EQ(stats.dag_nodes, 49 + 16);
  EXPECT_EQ(stats.dag_lanes, 4);
  EXPECT_EQ(stats.gemm_threads, 1);  // moldable split: 4 budget / 4 lanes
  EXPECT_EQ(stats.fallbacks, 0);
  EXPECT_NE(stats.kernel, nullptr);
}

// --- memory-system tuning: first-touch, huge pages, prefetch ---------------

// The full knob matrix (prefetch on/off x huge pages on/off x 1-vs-N
// threads) must be bitwise invisible: every combination produces the same
// C as the all-off single-thread run. Prefetch changes cache residency,
// huge pages change page backing, first-touch changes physical placement
// -- none of them may change a value or a combine order.
TEST(MemorySystem, KnobMatrixBitwiseIdenticalAcrossThreadCounts) {
  const index_t n = 160;
  Rng rng(606);
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c0 = random_matrix(n, n, rng);
  const std::size_t bytes = static_cast<std::size_t>(n) *
                            static_cast<std::size_t>(n) * sizeof(double);

  auto run = [&](bool pf, bool huge, std::size_t threads, Matrix& c) {
    blas::ScopedPackPrefetch prefetch(pf);
    ScopedHugePages hp(huge);
    copy(c0.view(), c.view());
    parallel::ParallelDgefmmConfig cfg;
    cfg.cutoff = core::CutoffCriterion::square_simple(24);
    cfg.scheme = core::Scheme::fused;
    cfg.threads = threads;
    ASSERT_EQ(parallel::dgefmm_parallel(Trans::no, Trans::no, n, n, n, 1.25,
                                        a.data(), a.ld(), b.data(), b.ld(),
                                        -0.5, c.data(), c.ld(), cfg),
              0);
  };

  Matrix base(n, n), other(n, n);
  run(false, false, 1, base);
  for (const bool pf : {false, true}) {
    for (const bool huge : {false, true}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                        std::size_t{0}}) {
        SCOPED_TRACE(std::string("prefetch=") + (pf ? "on" : "off") +
                     " hugepages=" + (huge ? "on" : "off") + " threads=" +
                     std::to_string(threads));
        run(pf, huge, threads, other);
        EXPECT_EQ(std::memcmp(base.data(), other.data(), bytes), 0);
      }
    }
  }
}

// Multi-lane runs first-touch their per-lane sub-arenas before the compute
// phase and record the page count; the touches must not perturb the result
// (the arena contract says every region is written before read, so a
// pre-write of zeros is invisible).
TEST(MemorySystem, FirstTouchPagesRecordedAndInvisible) {
  const index_t n = 160;
  Rng rng(607);
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n), c_ref(n, n);
  fill(c.view(), 0.0);
  fill(c_ref.view(), 0.0);
  core::DgefmmStats stats;
  parallel::ParallelDgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::square_simple(24);
  cfg.scheme = core::Scheme::fused;
  cfg.lanes = 4;
  cfg.threads = 4;
  cfg.stats = &stats;
  ASSERT_EQ(parallel::dgefmm_parallel(Trans::no, Trans::no, n, n, n, 1.0,
                                      a.data(), a.ld(), b.data(), b.ld(),
                                      0.0, c.data(), c.ld(), cfg),
            0);
  EXPECT_GT(stats.first_touch_pages, 0);
  blas::gemm_reference(Trans::no, Trans::no, n, n, n, 1.0, a.data(), a.ld(),
                       b.data(), b.ld(), 0.0, c_ref.data(), c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-11 * (n + 10.0));
}

// The stats report exactly what the run's arena got advised: equal to the
// arena's own accounting when the switch is on, zero when off. (Whether
// the kernel grants the advice is host-dependent; equality is the
// contract, not a particular byte count.)
TEST(MemorySystem, HugePageStatsMatchArenaAccounting) {
  const index_t n = 192;
  Rng rng(608);
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n);
  for (const bool huge : {false, true}) {
    SCOPED_TRACE(huge ? "hugepages=on" : "hugepages=off");
    ScopedHugePages hp(huge);
    fill(c.view(), 0.0);
    Arena arena;
    core::DgefmmStats stats;
    parallel::ParallelDgefmmConfig cfg;
    cfg.cutoff = core::CutoffCriterion::square_simple(24);
    cfg.lanes = 2;
    cfg.threads = 2;
    cfg.workspace = &arena;
    cfg.stats = &stats;
    ASSERT_EQ(parallel::dgefmm_parallel(Trans::no, Trans::no, n, n, n, 1.0,
                                        a.data(), a.ld(), b.data(), b.ld(),
                                        0.0, c.data(), c.ld(), cfg),
              0);
    EXPECT_EQ(stats.hugepage_bytes, arena.huge_advised_bytes());
    if (!huge) {
      EXPECT_EQ(stats.hugepage_bytes, 0u);
    }
  }
}

TEST(ParallelStrassen, DeterministicAcrossRuns) {
  Rng rng(9);
  const index_t n = 100;
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c1(n, n), c2(n, n);
  fill(c1.view(), 0.0);
  fill(c2.view(), 0.0);
  parallel::ParallelDgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::square_simple(24);
  parallel::dgefmm_parallel(Trans::no, Trans::no, n, n, n, 1.0, a.data(), n,
                            b.data(), n, 0.0, c1.data(), n, cfg);
  parallel::dgefmm_parallel(Trans::no, Trans::no, n, n, n, 1.0, a.data(), n,
                            b.data(), n, 0.0, c2.data(), n, cfg);
  // The task partition is static, so results are bit-identical run to run.
  EXPECT_EQ(max_abs_diff(c1.view(), c2.view()), 0.0);
}

}  // namespace
}  // namespace strassen
