// Tests for the parallel extension: thread pool semantics and numerical
// agreement of the parallel GEMM / parallel Strassen with the reference.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "blas/gemm.hpp"
#include "parallel/parallel_gemm.hpp"
#include "parallel/parallel_strassen.hpp"
#include "parallel/thread_pool.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"

namespace strassen {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  parallel::ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.run_batch(std::move(tasks));
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SequentialBatches) {
  parallel::ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 10; ++i) {
      tasks.push_back([&counter] { counter.fetch_add(1); });
    }
    pool.run_batch(std::move(tasks));
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPool, PropagatesTaskException) {
  parallel::ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] { throw std::runtime_error("boom"); });
  tasks.push_back([] {});
  EXPECT_THROW(pool.run_batch(std::move(tasks)), std::runtime_error);
  // The pool must remain usable after an exception.
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> more;
  more.push_back([&counter] { counter.fetch_add(1); });
  pool.run_batch(std::move(more));
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, EmptyBatchIsNoop) {
  parallel::ThreadPool pool(1);
  EXPECT_NO_THROW(pool.run_batch({}));
}

TEST(ParallelGemm, MatchesReference) {
  Rng rng(31);
  const index_t m = 90, n = 257, k = 70;
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c = random_matrix(m, n, rng);
  Matrix c_ref(m, n);
  copy(c.view(), c_ref.view());
  parallel::dgemm_parallel(Trans::no, Trans::no, m, n, k, 1.5, a.data(), m,
                           b.data(), k, 0.5, c.data(), m, 4);
  blas::gemm_reference(Trans::no, Trans::no, m, n, k, 1.5, a.data(), m,
                       b.data(), k, 0.5, c_ref.data(), m);
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-11);
}

TEST(ParallelGemm, TransposedOperands) {
  Rng rng(32);
  const index_t m = 64, n = 128, k = 80;
  Matrix a = random_matrix(k, m, rng);
  Matrix b = random_matrix(n, k, rng);
  Matrix c(m, n), c_ref(m, n);
  fill(c.view(), 0.0);
  fill(c_ref.view(), 0.0);
  parallel::dgemm_parallel(Trans::transpose, Trans::transpose, m, n, k, 1.0,
                           a.data(), k, b.data(), n, 0.0, c.data(), m, 3);
  blas::gemm_reference(Trans::transpose, Trans::transpose, m, n, k, 1.0,
                       a.data(), k, b.data(), n, 0.0, c_ref.data(), m);
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-11);
}

TEST(ParallelGemm, SmallProblemFallsBackToSerial) {
  Rng rng(33);
  const index_t m = 8, n = 8, k = 8;
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c(m, n), c_ref(m, n);
  fill(c.view(), 0.0);
  fill(c_ref.view(), 0.0);
  parallel::dgemm_parallel(Trans::no, Trans::no, m, n, k, 1.0, a.data(), m,
                           b.data(), k, 0.0, c.data(), m);
  blas::dgemm(Trans::no, Trans::no, m, n, k, 1.0, a.data(), m, b.data(), k,
              0.0, c_ref.data(), m);
  EXPECT_EQ(max_abs_diff(c.view(), c_ref.view()), 0.0);
}

class ParallelStrassenCases : public ::testing::TestWithParam<int> {};

TEST_P(ParallelStrassenCases, MatchesReference) {
  struct Case {
    index_t m, n, k;
    Trans ta, tb;
    double alpha, beta;
  };
  const std::vector<Case> cases = {
      {128, 128, 128, Trans::no, Trans::no, 1.0, 0.0},
      {129, 127, 125, Trans::no, Trans::no, 1.0, 0.0},
      {120, 140, 100, Trans::no, Trans::no, 2.0, -0.5},
      {96, 96, 96, Trans::transpose, Trans::no, 1.0, 1.0},
      {101, 99, 97, Trans::transpose, Trans::transpose, -1.0, 0.25},
      {16, 16, 16, Trans::no, Trans::no, 1.0, 0.0},  // serial fallback
  };
  const Case cs = cases[static_cast<std::size_t>(GetParam())];
  Rng rng(100 + static_cast<std::uint64_t>(GetParam()));
  const index_t a_rows = is_trans(cs.ta) ? cs.k : cs.m;
  const index_t a_cols = is_trans(cs.ta) ? cs.m : cs.k;
  const index_t b_rows = is_trans(cs.tb) ? cs.n : cs.k;
  const index_t b_cols = is_trans(cs.tb) ? cs.k : cs.n;
  Matrix a = random_matrix(a_rows, a_cols, rng);
  Matrix b = random_matrix(b_rows, b_cols, rng);
  Matrix c = random_matrix(cs.m, cs.n, rng);
  Matrix c_ref(cs.m, cs.n);
  copy(c.view(), c_ref.view());

  parallel::ParallelDgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::square_simple(24);
  ASSERT_EQ(parallel::dgefmm_parallel(cs.ta, cs.tb, cs.m, cs.n, cs.k,
                                      cs.alpha, a.data(), a.ld(), b.data(),
                                      b.ld(), cs.beta, c.data(), c.ld(), cfg),
            0);
  blas::gemm_reference(cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha, a.data(),
                       a.ld(), b.data(), b.ld(), cs.beta, c_ref.data(),
                       c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()),
            1e-11 * (static_cast<double>(cs.k) + 10.0));
}

INSTANTIATE_TEST_SUITE_P(Cases, ParallelStrassenCases, ::testing::Range(0, 6));

class ParallelFusedCases : public ::testing::TestWithParam<int> {};

TEST_P(ParallelFusedCases, FusedScheduleMatchesReference) {
  struct Case {
    index_t m, n, k;
    Trans ta, tb;
    double alpha, beta;
  };
  const std::vector<Case> cases = {
      {128, 128, 128, Trans::no, Trans::no, 1.0, 0.0},
      {129, 127, 125, Trans::no, Trans::no, 1.0, 0.0},
      {120, 140, 100, Trans::no, Trans::no, 2.0, -0.5},
      {96, 96, 96, Trans::transpose, Trans::no, 1.0, 1.0},
      {101, 99, 97, Trans::transpose, Trans::transpose, -1.0, 0.25},
      {16, 16, 16, Trans::no, Trans::no, 1.0, 0.0},  // serial fallback
  };
  const Case cs = cases[static_cast<std::size_t>(GetParam())];
  Rng rng(200 + static_cast<std::uint64_t>(GetParam()));
  const index_t a_rows = is_trans(cs.ta) ? cs.k : cs.m;
  const index_t a_cols = is_trans(cs.ta) ? cs.m : cs.k;
  const index_t b_rows = is_trans(cs.tb) ? cs.n : cs.k;
  const index_t b_cols = is_trans(cs.tb) ? cs.k : cs.n;
  Matrix a = random_matrix(a_rows, a_cols, rng);
  Matrix b = random_matrix(b_rows, b_cols, rng);
  Matrix c = random_matrix(cs.m, cs.n, rng);
  Matrix c_ref(cs.m, cs.n);
  copy(c.view(), c_ref.view());

  parallel::ParallelDgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::square_simple(24);
  cfg.scheme = core::Scheme::fused;
  ASSERT_EQ(parallel::dgefmm_parallel(cs.ta, cs.tb, cs.m, cs.n, cs.k,
                                      cs.alpha, a.data(), a.ld(), b.data(),
                                      b.ld(), cs.beta, c.data(), c.ld(), cfg),
            0);
  blas::gemm_reference(cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha, a.data(),
                       a.ld(), b.data(), b.ld(), cs.beta, c_ref.data(),
                       c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()),
            1e-11 * (static_cast<double>(cs.k) + 10.0));
}

INSTANTIATE_TEST_SUITE_P(Cases, ParallelFusedCases, ::testing::Range(0, 6));

TEST(ParallelStrassen, InvalidArgumentsReported) {
  Matrix a(8, 8), b(8, 8), c(8, 8);
  parallel::ParallelDgefmmConfig cfg;
  EXPECT_EQ(parallel::dgefmm_parallel(Trans::no, Trans::no, 8, 8, 8, 1.0,
                                      a.data(), 4, b.data(), 8, 0.0, c.data(),
                                      8, cfg),
            8);
}

TEST(ParallelStrassen, DeterministicAcrossRuns) {
  Rng rng(9);
  const index_t n = 100;
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c1(n, n), c2(n, n);
  fill(c1.view(), 0.0);
  fill(c2.view(), 0.0);
  parallel::ParallelDgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::square_simple(24);
  parallel::dgefmm_parallel(Trans::no, Trans::no, n, n, n, 1.0, a.data(), n,
                            b.data(), n, 0.0, c1.data(), n, cfg);
  parallel::dgefmm_parallel(Trans::no, Trans::no, n, n, n, 1.0, a.data(), n,
                            b.data(), n, 0.0, c2.data(), n, cfg);
  // The task partition is static, so results are bit-identical run to run.
  EXPECT_EQ(max_abs_diff(c1.view(), c2.view()), 0.0);
}

}  // namespace
}  // namespace strassen
