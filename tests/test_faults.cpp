// Failure-contract tests (DESIGN.md section 7).
//
// The fault sweeps are the heart of this file: for every shape x schedule x
// policy combination they fail the Nth resource acquisition for every N
// until a run completes without the countdown firing, asserting the
// contract each time -- strict means a clean typed error with C
// bit-identical to the pre-call snapshot, fallback means a correct product
// with the degradation recorded in the stats. The sweeps are outcome-based
// (they check whether a fault actually fired instead of assuming a fixed
// number of acquisition points), so they stay valid when the number of
// fallible steps changes, e.g. between cold and warm pack buffers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <new>
#include <vector>

#include "blas/gemm.hpp"
#include "core/cabi.hpp"
#include "core/dgefmm.hpp"
#include "parallel/parallel_strassen.hpp"
#include "support/faultinject.hpp"
#include "support/matrix.hpp"
#include "support/memadvise.hpp"
#include "support/random.hpp"

namespace strassen {
namespace {

namespace fi = faultinject;

using core::CutoffCriterion;
using core::DgefmmConfig;
using core::DgefmmStats;
using core::FailurePolicy;
using core::Scheme;

// Every test leaves the process-global injection state disarmed.
class FaultInject : public ::testing::Test {
 protected:
  void TearDown() override { fi::disarm(); }
};

TEST_F(FaultInject, CountdownFiresExactlyOnce) {
  fi::arm(3, fi::Site::arena_alloc);
  EXPECT_TRUE(fi::armed());
  EXPECT_FALSE(fi::should_fail(fi::Site::arena_alloc));
  EXPECT_FALSE(fi::should_fail(fi::Site::arena_alloc));
  const long before = fi::injected_total();
  EXPECT_TRUE(fi::should_fail(fi::Site::arena_alloc));
  EXPECT_EQ(fi::injected_total(), before + 1);
  EXPECT_FALSE(fi::armed());
  // One-shot: once fired, the harness has disarmed itself.
  EXPECT_FALSE(fi::should_fail(fi::Site::arena_alloc));
  EXPECT_EQ(fi::injected_total(), before + 1);
}

TEST_F(FaultInject, SiteFilterIgnoresOtherSites) {
  fi::arm(1, fi::Site::pool_task);
  EXPECT_FALSE(fi::should_fail(fi::Site::arena_alloc));
  EXPECT_FALSE(fi::should_fail(fi::Site::arena_reserve));
  EXPECT_FALSE(fi::should_fail(fi::Site::buffer_alloc));
  EXPECT_TRUE(fi::should_fail(fi::Site::pool_task));
}

TEST_F(FaultInject, WildcardMatchesEverySite) {
  fi::arm(2);
  EXPECT_FALSE(fi::should_fail(fi::Site::arena_reserve));
  EXPECT_TRUE(fi::should_fail(fi::Site::buffer_alloc));
}

TEST_F(FaultInject, ScopedSuspendMasksTheCallingThread) {
  fi::arm(1);
  {
    fi::ScopedSuspend guard;
    EXPECT_FALSE(fi::should_fail(fi::Site::arena_alloc));
    EXPECT_TRUE(fi::armed());  // masked checks do not consume the countdown
  }
  EXPECT_TRUE(fi::should_fail(fi::Site::arena_alloc));
}

TEST_F(FaultInject, ArmedReserveThrowsWorkspaceError) {
  Arena arena;
  fi::arm(1, fi::Site::arena_reserve);
  EXPECT_THROW(arena.reserve(64), WorkspaceError);
  // The failed reserve must not have corrupted the arena.
  EXPECT_NO_THROW(arena.reserve(64));
  double* p = arena.alloc(64);
  EXPECT_NE(p, nullptr);
}

TEST_F(FaultInject, ArmedBufferAllocThrowsBadAlloc) {
  fi::arm(1, fi::Site::buffer_alloc);
  EXPECT_THROW(
      {
        Matrix m(8, 8);
        (void)m;
      },
      std::bad_alloc);
}

TEST_F(FaultInject, SiteNamesAreDistinct) {
  EXPECT_STRNE(fi::site_name(fi::Site::arena_alloc),
               fi::site_name(fi::Site::arena_reserve));
  EXPECT_STRNE(fi::site_name(fi::Site::buffer_alloc),
               fi::site_name(fi::Site::pool_task));
}

// ---------------------------------------------------------------------------
// Arena debug guards: canary past the newest allocation, poison on release.

class ArenaGuards : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_ = fi::arena_guards();
    fi::set_arena_guards(true);
  }
  void TearDown() override {
    fi::set_arena_guards(prev_);
    fi::disarm();
  }
  bool prev_ = false;
};

TEST_F(ArenaGuards, OverrunDetectedAtNextAlloc) {
  Arena arena(64);
  double* p = arena.alloc(8);
  p[8] = 1.0;  // one past the end: lands on the canary
  (void)arena.alloc(1);
  EXPECT_TRUE(arena.corruption_detected());
}

TEST_F(ArenaGuards, OverrunDetectedAtRelease) {
  Arena arena(64);
  const std::size_t mark = arena.mark();
  double* p = arena.alloc(4);
  p[4] = 2.0;
  arena.release(mark);
  EXPECT_TRUE(arena.corruption_detected());
}

TEST_F(ArenaGuards, InBoundsUseIsClean) {
  Arena arena(64);
  const std::size_t mark = arena.mark();
  double* p = arena.alloc(8);
  for (int i = 0; i < 8; ++i) p[i] = static_cast<double>(i);
  arena.release(mark);
  double* q = arena.alloc(16);
  for (int i = 0; i < 16; ++i) q[i] = 1.0;
  arena.release(mark);
  EXPECT_FALSE(arena.corruption_detected());
}

TEST_F(ArenaGuards, ReleasedRangeIsPoisonedWithNaNs) {
  Arena arena(64);
  double* p = arena.alloc(8);
  for (int i = 0; i < 8; ++i) p[i] = 1.0;
  arena.release(0);
  // p[0] now holds the canary for the new (empty) stack top; everything
  // past it must carry the poison pattern.
  EXPECT_NE(p[0], 1.0);
  for (int i = 1; i < 8; ++i) {
    EXPECT_TRUE(std::isnan(p[i])) << "released double " << i
                                  << " not poisoned";
  }
}

TEST_F(ArenaGuards, GuardDoesNotChangeAccountingOrAddresses) {
  Arena with(64), without(64);
  double* pw = with.alloc(10);
  fi::set_arena_guards(false);
  double* po = without.alloc(10);
  fi::set_arena_guards(true);
  EXPECT_EQ(pw - with.alloc(5), po - without.alloc(5));
  EXPECT_EQ(with.peak(), without.peak());
  EXPECT_EQ(with.in_use(), without.in_use());
}

TEST_F(ArenaGuards, ExactlyFullArenaSkipsTheCanary) {
  Arena arena(8);
  double* p = arena.alloc(8);  // no room left for a guard word
  for (int i = 0; i < 8; ++i) p[i] = 1.0;
  arena.release(0);
  (void)arena.alloc(8);
  EXPECT_FALSE(arena.corruption_detected());
}

TEST_F(ArenaGuards, DisabledGuardsDetectNothing) {
  fi::set_arena_guards(false);
  Arena arena(64);
  double* p = arena.alloc(4);
  p[4] = 2.0;
  arena.release(0);
  (void)arena.alloc(1);
  EXPECT_FALSE(arena.corruption_detected());
}

// ---------------------------------------------------------------------------
// The fault sweeps.

constexpr long kSweepLimit = 64;  // far above the acquisition count per call

struct Problem {
  index_t m, n, k;
  double alpha, beta;
  Matrix a, b, c0, want;

  Problem(index_t m_, index_t n_, index_t k_, double alpha_, double beta_,
          std::uint64_t seed)
      : m(m_), n(n_), k(k_), alpha(alpha_), beta(beta_) {
    Rng rng(seed);
    a = random_matrix(m, k, rng);
    b = random_matrix(k, n, rng);
    c0 = random_matrix(m, n, rng);
    want = Matrix(m, n);
    copy(c0.view(), want.view());
    blas::gemm_reference(Trans::no, Trans::no, m, n, k, alpha, a.data(), m,
                         b.data(), k, beta, want.data(), m);
  }
};

// One armed call through `call`; checks the policy contract against the
// problem's reference result. Returns true when the fault actually fired
// (so the sweep must continue with the next countdown).
template <class Call>
bool check_armed_call(const Problem& p, FailurePolicy policy,
                      const DgefmmStats& stats, long nth, Call&& call) {
  Matrix c(p.m, p.n);
  copy(p.c0.view(), c.view());
  std::vector<double> snapshot(c.data(),
                               c.data() + static_cast<std::size_t>(p.m) * p.n);

  const long before = fi::injected_total();
  fi::arm(nth);
  bool threw = false;
  int info = -999;
  try {
    info = call(c);
  } catch (const Error&) {
    threw = true;
  } catch (const std::bad_alloc&) {
    threw = true;
  }
  fi::disarm();
  const bool fired = fi::injected_total() > before;

  if (!fired) {
    // Countdown outlived the call's acquisitions: a clean, correct run.
    EXPECT_FALSE(threw);
    EXPECT_EQ(info, 0);
    EXPECT_LT(max_abs_diff(c.view(), p.want.view()), 1e-10);
    return false;
  }
  if (policy == FailurePolicy::strict) {
    EXPECT_TRUE(threw) << "strict policy must surface the injected fault";
    EXPECT_EQ(std::memcmp(c.data(), snapshot.data(),
                          snapshot.size() * sizeof(double)),
              0)
        << "strict policy must leave C bit-identical";
  } else {
    EXPECT_FALSE(threw) << "fallback policy must absorb the injected fault";
    EXPECT_EQ(info, 0);
    EXPECT_LT(max_abs_diff(c.view(), p.want.view()), 1e-10);
    EXPECT_GE(stats.fallbacks, 1)
        << "fallback degradation must be recorded in the stats";
  }
  return true;
}

void sweep_serial(index_t m, index_t n, index_t k, Scheme scheme, double beta,
                  FailurePolicy policy, std::uint64_t seed) {
  const Problem p(m, n, k, 1.0, beta, seed);
  for (long nth = 1; nth <= kSweepLimit; ++nth) {
    SCOPED_TRACE(::testing::Message()
                 << "serial " << m << "x" << n << "x" << k << " scheme "
                 << static_cast<int>(scheme) << " beta " << beta << " nth "
                 << nth);
    DgefmmStats stats;
    DgefmmConfig cfg;
    cfg.cutoff = CutoffCriterion::square_simple(16);
    cfg.scheme = scheme;
    cfg.on_failure = policy;
    cfg.stats = &stats;
    const bool fired =
        check_armed_call(p, policy, stats, nth, [&](Matrix& c) {
          return core::dgefmm(Trans::no, Trans::no, p.m, p.n, p.k, p.alpha,
                              p.a.data(), p.m, p.b.data(), p.k, p.beta,
                              c.data(), p.m, cfg);
        });
    if (!fired) return;
    if (policy == FailurePolicy::fallback) {
      EXPECT_GT(stats.faults_injected, 0);
    }
  }
  FAIL() << "sweep did not reach a fault-free run within " << kSweepLimit
         << " acquisitions";
}

void sweep_parallel(index_t m, index_t n, index_t k, Scheme scheme,
                    double beta, FailurePolicy policy, std::uint64_t seed,
                    int par_depth = 0, int lanes = 0) {
  const Problem p(m, n, k, 1.0, beta, seed);
  for (long nth = 1; nth <= kSweepLimit; ++nth) {
    SCOPED_TRACE(::testing::Message()
                 << "parallel " << m << "x" << n << "x" << k << " scheme "
                 << static_cast<int>(scheme) << " beta " << beta
                 << " par_depth " << par_depth << " lanes " << lanes
                 << " nth " << nth);
    DgefmmStats stats;
    parallel::ParallelDgefmmConfig cfg;
    cfg.cutoff = CutoffCriterion::square_simple(16);
    cfg.scheme = scheme;
    cfg.on_failure = policy;
    cfg.stats = &stats;
    cfg.par_depth = par_depth;
    cfg.lanes = lanes;
    const bool fired =
        check_armed_call(p, policy, stats, nth, [&](Matrix& c) {
          return parallel::dgefmm_parallel(Trans::no, Trans::no, p.m, p.n,
                                           p.k, p.alpha, p.a.data(), p.m,
                                           p.b.data(), p.k, p.beta, c.data(),
                                           p.m, cfg);
        });
    if (!fired) return;
  }
  FAIL() << "sweep did not reach a fault-free run within " << kSweepLimit
         << " acquisitions";
}

TEST_F(FaultInject, SerialSweepStrassen1Strict) {
  sweep_serial(64, 64, 64, Scheme::strassen1, 0.0, FailurePolicy::strict, 11);
}

TEST_F(FaultInject, SerialSweepStrassen1Fallback) {
  sweep_serial(64, 64, 64, Scheme::strassen1, 0.0, FailurePolicy::fallback,
               11);
}

TEST_F(FaultInject, SerialSweepStrassen2Strict) {
  sweep_serial(64, 64, 64, Scheme::strassen2, 1.3, FailurePolicy::strict, 12);
}

TEST_F(FaultInject, SerialSweepStrassen2Fallback) {
  sweep_serial(64, 64, 64, Scheme::strassen2, 1.3, FailurePolicy::fallback,
               12);
}

TEST_F(FaultInject, SerialSweepFusedStrict) {
  sweep_serial(64, 64, 64, Scheme::fused, 0.7, FailurePolicy::strict, 13);
}

TEST_F(FaultInject, SerialSweepFusedFallback) {
  sweep_serial(64, 64, 64, Scheme::fused, 0.7, FailurePolicy::fallback, 13);
}

TEST_F(FaultInject, SerialSweepOddRectangularStrict) {
  sweep_serial(65, 63, 61, Scheme::automatic, 1.3, FailurePolicy::strict, 14);
  sweep_serial(96, 48, 72, Scheme::automatic, 0.0, FailurePolicy::strict, 15);
}

TEST_F(FaultInject, SerialSweepOddRectangularFallback) {
  sweep_serial(65, 63, 61, Scheme::automatic, 1.3, FailurePolicy::fallback,
               14);
  sweep_serial(96, 48, 72, Scheme::automatic, 0.0, FailurePolicy::fallback,
               15);
}

TEST_F(FaultInject, ParallelSweepClassicStrict) {
  sweep_parallel(64, 64, 64, Scheme::automatic, 1.3, FailurePolicy::strict,
                 21);
}

TEST_F(FaultInject, ParallelSweepClassicFallback) {
  sweep_parallel(64, 64, 64, Scheme::automatic, 1.3, FailurePolicy::fallback,
                 21);
}

TEST_F(FaultInject, ParallelSweepFusedStrict) {
  sweep_parallel(66, 66, 66, Scheme::fused, 0.0, FailurePolicy::strict, 22);
}

TEST_F(FaultInject, ParallelSweepFusedFallback) {
  sweep_parallel(66, 66, 66, Scheme::fused, 0.0, FailurePolicy::fallback, 22);
}

// Depth-2 DAG (49 products / 16 combines): the acquisition set grows (the
// single up-front reservation, the DAG bookkeeping, the per-lane
// sub-arenas) but the contract is unchanged -- every site fires before the
// first write to C. 72 quarters to 18, so depth 2 is feasible.
TEST_F(FaultInject, ParallelSweepDagDepth2Strict) {
  sweep_parallel(72, 72, 72, Scheme::automatic, 1.3, FailurePolicy::strict,
                 24, /*par_depth=*/2);
}

TEST_F(FaultInject, ParallelSweepDagDepth2Fallback) {
  sweep_parallel(72, 72, 72, Scheme::automatic, 1.3, FailurePolicy::fallback,
                 24, /*par_depth=*/2);
}

TEST_F(FaultInject, ParallelSweepDagDepth2FusedStrict) {
  sweep_parallel(72, 72, 72, Scheme::fused, 0.0, FailurePolicy::strict, 25,
                 /*par_depth=*/2);
}

TEST_F(FaultInject, ParallelSweepDagDepth2FusedFallback) {
  sweep_parallel(72, 72, 72, Scheme::fused, 0.0, FailurePolicy::fallback, 25,
                 /*par_depth=*/2);
}

// Multi-lane first-touch: with lanes > 1 the driver fans a first-touch
// pass over the pool workers (run_on_each_worker) before the no-fail
// region -- one more acquisition whose pool-task entry the injector can
// fail. The sweep proves it fires before the first write to C: strict
// leaves C bit-identical, fallback completes with the degradation
// recorded.
TEST_F(FaultInject, ParallelSweepMultiLaneFirstTouchStrict) {
  sweep_parallel(72, 72, 72, Scheme::fused, 0.0, FailurePolicy::strict, 26,
                 /*par_depth=*/1, /*lanes=*/4);
}

TEST_F(FaultInject, ParallelSweepMultiLaneFirstTouchFallback) {
  sweep_parallel(72, 72, 72, Scheme::fused, 0.0, FailurePolicy::fallback, 26,
                 /*par_depth=*/1, /*lanes=*/4);
}

// Huge-page advice rides on the same buffer allocations the injector
// already fails (Site::buffer_alloc); with the switch on, the acquisition
// set and the contract are unchanged.
TEST_F(FaultInject, SweepsUnchangedWithHugePagesOn) {
  ScopedHugePages hp(true);
  sweep_serial(64, 64, 64, Scheme::strassen1, 0.0, FailurePolicy::strict, 27);
  sweep_parallel(72, 72, 72, Scheme::fused, 0.0, FailurePolicy::strict, 27,
                 /*par_depth=*/1, /*lanes=*/4);
}

TEST_F(FaultInject, ParallelSweepOddStrict) {
  sweep_parallel(65, 63, 61, Scheme::automatic, 0.5, FailurePolicy::strict,
                 23);
}

TEST_F(FaultInject, ParallelSweepOddFallback) {
  sweep_parallel(65, 63, 61, Scheme::automatic, 0.5, FailurePolicy::fallback,
                 23);
}

// ---------------------------------------------------------------------------
// The C ABI under injected faults: nothing may unwind through extern "C".

TEST_F(FaultInject, CAbiSweepFallbackAlwaysSucceeds) {
  const Problem p(64, 64, 64, 1.0, 0.5, 31);
  strassen_dgefmm_set_failure_policy('F');
  for (long nth = 1; nth <= kSweepLimit; ++nth) {
    SCOPED_TRACE(::testing::Message() << "cabi fallback nth " << nth);
    Matrix c(p.m, p.n);
    copy(p.c0.view(), c.view());
    const long before = fi::injected_total();
    fi::arm(nth);
    const int info = strassen_dgefmm_tuned('N', 'N', p.m, p.n, p.k, p.alpha,
                                           p.a.data(), p.m, p.b.data(), p.k,
                                           p.beta, c.data(), p.m, 8, 8, 8, 8);
    fi::disarm();
    // Drop-in DGEMM semantics: fault or not, the call succeeds and the
    // product is right.
    EXPECT_EQ(info, 0);
    EXPECT_LT(max_abs_diff(c.view(), p.want.view()), 1e-10);
    if (fi::injected_total() == before) return;
  }
  FAIL() << "sweep did not reach a fault-free run";
}

TEST_F(FaultInject, CAbiSweepStrictReportsNegativeInfo) {
  const Problem p(64, 64, 64, 1.0, 0.5, 32);
  strassen_dgefmm_set_failure_policy('S');
  for (long nth = 1; nth <= kSweepLimit; ++nth) {
    SCOPED_TRACE(::testing::Message() << "cabi strict nth " << nth);
    Matrix c(p.m, p.n);
    copy(p.c0.view(), c.view());
    std::vector<double> snapshot(
        c.data(), c.data() + static_cast<std::size_t>(p.m) * p.n);
    const long before = fi::injected_total();
    fi::arm(nth);
    const int info = strassen_dgefmm_tuned('N', 'N', p.m, p.n, p.k, p.alpha,
                                           p.a.data(), p.m, p.b.data(), p.k,
                                           p.beta, c.data(), p.m, 8, 8, 8, 8);
    fi::disarm();
    const bool fired = fi::injected_total() > before;
    if (!fired) {
      EXPECT_EQ(info, 0);
      EXPECT_LT(max_abs_diff(c.view(), p.want.view()), 1e-10);
      strassen_dgefmm_set_failure_policy('F');
      return;
    }
    EXPECT_LT(info, 0) << "strict C ABI must report the fault as info";
    EXPECT_GE(info, STRASSEN_INFO_UNKNOWN);
    EXPECT_EQ(std::memcmp(c.data(), snapshot.data(),
                          snapshot.size() * sizeof(double)),
              0)
        << "strict C ABI must leave C bit-identical";
  }
  strassen_dgefmm_set_failure_policy('F');
  FAIL() << "sweep did not reach a fault-free run";
}

}  // namespace
}  // namespace strassen
