// Cross-module integration tests: the full pipelines a user would run.
//   * tune a criterion on the host, then multiply with it;
//   * cost-model fit -> criterion -> multiply;
//   * ISDA eigensolver solving a system built from its own output;
//   * LU-solve a system whose matrix came from DGEFMM products;
//   * parallel and serial paths on the same problem.
#include <gtest/gtest.h>

#include <cmath>

#include "blas/gemm.hpp"
#include "core/dgefmm.hpp"
#include "eigen/isda.hpp"
#include "parallel/parallel_strassen.hpp"
#include "solver/lu.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"
#include "tuning/cost_model.hpp"
#include "tuning/crossover.hpp"

namespace strassen {
namespace {

TEST(Integration, TunedCriterionDrivesCorrectMultiply) {
  // Tiny-range tuning, then a multiply under the tuned criterion.
  tuning::CrossoverOptions opts;
  opts.min_size = 16;
  opts.max_size = 48;
  opts.step = 16;
  opts.fixed_large = 64;
  opts.reps = 1;
  const core::CutoffCriterion crit = tuning::tune_hybrid_criterion(opts);

  Rng rng(1);
  const index_t n = 90;
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n), c_ref(n, n);
  fill(c.view(), 0.0);
  fill(c_ref.view(), 0.0);
  core::DgefmmConfig cfg;
  cfg.cutoff = crit;
  ASSERT_EQ(core::dgefmm(Trans::no, Trans::no, n, n, n, 1.0, a.data(), n,
                         b.data(), n, 0.0, c.data(), n, cfg),
            0);
  blas::gemm_reference(Trans::no, Trans::no, n, n, n, 1.0, a.data(), n,
                       b.data(), n, 0.0, c_ref.data(), n);
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-10);
}

TEST(Integration, CostModelCriterionDrivesCorrectMultiply) {
  const tuning::GemmCostModel gemm = tuning::measure_gemm_cost_model(64, 1);
  const tuning::AddCostModel add = tuning::measure_add_cost_model(64, 1);
  const core::CutoffCriterion crit =
      tuning::criterion_from_models(gemm, add);

  Rng rng(2);
  const index_t n = 70;
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c(n, n), c_ref(n, n);
  fill(c.view(), 0.0);
  fill(c_ref.view(), 0.0);
  core::DgefmmConfig cfg;
  cfg.cutoff = crit;
  ASSERT_EQ(core::dgefmm(Trans::no, Trans::no, n, n, n, 1.0, a.data(), n,
                         b.data(), n, 0.0, c.data(), n, cfg),
            0);
  blas::gemm_reference(Trans::no, Trans::no, n, n, n, 1.0, a.data(), n,
                       b.data(), n, 0.0, c_ref.data(), n);
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-10);
}

TEST(Integration, EigensolverReconstructsMatrix) {
  // A = V diag(w) V^T reconstructed with DGEFMM multiplies.
  Rng rng(3);
  const index_t n = 64;
  Matrix a(n, n);
  fill_random_symmetric(a.view(), rng);

  eigen::IsdaOptions opts;
  opts.base_size = 16;
  opts.gemm = eigen::gemm_backend_dgefmm();
  const eigen::IsdaResult res = eigen::isda_eigensolver(a.view(), opts);

  // VW = V * diag(w); A_rec = VW * V^T via dgefmm.
  Matrix vw(n, n);
  copy(res.eigenvectors.view(), vw.view());
  for (index_t j = 0; j < n; ++j) {
    const double w = res.eigenvalues[static_cast<std::size_t>(j)];
    for (index_t i = 0; i < n; ++i) vw(i, j) *= w;
  }
  Matrix a_rec(n, n);
  fill(a_rec.view(), 0.0);
  core::DgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::square_simple(16);
  ASSERT_EQ(core::dgefmm(Trans::no, Trans::transpose, n, n, n, 1.0, vw.data(),
                         n, res.eigenvectors.data(), n, 0.0, a_rec.data(), n,
                         cfg),
            0);
  EXPECT_LT(max_abs_diff(a.view(), a_rec.view()), 1e-7);
}

TEST(Integration, LuSolvesSystemBuiltByDgefmm) {
  // Build A = G * G^T + 4I with DGEFMM (symmetric positive definite), then
  // LU-solve with the DGEFMM backend and verify against a known solution.
  Rng rng(4);
  const index_t n = 96;
  Matrix g = random_matrix(n, n, rng);
  Matrix a(n, n);
  fill(a.view(), 0.0);
  core::DgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::square_simple(16);
  ASSERT_EQ(core::dgefmm(Trans::no, Trans::transpose, n, n, n, 1.0 / n,
                         g.data(), n, g.data(), n, 0.0, a.data(), n, cfg),
            0);
  for (index_t i = 0; i < n; ++i) a(i, i) += 4.0;

  Matrix x_true = random_matrix(n, 2, rng);
  Matrix b(n, 2);
  fill(b.view(), 0.0);
  ASSERT_EQ(core::dgefmm(Trans::no, Trans::no, n, 2, n, 1.0, a.data(), n,
                         x_true.data(), n, 0.0, b.data(), n, cfg),
            0);

  solver::LuOptions lopts;
  lopts.gemm = core::gemm_backend_dgefmm();
  const solver::LuFactors f = solver::lu_factor(a.view(), lopts);
  ASSERT_EQ(f.info, 0);
  Matrix x = solver::lu_solve(f, b.view());
  solver::lu_refine(f, a.view(), b.view(), x.view(), 1);
  EXPECT_LT(max_abs_diff(x.view(), x_true.view()), 1e-9);
}

TEST(Integration, ParallelAndSerialAgree) {
  Rng rng(5);
  const index_t n = 120;
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c1(n, n), c2(n, n);
  fill(c1.view(), 0.0);
  fill(c2.view(), 0.0);

  core::DgefmmConfig serial;
  serial.cutoff = core::CutoffCriterion::square_simple(24);
  ASSERT_EQ(core::dgefmm(Trans::no, Trans::no, n, n, n, 1.0, a.data(), n,
                         b.data(), n, 0.0, c1.data(), n, serial),
            0);
  parallel::ParallelDgefmmConfig par;
  par.cutoff = core::CutoffCriterion::square_simple(24);
  ASSERT_EQ(parallel::dgefmm_parallel(Trans::no, Trans::no, n, n, n, 1.0,
                                      a.data(), n, b.data(), n, 0.0,
                                      c2.data(), n, par),
            0);
  EXPECT_LT(max_abs_diff(c1.view(), c2.view()), 1e-11);
}

}  // namespace
}  // namespace strassen
