// Tests for the runtime cutoff criteria (eqs. 7, 10-15).
#include <gtest/gtest.h>

#include "core/cutoff.hpp"
#include "model/cutoff_theory.hpp"

namespace strassen {
namespace {

using core::CutoffCriterion;
using core::CutoffKind;

TEST(Cutoff, OpCountAgreesWithModel) {
  const CutoffCriterion c = CutoffCriterion::op_count();
  for (index_t m : {2, 6, 12, 13, 40}) {
    for (index_t k : {2, 14, 40}) {
      for (index_t n : {2, 84, 86, 400}) {
        EXPECT_EQ(c.stop(m, k, n, 0), model::standard_preferred(m, k, n))
            << m << " " << k << " " << n;
      }
    }
  }
}

TEST(Cutoff, SquareSimpleStopsWhenAnyDimensionSmall) {
  const CutoffCriterion c = CutoffCriterion::square_simple(199);
  EXPECT_TRUE(c.stop(199, 1000, 1000, 0));
  EXPECT_TRUE(c.stop(1000, 199, 1000, 0));
  EXPECT_TRUE(c.stop(1000, 1000, 199, 0));
  EXPECT_FALSE(c.stop(200, 200, 200, 0));
  EXPECT_TRUE(c.stop(199, 199, 199, 0));
}

TEST(Cutoff, SquareSimpleBlocksTheBeneficialRectangularCase) {
  // The paper's motivating case: (11) with tau=199 prevents recursion on
  // m=160, n=957, k=1957 although it is beneficial.
  const CutoffCriterion simple = CutoffCriterion::square_simple(199);
  EXPECT_TRUE(simple.stop(160, 1957, 957, 0));
  const CutoffCriterion hybrid =
      CutoffCriterion::paper_default(blas::Machine::rs6000);
  EXPECT_FALSE(hybrid.stop(160, 1957, 957, 0));
}

TEST(Cutoff, HighamScaledReducesToSquareCutoff) {
  // (12) reduces to m <= tau on square inputs.
  const CutoffCriterion c = CutoffCriterion::higham_scaled(129);
  EXPECT_TRUE(c.stop(129, 129, 129, 0));
  EXPECT_FALSE(c.stop(130, 130, 130, 0));
}

TEST(Cutoff, ParameterizedMatchesEq14) {
  // (14): stop iff 1 < tau_m/m + tau_k/k + tau_n/n.
  const CutoffCriterion c = CutoffCriterion::parameterized(75, 125, 95);
  auto rhs = [&](double m, double k, double n) {
    return 75.0 / m + 125.0 / k + 95.0 / n;
  };
  struct Case {
    index_t m, k, n;
  };
  for (const Case cs : {Case{100, 200, 150}, Case{300, 300, 300},
                        Case{80, 2000, 2000}, Case{70, 2000, 2000},
                        Case{500, 126, 96}}) {
    const bool stop_expected =
        rhs(static_cast<double>(cs.m), static_cast<double>(cs.k),
            static_cast<double>(cs.n)) >= 1.0;
    EXPECT_EQ(c.stop(cs.m, cs.k, cs.n, 0), stop_expected)
        << cs.m << " " << cs.k << " " << cs.n;
  }
}

TEST(Cutoff, HybridAlwaysRecursesWhenAllLarge) {
  const CutoffCriterion c = CutoffCriterion::hybrid(199, 75, 125, 95);
  EXPECT_FALSE(c.stop(200, 200, 200, 0));
  EXPECT_FALSE(c.stop(5000, 5000, 5000, 0));
}

TEST(Cutoff, HybridAlwaysStopsWhenAllSmall) {
  const CutoffCriterion c = CutoffCriterion::hybrid(199, 75, 125, 95);
  EXPECT_TRUE(c.stop(199, 199, 199, 0));
  EXPECT_TRUE(c.stop(12, 12, 12, 0));
}

TEST(Cutoff, HybridDelegatesToParameterizedInMixedRegion) {
  const CutoffCriterion hybrid = CutoffCriterion::hybrid(199, 75, 125, 95);
  const CutoffCriterion param = CutoffCriterion::parameterized(75, 125, 95);
  // Mixed region: some dimensions <= tau, some > tau.
  struct Case {
    index_t m, k, n;
  };
  for (const Case cs :
       {Case{100, 2000, 2000}, Case{80, 1500, 900}, Case{76, 2000, 96},
        Case{150, 150, 2000}, Case{199, 200, 200}}) {
    const bool any_small = cs.m <= 199 || cs.k <= 199 || cs.n <= 199;
    const bool all_small = cs.m <= 199 && cs.k <= 199 && cs.n <= 199;
    ASSERT_TRUE(any_small && !all_small);
    EXPECT_EQ(hybrid.stop(cs.m, cs.k, cs.n, 0),
              param.stop(cs.m, cs.k, cs.n, 0))
        << cs.m << " " << cs.k << " " << cs.n;
  }
}

TEST(Cutoff, FixedDepth) {
  const CutoffCriterion c = CutoffCriterion::fixed_depth(3);
  EXPECT_FALSE(c.stop(1000, 1000, 1000, 0));
  EXPECT_FALSE(c.stop(1000, 1000, 1000, 2));
  EXPECT_TRUE(c.stop(1000, 1000, 1000, 3));
  EXPECT_TRUE(c.stop(1000, 1000, 1000, 7));
}

TEST(Cutoff, NeverRecurse) {
  const CutoffCriterion c = CutoffCriterion::never_recurse();
  EXPECT_TRUE(c.stop(100000, 100000, 100000, 0));
}

TEST(Cutoff, PaperDefaultsMatchTables2And3) {
  const CutoffCriterion rs = CutoffCriterion::paper_default(blas::Machine::rs6000);
  EXPECT_DOUBLE_EQ(rs.tau, 199.0);
  EXPECT_DOUBLE_EQ(rs.tau_m, 75.0);
  EXPECT_DOUBLE_EQ(rs.tau_k, 125.0);
  EXPECT_DOUBLE_EQ(rs.tau_n, 95.0);
  const CutoffCriterion c90 = CutoffCriterion::paper_default(blas::Machine::c90);
  EXPECT_DOUBLE_EQ(c90.tau, 129.0);
  const CutoffCriterion t3d = CutoffCriterion::paper_default(blas::Machine::t3d);
  EXPECT_DOUBLE_EQ(t3d.tau, 325.0);
}

TEST(Cutoff, DescribeMentionsKind) {
  EXPECT_NE(CutoffCriterion::hybrid(199, 75, 125, 95).describe().find("hybrid"),
            std::string::npos);
  EXPECT_NE(CutoffCriterion::op_count().describe().find("op-count"),
            std::string::npos);
}

}  // namespace
}  // namespace strassen
