// Tests for the empirical cutoff tuner. The search logic is driven by
// synthetic cost models (so the tests are deterministic); one smoke test
// exercises the real timing path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/kernels.hpp"
#include "core/dgefmm.hpp"
#include "core/tuned_policy.hpp"
#include "core/workspace.hpp"
#include "model/opmodel.hpp"
#include "parallel/parallel_strassen.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"
#include "tuning/autotune.hpp"
#include "tuning/crossover.hpp"

namespace strassen {
namespace {

using model::Variant;
using tuning::CrossoverOptions;
using tuning::RatioFn;
using tuning::SweepPoint;

// Ratio function induced by the operation-count model: time proportional to
// operation count. Under this model the tuner must rediscover the
// theoretical cutoff of 12 (Section 2).
RatioFn opcount_ratio() {
  return [](index_t m, index_t k, index_t n) {
    const double standard =
        static_cast<double>(model::standard_cost(m, k, n));
    const index_t m2 = m / 2, k2 = k / 2, n2 = n / 2;
    const double one_level =
        7.0 * static_cast<double>(model::standard_cost(m2, k2, n2)) +
        static_cast<double>(
            model::level_add_cost(Variant::winograd, m2, k2, n2));
    return standard / one_level;
  };
}

TEST(CrossoverSearch, CleanMonotoneSweepPicksLastDgemmWin) {
  std::vector<SweepPoint> sweep{{100, 0.9}, {110, 0.95}, {120, 0.99},
                                {130, 1.02}, {140, 1.05}, {150, 1.1}};
  EXPECT_EQ(tuning::crossover_from_sweep(sweep), 120);
}

TEST(CrossoverSearch, InterleavedSweepSplitsTheDifference) {
  // First Strassen win at 120, last DGEMM win at 130: the paper's rule
  // (tau = 199 between 176 and 214) picks the midpoint.
  std::vector<SweepPoint> sweep{{100, 0.9}, {110, 0.95}, {120, 1.02},
                                {130, 0.99}, {140, 1.05}, {150, 1.1}};
  EXPECT_EQ(tuning::crossover_from_sweep(sweep), 125);
}

TEST(CrossoverSearch, TieCountsAsDgemmWin) {
  std::vector<SweepPoint> sweep{{10, 0.9}, {12, 1.0}, {14, 1.1}};
  EXPECT_EQ(tuning::crossover_from_sweep(sweep), 12);
}

TEST(CrossoverSearch, AllStrassenWins) {
  std::vector<SweepPoint> sweep{{64, 1.2}, {72, 1.3}};
  EXPECT_EQ(tuning::crossover_from_sweep(sweep), 63);
}

TEST(CrossoverSearch, AllDgemmWins) {
  std::vector<SweepPoint> sweep{{64, 0.8}, {72, 0.9}};
  EXPECT_EQ(tuning::crossover_from_sweep(sweep), 72);
}

TEST(CrossoverSearch, EmptySweep) {
  EXPECT_EQ(tuning::crossover_from_sweep({}), 0);
}

TEST(CrossoverSearch, OpCountModelGivesTheoreticalSquareCutoff) {
  CrossoverOptions opts;
  opts.min_size = 2;
  opts.max_size = 40;
  opts.step = 2;
  const auto result = tuning::find_square_crossover(opts, opcount_ratio());
  EXPECT_EQ(result.tau, 12);
  EXPECT_EQ(result.sweep.size(), 20u);
}

TEST(CrossoverSearch, OpCountModelRectangularParams) {
  // With two dimensions huge, eq. (8) reduces to 1 >= 4/s + O(1/big), so
  // every parameter comes out at (just above) 4.
  CrossoverOptions opts;
  opts.min_size = 2;
  opts.max_size = 40;
  opts.step = 2;
  opts.fixed_large = 4096;
  const auto rect = tuning::find_rectangular_params(opts, opcount_ratio());
  EXPECT_EQ(rect.tau_m, 4);
  EXPECT_EQ(rect.tau_k, 4);
  EXPECT_EQ(rect.tau_n, 4);
}

TEST(CrossoverSearch, AsymmetricSyntheticModel) {
  // A model where the m-dimension is twice as "expensive" to recurse over:
  // the tuner must report an asymmetric parameter set (tau_m > tau_k),
  // the phenomenon Table 3 documents on real machines.
  RatioFn asym = [](index_t m, index_t k, index_t n) {
    const double penalty = 40.0 / static_cast<double>(m) +
                           20.0 / static_cast<double>(k) +
                           20.0 / static_cast<double>(n);
    return penalty < 1.0 ? 1.2 : 0.8;  // Strassen wins iff penalty < 1
  };
  CrossoverOptions opts;
  opts.min_size = 2;
  opts.max_size = 100;
  opts.step = 2;
  opts.fixed_large = 100000;
  const auto rect = tuning::find_rectangular_params(opts, asym);
  EXPECT_GT(rect.tau_m, rect.tau_k);
  EXPECT_EQ(rect.tau_k, rect.tau_n);
}

TEST(CrossoverSearch, MeasuredRatioSmokeTest) {
  // Real timing on tiny sizes: just verify the plumbing produces positive
  // finite ratios and a sweep of the right length.
  CrossoverOptions opts;
  opts.min_size = 24;
  opts.max_size = 48;
  opts.step = 24;
  opts.reps = 1;
  const auto result = tuning::find_square_crossover(opts);
  ASSERT_EQ(result.sweep.size(), 2u);
  for (const SweepPoint& p : result.sweep) {
    // Structural checks only: on a loaded CI host the magnitude can swing
    // wildly, but the ratio must always be a positive finite number.
    EXPECT_GT(p.ratio, 0.0);
    EXPECT_TRUE(std::isfinite(p.ratio));
  }
}

TEST(CrossoverSearch, TuneHybridProducesValidCriterion) {
  // Synthetic end-to-end via the measured path on small sizes; we only
  // check the criterion is structurally sound (positive parameters).
  CrossoverOptions opts;
  opts.min_size = 16;
  opts.max_size = 32;
  opts.step = 16;
  opts.fixed_large = 64;
  opts.reps = 1;
  const core::CutoffCriterion crit = tuning::tune_hybrid_criterion(opts);
  EXPECT_EQ(crit.kind, core::CutoffKind::hybrid);
  EXPECT_GE(crit.tau, 2.0);
  EXPECT_GE(crit.tau_m, 2.0);
  EXPECT_GE(crit.tau_k, 2.0);
  EXPECT_GE(crit.tau_n, 2.0);
}

// --- scheme auto-tuning: policy routing, install gate, consult proof -------

// tuned_path_for is the single routing function both the drivers and the
// workspace predictors share; its thresholds are pure logic, tested
// exhaustively here so the timing-dependent pieces can stay smoke tests.
TEST(TunedPolicy, PathRoutingThresholds) {
  core::TunedPolicy p;
  p.tau_fused = 100;
  p.tau_fused2 = 300;
  p.tau_dag = 500;

  using core::TunedPath;
  // At or below tau_fused: plain GEMM, regardless of workers.
  EXPECT_EQ(core::tuned_path_for(p, 100, 100, 100, 1), TunedPath::gemm);
  EXPECT_EQ(core::tuned_path_for(p, 100, 100, 100, 8), TunedPath::gemm);
  // Between tau_fused and tau_fused2: one fused level.
  EXPECT_EQ(core::tuned_path_for(p, 200, 200, 200, 1), TunedPath::fused_l1);
  // Above tau_fused2: two fused levels.
  EXPECT_EQ(core::tuned_path_for(p, 400, 400, 400, 1), TunedPath::fused_l2);
  // Above tau_dag: the DAG, but only when there are workers to use it.
  EXPECT_EQ(core::tuned_path_for(p, 600, 600, 600, 1), TunedPath::fused_l2);
  EXPECT_EQ(core::tuned_path_for(p, 600, 600, 600, 4), TunedPath::dag);
  // Equivalent order: a rectangular shape routes by cbrt(m*k*n).
  EXPECT_EQ(core::tuned_path_for(p, 1000, 10, 10, 1), TunedPath::gemm);

  // Above tau_hybrid the classic recursion outranks the fused levels (but
  // not the DAG); tau_hybrid == 0 means "hybrid never won".
  p.tau_hybrid = 400;
  EXPECT_EQ(core::tuned_path_for(p, 350, 350, 350, 1), TunedPath::fused_l2);
  EXPECT_EQ(core::tuned_path_for(p, 450, 450, 450, 1), TunedPath::hybrid);
  EXPECT_EQ(core::tuned_path_for(p, 600, 600, 600, 1), TunedPath::hybrid);
  EXPECT_EQ(core::tuned_path_for(p, 600, 600, 600, 4), TunedPath::dag);
  p.tau_hybrid = 0;
  EXPECT_EQ(core::tuned_path_for(p, 450, 450, 450, 1), TunedPath::fused_l2);

  // tau_fused2 == 0 means "two levels never won": stay at one level.
  p.tau_fused2 = 0;
  p.tau_dag = 0;
  EXPECT_EQ(core::tuned_path_for(p, 400, 400, 400, 8), TunedPath::fused_l1);

  // tau_fused == 0 means "fused from the first size": no GEMM regime.
  p.tau_fused = 0;
  EXPECT_EQ(core::tuned_path_for(p, 8, 8, 8, 1), TunedPath::fused_l1);
  EXPECT_EQ(core::tuned_path_for(p, 16, 16, 16, 1), TunedPath::fused_l1);
}

TEST(TunedPolicy, Strassen2OutranksHybridPastTauS2) {
  // tau_s2 partitions the classic regime: automatic hybrid up to tau_s2,
  // forced STRASSEN2 beyond. It is consulted only after the tau_hybrid
  // gate, so it can never route strassen2 while fused still wins.
  core::TunedPolicy p;
  p.tau_fused = 100;
  p.tau_fused2 = 300;
  p.tau_hybrid = 400;
  p.tau_s2 = 800;

  using core::TunedPath;
  EXPECT_EQ(core::tuned_path_for(p, 500, 500, 500, 1), TunedPath::hybrid);
  EXPECT_EQ(core::tuned_path_for(p, 800, 800, 800, 1), TunedPath::hybrid);
  EXPECT_EQ(core::tuned_path_for(p, 900, 900, 900, 1), TunedPath::strassen2);
  // The DAG still outranks both recursion variants when workers exist.
  p.tau_dag = 600;
  EXPECT_EQ(core::tuned_path_for(p, 900, 900, 900, 4), TunedPath::dag);
  EXPECT_EQ(core::tuned_path_for(p, 900, 900, 900, 1), TunedPath::strassen2);
  // tau_s2 == 0: old criteria files without the key keep their routing.
  p.tau_s2 = 0;
  EXPECT_EQ(core::tuned_path_for(p, 900, 900, 900, 1), TunedPath::hybrid);
  // tau_s2 at the regime boundary: strassen2 from the first classic size.
  p.tau_s2 = p.tau_hybrid;
  EXPECT_EQ(core::tuned_path_for(p, 450, 450, 450, 1), TunedPath::strassen2);
}

// --- sweep reduction: the tuned path must never be the measured worst ------

// The measured time the policy's chosen path would run at one swept point.
double time_of_path(core::TunedPath path, const tuning::SchemePoint& t) {
  switch (path) {
    case core::TunedPath::classic:  // untuned default: the automatic hybrid
      return t.hybrid;
    case core::TunedPath::gemm:
      return t.gemm;
    case core::TunedPath::fused_l1:
      return t.fused1;
    case core::TunedPath::fused_l2:
      return t.fused2;
    case core::TunedPath::hybrid:
      return t.hybrid;
    case core::TunedPath::strassen2:
      return t.s2;
    case core::TunedPath::dag:
      return t.dag;
  }
  return 0;
}

core::TunedPolicy policy_from_crossovers(const tuning::SchemeCrossovers& x) {
  tuning::TunedCriteria criteria;
  criteria.kernel = blas::active_kernel().name;
  criteria.tau_fused = x.tau_fused;
  criteria.tau_fused2 = x.tau_fused2;
  criteria.tau_hybrid = x.tau_hybrid;
  criteria.tau_s2 = x.tau_s2;
  criteria.tau_dag = x.tau_dag;
  return tuning::policy_from_criteria(criteria);
}

// Regression for the m = 4096 mis-route: the committed crossover bench
// measured the tuned path ("hybrid", 0.888x vs DGEMM) as slower than the
// schedule the sweep itself had timed winning (strassen2, 0.952x) -- the
// automatic hybrid was the measured-WORST serial schedule at that shape,
// yet the reduction dated the classic-regime flip by it and the router had
// no way to pick the variant that actually won. This sweep reproduces that
// shape class synthetically (times in arbitrary units, lower = better,
// hybrid worst at every large size while forced STRASSEN2 wins) and
// asserts the property that was violated: at every swept size, the path
// the reduced policy routes to is never the worst-measured schedule there.
TEST(SchemeSweep, TunedPathIsNeverTheMeasuredWorstSchedule) {
  using tuning::SchemePoint;
  const std::vector<SchemePoint> sweep{
      //   s   gemm fused1 fused2 hybrid   s2   dag
      {128, 1.00, 1.10, 1.20, 1.40, 1.45, 1.50},
      {256, 1.00, 0.95, 1.00, 1.25, 1.30, 1.20},
      {512, 1.00, 0.92, 0.90, 1.10, 1.12, 1.00},
      {1024, 1.00, 0.93, 0.91, 1.05, 0.96, 0.95},
      {2048, 1.00, 0.95, 0.94, 1.08, 0.88, 0.90},
      {4096, 1.00, 0.99, 0.98, 1.13, 0.85, 0.87},
  };
  const tuning::SchemeCrossovers x = tuning::reduce_scheme_sweep(sweep);
  // Structural expectations for this sweep: fused wins early, the classic
  // regime opens between 1024 and 2048, and within it STRASSEN2 (not the
  // automatic hybrid, which never beats best-fused here) is the variant.
  EXPECT_GE(x.tau_fused, 128);  // clean flip dates at the last gemm win
  EXPECT_LT(x.tau_fused, 256);
  EXPECT_GE(x.tau_hybrid, 1024);
  EXPECT_LT(x.tau_hybrid, 2048);
  EXPECT_DOUBLE_EQ(x.tau_s2, x.tau_hybrid);  // s2 wins the whole regime
  EXPECT_DOUBLE_EQ(x.tau_dag, 0);            // DAG never won (1-core host)

  const core::TunedPolicy p = policy_from_crossovers(x);
  for (const SchemePoint& t : sweep) {
    // Serial routing (workers == 1): the DAG is not a candidate.
    const core::TunedPath path =
        core::tuned_path_for(p, t.s, t.s, t.s, 1);
    const double worst =
        std::max({t.gemm, t.fused1, t.fused2, t.hybrid, t.s2});
    EXPECT_LT(time_of_path(path, t), worst)
        << "tuned path '" << core::tuned_path_name(path)
        << "' is the measured-worst schedule at s = " << t.s;
  }
  // The specific 4096-class shapes must route to the forced-STRASSEN2
  // recursion, not the automatic hybrid the old reduction picked.
  EXPECT_EQ(core::tuned_path_for(p, 2048, 2048, 2048, 1),
            core::TunedPath::strassen2);
  EXPECT_EQ(core::tuned_path_for(p, 4096, 4096, 4096, 1),
            core::TunedPath::strassen2);
}

TEST(SchemeSweep, HybridNeverWinningDropsTauS2) {
  using tuning::SchemePoint;
  // Fused wins everywhere in range: no classic regime, so tau_s2 must be
  // dropped even though s2 beats the (also-losing) hybrid pointwise.
  const std::vector<SchemePoint> sweep{
      {256, 1.00, 0.95, 0.97, 1.20, 1.10, 1.30},
      {512, 1.00, 0.90, 0.88, 1.15, 1.05, 1.20},
  };
  const tuning::SchemeCrossovers x = tuning::reduce_scheme_sweep(sweep);
  EXPECT_DOUBLE_EQ(x.tau_hybrid, 0);
  EXPECT_DOUBLE_EQ(x.tau_s2, 0);
}

TEST(SchemeSweep, EmptySweepIsAllNever) {
  const tuning::SchemeCrossovers x = tuning::reduce_scheme_sweep({});
  EXPECT_DOUBLE_EQ(x.tau_fused, 0);
  EXPECT_DOUBLE_EQ(x.tau_fused2, 0);
  EXPECT_DOUBLE_EQ(x.tau_hybrid, 0);
  EXPECT_DOUBLE_EQ(x.tau_s2, 0);
  EXPECT_DOUBLE_EQ(x.tau_dag, 0);
}

TEST(TunedPolicy, InstallRejectsStaleKernelStamp) {
  tuning::TunedCriteria criteria;
  criteria.kernel = "some-retired-kernel";
  criteria.tau_fused = 100;
  EXPECT_FALSE(tuning::install_criteria(criteria));

  criteria.kernel.clear();  // pre-dispatch legacy file: hard miss too
  EXPECT_FALSE(tuning::install_criteria(criteria));
}

TEST(TunedPolicy, InstallThenConsultRoutesByThresholds) {
  core::clear_tuned_policy<double>();
  tuning::TunedCriteria criteria;
  criteria.kernel = blas::active_kernel().name;
  criteria.tau_fused = 100;  // order 64 probe lands in the GEMM regime
  ASSERT_TRUE(tuning::install_criteria(criteria));
  ASSERT_NE(core::tuned_policy<double>(), nullptr);

  const index_t s = 64;
  Rng rng(99);
  Matrix a = random_matrix(s, s, rng);
  Matrix b = random_matrix(s, s, rng);
  Matrix c(s, s), c_ref(s, s);
  fill(c.view(), 0.0);
  fill(c_ref.view(), 0.0);
  core::DgefmmStats stats;
  core::DgefmmConfig cfg;
  cfg.use_tuned = true;
  cfg.stats = &stats;
  ASSERT_EQ(core::dgefmm(Trans::no, Trans::no, s, s, s, 1.0, a.data(),
                         a.ld(), b.data(), b.ld(), 0.0, c.data(), c.ld(),
                         cfg),
            0);
  EXPECT_STREQ(stats.tuned_path, "gemm");
  EXPECT_EQ(stats.base_gemms, 1);  // one flat GEMM, no recursion
  blas::gemm_reference(Trans::no, Trans::no, s, s, s, 1.0, a.data(), a.ld(),
                       b.data(), b.ld(), 0.0, c_ref.data(), c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()),
            1e-12 * (static_cast<double>(s) + 1.0));
  core::clear_tuned_policy<double>();
}

TEST(TunedPolicy, HybridPathRunsClassicRecursionAndMatchesReference) {
  // Above tau_hybrid the tuned route switches to the classic eq.-15
  // schedule (Scheme::automatic): the driver must recurse (not flat-GEMM)
  // and still match the reference product bit-for-bit in routing terms.
  core::clear_tuned_policy<double>();
  tuning::TunedCriteria criteria;
  criteria.kernel = blas::active_kernel().name;
  criteria.tau_fused = 32;
  criteria.tau_hybrid = 48;  // order 96 probe routes to the hybrid path
  // Tuned eq.-15 cutoff small enough that the 96-probe actually splits
  // (the paper default of tau = 199 would stop the recursion immediately).
  criteria.beta_zero = core::CutoffCriterion::hybrid(48, 24, 24, 24);
  criteria.general = criteria.beta_zero;
  ASSERT_TRUE(tuning::install_criteria(criteria));

  const index_t s = 96;
  core::DgefmmConfig cfg;
  cfg.use_tuned = true;
  const count_t predicted = core::workspace_doubles(s, s, s, 0.0, cfg);
  EXPECT_GT(predicted, 0);  // classic recursion draws arena workspace
  Rng rng(103);
  Matrix a = random_matrix(s, s, rng);
  Matrix b = random_matrix(s, s, rng);
  Matrix c(s, s), c_ref(s, s);
  fill(c.view(), 0.0);
  fill(c_ref.view(), 0.0);
  Arena arena(static_cast<std::size_t>(predicted));
  core::DgefmmStats stats;
  cfg.workspace = &arena;
  cfg.stats = &stats;
  ASSERT_EQ(core::dgefmm(Trans::no, Trans::no, s, s, s, 1.0, a.data(),
                         a.ld(), b.data(), b.ld(), 0.0, c.data(), c.ld(),
                         cfg),
            0);
  EXPECT_STREQ(stats.tuned_path, "hybrid");
  EXPECT_GT(stats.strassen_levels, 0);  // it recursed
  EXPECT_LE(stats.peak_workspace, static_cast<std::size_t>(predicted));
  blas::gemm_reference(Trans::no, Trans::no, s, s, s, 1.0, a.data(), a.ld(),
                       b.data(), b.ld(), 0.0, c_ref.data(), c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()),
            1e-12 * (static_cast<double>(s) + 1.0));
  core::clear_tuned_policy<double>();
}

TEST(TunedPolicy, ParallelEntryForwardsCallerArenaToSerialDelegation) {
  // The parallel driver owns only the DAG branch of a use_tuned call;
  // every other path delegates to the serial driver. The delegation must
  // forward the caller's arena -- dropping it silently re-allocates the
  // whole recursion workspace on every call (the bug this test pins).
  core::clear_tuned_policy<double>();
  tuning::TunedCriteria criteria;
  criteria.kernel = blas::active_kernel().name;
  criteria.tau_fused = 32;
  criteria.tau_hybrid = 48;
  criteria.beta_zero = core::CutoffCriterion::hybrid(48, 24, 24, 24);
  criteria.general = criteria.beta_zero;
  ASSERT_TRUE(tuning::install_criteria(criteria));

  const index_t s = 96;
  Rng rng(107);
  Matrix a = random_matrix(s, s, rng);
  Matrix b = random_matrix(s, s, rng);
  Matrix c(s, s), c_ref(s, s);
  fill(c.view(), 0.0);
  fill(c_ref.view(), 0.0);
  Arena arena;
  core::DgefmmStats stats;
  parallel::ParallelDgefmmConfig cfg;
  cfg.use_tuned = true;
  cfg.workspace = &arena;
  cfg.stats = &stats;
  ASSERT_EQ(parallel::dgefmm_parallel(Trans::no, Trans::no, s, s, s, 1.0,
                                      a.data(), a.ld(), b.data(), b.ld(),
                                      0.0, c.data(), c.ld(), cfg),
            0);
  EXPECT_STREQ(stats.tuned_path, "hybrid");
  // The serial recursion drew its workspace from the arena we passed.
  EXPECT_GT(arena.capacity(), 0u);
  EXPECT_EQ(stats.peak_workspace, arena.peak());
  blas::gemm_reference(Trans::no, Trans::no, s, s, s, 1.0, a.data(), a.ld(),
                       b.data(), b.ld(), 0.0, c_ref.data(), c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()),
            1e-12 * (static_cast<double>(s) + 1.0));
  core::clear_tuned_policy<double>();
}

TEST(TunedPolicy, ConsultIsHardMissAfterKernelSwitch) {
  // A policy installed under one kernel must stop being consulted the
  // moment dispatch switches to another: the consult-time stamp check is
  // the second line of defense behind matches_active_kernel().
  core::clear_tuned_policy<double>();
  tuning::TunedCriteria criteria;
  criteria.kernel = blas::active_kernel().name;
  criteria.tau_fused = 100;
  ASSERT_TRUE(tuning::install_criteria(criteria));
  ASSERT_NE(core::tuned_policy<double>(), nullptr);

  const blas::KernelArch active = blas::active_kernel().arch;
  for (const blas::KernelArch arch : blas::kAllKernelArches) {
    if (arch == active || !blas::kernel_supported(arch)) continue;
    blas::ScopedKernel pin(arch);
    EXPECT_EQ(core::tuned_policy<double>(), nullptr)
        << "policy stamped " << criteria.kernel << " consulted under "
        << blas::active_kernel().name;
  }
  core::clear_tuned_policy<double>();
}

TEST(TunedPolicy, WorkspacePredictionMatchesTunedDispatch) {
  // The predictor resolves the same policy as the driver, so a use_tuned
  // call against an exactly pre-reserved arena must not grow it.
  core::clear_tuned_policy<double>();
  tuning::TunedCriteria criteria;
  criteria.kernel = blas::active_kernel().name;
  criteria.tau_fused = 48;  // order 96 probe routes to fused-L1
  ASSERT_TRUE(tuning::install_criteria(criteria));

  const index_t s = 96;
  core::DgefmmConfig cfg;
  cfg.use_tuned = true;
  const count_t predicted = core::workspace_doubles(s, s, s, 0.0, cfg);
  Rng rng(101);
  Matrix a = random_matrix(s, s, rng);
  Matrix b = random_matrix(s, s, rng);
  Matrix c(s, s);
  fill(c.view(), 0.0);
  Arena arena(static_cast<std::size_t>(predicted));
  core::DgefmmStats stats;
  cfg.workspace = &arena;
  cfg.stats = &stats;
  ASSERT_EQ(core::dgefmm(Trans::no, Trans::no, s, s, s, 1.0, a.data(),
                         a.ld(), b.data(), b.ld(), 0.0, c.data(), c.ld(),
                         cfg),
            0);
  EXPECT_STREQ(stats.tuned_path, "fused-l1");
  EXPECT_LE(stats.peak_workspace, static_cast<std::size_t>(predicted));
  core::clear_tuned_policy<double>();
}

// The quick end-to-end (measure -> persist -> reload -> install ->
// consult) is covered by examples/autotune_cli --quick in
// scripts/check.sh; here a minimal-budget autotune just proves the
// measurement layer produces a structurally sound, installable result.
TEST(Autotune, TinyBudgetProducesInstallableCriteria) {
  tuning::AutotuneOptions opts;
  opts.min_size = 32;
  opts.max_size = 64;
  opts.reps = 1;
  const tuning::TunedCriteria criteria = tuning::autotune_double(opts);
  EXPECT_EQ(criteria.elem, "f64");
  EXPECT_EQ(criteria.kernel, blas::active_kernel().name);
  EXPECT_GE(criteria.tau_fused, 1.0);  // never 0: gemm always wins somewhere
  EXPECT_GE(criteria.tau_fused2, 0.0);
  EXPECT_GE(criteria.tau_dag, 0.0);
  EXPECT_GT(criteria.threads, 0);
  EXPECT_TRUE(criteria.matches_active_kernel());
  ASSERT_TRUE(tuning::install_criteria(criteria));
  core::clear_tuned_policy<double>();
}

}  // namespace
}  // namespace strassen
