// Tests for the empirical cutoff tuner. The search logic is driven by
// synthetic cost models (so the tests are deterministic); one smoke test
// exercises the real timing path.
#include <gtest/gtest.h>

#include <cmath>

#include "model/opmodel.hpp"
#include "tuning/crossover.hpp"

namespace strassen {
namespace {

using model::Variant;
using tuning::CrossoverOptions;
using tuning::RatioFn;
using tuning::SweepPoint;

// Ratio function induced by the operation-count model: time proportional to
// operation count. Under this model the tuner must rediscover the
// theoretical cutoff of 12 (Section 2).
RatioFn opcount_ratio() {
  return [](index_t m, index_t k, index_t n) {
    const double standard =
        static_cast<double>(model::standard_cost(m, k, n));
    const index_t m2 = m / 2, k2 = k / 2, n2 = n / 2;
    const double one_level =
        7.0 * static_cast<double>(model::standard_cost(m2, k2, n2)) +
        static_cast<double>(
            model::level_add_cost(Variant::winograd, m2, k2, n2));
    return standard / one_level;
  };
}

TEST(CrossoverSearch, CleanMonotoneSweepPicksLastDgemmWin) {
  std::vector<SweepPoint> sweep{{100, 0.9}, {110, 0.95}, {120, 0.99},
                                {130, 1.02}, {140, 1.05}, {150, 1.1}};
  EXPECT_EQ(tuning::crossover_from_sweep(sweep), 120);
}

TEST(CrossoverSearch, InterleavedSweepSplitsTheDifference) {
  // First Strassen win at 120, last DGEMM win at 130: the paper's rule
  // (tau = 199 between 176 and 214) picks the midpoint.
  std::vector<SweepPoint> sweep{{100, 0.9}, {110, 0.95}, {120, 1.02},
                                {130, 0.99}, {140, 1.05}, {150, 1.1}};
  EXPECT_EQ(tuning::crossover_from_sweep(sweep), 125);
}

TEST(CrossoverSearch, TieCountsAsDgemmWin) {
  std::vector<SweepPoint> sweep{{10, 0.9}, {12, 1.0}, {14, 1.1}};
  EXPECT_EQ(tuning::crossover_from_sweep(sweep), 12);
}

TEST(CrossoverSearch, AllStrassenWins) {
  std::vector<SweepPoint> sweep{{64, 1.2}, {72, 1.3}};
  EXPECT_EQ(tuning::crossover_from_sweep(sweep), 63);
}

TEST(CrossoverSearch, AllDgemmWins) {
  std::vector<SweepPoint> sweep{{64, 0.8}, {72, 0.9}};
  EXPECT_EQ(tuning::crossover_from_sweep(sweep), 72);
}

TEST(CrossoverSearch, EmptySweep) {
  EXPECT_EQ(tuning::crossover_from_sweep({}), 0);
}

TEST(CrossoverSearch, OpCountModelGivesTheoreticalSquareCutoff) {
  CrossoverOptions opts;
  opts.min_size = 2;
  opts.max_size = 40;
  opts.step = 2;
  const auto result = tuning::find_square_crossover(opts, opcount_ratio());
  EXPECT_EQ(result.tau, 12);
  EXPECT_EQ(result.sweep.size(), 20u);
}

TEST(CrossoverSearch, OpCountModelRectangularParams) {
  // With two dimensions huge, eq. (8) reduces to 1 >= 4/s + O(1/big), so
  // every parameter comes out at (just above) 4.
  CrossoverOptions opts;
  opts.min_size = 2;
  opts.max_size = 40;
  opts.step = 2;
  opts.fixed_large = 4096;
  const auto rect = tuning::find_rectangular_params(opts, opcount_ratio());
  EXPECT_EQ(rect.tau_m, 4);
  EXPECT_EQ(rect.tau_k, 4);
  EXPECT_EQ(rect.tau_n, 4);
}

TEST(CrossoverSearch, AsymmetricSyntheticModel) {
  // A model where the m-dimension is twice as "expensive" to recurse over:
  // the tuner must report an asymmetric parameter set (tau_m > tau_k),
  // the phenomenon Table 3 documents on real machines.
  RatioFn asym = [](index_t m, index_t k, index_t n) {
    const double penalty = 40.0 / static_cast<double>(m) +
                           20.0 / static_cast<double>(k) +
                           20.0 / static_cast<double>(n);
    return penalty < 1.0 ? 1.2 : 0.8;  // Strassen wins iff penalty < 1
  };
  CrossoverOptions opts;
  opts.min_size = 2;
  opts.max_size = 100;
  opts.step = 2;
  opts.fixed_large = 100000;
  const auto rect = tuning::find_rectangular_params(opts, asym);
  EXPECT_GT(rect.tau_m, rect.tau_k);
  EXPECT_EQ(rect.tau_k, rect.tau_n);
}

TEST(CrossoverSearch, MeasuredRatioSmokeTest) {
  // Real timing on tiny sizes: just verify the plumbing produces positive
  // finite ratios and a sweep of the right length.
  CrossoverOptions opts;
  opts.min_size = 24;
  opts.max_size = 48;
  opts.step = 24;
  opts.reps = 1;
  const auto result = tuning::find_square_crossover(opts);
  ASSERT_EQ(result.sweep.size(), 2u);
  for (const SweepPoint& p : result.sweep) {
    // Structural checks only: on a loaded CI host the magnitude can swing
    // wildly, but the ratio must always be a positive finite number.
    EXPECT_GT(p.ratio, 0.0);
    EXPECT_TRUE(std::isfinite(p.ratio));
  }
}

TEST(CrossoverSearch, TuneHybridProducesValidCriterion) {
  // Synthetic end-to-end via the measured path on small sizes; we only
  // check the criterion is structurally sound (positive parameters).
  CrossoverOptions opts;
  opts.min_size = 16;
  opts.max_size = 32;
  opts.step = 16;
  opts.fixed_large = 64;
  opts.reps = 1;
  const core::CutoffCriterion crit = tuning::tune_hybrid_criterion(opts);
  EXPECT_EQ(crit.kind, core::CutoffKind::hybrid);
  EXPECT_GE(crit.tau, 2.0);
  EXPECT_GE(crit.tau_m, 2.0);
  EXPECT_GE(crit.tau_k, 2.0);
  EXPECT_GE(crit.tau_n, 2.0);
}

}  // namespace
}  // namespace strassen
