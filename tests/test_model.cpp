// The operation-count model tests: every numeric claim Section 2 of the
// paper makes is asserted here.
#include <gtest/gtest.h>

#include <cmath>

#include "model/cutoff_theory.hpp"
#include "model/opmodel.hpp"

namespace strassen {
namespace {

using model::Variant;

TEST(OpModel, StandardCost) {
  // 2mkn - mn.
  EXPECT_EQ(model::standard_cost(2, 2, 2), 12);
  EXPECT_EQ(model::standard_cost(10, 20, 30), 2 * 10 * 20 * 30 - 10 * 30);
  EXPECT_EQ(model::add_cost(7, 9), 63);
}

TEST(OpModel, OneLevelWinogradCountsBySchedule) {
  // One Winograd level on even (m,k,n) with standard sub-multiplies:
  // 7 M(m/2,k/2,n/2) + 4G(m/2,k/2) + 4G(k/2,n/2) + 7G(m/2,n/2).
  auto one_level = [](index_t m, index_t k, index_t n) {
    return 7 * model::standard_cost(m / 2, k / 2, n / 2) +
           model::level_add_cost(Variant::winograd, m / 2, k / 2, n / 2);
  };
  auto stop_below = [](index_t depth_limit) {
    return [depth_limit](index_t, index_t, index_t, int d) {
      return d >= depth_limit;
    };
  };
  EXPECT_EQ(model::strassen_cost(Variant::winograd, 64, 64, 64, stop_below(1)),
            one_level(64, 64, 64));
  EXPECT_EQ(model::strassen_cost(Variant::winograd, 64, 32, 128,
                                 stop_below(1)),
            one_level(64, 32, 128));
}

TEST(OpModel, RecurrenceMatchesClosedFormWinograd) {
  // Eq. (3) against direct evaluation of the recurrence (eq. 2).
  for (int d = 0; d <= 4; ++d) {
    for (index_t m0 : {1, 3, 8, 12}) {
      for (index_t k0 : {1, 5, 8}) {
        for (index_t n0 : {2, 8, 13}) {
          const index_t m = m0 << d, k = k0 << d, n = n0 << d;
          auto stop = [d](index_t, index_t, index_t, int depth) {
            return depth >= d;
          };
          EXPECT_EQ(model::strassen_cost(Variant::winograd, m, k, n, stop),
                    model::winograd_cost_depth(m0, k0, n0, d))
              << "d=" << d << " m0=" << m0 << " k0=" << k0 << " n0=" << n0;
        }
      }
    }
  }
}

TEST(OpModel, SquareClosedFormsSpecializeGeneral) {
  for (int d = 0; d <= 6; ++d) {
    for (index_t m0 : {1, 2, 7, 12}) {
      EXPECT_EQ(model::winograd_cost_square(m0, d),
                model::winograd_cost_depth(m0, m0, m0, d));
    }
  }
}

TEST(OpModel, OriginalRecurrenceMatchesClosedForm) {
  for (int d = 0; d <= 5; ++d) {
    for (index_t m0 : {1, 4, 9}) {
      auto stop = [d](index_t, index_t, index_t, int depth) {
        return depth >= d;
      };
      EXPECT_EQ(model::strassen_cost(Variant::original, m0 << d, m0 << d,
                                     m0 << d, stop),
                model::original_cost_square(m0, d));
    }
  }
}

TEST(PaperClaims, OneLevelRatioApproachesSevenEighths) {
  // Eq. (1): "...approaches 7/8 as m gets large, implying ... a 12.5%
  // improvement over regular matrix multiplication."
  EXPECT_NEAR(model::one_level_ratio_square(1 << 20), 7.0 / 8.0, 1e-5);
  // And it exceeds 1 for small m (no benefit).
  EXPECT_GT(model::one_level_ratio_square(8), 1.0);
}

TEST(PaperClaims, WinogradBeatsOriginalForAllDepths) {
  // "(4) is an improvement over (5) for all recursion depths d and all m0,
  // since their difference is (m0)^2 (7^d - 4^d)."
  for (int d = 1; d <= 6; ++d) {
    for (index_t m0 : {1, 2, 7, 12}) {
      const count_t diff = model::original_cost_square(m0, d) -
                           model::winograd_cost_square(m0, d);
      count_t p7 = 1, p4 = 1;
      for (int i = 0; i < d; ++i) {
        p7 *= 7;
        p4 *= 4;
      }
      EXPECT_EQ(diff, static_cast<count_t>(m0) * m0 * (p7 - p4));
    }
  }
}

TEST(PaperClaims, AsymptoticOriginalToWinogradRatios) {
  // "improvement of (4) over (5) is 14.3% when full recursion is used
  // (m0 = 1), and between 5.26% and 3.45% as m0 ranges between 7 and 12."
  // The limiting ratio of (5)/(4) is (5 + 2 m0)/(4 + 2 m0).
  auto limit_ratio = [](index_t m0) {
    return (5.0 + 2.0 * static_cast<double>(m0)) /
           (4.0 + 2.0 * static_cast<double>(m0));
  };
  EXPECT_NEAR(1.0 - 1.0 / limit_ratio(1), 0.143, 5e-4);
  EXPECT_NEAR(1.0 - 1.0 / limit_ratio(7), 0.0526, 5e-4);
  EXPECT_NEAR(1.0 - 1.0 / limit_ratio(12), 0.0345, 5e-4);
  // Deep recursion approaches the limit.
  const double deep = static_cast<double>(model::original_cost_square(1, 20)) /
                      static_cast<double>(model::winograd_cost_square(1, 20));
  EXPECT_NEAR(deep, limit_ratio(1), 1e-6);
}

TEST(PaperClaims, CutoffGainAtOrder256Is38Percent) {
  // "For matrices of order 256 ... the ratio (4) with d=8, m0=1 to (4) with
  // d=5, m0=8, obtaining a 38.2% improvement using cutoffs."
  const double no_cutoff =
      static_cast<double>(model::winograd_cost_square(1, 8));
  const double with_cutoff =
      static_cast<double>(model::winograd_cost_square(8, 5));
  EXPECT_NEAR(1.0 - with_cutoff / no_cutoff, 0.382, 5e-4);
}

TEST(CutoffTheory, SquareCutoffIsTwelve) {
  EXPECT_EQ(model::theoretical_square_cutoff(), 12);
  EXPECT_TRUE(model::standard_preferred(12, 12, 12));
  EXPECT_FALSE(model::standard_preferred(13, 13, 13));
  EXPECT_FALSE(model::standard_preferred(14, 14, 14));
}

TEST(CutoffTheory, RectangularExampleFromPaper) {
  // "If m=6, k=14, n=86, (7) is not satisfied; thus recursion should be
  // used" -- even though m is far below the square cutoff of 12.
  EXPECT_TRUE(model::recursion_beneficial(6, 14, 86));
  EXPECT_LT(6, model::theoretical_square_cutoff());
  // And slightly smaller versions are not beneficial.
  EXPECT_FALSE(model::recursion_beneficial(6, 14, 84));
  EXPECT_FALSE(model::recursion_beneficial(4, 14, 86));
  EXPECT_EQ(model::min_beneficial_m(14, 86), 6);
}

TEST(CutoffTheory, VeryRectangularNeverBeneficialWhenTwoDimsTiny) {
  // 1/m + 1/k alone already exceeds 1/4 when m = k = 4 (eq. 8).
  EXPECT_FALSE(model::recursion_beneficial(4, 4, 1 << 20));
  EXPECT_EQ(model::min_beneficial_m(4, 1 << 20, 1 << 12), -1);
}

TEST(CutoffTheory, BoundaryMonotonicInN) {
  // For k = 14, increasing n can only lower the smallest beneficial m.
  index_t prev = model::min_beneficial_m(14, 50);
  for (index_t n : {100, 200, 400, 1000}) {
    const index_t cur = model::min_beneficial_m(14, n);
    if (prev != -1) {
      ASSERT_NE(cur, -1);
      EXPECT_LE(cur, prev);
    }
    prev = cur;
  }
}

}  // namespace
}  // namespace strassen
