// Tests for the two-parameter-set feature and its file persistence
// (Section 4.2's "two sets of parameters to handle both cases").
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "blas/kernels.hpp"
#include "support/errors.hpp"
#include "tuning/persist.hpp"

namespace strassen {
namespace {

using core::CutoffCriterion;
using tuning::TunedCriteria;

TunedCriteria sample() {
  TunedCriteria t;
  t.beta_zero = CutoffCriterion::hybrid(199, 75, 125, 95);
  t.general = CutoffCriterion::hybrid(214, 80, 130, 101);
  return t;
}

TEST(Persist, RoundTripThroughStream) {
  const TunedCriteria t = sample();
  std::stringstream ss;
  tuning::save_criteria(t, ss);
  const TunedCriteria back = tuning::load_criteria(ss);
  EXPECT_DOUBLE_EQ(back.beta_zero.tau, 199);
  EXPECT_DOUBLE_EQ(back.beta_zero.tau_m, 75);
  EXPECT_DOUBLE_EQ(back.beta_zero.tau_k, 125);
  EXPECT_DOUBLE_EQ(back.beta_zero.tau_n, 95);
  EXPECT_DOUBLE_EQ(back.general.tau, 214);
  EXPECT_DOUBLE_EQ(back.general.tau_m, 80);
  EXPECT_DOUBLE_EQ(back.general.tau_k, 130);
  EXPECT_DOUBLE_EQ(back.general.tau_n, 101);
  EXPECT_EQ(back.general.kind, core::CutoffKind::hybrid);
}

TEST(Persist, SelectPicksByBeta) {
  const TunedCriteria t = sample();
  EXPECT_DOUBLE_EQ(t.select(0.0).tau, 199);
  EXPECT_DOUBLE_EQ(t.select(1.0).tau, 214);
  EXPECT_DOUBLE_EQ(t.select(-0.5).tau, 214);
}

TEST(Persist, MissingKeysKeepDefaults) {
  std::stringstream ss("beta_zero.tau = 150\n");
  const TunedCriteria back = tuning::load_criteria(ss);
  EXPECT_DOUBLE_EQ(back.beta_zero.tau, 150);
  // Untouched keys fall back to the defaults.
  EXPECT_DOUBLE_EQ(back.beta_zero.tau_m, 75);
  EXPECT_DOUBLE_EQ(back.general.tau, 199);
}

TEST(Persist, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "# a comment\n"
      "\n"
      "general.tau = 321  # trailing comment\n");
  const TunedCriteria back = tuning::load_criteria(ss);
  EXPECT_DOUBLE_EQ(back.general.tau, 321);
}

TEST(Persist, MalformedLineThrows) {
  std::stringstream ss("general.tau 321\n");  // missing '='
  EXPECT_THROW(tuning::load_criteria(ss), Error);
}

TEST(Persist, MissingFileThrows) {
  EXPECT_THROW(tuning::load_criteria_file("/nonexistent/dgefmm.params"),
               Error);
}

// A tuned-criteria file is keyed on the element type it was tuned in:
// float runs must never silently configure themselves from double-tuned
// cutoffs (the crossover point moves with the element width).
TEST(Persist, ElementTypeRoundTrips) {
  TunedCriteria t = sample();
  t.elem = "f32";
  std::stringstream ss;
  tuning::save_criteria(t, ss);
  EXPECT_NE(ss.str().find("elem = f32"), std::string::npos);
  const TunedCriteria back = tuning::load_criteria(ss);
  EXPECT_EQ(back.elem, "f32");
  EXPECT_TRUE(back.matches_element("f32"));
  EXPECT_FALSE(back.matches_element("f64"));
}

TEST(Persist, LegacyFileWithoutElemIsDoubleTuned) {
  // Files written before sgefmm existed have no elem key; they were tuned
  // in double, so they must match f64 and -- the regression -- must NOT
  // match f32.
  std::stringstream ss("beta_zero.tau = 150\ngeneral.tau = 200\n");
  const TunedCriteria back = tuning::load_criteria(ss);
  EXPECT_EQ(back.elem, "f64");
  EXPECT_TRUE(back.matches_element("f64"));
  EXPECT_FALSE(back.matches_element("f32"));
}

TEST(Persist, DefaultStampIsDouble) {
  // save_criteria always writes the elem key so new files are explicit.
  const TunedCriteria t = sample();
  std::stringstream ss;
  tuning::save_criteria(t, ss);
  EXPECT_NE(ss.str().find("elem = f64"), std::string::npos);
}

TEST(Persist, BogusElemThrows) {
  std::stringstream ss("elem = f16\n");
  EXPECT_THROW(tuning::load_criteria(ss), Error);
}

// --- kernel stamp: hard miss on mismatch -----------------------------------

// The regression this pins: a criteria file whose stamped kernel disagrees
// with the active dispatch must be a hard miss -- matches_active_kernel()
// false, so neither the loader convenience path nor install can mis-route
// dispatch with crossovers measured against a different GEMM.
TEST(Persist, KernelMismatchIsHardMiss) {
  TunedCriteria t = sample();
  t.kernel = "some-retired-kernel";
  EXPECT_FALSE(t.matches_active_kernel());
  t.kernel = blas::active_kernel().name;
  EXPECT_TRUE(t.matches_active_kernel());
}

// A file with no kernel record at all (pre-dispatch legacy) cannot prove
// which GEMM its crossovers were measured against: hard miss too, not the
// old benefit-of-the-doubt pass-through.
TEST(Persist, MissingKernelRecordIsHardMiss) {
  TunedCriteria t = sample();
  ASSERT_TRUE(t.kernel.empty());
  EXPECT_FALSE(t.matches_active_kernel());
}

// Float-tuned criteria must be stamped against the float kernel table of
// the active family; the double kernel's name is a mismatch for them.
TEST(Persist, FloatStampChecksFloatKernelTable) {
  TunedCriteria t = sample();
  t.elem = "f32";
  t.kernel = blas::active_kernel_f().name;
  EXPECT_TRUE(t.matches_active_kernel());
  t.kernel = blas::active_kernel().name;  // the double table's name
  EXPECT_FALSE(t.matches_active_kernel());
}

// --- scheme-crossover keys (the autotune extension) ------------------------

TEST(Persist, SchemeCrossoverKeysRoundTrip) {
  TunedCriteria t = sample();
  t.tau_fused = 1944;
  t.tau_fused2 = 1100;
  t.tau_hybrid = 1460;
  t.tau_s2 = 2100;
  t.tau_dag = 720;
  t.threads = 4;
  std::stringstream ss;
  tuning::save_criteria(t, ss);
  EXPECT_NE(ss.str().find("scheme.fused = 1944"), std::string::npos);
  EXPECT_NE(ss.str().find("scheme.fused2 = 1100"), std::string::npos);
  EXPECT_NE(ss.str().find("scheme.hybrid = 1460"), std::string::npos);
  EXPECT_NE(ss.str().find("scheme.s2 = 2100"), std::string::npos);
  EXPECT_NE(ss.str().find("scheme.dag = 720"), std::string::npos);
  const TunedCriteria back = tuning::load_criteria(ss);
  EXPECT_DOUBLE_EQ(back.tau_fused, 1944);
  EXPECT_DOUBLE_EQ(back.tau_fused2, 1100);
  EXPECT_DOUBLE_EQ(back.tau_hybrid, 1460);
  EXPECT_DOUBLE_EQ(back.tau_s2, 2100);
  EXPECT_DOUBLE_EQ(back.tau_dag, 720);
  EXPECT_EQ(back.threads, 4);
}

TEST(Persist, SchemeKeysAbsentKeepNeverSentinel) {
  // Legacy files carry no scheme keys: the taus load as 0, the "never /
  // unmeasured" sentinel, and the eq.-15 keys are unaffected.
  std::stringstream ss("beta_zero.tau = 150\n");
  const TunedCriteria back = tuning::load_criteria(ss);
  EXPECT_DOUBLE_EQ(back.tau_fused, 0);
  EXPECT_DOUBLE_EQ(back.tau_fused2, 0);
  EXPECT_DOUBLE_EQ(back.tau_hybrid, 0);
  EXPECT_DOUBLE_EQ(back.tau_s2, 0);
  EXPECT_DOUBLE_EQ(back.tau_dag, 0);
  EXPECT_EQ(back.threads, 0);
}

TEST(Persist, ZeroTausAreNotWritten) {
  // 0 means unmeasured: save omits the key entirely so a later load keeps
  // the sentinel instead of parsing an explicit "never" as a measurement.
  const TunedCriteria t = sample();
  std::stringstream ss;
  tuning::save_criteria(t, ss);
  EXPECT_EQ(ss.str().find("scheme."), std::string::npos);
  EXPECT_EQ(ss.str().find("threads"), std::string::npos);
}

TEST(Persist, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/dgefmm_params_test.txt";
  ASSERT_TRUE(tuning::save_criteria_file(sample(), path));
  const TunedCriteria back = tuning::load_criteria_file(path);
  EXPECT_DOUBLE_EQ(back.beta_zero.tau, 199);
  EXPECT_DOUBLE_EQ(back.general.tau_n, 101);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace strassen
