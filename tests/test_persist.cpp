// Tests for the two-parameter-set feature and its file persistence
// (Section 4.2's "two sets of parameters to handle both cases").
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "support/errors.hpp"
#include "tuning/persist.hpp"

namespace strassen {
namespace {

using core::CutoffCriterion;
using tuning::TunedCriteria;

TunedCriteria sample() {
  TunedCriteria t;
  t.beta_zero = CutoffCriterion::hybrid(199, 75, 125, 95);
  t.general = CutoffCriterion::hybrid(214, 80, 130, 101);
  return t;
}

TEST(Persist, RoundTripThroughStream) {
  const TunedCriteria t = sample();
  std::stringstream ss;
  tuning::save_criteria(t, ss);
  const TunedCriteria back = tuning::load_criteria(ss);
  EXPECT_DOUBLE_EQ(back.beta_zero.tau, 199);
  EXPECT_DOUBLE_EQ(back.beta_zero.tau_m, 75);
  EXPECT_DOUBLE_EQ(back.beta_zero.tau_k, 125);
  EXPECT_DOUBLE_EQ(back.beta_zero.tau_n, 95);
  EXPECT_DOUBLE_EQ(back.general.tau, 214);
  EXPECT_DOUBLE_EQ(back.general.tau_m, 80);
  EXPECT_DOUBLE_EQ(back.general.tau_k, 130);
  EXPECT_DOUBLE_EQ(back.general.tau_n, 101);
  EXPECT_EQ(back.general.kind, core::CutoffKind::hybrid);
}

TEST(Persist, SelectPicksByBeta) {
  const TunedCriteria t = sample();
  EXPECT_DOUBLE_EQ(t.select(0.0).tau, 199);
  EXPECT_DOUBLE_EQ(t.select(1.0).tau, 214);
  EXPECT_DOUBLE_EQ(t.select(-0.5).tau, 214);
}

TEST(Persist, MissingKeysKeepDefaults) {
  std::stringstream ss("beta_zero.tau = 150\n");
  const TunedCriteria back = tuning::load_criteria(ss);
  EXPECT_DOUBLE_EQ(back.beta_zero.tau, 150);
  // Untouched keys fall back to the defaults.
  EXPECT_DOUBLE_EQ(back.beta_zero.tau_m, 75);
  EXPECT_DOUBLE_EQ(back.general.tau, 199);
}

TEST(Persist, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "# a comment\n"
      "\n"
      "general.tau = 321  # trailing comment\n");
  const TunedCriteria back = tuning::load_criteria(ss);
  EXPECT_DOUBLE_EQ(back.general.tau, 321);
}

TEST(Persist, MalformedLineThrows) {
  std::stringstream ss("general.tau 321\n");  // missing '='
  EXPECT_THROW(tuning::load_criteria(ss), Error);
}

TEST(Persist, MissingFileThrows) {
  EXPECT_THROW(tuning::load_criteria_file("/nonexistent/dgefmm.params"),
               Error);
}

// A tuned-criteria file is keyed on the element type it was tuned in:
// float runs must never silently configure themselves from double-tuned
// cutoffs (the crossover point moves with the element width).
TEST(Persist, ElementTypeRoundTrips) {
  TunedCriteria t = sample();
  t.elem = "f32";
  std::stringstream ss;
  tuning::save_criteria(t, ss);
  EXPECT_NE(ss.str().find("elem = f32"), std::string::npos);
  const TunedCriteria back = tuning::load_criteria(ss);
  EXPECT_EQ(back.elem, "f32");
  EXPECT_TRUE(back.matches_element("f32"));
  EXPECT_FALSE(back.matches_element("f64"));
}

TEST(Persist, LegacyFileWithoutElemIsDoubleTuned) {
  // Files written before sgefmm existed have no elem key; they were tuned
  // in double, so they must match f64 and -- the regression -- must NOT
  // match f32.
  std::stringstream ss("beta_zero.tau = 150\ngeneral.tau = 200\n");
  const TunedCriteria back = tuning::load_criteria(ss);
  EXPECT_EQ(back.elem, "f64");
  EXPECT_TRUE(back.matches_element("f64"));
  EXPECT_FALSE(back.matches_element("f32"));
}

TEST(Persist, DefaultStampIsDouble) {
  // save_criteria always writes the elem key so new files are explicit.
  const TunedCriteria t = sample();
  std::stringstream ss;
  tuning::save_criteria(t, ss);
  EXPECT_NE(ss.str().find("elem = f64"), std::string::npos);
}

TEST(Persist, BogusElemThrows) {
  std::stringstream ss("elem = f16\n");
  EXPECT_THROW(tuning::load_criteria(ss), Error);
}

TEST(Persist, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/dgefmm_params_test.txt";
  ASSERT_TRUE(tuning::save_criteria_file(sample(), path));
  const TunedCriteria back = tuning::load_criteria_file(path);
  EXPECT_DOUBLE_EQ(back.beta_zero.tau, 199);
  EXPECT_DOUBLE_EQ(back.general.tau_n, 101);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace strassen
