// Tests for the from-scratch BLAS substrate: Level 1/2 routines against
// hand computations and every DGEMM machine profile against the reference
// triple loop over a parameterized shape/trans/alpha-beta grid.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/level1.hpp"
#include "blas/level2.hpp"
#include "blas/machine.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"

namespace strassen {
namespace {

using blas::Machine;

// ---------------------------------------------------------------- Level 1

TEST(Level1, Dcopy) {
  std::vector<double> x{1, 2, 3, 4, 5, 6};
  std::vector<double> y(3, 0.0);
  blas::dcopy(3, x.data(), 2, y.data(), 1);  // every other element
  EXPECT_EQ(y, (std::vector<double>{1, 3, 5}));
}

TEST(Level1, Dscal) {
  std::vector<double> x{1, 2, 3};
  blas::dscal(3, -2.0, x.data(), 1);
  EXPECT_EQ(x, (std::vector<double>{-2, -4, -6}));
}

TEST(Level1, DaxpyStrided) {
  std::vector<double> x{1, 9, 2, 9, 3};
  std::vector<double> y{10, 20, 30};
  blas::daxpy(3, 2.0, x.data(), 2, y.data(), 1);
  EXPECT_EQ(y, (std::vector<double>{12, 24, 36}));
}

TEST(Level1, DaxpyAlphaZeroIsNoop) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{4, 5, 6};
  blas::daxpy(3, 0.0, x.data(), 1, y.data(), 1);
  EXPECT_EQ(y, (std::vector<double>{4, 5, 6}));
}

TEST(Level1, Ddot) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{4, 5, 6};
  EXPECT_DOUBLE_EQ(blas::ddot(3, x.data(), 1, y.data(), 1), 32.0);
  EXPECT_DOUBLE_EQ(blas::ddot(0, x.data(), 1, y.data(), 1), 0.0);
}

// ---------------------------------------------------------------- Level 2

TEST(Level2, DgemvNoTrans) {
  // A = [1 3; 2 4] (column-major), x = (1, 1), y0 = (10, 10).
  std::vector<double> a{1, 2, 3, 4};
  std::vector<double> x{1, 1};
  std::vector<double> y{10, 10};
  blas::dgemv(Trans::no, 2, 2, 2.0, a.data(), 2, x.data(), 1, 0.5, y.data(),
              1);
  // y = 2*A*x + 0.5*y = 2*(4,6) + (5,5) = (13, 17).
  EXPECT_DOUBLE_EQ(y[0], 13.0);
  EXPECT_DOUBLE_EQ(y[1], 17.0);
}

TEST(Level2, DgemvTrans) {
  std::vector<double> a{1, 2, 3, 4};  // A = [1 3; 2 4]
  std::vector<double> x{1, -1};
  std::vector<double> y{0, 0};
  blas::dgemv(Trans::transpose, 2, 2, 1.0, a.data(), 2, x.data(), 1, 0.0,
              y.data(), 1);
  // y = A^T x = (1-2, 3-4) = (-1, -1).
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Level2, DgemvBetaZeroOverwritesGarbage) {
  std::vector<double> a{1, 0, 0, 1};
  std::vector<double> x{3, 4};
  std::vector<double> y{std::nan(""), std::nan("")};
  blas::dgemv(Trans::no, 2, 2, 1.0, a.data(), 2, x.data(), 1, 0.0, y.data(),
              1);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 4.0);
}

TEST(Level2, Dger) {
  // A = 0 (2x3), x = (1, 2), y = (3, 4, 5): A += 2 x y^T.
  std::vector<double> a(6, 0.0);
  std::vector<double> x{1, 2};
  std::vector<double> y{3, 4, 5};
  blas::dger(2, 3, 2.0, x.data(), 1, y.data(), 1, a.data(), 2);
  EXPECT_DOUBLE_EQ(a[0], 6.0);   // (0,0)
  EXPECT_DOUBLE_EQ(a[1], 12.0);  // (1,0)
  EXPECT_DOUBLE_EQ(a[4], 10.0);  // (0,2)
  EXPECT_DOUBLE_EQ(a[5], 20.0);  // (1,2)
}

TEST(Level2, DgerStridedVectors) {
  std::vector<double> a(4, 1.0);
  std::vector<double> x{1, 99, 2};   // stride 2
  std::vector<double> y{3, 99, 4};   // stride 2
  blas::dger(2, 2, 1.0, x.data(), 2, y.data(), 2, a.data(), 2);
  EXPECT_DOUBLE_EQ(a[0], 4.0);
  EXPECT_DOUBLE_EQ(a[1], 7.0);
  EXPECT_DOUBLE_EQ(a[2], 5.0);
  EXPECT_DOUBLE_EQ(a[3], 9.0);
}

// ---------------------------------------------------------------- DGEMM

struct GemmCase {
  index_t m, n, k;
  Trans ta, tb;
  double alpha, beta;
};

std::string trans_str(Trans t) { return is_trans(t) ? "T" : "N"; }

class DgemmVsReference
    : public ::testing::TestWithParam<std::tuple<Machine, GemmCase>> {};

TEST_P(DgemmVsReference, Matches) {
  const auto [machine, cs] = GetParam();
  Rng rng(1234);
  const index_t a_rows = is_trans(cs.ta) ? cs.k : cs.m;
  const index_t a_cols = is_trans(cs.ta) ? cs.m : cs.k;
  const index_t b_rows = is_trans(cs.tb) ? cs.n : cs.k;
  const index_t b_cols = is_trans(cs.tb) ? cs.k : cs.n;
  // Leading dimensions deliberately larger than the row counts.
  const index_t lda = a_rows + 3, ldb = b_rows + 1, ldc = cs.m + 2;
  Matrix a(lda, a_cols > 0 ? a_cols : 1), b(ldb, b_cols > 0 ? b_cols : 1);
  Matrix c(ldc, cs.n > 0 ? cs.n : 1), c_ref(ldc, cs.n > 0 ? cs.n : 1);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  fill_random(c.view(), rng);
  copy(c.view(), c_ref.view());

  blas::dgemm_on(machine, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha, a.data(),
                 lda, b.data(), ldb, cs.beta, c.data(), ldc);
  blas::gemm_reference(cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha, a.data(),
                       lda, b.data(), ldb, cs.beta, c_ref.data(), ldc);

  const double tol = 1e-12 * (static_cast<double>(cs.k) + 1.0);
  for (index_t j = 0; j < cs.n; ++j) {
    for (index_t i = 0; i < cs.m; ++i) {
      EXPECT_NEAR(c(i, j), c_ref(i, j), tol)
          << "at (" << i << "," << j << ")";
    }
  }
  // Rows of C beyond m (padding inside ldc) must be untouched.
  for (index_t j = 0; j < cs.n; ++j) {
    for (index_t i = cs.m; i < ldc; ++i) {
      EXPECT_EQ(c(i, j), c_ref(i, j));
    }
  }
}

std::vector<GemmCase> gemm_cases() {
  std::vector<GemmCase> cases;
  const std::vector<std::tuple<index_t, index_t, index_t>> shapes = {
      {1, 1, 1},   {2, 3, 4},    {5, 5, 5},   {7, 1, 9},   {1, 8, 3},
      {16, 16, 16}, {17, 19, 23}, {64, 64, 64}, {65, 33, 9}, {40, 3, 128},
      {3, 128, 40}, {100, 100, 1}, {1, 1, 100}, {33, 65, 64}, {0, 4, 4},
      {4, 0, 4},   {4, 4, 0}};
  for (const auto& [m, n, k] : shapes) {
    for (Trans ta : {Trans::no, Trans::transpose}) {
      for (Trans tb : {Trans::no, Trans::transpose}) {
        cases.push_back({m, n, k, ta, tb, 1.0, 0.0});
      }
    }
    cases.push_back({m, n, k, Trans::no, Trans::no, -0.5, 1.0});
    cases.push_back({m, n, k, Trans::transpose, Trans::no, 2.0, 0.25});
    cases.push_back({m, n, k, Trans::no, Trans::transpose, 1.0 / 3.0, -1.0});
    cases.push_back({m, n, k, Trans::no, Trans::no, 0.0, 0.5});
  }
  return cases;
}

std::string gemm_case_name(
    const ::testing::TestParamInfo<DgemmVsReference::ParamType>& info) {
  const Machine machine = std::get<0>(info.param);
  const GemmCase cs = std::get<1>(info.param);
  std::string name = blas::machine_name(machine);
  name.erase(std::remove_if(name.begin(), name.end(),
                            [](unsigned char ch) { return !std::isalnum(ch); }),
             name.end());
  name += "_m" + std::to_string(cs.m) + "n" + std::to_string(cs.n) + "k" +
          std::to_string(cs.k) + trans_str(cs.ta) + trans_str(cs.tb);
  name += "_i" + std::to_string(info.index);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllMachinesAllShapes, DgemmVsReference,
    ::testing::Combine(::testing::Values(Machine::rs6000, Machine::c90,
                                         Machine::t3d),
                       ::testing::ValuesIn(gemm_cases())),
    gemm_case_name);

TEST(Dgemm, BetaZeroOverwritesNaN) {
  Matrix a(4, 4), b(4, 4), c(4, 4);
  Rng rng(5);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  fill(c.view(), std::nan(""));
  for (Machine mach : blas::kAllMachines) {
    fill(c.view(), std::nan(""));
    blas::dgemm_on(mach, Trans::no, Trans::no, 4, 4, 4, 1.0, a.data(), 4,
                   b.data(), 4, 0.0, c.data(), 4);
    for (index_t j = 0; j < 4; ++j) {
      for (index_t i = 0; i < 4; ++i) {
        EXPECT_FALSE(std::isnan(c(i, j))) << blas::machine_name(mach);
      }
    }
  }
}

TEST(Dgemm, KZeroScalesC) {
  Matrix c(3, 3);
  fill(c.view(), 2.0);
  blas::dgemm(Trans::no, Trans::no, 3, 3, 0, 1.0, nullptr, 1, nullptr, 1, 0.5,
              c.data(), 3);
  EXPECT_DOUBLE_EQ(c(1, 1), 1.0);
}

TEST(GemmView, HandlesTransposedViews) {
  Rng rng(9);
  Matrix a(6, 4), b(6, 5), c(4, 5), c_ref(4, 5);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  fill(c.view(), 0.0);
  fill(c_ref.view(), 0.0);
  // C = A^T * B.
  blas::gemm_view(1.0, a.view().transposed(), b.view(), 0.0, c.view());
  blas::gemm_reference(Trans::transpose, Trans::no, 4, 5, 6, 1.0, a.data(), 6,
                       b.data(), 6, 0.0, c_ref.data(), 4);
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-12);
}

TEST(MachineProfiles, ActiveMachineSwitch) {
  EXPECT_EQ(blas::active_machine(), Machine::rs6000);
  {
    blas::ScopedMachine guard(Machine::c90);
    EXPECT_EQ(blas::active_machine(), Machine::c90);
    {
      blas::ScopedMachine inner(Machine::t3d);
      EXPECT_EQ(blas::active_machine(), Machine::t3d);
    }
    EXPECT_EQ(blas::active_machine(), Machine::c90);
  }
  EXPECT_EQ(blas::active_machine(), Machine::rs6000);
}

TEST(MachineProfiles, Names) {
  EXPECT_EQ(blas::machine_name(Machine::rs6000), "RS/6000");
  EXPECT_EQ(blas::machine_name(Machine::c90), "C90");
  EXPECT_EQ(blas::machine_name(Machine::t3d), "T3D");
}

}  // namespace
}  // namespace strassen
