// Linter self-tests: runs the strassen_lint binary over the fixture corpus
// in tests/lint_corpus/ and checks that every `bad/` tree is rejected with
// findings of exactly its own rule while its `good/` twin passes clean.
// This is the test that each rule actually fires -- the production gate
// (scripts/lint.sh over src/) only ever sees a passing tree.
//
// The binary path and corpus directory arrive as compile definitions
// (LINT_BIN, LINT_CORPUS) from tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>

namespace {

struct RunResult {
  int rc = -1;
  std::string out;
};

// Runs the linter with `args` appended, capturing stdout+stderr.
RunResult run_lint(const std::string& args) {
  RunResult r;
  const std::string cmd = std::string(LINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[512];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) r.out += buf;
  const int status = pclose(pipe);
  r.rc = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

// Extracts the `[rule]` tag of every finding line (`file:line: [rule] ...`).
std::vector<std::string> finding_rules(const std::string& out) {
  std::vector<std::string> rules;
  std::istringstream ss(out);
  std::string line;
  while (std::getline(ss, line)) {
    const std::size_t open = line.find(": [");
    if (open == std::string::npos) continue;
    const std::size_t close = line.find(']', open);
    if (close == std::string::npos) continue;
    rules.push_back(line.substr(open + 3, close - open - 3));
  }
  return rules;
}

struct CorpusCase {
  const char* dir;   // case directory under tests/lint_corpus/
  const char* rule;  // the one rule its bad/ tree must trip
};

constexpr CorpusCase kCases[] = {
    {"r1_alloc", "alloc-outside-support"},
    {"r2_nofail", "alloc-in-nofail"},
    {"r3_driver", "fallible-after-c-write"},
    {"r4_nodiscard", "missing-nodiscard"},
    {"r5_relaxed", "relaxed-justification"},
    {"r6_cv", "cv-discipline"},
    {"r7_lock", "lock-discipline"},
    {"r8_blocking", "blocking-call"},
    {"suppression", "bad-suppression"},
};

TEST(LintCorpus, BadFixturesTripExactlyTheirOwnRule) {
  for (const CorpusCase& c : kCases) {
    const RunResult r =
        run_lint(std::string(LINT_CORPUS) + "/" + c.dir + "/bad");
    EXPECT_EQ(r.rc, 1) << c.dir << " bad tree must exit 1\n" << r.out;
    const std::vector<std::string> rules = finding_rules(r.out);
    EXPECT_FALSE(rules.empty()) << c.dir << " bad tree produced no findings";
    for (const std::string& rule : rules) {
      EXPECT_EQ(rule, c.rule) << c.dir << " tripped a foreign rule\n" << r.out;
    }
  }
}

TEST(LintCorpus, GoodTwinsPassClean) {
  for (const CorpusCase& c : kCases) {
    const RunResult r =
        run_lint(std::string(LINT_CORPUS) + "/" + c.dir + "/good");
    EXPECT_EQ(r.rc, 0) << c.dir << " good tree must exit 0\n" << r.out;
  }
}

TEST(LintCorpus, SuppressionIsCountedNotSilent) {
  // The good suppression fixture holds a real (suppressed) violation; the
  // summary must say so rather than pretend the tree is trivially clean.
  const RunResult r =
      run_lint(std::string(LINT_CORPUS) + "/suppression/good");
  EXPECT_EQ(r.rc, 0) << r.out;
  EXPECT_NE(r.out.find("1 suppressed"), std::string::npos) << r.out;
}

TEST(LintCorpus, JsonReportMatchesFindings) {
  const std::string json = testing::TempDir() + "lint_corpus_findings.json";
  const RunResult r = run_lint("--json " + json + " " +
                               std::string(LINT_CORPUS) + "/r1_alloc/bad");
  EXPECT_EQ(r.rc, 1) << r.out;
  std::ifstream in(json);
  ASSERT_TRUE(in.good()) << "JSON report not written to " << json;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string body = ss.str();
  EXPECT_NE(body.find("\"rule\": \"alloc-outside-support\""),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("\"suppressed\": 0"), std::string::npos) << body;
  std::remove(json.c_str());
}

TEST(LintCli, UsageAndIoErrorsExitTwo) {
  EXPECT_EQ(run_lint("").rc, 2);
  EXPECT_EQ(run_lint("--json").rc, 2);
  EXPECT_EQ(run_lint("--bogus-flag src").rc, 2);
  EXPECT_EQ(run_lint(std::string(LINT_CORPUS) + "/no-such-dir").rc, 2);
}

TEST(LintCli, ListRulesNamesAllEight) {
  const RunResult r = run_lint("--list-rules");
  EXPECT_EQ(r.rc, 0);
  for (const CorpusCase& c : kCases) {
    if (std::string(c.rule) == "bad-suppression") continue;  // pseudo-rule
    EXPECT_NE(r.out.find(c.rule), std::string::npos)
        << "missing rule " << c.rule << "\n"
        << r.out;
  }
}

}  // namespace
