// Kernel-matrix suite for the SIMD micro-kernel dispatch layer and the
// intra-GEMM macro-loop parallelism (blas/kernels.hpp, blas/packed_loop.hpp).
//
// Three families of guarantees are pinned down here:
//
//  1. every compiled kernel variant (scalar, avx2, avx512) computes the
//     same products as the reference triple loop, including edge tiles
//     whose dimensions are not multiples of the register tile, multi-term
//     packing combinations, and multi-destination epilogues;
//
//  2. the parallel ic-loop decomposition is bitwise deterministic: the
//     same problem run with 1 thread and with N threads produces byte-for-
//     byte identical C, for every kernel variant;
//
//  3. the worker pre-warm contract: a cold pool worker's pack scratch is a
//     real allocation (fault injection can make it fail during the
//     pre-flight), and once ensure_pack_capacity_all_workers has run, a
//     fanned-out packed GEMM performs no allocation at all -- so the
//     DESIGN.md section 7 no-fail region stays allocation-free under the
//     new threading.
//
// Note on the STRASSEN_KERNEL environment override: the dispatcher reads
// it once, at the first active_kernel() call, so it cannot be probed from
// inside an already-running process. scripts/check.sh covers it instead by
// pushing the whole test suite through STRASSEN_KERNEL=scalar and =auto.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/kernels.hpp"
#include "blas/machine.hpp"
#include "blas/packed_loop.hpp"
#include "blas/prefetch.hpp"
#include "core/add_kernels.hpp"
#include "core/dgefmm.hpp"
#include "core/gemm_backend.hpp"
#include "parallel/parallel_strassen.hpp"
#include "support/errors.hpp"
#include "support/faultinject.hpp"
#include "support/matrix.hpp"
#include "support/memadvise.hpp"
#include "support/random.hpp"
#include "support/thread_pool.hpp"

namespace strassen {
namespace {

namespace fi = faultinject;

using blas::KernelArch;

std::vector<KernelArch> supported_arches() {
  std::vector<KernelArch> out;
  for (const KernelArch arch : blas::kAllKernelArches) {
    if (blas::kernel_supported(arch)) out.push_back(arch);
  }
  return out;
}

void fill_nan(MutView v) {
  for (index_t j = 0; j < v.cols; ++j) {
    for (index_t i = 0; i < v.rows; ++i) {
      v.p[i * v.rs + j * v.cs] = std::nan("");
    }
  }
}

// ------------------------------------------------------------- dispatch

TEST(KernelDispatch, ScalarAlwaysCompiledAndSupported) {
  EXPECT_TRUE(blas::kernel_compiled(KernelArch::scalar));
  EXPECT_TRUE(blas::kernel_supported(KernelArch::scalar));
  ASSERT_NE(blas::kernel_info(KernelArch::scalar), nullptr);
}

TEST(KernelDispatch, CompiledTablesAreComplete) {
  for (const KernelArch arch : blas::kAllKernelArches) {
    SCOPED_TRACE(blas::kernel_arch_name(arch));
    const blas::KernelInfo* kv = blas::kernel_info(arch);
    EXPECT_EQ(kv != nullptr, blas::kernel_compiled(arch));
    if (kv == nullptr) continue;
    EXPECT_EQ(kv->arch, arch);
    EXPECT_GE(kv->mr, 1);
    EXPECT_GE(kv->nr, 1);
    EXPECT_LE(kv->mr, blas::kMaxMR);
    EXPECT_LE(kv->nr, blas::kMaxNR);
    // The name leads with the family so stats/bench output is greppable.
    ASSERT_NE(kv->name, nullptr);
    EXPECT_EQ(std::string(kv->name).rfind(blas::kernel_arch_name(arch), 0),
              0u);
    EXPECT_NE(kv->micro_kernel, nullptr);
    EXPECT_NE(kv->pack_a_comb, nullptr);
    EXPECT_NE(kv->pack_b_comb, nullptr);
    EXPECT_NE(kv->write_tile, nullptr);
    EXPECT_NE(kv->vadd, nullptr);
    EXPECT_NE(kv->vsub, nullptr);
    EXPECT_NE(kv->vaxpby, nullptr);
  }
}

TEST(KernelDispatch, BestSupportedIsTheLastSupportedInPreferenceOrder) {
  const KernelArch best = blas::best_supported_kernel();
  EXPECT_TRUE(blas::kernel_supported(best));
  // kAllKernelArches is ordered worst to best: nothing after `best` in that
  // order may be supported.
  bool past_best = false;
  for (const KernelArch arch : blas::kAllKernelArches) {
    if (past_best) {
      EXPECT_FALSE(blas::kernel_supported(arch));
    }
    if (arch == best) past_best = true;
  }
}

TEST(KernelDispatch, SetActiveKernelValidatesSupport) {
  const KernelArch prev = blas::active_kernel().arch;
  for (const KernelArch arch : blas::kAllKernelArches) {
    SCOPED_TRACE(blas::kernel_arch_name(arch));
    if (blas::kernel_supported(arch)) {
      blas::set_active_kernel(arch);
      EXPECT_EQ(blas::active_kernel().arch, arch);
    } else {
      EXPECT_THROW(blas::set_active_kernel(arch), std::invalid_argument);
    }
  }
  blas::set_active_kernel(prev);
}

TEST(KernelDispatch, ScopedKernelRestores) {
  const KernelArch prev = blas::active_kernel().arch;
  {
    blas::ScopedKernel pin(KernelArch::scalar);
    EXPECT_EQ(blas::active_kernel().arch, KernelArch::scalar);
  }
  EXPECT_EQ(blas::active_kernel().arch, prev);
}

TEST(KernelDispatch, KernelPinnedBackendRejectsUnsupportedAtCallTime) {
  // The GemmFn seam: construction never throws, the call validates.
  for (const KernelArch arch : blas::kAllKernelArches) {
    core::GemmFn fn = core::gemm_backend_dgemm_kernel(arch);
    Matrix a(4, 4), b(4, 4), c(4, 4);
    Rng rng(7);
    fill_random(a.view(), rng);
    fill_random(b.view(), rng);
    c.fill(0.0);
    if (blas::kernel_supported(arch)) {
      EXPECT_NO_THROW(fn(Trans::no, Trans::no, 4, 4, 4, 1.0, a.data(), 4,
                         b.data(), 4, 0.0, c.data(), 4));
    } else {
      EXPECT_THROW(fn(Trans::no, Trans::no, 4, 4, 4, 1.0, a.data(), 4,
                      b.data(), 4, 0.0, c.data(), 4),
                   std::invalid_argument);
    }
  }
}

// --------------------------------------------- correctness, every kernel

// Full DGEMM through the public entry point under each forced kernel, over
// shapes chosen to produce edge tiles for every register tile in the matrix
// (4x8, 8x6, 8x8): dimensions mod {4, 6, 8} hit every nonzero remainder.
TEST(KernelMatrix, DgemmMatchesReferenceUnderEveryKernel) {
  struct Shape {
    index_t m, n, k;
  };
  const Shape shapes[] = {{1, 1, 1},    {3, 2, 5},    {7, 6, 8},
                          {8, 8, 6},    {13, 11, 17}, {31, 33, 29},
                          {65, 66, 63}};
  Rng rng(42);
  for (const KernelArch arch : supported_arches()) {
    blas::ScopedKernel pin(arch);
    SCOPED_TRACE(blas::active_kernel().name);
    for (const Shape& s : shapes) {
      for (const Trans ta : {Trans::no, Trans::transpose}) {
        for (const Trans tb : {Trans::no, Trans::transpose}) {
          SCOPED_TRACE("m=" + std::to_string(s.m) + " n=" +
                       std::to_string(s.n) + " k=" + std::to_string(s.k));
          const index_t a_rows = is_trans(ta) ? s.k : s.m;
          const index_t a_cols = is_trans(ta) ? s.m : s.k;
          const index_t b_rows = is_trans(tb) ? s.n : s.k;
          const index_t b_cols = is_trans(tb) ? s.k : s.n;
          const index_t lda = a_rows + 3, ldb = b_rows + 1, ldc = s.m + 2;
          Matrix a(lda, a_cols), b(ldb, b_cols);
          Matrix c(ldc, s.n), c_ref(ldc, s.n);
          fill_random(a.view(), rng);
          fill_random(b.view(), rng);
          fill_random(c.view(), rng);
          copy(c.view(), c_ref.view());
          for (const double beta : {0.0, -0.5}) {
            blas::dgemm(ta, tb, s.m, s.n, s.k, 1.25, a.data(), lda, b.data(),
                        ldb, beta, c.data(), ldc);
            blas::gemm_reference(ta, tb, s.m, s.n, s.k, 1.25, a.data(), lda,
                                 b.data(), ldb, beta, c_ref.data(), ldc);
            const double tol = 1e-12 * (static_cast<double>(s.k) + 1.0);
            for (index_t j = 0; j < s.n; ++j) {
              for (index_t i = 0; i < ldc; ++i) {
                EXPECT_NEAR(c(i, j), c_ref(i, j), i < s.m ? tol : 0.0)
                    << "at (" << i << "," << j << ") beta=" << beta;
              }
            }
          }
        }
      }
    }
  }
}

// The packed skeleton directly, with a deliberately awkward blocking: mc,
// kc, nc none of which divide the problem or align with any register tile,
// so every macro iteration ends in a partial block and every micro panel in
// a partial tile. This exercises the kMaxMR/kMaxNR pack-padding contract
// for each variant (asan would catch an overflow of the padded buffers).
TEST(KernelMatrix, PackedSkeletonEdgeTilesUnderEveryKernel) {
  const blas::GemmBlocking bk{20, 7, 13};
  const index_t m = 53, k = 23, n = 31;
  Rng rng(77);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  for (const KernelArch arch : supported_arches()) {
    blas::ScopedKernel pin(arch);
    SCOPED_TRACE(blas::active_kernel().name);
    Matrix c(m, n), c_ref(m, n);
    fill_random(c.view(), rng);
    copy(c.view(), c_ref.view());
    const blas::PackComb pa = blas::pack_comb(a.view());
    const blas::PackComb pb = blas::pack_comb(b.view());
    const blas::WriteDest dst = blas::write_dest(c.view(), 1.5, -0.25);
    blas::packed_gemm_multi(bk, m, n, k, pa, pb, &dst, 1);
    blas::gemm_reference(Trans::no, Trans::no, m, n, k, 1.5, a.data(),
                         a.ld(), b.data(), b.ld(), -0.25, c_ref.data(),
                         c_ref.ld());
    EXPECT_LE(max_abs_diff(c.view(), c_ref.view()),
              1e-12 * (static_cast<double>(k) + 1.0));
  }
}

// Fused-path surface: linear-combination packing (including a transposed
// term, so the strided gather runs) and a two-destination epilogue whose
// beta is applied on the first k-panel only (k spans several kc panels).
// Destination 0 starts as NaN: beta == 0 must assign, never accumulate.
TEST(KernelMatrix, MultiTermMultiDestUnderEveryKernel) {
  const blas::GemmBlocking bk{24, 10, 18};
  const index_t m = 37, k = 29, n = 21;
  Rng rng(99);
  Matrix a1 = random_matrix(m, k, rng);
  Matrix a2t = random_matrix(k, m, rng);  // used through a transposed view
  Matrix b1 = random_matrix(k, n, rng);
  Matrix b2 = random_matrix(k, n, rng);
  Matrix c1_0 = random_matrix(m, n, rng);

  // Reference: P = (A1 - A2t^T) * (0.5*B1 + 2*B2), then the two epilogues.
  Matrix acomb(m, k), bcomb(k, n), p(m, n);
  for (index_t j = 0; j < k; ++j) {
    for (index_t i = 0; i < m; ++i) {
      acomb(i, j) = a1(i, j) - a2t(j, i);
    }
  }
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < k; ++i) {
      bcomb(i, j) = 0.5 * b1(i, j) + 2.0 * b2(i, j);
    }
  }
  p.fill(0.0);
  blas::gemm_reference(Trans::no, Trans::no, m, n, k, 1.0, acomb.data(),
                       acomb.ld(), bcomb.data(), bcomb.ld(), 0.0, p.data(),
                       p.ld());

  for (const KernelArch arch : supported_arches()) {
    blas::ScopedKernel pin(arch);
    SCOPED_TRACE(blas::active_kernel().name);
    Matrix c0(m, n), c1(m, n);
    fill_nan(c0.view());
    copy(c1_0.view(), c1.view());
    blas::PackComb pa;
    pa.add(a1.view(), 1.0);
    pa.add(make_op_view(Trans::transpose, a2t.data(), k, m, a2t.ld()), -1.0);
    blas::PackComb pb;
    pb.add(b1.view(), 0.5);
    pb.add(b2.view(), 2.0);
    const blas::WriteDest dst[2] = {
        blas::write_dest(c0.view(), 1.0, 0.0),
        blas::write_dest(c1.view(), -2.0, 0.5),
    };
    blas::packed_gemm_multi(bk, m, n, k, pa, pb, dst, 2);
    const double tol = 1e-11 * (static_cast<double>(k) + 1.0);
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        EXPECT_NEAR(c0(i, j), p(i, j), tol) << "dest 0 (" << i << "," << j
                                            << ")";
        EXPECT_NEAR(c1(i, j), -2.0 * p(i, j) + 0.5 * c1_0(i, j), tol)
            << "dest 1 (" << i << "," << j << ")";
      }
    }
  }
}

// ------------------------------------------------- float kernel matrix

// The float dispatch table mirrors the double one: every compiled arch has
// a float variant with its own (wider) register tile, and the active float
// kernel always tracks the active double arch.
TEST(KernelMatrixF, FloatTablesAreCompleteAndTrackTheActiveArch) {
  for (const KernelArch arch : blas::kAllKernelArches) {
    SCOPED_TRACE(blas::kernel_arch_name(arch));
    const blas::KernelInfoF* kv = blas::kernel_info_f(arch);
    EXPECT_EQ(kv != nullptr, blas::kernel_compiled(arch));
    if (kv == nullptr) continue;
    EXPECT_EQ(kv->arch, arch);
    EXPECT_GE(kv->mr, 1);
    EXPECT_GE(kv->nr, 1);
    EXPECT_LE(kv->mr, blas::kMaxMRT<float>);
    EXPECT_LE(kv->nr, blas::kMaxNRT<float>);
    ASSERT_NE(kv->name, nullptr);
    EXPECT_EQ(std::string(kv->name).rfind(blas::kernel_arch_name(arch), 0),
              0u);
    EXPECT_NE(kv->micro_kernel, nullptr);
    EXPECT_NE(kv->pack_a_comb, nullptr);
    EXPECT_NE(kv->pack_b_comb, nullptr);
    EXPECT_NE(kv->write_tile, nullptr);
  }
  for (const KernelArch arch : supported_arches()) {
    blas::ScopedKernel pin(arch);
    EXPECT_EQ(blas::active_kernel_f().arch, arch);
    EXPECT_EQ(blas::active_kernel_t<float>().arch, arch);
  }
}

// Full SGEMM through the public entry under each forced kernel; the shapes
// hit every nonzero remainder of the float register tiles (8x8, 16x6,
// 16x8), so each variant's edge paths run.
TEST(KernelMatrixF, SgemmMatchesReferenceUnderEveryKernel) {
  struct Shape {
    index_t m, n, k;
  };
  const Shape shapes[] = {{1, 1, 1},    {3, 2, 5},    {7, 6, 8},
                          {17, 9, 13},  {16, 8, 6},   {33, 31, 29},
                          {65, 66, 63}};
  Rng rng(43);
  for (const KernelArch arch : supported_arches()) {
    blas::ScopedKernel pin(arch);
    SCOPED_TRACE(blas::active_kernel_f().name);
    for (const Shape& s : shapes) {
      for (const Trans ta : {Trans::no, Trans::transpose}) {
        for (const Trans tb : {Trans::no, Trans::transpose}) {
          SCOPED_TRACE("m=" + std::to_string(s.m) + " n=" +
                       std::to_string(s.n) + " k=" + std::to_string(s.k));
          const index_t a_rows = is_trans(ta) ? s.k : s.m;
          const index_t a_cols = is_trans(ta) ? s.m : s.k;
          const index_t b_rows = is_trans(tb) ? s.n : s.k;
          const index_t b_cols = is_trans(tb) ? s.k : s.n;
          const index_t lda = a_rows + 3, ldb = b_rows + 1, ldc = s.m + 2;
          MatrixF a(lda, a_cols), b(ldb, b_cols);
          MatrixF c(ldc, s.n), c_ref(ldc, s.n);
          fill_random(a.view(), rng);
          fill_random(b.view(), rng);
          fill_random(c.view(), rng);
          copy(c.view(), c_ref.view());
          for (const float beta : {0.0f, -0.5f}) {
            blas::sgemm(ta, tb, s.m, s.n, s.k, 1.25f, a.data(), lda,
                        b.data(), ldb, beta, c.data(), ldc);
            blas::gemm_reference(ta, tb, s.m, s.n, s.k, 1.25f, a.data(), lda,
                                 b.data(), ldb, beta, c_ref.data(), ldc);
            const float tol = 1e-5f * (static_cast<float>(s.k) + 1.0f);
            for (index_t j = 0; j < s.n; ++j) {
              for (index_t i = 0; i < ldc; ++i) {
                EXPECT_NEAR(c(i, j), c_ref(i, j), i < s.m ? tol : 0.0f)
                    << "at (" << i << "," << j << ") beta=" << beta;
              }
            }
          }
        }
      }
    }
  }
}

// Float packed skeleton with an awkward blocking: every macro iteration
// ends in a partial block and every micro panel in a partial tile of the
// 16-wide float tiles (asan guards the kMaxMRT<float> pack padding).
TEST(KernelMatrixF, PackedSkeletonEdgeTilesUnderEveryKernel) {
  const blas::GemmBlocking bk{20, 7, 13};
  const index_t m = 53, k = 23, n = 31;
  Rng rng(78);
  MatrixF a = random_matrix_f(m, k, rng);
  MatrixF b = random_matrix_f(k, n, rng);
  for (const KernelArch arch : supported_arches()) {
    blas::ScopedKernel pin(arch);
    SCOPED_TRACE(blas::active_kernel_f().name);
    MatrixF c(m, n), c_ref(m, n);
    fill_random(c.view(), rng);
    copy(c.view(), c_ref.view());
    const blas::PackCombF pa = blas::pack_comb(a.view());
    const blas::PackCombF pb = blas::pack_comb(b.view());
    const blas::WriteDestF dst = blas::write_dest(c.view(), 1.5f, -0.25f);
    blas::packed_gemm_multi(bk, m, n, k, pa, pb, &dst, 1);
    blas::gemm_reference(Trans::no, Trans::no, m, n, k, 1.5f, a.data(),
                         a.ld(), b.data(), b.ld(), -0.25f, c_ref.data(),
                         c_ref.ld());
    EXPECT_LE(max_abs_diff(c.view(), c_ref.view()),
              1e-5 * (static_cast<double>(k) + 1.0));
  }
}

// Float linear-combination packing and multi-destination epilogue: the
// fused Winograd surface sgefmm leans on.
TEST(KernelMatrixF, MultiTermMultiDestUnderEveryKernel) {
  const blas::GemmBlocking bk{24, 10, 18};
  const index_t m = 37, k = 29, n = 21;
  Rng rng(100);
  MatrixF a1 = random_matrix_f(m, k, rng);
  MatrixF a2t = random_matrix_f(k, m, rng);  // used through a transposed view
  MatrixF b1 = random_matrix_f(k, n, rng);
  MatrixF b2 = random_matrix_f(k, n, rng);
  MatrixF c1_0 = random_matrix_f(m, n, rng);

  // Reference: P = (A1 - A2t^T) * (0.5*B1 + 2*B2), then the two epilogues.
  MatrixF acomb(m, k), bcomb(k, n), p(m, n);
  for (index_t j = 0; j < k; ++j) {
    for (index_t i = 0; i < m; ++i) {
      acomb(i, j) = a1(i, j) - a2t(j, i);
    }
  }
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < k; ++i) {
      bcomb(i, j) = 0.5f * b1(i, j) + 2.0f * b2(i, j);
    }
  }
  p.fill(0.0f);
  blas::gemm_reference(Trans::no, Trans::no, m, n, k, 1.0f, acomb.data(),
                       acomb.ld(), bcomb.data(), bcomb.ld(), 0.0f, p.data(),
                       p.ld());

  for (const KernelArch arch : supported_arches()) {
    blas::ScopedKernel pin(arch);
    SCOPED_TRACE(blas::active_kernel_f().name);
    MatrixF c0(m, n), c1(m, n);
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) c0(i, j) = std::nanf("");
    }
    copy(c1_0.view(), c1.view());
    blas::PackCombF pa;
    pa.add(a1.view(), 1.0f);
    pa.add(make_op_view(Trans::transpose, a2t.data(), k, m, a2t.ld()),
           -1.0f);
    blas::PackCombF pb;
    pb.add(b1.view(), 0.5f);
    pb.add(b2.view(), 2.0f);
    const blas::WriteDestF dst[2] = {
        blas::write_dest(c0.view(), 1.0f, 0.0f),
        blas::write_dest(c1.view(), -2.0f, 0.5f),
    };
    blas::packed_gemm_multi(bk, m, n, k, pa, pb, dst, 2);
    const float tol = 1e-4f * (static_cast<float>(k) + 1.0f);
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        EXPECT_NEAR(c0(i, j), p(i, j), tol) << "dest 0 (" << i << "," << j
                                            << ")";
        EXPECT_NEAR(c1(i, j), -2.0f * p(i, j) + 0.5f * c1_0(i, j), tol)
            << "dest 1 (" << i << "," << j << ")";
      }
    }
  }
}

// Bitwise determinism of the fanned-out float skeleton, per kernel.
TEST(KernelMatrixF, ParallelPackedSgemmBitwiseEqualsSerialUnderEveryKernel) {
  const blas::GemmBlocking bk{24, 16, 32};
  const index_t m = 200, k = 48, n = 64;  // 9 mc blocks
  Rng rng(1002);
  MatrixF a = random_matrix_f(m, k, rng);
  MatrixF b = random_matrix_f(k, n, rng);
  MatrixF c0 = random_matrix_f(m, n, rng);
  for (const KernelArch arch : supported_arches()) {
    blas::ScopedKernel pin(arch);
    SCOPED_TRACE(blas::active_kernel_f().name);
    const blas::PackCombF pa = blas::pack_comb(a.view());
    const blas::PackCombF pb = blas::pack_comb(b.view());

    MatrixF serial(m, n);
    copy(c0.view(), serial.view());
    {
      blas::ScopedGemmThreads one(1);
      const blas::WriteDestF dst = blas::write_dest(serial.view(), 1.0f,
                                                    0.5f);
      blas::packed_gemm_multi(bk, m, n, k, pa, pb, &dst, 1);
    }
    for (const int threads : {2, 5, 9}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      MatrixF par(m, n);
      copy(c0.view(), par.view());
      blas::ScopedGemmThreads fan(threads);
      const blas::WriteDestF dst = blas::write_dest(par.view(), 1.0f, 0.5f);
      blas::packed_gemm_multi(bk, m, n, k, pa, pb, &dst, 1);
      EXPECT_EQ(std::memcmp(par.data(), serial.data(),
                            sizeof(float) * static_cast<std::size_t>(m) *
                                static_cast<std::size_t>(n)),
                0);
    }
  }
}

// ------------------------------------------------ parallel determinism

// The load-bearing reproducibility claim: the ic partition is a pure
// function of (m, mc, ntasks) and the pc loop is sequential, so every
// thread count yields byte-for-byte the same C. Checked for every kernel
// and several fan-out widths against the forced-serial run.
TEST(KernelMatrix, ParallelPackedGemmBitwiseEqualsSerialUnderEveryKernel) {
  const blas::GemmBlocking bk{24, 16, 32};
  const index_t m = 200, k = 48, n = 64;  // 9 mc blocks
  Rng rng(1001);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c0 = random_matrix(m, n, rng);
  for (const KernelArch arch : supported_arches()) {
    blas::ScopedKernel pin(arch);
    SCOPED_TRACE(blas::active_kernel().name);
    const blas::PackComb pa = blas::pack_comb(a.view());
    const blas::PackComb pb = blas::pack_comb(b.view());

    Matrix serial(m, n);
    copy(c0.view(), serial.view());
    {
      blas::ScopedGemmThreads one(1);
      const blas::WriteDest dst = blas::write_dest(serial.view(), 1.0, 0.5);
      blas::packed_gemm_multi(bk, m, n, k, pa, pb, &dst, 1);
    }
    Matrix c_ref(m, n);
    copy(c0.view(), c_ref.view());
    blas::gemm_reference(Trans::no, Trans::no, m, n, k, 1.0, a.data(),
                         a.ld(), b.data(), b.ld(), 0.5, c_ref.data(),
                         c_ref.ld());
    EXPECT_LE(max_abs_diff(serial.view(), c_ref.view()),
              1e-12 * (static_cast<double>(k) + 1.0));

    for (const int threads : {2, 5, 9}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      Matrix par(m, n);
      copy(c0.view(), par.view());
      blas::ScopedGemmThreads fan(threads);
      const blas::WriteDest dst = blas::write_dest(par.view(), 1.0, 0.5);
      blas::packed_gemm_multi(bk, m, n, k, pa, pb, &dst, 1);
      EXPECT_EQ(std::memcmp(par.data(), serial.data(),
                            sizeof(double) * static_cast<std::size_t>(m) *
                                static_cast<std::size_t>(n)),
                0);
    }
  }
}

TEST(GemmThreads, SettingClampsAndScopesRestore) {
  const int prev = blas::gemm_threads();
  blas::set_gemm_threads(-3);
  EXPECT_EQ(blas::gemm_threads(), 0);  // clamped into [0, kMaxGemmTasks]
  blas::set_gemm_threads(blas::kMaxGemmTasks + 100);
  EXPECT_EQ(blas::gemm_threads(), blas::kMaxGemmTasks);
  {
    blas::ScopedGemmThreads guard(3);
    EXPECT_EQ(blas::gemm_threads(), 3);
  }
  EXPECT_EQ(blas::gemm_threads(), blas::kMaxGemmTasks);
  blas::set_gemm_threads(prev);
}

TEST(GemmThreads, ResolutionIsDeterministicInShapeAndSetting) {
  const blas::GemmBlocking bk{32, 16, 64};
  {
    blas::ScopedGemmThreads one(1);
    EXPECT_EQ(blas::packed_gemm_threads(bk, 1000, 64, 64), 1);
  }
  blas::ScopedGemmThreads four(4);
  // Fewer than two ic blocks: always serial.
  EXPECT_EQ(blas::packed_gemm_threads(bk, 32, 64, 64), 1);
  EXPECT_EQ(blas::packed_gemm_threads(bk, 1000, 0, 64), 1);
  // Clamped to the mc-block count.
  EXPECT_EQ(blas::packed_gemm_threads(bk, 96, 64, 64), 3);
  // The setting caps the fan-out.
  EXPECT_EQ(blas::packed_gemm_threads(bk, 3200, 64, 64), 4);
  // Auto (0) resolves to the pool size, bounded by kMaxGemmTasks.
  blas::set_gemm_threads(0);
  const int resolved = blas::packed_gemm_threads(bk, 3200, 64, 64);
  EXPECT_GE(resolved, 1);
  EXPECT_LE(resolved, blas::kMaxGemmTasks);
}

// ------------------------------------------------------- stats plumbing

TEST(KernelStats, DgefmmRecordsKernelAndThreads) {
  const index_t m = 96, n = 96, k = 96;
  Rng rng(5);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c(m, n);
  c.fill(0.0);
  core::DgefmmStats stats;
  Arena arena;
  core::DgefmmConfig cfg;
  cfg.workspace = &arena;
  cfg.stats = &stats;
  ASSERT_EQ(core::dgefmm(Trans::no, Trans::no, m, n, k, 1.0, a.data(), m,
                         b.data(), k, 0.0, c.data(), m, cfg),
            0);
  ASSERT_NE(stats.kernel, nullptr);
  EXPECT_STREQ(stats.kernel, blas::active_kernel().name);
  EXPECT_GE(stats.gemm_threads, 1);
}

TEST(KernelStats, FannedOutDgefmmRecordsThreadsGreaterThanOne) {
  // m spans several mc blocks of every kernel's derived blocking (mc is
  // clamped to <= 1024), so a setting of 3 must resolve to >= 2.
  const index_t m = 2100, n = 48, k = 48;
  Rng rng(6);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c(m, n);
  c.fill(0.0);
  core::DgefmmStats stats;
  Arena arena;
  core::DgefmmConfig cfg;
  cfg.workspace = &arena;
  cfg.stats = &stats;
  blas::ScopedGemmThreads fan(3);
  ASSERT_EQ(core::dgefmm(Trans::no, Trans::no, m, n, k, 1.0, a.data(), m,
                         b.data(), k, 0.0, c.data(), m, cfg),
            0);
  EXPECT_GE(stats.gemm_threads, 2);
  Matrix c_ref(m, n);
  c_ref.fill(0.0);
  blas::gemm_reference(Trans::no, Trans::no, m, n, k, 1.0, a.data(), m,
                       b.data(), k, 0.0, c_ref.data(), m);
  EXPECT_LE(max_abs_diff(c.view(), c_ref.view()),
            1e-11 * (static_cast<double>(k) + 1.0));
}

// ------------------------------------------------- quadrant combines

// The Strassen quadrant adds route through the active kernel's vector
// helpers on unit-stride columns; transposed operands take the strided
// fallback. Both paths must agree with the elementwise definition for
// every kernel, including lengths that end in a SIMD tail.
TEST(KernelMatrix, QuadrantCombinesMatchElementwiseUnderEveryKernel) {
  const index_t m = 19, n = 3;  // odd length: exercises vector tails
  Rng rng(2024);
  Matrix x = random_matrix(m, n, rng);
  Matrix y = random_matrix(m, n, rng);
  Matrix xt = random_matrix(n, m, rng);  // transposed operand source
  const ConstView xtv = make_op_view(Trans::transpose, xt.data(), n, m,
                                     xt.ld());
  for (const KernelArch arch : supported_arches()) {
    blas::ScopedKernel pin(arch);
    SCOPED_TRACE(blas::active_kernel().name);
    for (const bool strided : {false, true}) {
      SCOPED_TRACE(strided ? "strided" : "unit-stride");
      const ConstView xv = strided ? xtv : ConstView(x.view());
      auto xat = [&](index_t i, index_t j) {
        return strided ? xt(j, i) : x(i, j);
      };
      Matrix d(m, n);

      core::add(xv, y.view(), d.view());
      for (index_t j = 0; j < n; ++j) {
        for (index_t i = 0; i < m; ++i) {
          EXPECT_DOUBLE_EQ(d(i, j), xat(i, j) + y(i, j));
        }
      }
      core::sub(xv, y.view(), d.view());
      for (index_t j = 0; j < n; ++j) {
        for (index_t i = 0; i < m; ++i) {
          EXPECT_DOUBLE_EQ(d(i, j), xat(i, j) - y(i, j));
        }
      }
      copy(y.view(), d.view());
      core::add_inplace(d.view(), xv);
      for (index_t j = 0; j < n; ++j) {
        for (index_t i = 0; i < m; ++i) {
          EXPECT_DOUBLE_EQ(d(i, j), y(i, j) + xat(i, j));
        }
      }
      copy(y.view(), d.view());
      core::sub_inplace(d.view(), xv);
      for (index_t j = 0; j < n; ++j) {
        for (index_t i = 0; i < m; ++i) {
          EXPECT_DOUBLE_EQ(d(i, j), y(i, j) - xat(i, j));
        }
      }
      copy(y.view(), d.view());
      core::rsub_inplace(d.view(), xv);
      for (index_t j = 0; j < n; ++j) {
        for (index_t i = 0; i < m; ++i) {
          EXPECT_DOUBLE_EQ(d(i, j), xat(i, j) - y(i, j));
        }
      }
      // copy_into and axpby with beta == 0 must tolerate NaN destinations.
      fill_nan(d.view());
      core::copy_into(xv, d.view());
      for (index_t j = 0; j < n; ++j) {
        for (index_t i = 0; i < m; ++i) {
          EXPECT_DOUBLE_EQ(d(i, j), xat(i, j));
        }
      }
      fill_nan(d.view());
      core::axpby(3.0, xv, 0.0, d.view());
      for (index_t j = 0; j < n; ++j) {
        for (index_t i = 0; i < m; ++i) {
          EXPECT_DOUBLE_EQ(d(i, j), 3.0 * xat(i, j));
        }
      }
      copy(y.view(), d.view());
      core::axpy(2.5, xv, d.view());
      for (index_t j = 0; j < n; ++j) {
        for (index_t i = 0; i < m; ++i) {
          EXPECT_DOUBLE_EQ(d(i, j), y(i, j) + 2.5 * xat(i, j));
        }
      }
      copy(y.view(), d.view());
      core::axpby(2.0, xv, -0.5, d.view());
      for (index_t j = 0; j < n; ++j) {
        for (index_t i = 0; i < m; ++i) {
          EXPECT_DOUBLE_EQ(d(i, j), 2.0 * xat(i, j) - 0.5 * y(i, j));
        }
      }
    }
  }
}

// ------------------------------------- worker warm-up, fault injection

// Every test leaves the process-global injector disarmed.
class KernelWarm : public ::testing::Test {
 protected:
  void TearDown() override { fi::disarm(); }
};

// Blockings larger than any cache-derived one (mc/kc/nc clamp to at most
// 1024/512/8192), so pool workers are guaranteed cold for them no matter
// what ran before in this process.
constexpr blas::GemmBlocking kColdBk{1048, 520, 8200};

TEST_F(KernelWarm, ColdWorkerScratchIsARealAllocation) {
  // Warm the calling thread first so the only cold scratch left belongs to
  // pool workers; then a single armed buffer_alloc fault must surface from
  // the pre-flight warm as std::bad_alloc -- proving the warm reaches the
  // workers and that skipping it would leave a live allocation site for
  // the no-fail compute region to trip over.
  blas::ensure_pack_capacity(kColdBk);
  fi::arm(1, fi::Site::buffer_alloc);
  EXPECT_THROW(blas::ensure_pack_capacity_all_workers(kColdBk),
               std::bad_alloc);
  fi::disarm();

  // The warm is idempotent: once it has succeeded, re-running it performs
  // no allocation at all (an armed fault stays armed).
  EXPECT_NO_THROW(blas::ensure_pack_capacity_all_workers(kColdBk));
  fi::arm(1, fi::Site::buffer_alloc);
  EXPECT_NO_THROW(blas::ensure_pack_capacity_all_workers(kColdBk));
  EXPECT_TRUE(fi::armed());
}

TEST_F(KernelWarm, FloatScratchIsSeparateFromDouble) {
  // Each element size owns its own pack scratch: warming the double side
  // must not satisfy the float side. A blocking slightly larger than
  // kColdBk guarantees both sides are cold for it here, regardless of what
  // earlier tests warmed.
  const blas::GemmBlocking bk{kColdBk.mc + 8, kColdBk.kc + 8, kColdBk.nc + 8};
  blas::ensure_pack_capacity<double>(bk);
  blas::ensure_pack_capacity_all_workers<double>(bk);
  // Double side fully warm; the float warm must still be a real allocation.
  fi::arm(1, fi::Site::buffer_alloc);
  EXPECT_THROW(blas::ensure_pack_capacity<float>(bk), std::bad_alloc);
  fi::disarm();
  EXPECT_NO_THROW(blas::ensure_pack_capacity_all_workers<float>(bk));
  // Both sides warm: neither re-warm allocates.
  fi::arm(1, fi::Site::buffer_alloc);
  EXPECT_NO_THROW(blas::ensure_pack_capacity_all_workers<double>(bk));
  EXPECT_NO_THROW(blas::ensure_pack_capacity_all_workers<float>(bk));
  EXPECT_TRUE(fi::armed());
}

TEST_F(KernelWarm, PinnedWarmTaskFaultSurfacesAsTaskError) {
  // The per-worker warm tasks run through the instrumented pool entry, so
  // a task-start fault during the pre-flight surfaces as the typed
  // TaskError (and never as a crash inside the compute phase).
  fi::arm(1, fi::Site::pool_task);
  EXPECT_THROW(blas::ensure_pack_capacity_all_workers(kColdBk), TaskError);
}

TEST_F(KernelWarm, WarmedFanOutComputeAllocatesNothing) {
  const blas::GemmBlocking bk{32, 24, 48};
  blas::ensure_pack_capacity_all_workers(bk);
  const index_t m = 300, k = 48, n = 64;
  Rng rng(31);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c(m, n);
  c.fill(0.0);
  blas::ScopedGemmThreads fan(6);
  fi::arm(1, fi::Site::buffer_alloc);
  const blas::PackComb pa = blas::pack_comb(a.view());
  const blas::PackComb pb = blas::pack_comb(b.view());
  const blas::WriteDest dst = blas::write_dest(c.view(), 1.0, 0.0);
  blas::packed_gemm_multi(bk, m, n, k, pa, pb, &dst, 1);
  // No task -- caller or worker -- constructed a buffer: the fault is
  // still pending, which is exactly the "no allocation inside the no-fail
  // region" property the DESIGN.md section 7 contract needs.
  EXPECT_TRUE(fi::armed());
  fi::disarm();
  Matrix c_ref(m, n);
  c_ref.fill(0.0);
  blas::gemm_reference(Trans::no, Trans::no, m, n, k, 1.0, a.data(), a.ld(),
                       b.data(), b.ld(), 0.0, c_ref.data(), c_ref.ld());
  EXPECT_LE(max_abs_diff(c.view(), c_ref.view()),
            1e-12 * (static_cast<double>(k) + 1.0));
}

TEST_F(KernelWarm, StrictPolicySweepWithFanOutLeavesCUntouched) {
  // Outcome-based sweep through the parallel driver pre-flight: fail the
  // Nth acquisition (any site) for every N until a run completes clean.
  // Strict policy means each faulted run throws with C byte-identical.
  const index_t m = 2100, n = 48, k = 48;
  Rng rng(67);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c0 = random_matrix(m, n, rng);
  Matrix c(m, n);
  const std::size_t c_bytes =
      sizeof(double) * static_cast<std::size_t>(m) *
      static_cast<std::size_t>(n);
  blas::ScopedGemmThreads fan(4);
  Arena arena;
  bool completed_clean = false;
  for (long countdown = 1; countdown <= 200 && !completed_clean;
       ++countdown) {
    SCOPED_TRACE("countdown=" + std::to_string(countdown));
    copy(c0.view(), c.view());
    core::DgefmmConfig cfg;
    cfg.workspace = &arena;
    cfg.on_failure = core::FailurePolicy::strict;
    fi::arm(countdown, fi::Site::any);
    try {
      ASSERT_EQ(core::dgefmm(Trans::no, Trans::no, m, n, k, 1.0, a.data(),
                             m, b.data(), k, 0.75, c.data(), m, cfg),
                0);
      if (fi::armed()) {
        // The countdown outlived every fallible acquisition: a clean run.
        completed_clean = true;
      } else {
        ADD_FAILURE() << "strict run completed although a fault fired";
        break;
      }
    } catch (const std::exception&) {
      EXPECT_FALSE(fi::armed());  // the throw must come from the injection
      EXPECT_EQ(std::memcmp(c.data(), c0.data(), c_bytes), 0)
          << "strict failure left C modified";
    }
    fi::disarm();
  }
  EXPECT_TRUE(completed_clean) << "sweep never reached a clean run";
}

// ---------------------------------------------------- composability

// Product-level tasks (parallel_strassen) and intra-GEMM fan-out compose:
// the same call is bitwise deterministic across gemm-thread settings and
// numerically matches the reference.
TEST(KernelMatrix, ParallelStrassenComposesWithIntraGemmFanOut) {
  const index_t m = 704, k = 160, n = 160;
  Rng rng(404);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c0 = random_matrix(m, n, rng);

  auto run = [&](int gemm_threads, Matrix& c) {
    copy(c0.view(), c.view());
    blas::ScopedGemmThreads fan(gemm_threads);
    parallel::ParallelDgefmmConfig cfg;
    cfg.scheme = core::Scheme::fused;
    ASSERT_EQ(parallel::dgefmm_parallel(Trans::no, Trans::no, m, n, k, 1.0,
                                        a.data(), m, b.data(), k, 0.5,
                                        c.data(), m, cfg),
              0);
  };
  Matrix serial(m, n), fanned(m, n);
  run(1, serial);
  run(4, fanned);
  EXPECT_EQ(std::memcmp(serial.data(), fanned.data(),
                        sizeof(double) * static_cast<std::size_t>(m) *
                            static_cast<std::size_t>(n)),
            0);

  Matrix c_ref(m, n);
  copy(c0.view(), c_ref.view());
  blas::gemm_reference(Trans::no, Trans::no, m, n, k, 1.0, a.data(), m,
                       b.data(), k, 0.5, c_ref.data(), m);
  EXPECT_LE(max_abs_diff(fanned.view(), c_ref.view()),
            1e-9 * (static_cast<double>(k) + 1.0));
}

// ------------------------------ memory-system knobs: bitwise invisibility

// Pack prefetch and huge-page advice are pure memory-system hints; under
// every kernel, every knob combination must produce bitwise-identical C
// for both the plain packed DGEMM and the fused Strassen schedule (the
// paths whose pack loops carry the prefetch inserts). A prefetch that
// perturbed a value or a combine order would show up here as a single
// differing bit.
TEST(KernelMatrix, PrefetchAndHugePageKnobsAreBitwiseInvisible) {
  const index_t m = 96, n = 88, k = 72;
  Rng rng(4242);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c0 = random_matrix(m, n, rng);
  const std::size_t bytes =
      sizeof(double) * static_cast<std::size_t>(m) *
      static_cast<std::size_t>(n);

  for (const KernelArch arch : supported_arches()) {
    blas::ScopedKernel pin(arch);
    SCOPED_TRACE(blas::active_kernel().name);

    const auto run_gemm = [&](bool pf, bool huge, Matrix& c) {
      blas::ScopedPackPrefetch prefetch(pf);
      ScopedHugePages hp(huge);
      copy(c0.view(), c.view());
      blas::dgemm(Trans::no, Trans::no, m, n, k, 1.25, a.data(), a.ld(),
                  b.data(), b.ld(), -0.5, c.data(), c.ld());
    };
    const auto run_fused = [&](bool pf, bool huge, Matrix& c) {
      blas::ScopedPackPrefetch prefetch(pf);
      ScopedHugePages hp(huge);
      copy(c0.view(), c.view());
      core::DgefmmConfig cfg;
      cfg.cutoff = core::CutoffCriterion::square_simple(24);
      cfg.scheme = core::Scheme::fused;
      ASSERT_EQ(core::dgefmm(Trans::no, Trans::no, m, n, k, 1.25, a.data(),
                             a.ld(), b.data(), b.ld(), -0.5, c.data(),
                             c.ld(), cfg),
                0);
    };

    Matrix gemm_base(m, n), fused_base(m, n), other(m, n);
    run_gemm(false, false, gemm_base);
    run_fused(false, false, fused_base);
    for (const bool pf : {false, true}) {
      for (const bool huge : {false, true}) {
        SCOPED_TRACE(std::string("prefetch=") + (pf ? "on" : "off") +
                     " hugepages=" + (huge ? "on" : "off"));
        run_gemm(pf, huge, other);
        EXPECT_EQ(std::memcmp(gemm_base.data(), other.data(), bytes), 0);
        run_fused(pf, huge, other);
        EXPECT_EQ(std::memcmp(fused_base.data(), other.data(), bytes), 0);
      }
    }
  }
}

// Float twin: the prefetch inserts live in the templated pack kernels, so
// the f32 instantiations carry them too.
TEST(KernelMatrixF, PrefetchKnobIsBitwiseInvisible) {
  const index_t m = 80, n = 64, k = 56;
  Rng rng(4343);
  MatrixF a = random_matrix_f(m, k, rng);
  MatrixF b = random_matrix_f(k, n, rng);
  MatrixF c0 = random_matrix_f(m, n, rng);
  const std::size_t bytes =
      sizeof(float) * static_cast<std::size_t>(m) *
      static_cast<std::size_t>(n);
  for (const KernelArch arch : supported_arches()) {
    blas::ScopedKernel pin(arch);
    SCOPED_TRACE(blas::active_kernel_f().name);
    const auto run = [&](bool pf, MatrixF& c) {
      blas::ScopedPackPrefetch prefetch(pf);
      copy(c0.view(), c.view());
      blas::sgemm(Trans::no, Trans::no, m, n, k, 1.25f, a.data(), a.ld(),
                  b.data(), b.ld(), -0.5f, c.data(), c.ld());
    };
    MatrixF base(m, n), other(m, n);
    run(false, base);
    run(true, other);
    EXPECT_EQ(std::memcmp(base.data(), other.data(), bytes), 0);
  }
}

}  // namespace
}  // namespace strassen
