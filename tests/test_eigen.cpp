// Tests for the eigensolver substrate: Jacobi, pivoted QR, and the ISDA
// divide-and-conquer solver with both GEMM backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "blas/gemm.hpp"
#include "eigen/householder_qr.hpp"
#include "eigen/isda.hpp"
#include "eigen/jacobi.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"

namespace strassen {
namespace {

using eigen::IsdaOptions;
using eigen::IsdaResult;

// ||A V - V diag(w)||_F
double residual(ConstView a, ConstView v, const std::vector<double>& w) {
  const index_t n = a.rows;
  Matrix av(n, n);
  blas::gemm_reference(Trans::no, Trans::no, n, n, n, 1.0, a.p, a.cs, v.p,
                       v.cs, 0.0, av.data(), n);
  double sum = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const double d = av(i, j) - v(i, j) * w[static_cast<std::size_t>(j)];
      sum += d * d;
    }
  }
  return std::sqrt(sum);
}

// ||V^T V - I||_F
double orthogonality_defect(ConstView v) {
  const index_t n = v.rows;
  Matrix vtv(n, n);
  blas::gemm_reference(Trans::transpose, Trans::no, n, n, n, 1.0, v.p, v.cs,
                       v.p, v.cs, 0.0, vtv.data(), n);
  double sum = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const double d = vtv(i, j) - (i == j ? 1.0 : 0.0);
      sum += d * d;
    }
  }
  return std::sqrt(sum);
}

// --------------------------------------------------------------- Jacobi

TEST(Jacobi, TwoByTwoKnown) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  Matrix v(2, 2);
  std::vector<double> w;
  eigen::jacobi_eigensolver(a.view(), v.view(), w);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_NEAR(w[0], 1.0, 1e-14);
  EXPECT_NEAR(w[1], 3.0, 1e-14);
}

TEST(Jacobi, DiagonalMatrixIsImmediate) {
  Matrix a(4, 4);
  fill(a.view(), 0.0);
  a(0, 0) = 4;
  a(1, 1) = -1;
  a(2, 2) = 2;
  a(3, 3) = 0.5;
  Matrix v(4, 4);
  std::vector<double> w;
  const int sweeps = eigen::jacobi_eigensolver(a.view(), v.view(), w);
  EXPECT_EQ(sweeps, 0);
  EXPECT_NEAR(w[0], -1.0, 1e-15);
  EXPECT_NEAR(w[3], 4.0, 1e-15);
}

TEST(Jacobi, RandomSymmetricResidualAndOrthogonality) {
  Rng rng(42);
  const index_t n = 30;
  Matrix a(n, n);
  fill_random_symmetric(a.view(), rng);
  Matrix a_copy(n, n);
  copy(a.view(), a_copy.view());
  Matrix v(n, n);
  std::vector<double> w;
  eigen::jacobi_eigensolver(a.view(), v.view(), w);
  EXPECT_LT(residual(a_copy.view(), v.view(), w), 1e-11);
  EXPECT_LT(orthogonality_defect(v.view()), 1e-12);
  EXPECT_TRUE(std::is_sorted(w.begin(), w.end()));
}

TEST(Jacobi, TraceAndEigenvalueSumAgree) {
  Rng rng(11);
  const index_t n = 20;
  Matrix a(n, n);
  fill_random_symmetric(a.view(), rng);
  double trace = 0.0;
  for (index_t i = 0; i < n; ++i) trace += a(i, i);
  Matrix v(n, n);
  std::vector<double> w;
  eigen::jacobi_eigensolver(a.view(), v.view(), w);
  double sum = 0.0;
  for (double x : w) sum += x;
  EXPECT_NEAR(sum, trace, 1e-11);
}

// ------------------------------------------------------------------- QR

TEST(PivotedQr, ReconstructsMatrix) {
  Rng rng(7);
  Matrix a = random_matrix(12, 9, rng);
  const eigen::PivotedQr f = eigen::qr_factor_pivoted(a.view());
  Matrix q = eigen::form_q(f);
  EXPECT_LT(orthogonality_defect(q.view()), 1e-13);
  // Rebuild A(:, jpvt) = Q * R.
  Matrix r(12, 9);
  fill(r.view(), 0.0);
  for (index_t j = 0; j < 9; ++j) {
    for (index_t i = 0; i <= std::min<index_t>(j, 11); ++i) {
      r(i, j) = f.qr(i, j);
    }
  }
  Matrix qr(12, 9);
  blas::gemm_reference(Trans::no, Trans::no, 12, 9, 12, 1.0, q.data(), 12,
                       r.data(), 12, 0.0, qr.data(), 12);
  for (index_t j = 0; j < 9; ++j) {
    const index_t src = f.jpvt[static_cast<std::size_t>(j)];
    for (index_t i = 0; i < 12; ++i) {
      EXPECT_NEAR(qr(i, j), a(i, src), 1e-12);
    }
  }
}

TEST(PivotedQr, RevealsRankOfLowRankMatrix) {
  // A = X Y^T with X, Y of width 3 => rank 3.
  Rng rng(9);
  const index_t n = 20, r = 3;
  Matrix x = random_matrix(n, r, rng);
  Matrix y = random_matrix(n, r, rng);
  Matrix a(n, n);
  blas::gemm_reference(Trans::no, Trans::transpose, n, n, r, 1.0, x.data(), n,
                       y.data(), n, 0.0, a.data(), n);
  const eigen::PivotedQr f = eigen::qr_factor_pivoted(a.view());
  EXPECT_EQ(f.rank(1e-10), r);
}

TEST(PivotedQr, DiagonalOfRIsNonIncreasing) {
  Rng rng(3);
  Matrix a = random_matrix(15, 15, rng);
  const eigen::PivotedQr f = eigen::qr_factor_pivoted(a.view());
  for (index_t i = 1; i < 15; ++i) {
    EXPECT_LE(std::abs(f.qr(i, i)), std::abs(f.qr(i - 1, i - 1)) + 1e-12);
  }
}

TEST(PivotedQr, ZeroMatrixHasRankZero) {
  Matrix a(6, 6);
  fill(a.view(), 0.0);
  const eigen::PivotedQr f = eigen::qr_factor_pivoted(a.view());
  EXPECT_EQ(f.rank(), 0);
  Matrix q = eigen::form_q(f);
  EXPECT_LT(orthogonality_defect(q.view()), 1e-14);  // Q == I
}

// ----------------------------------------------------------------- ISDA

TEST(Isda, MatchesJacobiOnRandomSymmetric) {
  Rng rng(21);
  const index_t n = 60;
  Matrix a(n, n);
  fill_random_symmetric(a.view(), rng);

  Matrix aj(n, n);
  copy(a.view(), aj.view());
  Matrix vj(n, n);
  std::vector<double> wj;
  eigen::jacobi_eigensolver(aj.view(), vj.view(), wj);

  IsdaOptions opts;
  opts.base_size = 12;
  const IsdaResult res = eigen::isda_eigensolver(a.view(), opts);
  ASSERT_EQ(res.eigenvalues.size(), static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(res.eigenvalues[static_cast<std::size_t>(i)],
                wj[static_cast<std::size_t>(i)], 1e-8)
        << "eigenvalue " << i;
  }
  EXPECT_LT(residual(a.view(), res.eigenvectors.view(), res.eigenvalues),
            1e-7);
  EXPECT_LT(orthogonality_defect(res.eigenvectors.view()), 1e-9);
  EXPECT_GT(res.stats.splits, 0);
  EXPECT_GT(res.stats.gemm_calls, 0);
  EXPECT_GT(res.stats.mm_seconds, 0.0);
}

TEST(Isda, BaseCaseOnlyForSmallMatrix) {
  Rng rng(5);
  const index_t n = 10;
  Matrix a(n, n);
  fill_random_symmetric(a.view(), rng);
  IsdaOptions opts;
  opts.base_size = 32;  // n < base => single Jacobi block
  const IsdaResult res = eigen::isda_eigensolver(a.view(), opts);
  EXPECT_EQ(res.stats.jacobi_blocks, 1);
  EXPECT_EQ(res.stats.splits, 0);
  EXPECT_LT(residual(a.view(), res.eigenvectors.view(), res.eigenvalues),
            1e-10);
}

TEST(Isda, IdentityMatrix) {
  const index_t n = 40;
  Matrix a(n, n);
  set_identity(a.view());
  IsdaOptions opts;
  opts.base_size = 8;
  const IsdaResult res = eigen::isda_eigensolver(a.view(), opts);
  for (double w : res.eigenvalues) EXPECT_NEAR(w, 1.0, 1e-12);
  EXPECT_LT(orthogonality_defect(res.eigenvectors.view()), 1e-10);
}

TEST(Isda, ClusteredSpectrum) {
  // Two tight clusters: eigenvalues near 1 and near 5.
  Rng rng(33);
  const index_t n = 32;
  Matrix d(n, n);
  fill(d.view(), 0.0);
  for (index_t i = 0; i < n; ++i) {
    d(i, i) = (i < n / 2 ? 1.0 : 5.0) + 1e-6 * rng.uniform();
  }
  // Conjugate by a random orthogonal Q (from QR of a random matrix).
  Matrix g = random_matrix(n, n, rng);
  const eigen::PivotedQr f = eigen::qr_factor_pivoted(g.view());
  Matrix q = eigen::form_q(f);
  Matrix t(n, n), a(n, n);
  blas::gemm_reference(Trans::no, Trans::no, n, n, n, 1.0, q.data(), n,
                       d.data(), n, 0.0, t.data(), n);
  blas::gemm_reference(Trans::no, Trans::transpose, n, n, n, 1.0, t.data(), n,
                       q.data(), n, 0.0, a.data(), n);

  IsdaOptions opts;
  opts.base_size = 8;
  const IsdaResult res = eigen::isda_eigensolver(a.view(), opts);
  EXPECT_LT(residual(a.view(), res.eigenvectors.view(), res.eigenvalues),
            1e-7);
  // Half the spectrum near 1, half near 5.
  for (index_t i = 0; i < n / 2; ++i) {
    EXPECT_NEAR(res.eigenvalues[static_cast<std::size_t>(i)], 1.0, 1e-4);
  }
  for (index_t i = n / 2; i < n; ++i) {
    EXPECT_NEAR(res.eigenvalues[static_cast<std::size_t>(i)], 5.0, 1e-4);
  }
}

TEST(Isda, DgefmmBackendAgreesWithDgemmBackend) {
  Rng rng(77);
  const index_t n = 48;
  Matrix a(n, n);
  fill_random_symmetric(a.view(), rng);
  IsdaOptions base;
  base.base_size = 12;
  base.gemm = eigen::gemm_backend_dgemm();
  IsdaOptions fast = base;
  fast.gemm = eigen::gemm_backend_dgefmm();
  const IsdaResult r1 = eigen::isda_eigensolver(a.view(), base);
  const IsdaResult r2 = eigen::isda_eigensolver(a.view(), fast);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(r1.eigenvalues[static_cast<std::size_t>(i)],
                r2.eigenvalues[static_cast<std::size_t>(i)], 1e-8);
  }
  EXPECT_LT(residual(a.view(), r2.eigenvectors.view(), r2.eigenvalues), 1e-7);
}

TEST(PivotedQr, WideMatrix) {
  Rng rng(13);
  Matrix a = random_matrix(7, 12, rng);  // wide: kmax = 7 reflectors
  const eigen::PivotedQr f = eigen::qr_factor_pivoted(a.view());
  Matrix q = eigen::form_q(f);
  EXPECT_EQ(q.rows(), 7);
  EXPECT_LT(orthogonality_defect(q.view()), 1e-13);
  // Reconstruct all 12 permuted columns through Q R.
  Matrix r(7, 12);
  fill(r.view(), 0.0);
  for (index_t j = 0; j < 12; ++j) {
    for (index_t i = 0; i <= std::min<index_t>(j, 6); ++i) r(i, j) = f.qr(i, j);
  }
  Matrix qr(7, 12);
  blas::gemm_reference(Trans::no, Trans::no, 7, 12, 7, 1.0, q.data(), 7,
                       r.data(), 7, 0.0, qr.data(), 7);
  for (index_t j = 0; j < 12; ++j) {
    const index_t src = f.jpvt[static_cast<std::size_t>(j)];
    for (index_t i = 0; i < 7; ++i) EXPECT_NEAR(qr(i, j), a(i, src), 1e-12);
  }
}

TEST(Isda, OddSizeProblem) {
  // Odd n exercises odd-size splits (r and s - r both arbitrary).
  Rng rng(55);
  const index_t n = 57;
  Matrix a(n, n);
  fill_random_symmetric(a.view(), rng);
  eigen::IsdaOptions opts;
  opts.base_size = 9;
  const eigen::IsdaResult res = eigen::isda_eigensolver(a.view(), opts);
  EXPECT_LT(residual(a.view(), res.eigenvectors.view(), res.eigenvalues),
            1e-7);
  EXPECT_LT(orthogonality_defect(res.eigenvectors.view()), 1e-9);
}

TEST(Isda, NegativeAndPositiveSpectrum) {
  // Indefinite matrix: eigenvalues straddle zero; the bisection must still
  // find balanced split points.
  Rng rng(56);
  const index_t n = 40;
  Matrix d(n, n);
  fill(d.view(), 0.0);
  for (index_t i = 0; i < n; ++i) {
    d(i, i) = -10.0 + 20.0 * double(i) / double(n - 1);
  }
  Matrix g = random_matrix(n, n, rng);
  const eigen::PivotedQr f = eigen::qr_factor_pivoted(g.view());
  Matrix q = eigen::form_q(f);
  Matrix t(n, n), a(n, n);
  blas::gemm_reference(Trans::no, Trans::no, n, n, n, 1.0, q.data(), n,
                       d.data(), n, 0.0, t.data(), n);
  blas::gemm_reference(Trans::no, Trans::transpose, n, n, n, 1.0, t.data(),
                       n, q.data(), n, 0.0, a.data(), n);
  eigen::IsdaOptions opts;
  opts.base_size = 8;
  const eigen::IsdaResult res = eigen::isda_eigensolver(a.view(), opts);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(res.eigenvalues[static_cast<std::size_t>(i)],
                -10.0 + 20.0 * double(i) / double(n - 1), 1e-7);
  }
}

TEST(Isda, OneByOneAndTwoByTwo) {
  Matrix a1(1, 1);
  a1(0, 0) = 3.5;
  const eigen::IsdaResult r1 = eigen::isda_eigensolver(a1.view());
  ASSERT_EQ(r1.eigenvalues.size(), 1u);
  EXPECT_DOUBLE_EQ(r1.eigenvalues[0], 3.5);

  Matrix a2(2, 2);
  a2(0, 0) = 2;
  a2(0, 1) = 1;
  a2(1, 0) = 1;
  a2(1, 1) = 2;
  const eigen::IsdaResult r2 = eigen::isda_eigensolver(a2.view());
  EXPECT_NEAR(r2.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(r2.eigenvalues[1], 3.0, 1e-12);
}

TEST(Isda, EigenvaluesSortedAscending) {
  Rng rng(2);
  const index_t n = 50;
  Matrix a(n, n);
  fill_random_symmetric(a.view(), rng);
  IsdaOptions opts;
  opts.base_size = 10;
  const IsdaResult res = eigen::isda_eigensolver(a.view(), opts);
  EXPECT_TRUE(
      std::is_sorted(res.eigenvalues.begin(), res.eigenvalues.end()));
}

}  // namespace
}  // namespace strassen
