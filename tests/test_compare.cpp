// Tests for the comparator codes (DGEMMW-, DGEMMS-, SGEMMS-like): numerical
// agreement with the reference GEMM and the Table 1 memory relationships.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "blas/gemm.hpp"
#include "compare/dgemms_like.hpp"
#include "compare/dgemmw_like.hpp"
#include "compare/sgemms_like.hpp"
#include "core/dgefmm.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"

namespace strassen {
namespace {

struct Shape {
  index_t m, n, k;
};

const std::vector<Shape> kShapes = {
    {32, 32, 32}, {33, 33, 33}, {64, 64, 64}, {65, 63, 61},
    {40, 96, 24}, {96, 24, 40}, {101, 97, 89},
};

double tol_for(index_t k) { return 1e-11 * (static_cast<double>(k) + 10.0); }

class ComparatorCorrectness : public ::testing::TestWithParam<int> {};

TEST_P(ComparatorCorrectness, DgemmwMatchesReference) {
  const Shape s = kShapes[static_cast<std::size_t>(GetParam())];
  Rng rng(17);
  Matrix a = random_matrix(s.m, s.k, rng);
  Matrix b = random_matrix(s.k, s.n, rng);
  for (const auto& [alpha, beta] :
       {std::pair{1.0, 0.0}, std::pair{2.0, 0.5}, std::pair{-1.0, 1.0}}) {
    Matrix c = random_matrix(s.m, s.n, rng);
    Matrix c_ref(s.m, s.n);
    copy(c.view(), c_ref.view());
    compare::DgemmwConfig cfg;
    cfg.tau = 8.0;  // force deep recursion at test sizes
    ASSERT_EQ(compare::dgemmw(Trans::no, Trans::no, s.m, s.n, s.k, alpha,
                              a.data(), a.ld(), b.data(), b.ld(), beta,
                              c.data(), c.ld(), cfg),
              0);
    blas::gemm_reference(Trans::no, Trans::no, s.m, s.n, s.k, alpha, a.data(),
                         a.ld(), b.data(), b.ld(), beta, c_ref.data(),
                         c_ref.ld());
    EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), tol_for(s.k))
        << "alpha=" << alpha << " beta=" << beta;
  }
}

TEST_P(ComparatorCorrectness, DgemmsMatchesReference) {
  const Shape s = kShapes[static_cast<std::size_t>(GetParam())];
  Rng rng(18);
  Matrix a = random_matrix(s.m, s.k, rng);
  Matrix b = random_matrix(s.k, s.n, rng);
  Matrix c(s.m, s.n), c_ref(s.m, s.n);
  fill(c.view(), std::nan(""));
  fill(c_ref.view(), 0.0);
  compare::DgemmsConfig cfg;
  cfg.tau = 8.0;
  ASSERT_EQ(compare::dgemms(Trans::no, Trans::no, s.m, s.n, s.k, a.data(),
                            a.ld(), b.data(), b.ld(), c.data(), c.ld(), cfg),
            0);
  blas::gemm_reference(Trans::no, Trans::no, s.m, s.n, s.k, 1.0, a.data(),
                       a.ld(), b.data(), b.ld(), 0.0, c_ref.data(),
                       c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), tol_for(s.k));
}

TEST_P(ComparatorCorrectness, SgemmsMatchesReference) {
  const Shape s = kShapes[static_cast<std::size_t>(GetParam())];
  Rng rng(19);
  Matrix a = random_matrix(s.m, s.k, rng);
  Matrix b = random_matrix(s.k, s.n, rng);
  for (const auto& [alpha, beta] :
       {std::pair{1.0, 0.0}, std::pair{0.5, -2.0}}) {
    Matrix c = random_matrix(s.m, s.n, rng);
    Matrix c_ref(s.m, s.n);
    copy(c.view(), c_ref.view());
    compare::SgemmsConfig cfg;
    cfg.tau = 8.0;
    ASSERT_EQ(compare::sgemms(Trans::no, Trans::no, s.m, s.n, s.k, alpha,
                              a.data(), a.ld(), b.data(), b.ld(), beta,
                              c.data(), c.ld(), cfg),
              0);
    blas::gemm_reference(Trans::no, Trans::no, s.m, s.n, s.k, alpha, a.data(),
                         a.ld(), b.data(), b.ld(), beta, c_ref.data(),
                         c_ref.ld());
    EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), tol_for(s.k))
        << "alpha=" << alpha << " beta=" << beta;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ComparatorCorrectness,
                         ::testing::Range(0,
                                          static_cast<int>(kShapes.size())));

TEST(ComparatorTranspose, SgemmsHandlesTransposes) {
  Rng rng(23);
  const index_t m = 48, n = 44, k = 52;
  Matrix a = random_matrix(k, m, rng);  // stored for op(A) = A^T
  Matrix b = random_matrix(n, k, rng);  // stored for op(B) = B^T
  Matrix c(m, n), c_ref(m, n);
  fill(c.view(), 0.0);
  fill(c_ref.view(), 0.0);
  compare::SgemmsConfig cfg;
  cfg.tau = 8.0;
  ASSERT_EQ(compare::sgemms(Trans::transpose, Trans::transpose, m, n, k, 1.0,
                            a.data(), a.ld(), b.data(), b.ld(), 0.0, c.data(),
                            c.ld(), cfg),
            0);
  blas::gemm_reference(Trans::transpose, Trans::transpose, m, n, k, 1.0,
                       a.data(), a.ld(), b.data(), b.ld(), 0.0, c_ref.data(),
                       c_ref.ld());
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), tol_for(k));
}

// --------------------------------------------------------- Table 1 memory

TEST(ComparatorMemory, Table1OrderingHolds) {
  // For square order-m problems Table 1 orders the codes (per beta case):
  //   beta == 0 : DGEFMM == DGEMMW (2/3 m^2)  <  DGEMMS  <  SGEMMS
  //   beta != 0 : DGEFMM (m^2)  <  DGEMMW (5/3 m^2)  <  SGEMMS (>= 7/3 m^2)
  const index_t m = 512;
  core::DgefmmConfig dgefmm_cfg;
  dgefmm_cfg.cutoff = core::CutoffCriterion::square_simple(8);
  compare::DgemmwConfig w_cfg;
  w_cfg.tau = 8.0;
  compare::DgemmsConfig s_cfg;
  s_cfg.tau = 8.0;
  compare::SgemmsConfig cray_cfg;
  cray_cfg.tau = 8.0;

  const count_t dgefmm_b0 =
      core::dgefmm_workspace_doubles(m, m, m, 0.0, dgefmm_cfg);
  const count_t dgefmm_gen =
      core::dgefmm_workspace_doubles(m, m, m, 1.0, dgefmm_cfg);
  const count_t w_b0 = compare::dgemmw_workspace_doubles(m, m, m, 0.0, w_cfg);
  const count_t w_gen = compare::dgemmw_workspace_doubles(m, m, m, 1.0, w_cfg);
  const count_t essl = compare::dgemms_workspace_doubles(m, m, m, s_cfg);
  const count_t cray = compare::sgemms_workspace_doubles(m, m, m, cray_cfg);

  EXPECT_EQ(dgefmm_b0, w_b0);  // same beta == 0 scheme
  EXPECT_LT(dgefmm_b0, essl);
  EXPECT_LT(essl, cray);
  EXPECT_LT(dgefmm_gen, w_gen);
  EXPECT_LT(w_gen, cray);

  const double m2 = static_cast<double>(m) * m;
  // Coefficients close to Table 1 (truncated geometric sums sit slightly
  // below the asymptotic values).
  EXPECT_NEAR(static_cast<double>(dgefmm_b0) / m2, 2.0 / 3.0, 0.02);
  EXPECT_NEAR(static_cast<double>(dgefmm_gen) / m2, 1.0, 0.02);
  EXPECT_NEAR(static_cast<double>(w_gen) / m2, 5.0 / 3.0, 0.02);
  EXPECT_GE(static_cast<double>(cray) / m2, 7.0 / 3.0 - 0.05);
}

TEST(ComparatorMemory, PaperReductionClaims) {
  // "for certain cases our memory requirements have been reduced by 40 to
  // more than 70 percent over these other codes": DGEFMM general (m^2) vs
  // DGEMMW general (5/3 m^2) is a 40% reduction; vs the CRAY code
  // (>= 7/3 m^2) it is > 57%.
  const index_t m = 512;
  core::DgefmmConfig dgefmm_cfg;
  dgefmm_cfg.cutoff = core::CutoffCriterion::square_simple(8);
  compare::DgemmwConfig w_cfg;
  w_cfg.tau = 8.0;
  compare::SgemmsConfig cray_cfg;
  cray_cfg.tau = 8.0;
  const double dgefmm_gen = static_cast<double>(
      core::dgefmm_workspace_doubles(m, m, m, 1.0, dgefmm_cfg));
  const double w_gen = static_cast<double>(
      compare::dgemmw_workspace_doubles(m, m, m, 1.0, w_cfg));
  const double cray = static_cast<double>(
      compare::sgemms_workspace_doubles(m, m, m, cray_cfg));
  EXPECT_NEAR(1.0 - dgefmm_gen / w_gen, 0.40, 0.03);
  EXPECT_GT(1.0 - dgefmm_gen / cray, 0.55);
}

TEST(ComparatorMemory, MeasuredPeakMatchesPredictorSgemms) {
  const index_t m = 65, n = 63, k = 61;
  compare::SgemmsConfig cfg;
  cfg.tau = 8.0;
  Arena arena;
  cfg.workspace = &arena;
  Rng rng(4);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c(m, n);
  fill(c.view(), 0.0);
  ASSERT_EQ(compare::sgemms(Trans::no, Trans::no, m, n, k, 1.0, a.data(), m,
                            b.data(), k, 0.0, c.data(), m, cfg),
            0);
  EXPECT_EQ(static_cast<count_t>(arena.peak()),
            compare::sgemms_workspace_doubles(m, n, k, cfg));
}

TEST(ComparatorMemory, MeasuredPeakMatchesPredictorDgemmw) {
  const index_t m = 80, n = 72, k = 66;
  for (double beta : {0.0, 1.0}) {
    compare::DgemmwConfig cfg;
    cfg.tau = 8.0;
    Arena arena;
    cfg.workspace = &arena;
    Rng rng(4);
    Matrix a = random_matrix(m, k, rng);
    Matrix b = random_matrix(k, n, rng);
    Matrix c = random_matrix(m, n, rng);
    ASSERT_EQ(compare::dgemmw(Trans::no, Trans::no, m, n, k, 1.0, a.data(), m,
                              b.data(), k, beta, c.data(), m, cfg),
              0);
    EXPECT_EQ(static_cast<count_t>(arena.peak()),
              compare::dgemmw_workspace_doubles(m, n, k, beta, cfg))
        << "beta=" << beta;
  }
}

TEST(ComparatorArgs, InfoCodes) {
  Matrix a(8, 8), b(8, 8), c(8, 8);
  EXPECT_EQ(compare::sgemms(Trans::no, Trans::no, -1, 8, 8, 1.0, a.data(), 8,
                            b.data(), 8, 0.0, c.data(), 8),
            3);
  EXPECT_EQ(compare::sgemms(Trans::no, Trans::no, 8, 8, 8, 1.0, a.data(), 4,
                            b.data(), 8, 0.0, c.data(), 8),
            8);
  compare::DgemmwConfig cfg;
  EXPECT_EQ(compare::dgemmw(Trans::no, Trans::no, 8, 8, 8, 1.0, a.data(), 8,
                            b.data(), 8, 1.0, c.data(), 4, cfg),
            13);
}

}  // namespace
}  // namespace strassen
