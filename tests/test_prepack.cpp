// Prepacked-operand tests (DESIGN.md section 15).
//
// Three contracts are pinned here:
//
//  1. Bitwise parity: a product that streams panels from a prepacked
//     handle (or the fused sweep's panel cache) produces exactly the bytes
//     a fresh-packing run produces -- memcmp equality, not a tolerance --
//     across kernels, element types, thread counts, and schedules
//     (including schedules that ignore the handles entirely).
//  2. Hard-miss discipline: any stamp or source-identity mismatch (stale
//     kernel, wrong view, wrong side) refuses the handle and falls back to
//     fresh packing, counting a pack miss -- never a partial answer.
//  3. Failure contracts over the new fallible acquisition site (the
//     handle's owned image buffer): strict callers see the typed error
//     with C untouched, the C ABI maps it to STRASSEN_INFO_ALLOC, and a
//     driver call holding handles keeps the section-7 sweep contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/kernels.hpp"
#include "blas/machine.hpp"
#include "blas/pack_operand.hpp"
#include "blas/packed_loop.hpp"
#include "core/cabi.hpp"
#include "core/dgefmm.hpp"
#include "core/sgefmm.hpp"
#include "core/winograd_fused.hpp"
#include "core/workspace.hpp"
#include "serve/serve.hpp"
#include "serve/serve_cabi.hpp"
#include "support/faultinject.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"

namespace strassen {
namespace {

namespace fi = faultinject;

using core::CutoffCriterion;
using core::FailurePolicy;
using core::Scheme;

template <class T>
BasicView<const T> cview(const MatrixT<T>& m) {
  return m.view();
}

template <class T>
MatrixT<T> random_matrix_t(index_t m, index_t n, Rng& rng) {
  if constexpr (std::is_same_v<T, float>) {
    return random_matrix_f(m, n, rng);
  } else {
    return random_matrix(m, n, rng);
  }
}

template <class T>
int gefmm_t(index_t m, index_t n, index_t k, T alpha, const T* a, index_t lda,
            const T* b, index_t ldb, T beta, T* c, index_t ldc,
            const core::GefmmConfigT<T>& cfg) {
  if constexpr (std::is_same_v<T, float>) {
    return core::sgefmm(Trans::no, Trans::no, m, n, k, alpha, a, lda, b, ldb,
                        beta, c, ldc, cfg);
  } else {
    return core::dgefmm(Trans::no, Trans::no, m, n, k, alpha, a, lda, b, ldb,
                        beta, c, ldc, cfg);
  }
}

template <class T>
void expect_bitwise(const MatrixT<T>& got, const MatrixT<T>& want,
                    const char* what) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        static_cast<std::size_t>(got.rows()) *
                            static_cast<std::size_t>(got.cols()) * sizeof(T)),
            0)
      << what << ": prepacked result is not bitwise identical";
}

// ---------------------------------------------------------------------------
// Handle geometry and the low-level streamed GEMM.

TEST(PackOperand, SizeQueriesMatchClosedFormGeometry) {
  const blas::GemmBlocking bk =
      blas::blocking_for_t<double>(blas::active_machine());
  const blas::KernelInfo& kv = blas::active_kernel();
  // Exercise strip remainders on both sides of every blocking parameter.
  for (const index_t m : {index_t{8}, index_t{40}, bk.mc + 8}) {
    for (const index_t k : {index_t{16}, bk.kc + 8}) {
      EXPECT_EQ(blas::gefmm_pack_a_elements<double>(m, k),
                blas::packed_a_total(bk, kv.mr, m, k));
      EXPECT_EQ(blas::gefmm_pack_b_elements<double>(k, m),
                blas::packed_b_total(bk, kv.nr, k, m));
    }
  }
}

template <class T>
void streamed_gemm_bitwise_equals_fresh() {
  const index_t m = 24, n = 96, k = 40;
  Rng rng(501);
  MatrixT<T> a = random_matrix_t<T>(m, k, rng);
  MatrixT<T> b = random_matrix_t<T>(k, n, rng);
  MatrixT<T> c0 = random_matrix_t<T>(m, n, rng);
  const T alpha = T(1.5), beta = T(0.25);

  MatrixT<T> want(m, n);
  copy(c0.view(), want.view());
  blas::gemm_view(alpha, cview(a), cview(b), beta, want.view());

  const blas::PackedOperandT<T> pa = blas::gefmm_pack_a<T>(cview(a));
  const blas::PackedOperandT<T> pb = blas::gefmm_pack_b<T>(cview(b));
  ASSERT_TRUE(pa.valid());
  ASSERT_TRUE(pb.valid());

  struct Case {
    const blas::PackedOperandT<T>* pa;
    const blas::PackedOperandT<T>* pb;
    const char* name;
  };
  const Case cases[] = {{&pa, nullptr, "A only"},
                        {nullptr, &pb, "B only"},
                        {&pa, &pb, "A and B"}};
  for (const Case& cs : cases) {
    MatrixT<T> c(m, n);
    copy(c0.view(), c.view());
    ASSERT_TRUE(blas::gemm_view_prepacked(alpha, cview(a),
                                          cview(b), beta, c.view(),
                                          cs.pa, cs.pb))
        << cs.name;
    expect_bitwise(c, want, cs.name);
  }
}

TEST(PackOperand, StreamedGemmBitwiseEqualsFreshDouble) {
  streamed_gemm_bitwise_equals_fresh<double>();
}

TEST(PackOperand, StreamedGemmBitwiseEqualsFreshFloat) {
  streamed_gemm_bitwise_equals_fresh<float>();
}

TEST(PackOperand, ConsultIsHardMissOnSourceIdentityMismatch) {
  const index_t m = 16, k = 24;
  Rng rng(502);
  Matrix a = random_matrix(m, k, rng);
  Matrix other = random_matrix(m, k, rng);
  const blas::PackedOperand pa = blas::gefmm_pack_a<double>(cview(a));

  EXPECT_TRUE(blas::packed_operand_matches(pa, 'a', cview(a)));
  // Wrong side, wrong base, wrong shape: each alone is a hard miss.
  EXPECT_FALSE(blas::packed_operand_matches(pa, 'b', cview(a)));
  EXPECT_FALSE(blas::packed_operand_matches(pa, 'a', cview(other)));
  ConstView shrunk = cview(a);
  shrunk.rows -= 1;
  EXPECT_FALSE(blas::packed_operand_matches(pa, 'a', shrunk));

  // A mismatched handle makes the streamed entry refuse without touching C.
  Matrix b = random_matrix(k, m, rng);
  Matrix c = random_matrix(m, m, rng);
  Matrix snapshot(m, m);
  copy(c.view(), snapshot.view());
  const blas::PackedOperand stale = blas::gefmm_pack_a<double>(
      cview(other));
  EXPECT_FALSE(blas::gemm_view_prepacked(1.0, cview(a), cview(b),
                                         0.0, c.view(), &stale, nullptr));
  expect_bitwise(c, snapshot, "refused consult must not touch C");
}

TEST(PackOperand, ConsultIsHardMissAfterKernelSwitch) {
  const index_t k = 24, n = 16;
  Rng rng(503);
  Matrix b = random_matrix(k, n, rng);
  const blas::PackedOperand pb = blas::gefmm_pack_b<double>(cview(b));
  ASSERT_TRUE(blas::packed_operand_matches(pb, 'b', cview(b)));

  const blas::KernelArch active = blas::active_kernel().arch;
  for (const blas::KernelArch arch : blas::kAllKernelArches) {
    if (arch == active || !blas::kernel_supported(arch)) continue;
    blas::ScopedKernel pin(arch);
    EXPECT_FALSE(blas::packed_operand_matches(pb, 'b', cview(b)))
        << "image packed under " << pb.kernel << " consulted under "
        << blas::active_kernel().name;
  }
}

TEST(PackOperand, CallerStoragePackMatchesOwnedImage) {
  const index_t k = 40, n = 24;
  Rng rng(504);
  Matrix b = random_matrix(k, n, rng);
  const blas::PackedOperand owned = blas::gefmm_pack_b<double>(cview(b));

  const std::size_t elems = blas::gefmm_pack_b_elements<double>(k, n);
  ASSERT_EQ(owned.elems, elems);
  AlignedBuffer storage(elems);
  const blas::PackedOperand ext =
      blas::gefmm_pack_b<double>(cview(b), storage.data(), elems);
  EXPECT_EQ(ext.data(), storage.data());
  EXPECT_EQ(std::memcmp(owned.data(), ext.data(), elems * sizeof(double)), 0)
      << "caller-storage image must equal the owned image byte for byte";

  // Undersized caller storage is a typed error, not a truncated image.
  EXPECT_THROW((void)blas::gefmm_pack_b<double>(cview(b),
                                                storage.data(), elems - 1),
               Error);
}

// ---------------------------------------------------------------------------
// Driver parity matrix: kernel x element x threads x scheme. Handles are
// consulted only where the call reduces to one top-level packed GEMM; every
// other schedule must ignore them. Either way the result must be bitwise
// identical to the same call without handles.

template <class T>
void driver_parity_matrix() {
  struct Shape {
    index_t s;
    CutoffCriterion cutoff;
    const char* name;
  };
  const Shape shapes[] = {
      // Below-cutoff: reduces to one GEMM, the consult streams.
      {48, CutoffCriterion::paper_default(blas::active_machine()), "gemm"},
      // Recursing: the schedules split; the handles must be ignored.
      {96, CutoffCriterion::square_simple(32), "recursing"},
  };
  const Scheme schemes[] = {Scheme::automatic, Scheme::strassen1,
                            Scheme::strassen2, Scheme::fused};
  const blas::KernelArch active = blas::active_kernel_t<T>().arch;
  Rng rng(505);

  for (const blas::KernelArch arch : blas::kAllKernelArches) {
    if (!blas::kernel_supported(arch)) continue;
    blas::ScopedKernel pin(arch);
    for (const Shape& shape : shapes) {
      const index_t s = shape.s;
      MatrixT<T> a = random_matrix_t<T>(s, s, rng);
      MatrixT<T> b = random_matrix_t<T>(s, s, rng);
      MatrixT<T> c0 = random_matrix_t<T>(s, s, rng);
      // Handles packed under the pinned kernel, against these exact views.
      const blas::PackedOperandT<T> pa = blas::gefmm_pack_a<T>(cview(a));
      const blas::PackedOperandT<T> pb = blas::gefmm_pack_b<T>(cview(b));
      for (const Scheme scheme : schemes) {
        for (const int threads : {1, 2}) {
          SCOPED_TRACE(::testing::Message()
                       << "kernel " << blas::active_kernel_t<T>().name
                       << " shape " << shape.name << " scheme "
                       << static_cast<int>(scheme) << " threads " << threads);
          blas::ScopedGemmThreads gt(threads);
          core::GefmmConfigT<T> cfg;
          cfg.cutoff = shape.cutoff;
          cfg.scheme = scheme;

          MatrixT<T> want(s, s);
          copy(c0.view(), want.view());
          ASSERT_EQ(gefmm_t<T>(s, s, s, T(1), a.data(), a.ld(), b.data(),
                               b.ld(), T(0.5), want.data(), want.ld(), cfg),
                    0);

          core::DgefmmStats stats;
          cfg.stats = &stats;
          cfg.packed_a = &pa;
          cfg.packed_b = &pb;
          MatrixT<T> c(s, s);
          copy(c0.view(), c.view());
          ASSERT_EQ(gefmm_t<T>(s, s, s, T(1), a.data(), a.ld(), b.data(),
                               b.ld(), T(0.5), c.data(), c.ld(), cfg),
                    0);
          expect_bitwise(c, want, shape.name);
          if (std::strcmp(shape.name, "gemm") == 0) {
            EXPECT_GT(stats.pack_hits, 0)
                << "gemm-reducible call must stream from the handles";
            EXPECT_EQ(stats.pack_misses, 0);
            EXPECT_EQ(stats.base_gemms, 1);
          }
        }
      }
    }
  }
  EXPECT_EQ(blas::active_kernel_t<T>().arch, active);  // pins restored
}

TEST(PrepackDriver, ParityMatrixDouble) { driver_parity_matrix<double>(); }
TEST(PrepackDriver, ParityMatrixFloat) { driver_parity_matrix<float>(); }

TEST(PrepackDriver, SourceMismatchCountsMissAndStaysCorrect) {
  const index_t s = 48;
  Rng rng(506);
  Matrix a = random_matrix(s, s, rng);
  Matrix b = random_matrix(s, s, rng);
  Matrix fresh_b = random_matrix(s, s, rng);
  Matrix c(s, s), want(s, s);
  fill(c.view(), 0.0);
  fill(want.view(), 0.0);
  blas::gemm_reference(Trans::no, Trans::no, s, s, s, 1.0, a.data(), a.ld(),
                       b.data(), b.ld(), 0.0, want.data(), want.ld());

  // Handle stamps fresh_b, but the call multiplies b: a hard miss that
  // must fall back to fresh packing, count misses, and stay correct.
  const blas::PackedOperand stale =
      blas::gefmm_pack_b<double>(cview(fresh_b));
  core::DgefmmStats stats;
  core::DgefmmConfig cfg;
  cfg.stats = &stats;
  cfg.packed_b = &stale;
  ASSERT_EQ(core::dgefmm(Trans::no, Trans::no, s, s, s, 1.0, a.data(), a.ld(),
                         b.data(), b.ld(), 0.0, c.data(), c.ld(), cfg),
            0);
  EXPECT_GT(stats.pack_misses, 0);
  EXPECT_EQ(stats.pack_hits, 0);
  EXPECT_LT(max_abs_diff(c.view(), want.view()),
            1e-12 * (static_cast<double>(s) + 1.0));
}

// ---------------------------------------------------------------------------
// The per-call panel cache (fused sweep) and its accounting invariant.

TEST(PanelCache, AcquireBuildsOnceThenStreamsFromTheSamImage) {
  const blas::GemmBlocking bk =
      blas::blocking_for_t<double>(blas::active_machine());
  const index_t rows = 16, cols = 24;
  Rng rng(507);
  Matrix src = random_matrix(rows, cols, rng);
  const std::size_t need =
      blas::gefmm_pack_a_elements<double>(rows, cols) +
      kBufferAlignment / sizeof(double);
  AlignedBuffer slab(need);
  blas::PanelCache cache(bk, slab.data(), need);

  ASSERT_TRUE(cache.register_entry('a', src.data(), 1, src.ld(), rows, cols));
  EXPECT_EQ(cache.misses(), 0);
  const double* img =
      cache.acquire('a', src.data(), 1, src.ld(), rows, cols);
  ASSERT_NE(img, nullptr);
  const count_t build_misses = cache.misses();
  EXPECT_GT(build_misses, 0) << "first acquire packs: one miss per block";
  // Second acquire streams the same image with no further packing.
  EXPECT_EQ(cache.acquire('a', src.data(), 1, src.ld(), rows, cols), img);
  EXPECT_EQ(cache.misses(), build_misses);
  // The cached image equals a fresh handle pack of the same view byte for
  // byte -- the panel cache's half of the bitwise-parity guarantee.
  const blas::PackedOperand fresh =
      blas::gefmm_pack_a<double>(cview(src));
  EXPECT_EQ(std::memcmp(img, fresh.data(), fresh.elems * sizeof(double)), 0);
}

TEST(PanelCache, UnregisteredSourceMissesToNull) {
  const blas::GemmBlocking bk =
      blas::blocking_for_t<double>(blas::active_machine());
  double slab[64];
  blas::PanelCache cache(bk, slab, 64);
  double x = 1.0;
  EXPECT_EQ(cache.acquire('a', &x, 1, 1, 1, 1), nullptr);
}

TEST(PanelCache, RegisterRefusesWhenSlabIsFull) {
  const blas::GemmBlocking bk =
      blas::blocking_for_t<double>(blas::active_machine());
  const index_t rows = 16, cols = 24;
  Rng rng(508);
  Matrix src = random_matrix(rows, cols, rng);
  // Slab deliberately one element short of the image (plus no alignment
  // slack): registration must refuse, leaving acquire() to miss.
  const std::size_t short_elems =
      blas::gefmm_pack_a_elements<double>(rows, cols) - 1;
  AlignedBuffer slab(short_elems);
  blas::PanelCache cache(bk, slab.data(), short_elems);
  EXPECT_FALSE(
      cache.register_entry('a', src.data(), 1, src.ld(), rows, cols));
  EXPECT_EQ(cache.acquire('a', src.data(), 1, src.ld(), rows, cols), nullptr);
}

TEST(PanelCache, PredictorCarvesSlabOnlyPastOneColumnStrip) {
  // The cache pays off only when a fused leaf's n extent spans several GEMM
  // column strips; below that the predictor must carve nothing, keeping
  // Table-1-scale workspace bounds exact.
  core::DgefmmConfig cfg;
  cfg.scheme = Scheme::fused;
  cfg.fused_levels = 1;
  cfg.cutoff = CutoffCriterion::square_simple(256);
  EXPECT_EQ(core::detail::fused_cache_elements<double>(256, 256, 256, cfg, 0),
            0);

  // Past one strip (leaf nB > blocking nc) the slab is carved; prediction
  // and the fmm_fused carve share this one function, so the workspace
  // predictor's prediction == peak invariant holds with the cache on. The
  // shapes are arithmetic only -- nothing here allocates at this scale.
  const blas::GemmBlocking bk =
      blas::blocking_for_t<double>(blas::active_machine());
  const index_t leaf = bk.nc + 8;  // one leaf just past one column strip
  const index_t top = 2 * leaf;
  cfg.cutoff = CutoffCriterion::square_simple(static_cast<double>(leaf) + 4);
  const count_t carve =
      core::detail::fused_cache_elements<double>(top, top, top, cfg, 0);
  EXPECT_GT(carve, 0);

  core::DgefmmConfig off = cfg;
  off.panel_cache = false;
  EXPECT_EQ(core::detail::fused_cache_elements<double>(top, top, top, off, 0),
            0);
  EXPECT_EQ(core::workspace_doubles(top, top, top, 0.0, cfg) -
                core::workspace_doubles(top, top, top, 0.0, off),
            carve)
      << "predictor must add exactly the slab fmm_fused carves";
}

TEST(PanelCache, PredictionEqualsPeakWithCacheOn) {
  // End-to-end at test scale: a fused run with the cache enabled must stay
  // within (and exactly account for) the predicted reservation.
  const index_t s = 96;
  core::DgefmmConfig cfg;
  cfg.scheme = Scheme::fused;
  cfg.cutoff = CutoffCriterion::square_simple(32);
  cfg.panel_cache = true;
  const count_t predicted = core::workspace_doubles(s, s, s, 0.0, cfg);
  Rng rng(509);
  Matrix a = random_matrix(s, s, rng);
  Matrix b = random_matrix(s, s, rng);
  Matrix c(s, s);
  fill(c.view(), 0.0);
  Arena arena(static_cast<std::size_t>(predicted));
  core::DgefmmStats stats;
  cfg.workspace = &arena;
  cfg.stats = &stats;
  ASSERT_EQ(core::dgefmm(Trans::no, Trans::no, s, s, s, 1.0, a.data(), a.ld(),
                         b.data(), b.ld(), 0.0, c.data(), c.ld(), cfg),
            0);
  EXPECT_LE(stats.peak_workspace, static_cast<std::size_t>(predicted));
  EXPECT_EQ(arena.capacity(), static_cast<std::size_t>(predicted))
      << "the exactly-sized arena must not have grown";
}

// ---------------------------------------------------------------------------
// Serving: a shared packed-B handle rides the queue.

TEST(ServePrepack, PackedBRequestMatchesFreshBitwise) {
  const index_t s = 40;
  Rng rng(510);
  Matrix a = random_matrix(s, s, rng);
  Matrix b = random_matrix(s, s, rng);
  Matrix c0 = random_matrix(s, s, rng);
  const blas::PackedOperand pb = blas::gefmm_pack_b<double>(cview(b));

  serve::Queue q;
  serve::GemmRequest req;
  req.m = req.n = req.k = s;
  req.alpha = 1.0;
  req.a = a.data();
  req.lda = a.ld();
  req.b = b.data();
  req.ldb = b.ld();
  req.beta = 0.5;
  req.ldc = s;
  req.prefer_parallel = false;

  Matrix want(s, s);
  copy(c0.view(), want.view());
  req.c = want.data();
  ASSERT_EQ(q.submit(req).wait(), 0);

  Matrix c(s, s);
  copy(c0.view(), c.view());
  req.c = c.data();
  req.packed_b = &pb;
  ASSERT_EQ(q.submit(req).wait(), 0);
  expect_bitwise(c, want, "serve packed_b");
  EXPECT_GT(q.stats().gefmm.pack_hits, 0)
      << "the admitted run must have streamed from the shared handle";

  // The task-DAG path ignores the handle (documented): same request at a
  // recursing shape with prefer_parallel stays correct.
  const index_t r = 96;
  Matrix ra = random_matrix(r, r, rng);
  Matrix rb = random_matrix(r, r, rng);
  Matrix rc(r, r), rwant(r, r);
  fill(rc.view(), 0.0);
  fill(rwant.view(), 0.0);
  const blas::PackedOperand rpb = blas::gefmm_pack_b<double>(cview(rb));
  serve::GemmRequest rreq;
  rreq.m = rreq.n = rreq.k = r;
  rreq.a = ra.data();
  rreq.lda = ra.ld();
  rreq.b = rb.data();
  rreq.ldb = rb.ld();
  rreq.c = rwant.data();
  rreq.ldc = r;
  rreq.cutoff = CutoffCriterion::square_simple(32);
  rreq.prefer_parallel = true;
  ASSERT_EQ(q.submit(rreq).wait(), 0);
  rreq.c = rc.data();
  rreq.packed_b = &rpb;
  ASSERT_EQ(q.submit(rreq).wait(), 0);
  expect_bitwise(rc, rwant, "serve DAG ignores packed_b");
}

// ---------------------------------------------------------------------------
// C ABI: pack handles, the packed submit, and the error surface.

TEST(ServeCAbiPrepack, PackSubmitWaitFreeRoundtrip) {
  const index_t s = 40;
  Rng rng(511);
  Matrix a = random_matrix(s, s, rng);
  Matrix b = random_matrix(s, s, rng);
  Matrix c = random_matrix(s, s, rng);
  Matrix want(s, s);
  copy(c.view(), want.view());
  {
    blas::ScopedGemmThreads serial(1);
    blas::dgemm(Trans::no, Trans::no, s, s, s, 1.5, a.data(), a.ld(),
                b.data(), b.ld(), 0.25, want.data(), want.ld());
  }

  std::int64_t elems = 0;
  ASSERT_EQ(strassen_dgefmm_pack_b_size('N', s, s, &elems), 0);
  EXPECT_EQ(static_cast<std::size_t>(elems),
            blas::gefmm_pack_b_elements<double>(s, s));

  std::int64_t ph = 0;
  ASSERT_EQ(strassen_dgefmm_pack_b('N', s, s, b.data(), b.ld(), &ph), 0);
  EXPECT_GT(ph, 0);

  std::int64_t h = 0;
  ASSERT_EQ(strassen_dgefmm_submit_packed('N', 'N', s, s, s, 1.5, a.data(),
                                          a.ld(), b.data(), b.ld(), 0.25,
                                          c.data(), c.ld(), ph,
                                          /*deadline_ms=*/0, &h),
            0);
  EXPECT_EQ(strassen_dgefmm_wait(h), 0);
  EXPECT_LT(max_abs_diff(c.view(), want.view()), 1e-10);

  EXPECT_EQ(strassen_dgefmm_pack_free(ph), 0);
  EXPECT_EQ(strassen_dgefmm_pack_free(ph), STRASSEN_INFO_BAD_HANDLE)
      << "double free must be a bad handle, not a crash";
}

TEST(ServeCAbiPrepack, FloatPackSubmitRoundtrip) {
  const index_t s = 40;
  Rng rng(512);
  MatrixF a = random_matrix_f(s, s, rng);
  MatrixF b = random_matrix_f(s, s, rng);
  MatrixF c = random_matrix_f(s, s, rng);
  MatrixF want(s, s);
  copy(c.view(), want.view());
  {
    blas::ScopedGemmThreads serial(1);
    blas::sgemm(Trans::no, Trans::no, s, s, s, 1.5f, a.data(), a.ld(),
                b.data(), b.ld(), 0.25f, want.data(), want.ld());
  }
  std::int64_t ph = 0;
  ASSERT_EQ(strassen_sgefmm_pack_b('N', s, s, b.data(), b.ld(), &ph), 0);
  std::int64_t h = 0;
  ASSERT_EQ(strassen_sgefmm_submit_packed('N', 'N', s, s, s, 1.5f, a.data(),
                                          a.ld(), b.data(), b.ld(), 0.25f,
                                          c.data(), c.ld(), ph,
                                          /*deadline_ms=*/0, &h),
            0);
  EXPECT_EQ(strassen_sgefmm_wait(h), 0);
  EXPECT_LT(max_abs_diff(c.view(), want.view()), 1e-3f);
  EXPECT_EQ(strassen_sgefmm_pack_free(ph), 0);
}

TEST(ServeCAbiPrepack, ArgumentErrorsAndBadHandles) {
  double x = 1.0;
  std::int64_t out = 0;
  // pack_b_size: bad transb, negative dims, null out pointer.
  EXPECT_EQ(strassen_dgefmm_pack_b_size('X', 4, 4, &out), 1);
  EXPECT_EQ(strassen_dgefmm_pack_b_size('N', -1, 4, &out), 2);
  EXPECT_EQ(strassen_dgefmm_pack_b_size('N', 4, -1, &out), 3);
  EXPECT_EQ(strassen_dgefmm_pack_b_size('N', 4, 4, nullptr), 15);
  // pack_b: null source, undersized leading dimension, null out handle.
  std::int64_t ph = 0;
  EXPECT_EQ(strassen_dgefmm_pack_b('N', 1, 1, nullptr, 1, &ph), 4);
  EXPECT_EQ(strassen_dgefmm_pack_b('N', 2, 2, &x, 1, &ph), 5);
  EXPECT_EQ(strassen_dgefmm_pack_b('N', 1, 1, &x, 1, nullptr), 15);
  // Unknown pack handle at submit: bad handle, nothing enqueued.
  std::int64_t h = 0;
  EXPECT_EQ(strassen_dgefmm_submit_packed('N', 'N', 1, 1, 1, 1.0, &x, 1, &x,
                                          1, 0.0, &x, 1, /*pack_handle=*/777,
                                          0, &h),
            STRASSEN_INFO_BAD_HANDLE);
  EXPECT_EQ(strassen_dgefmm_pack_free(777), STRASSEN_INFO_BAD_HANDLE);
}

TEST(ServeCAbiPrepack, PackHandlesSurviveServeShutdown) {
  // Pack handles are weights caches with a different lifetime than the
  // queue: shutdown drains requests but must not invalidate packs.
  const index_t s = 24;
  Rng rng(513);
  Matrix a = random_matrix(s, s, rng);
  Matrix b = random_matrix(s, s, rng);
  Matrix c(s, s), want(s, s);
  fill(c.view(), 0.0);
  fill(want.view(), 0.0);
  blas::gemm_reference(Trans::no, Trans::no, s, s, s, 1.0, a.data(), a.ld(),
                       b.data(), b.ld(), 0.0, want.data(), want.ld());
  std::int64_t ph = 0;
  ASSERT_EQ(strassen_dgefmm_pack_b('N', s, s, b.data(), b.ld(), &ph), 0);
  strassen_serve_shutdown();
  std::int64_t h = 0;
  ASSERT_EQ(strassen_dgefmm_submit_packed('N', 'N', s, s, s, 1.0, a.data(),
                                          a.ld(), b.data(), b.ld(), 0.0,
                                          c.data(), c.ld(), ph, 0, &h),
            0);
  EXPECT_EQ(strassen_dgefmm_wait(h), 0);
  EXPECT_LT(max_abs_diff(c.view(), want.view()), 1e-10);
  EXPECT_EQ(strassen_dgefmm_pack_free(ph), 0);
}

// ---------------------------------------------------------------------------
// Failure contracts over the new fallible site (handle image allocation).

class PrepackFaults : public ::testing::Test {
 protected:
  void TearDown() override { fi::disarm(); }
};

TEST_F(PrepackFaults, PackAllocationSweepThrowsCleanly) {
  const index_t k = 32, n = 32;
  Rng rng(514);
  Matrix b = random_matrix(k, n, rng);
  // Outcome-based sweep over the pack call's acquisitions: every armed
  // countdown either fires (std::bad_alloc, no handle escapes) or the run
  // completes with a valid, consultable handle.
  bool completed = false;
  for (long nth = 1; nth <= 16 && !completed; ++nth) {
    const long before = fi::injected_total();
    fi::arm(nth, fi::Site::buffer_alloc);
    try {
      const blas::PackedOperand pb =
          blas::gefmm_pack_b<double>(cview(b));
      EXPECT_TRUE(pb.valid());
      completed = true;
    } catch (const std::bad_alloc&) {
      EXPECT_GT(fi::injected_total(), before)
          << "bad_alloc without an injected fault";
    }
    fi::disarm();
  }
  EXPECT_TRUE(completed) << "pack never survived 16 acquisitions";
}

TEST_F(PrepackFaults, CAbiPackMapsAllocFailureToInfoAlloc) {
  const index_t k = 16, n = 16;
  Rng rng(515);
  Matrix b = random_matrix(k, n, rng);
  std::int64_t ph = 0;
  fi::arm(1, fi::Site::buffer_alloc);
  EXPECT_EQ(strassen_dgefmm_pack_b('N', k, n, b.data(), b.ld(), &ph),
            STRASSEN_INFO_ALLOC);
  fi::disarm();
  // The failed pack registered nothing: the handle out-param is untouched
  // and a retry without the fault succeeds.
  EXPECT_EQ(ph, 0);
  ASSERT_EQ(strassen_dgefmm_pack_b('N', k, n, b.data(), b.ld(), &ph), 0);
  EXPECT_EQ(strassen_dgefmm_pack_free(ph), 0);
}

// Section-7 fault sweep with handles attached: for every countdown until a
// clean run, strict leaves C bit-identical and fallback still produces the
// correct product. Covers both the streamed gemm-reducible shape and a
// recursing shape that carries (and ignores) the handles.
void sweep_with_handles(index_t s, const CutoffCriterion& cutoff,
                        FailurePolicy policy, std::uint64_t seed) {
  Rng rng(seed);
  Matrix a = random_matrix(s, s, rng);
  Matrix b = random_matrix(s, s, rng);
  Matrix c0 = random_matrix(s, s, rng);
  Matrix want(s, s);
  copy(c0.view(), want.view());
  blas::gemm_reference(Trans::no, Trans::no, s, s, s, 1.0, a.data(), a.ld(),
                       b.data(), b.ld(), 0.5, want.data(), want.ld());
  const blas::PackedOperand pa = blas::gefmm_pack_a<double>(cview(a));
  const blas::PackedOperand pb = blas::gefmm_pack_b<double>(cview(b));

  for (long nth = 1; nth <= 64; ++nth) {
    SCOPED_TRACE(::testing::Message() << "s " << s << " nth " << nth);
    Matrix c(s, s);
    copy(c0.view(), c.view());
    std::vector<double> snapshot(
        c.data(), c.data() + static_cast<std::size_t>(s) * s);
    core::DgefmmStats stats;
    core::DgefmmConfig cfg;
    cfg.cutoff = cutoff;
    cfg.on_failure = policy;
    cfg.stats = &stats;
    cfg.packed_a = &pa;
    cfg.packed_b = &pb;

    const long before = fi::injected_total();
    fi::arm(nth);
    bool threw = false;
    int info = -999;
    try {
      info = core::dgefmm(Trans::no, Trans::no, s, s, s, 1.0, a.data(),
                          a.ld(), b.data(), b.ld(), 0.5, c.data(), c.ld(),
                          cfg);
    } catch (const Error&) {
      threw = true;
    } catch (const std::bad_alloc&) {
      threw = true;
    }
    fi::disarm();
    if (fi::injected_total() == before) {
      EXPECT_FALSE(threw);
      EXPECT_EQ(info, 0);
      EXPECT_LT(max_abs_diff(c.view(), want.view()), 1e-10);
      return;  // countdown outlived the acquisitions: sweep complete
    }
    if (policy == FailurePolicy::strict) {
      EXPECT_TRUE(threw);
      EXPECT_EQ(std::memcmp(c.data(), snapshot.data(),
                            snapshot.size() * sizeof(double)),
                0)
          << "strict policy must leave C bit-identical";
    } else {
      EXPECT_FALSE(threw);
      EXPECT_EQ(info, 0);
      EXPECT_LT(max_abs_diff(c.view(), want.view()), 1e-10);
    }
  }
  FAIL() << "sweep did not reach a fault-free run";
}

TEST_F(PrepackFaults, StreamedShapeSweepStrict) {
  sweep_with_handles(48, CutoffCriterion::paper_default(blas::active_machine()),
                     FailurePolicy::strict, 516);
}

TEST_F(PrepackFaults, StreamedShapeSweepFallback) {
  sweep_with_handles(48, CutoffCriterion::paper_default(blas::active_machine()),
                     FailurePolicy::fallback, 516);
}

TEST_F(PrepackFaults, RecursingShapeSweepStrict) {
  sweep_with_handles(96, CutoffCriterion::square_simple(32),
                     FailurePolicy::strict, 517);
}

TEST_F(PrepackFaults, RecursingShapeSweepFallback) {
  sweep_with_handles(96, CutoffCriterion::square_simple(32),
                     FailurePolicy::fallback, 517);
}

}  // namespace
}  // namespace strassen
