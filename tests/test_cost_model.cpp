// Tests for the fitted performance models and the model-derived cutoff
// (the companion-report [14] approach implemented in tuning/cost_model).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/errors.hpp"
#include "tuning/cost_model.hpp"

namespace strassen {
namespace {

using tuning::AddCostModel;
using tuning::AddSample;
using tuning::GemmCostModel;
using tuning::GemmSample;

// Synthesizes exact samples from known coefficients; the fit must recover
// them to rounding accuracy.
std::vector<GemmSample> synthetic_gemm_samples(const GemmCostModel& truth) {
  std::vector<GemmSample> samples;
  for (index_t m : {64, 128, 256}) {
    for (index_t k : {64, 192}) {
      for (index_t n : {96, 256}) {
        samples.push_back({m, k, n, truth.predict(m, k, n)});
      }
    }
  }
  return samples;
}

TEST(CostModel, RecoversExactGemmCoefficients) {
  const GemmCostModel truth{3e-5, 2.5e-10, 4.0e-9};
  const GemmCostModel fit =
      tuning::fit_gemm_cost_model(synthetic_gemm_samples(truth));
  EXPECT_NEAR(fit.c0, truth.c0, 1e-10);
  EXPECT_NEAR(fit.mu, truth.mu, 1e-16);
  EXPECT_NEAR(fit.nu, truth.nu, 1e-14);
}

TEST(CostModel, RecoversExactAddCoefficients) {
  const AddCostModel truth{1e-6, 8.0e-10};
  std::vector<AddSample> samples;
  for (index_t m : {32, 64, 128, 200}) {
    samples.push_back({m, m, truth.predict(m, m)});
  }
  const AddCostModel fit = tuning::fit_add_cost_model(samples);
  EXPECT_NEAR(fit.c1, truth.c1, 1e-12);
  EXPECT_NEAR(fit.gamma, truth.gamma, 1e-16);
}

TEST(CostModel, PredictIsLinearInFeatures) {
  const GemmCostModel m1{0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(m1.predict(2, 3, 4), 24.0);
  const GemmCostModel m2{0.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(m2.predict(2, 3, 4), 2 * 3 + 3 * 4 + 2 * 4);
  const AddCostModel a{0.5, 2.0};
  EXPECT_DOUBLE_EQ(a.predict(3, 4), 0.5 + 24.0);
}

TEST(CostModel, OpCountModelReproducesTheoreticalCutoff) {
  // With mu = 2, nu = 0 (~ t = 2mkn) for GEMM and gamma = 1 (t = mn) for
  // adds, and no constant overheads, the model analogue of eq. 7 gives
  // mkn <= 8/2 * ... i.e. the theoretical square cutoff 12.
  //
  // (M(m,k,n) = 2mkn - mn is represented here as mu=2 with the -mn term
  // absorbed approximately; exact equivalence needs nu on the mn feature
  // only, so the derived square cutoff lands within one of 12.)
  const GemmCostModel gemm{0.0, 2.0, 0.0};
  const AddCostModel add{0.0, 1.0};
  // Derived parameterized taus: tau_mn = 8*1/2 = 4, tau_k = 14/2 = 7.
  const core::CutoffCriterion crit =
      tuning::criterion_from_models(gemm, add);
  EXPECT_DOUBLE_EQ(crit.tau_m, 4.0);
  EXPECT_DOUBLE_EQ(crit.tau_k, 7.0);
  EXPECT_DOUBLE_EQ(crit.tau_n, 4.0);
  // Square crossover: 2m^3 <= 7*2*(m/2)^3 + 15 (m/2)^2
  //   <=> m^3/4 <= 15 m^2/4 <=> m <= 15.
  EXPECT_DOUBLE_EQ(crit.tau, 15.0);
  EXPECT_EQ(crit.kind, core::CutoffKind::hybrid);
}

TEST(CostModel, StandardPreferredMatchesDirectComparison) {
  const GemmCostModel gemm{1e-5, 3e-10, 2e-9};
  const AddCostModel add{5e-7, 1e-9};
  for (index_t m : {16, 64, 256, 1024}) {
    const double standard = gemm.predict(m, m, m);
    const double one_level = 7.0 * gemm.predict(m / 2, m / 2, m / 2) +
                             15.0 * add.predict(m / 2, m / 2);
    EXPECT_EQ(tuning::model_standard_preferred(gemm, add, m, m, m),
              standard <= one_level)
        << m;
  }
}

TEST(CostModel, MeasuredFitIsSane) {
  // Fit on tiny real measurements: coefficients must be positive-ish and
  // the model must predict larger times for larger problems.
  const GemmCostModel gemm = tuning::measure_gemm_cost_model(96, 1);
  EXPECT_GT(gemm.mu, 0.0);
  EXPECT_GT(gemm.predict(256, 256, 256), gemm.predict(64, 64, 64));
  const AddCostModel add = tuning::measure_add_cost_model(128, 1);
  EXPECT_GT(add.gamma, 0.0);
}

TEST(CostModel, SingularFitThrows) {
  // All-identical samples make the normal equations singular.
  std::vector<GemmSample> samples(5, GemmSample{64, 64, 64, 1.0});
  EXPECT_THROW(tuning::fit_gemm_cost_model(samples), Error);
}

}  // namespace
}  // namespace strassen
