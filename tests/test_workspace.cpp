// Workspace accounting tests: the measured arena high-water mark must equal
// the exact predictor and respect the paper's closed-form bounds (Section
// 3.2, Table 1).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "blas/gemm.hpp"
#include "core/dgefmm.hpp"
#include "core/workspace.hpp"
#include "support/random.hpp"

namespace strassen {
namespace {

using core::CutoffCriterion;
using core::DgefmmConfig;
using core::DgefmmStats;
using core::OddStrategy;
using core::Scheme;

struct Shape {
  index_t m, n, k;
};

const std::vector<Shape> kShapes = {
    {64, 64, 64},  {65, 65, 65},   {63, 65, 64},  {100, 40, 70},
    {40, 100, 70}, {128, 128, 128}, {129, 127, 125}, {30, 200, 30},
    {17, 17, 17},
};

std::size_t measured_peak(const Shape& s, double beta,
                          const DgefmmConfig& base_cfg) {
  DgefmmConfig cfg = base_cfg;
  Arena arena;
  cfg.workspace = &arena;
  Rng rng(101);
  Matrix a = random_matrix(s.m, s.k, rng);
  Matrix b = random_matrix(s.k, s.n, rng);
  Matrix c = random_matrix(s.m, s.n, rng);
  EXPECT_EQ(core::dgefmm(Trans::no, Trans::no, s.m, s.n, s.k, 1.0, a.data(),
                         s.m, b.data(), s.k, beta, c.data(), s.m, cfg),
            0);
  return arena.peak();
}

class WorkspaceExactness
    : public ::testing::TestWithParam<
          std::tuple<Scheme, OddStrategy, int, double>> {};

TEST_P(WorkspaceExactness, MeasuredPeakEqualsPredictor) {
  const auto [scheme, odd, si, beta] = GetParam();
  const Shape s = kShapes[static_cast<std::size_t>(si)];
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::square_simple(8);
  cfg.scheme = scheme;
  cfg.odd = odd;
  const count_t predicted =
      core::dgefmm_workspace_doubles(s.m, s.n, s.k, beta, cfg);
  const std::size_t peak = measured_peak(s, beta, cfg);
  EXPECT_EQ(static_cast<count_t>(peak), predicted)
      << "m=" << s.m << " n=" << s.n << " k=" << s.k << " beta=" << beta;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WorkspaceExactness,
    ::testing::Combine(
        ::testing::Values(Scheme::automatic, Scheme::strassen1,
                          Scheme::strassen2, Scheme::original, Scheme::fused),
        ::testing::Values(OddStrategy::dynamic_peeling,
                          OddStrategy::dynamic_padding,
                          OddStrategy::static_padding),
        ::testing::Range(0, static_cast<int>(kShapes.size())),
        ::testing::Values(0.0, 1.0)));

TEST(WorkspaceBounds, Strassen1Beta0WithinPaperBound) {
  // Paper: extra storage <= (m*max(k,n) + kn)/3 for STRASSEN1, beta = 0.
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::square_simple(8);
  cfg.scheme = Scheme::strassen1;
  for (const Shape& s : kShapes) {
    const count_t need = core::dgefmm_workspace_doubles(s.m, s.n, s.k, 0.0, cfg);
    EXPECT_LE(static_cast<double>(need),
              core::bound_strassen1_beta0(s.m, s.k, s.n) + 1.0)
        << s.m << " " << s.n << " " << s.k;
  }
}

TEST(WorkspaceBounds, Strassen2WithinPaperBound) {
  // Paper: extra storage <= (mk + kn + mn)/3 for STRASSEN2 -- "the minimum
  // number possible".
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::square_simple(8);
  cfg.scheme = Scheme::strassen2;
  for (const Shape& s : kShapes) {
    const count_t need = core::dgefmm_workspace_doubles(s.m, s.n, s.k, 1.0, cfg);
    EXPECT_LE(static_cast<double>(need),
              core::bound_strassen2(s.m, s.k, s.n) + 1.0)
        << s.m << " " << s.n << " " << s.k;
  }
}

TEST(WorkspaceBounds, Strassen1GeneralWithinPaperBound) {
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::square_simple(8);
  cfg.scheme = Scheme::strassen1;
  for (const Shape& s : kShapes) {
    const count_t need = core::dgefmm_workspace_doubles(s.m, s.n, s.k, 1.0, cfg);
    EXPECT_LE(static_cast<double>(need),
              core::bound_strassen1_general(s.m, s.k, s.n) + 1.0)
        << s.m << " " << s.n << " " << s.k;
  }
}

TEST(WorkspaceBounds, SquareAsymptoticCoefficients) {
  // Table 1 coefficients for order-m matrices under deep recursion:
  //   DGEFMM beta == 0 : 2/3 m^2, DGEFMM beta != 0 : 1 m^2,
  //   STRASSEN1 beta != 0 : 2 m^2.
  const index_t m = 1024;
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::fixed_depth(6);
  const double m2 = static_cast<double>(m) * m;

  cfg.scheme = Scheme::automatic;
  const double c_beta0 =
      static_cast<double>(core::dgefmm_workspace_doubles(m, m, m, 0.0, cfg)) /
      m2;
  EXPECT_GT(c_beta0, 0.60);
  EXPECT_LE(c_beta0, 2.0 / 3.0 + 1e-9);

  const double c_general =
      static_cast<double>(core::dgefmm_workspace_doubles(m, m, m, 1.0, cfg)) /
      m2;
  EXPECT_GT(c_general, 0.95);
  EXPECT_LE(c_general, 1.0 + 1e-9);

  // STRASSEN1 with beta != 0 uses the six-temporary level only at the top
  // (its seven sub-products are beta == 0), so the exact requirement is
  // 3/2 m^2 + m^2/6 = 5/3 m^2 -- below the paper's all-levels-general bound
  // of 2 m^2.
  cfg.scheme = Scheme::strassen1;
  const double c_s1_general =
      static_cast<double>(core::dgefmm_workspace_doubles(m, m, m, 1.0, cfg)) /
      m2;
  EXPECT_GT(c_s1_general, 1.60);
  EXPECT_LE(c_s1_general, 2.0 + 1e-9);
}

TEST(WorkspaceBounds, FusedStrictlyBelowStrassen2AtFusedLevels) {
  // The fused schedule forms operand sums inside the GEMM pack buffers, so
  // the fused levels themselves allocate nothing; only leaves that still
  // recurse classically materialize temporaries -- at quarter dimensions.
  // Its requirement must therefore be strictly below STRASSEN2's
  // (mk + kn + mn)/3, the serial schedules' minimum.
  DgefmmConfig fused, s2;
  fused.cutoff = s2.cutoff = CutoffCriterion::square_simple(8);
  fused.scheme = Scheme::fused;
  s2.scheme = Scheme::strassen2;
  for (const index_t n : {64, 128, 256, 512, 1024}) {
    const count_t w_fused = core::dgefmm_workspace_doubles(n, n, n, 1.0, fused);
    const count_t w_s2 = core::dgefmm_workspace_doubles(n, n, n, 1.0, s2);
    EXPECT_LT(w_fused, w_s2) << "n=" << n;
  }
}

TEST(WorkspaceBounds, FullyFusedRecursionNeedsNoWorkspace) {
  // When the cutoff is reached exactly at the fused leaves, the whole
  // multiply is 49 packed-GEMM calls and zero arena doubles.
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::fixed_depth(2);
  cfg.scheme = Scheme::fused;
  EXPECT_EQ(core::dgefmm_workspace_doubles(64, 64, 64, 1.0, cfg), 0);
  EXPECT_EQ(core::dgefmm_workspace_doubles(256, 192, 320, 0.0, cfg), 0);
}

TEST(WorkspaceBounds, PeelingNeedsNoExtraMemoryOverEvenCore) {
  // Dynamic peeling adds zero workspace: an odd problem costs exactly what
  // its even core costs.
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::square_simple(8);
  const count_t odd = core::dgefmm_workspace_doubles(65, 65, 65, 0.0, cfg);
  const count_t even = core::dgefmm_workspace_doubles(64, 64, 64, 0.0, cfg);
  EXPECT_EQ(odd, even);
}

TEST(WorkspaceBounds, DynamicPaddingCostsMoreThanPeelingOnOddSizes) {
  DgefmmConfig peel, pad;
  peel.cutoff = pad.cutoff = CutoffCriterion::square_simple(8);
  peel.odd = OddStrategy::dynamic_peeling;
  pad.odd = OddStrategy::dynamic_padding;
  const count_t w_peel = core::dgefmm_workspace_doubles(65, 65, 65, 0.0, peel);
  const count_t w_pad = core::dgefmm_workspace_doubles(65, 65, 65, 0.0, pad);
  EXPECT_GT(w_pad, w_peel);
  // Padding at the top level alone costs three padded operand copies,
  // ~3*66^2 doubles.
  EXPECT_GT(w_pad - w_peel, 3 * 60 * 60);
}

TEST(WorkspaceBounds, NoRecursionNeedsNoWorkspace) {
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::never_recurse();
  EXPECT_EQ(core::dgefmm_workspace_doubles(500, 500, 500, 0.0, cfg), 0);
}

TEST(WorkspaceError, UndersizedCallerArenaThrows) {
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::square_simple(8);
  Arena arena(16);     // far too small
  (void)arena.alloc(1);      // mark in use so dgefmm cannot silently regrow it
  cfg.workspace = &arena;
  Rng rng(5);
  Matrix a = random_matrix(64, 64, rng);
  Matrix b = random_matrix(64, 64, rng);
  Matrix c(64, 64);
  fill(c.view(), 0.0);
  EXPECT_THROW((void)core::dgefmm(Trans::no, Trans::no, 64, 64, 64, 1.0,
                                  a.data(), 64, b.data(), 64, 0.0, c.data(),
                                  64, cfg),
               WorkspaceError);
}

TEST(WorkspaceError, UndersizedCallerArenaFallsBackWhenAsked) {
  // Same undersized in-use arena as above, but with the fallback failure
  // policy: the call degrades to the workspace-free DGEMM path, records the
  // degradation, and still returns the right product.
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::square_simple(8);
  cfg.on_failure = core::FailurePolicy::fallback;
  DgefmmStats stats;
  cfg.stats = &stats;
  Arena arena(16);
  (void)arena.alloc(1);
  cfg.workspace = &arena;
  Rng rng(6);
  Matrix a = random_matrix(64, 64, rng);
  Matrix b = random_matrix(64, 64, rng);
  Matrix c(64, 64), c_ref(64, 64);
  fill(c.view(), 0.0);
  fill(c_ref.view(), 0.0);
  EXPECT_EQ(core::dgefmm(Trans::no, Trans::no, 64, 64, 64, 1.0, a.data(), 64,
                         b.data(), 64, 0.0, c.data(), 64, cfg),
            0);
  EXPECT_EQ(stats.fallbacks, 1);
  blas::gemm_reference(Trans::no, Trans::no, 64, 64, 64, 1.0, a.data(), 64,
                       b.data(), 64, 0.0, c_ref.data(), 64);
  EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), 1e-11);
  // The caller's live allocation is still intact and the arena unused
  // beyond it.
  EXPECT_EQ(arena.in_use(), 1u);
}

}  // namespace
}  // namespace strassen
