// Unit tests for the support layer: arena, views, stats, tables, RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "support/arena.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace strassen {
namespace {

TEST(Arena, AllocatesAndTracksPeak) {
  Arena arena(100);
  EXPECT_EQ(arena.capacity(), 100u);
  double* a = arena.alloc(40);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(arena.in_use(), 40u);
  {
    ArenaScope scope(arena);
    (void)arena.alloc(50);
    EXPECT_EQ(arena.in_use(), 90u);
  }
  EXPECT_EQ(arena.in_use(), 40u);
  EXPECT_EQ(arena.peak(), 90u);  // high-water survives release
  arena.reset();
  EXPECT_EQ(arena.in_use(), 0u);
  EXPECT_EQ(arena.peak(), 0u);
}

TEST(Arena, ThrowsOnExhaustion) {
  Arena arena(10);
  (void)arena.alloc(8);
  EXPECT_THROW((void)arena.alloc(3), WorkspaceError);
  // A failed allocation must not corrupt the stack.
  EXPECT_EQ(arena.in_use(), 8u);
  EXPECT_NO_THROW((void)arena.alloc(2));
}

TEST(Arena, ReserveOnlyWhenEmpty) {
  Arena arena(4);
  arena.reserve(100);
  EXPECT_GE(arena.capacity(), 100u);
  (void)arena.alloc(1);
  EXPECT_THROW(arena.reserve(200), WorkspaceError);
}

TEST(ArenaScope, NestedScopesRestoreInOrder) {
  Arena arena(64);
  (void)arena.alloc(4);
  {
    ArenaScope outer(arena);
    (void)arena.alloc(8);
    {
      ArenaScope inner(arena);
      (void)arena.alloc(16);
      EXPECT_EQ(arena.in_use(), 28u);
    }
    EXPECT_EQ(arena.in_use(), 12u);
  }
  EXPECT_EQ(arena.in_use(), 4u);
}

TEST(MatrixView, ColumnMajorIndexing) {
  Matrix m(3, 2);
  m(0, 0) = 1;
  m(1, 0) = 2;
  m(2, 0) = 3;
  m(0, 1) = 4;
  m(1, 1) = 5;
  m(2, 1) = 6;
  // Column-major: the first column is contiguous.
  EXPECT_EQ(m.data()[0], 1);
  EXPECT_EQ(m.data()[1], 2);
  EXPECT_EQ(m.data()[2], 3);
  EXPECT_EQ(m.data()[3], 4);
  ConstView v = m.view();
  EXPECT_TRUE(v.col_major());
  EXPECT_EQ(v(2, 1), 6);
}

TEST(MatrixView, TransposedViewSwapsIndices) {
  Matrix m(2, 3);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 2; ++i) m(i, j) = static_cast<double>(10 * i + j);
  ConstView t = m.view().transposed();
  EXPECT_EQ(t.rows, 3);
  EXPECT_EQ(t.cols, 2);
  EXPECT_TRUE(t.row_major());
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 2; ++i) EXPECT_EQ(t(j, i), m(i, j));
}

TEST(MatrixView, BlockOfTransposedView) {
  Matrix m(4, 6);
  for (index_t j = 0; j < 6; ++j)
    for (index_t i = 0; i < 4; ++i) m(i, j) = static_cast<double>(i + 10 * j);
  ConstView t = m.view().transposed();     // 6 x 4
  ConstView blk = t.block(2, 1, 3, 2);     // rows 2..4 of t, cols 1..2
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 2; ++j) EXPECT_EQ(blk(i, j), m(1 + j, 2 + i));
}

TEST(MatrixView, OpViewMatchesDgemmConvention) {
  // Stored A is 3 x 2; op(A) with transpose is 2 x 3.
  Matrix a(3, 2);
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < 3; ++i) a(i, j) = static_cast<double>(i - j);
  ConstView v = make_op_view(Trans::transpose, a.data(), 3, 2, a.ld());
  EXPECT_EQ(v.rows, 2);
  EXPECT_EQ(v.cols, 3);
  EXPECT_EQ(v(1, 2), a(2, 1));
}

TEST(MatrixHelpers, CopyFillDiffNorm) {
  Rng rng(7);
  Matrix a = random_matrix(5, 7, rng);
  Matrix b(5, 7);
  copy(a.view(), b.view());
  EXPECT_EQ(max_abs_diff(a.view(), b.view()), 0.0);
  b(4, 6) += 0.5;
  EXPECT_DOUBLE_EQ(max_abs_diff(a.view(), b.view()), 0.5);
  fill(b.view(), 0.0);
  EXPECT_EQ(max_abs(b.view()), 0.0);
  EXPECT_EQ(frobenius_norm(b.view()), 0.0);
  set_identity(b.view());
  EXPECT_DOUBLE_EQ(frobenius_norm(b.view()), std::sqrt(5.0));
}

TEST(Stats, SummaryOfKnownSample) {
  // 1..9: median 5, quartiles 3 and 7 under the R-7 definition.
  std::vector<double> v{9, 1, 8, 2, 7, 3, 6, 4, 5};
  Summary s = summarize(v);
  EXPECT_EQ(s.count, 9u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.q1, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 7.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
}

TEST(Stats, SingleAndEmptySamples) {
  Summary s1 = summarize({2.5});
  EXPECT_DOUBLE_EQ(s1.median, 2.5);
  EXPECT_DOUBLE_EQ(s1.q1, 2.5);
  Summary s0 = summarize({});
  EXPECT_EQ(s0.count, 0u);
  EXPECT_EQ(s0.mean, 0.0);
}

TEST(Stats, QuartileInterpolation) {
  Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.q1, 1.75);
  EXPECT_DOUBLE_EQ(s.q3, 3.25);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta-longer", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("beta-longer"), std::string::npos);
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(1.23456, 3), "1.235");
  EXPECT_EQ(fmt(2.0, 1), "2.0");
  EXPECT_EQ(fmt(7LL), "7");
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
  Rng c(43);
  bool any_diff = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2.uniform() != c.uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, SymmetricFill) {
  Rng rng(3);
  Matrix s(9, 9);
  fill_random_symmetric(s.view(), rng);
  for (index_t j = 0; j < 9; ++j)
    for (index_t i = 0; i < 9; ++i) EXPECT_EQ(s(i, j), s(j, i));
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const index_t v = rng.uniform_index(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

}  // namespace
}  // namespace strassen
