// Tests for DTRSM and the blocked LU solver (the linear-systems
// application, reference [3] of the paper).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/trsm.hpp"
#include "core/dgefmm.hpp"
#include "solver/lu.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"

namespace strassen {
namespace {

using blas::Diag;
using blas::Side;
using blas::Uplo;

// Builds a well-conditioned triangular matrix: random entries with a
// dominant diagonal.
Matrix random_triangular(index_t n, Uplo uplo, Diag diag, Rng& rng) {
  Matrix a(n, n);
  fill(a.view(), 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const bool in_tri = (uplo == Uplo::lower) ? (i > j) : (i < j);
      if (in_tri) a(i, j) = rng.uniform(-0.5, 0.5);
    }
    a(j, j) = (diag == Diag::unit) ? rng.uniform(5.0, 9.0)  // must be ignored
                                   : rng.uniform(1.0, 2.0) *
                                         (rng.uniform() < 0 ? -1.0 : 1.0);
  }
  return a;
}

// Reference check: verify op(A) * X == alpha * B (left) or
// X * op(A) == alpha * B (right), with the unit diagonal substituted.
double trsm_residual(Side side, Uplo uplo, Trans trans, Diag diag,
                     const Matrix& a, const Matrix& x, const Matrix& b,
                     double alpha) {
  Matrix a_eff(a.rows(), a.cols());
  copy(a.view(), a_eff.view());
  // Zero out the non-referenced triangle and apply the unit diagonal.
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      const bool in_tri =
          (uplo == Uplo::lower) ? (i >= j) : (i <= j);
      if (!in_tri) a_eff(i, j) = 0.0;
    }
    if (diag == Diag::unit) a_eff(j, j) = 1.0;
  }
  Matrix lhs(b.rows(), b.cols());
  if (side == Side::left) {
    blas::gemm_reference(trans, Trans::no, b.rows(), b.cols(), b.rows(), 1.0,
                         a_eff.data(), a_eff.ld(), x.data(), x.ld(), 0.0,
                         lhs.data(), lhs.ld());
  } else {
    blas::gemm_reference(Trans::no, trans, b.rows(), b.cols(), b.cols(), 1.0,
                         x.data(), x.ld(), a_eff.data(), a_eff.ld(), 0.0,
                         lhs.data(), lhs.ld());
  }
  double worst = 0.0;
  for (index_t j = 0; j < b.cols(); ++j) {
    for (index_t i = 0; i < b.rows(); ++i) {
      worst = std::max(worst, std::abs(lhs(i, j) - alpha * b(i, j)));
    }
  }
  return worst;
}

class TrsmAllCases
    : public ::testing::TestWithParam<std::tuple<Side, Uplo, Trans, Diag>> {};

TEST_P(TrsmAllCases, SolvesAgainstReference) {
  const auto [side, uplo, trans, diag] = GetParam();
  Rng rng(91);
  const index_t m = 23, n = 17;
  const index_t ka = (side == Side::left) ? m : n;
  Matrix a = random_triangular(ka, uplo, diag, rng);
  Matrix b = random_matrix(m, n, rng);
  Matrix x(m, n);
  copy(b.view(), x.view());
  const double alpha = 1.5;
  blas::dtrsm(side, uplo, trans, diag, m, n, alpha, a.data(), a.ld(),
              x.data(), x.ld());
  EXPECT_LT(trsm_residual(side, uplo, trans, diag, a, x, b, alpha), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, TrsmAllCases,
    ::testing::Combine(::testing::Values(Side::left, Side::right),
                       ::testing::Values(Uplo::lower, Uplo::upper),
                       ::testing::Values(Trans::no, Trans::transpose),
                       ::testing::Values(Diag::non_unit, Diag::unit)));

TEST(Trsm, AlphaZeroZerosB) {
  Rng rng(5);
  Matrix a = random_triangular(4, Uplo::lower, Diag::non_unit, rng);
  Matrix b = random_matrix(4, 3, rng);
  blas::dtrsm(Side::left, Uplo::lower, Trans::no, Diag::non_unit, 4, 3, 0.0,
              a.data(), 4, b.data(), 4);
  EXPECT_EQ(max_abs(b.view()), 0.0);
}

TEST(Trsm, IdentitySolveIsScale) {
  Matrix a(5, 5);
  set_identity(a.view());
  Rng rng(6);
  Matrix b = random_matrix(5, 4, rng);
  Matrix x(5, 4);
  copy(b.view(), x.view());
  blas::dtrsm(Side::left, Uplo::upper, Trans::no, Diag::non_unit, 5, 4, 2.0,
              a.data(), 5, x.data(), 5);
  for (index_t j = 0; j < 4; ++j) {
    for (index_t i = 0; i < 5; ++i) {
      EXPECT_DOUBLE_EQ(x(i, j), 2.0 * b(i, j));
    }
  }
}

// ------------------------------------------------------------------- LU

class LuSizes : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {
};

TEST_P(LuSizes, FactorAndSolve) {
  const auto [n, block] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 31 + block));
  Matrix a = random_matrix(n, n, rng);
  // Diagonal boost keeps the condition number moderate.
  for (index_t i = 0; i < n; ++i) a(i, i) += 4.0;
  Matrix b = random_matrix(n, 3, rng);

  solver::LuOptions opts;
  opts.block = block;
  solver::LuStats stats;
  const solver::LuFactors f = solver::lu_factor(a.view(), opts, &stats);
  ASSERT_EQ(f.info, 0);
  const Matrix x = solver::lu_solve(f, b.view());
  EXPECT_LT(solver::relative_residual(a.view(), x.view(), b.view()), 1e-13)
      << "n=" << n << " block=" << block;
  if (n > block) {
    EXPECT_GT(stats.gemm_calls, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LuSizes,
    ::testing::Combine(::testing::Values<index_t>(1, 2, 5, 16, 33, 64, 100,
                                                  130),
                       ::testing::Values<index_t>(1, 8, 64)));

TEST(Lu, ReconstructsPaEqualsLu) {
  const index_t n = 40;
  Rng rng(17);
  Matrix a = random_matrix(n, n, rng);
  solver::LuOptions opts;
  opts.block = 13;  // non-divisor block width
  const solver::LuFactors f = solver::lu_factor(a.view(), opts);
  ASSERT_EQ(f.info, 0);

  // Build L and U from the packed factors.
  Matrix l(n, n), u(n, n);
  fill(l.view(), 0.0);
  fill(u.view(), 0.0);
  for (index_t j = 0; j < n; ++j) {
    l(j, j) = 1.0;
    for (index_t i = j + 1; i < n; ++i) l(i, j) = f.lu(i, j);
    for (index_t i = 0; i <= j; ++i) u(i, j) = f.lu(i, j);
  }
  Matrix lu_prod(n, n);
  blas::gemm_reference(Trans::no, Trans::no, n, n, n, 1.0, l.data(), n,
                       u.data(), n, 0.0, lu_prod.data(), n);

  // Apply the recorded pivots to A in factorization order.
  Matrix pa(n, n);
  copy(a.view(), pa.view());
  for (index_t k = 0; k < n; ++k) {
    const index_t piv = f.ipiv[static_cast<std::size_t>(k)];
    if (piv != k) {
      for (index_t j = 0; j < n; ++j) std::swap(pa(k, j), pa(piv, j));
    }
  }
  EXPECT_LT(max_abs_diff(pa.view(), lu_prod.view()), 1e-12);
}

TEST(Lu, DetectsExactSingularity) {
  Matrix a(5, 5);
  fill(a.view(), 0.0);
  // Rank-1 matrix: every 2x2 minor vanishes.
  for (index_t j = 0; j < 5; ++j) {
    for (index_t i = 0; i < 5; ++i) a(i, j) = double(i + 1) * double(j + 1);
  }
  const solver::LuFactors f = solver::lu_factor(a.view());
  EXPECT_GT(f.info, 0);
}

TEST(Lu, PivotingHandlesZeroLeadingElement) {
  // [[0, 1], [1, 0]] requires a pivot swap immediately.
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  const solver::LuFactors f = solver::lu_factor(a.view());
  ASSERT_EQ(f.info, 0);
  Matrix b(2, 1);
  b(0, 0) = 3;
  b(1, 0) = 7;
  const Matrix x = solver::lu_solve(f, b.view());
  EXPECT_NEAR(x(0, 0), 7.0, 1e-14);
  EXPECT_NEAR(x(1, 0), 3.0, 1e-14);
}

TEST(Lu, BlockedAndUnblockedAgree) {
  const index_t n = 96;
  Rng rng(3);
  Matrix a = random_matrix(n, n, rng);
  for (index_t i = 0; i < n; ++i) a(i, i) += 4.0;
  solver::LuOptions unblocked;
  unblocked.block = 1;
  solver::LuOptions blocked;
  blocked.block = 32;
  const solver::LuFactors f1 = solver::lu_factor(a.view(), unblocked);
  const solver::LuFactors f2 = solver::lu_factor(a.view(), blocked);
  ASSERT_EQ(f1.info, 0);
  ASSERT_EQ(f2.info, 0);
  // Identical pivot sequences (pivot choice does not depend on blocking).
  EXPECT_EQ(f1.ipiv, f2.ipiv);
  EXPECT_LT(max_abs_diff(f1.lu.view(), f2.lu.view()), 1e-10);
}

TEST(Lu, DgefmmBackendMatchesDgemmBackend) {
  const index_t n = 150;
  Rng rng(8);
  Matrix a = random_matrix(n, n, rng);
  for (index_t i = 0; i < n; ++i) a(i, i) += 4.0;
  Matrix b = random_matrix(n, 2, rng);

  solver::LuOptions base;
  base.block = 32;
  base.gemm = core::gemm_backend_dgemm();
  solver::LuOptions fast = base;
  // Force Strassen recursion even at these test sizes.
  fast.gemm = [](Trans ta, Trans tb, index_t m, index_t nn, index_t k,
                 double alpha, const double* aa, index_t lda,
                 const double* bb, index_t ldb, double beta, double* cc,
                 index_t ldc) {
    core::DgefmmConfig cfg;
    cfg.cutoff = core::CutoffCriterion::square_simple(16);
    EXPECT_EQ(0, core::dgefmm(ta, tb, m, nn, k, alpha, aa, lda, bb, ldb,
                              beta, cc, ldc, cfg));
  };

  const solver::LuFactors f1 = solver::lu_factor(a.view(), base);
  const solver::LuFactors f2 = solver::lu_factor(a.view(), fast);
  ASSERT_EQ(f1.info, 0);
  ASSERT_EQ(f2.info, 0);
  const Matrix x1 = solver::lu_solve(f1, b.view());
  const Matrix x2 = solver::lu_solve(f2, b.view());
  EXPECT_LT(solver::relative_residual(a.view(), x1.view(), b.view()), 1e-13);
  EXPECT_LT(solver::relative_residual(a.view(), x2.view(), b.view()), 1e-12);
}

TEST(Lu, IterativeRefinementImprovesResidual) {
  const index_t n = 120;
  Rng rng(21);
  Matrix a = random_matrix(n, n, rng);
  for (index_t i = 0; i < n; ++i) a(i, i) += 2.0;
  Matrix b = random_matrix(n, 2, rng);

  solver::LuOptions opts;
  opts.block = 24;
  // Aggressive Strassen inside the factorization (cutoff far below
  // profitable sizes) to give refinement something to clean up.
  opts.gemm = [](Trans ta, Trans tb, index_t m, index_t nn, index_t k,
                 double alpha, const double* aa, index_t lda,
                 const double* bb, index_t ldb, double beta, double* cc,
                 index_t ldc) {
    core::DgefmmConfig cfg;
    cfg.cutoff = core::CutoffCriterion::square_simple(8);
    EXPECT_EQ(0, core::dgefmm(ta, tb, m, nn, k, alpha, aa, lda, bb, ldb,
                              beta, cc, ldc, cfg));
  };
  const solver::LuFactors f = solver::lu_factor(a.view(), opts);
  ASSERT_EQ(f.info, 0);
  Matrix x = solver::lu_solve(f, b.view());
  const double before =
      solver::relative_residual(a.view(), x.view(), b.view());
  const double after = solver::lu_refine(f, a.view(), b.view(), x.view(), 2);
  EXPECT_LE(after, before * 1.01);  // never worse
  EXPECT_LT(after, 1e-15);          // and essentially at working accuracy
}

TEST(Lu, RefinementIsStableOnAlreadyGoodSolution) {
  const index_t n = 60;
  Rng rng(22);
  Matrix a = random_matrix(n, n, rng);
  for (index_t i = 0; i < n; ++i) a(i, i) += 4.0;
  Matrix b = random_matrix(n, 1, rng);
  const solver::LuFactors f = solver::lu_factor(a.view());
  ASSERT_EQ(f.info, 0);
  Matrix x = solver::lu_solve(f, b.view());
  const double r1 = solver::lu_refine(f, a.view(), b.view(), x.view(), 3);
  EXPECT_LT(r1, 1e-15);
}

TEST(Lu, MultipleRightHandSides) {
  const index_t n = 64, nrhs = 17;
  Rng rng(10);
  Matrix a = random_matrix(n, n, rng);
  for (index_t i = 0; i < n; ++i) a(i, i) += 4.0;
  Matrix b = random_matrix(n, nrhs, rng);
  const solver::LuFactors f = solver::lu_factor(a.view());
  ASSERT_EQ(f.info, 0);
  const Matrix x = solver::lu_solve(f, b.view());
  EXPECT_LT(solver::relative_residual(a.view(), x.view(), b.view()), 1e-13);
}

}  // namespace
}  // namespace strassen
