// Numerical stability tests. The paper's introduction leans on Brent's and
// Higham's analyses: Strassen's algorithm satisfies a normwise (not
// elementwise) error bound that grows by a modest constant per recursion
// level, which is "stable enough to be ... considered seriously". These
// tests check that behaviour empirically against a long-double reference.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/dgefmm.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"

namespace strassen {
namespace {

// Naive product accumulated in long double: the "truth" for error
// measurements (its own error is ~ eps_ld * k, far below double noise).
Matrix long_double_product(const Matrix& a, const Matrix& b) {
  const index_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      long double sum = 0.0L;
      for (index_t p = 0; p < k; ++p) {
        sum += static_cast<long double>(a(i, p)) *
               static_cast<long double>(b(p, j));
      }
      c(i, j) = static_cast<double>(sum);
    }
  }
  return c;
}

double max_error_at_depth(const Matrix& a, const Matrix& b,
                          const Matrix& truth, int depth,
                          core::Scheme scheme) {
  const index_t m = a.rows(), n = b.cols(), k = a.cols();
  Matrix c(m, n);
  fill(c.view(), 0.0);
  core::DgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::fixed_depth(depth);
  cfg.scheme = scheme;
  EXPECT_EQ(0, core::dgefmm(Trans::no, Trans::no, m, n, k, 1.0, a.data(),
                            a.ld(), b.data(), b.ld(), 0.0, c.data(), c.ld(),
                            cfg));
  return max_abs_diff(c.view(), truth.view());
}

class StabilityFixture : public ::testing::Test {
 protected:
  static constexpr index_t kN = 192;
  void SetUp() override {
    Rng rng(808);
    a_ = random_matrix(kN, kN, rng);
    b_ = random_matrix(kN, kN, rng);
    truth_ = long_double_product(a_, b_);
  }
  Matrix a_, b_, truth_;
};

TEST_F(StabilityFixture, BaselineDgemmErrorIsTiny) {
  // Conventional multiplication: elementwise bound ~ k * eps.
  const double err = max_error_at_depth(a_, b_, truth_, 0,
                                        core::Scheme::automatic);
  EXPECT_LT(err, 1e-13);
}

TEST_F(StabilityFixture, WinogradErrorStaysWithinNormwiseBound) {
  // Higham's bound for the Winograd variant: |C - C_hat| <= c * n^(log2 18)
  // * u * ||A||_max ||B||_max (normwise). With n = 192 and u ~ 1.1e-16 that
  // is ~1e-9 with a generous constant; real errors land far below.
  for (int depth = 1; depth <= 4; ++depth) {
    const double err = max_error_at_depth(a_, b_, truth_, depth,
                                          core::Scheme::automatic);
    EXPECT_LT(err, 1e-10) << "depth " << depth;
  }
}

TEST_F(StabilityFixture, ErrorGrowsOnlyModeratelyPerLevel) {
  // Each recursion level may lose a small constant factor; 4 levels must
  // not blow the error up by more than ~3 orders of magnitude over the
  // conventional algorithm.
  const double base = std::max(
      max_error_at_depth(a_, b_, truth_, 0, core::Scheme::automatic), 1e-16);
  const double deep =
      max_error_at_depth(a_, b_, truth_, 4, core::Scheme::automatic);
  EXPECT_LT(deep / base, 1e3);
}

TEST_F(StabilityFixture, OriginalVariantAlsoStable) {
  const double err =
      max_error_at_depth(a_, b_, truth_, 3, core::Scheme::original);
  EXPECT_LT(err, 1e-10);
}

TEST_F(StabilityFixture, Strassen2AccumulationStable) {
  // beta != 0 exercises the multiply-accumulate path.
  Matrix c(kN, kN), c_truth(kN, kN);
  Rng rng(9);
  fill_random(c.view(), rng);
  copy(c.view(), c_truth.view());
  for (index_t j = 0; j < kN; ++j) {
    for (index_t i = 0; i < kN; ++i) {
      c_truth(i, j) = 0.5 * c_truth(i, j) + truth_(i, j);
    }
  }
  core::DgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::fixed_depth(3);
  EXPECT_EQ(0, core::dgefmm(Trans::no, Trans::no, kN, kN, kN, 1.0,
                            a_.data(), a_.ld(), b_.data(), b_.ld(), 0.5,
                            c.data(), c.ld(), cfg));
  EXPECT_LT(max_abs_diff(c.view(), c_truth.view()), 1e-10);
}

TEST(Stability, ScalingInvariance) {
  // Strassen's normwise bound scales with ||A|| ||B||: scaling A by 2^20
  // must scale the error by ~2^20, not blow it up disproportionately.
  Rng rng(11);
  const index_t n = 128;
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  const Matrix truth_small = long_double_product(a, b);
  const double err_small =
      max_error_at_depth(a, b, truth_small, 3, core::Scheme::automatic);

  const double scale = 1048576.0;  // 2^20, exactly representable
  Matrix a_big(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) a_big(i, j) = a(i, j) * scale;
  }
  const Matrix truth_big = long_double_product(a_big, b);
  const double err_big =
      max_error_at_depth(a_big, b, truth_big, 3, core::Scheme::automatic);
  // Power-of-two scaling is exact in floating point, so the errors scale
  // exactly.
  EXPECT_NEAR(err_big / scale, err_small, 1e-12);
}

}  // namespace
}  // namespace strassen
