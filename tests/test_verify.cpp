// Static-verification layer tests (src/verify/).
//
// The compile-time proofs in verify/proofs.hpp already reject a broken
// schedule table at build time; these tests exercise the *checkers*
// themselves at run time:
//
//  1. Positive: every shipped table passes the symbolic and pebble-game
//     checks (the same constexpr functions, evaluated at run time).
//  2. Negative: seeded corruptions -- a flipped coefficient, a dropped
//     accumulation term, a stretched temp lifetime, a wrong Table 1 claim --
//     are each caught with the specific error code. This is the test that
//     the checkers actually check something.
//  3. Coupling: the executed operation counts of the IR interpreter
//     (core/winograd.cpp run_ir_schedule) match counts derived purely from
//     the IR tables plus the add-kernel recording rules. Since the runtime
//     consumes the same tables the prover verified, this closes the loop
//     proof == table == execution.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "core/dgefmm.hpp"
#include "support/opcount.hpp"
#include "support/random.hpp"
#include "verify/pebble.hpp"
#include "verify/proofs.hpp"
#include "verify/schedule_dag.hpp"
#include "verify/schedule_ir.hpp"
#include "verify/symbolic.hpp"

namespace strassen {
namespace {

namespace v = verify;

using core::CutoffCriterion;
using core::DgefmmConfig;
using core::Scheme;

// Mutable copy of a schedule: the shipped tables are constexpr and point at
// static arrays, so negative tests copy steps/temps into locals first.
struct ScheduleCopy {
  std::array<v::Step, 32> steps{};
  std::array<v::TempDecl, v::kMaxTemps> temps{};
  v::Schedule s;

  explicit ScheduleCopy(const v::Schedule& src) : s(src) {
    std::copy(src.steps, src.steps + src.nsteps, steps.begin());
    std::copy(src.temps, src.temps + src.ntemps, temps.begin());
    s.steps = steps.data();
    s.temps = temps.data();
  }
};

// ------------------------------------------------------------- positive

TEST(ScheduleProofs, ShippedSchedulesSatisfySymbolicChecker) {
  for (const v::Schedule* s : v::kAllSchedules) {
    EXPECT_EQ(v::check_schedule(*s), v::kOk) << s->name;
  }
}

TEST(ScheduleProofs, ShippedSchedulesSatisfyPebbleGame) {
  for (const v::Schedule* s : v::kAllSchedules) {
    EXPECT_EQ(v::check_lifetimes(*s), v::kOk) << s->name;
  }
}

TEST(ScheduleProofs, Table1TempCounts) {
  EXPECT_EQ(v::kStrassen1Beta0.peak_temps, 2);
  EXPECT_EQ(v::kStrassen2.peak_temps, 3);
  EXPECT_EQ(v::kOriginalBeta0.peak_temps, 3);
}

TEST(ScheduleProofs, FusedTablesSatisfyChecker) {
  EXPECT_EQ(v::check_fused<2>(v::kFusedL1, v::kFusedL1Products), v::kOk);
  EXPECT_EQ(v::check_fused<4>(v::kFusedL2.p, v::kFusedL2Products), v::kOk);
  EXPECT_EQ(v::fused_peak_temps(v::kFusedL1, v::kFusedL1Products, 2), 0);
  EXPECT_EQ(v::fused_peak_temps(v::kFusedL2.p, v::kFusedL2Products, 4), 0);
}

// ------------------------------------------------------------- negative

TEST(ScheduleProofsNegative, FlippedCoefficientRejected) {
  for (const v::Schedule* orig : v::kAllSchedules) {
    ScheduleCopy c(*orig);
    // Flip the sign of the first linear-combination coefficient.
    for (int i = 0; i < c.s.nsteps; ++i) {
      if (c.steps[static_cast<std::size_t>(i)].op == v::Op::lin) {
        c.steps[static_cast<std::size_t>(i)].t[0].c.v *= -1.0;
        break;
      }
    }
    EXPECT_EQ(v::check_schedule(c.s), v::kErrResultMismatch) << orig->name;
  }
}

TEST(ScheduleProofsNegative, FlippedProductSignRejected) {
  ScheduleCopy c(v::kStrassen2);
  for (int i = 0; i < c.s.nsteps; ++i) {
    v::Step& st = c.steps[static_cast<std::size_t>(i)];
    if (st.op == v::Op::mul) {
      st.am *= -1.0;
      break;
    }
  }
  EXPECT_EQ(v::check_schedule(c.s), v::kErrResultMismatch);
}

TEST(ScheduleProofsNegative, DroppedAccumulationTermRejected) {
  for (const v::Schedule* orig : v::kAllSchedules) {
    ScheduleCopy c(*orig);
    // Drop the second term of the first multi-term linear combination whose
    // destination is a C quadrant (an accumulation the result depends on).
    bool mutated = false;
    for (int i = 0; i < c.s.nsteps && !mutated; ++i) {
      v::Step& st = c.steps[static_cast<std::size_t>(i)];
      if (st.op == v::Op::lin && st.nt >= 2 && st.dst >= v::kC11 &&
          st.dst < v::kT0) {
        st.nt -= 1;
        mutated = true;
      }
    }
    if (!mutated) continue;  // schedule accumulates through mul steps only
    EXPECT_EQ(v::check_schedule(c.s), v::kErrResultMismatch) << orig->name;
  }
}

TEST(ScheduleProofsNegative, ExtendedTempLifetimeRejected) {
  // A lifetime window wider than the actual first/last accesses claims more
  // concurrency than the schedule has; the pebble game demands tightness.
  ScheduleCopy c(v::kStrassen1Beta0);
  c.temps[1].last += 1;
  ASSERT_LT(c.temps[1].last, c.s.nsteps);
  EXPECT_EQ(v::check_lifetimes(c.s), v::kErrLifetimeLast);

  ScheduleCopy c2(v::kStrassen1Beta0);
  c2.temps[1].first -= 1;
  ASSERT_GE(c2.temps[1].first, 0);
  EXPECT_EQ(v::check_lifetimes(c2.s), v::kErrLifetimeFirst);
}

TEST(ScheduleProofsNegative, InflatedTempCountRejected) {
  ScheduleCopy c(v::kStrassen2);
  c.s.peak_temps += 1;
  EXPECT_EQ(v::check_lifetimes(c.s), v::kErrPeakTempsMismatch);
}

TEST(ScheduleProofsNegative, WrongFootprintRejected) {
  ScheduleCopy c(v::kStrassen1Beta0);
  c.s.footprint.mn += 1;
  EXPECT_EQ(v::check_lifetimes(c.s), v::kErrFootprintMismatch);
}

TEST(ScheduleProofsNegative, CorruptedFusedTableRejected) {
  v::FProduct prods[v::kFusedL1Products];
  std::copy(v::kFusedL1, v::kFusedL1 + v::kFusedL1Products, prods);
  prods[0].c[0].g = static_cast<signed char>(-prods[0].c[0].g);
  EXPECT_EQ(v::check_fused<2>(prods, v::kFusedL1Products),
            v::kErrResultMismatch);
}

TEST(ScheduleProofsNegative, ReadBeforeWriteRejected) {
  ScheduleCopy c(v::kStrassen2);
  // Make the first step read a temp that nothing has written yet.
  for (int i = 0; i < c.s.nsteps; ++i) {
    v::Step& st = c.steps[static_cast<std::size_t>(i)];
    if (st.op == v::Op::lin) {
      st.t[0].reg = v::kT2;
      break;
    }
  }
  EXPECT_EQ(v::check_schedule(c.s), v::kErrReadUnwritten);
}

// ----------------------------------------------- IR-derived opcounts

count_t c2(index_t a, index_t b) { return static_cast<count_t>(a) * b; }

// blas::dgemm's record_ops (same as the mirror in test_opcount.cpp).
count_t gemm_cost(index_t m, index_t k, index_t n, double alpha,
                  double beta) {
  if (m == 0 || n == 0) return 0;
  count_t ops = 0;
  if (k > 0 && alpha != 0.0) {
    ops += c2(m, k) * n;
    ops += c2(m, k - 1) * n;
    if (beta != 0.0) ops += c2(m, n);
    if (alpha != 1.0) ops += c2(m, n);
  }
  if (beta != 0.0 && beta != 1.0) ops += c2(m, n);
  return ops;
}

// core/add_kernels.cpp recording rules.
count_t axpy_cost(double a, count_t mn) {
  if (a == 0.0) return 0;
  if (a == 1.0 || a == -1.0) return mn;
  return 2 * mn;
}

count_t axpby_cost(double a, double b, count_t mn) {
  if (b == 0.0) return a == 1.0 ? 0 : mn;
  if (a == 1.0 && b == 1.0) return mn;
  count_t ops = mn;
  if (a != 1.0) ops += mn;
  if (b != 1.0) ops += mn;
  return ops;
}

count_t scale_cost(double b, count_t mn) {
  return (b == 1.0 || b == 0.0) ? 0 : mn;
}

// Operations one level of run_ir_schedule performs on an (even) m x k x n
// problem whose seven sub-products run as base GEMMs, derived purely from
// the IR table by replaying the interpreter's kernel dispatch.
count_t ir_level_ops(const v::Schedule& s, index_t m, index_t k, index_t n,
                     double alpha, double beta) {
  const index_t m2 = m / 2, k2 = k / 2, n2 = n / 2;
  struct RC {
    index_t r = 0, c = 0;
  };
  RC shp[v::kNumRegs];
  for (int q = 0; q < 4; ++q) {
    shp[v::kA11 + q] = {m2, k2};
    shp[v::kB11 + q] = {k2, n2};
    shp[v::kC11 + q] = {m2, n2};
  }
  const auto coef = [beta](const v::Coef& cf) {
    return cf.s == v::Sym::beta ? cf.v * beta : cf.v;
  };
  const auto unit = [](const v::Coef& cf) {
    return cf.s == v::Sym::one && (cf.v == 1.0 || cf.v == -1.0);
  };
  count_t ops = 0;
  for (int i = 0; i < s.nsteps; ++i) {
    const v::Step& st = s.steps[i];
    if (st.op == v::Op::mul) {
      const RC x = shp[st.x], y = shp[st.y];
      shp[st.dst] = {x.r, y.c};
      ops += gemm_cost(x.r, x.c, y.c, st.am * alpha, coef(st.bc));
      continue;
    }
    int self = -1;
    for (int t = 0; t < st.nt; ++t) {
      if (st.t[t].reg == st.dst) self = t;
    }
    const RC s0 = shp[st.t[0].reg];
    shp[st.dst] = s0;
    const count_t mn = c2(s0.r, s0.c);
    if (self < 0) {
      if (st.nt == 1 && st.t[0].c.s == v::Sym::one && st.t[0].c.v == 1.0) {
        // copy_into records nothing
      } else if (st.nt == 2 && unit(st.t[0].c) && unit(st.t[1].c)) {
        if (st.t[0].c.v == -1.0 && st.t[1].c.v == -1.0) {
          ops += axpby_cost(-1.0, 0.0, mn) + axpy_cost(-1.0, mn);
        } else {
          ops += mn;  // add / sub / sub-reversed
        }
      } else {
        ops += axpby_cost(coef(st.t[0].c), 0.0, mn);
        for (int t = 1; t < st.nt; ++t) {
          ops += axpy_cost(coef(st.t[t].c), mn);
        }
      }
    } else if (st.nt == 2) {
      const v::Coef& cs = st.t[self].c;
      const v::Coef& co = st.t[1 - self].c;
      if (unit(cs) && unit(co)) {
        ops += (cs.v == -1.0 && co.v == -1.0) ? axpby_cost(-1.0, -1.0, mn)
                                              : mn;
      } else {
        ops += axpby_cost(coef(co), coef(cs), mn);
      }
    } else {
      double sc = 0.0;
      for (int t = 0; t < st.nt; ++t) {
        if (t == self) sc = coef(st.t[t].c);
      }
      bool first = true;
      for (int t = 0; t < st.nt; ++t) {
        if (t == self) continue;
        if (first) {
          ops += axpby_cost(coef(st.t[t].c), sc, mn);
          first = false;
        } else {
          ops += axpy_cost(coef(st.t[t].c), mn);
        }
      }
      if (first) ops += scale_cost(sc, mn);
    }
  }
  return ops;
}

count_t measured_ops(index_t m, index_t n, index_t k, double alpha,
                     double beta, const DgefmmConfig& cfg) {
  Rng rng(77);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c = random_matrix(m, n, rng);
  opcount::ScopedCounting guard;
  EXPECT_EQ(core::dgefmm(Trans::no, Trans::no, m, n, k, alpha, a.data(), m,
                         b.data(), k, beta, c.data(), m, cfg),
            0);
  return opcount::counters().total();
}

struct IrOpsCase {
  Scheme scheme;
  const v::Schedule* table;
  double alpha, beta;
};

TEST(IrOpcount, ExecutionMatchesTableDerivedCounts) {
  const IrOpsCase cases[] = {
      {Scheme::strassen1, &v::kStrassen1Beta0, 1.0, 0.0},
      {Scheme::strassen1, &v::kStrassen1General, 1.0, 0.5},
      {Scheme::strassen2, &v::kStrassen2, 1.0, 0.5},
      {Scheme::strassen2, &v::kStrassen2, 2.0, 0.0},
      {Scheme::original, &v::kOriginalBeta0, 1.0, 0.0},
  };
  const struct {
    index_t m, k, n;
  } shapes[] = {{64, 64, 64}, {48, 64, 32}};
  for (const IrOpsCase& cs : cases) {
    for (const auto& sh : shapes) {
      DgefmmConfig cfg;
      cfg.cutoff = CutoffCriterion::fixed_depth(1);
      cfg.scheme = cs.scheme;
      EXPECT_EQ(
          measured_ops(sh.m, sh.n, sh.k, cs.alpha, cs.beta, cfg),
          ir_level_ops(*cs.table, sh.m, sh.k, sh.n, cs.alpha, cs.beta))
          << cs.table->name << " m=" << sh.m << " k=" << sh.k
          << " n=" << sh.n;
    }
  }
}

TEST(IrOpcount, FootprintDrivesWorkspacePredictor) {
  // The per-level workspace predictor must equal footprint_doubles of the
  // schedule actually selected -- one even-shape probe per schedule.
  const index_t m = 64, k = 64, n = 64;
  const index_t m2 = m / 2, k2 = k / 2, n2 = n / 2;
  struct Case {
    Scheme scheme;
    double beta;
    const v::Schedule* table;
  };
  const Case cases[] = {
      {Scheme::strassen1, 0.0, &v::kStrassen1Beta0},
      {Scheme::strassen1, 1.0, &v::kStrassen1General},
      {Scheme::strassen2, 1.0, &v::kStrassen2},
  };
  for (const Case& cs : cases) {
    DgefmmConfig cfg;
    cfg.cutoff = CutoffCriterion::fixed_depth(1);
    cfg.scheme = cs.scheme;
    EXPECT_EQ(core::dgefmm_workspace_doubles(m, n, k, cs.beta, cfg),
              v::footprint_doubles(cs.table->footprint, m2, k2, n2))
        << cs.table->name;
  }
}

// --- task-DAG linear-extension lemma ---------------------------------------
//
// schedule_dag.hpp static_asserts that the executor's fixed ascending
// combine order is a linear extension of both shipped DAGs; these tests
// exercise the checker itself at run time, including orders and tables it
// must reject (the compile-time proof only ever sees passing inputs).

TEST(ScheduleDagOrder, AscendingOrderIsLinearExtension) {
  EXPECT_TRUE(v::order_is_linear_extension(
      v::kDagL1, v::ascending_order<v::kFusedL1Products, 4>()));
  EXPECT_TRUE(v::order_is_linear_extension(
      v::kDagL2, v::ascending_order<v::kFusedL2Products, 16>()));
}

TEST(ScheduleDagOrder, CombineBeforeProducerIsRejected) {
  // Move block 0's combine node in front of one of its producers: the
  // order stays a permutation but breaks exactly one dependency edge.
  auto order = v::ascending_order<v::kFusedL1Products, 4>();
  const int combine0 = v::kFusedL1Products;
  const int producer = v::kDagL1.terms[v::kDagL1.term_begin[0]].product;
  std::swap(order.at[producer], order.at[combine0]);
  EXPECT_FALSE(v::order_is_linear_extension(v::kDagL1, order));
}

TEST(ScheduleDagOrder, NonPermutationIsRejected) {
  auto dup = v::ascending_order<v::kFusedL1Products, 4>();
  dup.at[0] = dup.at[1];
  EXPECT_FALSE(v::order_is_linear_extension(v::kDagL1, dup));

  auto oob = v::ascending_order<v::kFusedL2Products, 16>();
  oob.at[0] = v::kFusedL2Products + 16;
  EXPECT_FALSE(v::order_is_linear_extension(v::kDagL2, oob));
}

TEST(ScheduleDagOrder, ReorderedCombineListIsRejected) {
  // A combine list that is not ascending in product index no longer
  // matches the deterministic application order the lemma certifies.
  auto dag = v::kDagL1;
  std::swap(dag.terms[dag.term_begin[0]], dag.terms[dag.term_begin[0] + 1]);
  EXPECT_FALSE(v::dag_covers_table(dag, v::kFusedL1));
  EXPECT_TRUE(v::order_is_linear_extension(
      dag, v::ascending_order<v::kFusedL1Products, 4>()));
}

}  // namespace
}  // namespace strassen
