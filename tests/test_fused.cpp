// Tests for the packing-fused schedule (Scheme::fused): agreement with the
// classic schedules and the reference GEMM within the stability error
// model, exact workspace accounting, fused-level bookkeeping, and the
// memory claim (no arena workspace at fused levels).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "blas/gemm.hpp"
#include "core/dgefmm.hpp"
#include "core/workspace.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"

namespace strassen {
namespace {

using core::CutoffCriterion;
using core::DgefmmConfig;
using core::DgefmmStats;
using core::Scheme;

struct Shape {
  index_t m, n, k;
};

// Odd, even, mod-4 (two fused levels), and rectangular shapes.
const std::vector<Shape> kShapes = {
    {64, 64, 64},  {96, 96, 96},  {65, 65, 65},  {63, 65, 64},
    {100, 40, 70}, {40, 100, 70}, {30, 200, 30}, {17, 17, 17},
};

const Trans kTrans[] = {Trans::no, Trans::transpose};

double worst_diff(const Matrix& x, const Matrix& y, index_t m, index_t n) {
  double worst = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      worst = std::max(worst, std::abs(x(i, j) - y(i, j)));
    }
  }
  return worst;
}

class FusedAgreement
    : public ::testing::TestWithParam<std::tuple<int, int, int, double>> {};

TEST_P(FusedAgreement, MatchesReferenceAndClassicWithinErrorModel) {
  const auto [si, tai, tbi, beta] = GetParam();
  const Shape s = kShapes[static_cast<std::size_t>(si)];
  const Trans ta = kTrans[tai], tb = kTrans[tbi];
  const double alpha = 1.0;

  Rng rng(0xFD5ED000ULL + static_cast<std::uint64_t>(si));
  const index_t a_rows = is_trans(ta) ? s.k : s.m;
  const index_t a_cols = is_trans(ta) ? s.m : s.k;
  const index_t b_rows = is_trans(tb) ? s.n : s.k;
  const index_t b_cols = is_trans(tb) ? s.k : s.n;
  Matrix a = random_matrix(a_rows, a_cols, rng);
  Matrix b = random_matrix(b_rows, b_cols, rng);
  Matrix c0 = random_matrix(s.m, s.n, rng);

  DgefmmConfig fused;
  fused.cutoff = CutoffCriterion::square_simple(8);
  fused.scheme = Scheme::fused;
  Arena arena;
  fused.workspace = &arena;

  Matrix c_fused(s.m, s.n);
  copy(c0.view(), c_fused.view());
  ASSERT_EQ(core::dgefmm(ta, tb, s.m, s.n, s.k, alpha, a.data(), a_rows,
                         b.data(), b_rows, beta, c_fused.data(), s.m, fused),
            0);

  // Exact workspace accounting for the fused path.
  EXPECT_EQ(static_cast<count_t>(arena.peak()),
            core::dgefmm_workspace_doubles(s.m, s.n, s.k, beta, fused))
      << "m=" << s.m << " n=" << s.n << " k=" << s.k;

  Matrix c_ref(s.m, s.n);
  copy(c0.view(), c_ref.view());
  blas::gemm_reference(ta, tb, s.m, s.n, s.k, alpha, a.data(), a_rows,
                       b.data(), b_rows, beta, c_ref.data(), s.m);

  DgefmmConfig classic = fused;
  classic.scheme = Scheme::strassen2;
  Arena classic_arena;
  classic.workspace = &classic_arena;
  Matrix c_classic(s.m, s.n);
  copy(c0.view(), c_classic.view());
  ASSERT_EQ(core::dgefmm(ta, tb, s.m, s.n, s.k, alpha, a.data(), a_rows,
                         b.data(), b_rows, beta, c_classic.data(), s.m,
                         classic),
            0);

  // Same normwise model as the fuzz/stability suites: a modest multiple of
  // eps * k covers the per-level constant growth of both schedules.
  const double tol = 1e-11 * (static_cast<double>(s.k) + 10.0);
  EXPECT_LT(worst_diff(c_fused, c_ref, s.m, s.n), tol)
      << "vs reference: m=" << s.m << " n=" << s.n << " k=" << s.k
      << " beta=" << beta;
  EXPECT_LT(worst_diff(c_fused, c_classic, s.m, s.n), tol)
      << "vs STRASSEN2: m=" << s.m << " n=" << s.n << " k=" << s.k
      << " beta=" << beta;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FusedAgreement,
    ::testing::Combine(::testing::Range(0, static_cast<int>(kShapes.size())),
                       ::testing::Range(0, 2), ::testing::Range(0, 2),
                       ::testing::Values(0.0, 1.0, 0.5)));

TEST(Fused, OneLevelRunsSevenFusedProducts) {
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::fixed_depth(1);
  cfg.scheme = Scheme::fused;
  cfg.fused_levels = 1;
  DgefmmStats stats;
  cfg.stats = &stats;
  Rng rng(7);
  Matrix a = random_matrix(64, 64, rng);
  Matrix b = random_matrix(64, 64, rng);
  Matrix c(64, 64);
  fill(c.view(), 0.0);
  ASSERT_EQ(core::dgefmm(Trans::no, Trans::no, 64, 64, 64, 1.0, a.data(), 64,
                         b.data(), 64, 0.0, c.data(), 64, cfg),
            0);
  EXPECT_EQ(stats.fused_products, 7);
  EXPECT_EQ(stats.fused_depth, 1);
  EXPECT_EQ(stats.base_gemms, 7);
  EXPECT_EQ(stats.peak_workspace, 0u);
}

TEST(Fused, TwoLevelRunsFortyNineFusedProducts) {
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::fixed_depth(2);
  cfg.scheme = Scheme::fused;
  DgefmmStats stats;
  cfg.stats = &stats;
  Rng rng(8);
  Matrix a = random_matrix(64, 64, rng);
  Matrix b = random_matrix(64, 64, rng);
  Matrix c(64, 64);
  fill(c.view(), 0.0);
  ASSERT_EQ(core::dgefmm(Trans::no, Trans::no, 64, 64, 64, 1.0, a.data(), 64,
                         b.data(), 64, 0.0, c.data(), 64, cfg),
            0);
  EXPECT_EQ(stats.fused_products, 49);
  EXPECT_EQ(stats.fused_depth, 2);
  // Fully fused recursion allocates zero arena workspace: the S/T sums live
  // in the GEMM pack buffers and the U accumulations in C itself.
  EXPECT_EQ(stats.peak_workspace, 0u);
}

TEST(Fused, FusionDepthDropsToOneWhenHalvesAreOdd) {
  // 66 = 2 * 33: the first-level halves are odd, so only one level fuses
  // even though fused_levels allows two.
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::fixed_depth(2);
  cfg.scheme = Scheme::fused;
  DgefmmStats stats;
  cfg.stats = &stats;
  Rng rng(9);
  Matrix a = random_matrix(66, 66, rng);
  Matrix b = random_matrix(66, 66, rng);
  Matrix c(66, 66);
  fill(c.view(), 0.0);
  ASSERT_EQ(core::dgefmm(Trans::no, Trans::no, 66, 66, 66, 1.0, a.data(), 66,
                         b.data(), 66, 0.0, c.data(), 66, cfg),
            0);
  EXPECT_EQ(stats.fused_depth, 1);
  // The seven 33x33x33 leaves are still above the fixed-depth cutoff, so
  // they materialize and continue classically (which peels 33 -> 32).
  EXPECT_EQ(stats.fused_products, 0);
  EXPECT_GT(stats.peak_workspace, 0u);
  EXPECT_EQ(static_cast<count_t>(stats.peak_workspace),
            core::dgefmm_workspace_doubles(66, 66, 66, 0.0, cfg));
}

TEST(Fused, BetaAppliedExactlyOncePerQuadrant) {
  // With alpha == 0 the driver short-circuits, so probe beta handling with
  // a tiny alpha against the reference: every element of C must see beta
  // exactly once even though several products write each quadrant.
  const index_t n = 32;
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::fixed_depth(1);
  cfg.scheme = Scheme::fused;
  Rng rng(11);
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c = random_matrix(n, n, rng);
  Matrix c_ref(n, n);
  copy(c.view(), c_ref.view());
  const double beta = -0.75;
  ASSERT_EQ(core::dgefmm(Trans::no, Trans::no, n, n, n, 1.0, a.data(), n,
                         b.data(), n, beta, c.data(), n, cfg),
            0);
  blas::gemm_reference(Trans::no, Trans::no, n, n, n, 1.0, a.data(), n,
                       b.data(), n, beta, c_ref.data(), n);
  EXPECT_LT(worst_diff(c, c_ref, n, n), 1e-11 * (n + 10.0));
}

TEST(Fused, LeadingDimensionPaddingUntouched) {
  const index_t m = 40, n = 36, k = 44, ldc = 45;
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::square_simple(8);
  cfg.scheme = Scheme::fused;
  Rng rng(13);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c = random_matrix(ldc, n, rng);
  Matrix c_before(ldc, n);
  copy(c.view(), c_before.view());
  ASSERT_EQ(core::dgefmm(Trans::no, Trans::no, m, n, k, 2.0, a.data(), m,
                         b.data(), k, 1.0, c.data(), ldc, cfg),
            0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = m; i < ldc; ++i) {
      EXPECT_EQ(c(i, j), c_before(i, j)) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace strassen
