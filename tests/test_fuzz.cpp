// Randomized property sweep over the whole configuration space: random
// shapes, transposes, alpha/beta, cutoff criteria, schedules, and odd-size
// strategies, always checking two invariants:
//   (1) the result matches the reference GEMM within a normwise tolerance,
//   (2) the measured workspace high-water mark equals the analytic
//       predictor exactly.
// Seeds are fixed, so every trial is reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "blas/gemm.hpp"
#include "core/dgefmm.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"

namespace strassen {
namespace {

using core::CutoffCriterion;
using core::DgefmmConfig;
using core::OddStrategy;
using core::Scheme;

CutoffCriterion random_criterion(Rng& rng) {
  switch (rng.uniform_index(0, 5)) {
    case 0:
      return CutoffCriterion::op_count();
    case 1:
      return CutoffCriterion::square_simple(double(rng.uniform_index(4, 64)));
    case 2:
      return CutoffCriterion::higham_scaled(double(rng.uniform_index(4, 64)));
    case 3:
      return CutoffCriterion::parameterized(double(rng.uniform_index(4, 48)),
                                            double(rng.uniform_index(4, 48)),
                                            double(rng.uniform_index(4, 48)));
    case 4:
      return CutoffCriterion::hybrid(double(rng.uniform_index(8, 64)),
                                     double(rng.uniform_index(4, 48)),
                                     double(rng.uniform_index(4, 48)),
                                     double(rng.uniform_index(4, 48)));
    default:
      return CutoffCriterion::fixed_depth(int(rng.uniform_index(0, 4)));
  }
}

Scheme random_scheme(Rng& rng) {
  const Scheme all[] = {Scheme::automatic, Scheme::strassen1,
                        Scheme::strassen2, Scheme::original, Scheme::fused};
  return all[rng.uniform_index(0, 4)];
}

OddStrategy random_odd(Rng& rng) {
  const OddStrategy all[] = {OddStrategy::dynamic_peeling,
                             OddStrategy::dynamic_padding,
                             OddStrategy::static_padding};
  return all[rng.uniform_index(0, 2)];
}

class FuzzTrial : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTrial, ReferenceAgreementAndExactWorkspace) {
  Rng rng(0xF0020000ULL + static_cast<std::uint64_t>(GetParam()));

  const index_t m = rng.uniform_index(1, 180);
  const index_t n = rng.uniform_index(1, 180);
  const index_t k = rng.uniform_index(1, 180);
  const Trans ta = rng.uniform_index(0, 1) ? Trans::transpose : Trans::no;
  const Trans tb = rng.uniform_index(0, 1) ? Trans::transpose : Trans::no;
  const double alphas[] = {1.0, -1.0, 0.5, 2.0, 1.0 / 3.0};
  const double betas[] = {0.0, 1.0, -1.0, 0.25};
  const double alpha = alphas[rng.uniform_index(0, 4)];
  const double beta = betas[rng.uniform_index(0, 3)];

  DgefmmConfig cfg;
  cfg.cutoff = random_criterion(rng);
  cfg.scheme = random_scheme(rng);
  cfg.odd = random_odd(rng);
  Arena arena;
  cfg.workspace = &arena;

  const index_t a_rows = is_trans(ta) ? k : m;
  const index_t a_cols = is_trans(ta) ? m : k;
  const index_t b_rows = is_trans(tb) ? n : k;
  const index_t b_cols = is_trans(tb) ? k : n;
  const index_t lda = a_rows + rng.uniform_index(0, 3);
  const index_t ldb = b_rows + rng.uniform_index(0, 3);
  const index_t ldc = m + rng.uniform_index(0, 3);

  Matrix a(std::max<index_t>(lda, 1), std::max<index_t>(a_cols, 1));
  Matrix b(std::max<index_t>(ldb, 1), std::max<index_t>(b_cols, 1));
  Matrix c(std::max<index_t>(ldc, 1), std::max<index_t>(n, 1));
  Matrix c_ref(std::max<index_t>(ldc, 1), std::max<index_t>(n, 1));
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  fill_random(c.view(), rng);
  copy(c.view(), c_ref.view());

  const int info = core::dgefmm(ta, tb, m, n, k, alpha, a.data(), lda,
                                b.data(), ldb, beta, c.data(), ldc, cfg);
  ASSERT_EQ(info, 0);
  blas::gemm_reference(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb,
                       beta, c_ref.data(), ldc);

  double worst = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      worst = std::max(worst, std::abs(c(i, j) - c_ref(i, j)));
    }
  }
  const double tol =
      1e-11 * (static_cast<double>(k) + 10.0) * std::abs(alpha != 0 ? alpha : 1);
  EXPECT_LT(worst, tol) << "m=" << m << " n=" << n << " k=" << k
                        << " alpha=" << alpha << " beta=" << beta << " "
                        << cfg.cutoff.describe();

  // Exact workspace accounting, regardless of configuration.
  EXPECT_EQ(static_cast<count_t>(arena.peak()),
            core::dgefmm_workspace_doubles(m, n, k, beta, cfg))
      << "m=" << m << " n=" << n << " k=" << k << " beta=" << beta;

  // Rows of C beyond m (ldc padding) are untouched.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = m; i < ldc; ++i) {
      EXPECT_EQ(c(i, j), c_ref(i, j));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Trials, FuzzTrial, ::testing::Range(0, 150));

}  // namespace
}  // namespace strassen
