// Operation-count instrumentation tests.
//
// Two layers:
//  1. Closed forms: with a fixed recursion depth on power-of-two shapes and
//     alpha=1/beta=0, the instrumented implementation must perform EXACTLY
//     the operation count of the Section 2 model (eqs. 3-5).
//  2. A mirror predictor replicating the recursion driver, the schedules,
//     and the peeling fix-ups asserts exact counter equality for arbitrary
//     (odd, rectangular) shapes, schemes, and alpha/beta -- a structural
//     invariant much stronger than numerical correctness alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/dgefmm.hpp"
#include "model/opmodel.hpp"
#include "support/opcount.hpp"
#include "support/random.hpp"

namespace strassen {
namespace {

using core::CutoffCriterion;
using core::DgefmmConfig;
using core::Scheme;

count_t measured_ops(index_t m, index_t n, index_t k, double alpha,
                     double beta, const DgefmmConfig& cfg) {
  Rng rng(55);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c = random_matrix(m, n, rng);
  opcount::ScopedCounting guard;
  EXPECT_EQ(core::dgefmm(Trans::no, Trans::no, m, n, k, alpha, a.data(), m,
                         b.data(), k, beta, c.data(), m, cfg),
            0);
  return opcount::counters().total();
}

// ------------------------------------------------- closed-form equality

TEST(OpCountClosedForm, Strassen1MatchesEq4) {
  for (int d = 0; d <= 3; ++d) {
    for (index_t m0 : {4, 6, 10}) {
      DgefmmConfig cfg;
      cfg.cutoff = CutoffCriterion::fixed_depth(d);
      cfg.scheme = Scheme::strassen1;
      const index_t m = m0 << d;
      EXPECT_EQ(measured_ops(m, m, m, 1.0, 0.0, cfg),
                model::winograd_cost_square(m0, d))
          << "m0=" << m0 << " d=" << d;
    }
  }
}

TEST(OpCountClosedForm, Strassen1RectangularMatchesEq3) {
  for (int d = 0; d <= 3; ++d) {
    DgefmmConfig cfg;
    cfg.cutoff = CutoffCriterion::fixed_depth(d);
    cfg.scheme = Scheme::strassen1;
    const index_t m0 = 4, k0 = 6, n0 = 10;
    EXPECT_EQ(measured_ops(m0 << d, n0 << d, k0 << d, 1.0, 0.0, cfg),
              model::winograd_cost_depth(m0, k0, n0, d))
        << "d=" << d;
  }
}

TEST(OpCountClosedForm, OriginalVariantMatchesEq5) {
  for (int d = 0; d <= 3; ++d) {
    DgefmmConfig cfg;
    cfg.cutoff = CutoffCriterion::fixed_depth(d);
    cfg.scheme = Scheme::original;
    const index_t m0 = 6;
    EXPECT_EQ(measured_ops(m0 << d, m0 << d, m0 << d, 1.0, 0.0, cfg),
              model::original_cost_square(m0, d))
        << "d=" << d;
  }
}

TEST(OpCountClosedForm, NeverRecurseMatchesStandardCost) {
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::never_recurse();
  EXPECT_EQ(measured_ops(24, 30, 18, 1.0, 0.0, cfg),
            model::standard_cost(24, 18, 30));
}

// ------------------------------------------------- mirror predictor

// Replicates the exact recording behaviour of the implementation.
struct Mirror {
  const DgefmmConfig& cfg;

  static count_t c2(index_t a, index_t b) {
    return static_cast<count_t>(a) * b;
  }

  // blas::dgemm's record_ops.
  count_t gemm(index_t m, index_t k, index_t n, double alpha,
               double beta) const {
    if (m == 0 || n == 0) return 0;
    count_t ops = 0;
    if (k > 0 && alpha != 0.0) {
      ops += c2(m, k) * n;            // multiplies
      ops += c2(m, (k - 1)) * n;      // inner-product additions
      if (beta != 0.0) ops += c2(m, n);
      if (alpha != 1.0) ops += c2(m, n);
    }
    if (beta != 0.0 && beta != 1.0) ops += c2(m, n);
    return ops;
  }

  static count_t axpby(double a, double b, index_t m, index_t n) {
    if (b == 0.0) return (a == 1.0) ? 0 : c2(m, n);
    if (a == 1.0 && b == 1.0) return c2(m, n);
    count_t ops = c2(m, n);           // additions
    if (a != 1.0) ops += c2(m, n);
    if (b != 1.0) ops += c2(m, n);
    return ops;
  }

  count_t peel(index_t m, index_t k, index_t n, index_t me, index_t ke,
               index_t ne, double /*alpha*/, double /*beta*/) const {
    count_t ops = 0;
    if (ke < k && me > 0 && ne > 0) ops += 2 * c2(me, ne);  // DGER
    if (ne < n && me > 0) ops += 2 * c2(me, k);             // DGEMV (column)
    if (me < m && ne > 0) ops += 2 * c2(k, ne);             // DGEMV (row)
    if (me < m && ne < n) ops += 2 * k;                     // corner DDOT
    return ops;
  }

  count_t fmm(index_t m, index_t k, index_t n, double alpha, double beta,
              int depth) const {
    if (m == 0 || n == 0) return 0;
    if (m < 2 || k < 2 || n < 2 || alpha == 0.0 ||
        cfg.cutoff.stop(m, k, n, depth)) {
      return gemm(m, k, n, alpha, beta);
    }
    const index_t me = m & ~index_t{1}, ke = k & ~index_t{1},
                  ne = n & ~index_t{1};
    const index_t m2 = me / 2, k2 = ke / 2, n2 = ne / 2;
    count_t ops = schedule(m2, k2, n2, alpha, beta, depth);
    if (((m | k | n) & 1) != 0) ops += peel(m, k, n, me, ke, ne, alpha, beta);
    return ops;
  }

  count_t schedule(index_t m2, index_t k2, index_t n2, double alpha,
                   double beta, int depth) const {
    Scheme s = cfg.scheme;
    if (s == Scheme::automatic || s == Scheme::fused) {
      // The fused schedule's classic recursion below the fusion resolves
      // exactly like automatic (this mirror does not model fused levels).
      s = (beta == 0.0) ? Scheme::strassen1 : Scheme::strassen2;
    }
    const count_t g_mk = c2(m2, k2), g_kn = c2(k2, n2), g_mn = c2(m2, n2);
    auto child = [&](double a, double b) {
      return fmm(m2, k2, n2, a, b, depth + 1);
    };
    switch (s) {
      case Scheme::automatic:
      case Scheme::fused:
      case Scheme::strassen1:
        if (beta == 0.0) {
          // 4 + 4 operand passes, 7 C passes, 7 pure-multiply children.
          return 4 * g_mk + 4 * g_kn + 7 * g_mn + 7 * child(alpha, 0.0);
        }
        // General form: 4 + 4 operand passes, 7 add_inplace passes, 4
        // axpby(1, ., beta, .) passes, 7 pure-multiply children.
        return 4 * g_mk + 4 * g_kn + 7 * g_mn +
               4 * axpby(1.0, beta, m2, n2) + 7 * child(alpha, 0.0);
      case Scheme::strassen2:
        return 4 * g_mk + 4 * g_kn + 3 * g_mn +
               3 * axpby(1.0, beta, m2, n2) + 2 * child(alpha, 0.0) +
               3 * child(alpha, 1.0) + child(-alpha, beta) +
               child(alpha, 1.0);
      case Scheme::original: {
        const count_t base =
            5 * g_mk + 5 * g_kn + 8 * g_mn + 7 * child(alpha, 0.0);
        if (beta == 0.0) return base;
        // Ctmp wrapper: one axpby(1, Ctmp, beta, C) over the even core.
        return base + axpby(1.0, beta, 2 * m2, 2 * n2);
      }
    }
    return 0;
  }
};

class OpCountMirror
    : public ::testing::TestWithParam<
          std::tuple<Scheme, std::tuple<index_t, index_t, index_t>,
                     std::tuple<double, double>>> {};

TEST_P(OpCountMirror, MeasuredEqualsMirror) {
  const auto [scheme, shape, ab] = GetParam();
  const auto [m, n, k] = shape;
  const auto [alpha, beta] = ab;
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::square_simple(8);
  cfg.scheme = scheme;
  const Mirror mirror{cfg};
  EXPECT_EQ(measured_ops(m, n, k, alpha, beta, cfg),
            mirror.fmm(m, k, n, alpha, beta, 0))
      << "m=" << m << " n=" << n << " k=" << k << " alpha=" << alpha
      << " beta=" << beta;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OpCountMirror,
    ::testing::Combine(
        ::testing::Values(Scheme::automatic, Scheme::strassen1,
                          Scheme::strassen2, Scheme::original),
        ::testing::Values(std::tuple<index_t, index_t, index_t>{64, 64, 64},
                          std::tuple<index_t, index_t, index_t>{65, 65, 65},
                          std::tuple<index_t, index_t, index_t>{63, 64, 65},
                          std::tuple<index_t, index_t, index_t>{33, 97, 51},
                          std::tuple<index_t, index_t, index_t>{101, 25, 49}),
        ::testing::Values(std::tuple<double, double>{1.0, 0.0},
                          std::tuple<double, double>{1.0, 1.0},
                          std::tuple<double, double>{2.0, 0.5},
                          std::tuple<double, double>{-1.0, 1.0})));

TEST(OpCount, CountingDisabledByDefaultIsCheap) {
  opcount::reset();
  opcount::set_enabled(false);
  Rng rng(1);
  Matrix a = random_matrix(32, 32, rng);
  Matrix b = random_matrix(32, 32, rng);
  Matrix c(32, 32);
  fill(c.view(), 0.0);
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::fixed_depth(1);
  EXPECT_EQ(0, core::dgefmm(Trans::no, Trans::no, 32, 32, 32, 1.0, a.data(),
                            32, b.data(), 32, 0.0, c.data(), 32, cfg));
  EXPECT_EQ(opcount::counters().total(), 0);
}

TEST(OpCount, StrassenBeatsStandardAboveModelCutoff) {
  // End-to-end sanity: for a 256^3 problem with cutoff 16 the instrumented
  // Strassen op count must be below the standard algorithm's count (and
  // clearly not absurdly small).
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::square_simple(16);
  cfg.scheme = Scheme::strassen1;
  const count_t strassen_ops = measured_ops(256, 256, 256, 1.0, 0.0, cfg);
  const count_t standard_ops = model::standard_cost(256, 256, 256);
  EXPECT_LT(strassen_ops, standard_ops);
  EXPECT_GT(strassen_ops, standard_ops / 2);
}

}  // namespace
}  // namespace strassen
