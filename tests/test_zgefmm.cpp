// Tests for the complex extension: 3M ZGEFMM and the 4M baseline against a
// complex reference over shapes, op in {N, T, C}, and complex alpha/beta.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <tuple>
#include <vector>

#include "core/dgefmm.hpp"
#include "core/zgefmm.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"

namespace strassen {
namespace {

using cplx = std::complex<double>;

std::vector<cplx> random_complex(index_t rows, index_t cols, Rng& rng) {
  std::vector<cplx> v(static_cast<std::size_t>(rows * cols));
  for (auto& x : v) x = cplx(rng.uniform(), rng.uniform());
  return v;
}

double max_abs_diff_z(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

struct ZCase {
  index_t m, n, k;
  Trans ta, tb;
  cplx alpha, beta;
};

class ZgefmmSweep : public ::testing::TestWithParam<int> {};

std::vector<ZCase> zcases() {
  std::vector<ZCase> cases;
  const std::vector<std::tuple<index_t, index_t, index_t>> shapes = {
      {1, 1, 1},    {8, 8, 8},    {33, 33, 33}, {17, 40, 25},
      {64, 64, 64}, {65, 63, 61}, {2, 50, 2},
  };
  const Trans ops[] = {Trans::no, Trans::transpose, Trans::conj_transpose};
  int i = 0;
  for (const auto& [m, n, k] : shapes) {
    const Trans ta = ops[i % 3];
    const Trans tb = ops[(i + 1) % 3];
    ++i;
    cases.push_back({m, n, k, ta, tb, cplx(1.0, 0.0), cplx(0.0, 0.0)});
    cases.push_back({m, n, k, ta, tb, cplx(0.5, -1.5), cplx(2.0, 0.25)});
  }
  return cases;
}

TEST_P(ZgefmmSweep, MatchesComplexReference) {
  const ZCase cs = zcases()[static_cast<std::size_t>(GetParam())];
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 7);
  const index_t a_rows = is_trans(cs.ta) ? cs.k : cs.m;
  const index_t a_cols = is_trans(cs.ta) ? cs.m : cs.k;
  const index_t b_rows = is_trans(cs.tb) ? cs.n : cs.k;
  const index_t b_cols = is_trans(cs.tb) ? cs.k : cs.n;
  const auto a = random_complex(a_rows, a_cols, rng);
  const auto b = random_complex(b_rows, b_cols, rng);
  auto c0 = random_complex(cs.m, cs.n, rng);
  auto c_fmm = c0;
  auto c_4m = c0;
  auto c_ref = c0;

  core::DgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::square_simple(8);
  ASSERT_EQ(core::zgefmm(cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha, a.data(),
                         a_rows, b.data(), b_rows, cs.beta, c_fmm.data(),
                         cs.m, cfg),
            0);
  ASSERT_EQ(core::zgemm4m(cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha, a.data(),
                          a_rows, b.data(), b_rows, cs.beta, c_4m.data(),
                          cs.m),
            0);
  core::zgemm_reference(cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha, a.data(),
                        a_rows, b.data(), b_rows, cs.beta, c_ref.data(),
                        cs.m);

  const double tol = 1e-11 * (static_cast<double>(cs.k) + 10.0);
  EXPECT_LT(max_abs_diff_z(c_fmm, c_ref), tol) << "zgefmm";
  EXPECT_LT(max_abs_diff_z(c_4m, c_ref), tol) << "zgemm4m";
}

INSTANTIATE_TEST_SUITE_P(Grid, ZgefmmSweep,
                         ::testing::Range(0,
                                          static_cast<int>(zcases().size())));

TEST(Zgefmm, ConjTransposeActuallyConjugates) {
  // A single element makes the conjugation visible: (2+3i)^H = 2-3i.
  const cplx a(2.0, 3.0), b(1.0, 0.0);
  cplx c(0.0, 0.0);
  ASSERT_EQ(core::zgefmm(Trans::conj_transpose, Trans::no, 1, 1, 1,
                         cplx(1.0), &a, 1, &b, 1, cplx(0.0), &c, 1),
            0);
  EXPECT_DOUBLE_EQ(c.real(), 2.0);
  EXPECT_DOUBLE_EQ(c.imag(), -3.0);
}

TEST(Zgefmm, AlphaZeroScalesByBeta) {
  auto rngless = std::vector<cplx>{cplx(1, 1), cplx(2, -1), cplx(0, 3),
                                   cplx(4, 4)};
  auto c = rngless;
  ASSERT_EQ(core::zgefmm(Trans::no, Trans::no, 2, 2, 2, cplx(0.0),
                         rngless.data(), 2, rngless.data(), 2, cplx(0.0, 1.0),
                         c.data(), 2),
            0);
  // beta = i rotates each entry by 90 degrees.
  EXPECT_DOUBLE_EQ(c[0].real(), -1.0);
  EXPECT_DOUBLE_EQ(c[0].imag(), 1.0);
}

TEST(Zgefmm, InfoCodes) {
  std::vector<cplx> a(64), b(64), c(64);
  EXPECT_EQ(core::zgefmm(Trans::no, Trans::no, -1, 8, 8, cplx(1.0), a.data(),
                         8, b.data(), 8, cplx(0.0), c.data(), 8),
            3);
  EXPECT_EQ(core::zgefmm(Trans::no, Trans::no, 8, 8, 8, cplx(1.0), a.data(),
                         4, b.data(), 8, cplx(0.0), c.data(), 8),
            8);
  EXPECT_EQ(core::zgemm4m(Trans::no, Trans::no, 8, 8, 8, cplx(1.0), a.data(),
                          8, b.data(), 8, cplx(0.0), c.data(), 4),
            13);
}

TEST(Zgefmm, ExternalArenaReused) {
  Rng rng(12);
  const index_t n = 48;
  const auto a = random_complex(n, n, rng);
  const auto b = random_complex(n, n, rng);
  auto c = random_complex(n, n, rng);
  core::DgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::square_simple(8);
  Arena arena;
  cfg.workspace = &arena;
  ASSERT_EQ(core::zgefmm(Trans::no, Trans::no, n, n, n, cplx(1.0), a.data(),
                         n, b.data(), n, cplx(0.5, 0.5), c.data(), n, cfg),
            0);
  const std::size_t cap = arena.capacity();
  EXPECT_GT(cap, 0u);
  EXPECT_EQ(arena.in_use(), 0u);
  ASSERT_EQ(core::zgefmm(Trans::no, Trans::no, n, n, n, cplx(1.0), a.data(),
                         n, b.data(), n, cplx(0.5, 0.5), c.data(), n, cfg),
            0);
  EXPECT_EQ(arena.capacity(), cap);
}

TEST(Dgefmm, ConjTransposeTreatedAsTransposeForReal) {
  // For the real routine, 'C' must behave exactly like 'T'.
  Rng rng(3);
  Matrix a = random_matrix(20, 30, rng);
  Matrix b = random_matrix(20, 25, rng);
  Matrix c1(30, 25), c2(30, 25);
  fill(c1.view(), 0.0);
  fill(c2.view(), 0.0);
  core::DgefmmConfig cfg;
  cfg.cutoff = core::CutoffCriterion::square_simple(8);
  ASSERT_EQ(core::dgefmm(Trans::conj_transpose, Trans::no, 30, 25, 20, 1.0,
                         a.data(), 20, b.data(), 20, 0.0, c1.data(), 30, cfg),
            0);
  ASSERT_EQ(core::dgefmm(Trans::transpose, Trans::no, 30, 25, 20, 1.0,
                         a.data(), 20, b.data(), 20, 0.0, c2.data(), 30, cfg),
            0);
  EXPECT_EQ(max_abs_diff(c1.view(), c2.view()), 0.0);
}

}  // namespace
}  // namespace strassen
