// Tests for the async serving front-end (serve/serve.hpp): exact-predictor
// admission against the budgeted arena pool, the three overflow policies,
// deadlines, cooperative cancellation, fault-injection plumbing through the
// queue -> DAG -> combine chain, the serving C ABI, and a concurrent
// mixed-shape soak that the tsan preset runs under the thread sanitizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <thread>
#include <type_traits>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/packed_loop.hpp"
#include "core/cabi.hpp"
#include "core/dgefmm.hpp"
#include "core/sgefmm.hpp"
#include "parallel/parallel_strassen.hpp"
#include "parallel/task_dag.hpp"
#include "serve/serve.hpp"
#include "serve/serve_cabi.hpp"
#include "support/errors.hpp"
#include "support/faultinject.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"

namespace strassen {
namespace {

namespace fi = faultinject;

// Forces recursion on small shapes so the tests exercise real Strassen
// workspace needs without large matrices.
core::CutoffCriterion cut() { return core::CutoffCriterion::square_simple(24); }

template <class T>
MatrixT<T> random_square(index_t n, Rng& rng) {
  if constexpr (std::is_same_v<T, float>) {
    return random_matrix_f(n, n, rng);
  } else {
    return random_matrix(n, n, rng);
  }
}

template <class T>
bool bitwise_equal(const MatrixT<T>& x, const MatrixT<T>& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols()) return false;
  return std::memcmp(x.data(), y.data(),
                     static_cast<std::size_t>(x.rows()) *
                         static_cast<std::size_t>(x.cols()) * sizeof(T)) == 0;
}

// One n x n problem instance: shared read-only A/B, a C seed, and the
// bitwise references for every execution path a ticket can report.
template <class T>
struct Problem {
  index_t n;
  T alpha = T(1.25);
  T beta = T(-0.5);
  MatrixT<T> a, b, c0;
  MatrixT<T> ref_serial;  // core::dgefmm / sgefmm with the forced cutoff
  MatrixT<T> ref_dag;     // the task-DAG parallel driver (bitwise stable)
  MatrixT<T> ref_plain;   // workspace-free degradation path (serial GEMM)

  Problem(index_t size, std::uint64_t seed) : n(size) {
    Rng rng(seed);
    a = random_square<T>(n, rng);
    b = random_square<T>(n, rng);
    c0 = random_square<T>(n, rng);

    ref_serial = MatrixT<T>(n, n);
    copy(c0.view(), ref_serial.view());
    core::GefmmConfigT<T> scfg;
    scfg.cutoff = cut();
    int info;
    if constexpr (std::is_same_v<T, float>) {
      info = core::sgefmm(Trans::no, Trans::no, n, n, n, alpha, a.data(),
                          a.ld(), b.data(), b.ld(), beta, ref_serial.data(),
                          ref_serial.ld(), scfg);
    } else {
      info = core::dgefmm(Trans::no, Trans::no, n, n, n, alpha, a.data(),
                          a.ld(), b.data(), b.ld(), beta, ref_serial.data(),
                          ref_serial.ld(), scfg);
    }
    EXPECT_EQ(info, 0);

    ref_dag = MatrixT<T>(n, n);
    copy(c0.view(), ref_dag.view());
    parallel::ParallelGefmmConfigT<T> pcfg;
    pcfg.cutoff = cut();
    if constexpr (std::is_same_v<T, float>) {
      info = parallel::sgefmm_parallel(Trans::no, Trans::no, n, n, n, alpha,
                                       a.data(), a.ld(), b.data(), b.ld(),
                                       beta, ref_dag.data(), ref_dag.ld(),
                                       pcfg);
    } else {
      info = parallel::dgefmm_parallel(Trans::no, Trans::no, n, n, n, alpha,
                                       a.data(), a.ld(), b.data(), b.ld(),
                                       beta, ref_dag.data(), ref_dag.ld(),
                                       pcfg);
    }
    EXPECT_EQ(info, 0);

    ref_plain = MatrixT<T>(n, n);
    copy(c0.view(), ref_plain.view());
    blas::ScopedGemmThreads serial_gemm(1);
    if constexpr (std::is_same_v<T, float>) {
      blas::sgemm(Trans::no, Trans::no, n, n, n, alpha, a.data(), a.ld(),
                  b.data(), b.ld(), beta, ref_plain.data(), ref_plain.ld());
    } else {
      blas::dgemm(Trans::no, Trans::no, n, n, n, alpha, a.data(), a.ld(),
                  b.data(), b.ld(), beta, ref_plain.data(), ref_plain.ld());
    }
  }

  serve::GemmRequestT<T> request(MatrixT<T>& c,
                                 bool prefer_parallel = true) const {
    serve::GemmRequestT<T> req;
    req.m = n;
    req.n = n;
    req.k = n;
    req.alpha = alpha;
    req.a = a.data();
    req.lda = a.ld();
    req.b = b.data();
    req.ldb = b.ld();
    req.beta = beta;
    req.c = c.data();
    req.ldc = c.ld();
    req.cutoff = cut();
    req.prefer_parallel = prefer_parallel;
    return req;
  }

  MatrixT<T> fresh_c() const {
    MatrixT<T> c(n, n);
    copy(c0.view(), c.view());
    return c;
  }

  // Exact workspace the serving queue prices for the DAG path of this shape.
  std::size_t dag_need() const {
    parallel::ParallelGefmmConfigT<T> cfg;
    cfg.cutoff = cut();
    return static_cast<std::size_t>(
        parallel::plan_dag<T>(n, n, n, cfg).workspace);
  }

  // The larger of the DAG and serial-driver pricings: a budget of this size
  // admits this shape on either execution path.
  std::size_t any_path_need() const {
    core::GefmmConfigT<T> cfg;
    cfg.cutoff = cut();
    count_t serial_need;
    if constexpr (std::is_same_v<T, float>) {
      serial_need = core::sgefmm_workspace_floats(n, n, n, beta, cfg);
    } else {
      serial_need = core::dgefmm_workspace_doubles(n, n, n, beta, cfg);
    }
    return std::max(dag_need(), static_cast<std::size_t>(serial_need));
  }
};

template <class T>
double degraded_tolerance() {
  // The degradation path is a plain GEMM while the reference below may be
  // the Strassen path; the gap is bounded by the forward-error bound at
  // these tiny forced-recursion shapes.
  return std::is_same_v<T, float> ? 5e-2 : 1e-8;
}

// --- policy / options plumbing ---------------------------------------------

TEST(ServeOptions, ParseOverflowPolicy) {
  serve::OverflowPolicy p = serve::OverflowPolicy::block;
  EXPECT_TRUE(serve::parse_overflow_policy("reject", p));
  EXPECT_EQ(p, serve::OverflowPolicy::reject);
  EXPECT_TRUE(serve::parse_overflow_policy("shed", p));
  EXPECT_EQ(p, serve::OverflowPolicy::shed);
  EXPECT_TRUE(serve::parse_overflow_policy("block", p));
  EXPECT_EQ(p, serve::OverflowPolicy::block);
  p = serve::OverflowPolicy::shed;
  EXPECT_FALSE(serve::parse_overflow_policy(nullptr, p));
  EXPECT_FALSE(serve::parse_overflow_policy("", p));
  EXPECT_FALSE(serve::parse_overflow_policy("Block", p));
  EXPECT_EQ(p, serve::OverflowPolicy::shed) << "failed parse must not write";
  EXPECT_STREQ(serve::overflow_policy_name(serve::OverflowPolicy::shed),
               "shed");
}

TEST(ServeOptions, ClampedAtConstruction) {
  serve::ServeOptions opt;
  opt.queue_cap = 0;
  opt.workers = 0;
  opt.latency_reservoir = 1;
  serve::Queue q(opt);
  EXPECT_GE(q.options().queue_cap, 1u);
  EXPECT_GE(q.options().workers, 1);
  EXPECT_GE(q.options().latency_reservoir, 16u);
}

// --- single-request lifecycle ----------------------------------------------

template <class T>
void completes_both_paths() {
  serve::QueueT<T> q;
  {
    // Forced-recursion shape: the DAG driver runs and its result is
    // bitwise identical to calling the parallel driver directly.
    Problem<T> p(96, 101);
    MatrixT<T> c = p.fresh_c();
    serve::TicketT<T> t = q.submit(p.request(c));
    ASSERT_TRUE(t.valid());
    EXPECT_EQ(t.wait(), 0);
    EXPECT_TRUE(t.done());
    EXPECT_EQ(t.status(), serve::RequestStatus::completed);
    EXPECT_FALSE(t.degraded());
    EXPECT_TRUE(bitwise_equal(c, p.ref_dag));
    EXPECT_GT(t.stats().dag_nodes, 0u) << "the DAG path must have run";
    EXPECT_GE(t.latency_ms(), 0.0);
    EXPECT_NO_THROW(t.get());
  }
  {
    // Below-cutoff shape: the serial driver runs even with prefer_parallel.
    Problem<T> p(16, 102);
    MatrixT<T> c = p.fresh_c();
    serve::TicketT<T> t = q.submit(p.request(c));
    EXPECT_EQ(t.wait(), 0);
    EXPECT_EQ(t.stats().dag_nodes, 0u);
    EXPECT_TRUE(bitwise_equal(c, p.ref_serial));
  }
  {
    // prefer_parallel = false pins the serial driver on a recursing shape.
    Problem<T> p(64, 103);
    MatrixT<T> c = p.fresh_c();
    serve::TicketT<T> t = q.submit(p.request(c, /*prefer_parallel=*/false));
    EXPECT_EQ(t.wait(), 0);
    EXPECT_TRUE(bitwise_equal(c, p.ref_serial));
  }
  const serve::ServingStats s = q.stats();
  EXPECT_EQ(s.submitted, 3u);
  EXPECT_EQ(s.completed, 3u);
  EXPECT_EQ(s.failed + s.rejected + s.expired + s.canceled + s.shed, 0u);
  EXPECT_GT(s.latency_samples, 0u);
  EXPECT_LE(s.p50_ms, s.p99_ms);
  EXPECT_LE(s.p99_ms, s.max_ms);
  EXPECT_GT(s.gefmm.dag_nodes, 0u) << "driver stats must merge into serving";
}

TEST(Serve, CompletesBothPathsDouble) { completes_both_paths<double>(); }
TEST(Serve, CompletesBothPathsFloat) { completes_both_paths<float>(); }

TEST(Serve, BadArgumentCompletesFailed) {
  serve::Queue q;
  Problem<double> p(32, 104);
  MatrixT<double> c = p.fresh_c();
  serve::GemmRequest req = p.request(c);
  req.lda = 1;  // m = 32 rows of op(A): XERBLA index 8
  serve::Ticket t = q.submit(req);
  EXPECT_EQ(t.wait(), 8);
  EXPECT_EQ(t.status(), serve::RequestStatus::failed);
  EXPECT_TRUE(bitwise_equal(c, p.c0)) << "bad arguments must not touch C";
  EXPECT_THROW(t.get(), Error);
  EXPECT_EQ(q.stats().failed, 1u);
}

// --- admission control against the exact budget ----------------------------

TEST(Serve, InfeasibleNeedIsRejected) {
  Problem<double> p(96, 105);
  serve::ServeOptions opt;
  opt.budget_elements = 64;  // far below the DAG (or serial) need for n=96
  serve::Queue q(opt);
  MatrixT<double> c = p.fresh_c();
  serve::Ticket t = q.submit(p.request(c));
  EXPECT_EQ(t.wait(), STRASSEN_INFO_REJECTED);
  EXPECT_EQ(t.status(), serve::RequestStatus::rejected);
  EXPECT_TRUE(bitwise_equal(c, p.c0)) << "rejected requests leave C alone";
  EXPECT_THROW(t.get(), AdmissionError);
  const serve::ServingStats s = q.stats();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.admitted, 0u);
  EXPECT_EQ(s.pool_peak, 0u);
}

TEST(Serve, InfeasibleNeedShedsUnderShedPolicy) {
  Problem<double> p(96, 106);
  serve::ServeOptions opt;
  opt.budget_elements = 64;
  opt.policy = serve::OverflowPolicy::shed;
  serve::Queue q(opt);
  MatrixT<double> c = p.fresh_c();
  serve::Ticket t = q.submit(p.request(c));
  EXPECT_TRUE(t.done()) << "an inline shed finishes during submit()";
  EXPECT_EQ(t.wait(), 0);
  EXPECT_TRUE(t.degraded());
  EXPECT_TRUE(bitwise_equal(c, p.ref_plain))
      << "the shed path is the workspace-free serial GEMM";
  const serve::ServingStats s = q.stats();
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.pool_peak, 0u) << "sheds must not touch the pool";
}

TEST(Serve, ExactNeedSerializesOnTheBudget) {
  Problem<double> p(96, 107);
  const std::size_t need = p.dag_need();
  ASSERT_GT(need, 0u);
  serve::ServeOptions opt;
  opt.budget_elements = need;  // exactly one admitted run at a time
  opt.workers = 2;
  serve::Queue q(opt);
  std::vector<MatrixT<double>> cs;
  std::vector<serve::Ticket> ts;
  for (int i = 0; i < 4; ++i) cs.push_back(p.fresh_c());
  for (int i = 0; i < 4; ++i) ts.push_back(q.submit(p.request(cs[i])));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ts[i].wait(), 0) << "request " << i;
    EXPECT_TRUE(bitwise_equal(cs[i], p.ref_dag)) << "request " << i;
  }
  const serve::ServingStats s = q.stats();
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_LE(s.pool_peak, need) << "the pool invariant is the budget";
  EXPECT_EQ(s.pool_peak, need) << "carves are exactly the priced need";
}

// --- bounded queue backpressure --------------------------------------------

// Fills the single worker with a long DAG request, then a queue slot, so a
// third submission deterministically observes a full queue.
template <class Policy>
void with_full_queue(serve::OverflowPolicy policy, Policy&& check) {
  Problem<double> big(192, 108);
  Problem<double> small(32, 109);
  serve::ServeOptions opt;
  opt.queue_cap = 1;
  opt.workers = 1;
  opt.policy = policy;
  serve::Queue q(opt);

  MatrixT<double> c1 = big.fresh_c();
  serve::Ticket t1 = q.submit(big.request(c1));
  // Wait until the worker picked it up so the queue slot is truly free.
  while (q.stats().queue_depth != 0) std::this_thread::yield();

  MatrixT<double> c2 = small.fresh_c();
  serve::Ticket t2 = q.submit(small.request(c2));  // occupies the one slot

  check(q, big, small, t1, t2);

  EXPECT_EQ(t1.wait(), 0);
  EXPECT_TRUE(bitwise_equal(c1, big.ref_dag));
  EXPECT_EQ(t2.wait(), 0);
  EXPECT_TRUE(bitwise_equal(c2, small.ref_dag));
}

TEST(Serve, RejectPolicyOnFullQueue) {
  with_full_queue(
      serve::OverflowPolicy::reject,
      [](serve::Queue& q, Problem<double>&, Problem<double>& small,
         serve::Ticket&, serve::Ticket& t2) {
        if (t2.done()) GTEST_SKIP() << "worker outran the submitter";
        MatrixT<double> c3 = small.fresh_c();
        serve::Ticket t3 = q.submit(small.request(c3));
        EXPECT_EQ(t3.wait(), STRASSEN_INFO_REJECTED);
        EXPECT_EQ(t3.status(), serve::RequestStatus::rejected);
        EXPECT_TRUE(bitwise_equal(c3, small.c0));
        EXPECT_GE(q.stats().rejected, 1u);
      });
}

TEST(Serve, ShedPolicyOnFullQueue) {
  with_full_queue(
      serve::OverflowPolicy::shed,
      [](serve::Queue& q, Problem<double>&, Problem<double>& small,
         serve::Ticket&, serve::Ticket& t2) {
        if (t2.done()) GTEST_SKIP() << "worker outran the submitter";
        MatrixT<double> c3 = small.fresh_c();
        serve::Ticket t3 = q.submit(small.request(c3));
        EXPECT_TRUE(t3.done()) << "sheds complete inline on the submitter";
        EXPECT_EQ(t3.wait(), 0);
        EXPECT_TRUE(t3.degraded());
        EXPECT_TRUE(bitwise_equal(c3, small.ref_plain));
        EXPECT_GE(q.stats().shed, 1u);
      });
}

TEST(Serve, BlockPolicyBoundsTheQueue) {
  Problem<double> p(48, 110);
  serve::ServeOptions opt;
  opt.queue_cap = 2;
  opt.workers = 1;
  opt.policy = serve::OverflowPolicy::block;
  serve::Queue q(opt);
  std::vector<MatrixT<double>> cs;
  std::vector<serve::Ticket> ts;
  for (int i = 0; i < 8; ++i) cs.push_back(p.fresh_c());
  for (int i = 0; i < 8; ++i) ts.push_back(q.submit(p.request(cs[i])));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(ts[i].wait(), 0) << "request " << i;
    EXPECT_TRUE(bitwise_equal(cs[i], p.ref_dag)) << "request " << i;
  }
  const serve::ServingStats s = q.stats();
  EXPECT_EQ(s.completed, 8u);
  EXPECT_EQ(s.rejected + s.shed, 0u) << "block policy never refuses";
  EXPECT_LE(s.peak_queue_depth, 2u) << "submit must block at the cap";
}

// --- deadlines and cancellation --------------------------------------------

TEST(Serve, ExpiredDeadlineCompletesExceptionally) {
  serve::Queue q;
  Problem<double> p(48, 111);
  MatrixT<double> c = p.fresh_c();
  serve::GemmRequest req = p.request(c);
  req.deadline = serve::Clock::now() - std::chrono::milliseconds(1);
  serve::Ticket t = q.submit(req);
  EXPECT_EQ(t.wait(), STRASSEN_INFO_EXPIRED);
  EXPECT_EQ(t.status(), serve::RequestStatus::expired);
  EXPECT_TRUE(bitwise_equal(c, p.c0)) << "expired requests leave C alone";
  EXPECT_THROW(t.get(), DeadlineError);
  EXPECT_EQ(q.stats().expired, 1u);
}

TEST(Serve, FutureDeadlineDoesNotFire) {
  serve::Queue q;
  Problem<double> p(48, 112);
  MatrixT<double> c = p.fresh_c();
  serve::GemmRequest req = p.request(c);
  req.deadline = serve::Clock::now() + std::chrono::minutes(10);
  serve::Ticket t = q.submit(req);
  EXPECT_EQ(t.wait(), 0);
  EXPECT_TRUE(bitwise_equal(c, p.ref_dag));
}

TEST(Serve, CancelWhileQueued) {
  Problem<double> big(192, 113);
  Problem<double> small(32, 114);
  serve::ServeOptions opt;
  opt.workers = 1;
  serve::Queue q(opt);
  MatrixT<double> c1 = big.fresh_c();
  serve::Ticket t1 = q.submit(big.request(c1));
  MatrixT<double> c2 = small.fresh_c();
  serve::Ticket t2 = q.submit(small.request(c2));
  t2.cancel();
  const int info = t2.wait();
  if (info == 0) {
    // The worker outran the cancel; the contract is "canceled only while C
    // is untouched", so a completed result must be the real product.
    EXPECT_TRUE(bitwise_equal(c2, small.ref_dag));
  } else {
    EXPECT_EQ(info, STRASSEN_INFO_CANCELED);
    EXPECT_EQ(t2.status(), serve::RequestStatus::canceled);
    EXPECT_TRUE(bitwise_equal(c2, small.c0));
    EXPECT_THROW(t2.get(), CanceledError);
  }
  EXPECT_EQ(t1.wait(), 0);
  EXPECT_TRUE(bitwise_equal(c1, big.ref_dag));
}

TEST(Serve, CancelWhileRunningHonorsTheCombineRace) {
  Problem<double> p(128, 115);
  serve::ServeOptions opt;
  opt.workers = 1;
  serve::Queue q(opt);
  MatrixT<double> c = p.fresh_c();
  serve::Ticket t = q.submit(p.request(c));
  while (!t.done() && t.status() != serve::RequestStatus::running) {
    std::this_thread::yield();
  }
  t.cancel();
  const int info = t.wait();
  if (info == STRASSEN_INFO_CANCELED) {
    EXPECT_TRUE(bitwise_equal(c, p.c0))
        << "a honored cancel must leave C bit-identical";
  } else {
    EXPECT_EQ(info, 0) << "a cancel that lost the race completes normally";
    EXPECT_TRUE(bitwise_equal(c, p.ref_dag));
  }
}

// --- fault injection through the queue -> DAG -> combine chain -------------

template <class T>
void pool_task_fault(core::FailurePolicy policy) {
  Problem<T> p(96, 116);
  serve::ServeOptions opt;
  opt.workers = 1;
  serve::QueueT<T> q(opt);
  MatrixT<T> c = p.fresh_c();
  serve::GemmRequestT<T> req = p.request(c);
  req.on_failure = policy;
  const long before = fi::injected_total();
  fi::arm(1, fi::Site::pool_task);
  serve::TicketT<T> t = q.submit(req);
  const int info = t.wait();
  fi::disarm();
  ASSERT_GT(fi::injected_total(), before)
      << "the admitted DAG run must pass through the thread pool";
  if (policy == core::FailurePolicy::strict) {
    EXPECT_EQ(t.status(), serve::RequestStatus::failed);
    EXPECT_LT(info, 0) << "strict surfaces the typed error";
    EXPECT_TRUE(bitwise_equal(c, p.c0))
        << "strict failures must leave C bit-identical";
    EXPECT_EQ(q.stats().failed, 1u);
  } else {
    EXPECT_EQ(info, 0);
    EXPECT_TRUE(t.degraded()) << "the in-run fallback is a recorded shed";
    EXPECT_LT(max_abs_diff(c.view(), p.ref_plain.view()),
              degraded_tolerance<T>());
    EXPECT_GE(q.stats().shed, 1u);
  }
}

TEST(ServeFaults, PoolTaskStrictDouble) {
  pool_task_fault<double>(core::FailurePolicy::strict);
}
TEST(ServeFaults, PoolTaskFallbackDouble) {
  pool_task_fault<double>(core::FailurePolicy::fallback);
}
TEST(ServeFaults, PoolTaskStrictFloat) {
  pool_task_fault<float>(core::FailurePolicy::strict);
}
TEST(ServeFaults, PoolTaskFallbackFloat) {
  pool_task_fault<float>(core::FailurePolicy::fallback);
}

// --- shutdown semantics -----------------------------------------------------

TEST(Serve, ShutdownDrainsAndRefusesNewWork) {
  Problem<double> p(48, 117);
  serve::ServeOptions opt;
  opt.workers = 1;
  serve::Queue q(opt);
  std::vector<MatrixT<double>> cs;
  std::vector<serve::Ticket> ts;
  for (int i = 0; i < 5; ++i) cs.push_back(p.fresh_c());
  for (int i = 0; i < 5; ++i) ts.push_back(q.submit(p.request(cs[i])));
  q.shutdown();
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ts[i].done()) << "shutdown must drain accepted requests";
    EXPECT_EQ(ts[i].wait(), 0);
    EXPECT_TRUE(bitwise_equal(cs[i], p.ref_dag));
  }
  MatrixT<double> late = p.fresh_c();
  serve::Ticket t = q.submit(p.request(late));
  EXPECT_EQ(t.wait(), STRASSEN_INFO_REJECTED);
  EXPECT_TRUE(bitwise_equal(late, p.c0));
  q.shutdown();  // idempotent
}

// --- concurrent mixed-shape soak (tsan target) ------------------------------

// Submits bursts of mixed-shape requests from several threads per element
// type against one queue, with a sprinkling of pre-expired deadlines and
// immediate cancels, then verifies every terminal outcome against the
// matching bitwise reference. Run at several workspace budgets: unlimited,
// exactly one largest-shape run, and a tiny budget under the shed policy.
template <class T>
struct SoakOutcome {
  count_t completed = 0;
  count_t degraded = 0;
  count_t expired = 0;
  count_t canceled = 0;
  count_t failures = 0;  // verification failures, not request failures
};

template <class T>
SoakOutcome<T> soak_type(serve::QueueT<T>& q,
                         const std::vector<Problem<T>>& problems,
                         int submitters, int rounds, int burst) {
  std::vector<SoakOutcome<T>> per_thread(
      static_cast<std::size_t>(submitters));
  std::vector<std::thread> threads;
  for (int s = 0; s < submitters; ++s) {
    threads.emplace_back([&, s] {
      SoakOutcome<T>& out = per_thread[static_cast<std::size_t>(s)];
      for (int r = 0; r < rounds; ++r) {
        std::vector<MatrixT<T>> cs;
        std::vector<serve::TicketT<T>> ts;
        std::vector<const Problem<T>*> ps;
        std::vector<bool> pre_expired, try_cancel, serial_path;
        for (int j = 0; j < burst; ++j) {
          const int seq = (s * rounds + r) * burst + j;
          const Problem<T>& p =
              problems[static_cast<std::size_t>(seq) % problems.size()];
          cs.push_back(p.fresh_c());
          ps.push_back(&p);
          serve::GemmRequestT<T> req = p.request(cs.back());
          // The pre-expired subset lands on the workspace-free shape so it
          // is queueable (never shed inline) under every budget config.
          const bool expire = seq % 8 == 4;
          const bool cancel = seq % 16 == 2;
          const bool serial = seq % 4 == 3;
          req.prefer_parallel = !serial;
          if (expire) {
            req.deadline = serve::Clock::now() - std::chrono::milliseconds(1);
          }
          pre_expired.push_back(expire);
          try_cancel.push_back(cancel);
          serial_path.push_back(serial);
          ts.push_back(q.submit(req));
          if (cancel) ts.back().cancel();
        }
        for (int j = 0; j < burst; ++j) {
          const Problem<T>& p = *ps[static_cast<std::size_t>(j)];
          MatrixT<T>& c = cs[static_cast<std::size_t>(j)];
          const int info = ts[static_cast<std::size_t>(j)].wait();
          const bool degraded = ts[static_cast<std::size_t>(j)].degraded();
          bool ok = true;
          if (info == 0) {
            ++out.completed;
            if (degraded) {
              ++out.degraded;
              ok = max_abs_diff(c.view(), p.ref_plain.view()) <
                   degraded_tolerance<T>();
            } else {
              // The recursing DAG path and the serial driver are each
              // bitwise deterministic; pick the reference by the path the
              // request was pinned to.
              const bool dag = !serial_path[static_cast<std::size_t>(j)] &&
                               p.n > 24;
              ok = bitwise_equal(c, dag ? p.ref_dag : p.ref_serial);
            }
          } else if (info == STRASSEN_INFO_EXPIRED) {
            ++out.expired;
            ok = pre_expired[static_cast<std::size_t>(j)] &&
                 bitwise_equal(c, p.c0);
          } else if (info == STRASSEN_INFO_CANCELED) {
            ++out.canceled;
            ok = try_cancel[static_cast<std::size_t>(j)] &&
                 bitwise_equal(c, p.c0);
          } else {
            ok = false;  // no rejects/failures expected in the soak configs
          }
          if (!ok) ++out.failures;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  SoakOutcome<T> total;
  for (const SoakOutcome<T>& o : per_thread) {
    total.completed += o.completed;
    total.degraded += o.degraded;
    total.expired += o.expired;
    total.canceled += o.canceled;
    total.failures += o.failures;
  }
  return total;
}

void run_soak(std::size_t budget_d, std::size_t budget_f,
              serve::OverflowPolicy policy, int rounds, int burst) {
  std::vector<Problem<double>> pd;
  pd.emplace_back(17, 201);
  pd.emplace_back(32, 202);
  pd.emplace_back(48, 203);
  pd.emplace_back(64, 204);
  std::vector<Problem<float>> pf;
  pf.emplace_back(17, 211);
  pf.emplace_back(32, 212);
  pf.emplace_back(48, 213);
  pf.emplace_back(64, 214);

  serve::ServeOptions od;
  od.queue_cap = 16;
  od.workers = 3;
  od.policy = policy;
  od.budget_elements = budget_d;
  serve::ServeOptions of = od;
  of.budget_elements = budget_f;
  serve::Queue qd(od);
  serve::QueueF qf(of);

  constexpr int kSubmitters = 3;
  SoakOutcome<double> rd;
  SoakOutcome<float> rf;
  {
    // Both element types in flight at once, from concurrent submitters.
    std::thread float_side([&] {
      rf = soak_type<float>(qf, pf, kSubmitters, rounds, burst);
    });
    rd = soak_type<double>(qd, pd, kSubmitters, rounds, burst);
    float_side.join();
  }

  const count_t per_type =
      static_cast<count_t>(kSubmitters) * static_cast<count_t>(rounds) *
      static_cast<count_t>(burst);
  EXPECT_EQ(rd.failures, 0u);
  EXPECT_EQ(rf.failures, 0u);
  EXPECT_EQ(rd.completed + rd.expired + rd.canceled, per_type);
  EXPECT_EQ(rf.completed + rf.expired + rf.canceled, per_type);
  EXPECT_GT(rd.expired, 0u) << "the pre-expired subset must expire";
  EXPECT_GT(rf.expired, 0u);

  const serve::ServingStats sd = qd.stats();
  const serve::ServingStats sf = qf.stats();
  EXPECT_EQ(sd.submitted, per_type);
  EXPECT_EQ(sf.submitted, per_type);
  EXPECT_EQ(sd.completed + sd.rejected + sd.expired + sd.canceled + sd.failed,
            per_type)
      << "every submission must reach exactly one terminal state";
  EXPECT_EQ(sf.completed + sf.rejected + sf.expired + sf.canceled + sf.failed,
            per_type);
  EXPECT_EQ(sd.failed, 0u);
  EXPECT_EQ(sf.failed, 0u);
  if (budget_d > 0) {
    EXPECT_LE(sd.pool_peak, budget_d)
        << "the double pool must never exceed its budget";
  }
  if (budget_f > 0) {
    EXPECT_LE(sf.pool_peak, budget_f)
        << "the float pool must never exceed its budget";
  }
}

TEST(ServeSoak, UnlimitedBudget) {
  run_soak(0, 0, serve::OverflowPolicy::block, /*rounds=*/10, /*burst=*/8);
}

TEST(ServeSoak, TightBudgetSerializesWithoutDeadlock) {
  // Exactly one largest-shape run fits at a time: workers contend on the
  // pool and must hand leases over without deadlock or budget overshoot.
  Problem<double> big_d(64, 301);
  Problem<float> big_f(64, 302);
  run_soak(big_d.any_path_need(), big_f.any_path_need(),
           serve::OverflowPolicy::block, /*rounds=*/8, /*burst=*/8);
}

TEST(ServeSoak, TinyBudgetShedsEverythingThatRecurses) {
  // Requests that cannot ever fit degrade inline under the shed policy; the
  // workspace-free serial shapes still complete normally.
  run_soak(16, 16, serve::OverflowPolicy::shed, /*rounds=*/8, /*burst=*/8);
}

// --- the serving C ABI ------------------------------------------------------

TEST(ServeCAbi, SubmitWaitRoundtrip) {
  const index_t n = 40;
  Rng rng(401);
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c = random_matrix(n, n, rng);
  Matrix want(n, n);
  copy(c.view(), want.view());
  {
    blas::ScopedGemmThreads serial(1);
    blas::dgemm(Trans::no, Trans::no, n, n, n, 1.5, a.data(), a.ld(),
                b.data(), b.ld(), 0.25, want.data(), want.ld());
  }
  std::int64_t h = 0;
  ASSERT_EQ(strassen_dgefmm_submit('N', 'N', n, n, n, 1.5, a.data(), a.ld(),
                                   b.data(), b.ld(), 0.25, c.data(), c.ld(),
                                   /*deadline_ms=*/0, &h),
            0);
  EXPECT_GT(h, 0);
  EXPECT_EQ(strassen_dgefmm_wait(h), 0);
  EXPECT_LT(max_abs_diff(c.view(), want.view()), 1e-10);
  EXPECT_EQ(strassen_dgefmm_wait(h), STRASSEN_INFO_BAD_HANDLE)
      << "wait frees the handle";
}

TEST(ServeCAbi, FloatSubmitWaitRoundtrip) {
  const index_t n = 40;
  Rng rng(402);
  MatrixF a = random_matrix_f(n, n, rng);
  MatrixF b = random_matrix_f(n, n, rng);
  MatrixF c = random_matrix_f(n, n, rng);
  MatrixF want(n, n);
  copy(c.view(), want.view());
  {
    blas::ScopedGemmThreads serial(1);
    blas::sgemm(Trans::no, Trans::no, n, n, n, 1.5f, a.data(), a.ld(),
                b.data(), b.ld(), 0.25f, want.data(), want.ld());
  }
  std::int64_t h = 0;
  ASSERT_EQ(strassen_sgefmm_submit('N', 'N', n, n, n, 1.5f, a.data(), a.ld(),
                                   b.data(), b.ld(), 0.25f, c.data(), c.ld(),
                                   /*deadline_ms=*/0, &h),
            0);
  EXPECT_EQ(strassen_sgefmm_wait(h), 0);
  EXPECT_LT(max_abs_diff(c.view(), want.view()), 1e-3);
  EXPECT_EQ(strassen_sgefmm_cancel(h), STRASSEN_INFO_BAD_HANDLE);
}

TEST(ServeCAbi, ArgumentAndHandleErrors) {
  double x = 0.0;
  std::int64_t h = 0;
  EXPECT_EQ(strassen_dgefmm_submit('X', 'N', 1, 1, 1, 1.0, &x, 1, &x, 1, 0.0,
                                   &x, 1, 0, &h),
            1);
  EXPECT_EQ(strassen_dgefmm_submit('N', '?', 1, 1, 1, 1.0, &x, 1, &x, 1, 0.0,
                                   &x, 1, 0, &h),
            2);
  EXPECT_EQ(strassen_dgefmm_submit('N', 'N', 1, 1, 1, 1.0, &x, 1, &x, 1, 0.0,
                                   &x, 1, 0, nullptr),
            15);
  EXPECT_EQ(strassen_dgefmm_wait(424242), STRASSEN_INFO_BAD_HANDLE);
  EXPECT_EQ(strassen_dgefmm_cancel(424242), STRASSEN_INFO_BAD_HANDLE);
  // A bad BLAS dimension is an admission-validated outcome on the ticket,
  // not a submit failure.
  ASSERT_EQ(strassen_dgefmm_submit('N', 'N', -1, 1, 1, 1.0, &x, 1, &x, 1,
                                   0.0, &x, 1, 0, &h),
            0);
  EXPECT_EQ(strassen_dgefmm_wait(h), 3);
}

TEST(ServeCAbi, ShutdownInvalidatesHandlesAndRebuildsLazily) {
  const index_t n = 32;
  Rng rng(403);
  Matrix a = random_matrix(n, n, rng);
  Matrix b = random_matrix(n, n, rng);
  Matrix c = random_matrix(n, n, rng);
  std::int64_t h = 0;
  ASSERT_EQ(strassen_dgefmm_submit('N', 'N', n, n, n, 1.0, a.data(), a.ld(),
                                   b.data(), b.ld(), 0.0, c.data(), c.ld(),
                                   0, &h),
            0);
  strassen_serve_shutdown();  // drains: the request finished before this
  EXPECT_EQ(strassen_dgefmm_wait(h), STRASSEN_INFO_BAD_HANDLE)
      << "shutdown invalidates unwaited handles";
  // The next submit lazily rebuilds the process queue.
  ASSERT_EQ(strassen_dgefmm_submit('N', 'N', n, n, n, 1.0, a.data(), a.ld(),
                                   b.data(), b.ld(), 0.0, c.data(), c.ld(),
                                   0, &h),
            0);
  EXPECT_EQ(strassen_dgefmm_wait(h), 0);
  strassen_serve_shutdown();
}

}  // namespace
}  // namespace strassen
