// Correctness tests for DGEFMM: every schedule, odd-size strategy,
// transpose combination, and alpha/beta case against the reference GEMM.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "blas/gemm.hpp"
#include "core/dgefmm.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"

namespace strassen {
namespace {

using core::CutoffCriterion;
using core::DgefmmConfig;
using core::DgefmmStats;
using core::OddStrategy;
using core::Scheme;

// A cutoff small enough that all test shapes recurse several levels.
CutoffCriterion deep_cutoff() { return CutoffCriterion::square_simple(8); }

double tol_for(index_t k) {
  // Strassen loses a small constant factor of accuracy per level; entries
  // are in [-1, 1], so this is generous yet tight enough to catch real
  // schedule bugs (which produce O(1) errors).
  return 1e-11 * (static_cast<double>(k) + 10.0);
}

struct Shape {
  index_t m, n, k;
};

// Odd, even, prime, and highly rectangular shapes.
const std::vector<Shape> kShapes = {
    {24, 24, 24}, {25, 25, 25}, {32, 32, 32}, {25, 24, 23}, {13, 50, 14},
    {48, 31, 65}, {101, 97, 103}, {64, 64, 64}, {96, 17, 96}, {33, 129, 65},
    {2, 2, 2},    {3, 3, 3},     {16, 1, 16},  {1, 16, 16},  {16, 16, 1},
};

void run_case(const Shape& s, Trans ta, Trans tb, double alpha, double beta,
              const DgefmmConfig& cfg, double tol_scale = 1.0) {
  Rng rng(static_cast<std::uint64_t>(s.m * 1000003 + s.n * 1009 + s.k));
  const index_t a_rows = is_trans(ta) ? s.k : s.m;
  const index_t a_cols = is_trans(ta) ? s.m : s.k;
  const index_t b_rows = is_trans(tb) ? s.n : s.k;
  const index_t b_cols = is_trans(tb) ? s.k : s.n;
  const index_t lda = a_rows + 2, ldb = b_rows + 5, ldc = s.m + 3;
  Matrix a(lda, a_cols), b(ldb, b_cols), c(ldc, s.n), c_ref(ldc, s.n);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  fill_random(c.view(), rng);
  copy(c.view(), c_ref.view());

  const int info = core::dgefmm(ta, tb, s.m, s.n, s.k, alpha, a.data(), lda,
                                b.data(), ldb, beta, c.data(), ldc, cfg);
  ASSERT_EQ(info, 0);
  blas::gemm_reference(ta, tb, s.m, s.n, s.k, alpha, a.data(), lda, b.data(),
                       ldb, beta, c_ref.data(), ldc);

  double worst = 0.0;
  for (index_t j = 0; j < s.n; ++j) {
    for (index_t i = 0; i < s.m; ++i) {
      worst = std::max(worst, std::abs(c(i, j) - c_ref(i, j)));
    }
  }
  EXPECT_LT(worst, tol_for(s.k) * tol_scale)
      << "m=" << s.m << " n=" << s.n << " k=" << s.k
      << " ta=" << (is_trans(ta) ? "T" : "N")
      << " tb=" << (is_trans(tb) ? "T" : "N") << " alpha=" << alpha
      << " beta=" << beta;
  // The ldc padding rows must be untouched.
  for (index_t j = 0; j < s.n; ++j) {
    for (index_t i = s.m; i < ldc; ++i) {
      EXPECT_EQ(c(i, j), c_ref(i, j));
    }
  }
}

// ---------------------------------------------------------- trans sweep

class DgefmmTransSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};
// params: shape index, trans pair index, alpha/beta pair index

TEST_P(DgefmmTransSweep, MatchesReference) {
  const auto [si, ti, abi] = GetParam();
  const Shape s = kShapes[static_cast<std::size_t>(si)];
  const Trans tas[] = {Trans::no, Trans::transpose, Trans::no,
                       Trans::transpose};
  const Trans tbs[] = {Trans::no, Trans::no, Trans::transpose,
                       Trans::transpose};
  const double alphas[] = {1.0, 2.5, 1.0, -0.5};
  const double betas[] = {0.0, 0.0, 1.0, 0.25};
  DgefmmConfig cfg;
  cfg.cutoff = deep_cutoff();
  run_case(s, tas[ti], tbs[ti], alphas[abi], betas[abi], cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DgefmmTransSweep,
    ::testing::Combine(::testing::Range(0, static_cast<int>(kShapes.size())),
                       ::testing::Range(0, 4), ::testing::Range(0, 4)));

// ---------------------------------------------------------- scheme sweep

class DgefmmSchemeSweep
    : public ::testing::TestWithParam<std::tuple<Scheme, int, int>> {};

TEST_P(DgefmmSchemeSweep, MatchesReference) {
  const auto [scheme, si, abi] = GetParam();
  const Shape s = kShapes[static_cast<std::size_t>(si)];
  const double alphas[] = {1.0, 1.0, -2.0};
  const double betas[] = {0.0, 1.0, 0.5};
  DgefmmConfig cfg;
  cfg.cutoff = deep_cutoff();
  cfg.scheme = scheme;
  run_case(s, Trans::no, Trans::no, alphas[abi], betas[abi], cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DgefmmSchemeSweep,
    ::testing::Combine(::testing::Values(Scheme::automatic, Scheme::strassen1,
                                         Scheme::strassen2, Scheme::original),
                       ::testing::Range(0, static_cast<int>(kShapes.size())),
                       ::testing::Range(0, 3)));

// ---------------------------------------------------------- odd strategies

class DgefmmOddStrategySweep
    : public ::testing::TestWithParam<std::tuple<OddStrategy, int, int>> {};

TEST_P(DgefmmOddStrategySweep, MatchesReference) {
  const auto [odd, si, ti] = GetParam();
  const Shape s = kShapes[static_cast<std::size_t>(si)];
  const Trans tas[] = {Trans::no, Trans::transpose};
  const Trans tbs[] = {Trans::no, Trans::transpose};
  DgefmmConfig cfg;
  cfg.cutoff = deep_cutoff();
  cfg.odd = odd;
  run_case(s, tas[ti], tbs[ti], 1.0, 0.0, cfg);
  run_case(s, tas[ti], tbs[ti], 0.5, -1.5, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DgefmmOddStrategySweep,
    ::testing::Combine(::testing::Values(OddStrategy::dynamic_peeling,
                                         OddStrategy::dynamic_padding,
                                         OddStrategy::static_padding),
                       ::testing::Range(0, static_cast<int>(kShapes.size())),
                       ::testing::Range(0, 2)));

// ---------------------------------------------------------- criteria sweep

TEST(Dgefmm, AllCutoffCriteriaAgree) {
  const Shape s{150, 140, 130};
  Rng rng(77);
  Matrix a = random_matrix(s.m, s.k, rng);
  Matrix b = random_matrix(s.k, s.n, rng);
  Matrix c_ref(s.m, s.n);
  fill(c_ref.view(), 0.0);
  blas::gemm_reference(Trans::no, Trans::no, s.m, s.n, s.k, 1.0, a.data(),
                       a.ld(), b.data(), b.ld(), 0.0, c_ref.data(),
                       c_ref.ld());
  for (const CutoffCriterion& cut :
       {CutoffCriterion::op_count(), CutoffCriterion::square_simple(32),
        CutoffCriterion::higham_scaled(32),
        CutoffCriterion::parameterized(20, 30, 25),
        CutoffCriterion::hybrid(32, 20, 30, 25), CutoffCriterion::fixed_depth(3),
        CutoffCriterion::never_recurse()}) {
    DgefmmConfig cfg;
    cfg.cutoff = cut;
    Matrix c(s.m, s.n);
    fill(c.view(), 0.0);
    ASSERT_EQ(core::dgefmm(Trans::no, Trans::no, s.m, s.n, s.k, 1.0, a.data(),
                           a.ld(), b.data(), b.ld(), 0.0, c.data(), c.ld(),
                           cfg),
              0);
    EXPECT_LT(max_abs_diff(c.view(), c_ref.view()), tol_for(s.k))
        << cut.describe();
  }
}

// ---------------------------------------------------------- determinism

TEST(Dgefmm, BitIdenticalAcrossRuns) {
  const Shape s{77, 91, 85};
  Rng rng(31);
  Matrix a = random_matrix(s.m, s.k, rng);
  Matrix b = random_matrix(s.k, s.n, rng);
  DgefmmConfig cfg;
  cfg.cutoff = deep_cutoff();
  Matrix c1(s.m, s.n), c2(s.m, s.n);
  fill(c1.view(), 0.0);
  fill(c2.view(), 0.0);
  EXPECT_EQ(0, core::dgefmm(Trans::no, Trans::no, s.m, s.n, s.k, 1.0,
                            a.data(), a.ld(), b.data(), b.ld(), 0.0,
                            c1.data(), c1.ld(), cfg));
  EXPECT_EQ(0, core::dgefmm(Trans::no, Trans::no, s.m, s.n, s.k, 1.0,
                            a.data(), a.ld(), b.data(), b.ld(), 0.0,
                            c2.data(), c2.ld(), cfg));
  EXPECT_EQ(max_abs_diff(c1.view(), c2.view()), 0.0);
}

// ---------------------------------------------------------- identities

TEST(Dgefmm, MultiplyByIdentity) {
  Rng rng(8);
  Matrix a = random_matrix(41, 41, rng);
  Matrix eye(41, 41);
  set_identity(eye.view());
  Matrix c(41, 41);
  fill(c.view(), 0.0);
  DgefmmConfig cfg;
  cfg.cutoff = deep_cutoff();
  EXPECT_EQ(0, core::dgefmm(Trans::no, Trans::no, 41, 41, 41, 1.0, a.data(),
                            41, eye.data(), 41, 0.0, c.data(), 41, cfg));
  EXPECT_LT(max_abs_diff(c.view(), a.view()), 1e-12);
}

TEST(Dgefmm, BetaOnlyAccumulation) {
  // alpha = 0 must reduce to C <- beta*C regardless of A/B contents.
  Matrix a(10, 10), b(10, 10), c(10, 10);
  fill(a.view(), std::nan(""));
  fill(b.view(), std::nan(""));
  fill(c.view(), 3.0);
  EXPECT_EQ(core::dgefmm(Trans::no, Trans::no, 10, 10, 10, 0.0, a.data(), 10,
                         b.data(), 10, 0.5, c.data(), 10),
            0);
  EXPECT_DOUBLE_EQ(c(5, 5), 1.5);
}

TEST(Dgefmm, DegenerateDimensions) {
  Matrix c(4, 4);
  fill(c.view(), 7.0);
  // m == 0 and n == 0 are quick returns (leading dimensions must still be
  // valid, per the BLAS argument-checking convention).
  EXPECT_EQ(core::dgefmm(Trans::no, Trans::no, 0, 4, 4, 1.0, nullptr, 1,
                         nullptr, 4, 0.0, c.data(), 1),
            0);
  EXPECT_EQ(core::dgefmm(Trans::no, Trans::no, 4, 0, 4, 1.0, nullptr, 4,
                         nullptr, 4, 0.0, c.data(), 4),
            0);
  EXPECT_DOUBLE_EQ(c(0, 0), 7.0);
  // k == 0 scales C.
  EXPECT_EQ(core::dgefmm(Trans::no, Trans::no, 4, 4, 0, 1.0, nullptr, 4,
                         nullptr, 1, 2.0, c.data(), 4),
            0);
  EXPECT_DOUBLE_EQ(c(0, 0), 14.0);
}

// ---------------------------------------------------------- argument checks

TEST(Dgefmm, ArgumentCheckingReturnsBlasInfoCodes) {
  Matrix a(8, 8), b(8, 8), c(8, 8);
  auto call = [&](index_t m, index_t n, index_t k, index_t lda, index_t ldb,
                  index_t ldc) {
    return core::dgefmm(Trans::no, Trans::no, m, n, k, 1.0, a.data(), lda,
                        b.data(), ldb, 0.0, c.data(), ldc);
  };
  EXPECT_EQ(call(-1, 8, 8, 8, 8, 8), 3);
  EXPECT_EQ(call(8, -2, 8, 8, 8, 8), 4);
  EXPECT_EQ(call(8, 8, -1, 8, 8, 8), 5);
  EXPECT_EQ(call(8, 8, 8, 7, 8, 8), 8);   // lda < m
  EXPECT_EQ(call(8, 8, 8, 8, 7, 8), 10);  // ldb < k
  EXPECT_EQ(call(8, 8, 8, 8, 8, 7), 13);  // ldc < m
  EXPECT_EQ(call(8, 8, 8, 8, 8, 8), 0);
  // Transposed A: lda must cover k, not m.
  EXPECT_EQ(core::dgefmm(Trans::transpose, Trans::no, 4, 8, 8, 1.0, a.data(),
                         7, b.data(), 8, 0.0, c.data(), 8),
            8);
  EXPECT_EQ(core::dgefmm(Trans::transpose, Trans::no, 4, 8, 8, 1.0, a.data(),
                         8, b.data(), 8, 0.0, c.data(), 4),
            0);
}

// ---------------------------------------------------------- stats

TEST(Dgefmm, StatsCountRecursionTree) {
  // Fixed depth d on a power-of-two problem: sum_{i<d} 7^i Strassen nodes
  // and 7^d base DGEMMs.
  for (int d = 0; d <= 3; ++d) {
    DgefmmStats stats;
    DgefmmConfig cfg;
    cfg.cutoff = CutoffCriterion::fixed_depth(d);
    cfg.stats = &stats;
    const index_t m = 16 << d;
    Rng rng(4);
    Matrix a = random_matrix(m, m, rng);
    Matrix b = random_matrix(m, m, rng);
    Matrix c(m, m);
    fill(c.view(), 0.0);
    EXPECT_EQ(0, core::dgefmm(Trans::no, Trans::no, m, m, m, 1.0, a.data(),
                              m, b.data(), m, 0.0, c.data(), m, cfg));
    count_t levels = 0, p7 = 1;
    for (int i = 0; i < d; ++i) {
      levels += p7;
      p7 *= 7;
    }
    EXPECT_EQ(stats.strassen_levels, levels) << "d=" << d;
    EXPECT_EQ(stats.base_gemms, p7) << "d=" << d;
    EXPECT_EQ(stats.max_depth, d) << "d=" << d;
    EXPECT_EQ(stats.peel_fixups, 0) << "d=" << d;
  }
}

TEST(Dgefmm, StatsCountPeelFixups) {
  DgefmmStats stats;
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::fixed_depth(1);
  cfg.stats = &stats;
  const index_t m = 25, k = 25, n = 25;  // all odd: 4 fix-ups at the top
  Rng rng(4);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c(m, n);
  fill(c.view(), 0.0);
  EXPECT_EQ(0, core::dgefmm(Trans::no, Trans::no, m, n, k, 1.0, a.data(), m,
                            b.data(), k, 0.0, c.data(), m, cfg));
  EXPECT_EQ(stats.peel_fixups, 4);
  EXPECT_EQ(stats.strassen_levels, 1);
  EXPECT_EQ(stats.base_gemms, 7);
}

// ---------------------------------------------------------- workspace reuse

TEST(Dgefmm, ExternalArenaIsReusedWithoutGrowth) {
  const Shape s{100, 90, 110};
  DgefmmConfig cfg;
  cfg.cutoff = deep_cutoff();
  Arena arena;
  cfg.workspace = &arena;
  Rng rng(12);
  Matrix a = random_matrix(s.m, s.k, rng);
  Matrix b = random_matrix(s.k, s.n, rng);
  Matrix c(s.m, s.n);
  fill(c.view(), 0.0);
  EXPECT_EQ(0, core::dgefmm(Trans::no, Trans::no, s.m, s.n, s.k, 1.0,
                            a.data(), s.m, b.data(), s.k, 0.0, c.data(), s.m,
                            cfg));
  const std::size_t cap_after_first = arena.capacity();
  EXPECT_GT(cap_after_first, 0u);
  EXPECT_EQ(arena.in_use(), 0u);  // everything released
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(0, core::dgefmm(Trans::no, Trans::no, s.m, s.n, s.k, 1.0,
                              a.data(), s.m, b.data(), s.k, 0.0, c.data(),
                              s.m, cfg));
  }
  EXPECT_EQ(arena.capacity(), cap_after_first);
}

TEST(Dgefmm, NeverRecurseEqualsDgemm) {
  const Shape s{60, 70, 50};
  Rng rng(3);
  Matrix a = random_matrix(s.m, s.k, rng);
  Matrix b = random_matrix(s.k, s.n, rng);
  Matrix c1(s.m, s.n), c2(s.m, s.n);
  fill_random(c1.view(), rng);
  copy(c1.view(), c2.view());
  DgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::never_recurse();
  EXPECT_EQ(0, core::dgefmm(Trans::no, Trans::no, s.m, s.n, s.k, 1.5,
                            a.data(), s.m, b.data(), s.k, 0.5, c1.data(),
                            s.m, cfg));
  blas::dgemm(Trans::no, Trans::no, s.m, s.n, s.k, 1.5, a.data(), s.m,
              b.data(), s.k, 0.5, c2.data(), s.m);
  // Identical code path => bit-identical results.
  EXPECT_EQ(max_abs_diff(c1.view(), c2.view()), 0.0);
}

}  // namespace
}  // namespace strassen
