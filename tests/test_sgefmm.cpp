// SGEFMM: the float instantiation of the GEFMM vertical.
//
// Three pillars, mirroring the double suites:
//  * a correctness matrix (shapes x transposes x beta x schemes, serial and
//    parallel DAG) checked against a double-precision reference product --
//    the float result must sit within a forward-error bound scaled for
//    Strassen's error growth, not merely "close to a float reference";
//  * the fault-injection sweeps of test_faults.cpp re-run through the float
//    entry points, asserting the same strict/fallback contract
//    (DESIGN.md section 7) holds for the float arenas and pack buffers;
//  * bitwise determinism: sgefmm_parallel must produce memcmp-identical C
//    for every thread budget, exactly like dgefmm_parallel.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <tuple>
#include <vector>

#include "blas/gemm.hpp"
#include "core/sgefmm.hpp"
#include "parallel/parallel_strassen.hpp"
#include "support/faultinject.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"

namespace strassen {
namespace {

namespace fi = faultinject;

using core::CutoffCriterion;
using core::DgefmmStats;
using core::FailurePolicy;
using core::Scheme;
using core::SgefmmConfig;

// Forward-error budget against the double-precision reference. Classic
// float GEMM is bounded by ~k*eps_f; the Winograd recursion amplifies by a
// constant factor per level (Higham ch. 23), and the suite runs up to three
// levels above a 16-cutoff. A generous constant keeps the bound tight
// enough to catch any real defect (wrong results are O(1)).
float tolerance(index_t k) {
  return 64.0f * static_cast<float>(k) * std::numeric_limits<float>::epsilon();
}

// Double-precision reference for a float problem: promote the float inputs
// bit-exactly and run the proven double reference kernel.
Matrix promoted_reference(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                          float alpha, const MatrixF& a, const MatrixF& b,
                          float beta, const MatrixF& c0) {
  auto promote = [](const MatrixF& src) {
    Matrix dst(src.rows(), src.cols());
    for (index_t j = 0; j < src.cols(); ++j) {
      for (index_t i = 0; i < src.rows(); ++i) {
        dst.view()(i, j) = static_cast<double>(src.view()(i, j));
      }
    }
    return dst;
  };
  Matrix ad = promote(a), bd = promote(b), cd = promote(c0);
  blas::gemm_reference(ta, tb, m, n, k, static_cast<double>(alpha), ad.data(),
                       ad.rows(), bd.data(), bd.rows(),
                       static_cast<double>(beta), cd.data(), cd.rows());
  return cd;
}

double error_vs(const Matrix& want, const MatrixF& got) {
  double worst = 0.0;
  for (index_t j = 0; j < want.cols(); ++j) {
    for (index_t i = 0; i < want.rows(); ++i) {
      const double d =
          want.view()(i, j) - static_cast<double>(got.view()(i, j));
      worst = std::max(worst, d < 0 ? -d : d);
    }
  }
  return worst;
}

// ---------------------------------------------------------------------------
// Correctness matrix: shapes x transposes x beta x schemes.

struct ShapeCase {
  index_t m, n, k;
};
constexpr ShapeCase kShapes[] = {
    {64, 64, 64},    // even square: pure recursion
    {96, 48, 72},    // even rectangular
    {65, 63, 61},    // odd everywhere: dynamic peeling
    {128, 117, 90},  // mixed parity, deeper recursion
};
constexpr float kBetas[] = {0.0f, 1.0f, -0.5f};
constexpr Scheme kSchemes[] = {Scheme::automatic, Scheme::strassen1,
                               Scheme::strassen2, Scheme::fused};

class SgefmmMatrix
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(SgefmmMatrix, MatchesPromotedReference) {
  const ShapeCase sh = kShapes[std::get<0>(GetParam())];
  const int trans_idx = std::get<1>(GetParam());
  const float beta = kBetas[std::get<2>(GetParam())];
  const Scheme scheme = kSchemes[std::get<3>(GetParam())];
  const Trans ta = (trans_idx & 1) != 0 ? Trans::transpose : Trans::no;
  const Trans tb = (trans_idx & 2) != 0 ? Trans::transpose : Trans::no;
  const float alpha = 1.25f;

  Rng rng(1000 + static_cast<std::uint64_t>(
                     std::get<0>(GetParam()) * 100 + trans_idx * 25 +
                     std::get<2>(GetParam()) * 5 + std::get<3>(GetParam())));
  const MatrixF a = random_matrix_f(is_trans(ta) ? sh.k : sh.m,
                                    is_trans(ta) ? sh.m : sh.k, rng);
  const MatrixF b = random_matrix_f(is_trans(tb) ? sh.n : sh.k,
                                    is_trans(tb) ? sh.k : sh.n, rng);
  const MatrixF c0 = random_matrix_f(sh.m, sh.n, rng);
  const Matrix want =
      promoted_reference(ta, tb, sh.m, sh.n, sh.k, alpha, a, b, beta, c0);

  MatrixF c(sh.m, sh.n);
  copy(c0.view(), c.view());
  SgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::square_simple(16);
  cfg.scheme = scheme;
  DgefmmStats stats;
  cfg.stats = &stats;
  ASSERT_EQ(core::sgefmm(ta, tb, sh.m, sh.n, sh.k, alpha, a.data(), a.rows(),
                         b.data(), b.rows(), beta, c.data(), c.rows(), cfg),
            0);
  EXPECT_LT(error_vs(want, c), tolerance(sh.k));
  EXPECT_GE(stats.strassen_levels, 1u) << "cutoff 16 must recurse here";
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SgefmmMatrix,
    ::testing::Combine(::testing::Range(0, 4),    // shape
                       ::testing::Range(0, 4),    // NN, TN, NT, TT
                       ::testing::Range(0, 3),    // beta
                       ::testing::Range(0, 4)));  // scheme

// Strided output: ldc > m must behave identically (the packed epilogue and
// the combine kernels all honour the leading dimension).
TEST(Sgefmm, PaddedLeadingDimensions) {
  const index_t m = 64, n = 64, k = 64, lda = 71, ldb = 67, ldc = 77;
  Rng rng(77);
  std::vector<float> a(static_cast<std::size_t>(lda) * k);
  std::vector<float> b(static_cast<std::size_t>(ldb) * n);
  std::vector<float> c(static_cast<std::size_t>(ldc) * n, 0.5f);
  fill_random(make_view(a.data(), lda, k, lda), rng);
  fill_random(make_view(b.data(), ldb, n, ldb), rng);

  std::vector<float> want(c);
  blas::gemm_reference(Trans::no, Trans::no, m, n, k, 1.0f, a.data(), lda,
                       b.data(), ldb, 2.0f, want.data(), ldc);

  SgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::square_simple(16);
  ASSERT_EQ(core::sgefmm(Trans::no, Trans::no, m, n, k, 1.0f, a.data(), lda,
                         b.data(), ldb, 2.0f, c.data(), ldc, cfg),
            0);
  EXPECT_LT(max_abs_diff(make_view(want.data(), m, n, ldc),
                         make_view(c.data(), m, n, ldc)),
            tolerance(k));
  // The pad rows between columns must be untouched.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = m; i < ldc; ++i) {
      EXPECT_EQ(c[static_cast<std::size_t>(j) * ldc + i], 0.5f);
    }
  }
}

// XERBLA-style argument checking mirrors dgefmm exactly.
TEST(Sgefmm, BadArgumentsReturnPositionalInfo) {
  std::vector<float> buf(16 * 16, 0.0f);
  float* p = buf.data();
  SgefmmConfig cfg;
  EXPECT_EQ(core::sgefmm(Trans::no, Trans::no, -1, 4, 4, 1.0f, p, 4, p, 4,
                         0.0f, p, 4, cfg),
            3);
  EXPECT_EQ(core::sgefmm(Trans::no, Trans::no, 4, -1, 4, 1.0f, p, 4, p, 4,
                         0.0f, p, 4, cfg),
            4);
  EXPECT_EQ(core::sgefmm(Trans::no, Trans::no, 4, 4, -1, 1.0f, p, 4, p, 4,
                         0.0f, p, 4, cfg),
            5);
  EXPECT_EQ(core::sgefmm(Trans::no, Trans::no, 4, 4, 4, 1.0f, p, 2, p, 4,
                         0.0f, p, 4, cfg),
            8);
  EXPECT_EQ(core::sgefmm(Trans::no, Trans::no, 4, 4, 4, 1.0f, p, 4, p, 2,
                         0.0f, p, 4, cfg),
            10);
  EXPECT_EQ(core::sgefmm(Trans::no, Trans::no, 4, 4, 4, 1.0f, p, 4, p, 4,
                         0.0f, p, 2, cfg),
            13);
}

// The caller-workspace path: reserving the predicted float count up front
// must be exactly enough (no internal growth, strict policy happy).
TEST(Sgefmm, PredictedWorkspaceIsSufficientUnderStrict) {
  const index_t n = 96;
  Rng rng(88);
  const MatrixF a = random_matrix_f(n, n, rng);
  const MatrixF b = random_matrix_f(n, n, rng);
  MatrixF c(n, n);
  c.fill(0.0f);

  SgefmmConfig cfg;
  cfg.cutoff = CutoffCriterion::square_simple(16);
  cfg.on_failure = FailurePolicy::strict;
  const count_t need =
      core::sgefmm_workspace_floats(n, n, n, 0.0f, cfg);
  ArenaF arena(static_cast<std::size_t>(need));
  cfg.workspace = &arena;
  ASSERT_EQ(core::sgefmm(Trans::no, Trans::no, n, n, n, 1.0f, a.data(), n,
                         b.data(), n, 0.0f, c.data(), n, cfg),
            0);
  EXPECT_LE(arena.peak(), static_cast<std::size_t>(need));
  EXPECT_EQ(arena.in_use(), 0u);
}

// ---------------------------------------------------------------------------
// Fault-injection sweeps through the float entry points (the outcome-based
// harness of test_faults.cpp: walk the Nth-acquisition countdown until a
// run completes clean, asserting the policy contract whenever it fires).

constexpr long kSweepLimit = 64;

struct ProblemF {
  index_t m, n, k;
  float alpha, beta;
  MatrixF a, b, c0;
  Matrix want;

  ProblemF(index_t m_, index_t n_, index_t k_, float alpha_, float beta_,
           std::uint64_t seed)
      : m(m_), n(n_), k(k_), alpha(alpha_), beta(beta_) {
    Rng rng(seed);
    a = random_matrix_f(m, k, rng);
    b = random_matrix_f(k, n, rng);
    c0 = random_matrix_f(m, n, rng);
    want = promoted_reference(Trans::no, Trans::no, m, n, k, alpha, a, b,
                              beta, c0);
  }
};

class SgefmmFaults : public ::testing::Test {
 protected:
  void TearDown() override { fi::disarm(); }
};

template <class Call>
bool check_armed_call_f(const ProblemF& p, FailurePolicy policy,
                        const DgefmmStats& stats, long nth, Call&& call) {
  MatrixF c(p.m, p.n);
  copy(p.c0.view(), c.view());
  std::vector<float> snapshot(
      c.data(), c.data() + static_cast<std::size_t>(p.m) * p.n);

  const long before = fi::injected_total();
  fi::arm(nth);
  bool threw = false;
  int info = -999;
  try {
    info = call(c);
  } catch (const Error&) {
    threw = true;
  } catch (const std::bad_alloc&) {
    threw = true;
  }
  fi::disarm();
  const bool fired = fi::injected_total() > before;

  if (!fired) {
    EXPECT_FALSE(threw);
    EXPECT_EQ(info, 0);
    EXPECT_LT(error_vs(p.want, c), tolerance(p.k));
    return false;
  }
  if (policy == FailurePolicy::strict) {
    EXPECT_TRUE(threw) << "strict policy must surface the injected fault";
    EXPECT_EQ(std::memcmp(c.data(), snapshot.data(),
                          snapshot.size() * sizeof(float)),
              0)
        << "strict policy must leave C bit-identical";
  } else {
    EXPECT_FALSE(threw) << "fallback policy must absorb the injected fault";
    EXPECT_EQ(info, 0);
    EXPECT_LT(error_vs(p.want, c), tolerance(p.k));
    EXPECT_GE(stats.fallbacks, 1u)
        << "fallback degradation must be recorded in the stats";
  }
  return true;
}

void sweep_serial_f(index_t m, index_t n, index_t k, Scheme scheme,
                    float beta, FailurePolicy policy, std::uint64_t seed) {
  const ProblemF p(m, n, k, 1.0f, beta, seed);
  for (long nth = 1; nth <= kSweepLimit; ++nth) {
    SCOPED_TRACE(::testing::Message()
                 << "serial-f " << m << "x" << n << "x" << k << " scheme "
                 << static_cast<int>(scheme) << " beta " << beta << " nth "
                 << nth);
    DgefmmStats stats;
    SgefmmConfig cfg;
    cfg.cutoff = CutoffCriterion::square_simple(16);
    cfg.scheme = scheme;
    cfg.on_failure = policy;
    cfg.stats = &stats;
    const bool fired =
        check_armed_call_f(p, policy, stats, nth, [&](MatrixF& c) {
          return core::sgefmm(Trans::no, Trans::no, p.m, p.n, p.k, p.alpha,
                              p.a.data(), p.m, p.b.data(), p.k, p.beta,
                              c.data(), p.m, cfg);
        });
    if (!fired) return;
  }
  FAIL() << "sweep did not reach a fault-free run within " << kSweepLimit
         << " acquisitions";
}

void sweep_parallel_f(index_t m, index_t n, index_t k, Scheme scheme,
                      float beta, FailurePolicy policy, std::uint64_t seed,
                      int par_depth = 0) {
  const ProblemF p(m, n, k, 1.0f, beta, seed);
  for (long nth = 1; nth <= kSweepLimit; ++nth) {
    SCOPED_TRACE(::testing::Message()
                 << "parallel-f " << m << "x" << n << "x" << k << " scheme "
                 << static_cast<int>(scheme) << " beta " << beta
                 << " par_depth " << par_depth << " nth " << nth);
    DgefmmStats stats;
    parallel::ParallelSgefmmConfig cfg;
    cfg.cutoff = CutoffCriterion::square_simple(16);
    cfg.scheme = scheme;
    cfg.on_failure = policy;
    cfg.stats = &stats;
    cfg.par_depth = par_depth;
    const bool fired =
        check_armed_call_f(p, policy, stats, nth, [&](MatrixF& c) {
          return parallel::sgefmm_parallel(Trans::no, Trans::no, p.m, p.n,
                                           p.k, p.alpha, p.a.data(), p.m,
                                           p.b.data(), p.k, p.beta, c.data(),
                                           p.m, cfg);
        });
    if (!fired) return;
  }
  FAIL() << "sweep did not reach a fault-free run within " << kSweepLimit
         << " acquisitions";
}

TEST_F(SgefmmFaults, SerialSweepStrassen1Strict) {
  sweep_serial_f(64, 64, 64, Scheme::strassen1, 0.0f, FailurePolicy::strict,
                 41);
}

TEST_F(SgefmmFaults, SerialSweepStrassen1Fallback) {
  sweep_serial_f(64, 64, 64, Scheme::strassen1, 0.0f, FailurePolicy::fallback,
                 41);
}

TEST_F(SgefmmFaults, SerialSweepFusedStrict) {
  sweep_serial_f(64, 64, 64, Scheme::fused, 0.7f, FailurePolicy::strict, 42);
}

TEST_F(SgefmmFaults, SerialSweepFusedFallback) {
  sweep_serial_f(64, 64, 64, Scheme::fused, 0.7f, FailurePolicy::fallback,
                 42);
}

TEST_F(SgefmmFaults, SerialSweepOddRectangularStrict) {
  sweep_serial_f(65, 63, 61, Scheme::automatic, 1.3f, FailurePolicy::strict,
                 43);
}

TEST_F(SgefmmFaults, SerialSweepOddRectangularFallback) {
  sweep_serial_f(65, 63, 61, Scheme::automatic, 1.3f, FailurePolicy::fallback,
                 43);
}

TEST_F(SgefmmFaults, ParallelSweepStrict) {
  sweep_parallel_f(64, 64, 64, Scheme::automatic, 1.3f, FailurePolicy::strict,
                   44);
}

TEST_F(SgefmmFaults, ParallelSweepFallback) {
  sweep_parallel_f(64, 64, 64, Scheme::automatic, 1.3f,
                   FailurePolicy::fallback, 44);
}

TEST_F(SgefmmFaults, ParallelSweepDagDepth2Strict) {
  sweep_parallel_f(72, 72, 72, Scheme::fused, 0.0f, FailurePolicy::strict, 45,
                   /*par_depth=*/2);
}

TEST_F(SgefmmFaults, ParallelSweepDagDepth2Fallback) {
  sweep_parallel_f(72, 72, 72, Scheme::fused, 0.0f, FailurePolicy::fallback,
                   45, /*par_depth=*/2);
}

// ---------------------------------------------------------------------------
// Bitwise determinism across thread budgets: the float DAG combines apply
// their terms in the verified schedule's fixed order, so C is
// memcmp-identical whatever the pool does.

class SgefmmDeterminism
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SgefmmDeterminism, BitwiseIdenticalAcrossThreadCounts) {
  const Scheme scheme =
      std::get<0>(GetParam()) == 0 ? Scheme::automatic : Scheme::fused;
  const int par_depth = std::get<1>(GetParam());
  const index_t n = std::get<2>(GetParam()) == 0 ? 128 : 117;
  Rng rng(4000 + static_cast<std::uint64_t>(std::get<0>(GetParam()) * 10 +
                                            par_depth));
  const MatrixF a = random_matrix_f(n, n, rng);
  const MatrixF b = random_matrix_f(n, n, rng);
  const MatrixF c0 = random_matrix_f(n, n, rng);

  auto run_with_threads = [&](std::size_t threads, MatrixF& c) {
    copy(c0.view(), c.view());
    parallel::ParallelSgefmmConfig cfg;
    cfg.cutoff = CutoffCriterion::square_simple(16);
    cfg.scheme = scheme;
    cfg.par_depth = par_depth;
    cfg.threads = threads;
    ASSERT_EQ(parallel::sgefmm_parallel(Trans::no, Trans::no, n, n, n, 1.5f,
                                        a.data(), n, b.data(), n, 0.25f,
                                        c.data(), n, cfg),
              0);
  };

  MatrixF base(n, n), wide(n, n), pool_sized(n, n);
  run_with_threads(1, base);
  run_with_threads(8, wide);
  run_with_threads(0, pool_sized);
  const std::size_t bytes =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n) *
      sizeof(float);
  EXPECT_EQ(std::memcmp(base.data(), wide.data(), bytes), 0);
  EXPECT_EQ(std::memcmp(base.data(), pool_sized.data(), bytes), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SgefmmDeterminism,
    ::testing::Combine(::testing::Values(0, 1),    // automatic, fused
                       ::testing::Values(1, 2),    // par_depth
                       ::testing::Values(0, 1)));  // even, odd shape

}  // namespace
}  // namespace strassen
