// Command-line benchmark/driver for DGEFMM, in the spirit of the test
// codes the paper distributed alongside the library ("All of our routines,
// including our Strassen library and test codes ... are available on the
// Web").
//
// Usage:
//   dgefmm_cli [options]
//     --m N --k N --n N         problem shape (default 1024^3)
//     --ta T --tb T             transpose flags: N, T, or C
//     --alpha X --beta X        scalars (default 1, 0)
//     --criterion NAME          hybrid | simple | higham | param | opcount
//                               | depthD (e.g. depth2) | dgemm
//     --tau X --tau-m X --tau-k X --tau-n X   criterion parameters
//     --scheme NAME             auto | s1 | s2 | original | fused
//     --fused-levels N          fusion depth for --scheme fused (1 or 2)
//     --odd NAME                peel | dynpad | staticpad
//     --machine NAME            rs6000 | c90 | t3d
//     --reps N                  timing repetitions (default 3)
//     --verify                  check against the reference GEMM
#include <cstring>
#include <iostream>
#include <string>

#include "blas/gemm.hpp"
#include "core/dgefmm.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"
#include "support/timing.hpp"

using namespace strassen;

namespace {

struct Options {
  index_t m = 1024, k = 1024, n = 1024;
  Trans ta = Trans::no, tb = Trans::no;
  double alpha = 1.0, beta = 0.0;
  std::string criterion = "hybrid";
  double tau = 199, tau_m = 75, tau_k = 125, tau_n = 95;
  std::string scheme = "auto";
  int fused_levels = 2;
  std::string odd = "peel";
  std::string machine = "rs6000";
  int reps = 3;
  bool verify = false;
};

[[noreturn]] void usage_error(const std::string& msg) {
  std::cerr << "dgefmm_cli: " << msg << " (see the header comment for usage)\n";
  std::exit(2);
}

Trans parse_trans(const std::string& s) {
  if (s == "N" || s == "n") return Trans::no;
  if (s == "T" || s == "t") return Trans::transpose;
  if (s == "C" || s == "c") return Trans::conj_transpose;
  usage_error("bad trans flag '" + s + "'");
}

Options parse(int argc, char** argv) {
  Options o;
  auto need = [&](int i) -> std::string {
    if (i + 1 >= argc) usage_error("missing value after " + std::string(argv[i]));
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--m") o.m = std::atoll(need(i++).c_str());
    else if (arg == "--k") o.k = std::atoll(need(i++).c_str());
    else if (arg == "--n") o.n = std::atoll(need(i++).c_str());
    else if (arg == "--ta") o.ta = parse_trans(need(i++));
    else if (arg == "--tb") o.tb = parse_trans(need(i++));
    else if (arg == "--alpha") o.alpha = std::atof(need(i++).c_str());
    else if (arg == "--beta") o.beta = std::atof(need(i++).c_str());
    else if (arg == "--criterion") o.criterion = need(i++);
    else if (arg == "--tau") o.tau = std::atof(need(i++).c_str());
    else if (arg == "--tau-m") o.tau_m = std::atof(need(i++).c_str());
    else if (arg == "--tau-k") o.tau_k = std::atof(need(i++).c_str());
    else if (arg == "--tau-n") o.tau_n = std::atof(need(i++).c_str());
    else if (arg == "--scheme") o.scheme = need(i++);
    else if (arg == "--fused-levels")
      o.fused_levels = std::atoi(need(i++).c_str());
    else if (arg == "--odd") o.odd = need(i++);
    else if (arg == "--machine") o.machine = need(i++);
    else if (arg == "--reps") o.reps = std::atoi(need(i++).c_str());
    else if (arg == "--verify") o.verify = true;
    else usage_error("unknown option '" + arg + "'");
  }
  return o;
}

core::CutoffCriterion make_criterion(const Options& o) {
  if (o.criterion == "hybrid")
    return core::CutoffCriterion::hybrid(o.tau, o.tau_m, o.tau_k, o.tau_n);
  if (o.criterion == "simple")
    return core::CutoffCriterion::square_simple(o.tau);
  if (o.criterion == "higham")
    return core::CutoffCriterion::higham_scaled(o.tau);
  if (o.criterion == "param")
    return core::CutoffCriterion::parameterized(o.tau_m, o.tau_k, o.tau_n);
  if (o.criterion == "opcount") return core::CutoffCriterion::op_count();
  if (o.criterion == "dgemm") return core::CutoffCriterion::never_recurse();
  if (o.criterion.rfind("depth", 0) == 0)
    return core::CutoffCriterion::fixed_depth(
        std::atoi(o.criterion.c_str() + 5));
  usage_error("unknown criterion '" + o.criterion + "'");
}

core::Scheme make_scheme(const Options& o) {
  if (o.scheme == "auto") return core::Scheme::automatic;
  if (o.scheme == "s1") return core::Scheme::strassen1;
  if (o.scheme == "s2") return core::Scheme::strassen2;
  if (o.scheme == "original") return core::Scheme::original;
  if (o.scheme == "fused") return core::Scheme::fused;
  usage_error("unknown scheme '" + o.scheme + "'");
}

core::OddStrategy make_odd(const Options& o) {
  if (o.odd == "peel") return core::OddStrategy::dynamic_peeling;
  if (o.odd == "dynpad") return core::OddStrategy::dynamic_padding;
  if (o.odd == "staticpad") return core::OddStrategy::static_padding;
  usage_error("unknown odd strategy '" + o.odd + "'");
}

blas::Machine make_machine(const Options& o) {
  if (o.machine == "rs6000") return blas::Machine::rs6000;
  if (o.machine == "c90") return blas::Machine::c90;
  if (o.machine == "t3d") return blas::Machine::t3d;
  usage_error("unknown machine '" + o.machine + "'");
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  blas::ScopedMachine guard(make_machine(o));

  core::DgefmmConfig cfg;
  cfg.cutoff = make_criterion(o);
  cfg.scheme = make_scheme(o);
  cfg.fused_levels = o.fused_levels;
  cfg.odd = make_odd(o);
  core::DgefmmStats stats;
  cfg.stats = &stats;
  Arena arena;
  cfg.workspace = &arena;

  const index_t a_rows = is_trans(o.ta) ? o.k : o.m;
  const index_t a_cols = is_trans(o.ta) ? o.m : o.k;
  const index_t b_rows = is_trans(o.tb) ? o.n : o.k;
  const index_t b_cols = is_trans(o.tb) ? o.k : o.n;
  Rng rng(42);
  Matrix a = random_matrix(a_rows, a_cols, rng);
  Matrix b = random_matrix(b_rows, b_cols, rng);
  Matrix c0 = random_matrix(o.m, o.n, rng);
  Matrix c(o.m, o.n);

  double best_dgefmm = 1e300, best_dgemm = 1e300;
  int info = 0;
  for (int r = 0; r < o.reps; ++r) {
    copy(c0.view(), c.view());
    stats.reset();
    Timer t;
    info = core::dgefmm(o.ta, o.tb, o.m, o.n, o.k, o.alpha, a.data(), a.ld(),
                        b.data(), b.ld(), o.beta, c.data(), c.ld(), cfg);
    best_dgefmm = std::min(best_dgefmm, t.seconds());
    if (info != 0) {
      std::cerr << "dgefmm: argument " << info << " invalid\n";
      return 1;
    }
  }
  Matrix c_dgemm(o.m, o.n);
  for (int r = 0; r < o.reps; ++r) {
    copy(c0.view(), c_dgemm.view());
    Timer t;
    blas::dgemm(o.ta, o.tb, o.m, o.n, o.k, o.alpha, a.data(), a.ld(),
                b.data(), b.ld(), o.beta, c_dgemm.data(), c_dgemm.ld());
    best_dgemm = std::min(best_dgemm, t.seconds());
  }

  const double gflop = 2.0 * double(o.m) * double(o.k) * double(o.n) * 1e-9;
  std::cout << "problem    : C(" << o.m << "x" << o.n << ") = " << o.alpha
            << "*op(A)(" << o.m << "x" << o.k << ")*op(B) + " << o.beta
            << "*C, machine " << blas::machine_name(blas::active_machine())
            << "\n";
  std::cout << "criterion  : " << cfg.cutoff.describe() << "\n";
  std::cout << "schedule   : " << core::scheme_name(cfg.scheme) << "\n";
  std::cout << "DGEMM      : " << best_dgemm << " s ("
            << gflop / best_dgemm << " GFLOP/s)\n";
  std::cout << "DGEFMM     : " << best_dgefmm << " s ("
            << gflop / best_dgefmm << " effective GFLOP/s), speedup "
            << best_dgemm / best_dgefmm << "x\n";
  std::cout << "recursion  : " << stats.strassen_levels << " Strassen nodes, "
            << stats.base_gemms << " base GEMMs, depth " << stats.max_depth
            << ", " << stats.peel_fixups << " peel fix-ups\n";
  if (stats.fused_depth > 0) {
    std::cout << "fused      : " << stats.fused_products
              << " fused products at depth " << stats.fused_depth << "\n";
  }
  std::cout << "workspace  : " << stats.peak_workspace << " doubles\n";

  if (o.verify) {
    Matrix c_ref(o.m, o.n);
    copy(c0.view(), c_ref.view());
    blas::gemm_reference(o.ta, o.tb, o.m, o.n, o.k, o.alpha, a.data(), a.ld(),
                         b.data(), b.ld(), o.beta, c_ref.data(), c_ref.ld());
    const double err = max_abs_diff(c.view(), c_ref.view());
    std::cout << "verify     : max |DGEFMM - reference| = " << err << "\n";
    if (err > 1e-8 * double(o.k)) {
      std::cerr << "VERIFICATION FAILED\n";
      return 1;
    }
  }
  return 0;
}
