// Empirical cutoff tuning (Section 3.4): measures the square crossover tau
// and the rectangular parameters (tau_m, tau_k, tau_n) for each machine
// profile on THIS host, printing the tuned hybrid criterion (eq. 15).
//
// Usage: cutoff_tuning [max_size] [fixed_large]   (defaults: 384 512)
// The paper swept to ~2050 with two dimensions fixed at 2000; scale up the
// arguments for a full-fidelity run.
#include <cstdlib>
#include <iostream>
#include <string>

#include "blas/machine.hpp"
#include "tuning/crossover.hpp"
#include "tuning/persist.hpp"

using namespace strassen;

int main(int argc, char** argv) {
  tuning::CrossoverOptions opts;
  opts.min_size = 64;
  opts.max_size = argc > 1 ? std::atoll(argv[1]) : 384;
  opts.step = 16;
  opts.fixed_large = argc > 2 ? std::atoll(argv[2]) : 512;
  opts.reps = 2;

  std::cout << "Tuning DGEFMM cutoff parameters (sweep " << opts.min_size
            << ".." << opts.max_size << " step " << opts.step
            << ", fixed large = " << opts.fixed_large << ")\n\n";

  for (blas::Machine mach : blas::kAllMachines) {
    blas::ScopedMachine guard(mach);
    std::cout << "machine profile " << blas::machine_name(mach) << ":\n";
    const auto square = tuning::find_square_crossover(opts);
    std::cout << "  square crossover tau = " << square.tau << "\n";
    const auto rect = tuning::find_rectangular_params(opts);
    std::cout << "  rectangular tau_m = " << rect.tau_m
              << ", tau_k = " << rect.tau_k << ", tau_n = " << rect.tau_n
              << "\n";
    const auto crit = core::CutoffCriterion::hybrid(
        double(square.tau), double(rect.tau_m), double(rect.tau_k),
        double(rect.tau_n));
    std::cout << "  tuned criterion: " << crit.describe() << "\n\n";
  }
  std::cout << "(Paper values, Tables 2-3: RS/6000 tau=199 (75,125,95); "
               "C90 tau=129 (80,45,20); T3D tau=325 (125,75,109).)\n";

  // Section 4.2: the parameters may differ between beta == 0 and the
  // general case, so tune both sets and persist them for later runs.
  std::cout << "\ntuning both parameter sets (beta = 0 and general) on the "
               "default profile...\n";
  const tuning::TunedCriteria both = tuning::tune_both_cases(opts);
  std::cout << "  beta = 0 : " << both.beta_zero.describe() << "\n";
  std::cout << "  general  : " << both.general.describe() << "\n";
  const std::string path = "dgefmm_params.txt";
  if (tuning::save_criteria_file(both, path)) {
    std::cout << "saved to " << path
              << " (reload with tuning::load_criteria_file)\n";
  }
  return 0;
}
