// The paper's Section 4.2 motivating case for the hybrid cutoff criterion:
// on m=160, k=1957, n=957 the simple criterion (eq. 11) refuses to recurse
// (m < tau), while the hybrid criterion (eq. 15) applies one extra level of
// Strassen and wins (the paper measured an 8.6% gain on the RS/6000).
//
// Usage: rectangular_speedup [m] [k] [n]
#include <cstdlib>
#include <iostream>

#include "core/dgefmm.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"
#include "support/timing.hpp"

using namespace strassen;

int main(int argc, char** argv) {
  const index_t m = argc > 1 ? std::atoll(argv[1]) : 160;
  const index_t k = argc > 2 ? std::atoll(argv[2]) : 1957;
  const index_t n = argc > 3 ? std::atoll(argv[3]) : 957;

  std::cout << "Rectangular cutoff showcase: m=" << m << " k=" << k
            << " n=" << n << "\n\n";

  Rng rng(3);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c(m, n);
  c.fill(0.0);

  auto timed = [&](const core::CutoffCriterion& cut) {
    core::DgefmmConfig cfg;
    cfg.cutoff = cut;
    core::DgefmmStats stats;
    cfg.stats = &stats;
    Arena arena;
    cfg.workspace = &arena;
    const double t = time_min(
        [&] {
          stats.reset();
          if (core::dgefmm(Trans::no, Trans::no, m, n, k, 1.0, a.data(),
                           a.ld(), b.data(), b.ld(), 0.0, c.data(), c.ld(),
                           cfg) != 0) {
            std::abort();
          }
        },
        3);
    std::cout << "  " << cut.describe() << "\n    time " << t
              << " s, Strassen levels applied " << stats.strassen_levels
              << ", recursion depth " << stats.max_depth << "\n";
    return t;
  };

  const auto simple = core::CutoffCriterion::square_simple(199);
  const auto hybrid = core::CutoffCriterion::hybrid(199, 75, 125, 95);
  std::cout << "simple criterion (eq. 11) -- blocks recursion when any "
               "dimension is small:\n";
  const double t_simple = timed(simple);
  std::cout << "hybrid criterion (eq. 15) -- recurses when eq. 13 says it "
               "pays:\n";
  const double t_hybrid = timed(hybrid);
  std::cout << "\n  hybrid/simple time ratio: " << t_hybrid / t_simple
            << "  (paper: ~0.914 on this shape)\n";
  return 0;
}
