// Quickstart: DGEFMM as a drop-in DGEMM replacement.
//
// Builds two random matrices, multiplies them with the baseline DGEMM and
// with DGEFMM, verifies agreement, and reports the speedup.
//
// Usage: quickstart [m] [k] [n]      (defaults: 1024 1024 1024)
#include <cstdlib>
#include <iostream>

#include "blas/gemm.hpp"
#include "core/dgefmm.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"
#include "support/timing.hpp"

using namespace strassen;

int main(int argc, char** argv) {
  const index_t m = argc > 1 ? std::atoll(argv[1]) : 1024;
  const index_t k = argc > 2 ? std::atoll(argv[2]) : m;
  const index_t n = argc > 3 ? std::atoll(argv[3]) : m;

  std::cout << "DGEFMM quickstart: C(" << m << "x" << n << ") = A(" << m << "x"
            << k << ") * B(" << k << "x" << n << ")\n\n";

  Rng rng(1);
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c_dgemm(m, n), c_dgefmm(m, n);
  c_dgemm.fill(0.0);
  c_dgefmm.fill(0.0);

  // Baseline: the library's cache-blocked DGEMM.
  const double t_dgemm = time_min(
      [&] {
        blas::dgemm(Trans::no, Trans::no, m, n, k, 1.0, a.data(), a.ld(),
                    b.data(), b.ld(), 0.0, c_dgemm.data(), c_dgemm.ld());
      },
      3);

  // DGEFMM: same interface -- only the routine name changes. A persistent
  // workspace arena makes repeated calls allocation-free.
  core::DgefmmConfig cfg;
  core::DgefmmStats stats;
  cfg.stats = &stats;
  Arena arena;
  cfg.workspace = &arena;
  const double t_dgefmm = time_min(
      [&] {
        stats.reset();
        if (core::dgefmm(Trans::no, Trans::no, m, n, k, 1.0, a.data(),
                         a.ld(), b.data(), b.ld(), 0.0, c_dgefmm.data(),
                         c_dgefmm.ld(), cfg) != 0) {
          std::abort();
        }
      },
      3);

  const double diff = max_abs_diff(c_dgemm.view(), c_dgefmm.view());
  const double gflop = 2.0 * double(m) * double(k) * double(n) * 1e-9;

  std::cout << "  cutoff criterion : " << cfg.cutoff.describe() << "\n";
  std::cout << "  DGEMM  time      : " << t_dgemm << " s  ("
            << gflop / t_dgemm << " GFLOP/s)\n";
  std::cout << "  DGEFMM time      : " << t_dgefmm << " s  ("
            << gflop / t_dgefmm << " effective GFLOP/s)\n";
  std::cout << "  speedup          : " << t_dgemm / t_dgefmm << "x\n";
  std::cout << "  max |difference| : " << diff << "\n";
  std::cout << "  Strassen levels  : " << stats.strassen_levels
            << ", base DGEMMs: " << stats.base_gemms
            << ", max depth: " << stats.max_depth << "\n";
  std::cout << "  workspace        : " << stats.peak_workspace << " doubles ("
            << double(stats.peak_workspace) / (double(m) * double(n))
            << " * m*n)\n";
  return diff < 1e-8 * double(k) ? 0 : 1;
}
