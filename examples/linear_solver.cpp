// Solving A x = b with the blocked LU factorization, with DGEFMM as the
// trailing-update kernel -- the linear-systems use case of Bailey, Lee &
// Simon (reference [3] of the paper).
//
// Usage: linear_solver [n]            (default: 1024)
#include <cstdlib>
#include <iostream>

#include "solver/lu.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"

using namespace strassen;

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 1024;
  std::cout << "LU solve of a random " << n << "x" << n << " system\n\n";

  Rng rng(4);
  Matrix a = random_matrix(n, n, rng);
  for (index_t i = 0; i < n; ++i) a(i, i) += 4.0;
  Matrix b = random_matrix(n, 2, rng);

  auto run = [&](const char* label, core::GemmFn gemm) {
    solver::LuOptions opts;
    opts.gemm = std::move(gemm);
    solver::LuStats stats;
    solver::LuFactors f = solver::lu_factor(a.view(), opts, &stats);
    if (f.info != 0) {
      std::cout << "  singular at pivot " << f.info << "\n";
      return 1.0;
    }
    Matrix x = solver::lu_solve(f, b.view());
    const double resid = solver::relative_residual(a.view(), x.view(),
                                                   b.view());
    std::cout << "  " << label << ": factor " << stats.total_seconds
              << " s (GEMM " << stats.mm_seconds << " s, "
              << 100.0 * stats.mm_seconds / stats.total_seconds
              << "%), residual " << resid << "\n";
    return resid;
  };

  const double r1 = run("DGEMM  backend", core::gemm_backend_dgemm());
  const double r2 = run("DGEFMM backend", core::gemm_backend_dgefmm());
  return (r1 < 1e-12 && r2 < 1e-11) ? 0 : 1;
}
