// Workspace report (Table 1 of the paper): the extra memory each Strassen
// code needs for an order-m multiply, as a coefficient of m^2, for both the
// beta == 0 and the general case.
//
// Usage: memory_report [m]            (default: 1024)
#include <cstdlib>
#include <iostream>

#include "compare/dgemms_like.hpp"
#include "compare/dgemmw_like.hpp"
#include "compare/sgemms_like.hpp"
#include "core/dgefmm.hpp"
#include "support/table.hpp"

using namespace strassen;

int main(int argc, char** argv) {
  const index_t m = argc > 1 ? std::atoll(argv[1]) : 1024;
  const double m2 = double(m) * double(m);
  const double tau = 8.0;  // deep recursion: asymptotic coefficients

  core::DgefmmConfig dgefmm_cfg;
  dgefmm_cfg.cutoff = core::CutoffCriterion::square_simple(tau);
  core::DgefmmConfig s1_cfg = dgefmm_cfg;
  s1_cfg.scheme = core::Scheme::strassen1;
  core::DgefmmConfig s2_cfg = dgefmm_cfg;
  s2_cfg.scheme = core::Scheme::strassen2;
  compare::DgemmwConfig w_cfg;
  w_cfg.tau = tau;
  compare::DgemmsConfig essl_cfg;
  essl_cfg.tau = tau;
  compare::SgemmsConfig cray_cfg;
  cray_cfg.tau = tau;

  auto coeff = [&](count_t doubles) { return fmt(double(doubles) / m2, 3); };

  std::cout << "Extra workspace for an order-" << m
            << " multiply, as a multiple of m^2 (cf. paper Table 1):\n\n";
  TextTable t({"implementation", "beta == 0", "beta != 0", "paper beta==0",
               "paper beta!=0"});
  t.add_row({"SGEMMS-like (CRAY)",
             coeff(compare::sgemms_workspace_doubles(m, m, m, cray_cfg)),
             coeff(compare::sgemms_workspace_doubles(m, m, m, cray_cfg)),
             "2.333", "2.333"});
  t.add_row({"DGEMMS-like (ESSL)",
             coeff(compare::dgemms_workspace_doubles(m, m, m, essl_cfg)),
             "n/a (multiply-only)", "1.400", "n/a"});
  t.add_row({"DGEMMW-like",
             coeff(compare::dgemmw_workspace_doubles(m, m, m, 0.0, w_cfg)),
             coeff(compare::dgemmw_workspace_doubles(m, m, m, 1.0, w_cfg)),
             "0.667", "1.667"});
  t.add_row({"STRASSEN1",
             coeff(core::dgefmm_workspace_doubles(m, m, m, 0.0, s1_cfg)),
             coeff(core::dgefmm_workspace_doubles(m, m, m, 1.0, s1_cfg)),
             "0.667", "2.000"});
  t.add_row({"STRASSEN2",
             coeff(core::dgefmm_workspace_doubles(m, m, m, 0.0, s2_cfg)),
             coeff(core::dgefmm_workspace_doubles(m, m, m, 1.0, s2_cfg)),
             "1.000", "1.000"});
  t.add_row({"DGEFMM (this library)",
             coeff(core::dgefmm_workspace_doubles(m, m, m, 0.0, dgefmm_cfg)),
             coeff(core::dgefmm_workspace_doubles(m, m, m, 1.0, dgefmm_cfg)),
             "0.667", "1.000"});
  t.print(std::cout);
  std::cout << "\n(Exact values are truncated geometric sums, so they sit "
               "slightly below the asymptotic paper coefficients; the "
               "SGEMMS-like reimplementation also carries its two operand "
               "temporaries, landing at 3.0 rather than 2.333.)\n";
  return 0;
}
