// The Section 4.4 application: an ISDA symmetric eigensolver whose kernel
// operation is matrix multiplication. Running it with DGEMM and with
// DGEFMM shows the drop-in performance gain on the MM-dominated fraction
// of a real numerical pipeline.
//
// Usage: eigensolver_demo [n]        (default: 400)
#include <cstdlib>
#include <iostream>

#include "blas/gemm.hpp"
#include "eigen/isda.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"

using namespace strassen;

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 400;
  std::cout << "ISDA eigensolver demo on a random symmetric " << n << "x" << n
            << " matrix\n\n";

  Rng rng(7);
  Matrix a(n, n);
  fill_random_symmetric(a.view(), rng);

  auto run = [&](const char* label, eigen::GemmFn gemm) {
    eigen::IsdaOptions opts;
    opts.gemm = std::move(gemm);
    eigen::IsdaResult res = eigen::isda_eigensolver(a.view(), opts);
    std::cout << "  " << label << ":\n";
    std::cout << "    total time       : " << res.stats.total_seconds
              << " s\n";
    std::cout << "    MM time          : " << res.stats.mm_seconds << " s ("
              << 100.0 * res.stats.mm_seconds / res.stats.total_seconds
              << "% of total)\n";
    std::cout << "    GEMM calls       : " << res.stats.gemm_calls
              << ", beta iterations: " << res.stats.beta_iterations
              << ", splits: " << res.stats.splits
              << ", Jacobi blocks: " << res.stats.jacobi_blocks << "\n";
    std::cout << "    spectrum         : [" << res.eigenvalues.front() << ", "
              << res.eigenvalues.back() << "]\n";
    return res;
  };

  const auto base = run("with DGEMM ", eigen::gemm_backend_dgemm());
  const auto fast = run("with DGEFMM", eigen::gemm_backend_dgefmm());

  double max_dw = 0.0;
  for (std::size_t i = 0; i < base.eigenvalues.size(); ++i) {
    max_dw = std::max(max_dw,
                      std::abs(base.eigenvalues[i] - fast.eigenvalues[i]));
  }
  std::cout << "\n  max eigenvalue difference between backends: " << max_dw
            << "\n";
  std::cout << "  MM-time ratio DGEFMM/DGEMM: "
            << fast.stats.mm_seconds / base.stats.mm_seconds << "\n";
  std::cout << "  (the paper reports ~0.79 on a 1000x1000 RS/6000 run; run "
               "with a larger n to see the gain grow)\n";
  return 0;
}
