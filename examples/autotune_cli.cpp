// Auto-tuning front end: measures this host's scheme crossovers (and
// optionally the eq.-15 cutoffs), persists them as a params file, reloads
// the file through the checked loader, installs it as the consultable
// policy, and proves a use_tuned call actually consults it.
//
// Usage: autotune_cli [--quick | --full] [--elem f64|f32] [--min-size N]
//                     [--max-size N] [--reps N] [--threads N] [--out PATH]
//
//   --quick  tiny budget for CI (scripts/check.sh): scheme sweep 128..384,
//            one rep, paper-default cutoffs. Seconds, not minutes.
//   --full   also tunes the eq.-15 hybrid cutoffs (both beta cases).
//
// Exits nonzero if any stage fails, including the final consultation
// check, so CI can assert the whole persist -> load -> install -> consult
// chain.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/dgefmm.hpp"
#include "core/sgefmm.hpp"
#include "core/tuned_policy.hpp"
#include "support/random.hpp"
#include "tuning/autotune.hpp"

using namespace strassen;

namespace {

int fail(const std::string& why) {
  std::cerr << "autotune_cli: FAIL: " << why << "\n";
  return 1;
}

// Runs one use_tuned call of order s and returns the consulted path name
// (null when the policy was not consulted -- the failure CI looks for).
template <class T>
const char* run_tuned(index_t s) {
  Rng rng(42);
  MatrixT<T> a, b, c;
  if constexpr (std::is_same_v<T, float>) {
    a = random_matrix_f(s, s, rng);
    b = random_matrix_f(s, s, rng);
    c = random_matrix_f(s, s, rng);
  } else {
    a = random_matrix(s, s, rng);
    b = random_matrix(s, s, rng);
    c = random_matrix(s, s, rng);
  }
  core::DgefmmStats stats;
  core::GefmmConfigT<T> cfg;
  cfg.use_tuned = true;
  cfg.stats = &stats;
  int info;
  if constexpr (std::is_same_v<T, float>) {
    info = core::sgefmm(Trans::no, Trans::no, s, s, s, T(1), a.data(), a.ld(),
                        b.data(), b.ld(), T(0), c.data(), c.ld(), cfg);
  } else {
    info = core::dgefmm(Trans::no, Trans::no, s, s, s, T(1), a.data(), a.ld(),
                        b.data(), b.ld(), T(0), c.data(), c.ld(), cfg);
  }
  return info == 0 ? stats.tuned_path : nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  tuning::AutotuneOptions opts;
  std::string out_path = "dgefmm_tuned.params";
  std::string elem = "f64";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--quick") {
      opts.min_size = 128;
      opts.max_size = 384;
      opts.reps = 1;
      opts.tune_cutoffs = false;
    } else if (arg == "--full") {
      opts.tune_cutoffs = true;
    } else if (arg == "--min-size") {
      if (const char* v = next()) opts.min_size = std::atoll(v);
    } else if (arg == "--max-size") {
      if (const char* v = next()) opts.max_size = std::atoll(v);
    } else if (arg == "--reps") {
      if (const char* v = next()) opts.reps = std::atoi(v);
    } else if (arg == "--threads") {
      if (const char* v = next())
        opts.dag_threads = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--out") {
      if (const char* v = next()) out_path = v;
    } else if (arg == "--elem") {
      if (const char* v = next()) elem = v;
      if (elem != "f64" && elem != "f32") {
        return fail("--elem must be f64 or f32");
      }
    } else {
      std::cerr << "usage: autotune_cli [--quick|--full] [--elem f64|f32] "
                   "[--min-size N] [--max-size N] [--reps N] [--threads N] "
                   "[--out PATH]\n";
      return arg == "--help" ? 0 : 1;
    }
  }

  try {
    std::cout << "autotuning " << elem << " scheme crossovers (sweep "
              << opts.min_size << ".." << opts.max_size << ", reps "
              << opts.reps
              << (opts.tune_cutoffs ? ", with eq.-15 cutoffs" : "") << ")\n";
    const tuning::TunedCriteria tuned = elem == "f32"
                                            ? tuning::autotune_float(opts)
                                            : tuning::autotune_double(opts);
    std::cout << "  kernel      " << tuned.kernel << "\n"
              << "  beta_zero   " << tuned.beta_zero.describe() << "\n"
              << "  general     " << tuned.general.describe() << "\n"
              << "  tau_fused   " << tuned.tau_fused << "\n"
              << "  tau_fused2  " << tuned.tau_fused2
              << (tuned.tau_fused2 == 0 ? " (never)" : "") << "\n"
              << "  tau_hybrid  " << tuned.tau_hybrid
              << (tuned.tau_hybrid == 0 ? " (never)" : "") << "\n"
              << "  tau_dag     " << tuned.tau_dag
              << (tuned.tau_dag == 0 ? " (never)" : "") << "  [threads "
              << tuned.threads << "]\n";

    if (!tuning::save_criteria_file(tuned, out_path)) {
      return fail("cannot write " + out_path);
    }
    std::cout << "saved " << out_path << "\n";

    // Round trip through the checked loader, then install: the same chain
    // a production run uses, so a stale-stamp bug fails here and not in a
    // user's dispatch.
    const tuning::TunedCriteria loaded =
        tuning::load_matching_criteria_file(out_path, elem);
    if (!tuning::install_criteria(loaded)) {
      return fail("install_criteria rejected the reloaded file");
    }

    // Consultation proof: a use_tuned call must report which path the
    // policy selected.
    const index_t probe = std::max<index_t>(opts.min_size, 64);
    const char* path = elem == "f32" ? run_tuned<float>(probe)
                                     : run_tuned<double>(probe);
    if (path == nullptr) {
      return fail("use_tuned call did not consult the installed policy");
    }
    std::cout << "consult check: order " << probe << " -> " << path << "\n";
    std::cout << "OK\n";
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  return 0;
}
