// Arithmetic-operation accounting.
//
// Section 2 of the paper analyzes Strassen's algorithm in an operation-count
// model (M(m,k,n) = 2mkn - mn multiplies+adds for standard GEMM, G(m,n) = mn
// per matrix add). The BLAS and Strassen kernels report their analytic
// per-call counts here when counting is enabled, letting the tests check
// that the *implementation's* counts equal the *model's* closed forms -- a
// strong structural invariant (right number of recursions, right number of
// add passes, correct peeling fix-up work).
#pragma once

#include <cstdint>

#include "support/config.hpp"

namespace strassen::opcount {

/// Aggregate operation counters (process-wide; benchmarking is serial).
struct Counters {
  count_t multiplies = 0;  ///< scalar multiplications
  count_t additions = 0;   ///< scalar additions/subtractions

  count_t total() const { return multiplies + additions; }
};

/// Returns the global counters (mutable).
Counters& counters();

/// Enables/disables counting. Disabled by default; the recording functions
/// are no-ops when disabled so timed code paths pay one branch.
void set_enabled(bool enabled);
bool enabled();

/// Zeroes the counters.
void reset();

/// Records one standard m x k by k x n multiply accumulated into C:
/// mkn multiplies and m(k-1)n additions (plus mn more if accumulate).
void record_gemm(index_t m, index_t k, index_t n, bool accumulate);

/// Records an elementwise pass of `n` scalar multiplications.
void record_scale(count_t n);

/// Records an elementwise pass of `n` scalar additions.
void record_add(count_t n);

/// Records a rank-1 update (m*n multiplies, m*n additions).
void record_ger(index_t m, index_t n);

/// Records a matrix-vector product y += op(A)x with A m x n.
void record_gemv(index_t m, index_t n);

/// RAII helper: enables counting on construction, restores on destruction.
class ScopedCounting {
 public:
  ScopedCounting() : prev_(enabled()) {
    set_enabled(true);
    reset();
  }
  ScopedCounting(const ScopedCounting&) = delete;
  ScopedCounting& operator=(const ScopedCounting&) = delete;
  ~ScopedCounting() { set_enabled(prev_); }

 private:
  bool prev_;
};

}  // namespace strassen::opcount
