// Budgeted arena pool for the serving front-end (src/serve).
//
// The serving queue admits a request only when its *exact* predicted
// workspace (core::workspace_doubles / parallel_workspace_doubles and the
// float twins) fits inside a configured element budget. This pool is the
// accounting authority that makes the admission decision provable: it owns
// every workspace byte the serving layer can hand out, and its invariant
//
//     in_use() + cached() <= budget()          (at all times)
//
// is maintained under one mutex, so "peak_total() <= budget()" is a theorem
// about the pool, not a hope about allocator behaviour. A request that
// would break the invariant is simply not carved -- the queue keeps it
// waiting or rejects/sheds it per policy -- which is how the serving layer
// turns OOM into a typed, recoverable outcome (DESIGN.md section 12).
//
// Carving: try_acquire(n) returns a PoolLeaseT holding an exactly-sized
// aligned slab plus a borrowed ArenaT over it (the same borrowed-arena
// mechanism the task-DAG driver uses for its lane sub-arenas). Released
// slabs are cached for reuse -- a mixed-shape request trace re-carves the
// same few sizes constantly -- and the cache is evicted smallest-first
// whenever its retained elements are needed for a new carve, so caching
// never causes an admission failure the uncached pool would not have had.
#pragma once

#include <algorithm>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "support/aligned_buffer.hpp"
#include "support/arena.hpp"

namespace strassen {

template <class T>
class ArenaPoolT;

/// RAII carve of one request's workspace out of an ArenaPoolT. Movable,
/// empty-constructible (an admission miss); returns its slab to the pool
/// cache on destruction. arena() is a borrowed, exactly-sized ArenaT over
/// the slab, so a GEFMM driver handed this arena can never allocate beyond
/// the admitted amount -- overflow throws WorkspaceError instead.
template <class T>
class PoolLeaseT {
 public:
  PoolLeaseT() = default;
  PoolLeaseT(const PoolLeaseT&) = delete;
  PoolLeaseT& operator=(const PoolLeaseT&) = delete;
  PoolLeaseT(PoolLeaseT&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)),
        buf_(std::move(other.buf_)),
        arena_(std::move(other.arena_)) {}
  PoolLeaseT& operator=(PoolLeaseT&& other) noexcept {
    if (this != &other) {
      release();
      pool_ = std::exchange(other.pool_, nullptr);
      buf_ = std::move(other.buf_);
      arena_ = std::move(other.arena_);
    }
    return *this;
  }
  ~PoolLeaseT() { release(); }

  /// True when the carve succeeded (empty leases report false).
  explicit operator bool() const { return pool_ != nullptr; }

  /// Elements this lease holds against the pool budget.
  std::size_t size() const { return buf_.size(); }

  /// The borrowed arena over the slab (valid only on a non-empty lease).
  ArenaT<T>& arena() { return arena_; }

  /// Returns the slab to the pool cache early (idempotent).
  void release();

 private:
  friend class ArenaPoolT<T>;
  PoolLeaseT(ArenaPoolT<T>* pool, AlignedBufferT<T> buf)
      : pool_(pool), buf_(std::move(buf)),
        arena_(buf_.data(), buf_.size()) {}

  ArenaPoolT<T>* pool_ = nullptr;
  AlignedBufferT<T> buf_;
  ArenaT<T> arena_;
};

/// Thread-safe pool of workspace slabs under a hard element budget.
template <class T>
class ArenaPoolT {
 public:
  /// Creates a pool that will never hold more than `budget_elements`
  /// elements across leases and cache combined.
  explicit ArenaPoolT(std::size_t budget_elements)
      : budget_(budget_elements) {}
  ArenaPoolT(const ArenaPoolT&) = delete;
  ArenaPoolT& operator=(const ArenaPoolT&) = delete;

  /// Attempts to carve `need` elements. Returns an empty lease when the
  /// carve does not fit *right now* (the caller decides to wait, reject,
  /// or shed); throws only on a genuine std::bad_alloc within budget or an
  /// injected buffer fault -- which the serving layer maps through the
  /// request's failure policy like any other acquisition failure.
  /// try_acquire(0) succeeds with an empty-slab (but engaged) lease.
  [[nodiscard]] PoolLeaseT<T> try_acquire(std::size_t need) {
    std::unique_lock<std::mutex> lock(mu_);
    if (need > budget_ || in_use_ + need > budget_) {
      return PoolLeaseT<T>{};
    }
    if (need == 0) {
      // An engaged empty lease: the request was priced workspace-free, so
      // it must neither consume a cached slab nor allocate.
      return lease_locked(AlignedBufferT<T>());
    }
    // Reuse the smallest cached slab that fits; its full capacity counts
    // against the budget while leased, so accounting stays exact.
    std::size_t best = free_.size();
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].size() < need) continue;
      if (best == free_.size() || free_[i].size() < free_[best].size()) {
        best = i;
      }
    }
    if (best != free_.size() && in_use_ + free_[best].size() <= budget_) {
      AlignedBufferT<T> buf = std::move(free_[best]);
      free_.erase(free_.begin() +
                  static_cast<std::ptrdiff_t>(best));
      cached_ -= buf.size();
      return lease_locked(std::move(buf));
    }
    // Evict cached slabs (smallest first, so large reusable slabs survive
    // longest) until the fresh carve respects in_use + cached + need <=
    // budget.
    std::sort(free_.begin(), free_.end(),
              [](const AlignedBufferT<T>& a, const AlignedBufferT<T>& b) {
                return a.size() < b.size();
              });
    while (!free_.empty() && in_use_ + cached_ + need > budget_) {
      cached_ -= free_.front().size();
      free_.erase(free_.begin());
    }
    if (in_use_ + cached_ + need > budget_) {
      return PoolLeaseT<T>{};  // cache drained and it still does not fit
    }
    AlignedBufferT<T> buf(need);  // may throw bad_alloc / injected fault
    return lease_locked(std::move(buf));
  }

  /// Hard budget in elements.
  std::size_t budget() const { return budget_; }

  /// Elements currently leased out.
  std::size_t in_use() const {
    std::unique_lock<std::mutex> lock(mu_);
    return in_use_;
  }

  /// Elements retained in the reuse cache.
  std::size_t cached() const {
    std::unique_lock<std::mutex> lock(mu_);
    return cached_;
  }

  /// High-water mark of in_use() + cached() -- the exact-admission
  /// regression asserts peak_total() <= budget() after a soak.
  std::size_t peak_total() const {
    std::unique_lock<std::mutex> lock(mu_);
    return peak_;
  }

  /// Frees every cached slab (leases stay valid).
  void trim() {
    std::unique_lock<std::mutex> lock(mu_);
    free_.clear();
    cached_ = 0;
  }

 private:
  friend class PoolLeaseT<T>;

  PoolLeaseT<T> lease_locked(AlignedBufferT<T> buf) {
    in_use_ += buf.size();
    peak_ = std::max(peak_, in_use_ + cached_);
    return PoolLeaseT<T>(this, std::move(buf));
  }

  void give_back(AlignedBufferT<T> buf) {
    std::unique_lock<std::mutex> lock(mu_);
    in_use_ -= buf.size();
    if (buf.size() > 0) {
      cached_ += buf.size();
      free_.push_back(std::move(buf));
    }
  }

  mutable std::mutex mu_;
  std::size_t budget_;
  std::size_t in_use_ = 0;
  std::size_t cached_ = 0;
  std::size_t peak_ = 0;
  std::vector<AlignedBufferT<T>> free_;
};

template <class T>
void PoolLeaseT<T>::release() {
  if (pool_ == nullptr) return;
  ArenaPoolT<T>* pool = std::exchange(pool_, nullptr);
  arena_ = ArenaT<T>();
  pool->give_back(std::move(buf_));
}

using ArenaPool = ArenaPoolT<double>;
using ArenaPoolF = ArenaPoolT<float>;

}  // namespace strassen
