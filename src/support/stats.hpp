// Robust summary statistics, matching the presentation of the paper's
// Table 4 (range, quartiles, average of timing ratios).
#pragma once

#include <vector>

namespace strassen {

/// Five-number-plus-mean summary of a sample.
struct Summary {
  double min = 0.0;
  double q1 = 0.0;      ///< first quartile
  double median = 0.0;  ///< second quartile
  double q3 = 0.0;      ///< third quartile
  double max = 0.0;
  double mean = 0.0;
  std::size_t count = 0;
};

/// Computes the summary of `sample` (which is copied and sorted internally).
/// Quartiles use linear interpolation between order statistics (the common
/// "R-7" definition). An empty sample yields an all-zero summary.
Summary summarize(std::vector<double> sample);

/// The p-th percentile (0 <= p <= 100) of `sample` under the same R-7
/// definition (copied and sorted internally; empty sample yields 0). The
/// serving layer's latency reservoirs report p50/p99 through this.
double percentile(std::vector<double> sample, double p);

}  // namespace strassen
