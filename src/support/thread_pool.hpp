// Fixed-size thread pool with batch semantics, help-execution, and an
// allocation-free submission path.
//
// The paper lists parallelism as future work (Section 5); this module is
// the corresponding extension. It serves two very different callers:
//
//  * parallel_strassen / parallel_gemm submit batches of std::function
//    tasks ("seven independent Strassen sub-products", "independent column
//    panels") via run_batch;
//
//  * the packed GEMM itself (blas/packed_loop.cpp) fans its ic macro loop
//    out from *inside* the no-fail compute region, where nothing may
//    allocate. run_batch_nofail takes a caller-owned array of raw
//    function-pointer tasks and keeps all batch bookkeeping on the
//    caller's stack, so submission performs no heap operation at all.
//
// Both entry points block until their batch drains, and the waiting thread
// help-executes queued work meanwhile -- so a pool worker running a
// Strassen product may submit a nested intra-GEMM batch without
// deadlocking even on a single-worker pool. This file lives in support/
// (not parallel/) because the BLAS layer depends on it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace strassen::parallel {

class DagRun;

class ThreadPool {
 public:
  /// One allocation-free task: fn(arg). The function pointer and argument
  /// are caller-owned and must outlive the run_batch_nofail call.
  struct RawTask {
    void (*fn)(void*) = nullptr;
    void* arg = nullptr;
  };

  /// Creates `threads` workers (0 means std::thread::hardware_concurrency).
  explicit ThreadPool(std::size_t threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  std::size_t size() const { return workers_.size(); }

  /// Runs all tasks and returns when every one has finished. Tasks must be
  /// independent. Exceptions thrown by tasks are rethrown (the first one)
  /// after the batch drains. While waiting, the calling thread
  /// help-executes queued tasks of any kind.
  void run_batch(std::vector<std::function<void()>> tasks);

  /// Runs tasks[0..count) and returns when every one has finished, without
  /// allocating: the batch state lives on this call's stack and the task
  /// array is read in place. Designed for the packed GEMM's intra-product
  /// fan-out inside a no-fail region, which imposes the contract:
  ///
  ///  * if the calling thread holds a faultinject::ScopedSuspend, every
  ///    task runs under a suspend on its executing thread too (the no-fail
  ///    region travels with the batch, and pool_task fault injection is
  ///    likewise suppressed);
  ///  * raw tasks must not throw and must not submit nested batches;
  ///  * while waiting, the calling thread help-executes raw tasks only
  ///    (never std::function tasks, which may recursively claim the
  ///    caller's thread-local pack scratch).
  ///
  /// Progress never depends on other threads: the caller can always drain
  /// its own batch.
  void run_batch_nofail(const RawTask* tasks, std::size_t count);

  /// Runs fn(worker_index) exactly once on each pool worker thread and
  /// blocks until all have finished; used to warm per-worker thread-local
  /// scratch during a pre-flight. An exception from any invocation is
  /// rethrown (the first one) after all workers finish. Serializes against
  /// concurrent callers. Must not be called from a worker of this pool.
  void run_on_each_worker(const std::function<void(std::size_t)>& fn);

  /// One node of a dependency DAG: fn(arg, lane) runs once all of the
  /// node's dependencies have finished; on completion each successor's
  /// dependency count is decremented and nodes reaching zero become ready.
  /// The successor array is caller-owned and must outlive the run.
  struct DagNode {
    void (*fn)(void*, std::size_t lane) = nullptr;
    void* arg = nullptr;
    const std::int32_t* successors = nullptr;
    std::int32_t nsuccessors = 0;
    std::int32_t dependencies = 0;  ///< in-degree (edges into this node)
  };

  /// Executes a prepared DagRun and returns when every node has finished
  /// (or an error aborted the graph). Scheduling is work-stealing over
  /// `run.lanes()` lanes: lane 0 is the calling thread, the others are
  /// claimed as pool tasks; each lane pops newly readied nodes from its
  /// own deque LIFO (locality) and steals FIFO from a victim lane when
  /// empty, so a combine whose inputs are done overlaps with still-running
  /// products instead of waiting at a barrier. All bookkeeping was
  /// allocated by the DagRun constructor, so this call performs no heap
  /// operation -- it is a sanctioned no-fail entry point, like
  /// run_batch_nofail. If the calling thread holds a
  /// faultinject::ScopedSuspend, every lane runs under a suspend too.
  ///
  /// Node bodies may submit nested run_batch_nofail batches (the intra-GEMM
  /// fan-out); lanes are function tasks, so a thread waiting inside a
  /// nested raw batch can never re-enter the DAG recursively. A node body
  /// that throws marks the run failed: in-flight nodes finish, the
  /// remaining graph is abandoned, and the first error is rethrown here
  /// after every lane has exited. The pool stays usable. Each DagRun is
  /// single-use.
  void run_dag(DagRun& run);

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

 private:
  friend class DagRun;
  // One batch of tasks; lives on the submitting thread's stack for its
  // whole life and is linked into the pool's intrusive FIFO until every
  // task has been claimed.
  struct Batch {
    const RawTask* raw = nullptr;        // raw mode when non-null
    std::function<void()>* fns = nullptr;  // function mode otherwise
    std::size_t count = 0;
    std::size_t next = 0;       // first unclaimed task (guarded by mu_)
    std::size_t remaining = 0;  // unfinished tasks (guarded by mu_)
    bool nofail = false;        // extend the submitter's suspend to tasks
    std::exception_ptr first_error;  // guarded by mu_
    Batch* next_batch = nullptr;
  };

  void enqueue_and_wait(Batch& batch, bool help_functions);
  void link_batch(Batch& batch);
  void wait_batch(Batch& batch, bool help_functions);
  Batch* claim_locked(bool raw_only, std::size_t* index);
  bool claimable_locked(bool raw_only) const;  // CV wait predicates
  void execute(Batch* batch, std::size_t index);  // called without mu_
  void worker_loop(std::size_t worker_index);
  void participate(DagRun& run, std::size_t lane);

  mutable std::mutex mu_;
  std::condition_variable cv_;  // new work, task completion, pinned done
  Batch* head_ = nullptr;       // intrusive FIFO of unclaimed batches
  Batch* tail_ = nullptr;
  std::vector<std::function<void(std::size_t)>> pinned_;  // slot per worker
  std::size_t pinned_pending_ = 0;
  std::exception_ptr pinned_error_;
  bool stop_ = false;
  std::mutex warm_mu_;  // serializes run_on_each_worker callers
  std::vector<std::thread> workers_;
};

/// Prepared execution state for one ThreadPool::run_dag call.
///
/// The constructor performs every allocation the run will need (per-lane
/// ready deques, atomic dependency counters, the lane participation tasks)
/// and seeds the initially ready nodes round-robin across the lanes -- it
/// is the fallible acquisition step, built during a driver's pre-flight.
/// The node array and each node's successor list are caller-owned and must
/// outlive the run. `lanes` bounds scheduling width: at most `lanes` nodes
/// execute concurrently (the moldable allotment planners rely on this).
class DagRun {
 public:
  DagRun(const ThreadPool::DagNode* nodes, std::size_t count,
         std::size_t lanes);
  DagRun(const DagRun&) = delete;
  DagRun& operator=(const DagRun&) = delete;

  std::size_t lanes() const { return lanes_; }
  std::size_t size() const { return count_; }

  /// Nodes a lane executed out of another lane's deque (valid after the
  /// run; the overlap the stealing scheduler achieved).
  long steals() const {
    return steals_.load(std::memory_order_relaxed);  // relaxed: counter
  }

  /// Largest number of node bodies ever executing simultaneously (valid
  /// after the run; the oversubscription regression tests pin this to the
  /// planned lane count).
  int peak_active() const {
    return peak_active_.load(std::memory_order_relaxed);  // relaxed: counter
  }

 private:
  friend class ThreadPool;

  // One lane's ready deque. head/tail only grow; every node is pushed to
  // exactly one deque exactly once, so a ring of `count` slots never
  // wraps. Owner pops at tail (LIFO), thieves take at head (FIFO).
  struct Lane {
    std::mutex mu;
    std::int32_t* slots = nullptr;
    std::size_t head = 0, tail = 0;  // guarded by mu
  };

  void push_ready(std::size_t lane, std::int32_t node);
  std::int32_t pop_or_steal(std::size_t lane);
  void record_error();             // captures current_exception, sets failed_
  void bump_generation_and_wake();

  const ThreadPool::DagNode* nodes_;
  std::size_t count_;
  std::size_t lanes_;
  std::vector<std::atomic<std::int32_t>> deps_;
  std::vector<std::int32_t> slot_storage_;  // lanes_ * count_
  std::unique_ptr<Lane[]> lane_state_;
  std::vector<std::function<void()>> lane_tasks_;  // lanes 1..lanes_-1
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> failed_{false};
  std::atomic<long> steals_{0};
  std::atomic<int> active_{0};
  std::atomic<int> peak_active_{0};
  std::exception_ptr first_error_;  // guarded by wait_mu_
  std::mutex wait_mu_;              // guards generation_ / first_error_
  std::condition_variable wait_cv_;
  std::uint64_t generation_ = 0;  // bumped on every push / failure / drain
  ThreadPool* pool_ = nullptr;    // bound by run_dag
  bool used_ = false;
};

/// Process-wide shared pool (lazily constructed).
ThreadPool& global_pool();

}  // namespace strassen::parallel
