// Fixed-size thread pool with batch semantics, help-execution, and an
// allocation-free submission path.
//
// The paper lists parallelism as future work (Section 5); this module is
// the corresponding extension. It serves two very different callers:
//
//  * parallel_strassen / parallel_gemm submit batches of std::function
//    tasks ("seven independent Strassen sub-products", "independent column
//    panels") via run_batch;
//
//  * the packed GEMM itself (blas/packed_loop.cpp) fans its ic macro loop
//    out from *inside* the no-fail compute region, where nothing may
//    allocate. run_batch_nofail takes a caller-owned array of raw
//    function-pointer tasks and keeps all batch bookkeeping on the
//    caller's stack, so submission performs no heap operation at all.
//
// Both entry points block until their batch drains, and the waiting thread
// help-executes queued work meanwhile -- so a pool worker running a
// Strassen product may submit a nested intra-GEMM batch without
// deadlocking even on a single-worker pool. This file lives in support/
// (not parallel/) because the BLAS layer depends on it; the historical
// include path parallel/thread_pool.hpp forwards here.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace strassen::parallel {

class ThreadPool {
 public:
  /// One allocation-free task: fn(arg). The function pointer and argument
  /// are caller-owned and must outlive the run_batch_nofail call.
  struct RawTask {
    void (*fn)(void*) = nullptr;
    void* arg = nullptr;
  };

  /// Creates `threads` workers (0 means std::thread::hardware_concurrency).
  explicit ThreadPool(std::size_t threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  std::size_t size() const { return workers_.size(); }

  /// Runs all tasks and returns when every one has finished. Tasks must be
  /// independent. Exceptions thrown by tasks are rethrown (the first one)
  /// after the batch drains. While waiting, the calling thread
  /// help-executes queued tasks of any kind.
  void run_batch(std::vector<std::function<void()>> tasks);

  /// Runs tasks[0..count) and returns when every one has finished, without
  /// allocating: the batch state lives on this call's stack and the task
  /// array is read in place. Designed for the packed GEMM's intra-product
  /// fan-out inside a no-fail region, which imposes the contract:
  ///
  ///  * if the calling thread holds a faultinject::ScopedSuspend, every
  ///    task runs under a suspend on its executing thread too (the no-fail
  ///    region travels with the batch, and pool_task fault injection is
  ///    likewise suppressed);
  ///  * raw tasks must not throw and must not submit nested batches;
  ///  * while waiting, the calling thread help-executes raw tasks only
  ///    (never std::function tasks, which may recursively claim the
  ///    caller's thread-local pack scratch).
  ///
  /// Progress never depends on other threads: the caller can always drain
  /// its own batch.
  void run_batch_nofail(const RawTask* tasks, std::size_t count);

  /// Runs fn(worker_index) exactly once on each pool worker thread and
  /// blocks until all have finished; used to warm per-worker thread-local
  /// scratch during a pre-flight. An exception from any invocation is
  /// rethrown (the first one) after all workers finish. Serializes against
  /// concurrent callers. Must not be called from a worker of this pool.
  void run_on_each_worker(const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

 private:
  // One batch of tasks; lives on the submitting thread's stack for its
  // whole life and is linked into the pool's intrusive FIFO until every
  // task has been claimed.
  struct Batch {
    const RawTask* raw = nullptr;        // raw mode when non-null
    std::function<void()>* fns = nullptr;  // function mode otherwise
    std::size_t count = 0;
    std::size_t next = 0;       // first unclaimed task (guarded by mu_)
    std::size_t remaining = 0;  // unfinished tasks (guarded by mu_)
    bool nofail = false;        // extend the submitter's suspend to tasks
    std::exception_ptr first_error;  // guarded by mu_
    Batch* next_batch = nullptr;
  };

  void enqueue_and_wait(Batch& batch, bool help_functions);
  Batch* claim_locked(bool raw_only, std::size_t* index);
  void execute(Batch* batch, std::size_t index);  // called without mu_
  void worker_loop(std::size_t worker_index);

  mutable std::mutex mu_;
  std::condition_variable cv_;  // new work, task completion, pinned done
  Batch* head_ = nullptr;       // intrusive FIFO of unclaimed batches
  Batch* tail_ = nullptr;
  std::vector<std::function<void(std::size_t)>> pinned_;  // slot per worker
  std::size_t pinned_pending_ = 0;
  std::exception_ptr pinned_error_;
  bool stop_ = false;
  std::mutex warm_mu_;  // serializes run_on_each_worker callers
  std::vector<std::thread> workers_;
};

/// Process-wide shared pool (lazily constructed).
ThreadPool& global_pool();

}  // namespace strassen::parallel
