// Deterministic random matrix generation.
//
// The paper's experiments (Figure 6, Tables 4 and 6) use randomly generated
// matrices and randomly sampled problem dimensions; everything here is
// seeded so the reproduction is repeatable run to run.
#pragma once

#include <cstdint>
#include <random>

#include "support/config.hpp"
#include "support/matrix.hpp"

namespace strassen {

/// Seeded pseudo-random source for matrix entries and problem dimensions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = -1.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  index_t uniform_index(index_t lo, index_t hi) {
    return std::uniform_int_distribution<index_t>(lo, hi)(engine_);
  }

  /// Standard normal.
  double normal() { return std::normal_distribution<double>(0.0, 1.0)(engine_); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Fills dst with uniform entries in [lo, hi).
void fill_random(MutView dst, Rng& rng, double lo = -1.0, double hi = 1.0);
void fill_random(MutViewF dst, Rng& rng, double lo = -1.0, double hi = 1.0);

/// Fills dst (square) with a random symmetric matrix, entries ~ U[lo, hi).
void fill_random_symmetric(MutView dst, Rng& rng, double lo = -1.0,
                           double hi = 1.0);

/// Returns an m x n matrix with uniform entries.
Matrix random_matrix(index_t m, index_t n, Rng& rng, double lo = -1.0,
                     double hi = 1.0);
MatrixF random_matrix_f(index_t m, index_t n, Rng& rng, double lo = -1.0,
                        double hi = 1.0);

}  // namespace strassen
