// Deterministic fault injection for the library's failure contract.
//
// A drop-in DGEMM replacement must also *fail* like DGEMM: running out of
// workspace has to surface as a typed error (or a silent degradation to the
// workspace-free DGEMM path), never as a crash or a half-written C. This
// module provides the test harness that proves it: a one-shot countdown
// that makes the Nth resource acquisition fail, compiled permanently into
// the library's fallible operations:
//
//  * Arena::alloc / Arena::reserve (support/arena.hpp),
//  * AlignedBuffer construction (support/aligned_buffer.hpp),
//  * ThreadPool task bodies (support/thread_pool.cpp).
//
// Disarmed cost is one relaxed atomic load per hook, so the hooks stay in
// release builds and the fault-sweep tests run against the production code
// paths. The countdown is process-global and thread-safe: when parallel
// tasks race to the Nth acquisition, exactly one fires.
//
// The module also owns the switch for the arena's debug guards (canary
// words behind every live allocation plus poisoning of released ranges);
// see support/arena.hpp for the layout.
#pragma once

namespace strassen::faultinject {

/// Instrumented operation classes. `any` is a wildcard used when arming.
enum class Site : int {
  arena_alloc = 0,   ///< Arena::alloc (exercised via the driver's probe)
  arena_reserve = 1, ///< Arena::reserve (workspace acquisition)
  buffer_alloc = 2,  ///< AlignedBuffer construction (any matrix/arena/pack)
  pool_task = 3,     ///< ThreadPool task body entry
  any = 4,           ///< wildcard: match every site
};

/// Human-readable site name for test diagnostics.
const char* site_name(Site s);

/// Arms the one-shot countdown: the `countdown`-th subsequent hook check at
/// `site` (with Site::any, at any site) simulates a failure, then the
/// harness disarms itself. countdown >= 1.
void arm(long countdown, Site site = Site::any);

/// Disarms without firing.
void disarm();

/// True while armed and not yet fired.
bool armed();

/// Number of faults fired since process start.
long injected_total();

/// Hook called by instrumented code: true when the caller must simulate a
/// failure now. The caller throws its natural error type (WorkspaceError,
/// std::bad_alloc, TaskError) so injected failures are indistinguishable
/// from real ones.
bool should_fail(Site site);

/// RAII suppression of fault injection on the calling thread. The DGEFMM
/// driver holds one across its compute phase: every fallible acquisition
/// happens up front (reserve + probe + pack-buffer warm-up), so the
/// schedules run in a no-fail region and the strict failure policy can
/// guarantee C is untouched whenever a fault fires.
class ScopedSuspend {
 public:
  ScopedSuspend();
  ScopedSuspend(const ScopedSuspend&) = delete;
  ScopedSuspend& operator=(const ScopedSuspend&) = delete;
  ~ScopedSuspend();
};

/// True while the calling thread holds at least one ScopedSuspend. The
/// thread pool consults this at batch submission so a no-fail region
/// travels with the batch: tasks submitted from inside a suspend run under
/// a suspend on their executing thread too.
bool suspended();

/// Enables/disables the arena debug guards (canary + poison; see
/// support/arena.hpp). Default: on when NDEBUG is not defined.
void set_arena_guards(bool on);
bool arena_guards();

}  // namespace strassen::faultinject
