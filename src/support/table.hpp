// Plain-text table formatting for the benchmark harness, so every bench
// prints rows shaped like the paper's tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace strassen {

/// Column-aligned text table. Cells are strings; numeric helpers format
/// with a fixed precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header underline.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal formatting (e.g. fmt(1.23456, 3) == "1.235").
std::string fmt(double value, int precision);

/// Integer formatting.
std::string fmt(long long value);

}  // namespace strassen
