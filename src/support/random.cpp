#include "support/random.hpp"

#include <cassert>

namespace strassen {

void fill_random(MutView dst, Rng& rng, double lo, double hi) {
  for (index_t j = 0; j < dst.cols; ++j) {
    for (index_t i = 0; i < dst.rows; ++i) {
      dst(i, j) = rng.uniform(lo, hi);
    }
  }
}

void fill_random_symmetric(MutView dst, Rng& rng, double lo, double hi) {
  assert(dst.rows == dst.cols);
  for (index_t j = 0; j < dst.cols; ++j) {
    for (index_t i = 0; i <= j; ++i) {
      const double v = rng.uniform(lo, hi);
      dst(i, j) = v;
      dst(j, i) = v;
    }
  }
}

void fill_random(MutViewF dst, Rng& rng, double lo, double hi) {
  for (index_t j = 0; j < dst.cols; ++j) {
    for (index_t i = 0; i < dst.rows; ++i) {
      dst(i, j) = static_cast<float>(rng.uniform(lo, hi));
    }
  }
}

Matrix random_matrix(index_t m, index_t n, Rng& rng, double lo, double hi) {
  Matrix a(m, n);
  fill_random(a.view(), rng, lo, hi);
  return a;
}

MatrixF random_matrix_f(index_t m, index_t n, Rng& rng, double lo,
                        double hi) {
  MatrixF a(m, n);
  fill_random(a.view(), rng, lo, hi);
  return a;
}

}  // namespace strassen
