// Huge-page advice for the numeric buffers (memory-system tuning).
//
// The crossover against a tuned DGEMM is won or lost in the memory system
// (Huang et al., arXiv:1605.01078): at paper scale the packed-GEMM streams
// walk hundreds of megabytes of matrix and workspace storage, and 4 KiB
// pages burn a measurable fraction of the run in TLB misses. When the
// kernel's transparent-huge-page mode is `madvise`, an explicit
// madvise(MADV_HUGEPAGE) over a large allocation lets it be backed by
// 2 MiB pages without forcing THP on for the whole process.
//
// The switch is off by default (STRASSEN_HUGEPAGES=1 enables it; a Scoped
// override serves the tests) because huge pages trade first-touch
// granularity for TLB reach -- on NUMA machines a 2 MiB page lands
// entirely on the node of whichever thread touches it first, so the
// per-lane sub-arena carving in parallel/task_dag.cpp is the placement
// that makes the trade safe. Advice is exactly that: a failed or
// unsupported madvise degrades to normal pages and the library never
// notices beyond the stats.
#pragma once

#include <cstddef>

namespace strassen {

/// Smallest allocation worth advising: one aligned 2 MiB huge page must
/// fit inside it after rounding the ends to the base-page grid.
inline constexpr std::size_t kHugePageBytes = std::size_t{2} << 20;

/// Process-wide switch, resolved once from STRASSEN_HUGEPAGES (values
/// "1"/"on" enable) on first query; set_huge_pages overrides it later
/// (tests and benches toggle per run).
bool huge_pages_enabled();
void set_huge_pages(bool on);

/// RAII override of the huge-page switch (the bitwise-identity test matrix
/// sweeps it on and off around otherwise identical calls).
class ScopedHugePages {
 public:
  explicit ScopedHugePages(bool on) : prev_(huge_pages_enabled()) {
    set_huge_pages(on);
  }
  ScopedHugePages(const ScopedHugePages&) = delete;
  ScopedHugePages& operator=(const ScopedHugePages&) = delete;
  ~ScopedHugePages() { set_huge_pages(prev_); }

 private:
  bool prev_;
};

/// Advises the kernel to back [p, p + bytes) with huge pages
/// (madvise(MADV_HUGEPAGE) on Linux). The range is shrunk inward to the
/// base-page grid first (madvise requires page-aligned addresses; the
/// numeric buffers are only cache-line aligned). Returns the number of
/// bytes actually advised: 0 when the switch is off, the platform lacks
/// madvise, the rounded range is empty, or the kernel refused -- all of
/// which are benign degradations to normal pages, never errors.
[[nodiscard]] std::size_t advise_huge_pages(void* p, std::size_t bytes);

}  // namespace strassen
