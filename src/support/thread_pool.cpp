#include "support/thread_pool.hpp"

#include <algorithm>
#include <cassert>
#include <optional>

#include "support/errors.hpp"
#include "support/faultinject.hpp"

namespace strassen::parallel {

namespace {

// Identifies the pool (if any) whose worker the current thread is.
thread_local const ThreadPool* t_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  pinned_.resize(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::on_worker_thread() const { return t_worker_pool == this; }

// Claims one task under mu_, unlinking batches whose tasks have all been
// claimed (their submitters keep waiting on `remaining`, which outlives the
// queue membership). With raw_only, function batches are skipped: a thread
// waiting inside run_batch_nofail may hold per-thread pack scratch that a
// recursing std::function task would clobber.
ThreadPool::Batch* ThreadPool::claim_locked(bool raw_only,
                                            std::size_t* index) {
  Batch* prev = nullptr;
  Batch* b = head_;
  while (b != nullptr) {
    if (b->next >= b->count) {
      Batch* done = b;
      b = b->next_batch;
      if (prev != nullptr) {
        prev->next_batch = b;
      } else {
        head_ = b;
      }
      if (done == tail_) tail_ = prev;
      done->next_batch = nullptr;
      continue;
    }
    if (raw_only && b->raw == nullptr) {
      prev = b;
      b = b->next_batch;
      continue;
    }
    *index = b->next++;
    return b;
  }
  return nullptr;
}

// True exactly when claim_locked(raw_only, ...) would return a task right
// now: the predicate the CV waits re-check without mutating the FIFO.
bool ThreadPool::claimable_locked(bool raw_only) const {
  for (const Batch* b = head_; b != nullptr; b = b->next_batch) {
    if (b->next >= b->count) continue;
    if (raw_only && b->raw == nullptr) continue;
    return true;
  }
  return false;
}

// Runs one claimed task (mu_ not held). A nofail batch extends the
// submitter's fault-injection suspend onto this thread for the task's
// duration, which also suppresses the pool_task injection hook -- exactly
// the semantics the no-fail compute region requires.
void ThreadPool::execute(Batch* batch, std::size_t index) {
  std::exception_ptr err;
  try {
    std::optional<faultinject::ScopedSuspend> suspend;
    if (batch->nofail) suspend.emplace();
    if (faultinject::should_fail(faultinject::Site::pool_task)) {
      throw TaskError("fault injection: thread-pool task failed to start");
    }
    if (batch->raw != nullptr) {
      batch->raw[index].fn(batch->raw[index].arg);
    } else {
      batch->fns[index]();
    }
  } catch (...) {
    err = std::current_exception();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (err && !batch->first_error) batch->first_error = err;
  if (--batch->remaining == 0) cv_.notify_all();
}

// Links the stack-resident batch into the FIFO and wakes the workers.
void ThreadPool::link_batch(Batch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tail_ != nullptr) {
    tail_->next_batch = &batch;
  } else {
    head_ = &batch;
  }
  tail_ = &batch;
  cv_.notify_all();
}

// Waits for a linked batch to drain, help-executing queued tasks
// meanwhile. Progress never depends on other threads: when nobody else
// claims this batch's tasks, the loop claims and runs them itself.
void ThreadPool::wait_batch(Batch& batch, bool help_functions) {
  std::unique_lock<std::mutex> lock(mu_);
  while (batch.remaining > 0) {
    std::size_t index = 0;
    Batch* victim = claim_locked(/*raw_only=*/!help_functions, &index);
    if (victim != nullptr) {
      lock.unlock();  // handoff: run the claimed task without holding mu_
      execute(victim, index);
      lock.lock();
      continue;
    }
    cv_.wait(lock, [&] {
      return batch.remaining == 0 || claimable_locked(!help_functions);
    });
  }
  // The batch dies with this stack frame, so it must leave the FIFO now:
  // claim scans unlink fully-claimed batches only lazily, and `remaining`
  // can reach zero before any scan passes by.
  Batch* prev = nullptr;
  for (Batch* b = head_; b != nullptr; prev = b, b = b->next_batch) {
    if (b == &batch) {
      if (prev != nullptr) {
        prev->next_batch = batch.next_batch;
      } else {
        head_ = batch.next_batch;
      }
      if (tail_ == &batch) tail_ = prev;
      batch.next_batch = nullptr;
      break;
    }
  }
}

void ThreadPool::enqueue_and_wait(Batch& batch, bool help_functions) {
  link_batch(batch);
  wait_batch(batch, help_functions);
}

void ThreadPool::run_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  Batch batch;
  batch.fns = tasks.data();
  batch.count = tasks.size();
  batch.remaining = tasks.size();
  batch.nofail = faultinject::suspended();
  enqueue_and_wait(batch, /*help_functions=*/true);
  if (batch.first_error) std::rethrow_exception(batch.first_error);
}

void ThreadPool::run_batch_nofail(const RawTask* tasks, std::size_t count) {
  if (count == 0) return;
  Batch batch;
  batch.raw = tasks;
  batch.count = count;
  batch.remaining = count;
  batch.nofail = faultinject::suspended();
  enqueue_and_wait(batch, /*help_functions=*/false);
  if (batch.first_error) std::rethrow_exception(batch.first_error);
}

void ThreadPool::run_on_each_worker(
    const std::function<void(std::size_t)>& fn) {
  assert(!on_worker_thread());
  // Serializing callers keeps the per-worker slots single-writer; the warm
  // itself is a pre-flight operation, so blocking here is fine.
  std::lock_guard<std::mutex> warm(warm_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  pinned_error_ = nullptr;
  pinned_pending_ = workers_.size();
  for (auto& slot : pinned_) slot = fn;
  cv_.notify_all();
  // No help-execution needed: every worker returns to its loop (draining
  // its own nested batches on the way) and serves its pinned slot.
  cv_.wait(lock, [this] { return pinned_pending_ == 0; });
  if (pinned_error_) {
    std::exception_ptr err = pinned_error_;
    pinned_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  t_worker_pool = this;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Pinned (per-worker) tasks first: pre-flight warm-ups must not queue
    // behind long compute batches.
    if (pinned_[worker_index]) {
      std::function<void(std::size_t)> fn = std::move(pinned_[worker_index]);
      pinned_[worker_index] = nullptr;
      lock.unlock();  // handoff: run the pinned task without holding mu_
      std::exception_ptr err;
      try {
        if (faultinject::should_fail(faultinject::Site::pool_task)) {
          throw TaskError("fault injection: thread-pool task failed to start");
        }
        fn(worker_index);
      } catch (...) {
        err = std::current_exception();
      }
      lock.lock();
      if (err && !pinned_error_) pinned_error_ = err;
      --pinned_pending_;
      cv_.notify_all();
      continue;
    }
    std::size_t index = 0;
    if (Batch* batch = claim_locked(/*raw_only=*/false, &index)) {
      lock.unlock();  // handoff: run the claimed task without holding mu_
      execute(batch, index);
      lock.lock();
      continue;
    }
    if (stop_) return;
    cv_.wait(lock, [&] {
      return stop_ || static_cast<bool>(pinned_[worker_index]) ||
             claimable_locked(/*raw_only=*/false);
    });
  }
}

// --- dependency-DAG execution ----------------------------------------------

DagRun::DagRun(const ThreadPool::DagNode* nodes, std::size_t count,
               std::size_t lanes)
    : nodes_(nodes),
      count_(count),
      lanes_(lanes == 0 ? 1 : lanes),
      deps_(count),
      slot_storage_(lanes_ * count),
      lane_state_(new Lane[lanes_]),
      remaining_(count) {
  for (std::size_t l = 0; l < lanes_; ++l) {
    lane_state_[l].slots = slot_storage_.data() + l * count_;
  }
  lane_tasks_.reserve(lanes_ - 1);
  for (std::size_t l = 1; l < lanes_; ++l) {
    lane_tasks_.emplace_back([this, l] { pool_->participate(*this, l); });
  }
  // Seed: dependency counters from the node table, initially ready nodes
  // dealt round-robin across the lanes (single-threaded here, so plain
  // stores are fine).
  std::size_t next_lane = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    deps_[i].store(nodes_[i].dependencies,
                   std::memory_order_relaxed);  // relaxed: counter
    if (nodes_[i].dependencies == 0) {
      Lane& lane = lane_state_[next_lane];
      lane.slots[lane.tail++] = static_cast<std::int32_t>(i);
      next_lane = (next_lane + 1) % lanes_;
    }
  }
}

void DagRun::push_ready(std::size_t lane, std::int32_t node) {
  {
    Lane& own = lane_state_[lane];
    std::lock_guard<std::mutex> g(own.mu);
    own.slots[own.tail++] = node;
  }
  bump_generation_and_wake();
}

std::int32_t DagRun::pop_or_steal(std::size_t lane) {
  {
    Lane& own = lane_state_[lane];
    std::lock_guard<std::mutex> g(own.mu);
    if (own.tail > own.head) return own.slots[--own.tail];
  }
  for (std::size_t off = 1; off < lanes_; ++off) {
    Lane& victim = lane_state_[(lane + off) % lanes_];
    std::lock_guard<std::mutex> g(victim.mu);
    if (victim.tail > victim.head) {
      steals_.fetch_add(1, std::memory_order_relaxed);  // relaxed: counter
      return victim.slots[victim.head++];
    }
  }
  return -1;
}

void DagRun::record_error() {
  {
    std::lock_guard<std::mutex> g(wait_mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  failed_.store(true, std::memory_order_release);
}

void DagRun::bump_generation_and_wake() {
  {
    std::lock_guard<std::mutex> g(wait_mu_);
    ++generation_;
  }
  wait_cv_.notify_all();
}

// One lane's scheduling loop: pop own work LIFO, steal FIFO, sleep when the
// graph has in-flight nodes but none ready. The generation counter closes
// the check-then-sleep race: any push after the snapshot bumps it, so the
// predicate wakes the sleeper. Exits when every node ran or the run failed.
void ThreadPool::participate(DagRun& run, std::size_t lane) {
  for (;;) {
    if (run.failed_.load(std::memory_order_acquire)) return;
    if (run.remaining_.load(std::memory_order_acquire) == 0) return;
    std::uint64_t gen;
    {
      std::lock_guard<std::mutex> g(run.wait_mu_);
      gen = run.generation_;
    }
    const std::int32_t node = run.pop_or_steal(lane);
    if (node < 0) {
      std::unique_lock<std::mutex> lk(run.wait_mu_);
      run.wait_cv_.wait(lk, [&] {
        return run.generation_ != gen ||
               run.failed_.load(
                   std::memory_order_relaxed) ||  // relaxed: cancel-token
               run.remaining_.load(
                   std::memory_order_relaxed) == 0;  // relaxed: counter
      });
      continue;
    }
    const DagNode& nd = run.nodes_[node];
    const int active =
        run.active_.fetch_add(1, std::memory_order_relaxed) +  // relaxed: counter
        1;
    int peak =
        run.peak_active_.load(std::memory_order_relaxed);  // relaxed: counter
    while (active > peak &&
           !run.peak_active_.compare_exchange_weak(
               peak, active, std::memory_order_relaxed)) {  // relaxed: counter
    }
    bool ok = true;
    try {
      nd.fn(nd.arg, lane);
    } catch (...) {
      ok = false;
      run.record_error();
    }
    run.active_.fetch_sub(1, std::memory_order_relaxed);  // relaxed: counter
    if (!ok) {
      run.bump_generation_and_wake();
      return;
    }
    for (std::int32_t s = 0; s < nd.nsuccessors; ++s) {
      const std::int32_t succ = nd.successors[s];
      if (run.deps_[static_cast<std::size_t>(succ)].fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        run.push_ready(lane, succ);
      }
    }
    if (run.remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      run.bump_generation_and_wake();
      return;
    }
  }
}

void ThreadPool::run_dag(DagRun& run) {
  assert(!run.used_);
  run.used_ = true;
  run.pool_ = this;
  if (run.count_ == 0) return;
  // Lanes 1..N-1 are a *function* batch: a node body waiting inside a
  // nested run_batch_nofail help-executes raw tasks only, so it can never
  // claim another lane and recursively re-enter the DAG on a thread whose
  // pack scratch is live.
  Batch batch;
  if (run.lanes_ > 1) {
    batch.fns = run.lane_tasks_.data();
    batch.count = run.lane_tasks_.size();
    batch.remaining = run.lane_tasks_.size();
    batch.nofail = faultinject::suspended();
    link_batch(batch);
  }
  participate(run, 0);
  if (run.lanes_ > 1) {
    // Lanes exit as soon as the graph drains or fails; unclaimed lane
    // tasks are claimed here and return immediately.
    wait_batch(batch, /*help_functions=*/true);
  }
  if (run.first_error_) std::rethrow_exception(run.first_error_);
  // A lane task that failed to *start* (pool_task fault injection at the
  // batch entry) surfaces as TaskError even though the remaining lanes
  // finished the graph: the run did not get the concurrency it planned.
  if (batch.first_error) std::rethrow_exception(batch.first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace strassen::parallel
