#include "support/thread_pool.hpp"

#include <algorithm>
#include <cassert>
#include <optional>

#include "support/errors.hpp"
#include "support/faultinject.hpp"

namespace strassen::parallel {

namespace {

// Identifies the pool (if any) whose worker the current thread is.
thread_local const ThreadPool* t_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  pinned_.resize(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::on_worker_thread() const { return t_worker_pool == this; }

// Claims one task under mu_, unlinking batches whose tasks have all been
// claimed (their submitters keep waiting on `remaining`, which outlives the
// queue membership). With raw_only, function batches are skipped: a thread
// waiting inside run_batch_nofail may hold per-thread pack scratch that a
// recursing std::function task would clobber.
ThreadPool::Batch* ThreadPool::claim_locked(bool raw_only,
                                            std::size_t* index) {
  Batch* prev = nullptr;
  Batch* b = head_;
  while (b != nullptr) {
    if (b->next >= b->count) {
      Batch* done = b;
      b = b->next_batch;
      if (prev != nullptr) {
        prev->next_batch = b;
      } else {
        head_ = b;
      }
      if (done == tail_) tail_ = prev;
      done->next_batch = nullptr;
      continue;
    }
    if (raw_only && b->raw == nullptr) {
      prev = b;
      b = b->next_batch;
      continue;
    }
    *index = b->next++;
    return b;
  }
  return nullptr;
}

// Runs one claimed task (mu_ not held). A nofail batch extends the
// submitter's fault-injection suspend onto this thread for the task's
// duration, which also suppresses the pool_task injection hook -- exactly
// the semantics the no-fail compute region requires.
void ThreadPool::execute(Batch* batch, std::size_t index) {
  std::exception_ptr err;
  try {
    std::optional<faultinject::ScopedSuspend> suspend;
    if (batch->nofail) suspend.emplace();
    if (faultinject::should_fail(faultinject::Site::pool_task)) {
      throw TaskError("fault injection: thread-pool task failed to start");
    }
    if (batch->raw != nullptr) {
      batch->raw[index].fn(batch->raw[index].arg);
    } else {
      batch->fns[index]();
    }
  } catch (...) {
    err = std::current_exception();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (err && !batch->first_error) batch->first_error = err;
  if (--batch->remaining == 0) cv_.notify_all();
}

// Links the stack-resident batch into the FIFO and waits for it to drain,
// help-executing queued tasks meanwhile. Progress never depends on other
// threads: when nobody else claims this batch's tasks, the loop claims and
// runs them itself.
void ThreadPool::enqueue_and_wait(Batch& batch, bool help_functions) {
  std::unique_lock<std::mutex> lock(mu_);
  if (tail_ != nullptr) {
    tail_->next_batch = &batch;
  } else {
    head_ = &batch;
  }
  tail_ = &batch;
  cv_.notify_all();
  while (batch.remaining > 0) {
    std::size_t index = 0;
    Batch* victim = claim_locked(/*raw_only=*/!help_functions, &index);
    if (victim != nullptr) {
      lock.unlock();
      execute(victim, index);
      lock.lock();
      continue;
    }
    cv_.wait(lock);
  }
  // The batch dies with this stack frame, so it must leave the FIFO now:
  // claim scans unlink fully-claimed batches only lazily, and `remaining`
  // can reach zero before any scan passes by.
  Batch* prev = nullptr;
  for (Batch* b = head_; b != nullptr; prev = b, b = b->next_batch) {
    if (b == &batch) {
      if (prev != nullptr) {
        prev->next_batch = batch.next_batch;
      } else {
        head_ = batch.next_batch;
      }
      if (tail_ == &batch) tail_ = prev;
      batch.next_batch = nullptr;
      break;
    }
  }
}

void ThreadPool::run_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  Batch batch;
  batch.fns = tasks.data();
  batch.count = tasks.size();
  batch.remaining = tasks.size();
  batch.nofail = faultinject::suspended();
  enqueue_and_wait(batch, /*help_functions=*/true);
  if (batch.first_error) std::rethrow_exception(batch.first_error);
}

void ThreadPool::run_batch_nofail(const RawTask* tasks, std::size_t count) {
  if (count == 0) return;
  Batch batch;
  batch.raw = tasks;
  batch.count = count;
  batch.remaining = count;
  batch.nofail = faultinject::suspended();
  enqueue_and_wait(batch, /*help_functions=*/false);
  if (batch.first_error) std::rethrow_exception(batch.first_error);
}

void ThreadPool::run_on_each_worker(
    const std::function<void(std::size_t)>& fn) {
  assert(!on_worker_thread());
  // Serializing callers keeps the per-worker slots single-writer; the warm
  // itself is a pre-flight operation, so blocking here is fine.
  std::lock_guard<std::mutex> warm(warm_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  pinned_error_ = nullptr;
  pinned_pending_ = workers_.size();
  for (auto& slot : pinned_) slot = fn;
  cv_.notify_all();
  // No help-execution needed: every worker returns to its loop (draining
  // its own nested batches on the way) and serves its pinned slot.
  while (pinned_pending_ > 0) cv_.wait(lock);
  if (pinned_error_) {
    std::exception_ptr err = pinned_error_;
    pinned_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  t_worker_pool = this;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Pinned (per-worker) tasks first: pre-flight warm-ups must not queue
    // behind long compute batches.
    if (pinned_[worker_index]) {
      std::function<void(std::size_t)> fn = std::move(pinned_[worker_index]);
      pinned_[worker_index] = nullptr;
      lock.unlock();
      std::exception_ptr err;
      try {
        if (faultinject::should_fail(faultinject::Site::pool_task)) {
          throw TaskError("fault injection: thread-pool task failed to start");
        }
        fn(worker_index);
      } catch (...) {
        err = std::current_exception();
      }
      lock.lock();
      if (err && !pinned_error_) pinned_error_ = err;
      --pinned_pending_;
      cv_.notify_all();
      continue;
    }
    std::size_t index = 0;
    if (Batch* batch = claim_locked(/*raw_only=*/false, &index)) {
      lock.unlock();
      execute(batch, index);
      lock.lock();
      continue;
    }
    if (stop_) return;
    cv_.wait(lock);
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace strassen::parallel
