// RAII buffer with cache-line alignment, used for all matrix storage.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

#include "support/config.hpp"
#include "support/faultinject.hpp"

namespace strassen {

/// Owning, aligned, non-resizable array of scalars (float or double).
///
/// A thin RAII wrapper over ::operator new(align) chosen instead of
/// std::vector so that (a) storage is cache-line aligned for the packed GEMM
/// kernels, and (b) the elements are deliberately left uninitialized --
/// workspace arenas hand out slices that are always written before being
/// read, and zero-filling multi-hundred-megabyte workspaces would distort
/// benchmark timings.
template <class T>
class AlignedBufferT {
 public:
  AlignedBufferT() = default;

  explicit AlignedBufferT(std::size_t n) : size_(n) {
    if (n > 0) {
      if (faultinject::should_fail(faultinject::Site::buffer_alloc)) {
        throw std::bad_alloc();
      }
      data_ = static_cast<T*>(::operator new(
          n * sizeof(T), std::align_val_t(kBufferAlignment)));
    }
  }

  AlignedBufferT(const AlignedBufferT&) = delete;
  AlignedBufferT& operator=(const AlignedBufferT&) = delete;

  AlignedBufferT(AlignedBufferT&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBufferT& operator=(AlignedBufferT&& other) noexcept {
    if (this != &other) {
      destroy();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBufferT() { destroy(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  void destroy() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t(kBufferAlignment));
    }
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

using AlignedBuffer = AlignedBufferT<double>;
using AlignedBufferF = AlignedBufferT<float>;

}  // namespace strassen
