// RAII buffer with cache-line alignment, used for all matrix storage.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

#include "support/config.hpp"
#include "support/faultinject.hpp"
#include "support/memadvise.hpp"

namespace strassen {

/// Owning, aligned, non-resizable array of scalars (float or double).
///
/// A thin RAII wrapper over ::operator new(align) chosen instead of
/// std::vector so that (a) storage is cache-line aligned for the packed GEMM
/// kernels, and (b) the elements are deliberately left uninitialized --
/// workspace arenas hand out slices that are always written before being
/// read, and zero-filling multi-hundred-megabyte workspaces would distort
/// benchmark timings.
///
/// When the STRASSEN_HUGEPAGES switch is on, buffers of at least one huge
/// page advise the kernel to back them with 2 MiB pages
/// (support/memadvise.hpp); huge_advised_bytes() reports how much of the
/// buffer the advice covered so DgefmmStats can surface it. The advice
/// never changes the contents or the alignment -- results are bitwise
/// identical with the switch on or off.
template <class T>
class AlignedBufferT {
 public:
  AlignedBufferT() = default;

  explicit AlignedBufferT(std::size_t n) : size_(n) {
    if (n > 0) {
      if (faultinject::should_fail(faultinject::Site::buffer_alloc)) {
        throw std::bad_alloc();
      }
      data_ = static_cast<T*>(::operator new(
          n * sizeof(T), std::align_val_t(kBufferAlignment)));
      huge_bytes_ = advise_huge_pages(data_, n * sizeof(T));
    }
  }

  AlignedBufferT(const AlignedBufferT&) = delete;
  AlignedBufferT& operator=(const AlignedBufferT&) = delete;

  AlignedBufferT(AlignedBufferT&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        huge_bytes_(std::exchange(other.huge_bytes_, 0)) {}

  AlignedBufferT& operator=(AlignedBufferT&& other) noexcept {
    if (this != &other) {
      destroy();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      huge_bytes_ = std::exchange(other.huge_bytes_, 0);
    }
    return *this;
  }

  ~AlignedBufferT() { destroy(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  /// Bytes of this buffer covered by a successful huge-page advice (0 when
  /// the switch is off, the buffer is small, or the kernel refused).
  std::size_t huge_advised_bytes() const { return huge_bytes_; }

 private:
  void destroy() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t(kBufferAlignment));
    }
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t huge_bytes_ = 0;
};

using AlignedBuffer = AlignedBufferT<double>;
using AlignedBufferF = AlignedBufferT<float>;

}  // namespace strassen
