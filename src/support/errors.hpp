// Error handling: BLAS-style argument checking plus exceptions for
// conditions (workspace exhaustion, convergence failure) that have no
// BLAS-style INFO convention.
#pragma once

#include <stdexcept>
#include <string>

namespace strassen {

/// Base class of all exceptions thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a workspace arena cannot satisfy an allocation. The library
/// pre-sizes arenas exactly, so seeing this indicates either a caller-supplied
/// arena that is too small or an internal sizing bug.
class WorkspaceError : public Error {
 public:
  explicit WorkspaceError(const std::string& what) : Error(what) {}
};

/// Thrown by iterative algorithms (e.g. the ISDA eigensolver) when a
/// convergence criterion is not met within the configured iteration budget.
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

/// Thrown when a thread-pool task fails to start or run (today only via
/// fault injection; the slot exists so parallel failures carry a type the
/// failure policy and the C-ABI info mapping can recognise).
class TaskError : public Error {
 public:
  explicit TaskError(const std::string& what) : Error(what) {}
};

}  // namespace strassen
