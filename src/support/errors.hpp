// Error handling: BLAS-style argument checking plus exceptions for
// conditions (workspace exhaustion, convergence failure) that have no
// BLAS-style INFO convention.
#pragma once

#include <stdexcept>
#include <string>

namespace strassen {

/// Base class of all exceptions thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a workspace arena cannot satisfy an allocation. The library
/// pre-sizes arenas exactly, so seeing this indicates either a caller-supplied
/// arena that is too small or an internal sizing bug.
class WorkspaceError : public Error {
 public:
  explicit WorkspaceError(const std::string& what) : Error(what) {}
};

/// Thrown by iterative algorithms (e.g. the ISDA eigensolver) when a
/// convergence criterion is not met within the configured iteration budget.
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

/// Thrown when a thread-pool task fails to start or run (today only via
/// fault injection; the slot exists so parallel failures carry a type the
/// failure policy and the C-ABI info mapping can recognise).
class TaskError : public Error {
 public:
  explicit TaskError(const std::string& what) : Error(what) {}
};

/// Thrown by the serving front-end (src/serve) when a request is refused at
/// admission: the bounded queue is full under the `reject` policy, or the
/// request's exact predicted workspace exceeds the memory budget and could
/// never be satisfied by waiting. C has not been touched.
class AdmissionError : public Error {
 public:
  explicit AdmissionError(const std::string& what) : Error(what) {}
};

/// Thrown by the serving front-end when a request's deadline passed while
/// it was still queued (it never started computing, so C is untouched).
class DeadlineError : public Error {
 public:
  explicit DeadlineError(const std::string& what) : Error(what) {}
};

/// Thrown when a request was canceled cooperatively. The cancellation token
/// is honored only while C is still untouched (queued requests, and
/// task-DAG node boundaries before the first combine commits); once a
/// computation has started writing C it runs to completion instead.
class CanceledError : public Error {
 public:
  explicit CanceledError(const std::string& what) : Error(what) {}
};

}  // namespace strassen
