// Matrix storage and non-owning strided views.
//
// Everything is column-major with an explicit leading dimension, matching
// the BLAS/Fortran convention the paper's DGEFMM interface adopts. Views
// additionally carry row/column strides so that op(X) = X^T is represented
// without copying -- preserving the paper's memory bounds for the
// transposed-operand cases.
#pragma once

#include <cassert>
#include <cstddef>

#include "support/aligned_buffer.hpp"
#include "support/config.hpp"

namespace strassen {

/// Non-owning strided view over a matrix of doubles.
///
/// Element (i, j) lives at p[i*rs + j*cs]. A plain column-major matrix with
/// leading dimension ld has rs == 1, cs == ld; its transpose view has
/// rs == ld, cs == 1. Sub-blocks and transposes are therefore all O(1).
template <class T>
struct BasicView {
  T* p = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t rs = 1;   ///< row stride
  index_t cs = 0;   ///< column stride

  T& operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows && j >= 0 && j < cols);
    return p[i * rs + j * cs];
  }

  /// Logical sub-block of extent r x c with upper-left corner (i0, j0).
  BasicView block(index_t i0, index_t j0, index_t r, index_t c) const {
    assert(i0 >= 0 && j0 >= 0 && i0 + r <= rows && j0 + c <= cols);
    return BasicView{p + i0 * rs + j0 * cs, r, c, rs, cs};
  }

  /// O(1) transposed view.
  BasicView transposed() const { return BasicView{p, cols, rows, cs, rs}; }

  /// True when the data is a plain column-major block (usable directly as a
  /// BLAS operand with TRANS='N').
  bool col_major() const { return rs == 1; }
  /// True when the data is a row-major (i.e. transposed column-major) block.
  bool row_major() const { return cs == 1; }

  /// Leading dimension when interpreted as a column-major operand.
  index_t ld_col() const {
    assert(col_major());
    return cs;
  }
  /// Leading dimension of the underlying column-major storage when this view
  /// is a transpose of it.
  index_t ld_row() const {
    assert(row_major());
    return rs;
  }

  operator BasicView<const T>() const {
    return BasicView<const T>{p, rows, cols, rs, cs};
  }
};

using MutView = BasicView<double>;
using ConstView = BasicView<const double>;
using MutViewF = BasicView<float>;
using ConstViewF = BasicView<const float>;

/// View over a column-major matrix stored with leading dimension ld.
template <class T>
inline BasicView<T> make_view(T* p, index_t m, index_t n, index_t ld) {
  assert(ld >= (m > 0 ? m : 1));
  return BasicView<T>{p, m, n, 1, ld};
}

/// View over op(X) where X is column-major m x n with leading dimension ld;
/// the result has logical dimensions (m, n) when t == Trans::no and (n, m)
/// when t == Trans::transpose.
template <class T>
inline BasicView<const T> make_op_view(Trans t, const T* p, index_t m,
                                       index_t n, index_t ld) {
  BasicView<const T> v = make_view(p, m, n, ld);
  return is_trans(t) ? v.transposed() : v;
}

/// Owning column-major matrix (leading dimension == rows).
template <class T>
class MatrixT {
 public:
  MatrixT() = default;
  MatrixT(index_t m, index_t n)
      : buf_(static_cast<std::size_t>(m) * static_cast<std::size_t>(n)),
        rows_(m),
        cols_(n) {
    assert(m >= 0 && n >= 0);
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return rows_ > 0 ? rows_ : 1; }

  T* data() { return buf_.data(); }
  const T* data() const { return buf_.data(); }

  T& operator()(index_t i, index_t j) {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return buf_[static_cast<std::size_t>(i + j * rows_)];
  }
  const T& operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return buf_[static_cast<std::size_t>(i + j * rows_)];
  }

  BasicView<T> view() { return make_view(data(), rows_, cols_, ld()); }
  BasicView<const T> view() const {
    return make_view(data(), rows_, cols_, ld());
  }

  void fill(T value) {
    const std::size_t n = buf_.size();
    for (std::size_t i = 0; i < n; ++i) buf_[i] = value;
  }

 private:
  AlignedBufferT<T> buf_;
  index_t rows_ = 0;
  index_t cols_ = 0;
};

using Matrix = MatrixT<double>;
using MatrixF = MatrixT<float>;

/// Copies src into dst (dimensions must match).
void copy(ConstView src, MutView dst);
void copy(ConstViewF src, MutViewF dst);

/// Sets every element of dst to `value`.
void fill(MutView dst, double value);
void fill(MutViewF dst, float value);

/// max_{ij} |a(i,j) - b(i,j)| (dimensions must match). The float overloads
/// accumulate and report in double so comparisons against a double
/// reference lose nothing.
double max_abs_diff(ConstView a, ConstView b);
double max_abs_diff(ConstViewF a, ConstViewF b);

/// max_{ij} |a(i,j)|.
double max_abs(ConstView a);
double max_abs(ConstViewF a);

/// Frobenius norm.
double frobenius_norm(ConstView a);
double frobenius_norm(ConstViewF a);

/// Identity assignment: dst = I (square not required; dst(i,i)=1 else 0).
void set_identity(MutView dst);
void set_identity(MutViewF dst);

}  // namespace strassen
