#include "support/memadvise.hpp"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace strassen {

namespace {

// -1 = not yet resolved from the environment; 0/1 = off/on.
std::atomic<int> g_huge_pages{-1};

int resolve_from_env() {
  const char* env = std::getenv("STRASSEN_HUGEPAGES");
  const bool on = env != nullptr &&
                  (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0);
  return on ? 1 : 0;
}

}  // namespace

bool huge_pages_enabled() {
  int v = g_huge_pages.load(std::memory_order_relaxed);  // relaxed: config-slot
  if (v < 0) {
    v = resolve_from_env();
    // A concurrent set_huge_pages wins; the env resolution only replaces
    // the unresolved sentinel.
    int expected = -1;
    if (!g_huge_pages.compare_exchange_strong(
            expected, v, std::memory_order_relaxed)) {  // relaxed: config-slot
      v = expected;
    }
  }
  return v == 1;
}

void set_huge_pages(bool on) {
  g_huge_pages.store(on ? 1 : 0,
                     std::memory_order_relaxed);  // relaxed: config-slot
}

std::size_t advise_huge_pages(void* p, std::size_t bytes) {
  if (p == nullptr || bytes < kHugePageBytes || !huge_pages_enabled()) {
    return 0;
  }
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  // Shrink inward to the base-page grid: the buffers are 64-byte aligned,
  // madvise wants page-aligned addresses and lengths.
  const std::size_t page =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE) > 0
                                   ? ::sysconf(_SC_PAGESIZE)
                                   : 4096);
  const std::uintptr_t lo =
      (reinterpret_cast<std::uintptr_t>(p) + page - 1) & ~(page - 1);
  const std::uintptr_t hi =
      (reinterpret_cast<std::uintptr_t>(p) + bytes) & ~(page - 1);
  if (hi <= lo) return 0;
  if (::madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE) != 0) {
    return 0;  // advisory: kernel said no (old kernel, THP=never); carry on
  }
  return static_cast<std::size_t>(hi - lo);
#else
  return 0;  // platform without madvise: normal pages
#endif
}

}  // namespace strassen
