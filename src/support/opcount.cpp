#include "support/opcount.hpp"

namespace strassen::opcount {

namespace {
Counters g_counters;
bool g_enabled = false;
}  // namespace

Counters& counters() { return g_counters; }

void set_enabled(bool enabled) { g_enabled = enabled; }
bool enabled() { return g_enabled; }

void reset() { g_counters = Counters{}; }

void record_gemm(index_t m, index_t k, index_t n, bool accumulate) {
  if (!g_enabled) return;
  const count_t mn = static_cast<count_t>(m) * n;
  g_counters.multiplies += static_cast<count_t>(m) * k * n;
  // k-1 additions per inner product; one more per element when accumulating
  // into an existing C.
  g_counters.additions += static_cast<count_t>(m) * (k - 1) * n;
  if (accumulate) g_counters.additions += mn;
}

void record_scale(count_t n) {
  if (!g_enabled) return;
  g_counters.multiplies += n;
}

void record_add(count_t n) {
  if (!g_enabled) return;
  g_counters.additions += n;
}

void record_ger(index_t m, index_t n) {
  if (!g_enabled) return;
  g_counters.multiplies += static_cast<count_t>(m) * n;
  g_counters.additions += static_cast<count_t>(m) * n;
}

void record_gemv(index_t m, index_t n) {
  if (!g_enabled) return;
  g_counters.multiplies += static_cast<count_t>(m) * n;
  g_counters.additions += static_cast<count_t>(m) * n;
}

}  // namespace strassen::opcount
