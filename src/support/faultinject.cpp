#include "support/faultinject.hpp"

#include <atomic>

namespace strassen::faultinject {

namespace {

// `g_active` is the disarmed fast path; the countdown itself is only
// touched while armed. fetch_sub makes the one-shot exact under
// concurrency: with several threads racing past the hook, exactly one
// observes the transition through 1.
std::atomic<bool> g_active{false};
std::atomic<long> g_countdown{0};
std::atomic<int> g_site{static_cast<int>(Site::any)};
std::atomic<long> g_injected{0};

#ifdef NDEBUG
std::atomic<bool> g_guards{false};
#else
std::atomic<bool> g_guards{true};
#endif

thread_local int t_suspend_depth = 0;

}  // namespace

const char* site_name(Site s) {
  switch (s) {
    case Site::arena_alloc:
      return "arena-alloc";
    case Site::arena_reserve:
      return "arena-reserve";
    case Site::buffer_alloc:
      return "buffer-alloc";
    case Site::pool_task:
      return "pool-task";
    case Site::any:
      return "any";
  }
  return "?";
}

void arm(long countdown, Site site) {
  if (countdown < 1) countdown = 1;
  g_site.store(static_cast<int>(site),
               std::memory_order_relaxed);  // relaxed: injector
  g_countdown.store(countdown, std::memory_order_relaxed);  // relaxed: injector
  g_active.store(true, std::memory_order_release);
}

void disarm() {
  g_active.store(false, std::memory_order_relaxed);  // relaxed: injector
  g_countdown.store(0, std::memory_order_relaxed);   // relaxed: injector
}

bool armed() {
  return g_active.load(std::memory_order_relaxed) &&      // relaxed: injector
         g_countdown.load(std::memory_order_relaxed) > 0;  // relaxed: injector
}

long injected_total() {
  return g_injected.load(std::memory_order_relaxed);  // relaxed: injector
}

bool should_fail(Site site) {
  if (!g_active.load(std::memory_order_acquire)) return false;
  if (t_suspend_depth > 0) return false;
  const Site armed_site = static_cast<Site>(
      g_site.load(std::memory_order_relaxed));  // relaxed: injector
  if (armed_site != Site::any && armed_site != site) return false;
  const long c = g_countdown.fetch_sub(1, std::memory_order_acq_rel);
  if (c == 1) {
    g_injected.fetch_add(1, std::memory_order_relaxed);  // relaxed: injector
    g_active.store(false, std::memory_order_relaxed);    // relaxed: injector
    return true;
  }
  return false;
}

ScopedSuspend::ScopedSuspend() { ++t_suspend_depth; }
ScopedSuspend::~ScopedSuspend() { --t_suspend_depth; }

bool suspended() { return t_suspend_depth > 0; }

void set_arena_guards(bool on) {
  g_guards.store(on, std::memory_order_relaxed);  // relaxed: injector
}

bool arena_guards() {
  return g_guards.load(std::memory_order_relaxed);  // relaxed: injector
}

}  // namespace strassen::faultinject
