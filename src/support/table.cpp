#include "support/table.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>

namespace strassen {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << "  ";
  for (std::size_t i = 2; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << value;
  return ss.str();
}

std::string fmt(long long value) { return std::to_string(value); }

}  // namespace strassen
