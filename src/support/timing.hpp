// Wall-clock timing helpers for the benchmark harness and cutoff tuner.
//
// The paper timed CPU seconds on non-dedicated machines; we use the
// monotonic clock and report the minimum over repetitions, which plays the
// same noise-suppression role.
#pragma once

#include <chrono>
#include <utility>

namespace strassen {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void restart() { start_ = clock::now(); }
  /// Seconds since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Runs `fn` once and returns elapsed seconds.
template <class F>
double time_once(F&& fn) {
  Timer t;
  std::forward<F>(fn)();
  return t.seconds();
}

/// Minimum time over `reps` runs, but stops early once `budget_seconds` of
/// total measurement time has been spent (keeps big sweeps bounded).
template <class F>
double time_min(F&& fn, int reps, double budget_seconds = 1e30) {
  double best = 1e300;
  double spent = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double t = time_once(fn);
    if (t < best) best = t;
    spent += t;
    if (spent > budget_seconds && r >= 0) break;
  }
  return best;
}

}  // namespace strassen
