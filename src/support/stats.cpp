#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace strassen {

namespace {

// R-7 quantile of a sorted sample.
double quantile_sorted(const std::vector<double>& s, double q) {
  if (s.empty()) return 0.0;
  if (s.size() == 1) return s.front();
  const double h = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = std::min(lo + 1, s.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return s[lo] + frac * (s[hi] - s[lo]);
}

}  // namespace

double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  return quantile_sorted(sample, std::clamp(p / 100.0, 0.0, 1.0));
}

Summary summarize(std::vector<double> sample) {
  Summary out;
  out.count = sample.size();
  if (sample.empty()) return out;
  std::sort(sample.begin(), sample.end());
  out.min = sample.front();
  out.max = sample.back();
  out.q1 = quantile_sorted(sample, 0.25);
  out.median = quantile_sorted(sample, 0.50);
  out.q3 = quantile_sorted(sample, 0.75);
  out.mean = std::accumulate(sample.begin(), sample.end(), 0.0) /
             static_cast<double>(sample.size());
  return out;
}

}  // namespace strassen
