// Common types and constants shared by every strassen:: module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace strassen {

/// BLAS-style dimension/index type. All matrix dimensions, leading
/// dimensions, and loop indices over matrix extents use this type.
using index_t = std::int64_t;

/// Counter type for operation counts and workspace sizes (can exceed 2^31
/// for matrices of a few thousand rows).
using count_t = std::int64_t;

/// Alignment (bytes) used for all numeric buffers. 64 matches the cache
/// line size of every mainstream CPU and is sufficient for AVX-512 loads.
inline constexpr std::size_t kBufferAlignment = 64;

/// Transpose selector, mirroring the Level 3 BLAS TRANSA/TRANSB arguments.
/// (The paper's DGEFMM adopts the DGEMM interface verbatim.)
enum class Trans : char {
  no = 'N',              ///< op(X) = X
  transpose = 'T',       ///< op(X) = X^T
  conj_transpose = 'C',  ///< op(X) = X^H (== X^T for real matrices, as in
                         ///< the reference BLAS)
};

/// True if `t` denotes a transposed operand (with or without conjugation).
constexpr bool is_trans(Trans t) {
  return t == Trans::transpose || t == Trans::conj_transpose;
}

/// True if `t` additionally conjugates (meaningful for complex routines).
constexpr bool is_conj(Trans t) { return t == Trans::conj_transpose; }

}  // namespace strassen
