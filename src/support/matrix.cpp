#include "support/matrix.hpp"

#include <cassert>
#include <cmath>

namespace strassen {

void copy(ConstView src, MutView dst) {
  assert(src.rows == dst.rows && src.cols == dst.cols);
  for (index_t j = 0; j < src.cols; ++j) {
    for (index_t i = 0; i < src.rows; ++i) {
      dst(i, j) = src(i, j);
    }
  }
}

void fill(MutView dst, double value) {
  for (index_t j = 0; j < dst.cols; ++j) {
    for (index_t i = 0; i < dst.rows; ++i) {
      dst(i, j) = value;
    }
  }
}

double max_abs_diff(ConstView a, ConstView b) {
  assert(a.rows == b.rows && a.cols == b.cols);
  double worst = 0.0;
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t i = 0; i < a.rows; ++i) {
      worst = std::max(worst, std::abs(a(i, j) - b(i, j)));
    }
  }
  return worst;
}

double max_abs(ConstView a) {
  double worst = 0.0;
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t i = 0; i < a.rows; ++i) {
      worst = std::max(worst, std::abs(a(i, j)));
    }
  }
  return worst;
}

double frobenius_norm(ConstView a) {
  double sum = 0.0;
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t i = 0; i < a.rows; ++i) {
      sum += a(i, j) * a(i, j);
    }
  }
  return std::sqrt(sum);
}

void set_identity(MutView dst) {
  for (index_t j = 0; j < dst.cols; ++j) {
    for (index_t i = 0; i < dst.rows; ++i) {
      dst(i, j) = (i == j) ? 1.0 : 0.0;
    }
  }
}

}  // namespace strassen
