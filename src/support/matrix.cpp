#include "support/matrix.hpp"

#include <cassert>
#include <cmath>

namespace strassen {

namespace {

template <class T>
void copy_t(BasicView<const T> src, BasicView<T> dst) {
  assert(src.rows == dst.rows && src.cols == dst.cols);
  for (index_t j = 0; j < src.cols; ++j) {
    for (index_t i = 0; i < src.rows; ++i) {
      dst(i, j) = src(i, j);
    }
  }
}

template <class T>
void fill_t(BasicView<T> dst, T value) {
  for (index_t j = 0; j < dst.cols; ++j) {
    for (index_t i = 0; i < dst.rows; ++i) {
      dst(i, j) = value;
    }
  }
}

template <class T>
double max_abs_diff_t(BasicView<const T> a, BasicView<const T> b) {
  assert(a.rows == b.rows && a.cols == b.cols);
  double worst = 0.0;
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t i = 0; i < a.rows; ++i) {
      worst = std::max(worst, std::abs(static_cast<double>(a(i, j)) -
                                       static_cast<double>(b(i, j))));
    }
  }
  return worst;
}

template <class T>
double max_abs_t(BasicView<const T> a) {
  double worst = 0.0;
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t i = 0; i < a.rows; ++i) {
      worst = std::max(worst, std::abs(static_cast<double>(a(i, j))));
    }
  }
  return worst;
}

template <class T>
double frobenius_norm_t(BasicView<const T> a) {
  double sum = 0.0;
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t i = 0; i < a.rows; ++i) {
      const double x = static_cast<double>(a(i, j));
      sum += x * x;
    }
  }
  return std::sqrt(sum);
}

template <class T>
void set_identity_t(BasicView<T> dst) {
  for (index_t j = 0; j < dst.cols; ++j) {
    for (index_t i = 0; i < dst.rows; ++i) {
      dst(i, j) = (i == j) ? T(1) : T(0);
    }
  }
}

}  // namespace

void copy(ConstView src, MutView dst) { copy_t<double>(src, dst); }
void copy(ConstViewF src, MutViewF dst) { copy_t<float>(src, dst); }

void fill(MutView dst, double value) { fill_t<double>(dst, value); }
void fill(MutViewF dst, float value) { fill_t<float>(dst, value); }

double max_abs_diff(ConstView a, ConstView b) {
  return max_abs_diff_t<double>(a, b);
}
double max_abs_diff(ConstViewF a, ConstViewF b) {
  return max_abs_diff_t<float>(a, b);
}

double max_abs(ConstView a) { return max_abs_t<double>(a); }
double max_abs(ConstViewF a) { return max_abs_t<float>(a); }

double frobenius_norm(ConstView a) { return frobenius_norm_t<double>(a); }
double frobenius_norm(ConstViewF a) { return frobenius_norm_t<float>(a); }

void set_identity(MutView dst) { set_identity_t<double>(dst); }
void set_identity(MutViewF dst) { set_identity_t<float>(dst); }

}  // namespace strassen
