// Stack-discipline workspace arena with high-water-mark instrumentation.
//
// The memory story of the paper (Section 3.2, Table 1) is central to the
// reproduction: DGEFMM's claim is that Winograd-variant Strassen needs only
// (m*max(k,n)+kn)/3 extra doubles when beta == 0 and (mk+kn+mn)/3 when
// beta != 0. Every temporary in the library is drawn from an Arena, whose
// peak() is compared against those closed forms in the tests and printed by
// bench_tab1_memory.
#pragma once

#include <cstddef>
#include <string>

#include "support/aligned_buffer.hpp"
#include "support/errors.hpp"

namespace strassen {

/// Last-in/first-out allocator over a fixed aligned buffer.
///
/// Allocation is O(1) pointer arithmetic. Recursive algorithms take a mark
/// before allocating level-local temporaries and release back to it on the
/// way out (usually via ArenaScope). The high-water mark records the largest
/// simultaneous footprint ever reached, in doubles.
class Arena {
 public:
  Arena() = default;

  /// Creates an arena holding `capacity` doubles.
  explicit Arena(std::size_t capacity) : buf_(capacity) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Grows the arena to at least `capacity` doubles. Only legal when the
  /// arena is unused (top == 0); the library sizes arenas up front.
  void reserve(std::size_t capacity) {
    if (top_ != 0) {
      throw WorkspaceError("Arena::reserve called on an arena in use");
    }
    if (capacity > buf_.size()) {
      buf_ = AlignedBuffer(capacity);
    }
  }

  /// Returns a pointer to `n` uninitialized doubles.
  double* alloc(std::size_t n) {
    if (top_ + n > buf_.size()) {
      throw WorkspaceError(
          "workspace arena exhausted: requested " + std::to_string(n) +
          " doubles with " + std::to_string(buf_.size() - top_) +
          " remaining of " + std::to_string(buf_.size()));
    }
    double* p = buf_.data() + top_;
    top_ += n;
    if (top_ > peak_) peak_ = top_;
    return p;
  }

  /// Current stack position, for later release().
  std::size_t mark() const { return top_; }

  /// Pops every allocation made after `mark`.
  void release(std::size_t mark) { top_ = mark; }

  /// Doubles currently allocated.
  std::size_t in_use() const { return top_; }

  /// Largest number of doubles ever simultaneously allocated.
  std::size_t peak() const { return peak_; }

  /// Total capacity in doubles.
  std::size_t capacity() const { return buf_.size(); }

  /// Releases everything and clears the high-water mark.
  void reset() {
    top_ = 0;
    peak_ = 0;
  }

 private:
  AlignedBuffer buf_;
  std::size_t top_ = 0;
  std::size_t peak_ = 0;
};

/// RAII guard releasing all arena allocations made during its lifetime.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
  ~ArenaScope() { arena_.release(mark_); }

 private:
  Arena& arena_;
  std::size_t mark_;
};

}  // namespace strassen
