// Stack-discipline workspace arena with high-water-mark instrumentation.
//
// The memory story of the paper (Section 3.2, Table 1) is central to the
// reproduction: DGEFMM's claim is that Winograd-variant Strassen needs only
// (m*max(k,n)+kn)/3 extra doubles when beta == 0 and (mk+kn+mn)/3 when
// beta != 0. Every temporary in the library is drawn from an Arena, whose
// peak() is compared against those closed forms in the tests and printed by
// bench_tab1_memory.
//
// The arena is templated on the element type: DGEFMM draws doubles from an
// ArenaT<double> (the Arena alias), SGEFMM floats from an ArenaT<float>
// (ArenaF). Capacities, peaks, and the Table 1 bounds are all counted in
// elements, so the footprint claims are precision-independent.
//
// Failure semantics (DESIGN.md section 7): reserve() is the arena's only
// true resource acquisition and may fail (std::bad_alloc from the buffer,
// WorkspaceError when misused, or an injected fault). alloc() on a
// correctly pre-sized arena is pure pointer arithmetic; its overflow throw
// signals an internal sizing bug, not resource exhaustion. Both carry
// fault-injection hooks (support/faultinject.hpp) so the failure contract
// is provable under test.
//
// Debug guards: when faultinject::arena_guards() is on (default in debug
// builds), the arena keeps one canary element in the *free* space just past
// the newest live allocation and re-verifies it on every subsequent
// alloc()/release(); a computation that writes past the end of its newest
// block destroys the canary and is reported via corruption_detected().
// release() additionally poisons the freed range with 0xFF bytes (a NaN
// pattern in both precisions), so use-after-release reads surface as NaNs
// in results. The guard lives outside every allocation, so enabling it
// changes neither alloc addresses nor peak() accounting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "support/aligned_buffer.hpp"
#include "support/errors.hpp"
#include "support/faultinject.hpp"

namespace strassen {

namespace detail {

/// Guard canary bit patterns: arbitrary non-NaN values no computation
/// produces, one per element width.
template <class T>
struct GuardBits;

template <>
struct GuardBits<double> {
  static constexpr std::uint64_t value = 0x5AFEC0DEBADF00DULL;
  using bits_type = std::uint64_t;
};

template <>
struct GuardBits<float> {
  static constexpr std::uint32_t value = 0x5AFEC0DEu;
  using bits_type = std::uint32_t;
};

}  // namespace detail

/// Last-in/first-out allocator over a fixed aligned buffer.
///
/// Allocation is O(1) pointer arithmetic. Recursive algorithms take a mark
/// before allocating level-local temporaries and release back to it on the
/// way out (usually via ArenaScope). The high-water mark records the largest
/// simultaneous footprint ever reached, in elements.
template <class T>
class ArenaT {
 public:
  ArenaT() = default;

  /// Creates an arena holding `capacity` elements.
  explicit ArenaT(std::size_t capacity) : buf_(capacity) {}

  /// Creates an arena over caller-owned storage (borrowed, non-growing).
  /// The parallel driver carves worker-local sub-arenas out of slices of
  /// one up-front parent reservation this way: the slice's first touch
  /// then happens on the executing worker (NUMA-friendly), and a
  /// reserve() beyond the slice is a hard error rather than a silent
  /// second acquisition. `storage` must outlive the arena.
  ArenaT(T* storage, std::size_t capacity)
      : ext_(storage), ext_size_(capacity) {}

  ArenaT(const ArenaT&) = delete;
  ArenaT& operator=(const ArenaT&) = delete;
  ArenaT(ArenaT&&) = default;
  ArenaT& operator=(ArenaT&&) = default;

  /// Grows the arena to at least `capacity` elements. Only legal when the
  /// arena is unused (top == 0); the library sizes arenas up front. A
  /// borrowed arena cannot grow past its storage. May throw
  /// WorkspaceError (misuse, borrowed overflow, or injected fault) or
  /// std::bad_alloc.
  void reserve(std::size_t capacity) {
    if (top_ != 0) {
      throw WorkspaceError("Arena::reserve called on an arena in use");
    }
    if (faultinject::should_fail(faultinject::Site::arena_reserve)) {
      throw WorkspaceError("fault injection: Arena::reserve(" +
                           std::to_string(capacity) + ") failed");
    }
    if (capacity > cap()) {
      if (ext_ != nullptr) {
        throw WorkspaceError(
            "Arena::reserve(" + std::to_string(capacity) +
            ") on a borrowed arena of " + std::to_string(ext_size_) +
            " elements; borrowed storage cannot grow");
      }
      buf_ = AlignedBufferT<T>(capacity);
      has_guard_ = false;
    }
  }

  /// Returns a pointer to `n` uninitialized elements.
  [[nodiscard]] T* alloc(std::size_t n) {
    if (faultinject::should_fail(faultinject::Site::arena_alloc)) {
      throw WorkspaceError("fault injection: Arena::alloc(" +
                           std::to_string(n) + ") failed");
    }
    if (top_ + n > cap()) {
      throw WorkspaceError(
          "workspace arena exhausted: requested " + std::to_string(n) +
          " elements with " + std::to_string(cap() - top_) +
          " remaining of " + std::to_string(cap()));
    }
    const bool guards = faultinject::arena_guards();
    if (guards) check_guard();
    T* p = base() + top_;
    top_ += n;
    if (top_ > peak_) peak_ = top_;
    if (guards) write_guard();
    return p;
  }

  /// Capacity probe: verifies that `n` elements could be allocated at the
  /// current stack position, without moving the stack or the high-water
  /// mark. Shares alloc()'s fault-injection site, so the acquisition point
  /// that allocation failures map to can be failed deterministically under
  /// test. Throws WorkspaceError on a shortfall (or injected fault).
  void probe(std::size_t n) {
    if (faultinject::should_fail(faultinject::Site::arena_alloc)) {
      throw WorkspaceError("fault injection: Arena::probe(" +
                           std::to_string(n) + ") failed");
    }
    if (top_ + n > cap()) {
      throw WorkspaceError(
          "workspace arena too small: need " + std::to_string(n) +
          " elements with " + std::to_string(cap() - top_) +
          " remaining of " + std::to_string(cap()));
    }
  }

  /// Current stack position, for later release().
  std::size_t mark() const { return top_; }

  /// Pops every allocation made after `mark`.
  void release(std::size_t mark) {
    if (faultinject::arena_guards()) {
      check_guard();
      if (mark < top_) poison(mark, top_);
      top_ = mark;
      write_guard();
    } else {
      top_ = mark;
    }
  }

  /// Elements currently allocated.
  std::size_t in_use() const { return top_; }

  /// Elements still available on top of the current stack position.
  std::size_t remaining() const { return cap() - top_; }

  /// Largest number of elements ever simultaneously allocated.
  std::size_t peak() const { return peak_; }

  /// Total capacity in elements.
  std::size_t capacity() const { return cap(); }

  /// Releases everything and clears the high-water mark (and, with guards
  /// on, any recorded corruption).
  void reset() {
    top_ = 0;
    peak_ = 0;
    has_guard_ = false;
    corrupted_ = false;
  }

  /// True if a guard canary was ever found destroyed (a block overran its
  /// allocation). Only meaningful while faultinject::arena_guards() is on.
  bool corruption_detected() const { return corrupted_; }

  /// Bytes of the owned backing buffer covered by huge-page advice
  /// (support/memadvise.hpp). Borrowed arenas report 0; their storage is
  /// advised (or not) by whoever owns it.
  std::size_t huge_advised_bytes() const { return buf_.huge_advised_bytes(); }

 private:
  // The canary sits at [top_, top_ + 1) -- free space just past the newest
  // live block -- whenever there is room for it.
  static constexpr std::size_t kGuardElements = 1;

  static T guard_pattern() {
    const auto bits = detail::GuardBits<T>::value;
    static_assert(sizeof(bits) == sizeof(T));
    T v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  void write_guard() {
    if (top_ + kGuardElements <= cap()) {
      base()[top_] = guard_pattern();
      guard_pos_ = top_;
      has_guard_ = true;
    } else {
      has_guard_ = false;
    }
  }

  void check_guard() {
    // guard_pos_ == top_ guards against stale state when the guards switch
    // was toggled between alloc and release.
    const auto bits = detail::GuardBits<T>::value;
    if (has_guard_ && guard_pos_ == top_ &&
        std::memcmp(&base()[top_], &bits, sizeof(T)) != 0) {
      corrupted_ = true;
    }
  }

  void poison(std::size_t from, std::size_t to) {
    // 0xFF in every byte is a NaN; reads of released memory propagate.
    std::memset(base() + from, 0xFF, (to - from) * sizeof(T));
  }

  // Borrowed mode: when ext_ is set the arena allocates from caller-owned
  // storage and buf_ stays empty; growing is forbidden.
  T* base() { return ext_ != nullptr ? ext_ : buf_.data(); }
  std::size_t cap() const { return ext_ != nullptr ? ext_size_ : buf_.size(); }

  AlignedBufferT<T> buf_;
  T* ext_ = nullptr;
  std::size_t ext_size_ = 0;
  std::size_t top_ = 0;
  std::size_t peak_ = 0;
  std::size_t guard_pos_ = 0;
  bool has_guard_ = false;
  bool corrupted_ = false;
};

using Arena = ArenaT<double>;
using ArenaF = ArenaT<float>;

/// RAII guard releasing all arena allocations made during its lifetime.
template <class T>
class ArenaScopeT {
 public:
  explicit ArenaScopeT(ArenaT<T>& arena)
      : arena_(arena), mark_(arena.mark()) {}
  ArenaScopeT(const ArenaScopeT&) = delete;
  ArenaScopeT& operator=(const ArenaScopeT&) = delete;
  ~ArenaScopeT() { arena_.release(mark_); }

 private:
  ArenaT<T>& arena_;
  std::size_t mark_;
};

template <class T>
ArenaScopeT(ArenaT<T>&) -> ArenaScopeT<T>;

using ArenaScope = ArenaScopeT<double>;

}  // namespace strassen
