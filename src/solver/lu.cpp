#include "solver/lu.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "blas/gemm.hpp"
#include "blas/level1.hpp"
#include "blas/level2.hpp"
#include "blas/trsm.hpp"
#include "support/timing.hpp"

namespace strassen::solver {

LuFactors lu_factor(ConstView a, const LuOptions& opts, LuStats* stats) {
  assert(a.rows == a.cols);
  const index_t n = a.rows;
  LuFactors f;
  f.lu = Matrix(n, n);
  copy(a, f.lu.view());
  f.ipiv.assign(static_cast<std::size_t>(n), 0);
  Matrix& lu = f.lu;
  const core::GemmFn gemm =
      opts.gemm ? opts.gemm : core::gemm_backend_dgemm();
  const index_t nb = std::max<index_t>(1, opts.block);

  Timer total;
  LuStats local;

  auto swap_rows = [&](index_t r1, index_t r2) {
    if (r1 == r2) return;
    for (index_t j = 0; j < n; ++j) std::swap(lu(r1, j), lu(r2, j));
  };

  for (index_t j0 = 0; j0 < n && f.info == 0; j0 += nb) {
    const index_t jb = std::min(nb, n - j0);
    ++local.panels;

    // Unblocked factorization of the panel, with full-row pivoting swaps.
    for (index_t k = j0; k < j0 + jb; ++k) {
      index_t piv = k;
      double best = std::abs(lu(k, k));
      for (index_t i = k + 1; i < n; ++i) {
        const double v = std::abs(lu(i, k));
        if (v > best) {
          best = v;
          piv = i;
        }
      }
      f.ipiv[static_cast<std::size_t>(k)] = piv;
      if (best == 0.0) {
        f.info = static_cast<int>(k) + 1;
        break;
      }
      swap_rows(k, piv);
      const double pivot = lu(k, k);
      for (index_t i = k + 1; i < n; ++i) lu(i, k) /= pivot;
      // Rank-1 update restricted to the remaining panel columns; the
      // trailing matrix is updated blockwise below.
      if (k + 1 < j0 + jb) {
        blas::dger(n - k - 1, j0 + jb - k - 1, -1.0, &lu(k + 1, k), 1,
                   &lu(k, k + 1), lu.ld(), &lu(k + 1, k + 1), lu.ld());
      }
    }
    if (f.info != 0) break;

    const index_t rest = n - j0 - jb;
    if (rest > 0) {
      // U12 <- inv(L11) A12 (unit lower triangular solve).
      blas::dtrsm(blas::Side::left, blas::Uplo::lower, Trans::no,
                  blas::Diag::unit, jb, rest, 1.0, &lu(j0, j0), lu.ld(),
                  &lu(j0, j0 + jb), lu.ld());
      // A22 <- A22 - L21 * U12: the GEMM that Strassen accelerates.
      Timer mm;
      gemm(Trans::no, Trans::no, rest, rest, jb, -1.0, &lu(j0 + jb, j0),
           lu.ld(), &lu(j0, j0 + jb), lu.ld(), 1.0, &lu(j0 + jb, j0 + jb),
           lu.ld());
      local.mm_seconds += mm.seconds();
      ++local.gemm_calls;
    }
  }

  local.total_seconds = total.seconds();
  if (stats != nullptr) *stats = local;
  return f;
}

void lu_solve_inplace(const LuFactors& f, MutView b) {
  assert(f.info == 0);
  const index_t n = f.n();
  assert(b.rows == n && b.col_major());
  // Apply the pivot permutation: same order as the factorization.
  for (index_t k = 0; k < n; ++k) {
    const index_t piv = f.ipiv[static_cast<std::size_t>(k)];
    if (piv != k) {
      for (index_t j = 0; j < b.cols; ++j) std::swap(b(k, j), b(piv, j));
    }
  }
  // Forward substitution with unit lower L, then back substitution with U.
  blas::dtrsm(blas::Side::left, blas::Uplo::lower, Trans::no,
              blas::Diag::unit, n, b.cols, 1.0, f.lu.data(), f.lu.ld(), b.p,
              b.ld_col());
  blas::dtrsm(blas::Side::left, blas::Uplo::upper, Trans::no,
              blas::Diag::non_unit, n, b.cols, 1.0, f.lu.data(), f.lu.ld(),
              b.p, b.ld_col());
}

Matrix lu_solve(const LuFactors& f, ConstView b) {
  Matrix x(b.rows, b.cols);
  copy(b, x.view());
  lu_solve_inplace(f, x.view());
  return x;
}

double lu_refine(const LuFactors& f, ConstView a, ConstView b, MutView x,
                 int steps) {
  assert(f.info == 0);
  const index_t n = f.n();
  assert(a.rows == n && a.cols == n && b.rows == n && x.rows == n &&
         b.cols == x.cols);
  Matrix r(n, b.cols);
  for (int s = 0; s < steps; ++s) {
    // r <- B - A X (computed with the conventional algorithm: refinement
    // wants the most accurate residual available).
    copy(b, r.view());
    blas::gemm_reference(Trans::no, Trans::no, n, b.cols, n, -1.0, a.p, a.cs,
                         x.p, x.cs, 1.0, r.data(), r.ld());
    lu_solve_inplace(f, r.view());
    for (index_t j = 0; j < x.cols; ++j) {
      for (index_t i = 0; i < n; ++i) x(i, j) += r(i, j);
    }
  }
  return relative_residual(a, x, b);
}

double relative_residual(ConstView a, ConstView x, ConstView b) {
  assert(a.cols == x.rows && a.rows == b.rows && x.cols == b.cols);
  Matrix r(b.rows, b.cols);
  copy(b, r.view());
  // r <- A x - b.
  blas::gemm_reference(Trans::no, Trans::no, a.rows, x.cols, a.cols, 1.0, a.p,
                       a.cs, x.p, x.cs, -1.0, r.data(), r.ld());
  const double denom =
      frobenius_norm(a) * frobenius_norm(x) + frobenius_norm(b);
  return frobenius_norm(r.view()) / (denom > 0.0 ? denom : 1.0);
}

}  // namespace strassen::solver
