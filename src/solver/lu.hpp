// Blocked LU factorization with partial pivoting, and triangular solves.
//
// The second application study. Bailey, Lee & Simon (reference [3] of the
// paper, "Using Strassen's Algorithm to Accelerate the Solution of Linear
// Systems") showed that a right-looking blocked LU spends almost all of its
// time in the trailing-matrix GEMM update, so swapping that GEMM for a
// Strassen multiply accelerates the whole solver. This module implements
// DGETRF/DGETRS-style routines with an injectable GemmFn, so the identical
// factorization runs on DGEMM or DGEFMM (bench_app_lu reports both).
#pragma once

#include <vector>

#include "core/gemm_backend.hpp"
#include "support/config.hpp"
#include "support/matrix.hpp"

namespace strassen::solver {

struct LuOptions {
  index_t block = 64;    ///< panel width (1 reproduces unblocked DGETF2)
  core::GemmFn gemm;     ///< defaults to core::gemm_backend_dgemm()
};

/// Timing/counting statistics of a factorization.
struct LuStats {
  double total_seconds = 0.0;
  double mm_seconds = 0.0;   ///< time inside the GemmFn (the Strassen-able
                             ///< fraction)
  count_t gemm_calls = 0;
  count_t panels = 0;
};

/// P * A = L * U factors of a square matrix.
struct LuFactors {
  Matrix lu;                  ///< L (unit lower, below diagonal) and U
  std::vector<index_t> ipiv;  ///< row i was swapped with ipiv[i] (0-based)
  int info = 0;               ///< 0, or 1-based index of a zero pivot

  index_t n() const { return lu.rows(); }
};

/// Factors the square matrix a (copied; not overwritten).
LuFactors lu_factor(ConstView a, const LuOptions& opts = LuOptions{},
                    LuStats* stats = nullptr);

/// Solves A X = B in place: b's columns are replaced by the solution.
/// Requires f.info == 0.
void lu_solve_inplace(const LuFactors& f, MutView b);

/// Convenience: returns X with A X = B.
Matrix lu_solve(const LuFactors& f, ConstView b);

/// Iterative refinement: improves X in place by `steps` rounds of
///   r = B - A X;  X += A^{-1} r.
/// The classic companion to Strassen-accelerated factorization -- fast
/// multiplication's slightly larger normwise error is recovered at O(n^2)
/// cost per step. Returns the final relative residual.
double lu_refine(const LuFactors& f, ConstView a, ConstView b, MutView x,
                 int steps = 1);

/// Relative residual ||A X - B||_F / (||A||_F ||X||_F + ||B||_F), the
/// standard backward-error style check used by the tests and benches.
double relative_residual(ConstView a, ConstView x, ConstView b);

}  // namespace strassen::solver
