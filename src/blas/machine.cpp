#include "blas/machine.hpp"

#include <algorithm>

#include "blas/kernels.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace strassen::blas {

namespace {

Machine g_active = Machine::rs6000;

// Detected data-cache sizes in bytes, with conservative fallbacks when the
// platform does not report them (containers often return 0).
struct CacheSizes {
  long l1;
  long l2;
  long l3;
};

long cache_or(long reported, long fallback) {
  return reported > 0 ? reported : fallback;
}

CacheSizes detect_caches() {
  long l1 = 0;
  long l2 = 0;
  long l3 = 0;
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  l1 = ::sysconf(_SC_LEVEL1_DCACHE_SIZE);
#endif
#if defined(_SC_LEVEL2_CACHE_SIZE)
  l2 = ::sysconf(_SC_LEVEL2_CACHE_SIZE);
#endif
#if defined(_SC_LEVEL3_CACHE_SIZE)
  l3 = ::sysconf(_SC_LEVEL3_CACHE_SIZE);
#endif
  return CacheSizes{cache_or(l1, 32L * 1024),
                    cache_or(l2, 1024L * 1024),
                    cache_or(l3, 8L * 1024 * 1024)};
}

const CacheSizes& caches() {
  static const CacheSizes sizes = detect_caches();
  return sizes;
}

index_t round_down_multiple(index_t v, index_t unit) {
  return (v / unit) * unit;
}

// Goto-style blocking derived from the kernel's register tile and the
// cache hierarchy (Goto & van de Geijn, "Anatomy of High-Performance
// Matrix Multiplication"):
//
//  * kc: one kc x NR packed B micro-panel should occupy about half of L1
//    (the A panel and the C tile stream through the other half);
//  * mc: the mc x kc packed A block should occupy about half of L2,
//    rounded to a multiple of MR;
//  * nc: the kc x nc packed B block should occupy about half of L3,
//    rounded to a multiple of NR.
//
// Results are clamped to sane ranges so degenerate cache reports cannot
// produce pathological blockings, and are deterministic per (kernel,
// machine) for the life of the process.
template <class T>
GemmBlocking blocking_for_kernel(const KernelInfoT<T>& kv) {
  const CacheSizes& cs = caches();
  constexpr long kElem = static_cast<long>(sizeof(T));

  index_t kc = static_cast<index_t>((cs.l1 / 2) / (kv.nr * kElem));
  kc = std::clamp<index_t>(round_down_multiple(kc, 4), 64, 512);

  index_t mc = static_cast<index_t>((cs.l2 / 2) / (kc * kElem));
  mc = std::clamp<index_t>(round_down_multiple(mc, kv.mr), 4 * kv.mr, 1024);

  index_t nc = static_cast<index_t>((cs.l3 / 2) / (kc * kElem));
  nc = std::clamp<index_t>(round_down_multiple(nc, kv.nr), 16 * kv.nr, 8192);

  return GemmBlocking{mc, kc, nc};
}

}  // namespace

std::string machine_name(Machine m) {
  switch (m) {
    case Machine::rs6000:
      return "RS/6000";
    case Machine::c90:
      return "C90";
    case Machine::t3d:
      return "T3D";
  }
  return "?";
}

GemmBlocking blocking_for(Machine m) {
  switch (m) {
    case Machine::rs6000:
      // The packed path: blocking follows the active micro-kernel's
      // register tile and this machine's caches.
      return blocking_for_kernel(active_kernel());
    case Machine::c90:
      // Unused by the column-sweep kernel, but provided for completeness.
      return {512, 512, 4096};
    case Machine::t3d:
      return {48, 48, 512};
  }
  return blocking_for_kernel(active_kernel());
}

GemmBlocking blocking_for_f(Machine m) {
  switch (m) {
    case Machine::rs6000:
      return blocking_for_kernel(active_kernel_f());
    case Machine::c90:
      return {512, 512, 4096};
    case Machine::t3d:
      return {48, 48, 512};
  }
  return blocking_for_kernel(active_kernel_f());
}

Machine active_machine() { return g_active; }
void set_active_machine(Machine m) { g_active = m; }

}  // namespace strassen::blas
