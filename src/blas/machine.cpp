#include "blas/machine.hpp"

namespace strassen::blas {

namespace {
Machine g_active = Machine::rs6000;
}  // namespace

std::string machine_name(Machine m) {
  switch (m) {
    case Machine::rs6000:
      return "RS/6000";
    case Machine::c90:
      return "C90";
    case Machine::t3d:
      return "T3D";
  }
  return "?";
}

GemmBlocking blocking_for(Machine m) {
  switch (m) {
    case Machine::rs6000:
      return {256, 256, 4096};
    case Machine::c90:
      // Unused by the column-sweep kernel, but provided for completeness.
      return {512, 512, 4096};
    case Machine::t3d:
      return {48, 48, 512};
  }
  return {256, 256, 4096};
}

Machine active_machine() { return g_active; }
void set_active_machine(Machine m) { g_active = m; }

}  // namespace strassen::blas
