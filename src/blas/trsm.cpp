#include "blas/trsm.hpp"

#include <cassert>

#include "support/opcount.hpp"

// Reference-BLAS algorithm structure (one case per SIDE/TRANS/UPLO
// combination); column-major throughout.

namespace strassen::blas {

void dtrsm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m,
           index_t n, double alpha, const double* a, index_t lda, double* b,
           index_t ldb) {
  const index_t ka = (side == Side::left) ? m : n;
  assert(lda >= (ka > 0 ? ka : 1));
  assert(ldb >= (m > 0 ? m : 1));
  (void)ka;
  if (m == 0 || n == 0) return;
  const bool nounit = (diag == Diag::non_unit);

  auto A = [&](index_t i, index_t j) -> double { return a[i + j * lda]; };
  auto B = [&](index_t i, index_t j) -> double& { return b[i + j * ldb]; };

  if (alpha == 0.0) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) B(i, j) = 0.0;
    }
    return;
  }

  if (side == Side::left) {
    if (!is_trans(transa)) {
      if (uplo == Uplo::upper) {
        // B <- alpha * inv(A) * B, A upper: back substitution.
        for (index_t j = 0; j < n; ++j) {
          if (alpha != 1.0) {
            for (index_t i = 0; i < m; ++i) B(i, j) *= alpha;
          }
          for (index_t k = m - 1; k >= 0; --k) {
            if (B(k, j) != 0.0) {
              if (nounit) B(k, j) /= A(k, k);
              const double temp = B(k, j);
              for (index_t i = 0; i < k; ++i) B(i, j) -= temp * A(i, k);
            }
          }
        }
      } else {
        // A lower: forward substitution.
        for (index_t j = 0; j < n; ++j) {
          if (alpha != 1.0) {
            for (index_t i = 0; i < m; ++i) B(i, j) *= alpha;
          }
          for (index_t k = 0; k < m; ++k) {
            if (B(k, j) != 0.0) {
              if (nounit) B(k, j) /= A(k, k);
              const double temp = B(k, j);
              for (index_t i = k + 1; i < m; ++i) B(i, j) -= temp * A(i, k);
            }
          }
        }
      }
    } else {
      if (uplo == Uplo::upper) {
        // B <- alpha * inv(A^T) * B, A upper (A^T lower): forward.
        for (index_t j = 0; j < n; ++j) {
          for (index_t i = 0; i < m; ++i) {
            double temp = alpha * B(i, j);
            for (index_t k = 0; k < i; ++k) temp -= A(k, i) * B(k, j);
            if (nounit) temp /= A(i, i);
            B(i, j) = temp;
          }
        }
      } else {
        // A lower (A^T upper): backward.
        for (index_t j = 0; j < n; ++j) {
          for (index_t i = m - 1; i >= 0; --i) {
            double temp = alpha * B(i, j);
            for (index_t k = i + 1; k < m; ++k) temp -= A(k, i) * B(k, j);
            if (nounit) temp /= A(i, i);
            B(i, j) = temp;
          }
        }
      }
    }
  } else {  // side == right
    if (!is_trans(transa)) {
      if (uplo == Uplo::upper) {
        // B <- alpha * B * inv(A), A upper: left-to-right column sweep.
        for (index_t j = 0; j < n; ++j) {
          if (alpha != 1.0) {
            for (index_t i = 0; i < m; ++i) B(i, j) *= alpha;
          }
          for (index_t k = 0; k < j; ++k) {
            if (A(k, j) != 0.0) {
              const double temp = A(k, j);
              for (index_t i = 0; i < m; ++i) B(i, j) -= temp * B(i, k);
            }
          }
          if (nounit) {
            const double temp = 1.0 / A(j, j);
            for (index_t i = 0; i < m; ++i) B(i, j) *= temp;
          }
        }
      } else {
        // A lower: right-to-left column sweep.
        for (index_t j = n - 1; j >= 0; --j) {
          if (alpha != 1.0) {
            for (index_t i = 0; i < m; ++i) B(i, j) *= alpha;
          }
          for (index_t k = j + 1; k < n; ++k) {
            if (A(k, j) != 0.0) {
              const double temp = A(k, j);
              for (index_t i = 0; i < m; ++i) B(i, j) -= temp * B(i, k);
            }
          }
          if (nounit) {
            const double temp = 1.0 / A(j, j);
            for (index_t i = 0; i < m; ++i) B(i, j) *= temp;
          }
        }
      }
    } else {
      if (uplo == Uplo::upper) {
        // B <- alpha * B * inv(A^T), A upper: descending k; the alpha
        // scaling of column k is deferred until after it has been used to
        // update the earlier columns (alpha factors out, as in the
        // reference BLAS).
        for (index_t k = n - 1; k >= 0; --k) {
          if (nounit) {
            const double temp = 1.0 / A(k, k);
            for (index_t i = 0; i < m; ++i) B(i, k) *= temp;
          }
          for (index_t j = 0; j < k; ++j) {
            if (A(j, k) != 0.0) {
              const double temp = A(j, k);
              for (index_t i = 0; i < m; ++i) B(i, j) -= temp * B(i, k);
            }
          }
          if (alpha != 1.0) {
            for (index_t i = 0; i < m; ++i) B(i, k) *= alpha;
          }
        }
      } else {
        // A lower, transposed: ascending k.
        for (index_t k = 0; k < n; ++k) {
          if (nounit) {
            const double temp = 1.0 / A(k, k);
            for (index_t i = 0; i < m; ++i) B(i, k) *= temp;
          }
          for (index_t j = k + 1; j < n; ++j) {
            if (A(j, k) != 0.0) {
              const double temp = A(j, k);
              for (index_t i = 0; i < m; ++i) B(i, j) -= temp * B(i, k);
            }
          }
          if (alpha != 1.0) {
            for (index_t i = 0; i < m; ++i) B(i, k) *= alpha;
          }
        }
      }
    }
  }

  if (opcount::enabled()) {
    // A triangular solve is tri^2 * other multiply-adds (up to O(tri*other)
    // lower-order terms, which the Section 2 model ignores anyway).
    const count_t other = (side == Side::left) ? n : m;
    const count_t tri = (side == Side::left) ? m : n;
    opcount::record_scale(tri * tri * other / 2);
    opcount::record_add(tri * tri * other / 2);
  }
}

}  // namespace strassen::blas
