#include "blas/packed_loop.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "blas/kernels.hpp"
#include "support/aligned_buffer.hpp"
#include "support/thread_pool.hpp"

namespace strassen::blas {

namespace {

// Pack-buffer sizes in doubles for a blocking. Padding uses the kMaxMR /
// kMaxNR bounds rather than the active kernel's MR/NR so scratch warmed for
// a blocking fits every kernel variant: the worst-case edge panel rounds mc
// up to a multiple of MR (< mc + MR <= mc + kMaxMR), likewise for nc.
std::size_t a_pack_doubles(const GemmBlocking& bk) {
  return static_cast<std::size_t>(bk.mc + kMaxMR) *
         static_cast<std::size_t>(bk.kc);
}

std::size_t b_pack_doubles(const GemmBlocking& bk) {
  return static_cast<std::size_t>(bk.kc) *
         static_cast<std::size_t>(bk.nc + kMaxNR);
}

// Per-thread packing buffers. These belong to the GEMM implementation (the
// vendor BLAS on the paper's machines has the same kind of internal
// scratch) and are deliberately *not* drawn from the Strassen workspace
// arena: Table 1 counts Strassen temporaries, not BLAS internals. The fused
// schedule inherits this accounting: its operand sums live here, inside
// buffers a plain DGEMM call of the same blocking already needs.
//
// Under intra-GEMM parallelism every task packs A into the scratch of the
// thread that executes it, so the DGEFMM pre-flight must warm the pool
// workers too (ensure_pack_capacity_all_workers) before the no-fail region.
struct PackBuffers {
  AlignedBuffer a_pack;
  AlignedBuffer b_pack;
  void ensure(std::size_t a_need, std::size_t b_need) {
    if (a_pack.size() < a_need) a_pack = AlignedBuffer(a_need);
    if (b_pack.size() < b_need) b_pack = AlignedBuffer(b_need);
  }
};

PackBuffers& pack_buffers() {
  thread_local PackBuffers bufs;
  return bufs;
}

int gemm_threads_env_default() {
  const char* env = std::getenv("STRASSEN_GEMM_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 0) return 0;
  return static_cast<int>(std::min<long>(v, kMaxGemmTasks));
}

int& gemm_threads_slot() {
  static const int env_default = gemm_threads_env_default();
  thread_local int setting = env_default;
  return setting;
}

// Everything one (jc, pc) iteration shares across its ic tasks. Lives on
// the submitting thread's stack; tasks read it while the submitter blocks
// in run_batch_nofail.
struct PanelArgs {
  const KernelInfo* kv;
  const GemmBlocking* bk;
  const PackComb* a;
  const double* b_pack;
  const WriteDest* dst;
  int ndst;
  index_t jc, pc, nc, kc;
  bool first_panel;
};

// Runs the ic blocks covering rows [ic0, ic1) of the current (jc, pc)
// iteration, packing each A block into the *executing* thread's scratch.
// The range bounds are multiples of mc (except ic1 == m), so distinct
// ranges touch disjoint C rows and the per-element arithmetic is identical
// to the serial nest regardless of how the ranges are split.
void run_ic_range(const PanelArgs& g, index_t ic0, index_t ic1) {
  const KernelInfo& kv = *g.kv;
  const GemmBlocking& bk = *g.bk;
  PackBuffers& bufs = pack_buffers();
  bufs.ensure(a_pack_doubles(bk), 0);  // no-op on a warmed thread
  double* a_pack = bufs.a_pack.data();

  alignas(kBufferAlignment) double acc[kMaxMR * kMaxNR];
  PackTerm a_terms[kPackMaxTerms];
  const index_t kc = g.kc;
  const index_t nc = g.nc;
  const index_t nc_panels = (nc + kv.nr - 1) / kv.nr;
  for (index_t ic = ic0; ic < ic1; ic += bk.mc) {
    const index_t mc = (ic1 - ic < bk.mc) ? (ic1 - ic) : bk.mc;
    for (int s = 0; s < g.a->n; ++s) {
      a_terms[s] = g.a->term[s];
      a_terms[s].p += ic * g.a->term[s].rs + g.pc * g.a->term[s].cs;
    }
    kv.pack_a_comb(a_terms, g.a->n, mc, kc, a_pack);
    const index_t mc_panels = (mc + kv.mr - 1) / kv.mr;
    for (index_t jr = 0; jr < nc_panels; ++jr) {
      const double* bp = g.b_pack + jr * (kv.nr * kc);
      const index_t cols =
          (nc - jr * kv.nr < kv.nr) ? (nc - jr * kv.nr) : kv.nr;
      for (index_t ir = 0; ir < mc_panels; ++ir) {
        const double* ap = a_pack + ir * (kv.mr * kc);
        const index_t rows =
            (mc - ir * kv.mr < kv.mr) ? (mc - ir * kv.mr) : kv.mr;
        kv.micro_kernel(kc, ap, bp, acc);
        for (int d = 0; d < g.ndst; ++d) {
          kv.write_tile(acc, rows, cols, g.dst[d].alpha,
                        g.first_panel ? g.dst[d].beta : 1.0,
                        g.dst[d].c + (ic + ir * kv.mr) +
                            (g.jc + jr * kv.nr) * g.dst[d].ldc,
                        g.dst[d].ldc);
        }
      }
    }
  }
}

// One fanned-out slice of the ic loop (raw thread-pool task).
struct IcTask {
  const PanelArgs* g;
  index_t ic0, ic1;
};

void run_ic_task(void* arg) {
  const IcTask* t = static_cast<const IcTask*>(arg);
  run_ic_range(*t->g, t->ic0, t->ic1);
}

}  // namespace

int gemm_threads() { return gemm_threads_slot(); }

void set_gemm_threads(int threads) {
  gemm_threads_slot() = std::clamp(threads, 0, kMaxGemmTasks);
}

int packed_gemm_threads(const GemmBlocking& bk, index_t m, index_t n,
                        index_t k) {
  const int setting = gemm_threads();
  if (setting == 1) return 1;
  if (m <= bk.mc || n == 0 || k == 0) return 1;  // fewer than two ic blocks
  // Only now touch the pool: small problems must not construct it (the
  // lazy construction is fallible and belongs in a pre-flight).
  int want = setting;
  if (want == 0) {
    want = static_cast<int>(
        std::min<std::size_t>(parallel::global_pool().size(), kMaxGemmTasks));
  }
  const index_t blocks = (m + bk.mc - 1) / bk.mc;
  want = static_cast<int>(std::min<index_t>(want, blocks));
  return want < 1 ? 1 : want;
}

void packed_gemm_multi(const GemmBlocking& bk, index_t m, index_t n,
                       index_t k, const PackComb& a, const PackComb& b,
                       const WriteDest* dst, int ndst) {
  assert(a.n >= 1 && a.n <= kPackMaxTerms);
  assert(b.n >= 1 && b.n <= kPackMaxTerms);
  assert(ndst >= 1 && ndst <= kPackMaxDests);
  if (m == 0 || n == 0 || k == 0) return;

  const KernelInfo& kv = active_kernel();
  assert(kv.mr <= kMaxMR && kv.nr <= kMaxNR);
  const int ntasks = packed_gemm_threads(bk, m, n, k);

  PackBuffers& bufs = pack_buffers();
  bufs.ensure(a_pack_doubles(bk), b_pack_doubles(bk));
  double* b_pack = bufs.b_pack.data();

  PackTerm b_terms[kPackMaxTerms];

  for (index_t jc = 0; jc < n; jc += bk.nc) {
    const index_t nc = (n - jc < bk.nc) ? (n - jc) : bk.nc;
    for (index_t pc = 0; pc < k; pc += bk.kc) {
      const index_t kc = (k - pc < bk.kc) ? (k - pc) : bk.kc;
      const bool first_panel = (pc == 0);
      for (int s = 0; s < b.n; ++s) {
        b_terms[s] = b.term[s];
        b_terms[s].p += pc * b.term[s].rs + jc * b.term[s].cs;
      }
      kv.pack_b_comb(b_terms, b.n, kc, nc, b_pack);
      const PanelArgs g{&kv, &bk,      &a, b_pack, dst,
                        ndst, jc,      pc, nc,     kc,
                        first_panel};
      if (ntasks <= 1) {
        run_ic_range(g, 0, m);
        continue;
      }
      // Fan the ic loop out: contiguous ranges of whole mc blocks, split
      // by (m, mc, ntasks) alone, so partitioning never depends on pool
      // scheduling. Workers read this (jc, pc)'s packed B from the
      // submitter's scratch, which stays pinned while we block below.
      IcTask tasks[kMaxGemmTasks];
      parallel::ThreadPool::RawTask raw[kMaxGemmTasks];
      const index_t blocks = (m + bk.mc - 1) / bk.mc;
      const index_t per = (blocks + ntasks - 1) / ntasks;
      int nt = 0;
      for (index_t b0 = 0; b0 < blocks; b0 += per) {
        const index_t ic0 = b0 * bk.mc;
        const index_t ic1 = std::min(m, (b0 + per) * bk.mc);
        assert(nt < kMaxGemmTasks);
        tasks[nt] = IcTask{&g, ic0, ic1};
        raw[nt] = parallel::ThreadPool::RawTask{&run_ic_task, &tasks[nt]};
        ++nt;
      }
      parallel::global_pool().run_batch_nofail(raw,
                                               static_cast<std::size_t>(nt));
    }
  }
}

void ensure_pack_capacity(const GemmBlocking& bk) {
  pack_buffers().ensure(a_pack_doubles(bk), b_pack_doubles(bk));
}

void ensure_pack_capacity_all_workers(const GemmBlocking& bk) {
  ensure_pack_capacity(bk);
  parallel::ThreadPool& pool = parallel::global_pool();
  if (pool.on_worker_thread()) return;  // the outer driver warmed the pool
  pool.run_on_each_worker(
      [&bk](std::size_t) { ensure_pack_capacity(bk); });
}

}  // namespace strassen::blas