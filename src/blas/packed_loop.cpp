#include "blas/packed_loop.hpp"

#include <cassert>

#include "blas/kernels.hpp"
#include "support/aligned_buffer.hpp"

namespace strassen::blas {

namespace {

using detail::kMR;
using detail::kNR;

// Per-thread packing buffers. These belong to the GEMM implementation (the
// vendor BLAS on the paper's machines has the same kind of internal
// scratch) and are deliberately *not* drawn from the Strassen workspace
// arena: Table 1 counts Strassen temporaries, not BLAS internals. The fused
// schedule inherits this accounting: its operand sums live here, inside
// buffers a plain DGEMM call of the same blocking already needs.
struct PackBuffers {
  AlignedBuffer a_pack;
  AlignedBuffer b_pack;
  void ensure(std::size_t a_need, std::size_t b_need) {
    if (a_pack.size() < a_need) a_pack = AlignedBuffer(a_need);
    if (b_pack.size() < b_need) b_pack = AlignedBuffer(b_need);
  }
};

PackBuffers& pack_buffers() {
  thread_local PackBuffers bufs;
  return bufs;
}

// Writes a micro-tile accumulator into one destination block:
// C <- alpha*acc + beta_eff*C over the valid (rows x cols) corner.
void write_tile(const double* acc, index_t rows, index_t cols, double alpha,
                double beta_eff, double* c, index_t ldc) {
  if (beta_eff == 0.0) {
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        c[i + j * ldc] = alpha * acc[i + j * kMR];
      }
    }
  } else if (beta_eff == 1.0) {
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        c[i + j * ldc] += alpha * acc[i + j * kMR];
      }
    }
  } else {
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        c[i + j * ldc] = alpha * acc[i + j * kMR] + beta_eff * c[i + j * ldc];
      }
    }
  }
}

}  // namespace

void packed_gemm_multi(const GemmBlocking& bk, index_t m, index_t n,
                       index_t k, const PackComb& a, const PackComb& b,
                       const WriteDest* dst, int ndst) {
  assert(a.n >= 1 && a.n <= kPackMaxTerms);
  assert(b.n >= 1 && b.n <= kPackMaxTerms);
  assert(ndst >= 1 && ndst <= kPackMaxDests);
  if (m == 0 || n == 0 || k == 0) return;

  PackBuffers& bufs = pack_buffers();
  bufs.ensure(static_cast<std::size_t>(bk.mc + kMR) * bk.kc,
              static_cast<std::size_t>(bk.kc) * (bk.nc + kNR));
  double* a_pack = bufs.a_pack.data();
  double* b_pack = bufs.b_pack.data();

  double acc[kMR * kNR];
  PackTerm a_terms[kPackMaxTerms];
  PackTerm b_terms[kPackMaxTerms];

  for (index_t jc = 0; jc < n; jc += bk.nc) {
    const index_t nc = (n - jc < bk.nc) ? (n - jc) : bk.nc;
    for (index_t pc = 0; pc < k; pc += bk.kc) {
      const index_t kc = (k - pc < bk.kc) ? (k - pc) : bk.kc;
      const bool first_panel = (pc == 0);
      for (int s = 0; s < b.n; ++s) {
        b_terms[s] = b.term[s];
        b_terms[s].p += pc * b.term[s].rs + jc * b.term[s].cs;
      }
      detail::pack_b_comb(b_terms, b.n, kc, nc, b_pack);
      for (index_t ic = 0; ic < m; ic += bk.mc) {
        const index_t mc = (m - ic < bk.mc) ? (m - ic) : bk.mc;
        for (int s = 0; s < a.n; ++s) {
          a_terms[s] = a.term[s];
          a_terms[s].p += ic * a.term[s].rs + pc * a.term[s].cs;
        }
        detail::pack_a_comb(a_terms, a.n, mc, kc, a_pack);
        const index_t mc_panels = (mc + kMR - 1) / kMR;
        const index_t nc_panels = (nc + kNR - 1) / kNR;
        for (index_t jr = 0; jr < nc_panels; ++jr) {
          const double* bp = b_pack + jr * (kNR * kc);
          const index_t cols = (nc - jr * kNR < kNR) ? (nc - jr * kNR) : kNR;
          for (index_t ir = 0; ir < mc_panels; ++ir) {
            const double* ap = a_pack + ir * (kMR * kc);
            const index_t rows = (mc - ir * kMR < kMR) ? (mc - ir * kMR) : kMR;
            detail::micro_kernel(kc, ap, bp, acc);
            for (int d = 0; d < ndst; ++d) {
              write_tile(acc, rows, cols, dst[d].alpha,
                         first_panel ? dst[d].beta : 1.0,
                         dst[d].c + (ic + ir * kMR) +
                             (jc + jr * kNR) * dst[d].ldc,
                         dst[d].ldc);
            }
          }
        }
      }
    }
  }
}

void ensure_pack_capacity(const GemmBlocking& bk) {
  pack_buffers().ensure(static_cast<std::size_t>(bk.mc + kMR) * bk.kc,
                        static_cast<std::size_t>(bk.kc) * (bk.nc + kNR));
}

}  // namespace strassen::blas
