#include "blas/packed_loop.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "blas/kernels.hpp"
#include "blas/pack_operand.hpp"
#include "support/aligned_buffer.hpp"
#include "support/thread_pool.hpp"

namespace strassen::blas {

namespace {

// Pack-buffer sizes in elements for a blocking. Padding uses the
// kMaxMRT<T> / kMaxNRT<T> bounds rather than the active kernel's MR/NR so
// scratch warmed for a blocking fits every kernel variant: the worst-case
// edge panel rounds mc up to a multiple of MR (< mc + MR <= mc + kMaxMR),
// likewise for nc.
template <class T>
std::size_t a_pack_elems(const GemmBlocking& bk) {
  return static_cast<std::size_t>(bk.mc + kMaxMRT<T>) *
         static_cast<std::size_t>(bk.kc);
}

template <class T>
std::size_t b_pack_elems(const GemmBlocking& bk) {
  return static_cast<std::size_t>(bk.kc) *
         static_cast<std::size_t>(bk.nc + kMaxNRT<T>);
}

// Per-thread packing buffers, one set per element type. These belong to the
// GEMM implementation (the vendor BLAS on the paper's machines has the same
// kind of internal scratch) and are deliberately *not* drawn from the
// Strassen workspace arena: Table 1 counts Strassen temporaries, not BLAS
// internals. The fused schedule inherits this accounting: its operand sums
// live here, inside buffers a plain GEMM call of the same blocking already
// needs.
//
// Under intra-GEMM parallelism every task packs A into the scratch of the
// thread that executes it, so the GEFMM pre-flight must warm the pool
// workers too (ensure_pack_capacity_all_workers) before the no-fail region.
template <class T>
struct PackBuffersT {
  AlignedBufferT<T> a_pack;
  AlignedBufferT<T> b_pack;
  void ensure(std::size_t a_need, std::size_t b_need) {
    if (a_pack.size() < a_need) a_pack = AlignedBufferT<T>(a_need);
    if (b_pack.size() < b_need) b_pack = AlignedBufferT<T>(b_need);
  }
};

template <class T>
PackBuffersT<T>& pack_buffers() {
  thread_local PackBuffersT<T> bufs;
  return bufs;
}

int gemm_threads_env_default() {
  const char* env = std::getenv("STRASSEN_GEMM_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 0) return 0;
  return static_cast<int>(std::min<long>(v, kMaxGemmTasks));
}

int& gemm_threads_slot() {
  static const int env_default = gemm_threads_env_default();
  thread_local int setting = env_default;
  return setting;
}

// Everything one (jc, pc) iteration shares across its ic tasks. Lives on
// the submitting thread's stack; tasks read it while the submitter blocks
// in run_batch_nofail.
template <class T>
struct PanelArgsT {
  const KernelInfoT<T>* kv;
  const GemmBlocking* bk;
  const PackCombT<T>* a;
  const T* b_pack;
  const WriteDestT<T>* dst;
  int ndst;
  index_t jc, pc, nc, kc;
  bool first_panel;
  /// Prepacked op(A) image (null: pack fresh into thread scratch). The
  /// closed-form block offsets need the full operand shape, carried here.
  const T* a_img;
  index_t m_total, k_total;
};

// Runs the ic blocks covering rows [ic0, ic1) of the current (jc, pc)
// iteration, packing each A block into the *executing* thread's scratch.
// The range bounds are multiples of mc (except ic1 == m), so distinct
// ranges touch disjoint C rows and the per-element arithmetic is identical
// to the serial nest regardless of how the ranges are split.
template <class T>
void run_ic_range(const PanelArgsT<T>& g, index_t ic0, index_t ic1) {
  const KernelInfoT<T>& kv = *g.kv;
  const GemmBlocking& bk = *g.bk;
  T* a_pack = nullptr;
  if (g.a_img == nullptr) {
    PackBuffersT<T>& bufs = pack_buffers<T>();
    bufs.ensure(a_pack_elems<T>(bk), 0);  // no-op on a warmed thread
    a_pack = bufs.a_pack.data();
  }

  alignas(kBufferAlignment) T acc[kMaxMRT<T> * kMaxNRT<T>];
  PackTermT<T> a_terms[kPackMaxTerms];
  const index_t kc = g.kc;
  const index_t nc = g.nc;
  const index_t nc_panels = (nc + kv.nr - 1) / kv.nr;
  for (index_t ic = ic0; ic < ic1; ic += bk.mc) {
    const index_t mc = (ic1 - ic < bk.mc) ? (ic1 - ic) : bk.mc;
    const T* a_block;
    if (g.a_img != nullptr) {
      a_block = g.a_img +
                packed_a_offset(bk, kv.mr, g.m_total, g.k_total, ic, g.pc);
    } else {
      for (int s = 0; s < g.a->n; ++s) {
        a_terms[s] = g.a->term[s];
        a_terms[s].p += ic * g.a->term[s].rs + g.pc * g.a->term[s].cs;
      }
      kv.pack_a_comb(a_terms, g.a->n, mc, kc, a_pack);
      a_block = a_pack;
    }
    const index_t mc_panels = (mc + kv.mr - 1) / kv.mr;
    for (index_t jr = 0; jr < nc_panels; ++jr) {
      const T* bp = g.b_pack + jr * (kv.nr * kc);
      const index_t cols =
          (nc - jr * kv.nr < kv.nr) ? (nc - jr * kv.nr) : kv.nr;
      for (index_t ir = 0; ir < mc_panels; ++ir) {
        const T* ap = a_block + ir * (kv.mr * kc);
        const index_t rows =
            (mc - ir * kv.mr < kv.mr) ? (mc - ir * kv.mr) : kv.mr;
        kv.micro_kernel(kc, ap, bp, acc);
        for (int d = 0; d < g.ndst; ++d) {
          kv.write_tile(acc, rows, cols, g.dst[d].alpha,
                        g.first_panel ? g.dst[d].beta : T(1),
                        g.dst[d].c + (ic + ir * kv.mr) +
                            (g.jc + jr * kv.nr) * g.dst[d].ldc,
                        g.dst[d].ldc);
        }
      }
    }
  }
}

// One fanned-out slice of the ic loop (raw thread-pool task).
template <class T>
struct IcTaskT {
  const PanelArgsT<T>* g;
  index_t ic0, ic1;
};

template <class T>
void run_ic_task(void* arg) {
  const IcTaskT<T>* t = static_cast<const IcTaskT<T>*>(arg);
  run_ic_range(*t->g, t->ic0, t->ic1);
}

}  // namespace

int gemm_threads() { return gemm_threads_slot(); }

void set_gemm_threads(int threads) {
  gemm_threads_slot() = std::clamp(threads, 0, kMaxGemmTasks);
}

int packed_gemm_threads(const GemmBlocking& bk, index_t m, index_t n,
                        index_t k) {
  const int setting = gemm_threads();
  if (setting == 1) return 1;
  if (m <= bk.mc || n == 0 || k == 0) return 1;  // fewer than two ic blocks
  // Only now touch the pool: small problems must not construct it (the
  // lazy construction is fallible and belongs in a pre-flight).
  int want = setting;
  if (want == 0) {
    want = static_cast<int>(
        std::min<std::size_t>(parallel::global_pool().size(), kMaxGemmTasks));
  }
  const index_t blocks = (m + bk.mc - 1) / bk.mc;
  want = static_cast<int>(std::min<index_t>(want, blocks));
  return want < 1 ? 1 : want;
}

template <class T>
void packed_gemm_multi(const GemmBlocking& bk, index_t m, index_t n,
                       index_t k, const PackCombT<T>& a,
                       const PackCombT<T>& b, const WriteDestT<T>* dst,
                       int ndst) {
  packed_gemm_multi(bk, m, n, k, a, b, dst, ndst, PackedStreamsT<T>{});
}

template <class T>
void packed_gemm_multi(const GemmBlocking& bk, index_t m, index_t n,
                       index_t k, const PackCombT<T>& a,
                       const PackCombT<T>& b, const WriteDestT<T>* dst,
                       int ndst, const PackedStreamsT<T>& streams) {
  assert(a.n >= 1 && a.n <= kPackMaxTerms);
  assert(b.n >= 1 && b.n <= kPackMaxTerms);
  assert(ndst >= 1 && ndst <= kPackMaxDests);
  // A streamed side is a single gamma == 1 term by contract (the image is a
  // pure reshaping copy of exactly one operand).
  assert(streams.a == nullptr || (a.n == 1 && a.term[0].gamma == T(1)));
  assert(streams.b == nullptr || (b.n == 1 && b.term[0].gamma == T(1)));
  if (m == 0 || n == 0 || k == 0) return;

  const KernelInfoT<T>& kv = active_kernel_t<T>();
  assert(kv.mr <= kMaxMRT<T> && kv.nr <= kMaxNRT<T>);
  const int ntasks = packed_gemm_threads(bk, m, n, k);

  PackBuffersT<T>& bufs = pack_buffers<T>();
  bufs.ensure(streams.a != nullptr ? 0 : a_pack_elems<T>(bk),
              streams.b != nullptr ? 0 : b_pack_elems<T>(bk));
  T* b_pack = bufs.b_pack.data();

  PackTermT<T> b_terms[kPackMaxTerms];

  for (index_t jc = 0; jc < n; jc += bk.nc) {
    const index_t nc = (n - jc < bk.nc) ? (n - jc) : bk.nc;
    for (index_t pc = 0; pc < k; pc += bk.kc) {
      const index_t kc = (k - pc < bk.kc) ? (k - pc) : bk.kc;
      const bool first_panel = (pc == 0);
      const T* b_block;
      if (streams.b != nullptr) {
        b_block = streams.b + packed_b_offset(bk, kv.nr, k, n, jc, pc);
      } else {
        for (int s = 0; s < b.n; ++s) {
          b_terms[s] = b.term[s];
          b_terms[s].p += pc * b.term[s].rs + jc * b.term[s].cs;
        }
        kv.pack_b_comb(b_terms, b.n, kc, nc, b_pack);
        b_block = b_pack;
      }
      const PanelArgsT<T> g{&kv, &bk,      &a, b_block, dst,
                            ndst, jc,      pc, nc,     kc,
                            first_panel, streams.a, m, k};
      if (ntasks <= 1) {
        run_ic_range(g, 0, m);
        continue;
      }
      // Fan the ic loop out: contiguous ranges of whole mc blocks, split
      // by (m, mc, ntasks) alone, so partitioning never depends on pool
      // scheduling. Workers read this (jc, pc)'s packed B from the
      // submitter's scratch, which stays pinned while we block below.
      IcTaskT<T> tasks[kMaxGemmTasks];
      parallel::ThreadPool::RawTask raw[kMaxGemmTasks];
      const index_t blocks = (m + bk.mc - 1) / bk.mc;
      const index_t per = (blocks + ntasks - 1) / ntasks;
      int nt = 0;
      for (index_t b0 = 0; b0 < blocks; b0 += per) {
        const index_t ic0 = b0 * bk.mc;
        const index_t ic1 = std::min(m, (b0 + per) * bk.mc);
        assert(nt < kMaxGemmTasks);
        tasks[nt] = IcTaskT<T>{&g, ic0, ic1};
        raw[nt] = parallel::ThreadPool::RawTask{&run_ic_task<T>, &tasks[nt]};
        ++nt;
      }
      parallel::global_pool().run_batch_nofail(raw,
                                               static_cast<std::size_t>(nt));
    }
  }
}

template void packed_gemm_multi<double>(const GemmBlocking&, index_t,
                                        index_t, index_t,
                                        const PackCombT<double>&,
                                        const PackCombT<double>&,
                                        const WriteDestT<double>*, int);
template void packed_gemm_multi<float>(const GemmBlocking&, index_t, index_t,
                                       index_t, const PackCombT<float>&,
                                       const PackCombT<float>&,
                                       const WriteDestT<float>*, int);
template void packed_gemm_multi<double>(const GemmBlocking&, index_t,
                                        index_t, index_t,
                                        const PackCombT<double>&,
                                        const PackCombT<double>&,
                                        const WriteDestT<double>*, int,
                                        const PackedStreamsT<double>&);
template void packed_gemm_multi<float>(const GemmBlocking&, index_t, index_t,
                                       index_t, const PackCombT<float>&,
                                       const PackCombT<float>&,
                                       const WriteDestT<float>*, int,
                                       const PackedStreamsT<float>&);

template <class T>
void ensure_pack_capacity(const GemmBlocking& bk) {
  pack_buffers<T>().ensure(a_pack_elems<T>(bk), b_pack_elems<T>(bk));
}

template void ensure_pack_capacity<double>(const GemmBlocking&);
template void ensure_pack_capacity<float>(const GemmBlocking&);

template <class T>
void ensure_pack_capacity_all_workers(const GemmBlocking& bk) {
  ensure_pack_capacity<T>(bk);
  parallel::ThreadPool& pool = parallel::global_pool();
  if (pool.on_worker_thread()) return;  // the outer driver warmed the pool
  pool.run_on_each_worker(
      [&bk](std::size_t) { ensure_pack_capacity<T>(bk); });
}

template void ensure_pack_capacity_all_workers<double>(const GemmBlocking&);
template void ensure_pack_capacity_all_workers<float>(const GemmBlocking&);

template <class T>
void release_pack_capacity() {
  PackBuffersT<T>& bufs = pack_buffers<T>();
  bufs.a_pack = AlignedBufferT<T>();
  bufs.b_pack = AlignedBufferT<T>();
}

template void release_pack_capacity<double>();
template void release_pack_capacity<float>();

template <class T>
std::size_t pack_capacity_elements() {
  const PackBuffersT<T>& bufs = pack_buffers<T>();
  return bufs.a_pack.size() + bufs.b_pack.size();
}

template std::size_t pack_capacity_elements<double>();
template std::size_t pack_capacity_elements<float>();

}  // namespace strassen::blas
