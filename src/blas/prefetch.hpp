// Software-prefetch policy for the packing routines (memory-system tuning).
//
// Huang et al. (arXiv:1605.01078) locate the Strassen-vs-DGEMM crossover in
// the packing traffic: pack_a/pack_b (and their linear-combination
// generalizations) stream strided source panels whose access pattern the
// hardware prefetchers follow poorly, especially for the multi-operand
// combined packs where 2-4 source streams interleave. Issuing an explicit
// prefetch a fixed number of k-iterations ahead hides the miss latency of
// the next column/row while the current one is being combined.
//
// Policy, not mechanism: the distance is a per-KernelArch compile-time
// constant (wider vectors consume panel elements faster, so they look
// further ahead), and a process-wide switch (STRASSEN_PREFETCH, default on)
// can disable issuance entirely. Prefetch has no architectural effect --
// results are bitwise identical with the switch on or off, which the kernel
// test matrix asserts by memcmp.
#pragma once

#include "blas/kernels.hpp"
#include "support/config.hpp"

namespace strassen::blas {

/// Process-wide pack-prefetch switch, resolved once from STRASSEN_PREFETCH
/// ("0"/"off" disable; anything else, or unset, enables) on first query;
/// set_pack_prefetch overrides it later.
bool pack_prefetch_enabled();
void set_pack_prefetch(bool on);

/// RAII override of the prefetch switch (the bitwise-identity test matrix
/// sweeps it on and off around otherwise identical calls).
class ScopedPackPrefetch {
 public:
  explicit ScopedPackPrefetch(bool on) : prev_(pack_prefetch_enabled()) {
    set_pack_prefetch(on);
  }
  ScopedPackPrefetch(const ScopedPackPrefetch&) = delete;
  ScopedPackPrefetch& operator=(const ScopedPackPrefetch&) = delete;
  ~ScopedPackPrefetch() { set_pack_prefetch(prev_); }

 private:
  bool prev_;
};

namespace detail {

/// Look-ahead distance in k-iterations for the packing loops, per kernel
/// arch. Zero means "never issue" and compiles the prefetch out entirely:
/// the scalar kernel exists for reproducibility on unknown hardware, where
/// a guessed distance could pessimize. The SIMD variants drain packed
/// panels 4x/8x faster than scalar, so they look further ahead.
template <KernelArch A>
constexpr index_t pack_prefetch_distance() {
  if constexpr (A == KernelArch::avx512) {
    return 8;
  } else if constexpr (A == KernelArch::avx2) {
    return 4;
  } else {
    return 0;
  }
}

/// Read-prefetch with no temporal-locality hint: packed source elements are
/// consumed exactly once, so displacing resident cache lines for them is
/// the wrong trade. Expands to nothing where the builtin is unavailable --
/// prefetch is advisory by construction.
inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/0);
#else
  (void)p;
#endif
}

}  // namespace detail

}  // namespace strassen::blas
