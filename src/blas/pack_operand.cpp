#include "blas/pack_operand.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "support/errors.hpp"

namespace strassen::blas {

namespace {

// The blocking every prepacked image is walked with: the packed path's
// rs6000 blocking for T, same source of truth as gemm.cpp's packed route.
template <class T>
GemmBlocking pack_blocking() {
  return blocking_for_t<T>(Machine::rs6000);
}

// Walks the (strip, pc) grid of one operand side in image order and packs
// every block through the active kernel's single-term pack -- a pure
// reshaping copy, so the image bytes equal what a fresh scratch pack of the
// same block would produce. `out` must hold the matching *_total elements
// and be kBufferAlignment-aligned (the SIMD micro-kernels use aligned loads
// on A micro-panels).
template <class T>
void fill_packed_image(char which, BasicView<const T> v, T* out) {
  const KernelInfoT<T>& kv = active_kernel_t<T>();
  const GemmBlocking bk = pack_blocking<T>();
  T* o = out;
  if (which == 'a') {
    const index_t m = v.rows, k = v.cols;
    for (index_t ic = 0; ic < m; ic += bk.mc) {
      const index_t mc = (m - ic < bk.mc) ? (m - ic) : bk.mc;
      for (index_t pc = 0; pc < k; pc += bk.kc) {
        const index_t kc = (k - pc < bk.kc) ? (k - pc) : bk.kc;
        const PackTermT<T> t{v.p + ic * v.rs + pc * v.cs, v.rs, v.cs, T(1)};
        kv.pack_a_comb(&t, 1, mc, kc, o);
        o += packed_round_up(mc, kv.mr) * static_cast<std::size_t>(kc);
      }
    }
  } else {
    const index_t k = v.rows, n = v.cols;
    for (index_t jc = 0; jc < n; jc += bk.nc) {
      const index_t nc = (n - jc < bk.nc) ? (n - jc) : bk.nc;
      for (index_t pc = 0; pc < k; pc += bk.kc) {
        const index_t kc = (k - pc < bk.kc) ? (k - pc) : bk.kc;
        const PackTermT<T> t{v.p + pc * v.rs + jc * v.cs, v.rs, v.cs, T(1)};
        kv.pack_b_comb(&t, 1, kc, nc, o);
        o += packed_round_up(nc, kv.nr) * static_cast<std::size_t>(kc);
      }
    }
  }
}

template <class T>
std::size_t image_elems(char which, index_t rows, index_t cols) {
  const KernelInfoT<T>& kv = active_kernel_t<T>();
  const GemmBlocking bk = pack_blocking<T>();
  return which == 'a' ? packed_a_total(bk, kv.mr, rows, cols)
                      : packed_b_total(bk, kv.nr, rows, cols);
}

template <class T>
void stamp_handle(PackedOperandT<T>& h, char which, BasicView<const T> v) {
  const KernelInfoT<T>& kv = active_kernel_t<T>();
  std::snprintf(h.kernel, sizeof h.kernel, "%s", kv.name);
  h.which = which;
  h.bk = pack_blocking<T>();
  h.rows = v.rows;
  h.cols = v.cols;
  h.src = v.p;
  h.rs = v.rs;
  h.cs = v.cs;
}

// Acquires handle-owned image storage and fills it: the one fallible step
// of building an owning handle (fault site buffer_alloc fires inside the
// AlignedBufferT constructor). Throws std::bad_alloc / TaskError before
// the handle exists; never after.
template <class T>
PackedOperandT<T> pack_operand(char which, BasicView<const T> v) {
  PackedOperandT<T> h;
  h.elems = image_elems<T>(which, v.rows, v.cols);
  h.owned = AlignedBufferT<T>(h.elems);
  stamp_handle(h, which, v);
  fill_packed_image(which, v, h.owned.data());
  return h;
}

// Caller-storage variant: no allocation, but the storage must be big
// enough and aligned for the SIMD kernels' packed-panel loads.
template <class T>
PackedOperandT<T> pack_operand(char which, BasicView<const T> v, T* storage,
                               std::size_t elems) {
  PackedOperandT<T> h;
  h.elems = image_elems<T>(which, v.rows, v.cols);
  if (elems < h.elems) {
    throw Error("gefmm_pack: storage holds " + std::to_string(elems) +
                " elements, packed image needs " + std::to_string(h.elems));
  }
  if (reinterpret_cast<std::uintptr_t>(storage) % kBufferAlignment != 0) {
    throw Error("gefmm_pack: storage must be " +
                std::to_string(kBufferAlignment) + "-byte aligned");
  }
  stamp_handle(h, which, v);
  fill_packed_image(which, v, storage);
  h.ext = storage;
  return h;
}

}  // namespace

template <class T>
std::size_t gefmm_pack_a_elements(index_t m, index_t k) {
  return image_elems<T>('a', m, k);
}

template <class T>
std::size_t gefmm_pack_b_elements(index_t k, index_t n) {
  return image_elems<T>('b', k, n);
}

template <class T>
PackedOperandT<T> gefmm_pack_a(BasicView<const T> a) {
  return pack_operand('a', a);
}

template <class T>
PackedOperandT<T> gefmm_pack_b(BasicView<const T> b) {
  return pack_operand('b', b);
}

template <class T>
PackedOperandT<T> gefmm_pack_a(BasicView<const T> a, T* storage,
                               std::size_t elems) {
  return pack_operand('a', a, storage, elems);
}

template <class T>
PackedOperandT<T> gefmm_pack_b(BasicView<const T> b, T* storage,
                               std::size_t elems) {
  return pack_operand('b', b, storage, elems);
}

template <class T>
bool packed_operand_matches(const PackedOperandT<T>& h, char which,
                            BasicView<const T> v) {
  if (!h.valid() || h.which != which) return false;
  const KernelInfoT<T>& kv = active_kernel_t<T>();
  if (std::strncmp(h.kernel, kv.name, sizeof h.kernel) != 0) return false;
  const GemmBlocking bk = pack_blocking<T>();
  if (h.bk.mc != bk.mc || h.bk.kc != bk.kc || h.bk.nc != bk.nc) return false;
  return h.src == v.p && h.rs == v.rs && h.cs == v.cs && h.rows == v.rows &&
         h.cols == v.cols;
}

count_t packed_a_blocks(const GemmBlocking& bk, index_t m, index_t n,
                        index_t k) {
  if (m == 0 || n == 0 || k == 0) return 0;
  const count_t ics = static_cast<count_t>((m + bk.mc - 1) / bk.mc);
  return packed_b_blocks(bk, n, k) * ics;
}

count_t packed_b_blocks(const GemmBlocking& bk, index_t n, index_t k) {
  if (n == 0 || k == 0) return 0;
  const count_t jcs = static_cast<count_t>((n + bk.nc - 1) / bk.nc);
  const count_t pcs = static_cast<count_t>((k + bk.kc - 1) / bk.kc);
  return jcs * pcs;
}

template <class T>
bool PanelCacheT<T>::register_entry(char which, const T* src, index_t rs,
                                    index_t cs, index_t rows, index_t cols) {
  if (n_ >= kMaxEntries || slab_ == nullptr) return false;
  // Align the image start so every micro-panel keeps the aligned-load
  // contract; the slab carries kBufferAlignment/sizeof(T) slack per entry.
  const std::size_t align_elems = kBufferAlignment / sizeof(T);
  T* base = slab_ + used_;
  const std::size_t mis =
      reinterpret_cast<std::uintptr_t>(base) % kBufferAlignment;
  const std::size_t pad = mis == 0 ? 0 : align_elems - mis / sizeof(T);
  const std::size_t elems = image_elems<T>(which, rows, cols);
  if (used_ + pad + elems > slab_elems_) return false;
  Entry& e = entries_[n_];
  e.which = which;
  e.src = src;
  e.rs = rs;
  e.cs = cs;
  e.rows = rows;
  e.cols = cols;
  e.img = base + pad;
  e.elems = elems;
  e.filled = false;
  ++n_;
  used_ += pad + elems;
  return true;
}

template <class T>
const T* PanelCacheT<T>::acquire(char which, const T* src, index_t rs,
                                 index_t cs, index_t rows, index_t cols) {
  for (int i = 0; i < n_; ++i) {
    Entry& e = entries_[i];
    if (e.which != which || e.src != src || e.rs != rs || e.cs != cs ||
        e.rows != rows || e.cols != cols) {
      continue;
    }
    if (!e.filled) {
      const BasicView<const T> v{src, rows, cols, rs, cs};
      fill_packed_image(which, v, e.img);
      e.filled = true;
      // Building the image packs one block per (strip, pc): A strips run
      // over rows (m) with depth over cols (k); B strips over cols (n)
      // with depth over rows (k).
      const count_t strips = static_cast<count_t>(
          which == 'a' ? (rows + bk_.mc - 1) / bk_.mc
                       : (cols + bk_.nc - 1) / bk_.nc);
      const count_t depth = static_cast<count_t>(
          which == 'a' ? (cols + bk_.kc - 1) / bk_.kc
                       : (rows + bk_.kc - 1) / bk_.kc);
      note_misses(strips * depth);
    }
    return e.img;
  }
  return nullptr;
}

template std::size_t gefmm_pack_a_elements<double>(index_t, index_t);
template std::size_t gefmm_pack_a_elements<float>(index_t, index_t);
template std::size_t gefmm_pack_b_elements<double>(index_t, index_t);
template std::size_t gefmm_pack_b_elements<float>(index_t, index_t);
template PackedOperandT<double> gefmm_pack_a<double>(BasicView<const double>);
template PackedOperandT<float> gefmm_pack_a<float>(BasicView<const float>);
template PackedOperandT<double> gefmm_pack_b<double>(BasicView<const double>);
template PackedOperandT<float> gefmm_pack_b<float>(BasicView<const float>);
template PackedOperandT<double> gefmm_pack_a<double>(BasicView<const double>,
                                                     double*, std::size_t);
template PackedOperandT<float> gefmm_pack_a<float>(BasicView<const float>,
                                                   float*, std::size_t);
template PackedOperandT<double> gefmm_pack_b<double>(BasicView<const double>,
                                                     double*, std::size_t);
template PackedOperandT<float> gefmm_pack_b<float>(BasicView<const float>,
                                                   float*, std::size_t);
template bool packed_operand_matches<double>(const PackedOperandT<double>&,
                                             char, BasicView<const double>);
template bool packed_operand_matches<float>(const PackedOperandT<float>&,
                                            char, BasicView<const float>);
template class PanelCacheT<double>;
template class PanelCacheT<float>;

}  // namespace strassen::blas
