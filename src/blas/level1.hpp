// Level 1 BLAS subset (vector-vector operations).
//
// The paper's DGEFMM is written on top of the BLAS; this module is the
// from-scratch substrate standing in for the vendor libraries (IBM
// libblas.a, CRAY scilib.a). Signatures follow the reference BLAS with
// explicit strides.
#pragma once

#include "support/config.hpp"

namespace strassen::blas {

/// y <- x  (n elements, strides incx/incy; strides must be positive).
void dcopy(index_t n, const double* x, index_t incx, double* y, index_t incy);
void scopy(index_t n, const float* x, index_t incx, float* y, index_t incy);

/// x <- alpha * x.
void dscal(index_t n, double alpha, double* x, index_t incx);
void sscal(index_t n, float alpha, float* x, index_t incx);

/// y <- alpha * x + y.
void daxpy(index_t n, double alpha, const double* x, index_t incx, double* y,
           index_t incy);
void saxpy(index_t n, float alpha, const float* x, index_t incx, float* y,
           index_t incy);

/// Returns x . y (accumulated in the element type).
double ddot(index_t n, const double* x, index_t incx, const double* y,
            index_t incy);
float sdot(index_t n, const float* x, index_t incx, const float* y,
           index_t incy);

}  // namespace strassen::blas
