#include "blas/prefetch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace strassen::blas {

namespace {

// -1 = not yet resolved from the environment; 0/1 = off/on.
std::atomic<int> g_pack_prefetch{-1};

int resolve_from_env() {
  const char* env = std::getenv("STRASSEN_PREFETCH");
  const bool off = env != nullptr && (std::strcmp(env, "0") == 0 ||
                                      std::strcmp(env, "off") == 0);
  return off ? 0 : 1;
}

}  // namespace

bool pack_prefetch_enabled() {
  int v = g_pack_prefetch.load(std::memory_order_relaxed);  // relaxed: config-slot
  if (v < 0) {
    v = resolve_from_env();
    // A concurrent set_pack_prefetch wins; env resolution only replaces
    // the unresolved sentinel.
    int expected = -1;
    if (!g_pack_prefetch.compare_exchange_strong(
            expected, v, std::memory_order_relaxed)) {  // relaxed: config-slot
      v = expected;
    }
  }
  return v == 1;
}

void set_pack_prefetch(bool on) {
  g_pack_prefetch.store(on ? 1 : 0,
                        std::memory_order_relaxed);  // relaxed: config-slot
}

}  // namespace strassen::blas
