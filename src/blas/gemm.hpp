// Level 3 BLAS DGEMM: C <- alpha * op(A) * op(B) + beta * C.
//
// Three implementations, selected by the active Machine profile (see
// machine.hpp):
//  * packed cache-blocked with a register micro-kernel (rs6000),
//  * column-sweep DAXPY outer products (c90),
//  * small-tile blocked without packing (t3d),
// plus a deliberately simple reference implementation for tests.
//
// This DGEMM is both the baseline the paper's Strassen code must beat and
// the routine used for the bottom-level multiplications once the recursion
// is cut off.
#pragma once

#include "blas/machine.hpp"
#include "support/config.hpp"
#include "support/matrix.hpp"

namespace strassen::blas {

/// C <- alpha * op(A) * op(B) + beta * C using the active machine profile.
/// A is lda x (ka) column-major where op(A) is m x k; B likewise; C is m x n
/// with leading dimension ldc. Degenerate extents (0) are handled; k == 0
/// reduces to C <- beta*C.
void dgemm(Trans transa, Trans transb, index_t m, index_t n, index_t k,
           double alpha, const double* a, index_t lda, const double* b,
           index_t ldb, double beta, double* c, index_t ldc);

/// Same, with an explicit machine profile.
void dgemm_on(Machine machine, Trans transa, Trans transb, index_t m,
              index_t n, index_t k, double alpha, const double* a, index_t lda,
              const double* b, index_t ldb, double beta, double* c,
              index_t ldc);

/// Deliberately naive triple-loop implementation used as the oracle in
/// tests. Supports the full DGEMM contract.
void gemm_reference(Trans transa, Trans transb, index_t m, index_t n,
                    index_t k, double alpha, const double* a, index_t lda,
                    const double* b, index_t ldb, double beta, double* c,
                    index_t ldc);

/// View-based entry point used by the Strassen internals.
///
/// A and B may be transposed views (row-major strides); C must be a plain
/// column-major view. Dispatches to dgemm on the active machine profile.
void gemm_view(double alpha, ConstView a, ConstView b, double beta, MutView c);

}  // namespace strassen::blas
