// Level 3 BLAS GEMM: C <- alpha * op(A) * op(B) + beta * C, in double
// (DGEMM) and single (SGEMM) precision.
//
// Three implementations, selected by the active Machine profile (see
// machine.hpp):
//  * packed cache-blocked with a register micro-kernel (rs6000),
//  * column-sweep DAXPY outer products (c90),
//  * small-tile blocked without packing (t3d),
// plus a deliberately simple reference implementation for tests. Both
// precisions run the same loop nests (one shared template per style); only
// the micro-kernel table and the element type differ.
//
// This GEMM is both the baseline the paper's Strassen code must beat and
// the routine used for the bottom-level multiplications once the recursion
// is cut off.
#pragma once

#include "blas/machine.hpp"
#include "support/config.hpp"
#include "support/matrix.hpp"

namespace strassen::blas {

/// C <- alpha * op(A) * op(B) + beta * C using the active machine profile.
/// A is lda x (ka) column-major where op(A) is m x k; B likewise; C is m x n
/// with leading dimension ldc. Degenerate extents (0) are handled; k == 0
/// reduces to C <- beta*C.
void dgemm(Trans transa, Trans transb, index_t m, index_t n, index_t k,
           double alpha, const double* a, index_t lda, const double* b,
           index_t ldb, double beta, double* c, index_t ldc);

/// Single-precision twin of dgemm.
void sgemm(Trans transa, Trans transb, index_t m, index_t n, index_t k,
           float alpha, const float* a, index_t lda, const float* b,
           index_t ldb, float beta, float* c, index_t ldc);

/// Same, with an explicit machine profile.
void dgemm_on(Machine machine, Trans transa, Trans transb, index_t m,
              index_t n, index_t k, double alpha, const double* a, index_t lda,
              const double* b, index_t ldb, double beta, double* c,
              index_t ldc);
void sgemm_on(Machine machine, Trans transa, Trans transb, index_t m,
              index_t n, index_t k, float alpha, const float* a, index_t lda,
              const float* b, index_t ldb, float beta, float* c, index_t ldc);

/// Deliberately naive triple-loop implementation used as the oracle in
/// tests. Supports the full GEMM contract; accumulation happens in the
/// element type, so it is the naive algorithm of that precision, not a
/// higher-precision reference (the stability harness builds its own).
void gemm_reference(Trans transa, Trans transb, index_t m, index_t n,
                    index_t k, double alpha, const double* a, index_t lda,
                    const double* b, index_t ldb, double beta, double* c,
                    index_t ldc);
void gemm_reference(Trans transa, Trans transb, index_t m, index_t n,
                    index_t k, float alpha, const float* a, index_t lda,
                    const float* b, index_t ldb, float beta, float* c,
                    index_t ldc);

/// View-based entry point used by the Strassen internals.
///
/// A and B may be transposed views (row-major strides); C must be a plain
/// column-major view. Dispatches to dgemm/sgemm on the active machine
/// profile.
void gemm_view(double alpha, ConstView a, ConstView b, double beta, MutView c);
void gemm_view(float alpha, ConstViewF a, ConstViewF b, float beta,
               MutViewF c);

template <class T>
struct PackedOperandT;

/// gemm_view with prepacked-operand streaming: when the consult succeeds,
/// runs the identical packed loop nest while streaming micro-panels from
/// the handle image(s) instead of packing, and returns true -- results are
/// bitwise identical to gemm_view for every thread count. Returns false
/// without touching C on any hard miss: non-rs6000 machine profile, a
/// degenerate shape (m, n, or k == 0, alpha == 0) the plain path scales, or
/// any provided handle failing its stamp/identity consult
/// (packed_operand_matches). Null handles are allowed for at most one side;
/// at least one must be non-null.
[[nodiscard]] bool gemm_view_prepacked(double alpha, ConstView a, ConstView b,
                                       double beta, MutView c,
                                       const PackedOperandT<double>* pa,
                                       const PackedOperandT<double>* pb);
[[nodiscard]] bool gemm_view_prepacked(float alpha, ConstViewF a, ConstViewF b,
                                       float beta, MutViewF c,
                                       const PackedOperandT<float>* pa,
                                       const PackedOperandT<float>* pb);

}  // namespace strassen::blas
