// Machine profiles: the stand-in for the paper's three evaluation machines.
//
// The paper measures on an IBM RS/6000, a CRAY Y-MP C90, and a CRAY T3D
// node; we do not have that hardware, so each profile selects a different
// DGEMM algorithm/blocking (see DESIGN.md, "Substitutions"). What the
// experiments actually probe is *where* one level of Strassen recursion
// overtakes the machine's DGEMM, and that crossover is a property of the
// DGEMM implementation style -- which the profiles vary:
//
//  * rs6000: cache-blocked, packed, register-tiled micro-kernel
//    (superscalar-RISC style, the best of the three).
//  * c90:    outer-product DAXPY sweeps over full columns, no packing
//    (vector-machine style: long unit-stride streams, cache-oblivious).
//  * t3d:    blocked but unpacked with small tiles (small-cache
//    microprocessor style).
#pragma once

#include <string>
#include <type_traits>

#include "support/config.hpp"

namespace strassen::blas {

/// Identifies a DGEMM implementation style (a "machine").
enum class Machine {
  rs6000,  ///< packed cache-blocked kernel
  c90,     ///< column-sweep vector style
  t3d,     ///< small-tile blocked, unpacked
};

/// All three profiles in a fixed order (for sweeps over "machines").
inline constexpr Machine kAllMachines[] = {Machine::rs6000, Machine::c90,
                                           Machine::t3d};

/// Human-readable profile name ("RS/6000", "C90", "T3D").
std::string machine_name(Machine m);

/// Cache-blocking parameters used by the blocked kernels.
struct GemmBlocking {
  index_t mc;  ///< rows of the packed A block
  index_t kc;  ///< depth of the packed A/B blocks
  index_t nc;  ///< columns of the packed B block
};

/// Blocking parameters for a profile. For rs6000 (the packed path) these
/// are derived from the *active micro-kernel's* MR/NR and the detected
/// L1/L2/L3 sizes (see blas/kernels.hpp), so they change when the kernel
/// does; c90/t3d keep their fixed historical values. Deterministic per
/// (kernel, machine) for the life of the process.
GemmBlocking blocking_for(Machine m);

/// Float blocking for a profile: the same cache-budget derivation with
/// sizeof(float) and the active *float* kernel's MR/NR, so float blocks
/// fill the caches as fully as double blocks do (kc/mc/nc roughly double).
GemmBlocking blocking_for_f(Machine m);

/// Element-type generic access: blocking_for_t<double> == blocking_for.
template <class T>
inline GemmBlocking blocking_for_t(Machine m) {
  if constexpr (std::is_same_v<T, float>) {
    return blocking_for_f(m);
  } else {
    return blocking_for(m);
  }
}

/// Process-wide active profile (defaults to rs6000). The Strassen code and
/// the benchmarks select the "machine" once and every dgemm call follows it.
Machine active_machine();
void set_active_machine(Machine m);

/// RAII switch of the active machine profile.
class ScopedMachine {
 public:
  explicit ScopedMachine(Machine m) : prev_(active_machine()) {
    set_active_machine(m);
  }
  ScopedMachine(const ScopedMachine&) = delete;
  ScopedMachine& operator=(const ScopedMachine&) = delete;
  ~ScopedMachine() { set_active_machine(prev_); }

 private:
  Machine prev_;
};

}  // namespace strassen::blas
