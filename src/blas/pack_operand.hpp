// Prepacked-operand handles and the per-call packed-panel cache.
//
// The packed loop nest (packed_loop.hpp) re-packs A and B on every call:
// fine for one large product, pure overhead for a serving workload that
// multiplies thousands of requests against the same B weights, and for the
// Strassen product sweep, where one operand image can be consumed by every
// nc-column strip of a product. Huang et al. ("Implementing Strassen's
// Algorithm with BLIS", arXiv:1605.01078) locate the practical Strassen
// crossover exactly in this packing traffic, and every inference stack
// ships the same remedy for the serving half: prepack the weights once
// (mkldnn's gemm_pack / cblas_?gemm_pack mold) and stream the panels on
// every call.
//
// Two layers live here:
//
//  * PackedOperandT<T> -- an opaque, kernel-stamped handle holding the
//    full packed image of one operand (A or B) laid out exactly as the
//    loop nest's scratch packing would produce it, block by block over the
//    (ic, pc) / (jc, pc) grid of the blocking it was packed for. A consult
//    verifies the stamp (micro-kernel name + blocking + source identity)
//    and is a *hard miss* on any mismatch -- the same discipline as
//    core::tuned_policy, because panels packed for one register tile are
//    garbage to another.
//
//  * PanelCacheT<T> -- a per-call cache of packed operand images carved
//    from the caller's existing arena reservation, keyed by (side, source
//    base, strides, shape) under the active kernel. The fused Strassen
//    sweep registers the pure single-source gamma = +1 quadrant operands
//    whose packed image the loop nest would otherwise rebuild for every
//    nc-column strip; the image is packed once on first use and streamed
//    thereafter, with hit/miss counters that surface in DgefmmStats.
//
// Layout of a packed image (identical for handle and cache): the source is
// walked in the exact (outer strip, pc) order of packed_gemm_multi, each
// block packed by the active kernel's pack_a/pack_b into MR-row / NR-column
// micro-panels, appended contiguously. Offsets are closed-form (see
// packed_a_offset / packed_b_offset), so the streaming consumer performs no
// lookup. Because packing a single gamma = 1 term is a pure reshaping copy,
// the streamed bytes equal the bytes a fresh pack would produce -- results
// with packing on and off are bitwise identical by construction.
#pragma once

#include <cstddef>

#include "blas/kernels.hpp"
#include "blas/machine.hpp"
#include "blas/packed_loop.hpp"
#include "support/aligned_buffer.hpp"
#include "support/matrix.hpp"

namespace strassen::blas {

/// Opaque prepacked operand: the packed image of one op(A) or op(B) plus
/// the stamp a consult verifies. Move-only; the image lives in `owned`
/// (when packed into handle-owned memory) or caller storage (`ext`).
template <class T>
struct PackedOperandT {
  /// Micro-kernel stamp (KernelInfoT<T>::name) the image was packed under.
  /// A consult under any other active kernel is a hard miss.
  char kernel[48] = {};
  char which = 0;        ///< 'a' or 'b': which operand side the image packs
  GemmBlocking bk{};     ///< blocking the (strip, pc) grid was walked with
  index_t rows = 0;      ///< logical op-view shape: op(A) is rows x cols
  index_t cols = 0;
  const T* src = nullptr;  ///< source identity: base pointer and strides of
  index_t rs = 0;          ///< the view that was packed; a consult against
  index_t cs = 0;          ///< any other view is a hard miss
  std::size_t elems = 0;   ///< image size in elements

  const T* ext = nullptr;    ///< caller-storage image (null when owned)
  AlignedBufferT<T> owned;   ///< handle-owned image storage

  PackedOperandT() = default;
  PackedOperandT(PackedOperandT&&) noexcept = default;
  PackedOperandT& operator=(PackedOperandT&&) noexcept = default;
  PackedOperandT(const PackedOperandT&) = delete;
  PackedOperandT& operator=(const PackedOperandT&) = delete;

  /// The packed image, wherever it lives.
  const T* data() const { return ext != nullptr ? ext : owned.data(); }

  /// True when the handle holds an image (a default-constructed or
  /// moved-from handle does not).
  bool valid() const { return data() != nullptr && which != 0; }
};

using PackedOperand = PackedOperandT<double>;
using PackedOperandF = PackedOperandT<float>;

/// Elements of the packed image of an m x k op(A) / k x n op(B) under the
/// current active kernel and rs6000 blocking for T (the packed path's
/// blocking). Size queries for packing into caller-provided storage; the
/// result changes with the active kernel, exactly as the stamp demands.
template <class T>
[[nodiscard]] std::size_t gefmm_pack_a_elements(index_t m, index_t k);
template <class T>
[[nodiscard]] std::size_t gefmm_pack_b_elements(index_t k, index_t n);

/// Packs op(A) (an m x k view, column- or row-major) into a fresh
/// handle-owned image. The buffer allocation is the handle's only fallible
/// acquisition (support/aligned_buffer.hpp fault site buffer_alloc); may
/// throw std::bad_alloc.
template <class T>
[[nodiscard]] PackedOperandT<T> gefmm_pack_a(BasicView<const T> a);
template <class T>
[[nodiscard]] PackedOperandT<T> gefmm_pack_b(BasicView<const T> b);

/// Packs into caller-provided storage of `elems` elements (from an arena
/// slice or a long-lived weights cache). `elems` must be at least the
/// matching size query; throws strassen::Error otherwise. The storage must
/// outlive the handle. Performs no allocation.
template <class T>
[[nodiscard]] PackedOperandT<T> gefmm_pack_a(BasicView<const T> a, T* storage,
                                             std::size_t elems);
template <class T>
[[nodiscard]] PackedOperandT<T> gefmm_pack_b(BasicView<const T> b, T* storage,
                                             std::size_t elems);

/// Consult: true when the handle packs exactly this operand side and view
/// under the *currently* active kernel and blocking. Any mismatch -- stale
/// kernel stamp, different blocking, different source pointer/strides/shape
/// -- is a hard miss (false), never a partial answer.
template <class T>
[[nodiscard]] bool packed_operand_matches(const PackedOperandT<T>& h,
                                          char which, BasicView<const T> v);

// ---------------------------------------------------------------------------
// Packed-image geometry (shared by the handle packer, the panel cache, and
// the streaming branch of packed_gemm_multi).
// ---------------------------------------------------------------------------

inline std::size_t packed_round_up(index_t x, index_t mult) {
  return static_cast<std::size_t>((x + mult - 1) / mult) *
         static_cast<std::size_t>(mult);
}

/// Total elements of a packed op(A) image: one round_up(mc_eff, mr) x k
/// slab per mc row strip.
inline std::size_t packed_a_total(const GemmBlocking& bk, index_t mr,
                                  index_t m, index_t k) {
  const std::size_t full = static_cast<std::size_t>(m / bk.mc);
  std::size_t rows = full * packed_round_up(bk.mc, mr);
  if (m % bk.mc != 0) rows += packed_round_up(m % bk.mc, mr);
  return rows * static_cast<std::size_t>(k);
}

/// Total elements of a packed op(B) image: one round_up(nc_eff, nr) x k
/// slab per nc column strip.
inline std::size_t packed_b_total(const GemmBlocking& bk, index_t nr,
                                  index_t k, index_t n) {
  const std::size_t full = static_cast<std::size_t>(n / bk.nc);
  std::size_t cols = full * packed_round_up(bk.nc, nr);
  if (n % bk.nc != 0) cols += packed_round_up(n % bk.nc, nr);
  return cols * static_cast<std::size_t>(k);
}

/// Offset of the (ic, pc) block inside a packed op(A) image of an m x k
/// operand. Blocks are stored strip-major: all pc blocks of row strip ic
/// before the next strip; every strip before `ic` is a full mc strip.
inline std::size_t packed_a_offset(const GemmBlocking& bk, index_t mr,
                                   index_t m, index_t k, index_t ic,
                                   index_t pc) {
  const index_t mc_eff = (m - ic < bk.mc) ? (m - ic) : bk.mc;
  return static_cast<std::size_t>(ic / bk.mc) * packed_round_up(bk.mc, mr) *
             static_cast<std::size_t>(k) +
         packed_round_up(mc_eff, mr) * static_cast<std::size_t>(pc);
}

/// Offset of the (jc, pc) block inside a packed op(B) image of a k x n
/// operand (column-strip-major).
inline std::size_t packed_b_offset(const GemmBlocking& bk, index_t nr,
                                   index_t k, index_t n, index_t jc,
                                   index_t pc) {
  const index_t nc_eff = (n - jc < bk.nc) ? (n - jc) : bk.nc;
  return static_cast<std::size_t>(jc / bk.nc) * packed_round_up(bk.nc, nr) *
             static_cast<std::size_t>(k) +
         packed_round_up(nc_eff, nr) * static_cast<std::size_t>(pc);
}

/// Blocks a fresh pack of this operand performs (the unit the pack hit /
/// miss counters count in): op(A) packs once per (jc, pc, ic), op(B) once
/// per (jc, pc).
count_t packed_a_blocks(const GemmBlocking& bk, index_t m, index_t n,
                        index_t k);
count_t packed_b_blocks(const GemmBlocking& bk, index_t n, index_t k);

// ---------------------------------------------------------------------------
// Per-call packed-panel cache
// ---------------------------------------------------------------------------

/// Fixed-capacity cache of packed operand images over caller-provided slab
/// storage (carved from the gefmm arena reservation, so the workspace
/// predictor's prediction == peak invariant holds with the cache on).
/// Entries are registered up front by the schedule that owns the call;
/// acquire() packs an entry's image on first use (a miss per packed block)
/// and streams it on every use (a hit per streamed block). Unregistered
/// sources miss and fall back to fresh packing. Single-threaded by
/// contract: registration and acquire() happen on the submitting thread
/// before any fan-out; workers only read the images.
template <class T>
class PanelCacheT {
 public:
  static constexpr int kMaxEntries = 8;

  PanelCacheT(const GemmBlocking& bk, T* slab, std::size_t slab_elems)
      : bk_(bk), slab_(slab), slab_elems_(slab_elems) {}
  PanelCacheT(const PanelCacheT&) = delete;
  PanelCacheT& operator=(const PanelCacheT&) = delete;

  /// Registers one cacheable operand image: side 'a' or 'b', the exact
  /// source view (base, strides, shape) the schedule will present at
  /// acquire time. Returns false (entry ignored) when the entry table or
  /// the slab is full -- the schedule then simply packs fresh.
  bool register_entry(char which, const T* src, index_t rs, index_t cs,
                      index_t rows, index_t cols);

  /// The packed image for a single-source gamma = +1 operand term, packing
  /// it into the slab on first use, or nullptr when the source was never
  /// registered (caller packs fresh). Counters: a build adds one miss per
  /// block packed; the caller adds hits for the blocks it streams.
  const T* acquire(char which, const T* src, index_t rs, index_t cs,
                   index_t rows, index_t cols);

  void note_hits(count_t n) { hits_ += n; }
  void note_misses(count_t n) { misses_ += n; }
  count_t hits() const { return hits_; }
  count_t misses() const { return misses_; }

  /// Slab elements the registered entries occupy (<= slab_elems).
  std::size_t used_elems() const { return used_; }

 private:
  struct Entry {
    char which = 0;
    const T* src = nullptr;
    index_t rs = 0, cs = 0, rows = 0, cols = 0;
    T* img = nullptr;
    std::size_t elems = 0;
    bool filled = false;
  };

  GemmBlocking bk_;
  T* slab_ = nullptr;
  std::size_t slab_elems_ = 0;
  std::size_t used_ = 0;
  Entry entries_[kMaxEntries];
  int n_ = 0;
  count_t hits_ = 0;
  count_t misses_ = 0;
};

using PanelCache = PanelCacheT<double>;
using PanelCacheF = PanelCacheT<float>;

extern template class PanelCacheT<double>;
extern template class PanelCacheT<float>;

}  // namespace strassen::blas
