// Kernel selection: CPUID detection, the STRASSEN_KERNEL override, and the
// process-wide active-kernel switch.
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "blas/kernels.hpp"

namespace strassen::blas {

namespace {

// True when the running CPU executes the variant's instructions. The
// GCC/Clang builtin consults CPUID once and caches the answer.
bool cpu_executes(KernelArch arch) {
  switch (arch) {
    case KernelArch::scalar:
      return true;
    case KernelArch::avx2:
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("fma") != 0;
#else
      return false;
#endif
    case KernelArch::avx512:
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

// Resolves the STRASSEN_KERNEL override; empty, "auto", unknown names, and
// unsupported variants all yield auto-detection.
KernelArch initial_kernel() {
  const char* env = std::getenv("STRASSEN_KERNEL");
  if (env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    for (const KernelArch arch : kAllKernelArches) {
      if (std::strcmp(env, kernel_arch_name(arch)) == 0 &&
          kernel_supported(arch)) {
        return arch;
      }
    }
  }
  return best_supported_kernel();
}

std::atomic<const KernelInfo*>& active_kernel_slot() {
  static std::atomic<const KernelInfo*> slot{kernel_info(initial_kernel())};
  return slot;
}

}  // namespace

const char* kernel_arch_name(KernelArch arch) {
  switch (arch) {
    case KernelArch::scalar:
      return "scalar";
    case KernelArch::avx2:
      return "avx2";
    case KernelArch::avx512:
      return "avx512";
  }
  return "?";
}

const KernelInfo* kernel_info(KernelArch arch) {
  switch (arch) {
    case KernelArch::scalar:
      return detail::kernel_scalar();
    case KernelArch::avx2:
      return detail::kernel_avx2();
    case KernelArch::avx512:
      return detail::kernel_avx512();
  }
  return nullptr;
}

const KernelInfoF* kernel_info_f(KernelArch arch) {
  switch (arch) {
    case KernelArch::scalar:
      return detail::kernel_scalar_f();
    case KernelArch::avx2:
      return detail::kernel_avx2_f();
    case KernelArch::avx512:
      return detail::kernel_avx512_f();
  }
  return nullptr;
}

bool kernel_compiled(KernelArch arch) { return kernel_info(arch) != nullptr; }

bool kernel_supported(KernelArch arch) {
  return kernel_compiled(arch) && cpu_executes(arch);
}

KernelArch best_supported_kernel() {
  if (kernel_supported(KernelArch::avx512)) return KernelArch::avx512;
  if (kernel_supported(KernelArch::avx2)) return KernelArch::avx2;
  return KernelArch::scalar;
}

const KernelInfo& active_kernel() {
  // Acquire pairs with the release in set_active_kernel: the pointee is a
  // function-local static initialized on whichever thread first touched the
  // table, so the pointer publication must carry a happens-before edge.
  return *active_kernel_slot().load(std::memory_order_acquire);
}

const KernelInfoF& active_kernel_f() {
  // Both element-type tables of a family are compiled together, so the
  // float table of the active family always exists.
  return *kernel_info_f(active_kernel().arch);
}

void set_active_kernel(KernelArch arch) {
  if (!kernel_supported(arch)) {
    throw std::invalid_argument(std::string("kernel variant not supported "
                                            "on this binary/CPU: ") +
                                kernel_arch_name(arch));
  }
  active_kernel_slot().store(kernel_info(arch), std::memory_order_release);
}

}  // namespace strassen::blas
