// AVX-512F kernel variant. The double kernel is an 8x8 register tile held
// in 8 zmm accumulators -- eight independent FMA chains, enough to cover
// the FMA latency at two issues per cycle; the float kernel is the same
// shape in float lanes, 16x8 (one 16-float zmm per A column). Compiled
// with -mavx512f only when CMake's compiler probe succeeds; otherwise
// degrades to nullptr stubs.
//
// As in the AVX2 TU, packing/write-back/vector combines come from the
// generic templates instantiated here, inheriting the -mavx512f flags.
#include "blas/kernels.hpp"

#if defined(STRASSEN_BUILD_AVX512)

#include <immintrin.h>

#include "blas/kernels_generic.hpp"

namespace strassen::blas::detail {

namespace {

constexpr index_t kAvx512MR = 8;
constexpr index_t kAvx512NR = 8;

constexpr index_t kAvx512MRf = 16;
constexpr index_t kAvx512NRf = 8;

constexpr KernelArch kA = KernelArch::avx512;

// A panels are 64-byte aligned (8-double columns in a 64-byte-aligned
// buffer), so each A column is one aligned zmm load; B is reached through
// scalar broadcasts only.
void micro_kernel_8x8(index_t kc, const double* a, const double* b,
                      double* acc) {
  __m512d c[kAvx512NR];
  for (int j = 0; j < kAvx512NR; ++j) c[j] = _mm512_setzero_pd();
  for (index_t p = 0; p < kc; ++p) {
    const __m512d av = _mm512_load_pd(a + p * kAvx512MR);
    const double* bp = b + p * kAvx512NR;
#pragma GCC unroll 8
    for (int j = 0; j < kAvx512NR; ++j) {
      c[j] = _mm512_fmadd_pd(av, _mm512_set1_pd(bp[j]), c[j]);
    }
  }
  for (int j = 0; j < kAvx512NR; ++j) {
    _mm512_store_pd(acc + j * kAvx512MR, c[j]);
  }
}

// Float twin: each 16-float A column is one aligned zmm load, so the loop
// body is identical with twice the lanes per FMA.
void micro_kernel_16x8_f(index_t kc, const float* a, const float* b,
                         float* acc) {
  __m512 c[kAvx512NRf];
  for (int j = 0; j < kAvx512NRf; ++j) c[j] = _mm512_setzero_ps();
  for (index_t p = 0; p < kc; ++p) {
    const __m512 av = _mm512_load_ps(a + p * kAvx512MRf);
    const float* bp = b + p * kAvx512NRf;
#pragma GCC unroll 8
    for (int j = 0; j < kAvx512NRf; ++j) {
      c[j] = _mm512_fmadd_ps(av, _mm512_set1_ps(bp[j]), c[j]);
    }
  }
  for (int j = 0; j < kAvx512NRf; ++j) {
    _mm512_store_ps(acc + j * kAvx512MRf, c[j]);
  }
}

const KernelInfo kAvx512Kernel = {
    kA,
    "avx512-8x8",
    kAvx512MR,
    kAvx512NR,
    &micro_kernel_8x8,
    &pack_a_comb_t<kA, double, kAvx512MR>,
    &pack_b_comb_t<kA, double, kAvx512NR>,
    &write_tile_t<kA, double, kAvx512MR>,
    &vadd_t<kA, double>,
    &vsub_t<kA, double>,
    &vaxpby_t<kA, double>,
};

const KernelInfoF kAvx512KernelF = {
    kA,
    "avx512-16x8-f32",
    kAvx512MRf,
    kAvx512NRf,
    &micro_kernel_16x8_f,
    &pack_a_comb_t<kA, float, kAvx512MRf>,
    &pack_b_comb_t<kA, float, kAvx512NRf>,
    &write_tile_t<kA, float, kAvx512MRf>,
    &vadd_t<kA, float>,
    &vsub_t<kA, float>,
    &vaxpby_t<kA, float>,
};

static_assert(kAvx512MR <= kMaxMRT<double> && kAvx512NR <= kMaxNRT<double>,
              "avx512 double tile exceeds the pack-buffer padding bound");
static_assert(kAvx512MRf <= kMaxMRT<float> && kAvx512NRf <= kMaxNRT<float>,
              "avx512 float tile exceeds the pack-buffer padding bound");

}  // namespace

const KernelInfo* kernel_avx512() { return &kAvx512Kernel; }
const KernelInfoF* kernel_avx512_f() { return &kAvx512KernelF; }

}  // namespace strassen::blas::detail

#else  // !STRASSEN_BUILD_AVX512

namespace strassen::blas::detail {

const KernelInfo* kernel_avx512() { return nullptr; }
const KernelInfoF* kernel_avx512_f() { return nullptr; }

}  // namespace strassen::blas::detail

#endif
