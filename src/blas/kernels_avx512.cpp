// AVX-512F kernel variant: an 8x8 register tile held in 8 zmm accumulators
// -- eight independent FMA chains, enough to cover the FMA latency at two
// issues per cycle. Compiled with -mavx512f only when CMake's compiler
// probe succeeds; otherwise degrades to a nullptr stub.
//
// As in the AVX2 TU, packing/write-back/vector combines come from the
// generic templates instantiated here, inheriting the -mavx512f flags.
#include "blas/kernels.hpp"

#if defined(STRASSEN_BUILD_AVX512)

#include <immintrin.h>

#include "blas/kernels_generic.hpp"

namespace strassen::blas::detail {

namespace {

constexpr index_t kAvx512MR = 8;
constexpr index_t kAvx512NR = 8;

constexpr KernelArch kA = KernelArch::avx512;

// A panels are 64-byte aligned (8-double columns in a 64-byte-aligned
// buffer), so each A column is one aligned zmm load; B is reached through
// scalar broadcasts only.
void micro_kernel_8x8(index_t kc, const double* a, const double* b,
                      double* acc) {
  __m512d c[kAvx512NR];
  for (int j = 0; j < kAvx512NR; ++j) c[j] = _mm512_setzero_pd();
  for (index_t p = 0; p < kc; ++p) {
    const __m512d av = _mm512_load_pd(a + p * kAvx512MR);
    const double* bp = b + p * kAvx512NR;
#pragma GCC unroll 8
    for (int j = 0; j < kAvx512NR; ++j) {
      c[j] = _mm512_fmadd_pd(av, _mm512_set1_pd(bp[j]), c[j]);
    }
  }
  for (int j = 0; j < kAvx512NR; ++j) {
    _mm512_store_pd(acc + j * kAvx512MR, c[j]);
  }
}

const KernelInfo kAvx512Kernel = {
    kA,
    "avx512-8x8",
    kAvx512MR,
    kAvx512NR,
    &micro_kernel_8x8,
    &pack_a_comb_t<kA, kAvx512MR>,
    &pack_b_comb_t<kA, kAvx512NR>,
    &write_tile_t<kA, kAvx512MR>,
    &vadd_t<kA>,
    &vsub_t<kA>,
    &vaxpby_t<kA>,
};

static_assert(kAvx512MR <= kMaxMR && kAvx512NR <= kMaxNR,
              "avx512 tile exceeds the pack-buffer padding bound");

}  // namespace

const KernelInfo* kernel_avx512() { return &kAvx512Kernel; }

}  // namespace strassen::blas::detail

#else  // !STRASSEN_BUILD_AVX512

namespace strassen::blas::detail {

const KernelInfo* kernel_avx512() { return nullptr; }

}  // namespace strassen::blas::detail

#endif
