#include "blas/level1.hpp"

#include <cassert>

namespace strassen::blas {

void dcopy(index_t n, const double* x, index_t incx, double* y, index_t incy) {
  assert(n >= 0 && incx > 0 && incy > 0);
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) y[i] = x[i];
    return;
  }
  for (index_t i = 0; i < n; ++i) y[i * incy] = x[i * incx];
}

void dscal(index_t n, double alpha, double* x, index_t incx) {
  assert(n >= 0 && incx > 0);
  if (incx == 1) {
    for (index_t i = 0; i < n; ++i) x[i] *= alpha;
    return;
  }
  for (index_t i = 0; i < n; ++i) x[i * incx] *= alpha;
}

void daxpy(index_t n, double alpha, const double* x, index_t incx, double* y,
           index_t incy) {
  assert(n >= 0 && incx > 0 && incy > 0);
  if (alpha == 0.0) return;
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
    return;
  }
  for (index_t i = 0; i < n; ++i) y[i * incy] += alpha * x[i * incx];
}

double ddot(index_t n, const double* x, index_t incx, const double* y,
            index_t incy) {
  assert(n >= 0 && incx > 0 && incy > 0);
  double sum = 0.0;
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) sum += x[i] * y[i];
    return sum;
  }
  for (index_t i = 0; i < n; ++i) sum += x[i * incx] * y[i * incy];
  return sum;
}

}  // namespace strassen::blas
