#include "blas/level1.hpp"

#include <cassert>

namespace strassen::blas {

namespace {

template <class T>
void copy_t(index_t n, const T* x, index_t incx, T* y, index_t incy) {
  assert(n >= 0 && incx > 0 && incy > 0);
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) y[i] = x[i];
    return;
  }
  for (index_t i = 0; i < n; ++i) y[i * incy] = x[i * incx];
}

template <class T>
void scal_t(index_t n, T alpha, T* x, index_t incx) {
  assert(n >= 0 && incx > 0);
  if (incx == 1) {
    for (index_t i = 0; i < n; ++i) x[i] *= alpha;
    return;
  }
  for (index_t i = 0; i < n; ++i) x[i * incx] *= alpha;
}

template <class T>
void axpy_t(index_t n, T alpha, const T* x, index_t incx, T* y,
            index_t incy) {
  assert(n >= 0 && incx > 0 && incy > 0);
  if (alpha == T(0)) return;
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
    return;
  }
  for (index_t i = 0; i < n; ++i) y[i * incy] += alpha * x[i * incx];
}

template <class T>
T dot_t(index_t n, const T* x, index_t incx, const T* y, index_t incy) {
  assert(n >= 0 && incx > 0 && incy > 0);
  T sum = T(0);
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) sum += x[i] * y[i];
    return sum;
  }
  for (index_t i = 0; i < n; ++i) sum += x[i * incx] * y[i * incy];
  return sum;
}

}  // namespace

void dcopy(index_t n, const double* x, index_t incx, double* y,
           index_t incy) {
  copy_t<double>(n, x, incx, y, incy);
}

void scopy(index_t n, const float* x, index_t incx, float* y, index_t incy) {
  copy_t<float>(n, x, incx, y, incy);
}

void dscal(index_t n, double alpha, double* x, index_t incx) {
  scal_t<double>(n, alpha, x, incx);
}

void sscal(index_t n, float alpha, float* x, index_t incx) {
  scal_t<float>(n, alpha, x, incx);
}

void daxpy(index_t n, double alpha, const double* x, index_t incx, double* y,
           index_t incy) {
  axpy_t<double>(n, alpha, x, incx, y, incy);
}

void saxpy(index_t n, float alpha, const float* x, index_t incx, float* y,
           index_t incy) {
  axpy_t<float>(n, alpha, x, incx, y, incy);
}

double ddot(index_t n, const double* x, index_t incx, const double* y,
            index_t incy) {
  return dot_t<double>(n, x, incx, y, incy);
}

float sdot(index_t n, const float* x, index_t incx, const float* y,
           index_t incy) {
  return dot_t<float>(n, x, incx, y, incy);
}

}  // namespace strassen::blas
