#include "blas/gemm.hpp"

#include <cassert>
#include <vector>

#include "blas/kernels.hpp"
#include "support/aligned_buffer.hpp"
#include "support/opcount.hpp"

namespace strassen::blas {

namespace {

using detail::kMR;
using detail::kNR;

// Scales C <- beta * C (handles beta == 0 by assignment so NaNs in an
// uninitialized C never propagate, per the BLAS contract).
void scale_c(index_t m, index_t n, double beta, double* c, index_t ldc) {
  if (beta == 1.0) return;
  if (beta == 0.0) {
    for (index_t j = 0; j < n; ++j) {
      double* col = c + j * ldc;
      for (index_t i = 0; i < m; ++i) col[i] = 0.0;
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      double* col = c + j * ldc;
      for (index_t i = 0; i < m; ++i) col[i] *= beta;
    }
  }
}

// Writes a micro-tile accumulator into C: C <- alpha*acc + beta_eff*C over
// the valid (rows x cols) corner.
void write_tile(const double* acc, index_t rows, index_t cols, double alpha,
                double beta_eff, double* c, index_t ldc) {
  if (beta_eff == 0.0) {
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        c[i + j * ldc] = alpha * acc[i + j * kMR];
      }
    }
  } else if (beta_eff == 1.0) {
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        c[i + j * ldc] += alpha * acc[i + j * kMR];
      }
    }
  } else {
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        c[i + j * ldc] = alpha * acc[i + j * kMR] + beta_eff * c[i + j * ldc];
      }
    }
  }
}

// Per-thread packing buffers. These belong to the DGEMM implementation
// (the vendor BLAS on the paper's machines has the same kind of internal
// scratch) and are deliberately *not* drawn from the Strassen workspace
// arena: Table 1 counts Strassen temporaries, not BLAS internals.
struct PackBuffers {
  AlignedBuffer a_pack;
  AlignedBuffer b_pack;
  void ensure(std::size_t a_need, std::size_t b_need) {
    if (a_pack.size() < a_need) a_pack = AlignedBuffer(a_need);
    if (b_pack.size() < b_need) b_pack = AlignedBuffer(b_need);
  }
};

PackBuffers& pack_buffers() {
  thread_local PackBuffers bufs;
  return bufs;
}

// Packed, cache-blocked DGEMM (GotoBLAS structure).
void gemm_packed(const GemmBlocking& bk, index_t m, index_t n, index_t k,
                 double alpha, const double* a, index_t a_rs, index_t a_cs,
                 const double* b, index_t b_rs, index_t b_cs, double beta,
                 double* c, index_t ldc) {
  PackBuffers& bufs = pack_buffers();
  bufs.ensure(static_cast<std::size_t>(bk.mc + kMR) * bk.kc,
              static_cast<std::size_t>(bk.kc) * (bk.nc + kNR));
  double* a_pack = bufs.a_pack.data();
  double* b_pack = bufs.b_pack.data();

  double acc[kMR * kNR];

  for (index_t jc = 0; jc < n; jc += bk.nc) {
    const index_t nc = (n - jc < bk.nc) ? (n - jc) : bk.nc;
    for (index_t pc = 0; pc < k; pc += bk.kc) {
      const index_t kc = (k - pc < bk.kc) ? (k - pc) : bk.kc;
      const double beta_eff = (pc == 0) ? beta : 1.0;
      detail::pack_b(b + pc * b_rs + jc * b_cs, b_rs, b_cs, kc, nc, b_pack);
      for (index_t ic = 0; ic < m; ic += bk.mc) {
        const index_t mc = (m - ic < bk.mc) ? (m - ic) : bk.mc;
        detail::pack_a(a + ic * a_rs + pc * a_cs, a_rs, a_cs, mc, kc, a_pack);
        const index_t mc_panels = (mc + kMR - 1) / kMR;
        const index_t nc_panels = (nc + kNR - 1) / kNR;
        for (index_t jr = 0; jr < nc_panels; ++jr) {
          const double* bp = b_pack + jr * (kNR * kc);
          const index_t cols = (nc - jr * kNR < kNR) ? (nc - jr * kNR) : kNR;
          for (index_t ir = 0; ir < mc_panels; ++ir) {
            const double* ap = a_pack + ir * (kMR * kc);
            const index_t rows = (mc - ir * kMR < kMR) ? (mc - ir * kMR) : kMR;
            detail::micro_kernel(kc, ap, bp, acc);
            write_tile(acc, rows, cols, alpha, beta_eff,
                       c + (ic + ir * kMR) + (jc + jr * kNR) * ldc, ldc);
          }
        }
      }
    }
  }
}

// Vector-machine style DGEMM: for each column of C, sweep the columns of
// op(A) with DAXPY-like updates. Long unit-stride streams, no blocking.
void gemm_column_sweep(index_t m, index_t n, index_t k, double alpha,
                       const double* a, index_t a_rs, index_t a_cs,
                       const double* b, index_t b_rs, index_t b_cs,
                       double beta, double* c, index_t ldc) {
  scale_c(m, n, beta, c, ldc);
  for (index_t j = 0; j < n; ++j) {
    double* cj = c + j * ldc;
    for (index_t p = 0; p < k; ++p) {
      const double s = alpha * b[p * b_rs + j * b_cs];
      if (s == 0.0) continue;
      const double* ap = a + p * a_cs;
      if (a_rs == 1) {
        for (index_t i = 0; i < m; ++i) cj[i] += s * ap[i];
      } else {
        for (index_t i = 0; i < m; ++i) cj[i] += s * ap[i * a_rs];
      }
    }
  }
}

// Small-tile blocked DGEMM without packing (small-cache microprocessor
// style). Tiles are read in place, so strided (transposed) operands pay
// their natural penalty, as they did on the T3D.
void gemm_tiled(const GemmBlocking& bk, index_t m, index_t n, index_t k,
                double alpha, const double* a, index_t a_rs, index_t a_cs,
                const double* b, index_t b_rs, index_t b_cs, double beta,
                double* c, index_t ldc) {
  scale_c(m, n, beta, c, ldc);
  const index_t tile = bk.mc;  // square tiles for this profile
  for (index_t pc = 0; pc < k; pc += tile) {
    const index_t kc = (k - pc < tile) ? (k - pc) : tile;
    for (index_t jc = 0; jc < n; jc += tile) {
      const index_t nc = (n - jc < tile) ? (n - jc) : tile;
      for (index_t ic = 0; ic < m; ic += tile) {
        const index_t mc = (m - ic < tile) ? (m - ic) : tile;
        for (index_t j = 0; j < nc; ++j) {
          double* cj = c + ic + (jc + j) * ldc;
          for (index_t p = 0; p < kc; ++p) {
            const double s = alpha * b[(pc + p) * b_rs + (jc + j) * b_cs];
            const double* ap = a + (ic)*a_rs + (pc + p) * a_cs;
            if (a_rs == 1) {
              for (index_t i = 0; i < mc; ++i) cj[i] += s * ap[i];
            } else {
              for (index_t i = 0; i < mc; ++i) cj[i] += s * ap[i * a_rs];
            }
          }
        }
      }
    }
  }
}

void record_ops(index_t m, index_t n, index_t k, double alpha, double beta) {
  if (!opcount::enabled()) return;
  if (k > 0 && alpha != 0.0) {
    opcount::record_gemm(m, k, n, /*accumulate=*/beta != 0.0);
    if (alpha != 1.0) opcount::record_scale(static_cast<count_t>(m) * n);
  }
  if (beta != 0.0 && beta != 1.0) {
    opcount::record_scale(static_cast<count_t>(m) * n);
  }
}

}  // namespace

void dgemm_on(Machine machine, Trans transa, Trans transb, index_t m,
              index_t n, index_t k, double alpha, const double* a, index_t lda,
              const double* b, index_t ldb, double beta, double* c,
              index_t ldc) {
  assert(m >= 0 && n >= 0 && k >= 0);
  assert(lda >= 1 && ldb >= 1 && ldc >= (m > 0 ? m : 1));
  if (m == 0 || n == 0) return;
  record_ops(m, n, k, alpha, beta);
  if (k == 0 || alpha == 0.0) {
    scale_c(m, n, beta, c, ldc);
    return;
  }
  // Strides of op(A) (m x k) and op(B) (k x n) over the raw storage.
  const index_t a_rs = is_trans(transa) ? lda : 1;
  const index_t a_cs = is_trans(transa) ? 1 : lda;
  const index_t b_rs = is_trans(transb) ? ldb : 1;
  const index_t b_cs = is_trans(transb) ? 1 : ldb;

  switch (machine) {
    case Machine::rs6000:
      gemm_packed(blocking_for(machine), m, n, k, alpha, a, a_rs, a_cs, b,
                  b_rs, b_cs, beta, c, ldc);
      return;
    case Machine::c90:
      gemm_column_sweep(m, n, k, alpha, a, a_rs, a_cs, b, b_rs, b_cs, beta, c,
                        ldc);
      return;
    case Machine::t3d:
      gemm_tiled(blocking_for(machine), m, n, k, alpha, a, a_rs, a_cs, b, b_rs,
                 b_cs, beta, c, ldc);
      return;
  }
}

void dgemm(Trans transa, Trans transb, index_t m, index_t n, index_t k,
           double alpha, const double* a, index_t lda, const double* b,
           index_t ldb, double beta, double* c, index_t ldc) {
  dgemm_on(active_machine(), transa, transb, m, n, k, alpha, a, lda, b, ldb,
           beta, c, ldc);
}

void gemm_reference(Trans transa, Trans transb, index_t m, index_t n,
                    index_t k, double alpha, const double* a, index_t lda,
                    const double* b, index_t ldb, double beta, double* c,
                    index_t ldc) {
  const index_t a_rs = is_trans(transa) ? lda : 1;
  const index_t a_cs = is_trans(transa) ? 1 : lda;
  const index_t b_rs = is_trans(transb) ? ldb : 1;
  const index_t b_cs = is_trans(transb) ? 1 : ldb;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double sum = 0.0;
      for (index_t p = 0; p < k; ++p) {
        sum += a[i * a_rs + p * a_cs] * b[p * b_rs + j * b_cs];
      }
      double& cij = c[i + j * ldc];
      cij = alpha * sum + (beta == 0.0 ? 0.0 : beta * cij);
    }
  }
}

void gemm_view(double alpha, ConstView a, ConstView b, double beta,
               MutView c) {
  assert(a.cols == b.rows);
  assert(c.rows == a.rows && c.cols == b.cols);
  assert(c.col_major());
  assert(a.col_major() || a.row_major());
  assert(b.col_major() || b.row_major());
  const Trans ta = a.col_major() ? Trans::no : Trans::transpose;
  const Trans tb = b.col_major() ? Trans::no : Trans::transpose;
  const index_t lda = a.col_major() ? a.ld_col() : a.ld_row();
  const index_t ldb = b.col_major() ? b.ld_col() : b.ld_row();
  dgemm(ta, tb, c.rows, c.cols, a.cols, alpha, a.p, lda, b.p, ldb, beta, c.p,
        c.ld_col());
}

}  // namespace strassen::blas
