#include "blas/gemm.hpp"

#include <cassert>

#include "blas/pack_operand.hpp"
#include "blas/packed_loop.hpp"
#include "support/opcount.hpp"

namespace strassen::blas {

namespace {

// Scales C <- beta * C (handles beta == 0 by assignment so NaNs in an
// uninitialized C never propagate, per the BLAS contract).
template <class T>
void scale_c(index_t m, index_t n, T beta, T* c, index_t ldc) {
  if (beta == T(1)) return;
  if (beta == T(0)) {
    for (index_t j = 0; j < n; ++j) {
      T* col = c + j * ldc;
      for (index_t i = 0; i < m; ++i) col[i] = T(0);
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      T* col = c + j * ldc;
      for (index_t i = 0; i < m; ++i) col[i] *= beta;
    }
  }
}

// Packed, cache-blocked GEMM (GotoBLAS structure): the one-term,
// one-destination instantiation of the packed_gemm_multi skeleton.
template <class T>
void gemm_packed(const GemmBlocking& bk, index_t m, index_t n, index_t k,
                 T alpha, const T* a, index_t a_rs, index_t a_cs, const T* b,
                 index_t b_rs, index_t b_cs, T beta, T* c, index_t ldc) {
  PackCombT<T> ac;
  ac.term[0] = PackTermT<T>{a, a_rs, a_cs, T(1)};
  ac.n = 1;
  PackCombT<T> bc;
  bc.term[0] = PackTermT<T>{b, b_rs, b_cs, T(1)};
  bc.n = 1;
  const WriteDestT<T> dst{c, ldc, alpha, beta};
  packed_gemm_multi(bk, m, n, k, ac, bc, &dst, 1);
}

// Vector-machine style GEMM: for each column of C, sweep the columns of
// op(A) with AXPY-like updates. Long unit-stride streams, no blocking.
template <class T>
void gemm_column_sweep(index_t m, index_t n, index_t k, T alpha, const T* a,
                       index_t a_rs, index_t a_cs, const T* b, index_t b_rs,
                       index_t b_cs, T beta, T* c, index_t ldc) {
  scale_c(m, n, beta, c, ldc);
  for (index_t j = 0; j < n; ++j) {
    T* cj = c + j * ldc;
    for (index_t p = 0; p < k; ++p) {
      const T s = alpha * b[p * b_rs + j * b_cs];
      if (s == T(0)) continue;
      const T* ap = a + p * a_cs;
      if (a_rs == 1) {
        for (index_t i = 0; i < m; ++i) cj[i] += s * ap[i];
      } else {
        for (index_t i = 0; i < m; ++i) cj[i] += s * ap[i * a_rs];
      }
    }
  }
}

// Small-tile blocked GEMM without packing (small-cache microprocessor
// style). Tiles are read in place, so strided (transposed) operands pay
// their natural penalty, as they did on the T3D.
template <class T>
void gemm_tiled(const GemmBlocking& bk, index_t m, index_t n, index_t k,
                T alpha, const T* a, index_t a_rs, index_t a_cs, const T* b,
                index_t b_rs, index_t b_cs, T beta, T* c, index_t ldc) {
  scale_c(m, n, beta, c, ldc);
  const index_t tile = bk.mc;  // square tiles for this profile
  for (index_t pc = 0; pc < k; pc += tile) {
    const index_t kc = (k - pc < tile) ? (k - pc) : tile;
    for (index_t jc = 0; jc < n; jc += tile) {
      const index_t nc = (n - jc < tile) ? (n - jc) : tile;
      for (index_t ic = 0; ic < m; ic += tile) {
        const index_t mc = (m - ic < tile) ? (m - ic) : tile;
        for (index_t j = 0; j < nc; ++j) {
          T* cj = c + ic + (jc + j) * ldc;
          for (index_t p = 0; p < kc; ++p) {
            const T s = alpha * b[(pc + p) * b_rs + (jc + j) * b_cs];
            const T* ap = a + (ic)*a_rs + (pc + p) * a_cs;
            if (a_rs == 1) {
              for (index_t i = 0; i < mc; ++i) cj[i] += s * ap[i];
            } else {
              for (index_t i = 0; i < mc; ++i) cj[i] += s * ap[i * a_rs];
            }
          }
        }
      }
    }
  }
}

template <class T>
void record_ops(index_t m, index_t n, index_t k, T alpha, T beta) {
  if (!opcount::enabled()) return;
  if (k > 0 && alpha != T(0)) {
    opcount::record_gemm(m, k, n, /*accumulate=*/beta != T(0));
    if (alpha != T(1)) opcount::record_scale(static_cast<count_t>(m) * n);
  }
  if (beta != T(0) && beta != T(1)) {
    opcount::record_scale(static_cast<count_t>(m) * n);
  }
}

template <class T>
void gemm_on_t(Machine machine, Trans transa, Trans transb, index_t m,
               index_t n, index_t k, T alpha, const T* a, index_t lda,
               const T* b, index_t ldb, T beta, T* c, index_t ldc) {
  assert(m >= 0 && n >= 0 && k >= 0);
  assert(lda >= 1 && ldb >= 1 && ldc >= (m > 0 ? m : 1));
  if (m == 0 || n == 0) return;
  record_ops(m, n, k, alpha, beta);
  if (k == 0 || alpha == T(0)) {
    scale_c(m, n, beta, c, ldc);
    return;
  }
  // Strides of op(A) (m x k) and op(B) (k x n) over the raw storage.
  const index_t a_rs = is_trans(transa) ? lda : 1;
  const index_t a_cs = is_trans(transa) ? 1 : lda;
  const index_t b_rs = is_trans(transb) ? ldb : 1;
  const index_t b_cs = is_trans(transb) ? 1 : ldb;

  switch (machine) {
    case Machine::rs6000:
      gemm_packed(blocking_for_t<T>(machine), m, n, k, alpha, a, a_rs, a_cs,
                  b, b_rs, b_cs, beta, c, ldc);
      return;
    case Machine::c90:
      gemm_column_sweep(m, n, k, alpha, a, a_rs, a_cs, b, b_rs, b_cs, beta, c,
                        ldc);
      return;
    case Machine::t3d:
      gemm_tiled(blocking_for_t<T>(machine), m, n, k, alpha, a, a_rs, a_cs, b,
                 b_rs, b_cs, beta, c, ldc);
      return;
  }
}

template <class T>
void gemm_reference_t(Trans transa, Trans transb, index_t m, index_t n,
                      index_t k, T alpha, const T* a, index_t lda, const T* b,
                      index_t ldb, T beta, T* c, index_t ldc) {
  const index_t a_rs = is_trans(transa) ? lda : 1;
  const index_t a_cs = is_trans(transa) ? 1 : lda;
  const index_t b_rs = is_trans(transb) ? ldb : 1;
  const index_t b_cs = is_trans(transb) ? 1 : ldb;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      T sum = T(0);
      for (index_t p = 0; p < k; ++p) {
        sum += a[i * a_rs + p * a_cs] * b[p * b_rs + j * b_cs];
      }
      T& cij = c[i + j * ldc];
      cij = alpha * sum + (beta == T(0) ? T(0) : beta * cij);
    }
  }
}

template <class T>
void gemm_view_t(T alpha, BasicView<const T> a, BasicView<const T> b, T beta,
                 BasicView<T> c) {
  assert(a.cols == b.rows);
  assert(c.rows == a.rows && c.cols == b.cols);
  assert(c.col_major());
  assert(a.col_major() || a.row_major());
  assert(b.col_major() || b.row_major());
  const Trans ta = a.col_major() ? Trans::no : Trans::transpose;
  const Trans tb = b.col_major() ? Trans::no : Trans::transpose;
  const index_t lda = a.col_major() ? a.ld_col() : a.ld_row();
  const index_t ldb = b.col_major() ? b.ld_col() : b.ld_row();
  gemm_on_t<T>(active_machine(), ta, tb, c.rows, c.cols, a.cols, alpha, a.p,
               lda, b.p, ldb, beta, c.p, c.ld_col());
}

// Prepacked twin of gemm_view_t: same loop nest, same blocking, same
// write-back -- only the packing passes of the streamed sides are skipped.
// Every mismatch is a hard miss (false, C untouched) so the caller falls
// back to the plain path; a partial answer ("use the A handle, repack B")
// is allowed only when both consults agree with the same active dispatch.
template <class T>
bool gemm_view_prepacked_t(T alpha, BasicView<const T> a, BasicView<const T> b,
                           T beta, BasicView<T> c,
                           const PackedOperandT<T>* pa,
                           const PackedOperandT<T>* pb) {
  assert(a.cols == b.rows);
  assert(c.rows == a.rows && c.cols == b.cols);
  assert(c.col_major());
  if (pa == nullptr && pb == nullptr) return false;
  if (active_machine() != Machine::rs6000) return false;
  const index_t m = c.rows, n = c.cols, k = a.cols;
  // Shapes the packed nest never reaches (the plain path handles them as
  // pure C scaling) and alpha == 0 are misses, not silent no-ops.
  if (m == 0 || n == 0 || k == 0 || alpha == T(0)) return false;
  if (pa != nullptr && !packed_operand_matches(*pa, 'a', a)) return false;
  if (pb != nullptr && !packed_operand_matches(*pb, 'b', b)) return false;

  record_ops(m, n, k, alpha, beta);
  PackCombT<T> ac;
  ac.term[0] = PackTermT<T>{a.p, a.rs, a.cs, T(1)};
  ac.n = 1;
  PackCombT<T> bc;
  bc.term[0] = PackTermT<T>{b.p, b.rs, b.cs, T(1)};
  bc.n = 1;
  const WriteDestT<T> dst{c.p, c.ld_col(), alpha, beta};
  PackedStreamsT<T> streams;
  if (pa != nullptr) streams.a = pa->data();
  if (pb != nullptr) streams.b = pb->data();
  packed_gemm_multi(blocking_for_t<T>(Machine::rs6000), m, n, k, ac, bc, &dst,
                    1, streams);
  return true;
}

}  // namespace

void dgemm_on(Machine machine, Trans transa, Trans transb, index_t m,
              index_t n, index_t k, double alpha, const double* a, index_t lda,
              const double* b, index_t ldb, double beta, double* c,
              index_t ldc) {
  gemm_on_t<double>(machine, transa, transb, m, n, k, alpha, a, lda, b, ldb,
                    beta, c, ldc);
}

void sgemm_on(Machine machine, Trans transa, Trans transb, index_t m,
              index_t n, index_t k, float alpha, const float* a, index_t lda,
              const float* b, index_t ldb, float beta, float* c, index_t ldc) {
  gemm_on_t<float>(machine, transa, transb, m, n, k, alpha, a, lda, b, ldb,
                   beta, c, ldc);
}

void dgemm(Trans transa, Trans transb, index_t m, index_t n, index_t k,
           double alpha, const double* a, index_t lda, const double* b,
           index_t ldb, double beta, double* c, index_t ldc) {
  dgemm_on(active_machine(), transa, transb, m, n, k, alpha, a, lda, b, ldb,
           beta, c, ldc);
}

void sgemm(Trans transa, Trans transb, index_t m, index_t n, index_t k,
           float alpha, const float* a, index_t lda, const float* b,
           index_t ldb, float beta, float* c, index_t ldc) {
  sgemm_on(active_machine(), transa, transb, m, n, k, alpha, a, lda, b, ldb,
           beta, c, ldc);
}

void gemm_reference(Trans transa, Trans transb, index_t m, index_t n,
                    index_t k, double alpha, const double* a, index_t lda,
                    const double* b, index_t ldb, double beta, double* c,
                    index_t ldc) {
  gemm_reference_t<double>(transa, transb, m, n, k, alpha, a, lda, b, ldb,
                           beta, c, ldc);
}

void gemm_reference(Trans transa, Trans transb, index_t m, index_t n,
                    index_t k, float alpha, const float* a, index_t lda,
                    const float* b, index_t ldb, float beta, float* c,
                    index_t ldc) {
  gemm_reference_t<float>(transa, transb, m, n, k, alpha, a, lda, b, ldb,
                          beta, c, ldc);
}

void gemm_view(double alpha, ConstView a, ConstView b, double beta,
               MutView c) {
  gemm_view_t<double>(alpha, a, b, beta, c);
}

void gemm_view(float alpha, ConstViewF a, ConstViewF b, float beta,
               MutViewF c) {
  gemm_view_t<float>(alpha, a, b, beta, c);
}

bool gemm_view_prepacked(double alpha, ConstView a, ConstView b, double beta,
                         MutView c, const PackedOperandT<double>* pa,
                         const PackedOperandT<double>* pb) {
  return gemm_view_prepacked_t<double>(alpha, a, b, beta, c, pa, pb);
}

bool gemm_view_prepacked(float alpha, ConstViewF a, ConstViewF b, float beta,
                         MutViewF c, const PackedOperandT<float>* pa,
                         const PackedOperandT<float>* pb) {
  return gemm_view_prepacked_t<float>(alpha, a, b, beta, c, pa, pb);
}

}  // namespace strassen::blas
