// Level 3 BLAS DTRSM: triangular solve with multiple right-hand sides.
//
// Needed by the blocked LU factorization (src/solver), which is the second
// application study: Bailey, Lee & Simon's "Using Strassen's Algorithm to
// Accelerate the Solution of Linear Systems" (reference [3] of the paper)
// accelerates exactly this kernel pattern -- panel TRSM + trailing GEMM --
// by swapping the GEMM for Strassen.
#pragma once

#include "support/config.hpp"

namespace strassen::blas {

/// Which side the triangular matrix multiplies on.
enum class Side : char { left = 'L', right = 'R' };

/// Which triangle of A is referenced.
enum class Uplo : char { lower = 'L', upper = 'U' };

/// Whether A has an implicit unit diagonal.
enum class Diag : char { non_unit = 'N', unit = 'U' };

/// Solves op(A) * X = alpha * B (side == left) or X * op(A) = alpha * B
/// (side == right), overwriting B with X. A is the n x n (or m x m)
/// triangular matrix, B is m x n, both column-major.
void dtrsm(Side side, Uplo uplo, Trans transa, Diag diag, index_t m,
           index_t n, double alpha, const double* a, index_t lda, double* b,
           index_t ldb);

}  // namespace strassen::blas
