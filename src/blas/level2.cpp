#include "blas/level2.hpp"

#include <cassert>

#include "blas/level1.hpp"
#include "support/opcount.hpp"

namespace strassen::blas {

void dgemv(Trans trans, index_t m, index_t n, double alpha, const double* a,
           index_t lda, const double* x, index_t incx, double beta, double* y,
           index_t incy) {
  assert(m >= 0 && n >= 0 && lda >= (m > 0 ? m : 1));
  const index_t ylen = is_trans(trans) ? n : m;
  if (ylen == 0) return;

  if (beta == 0.0) {
    for (index_t i = 0; i < ylen; ++i) y[i * incy] = 0.0;
  } else if (beta != 1.0) {
    dscal(ylen, beta, y, incy);
  }
  if (alpha == 0.0 || m == 0 || n == 0) return;

  if (!is_trans(trans)) {
    // y += alpha * A x: accumulate columns of A scaled by x.
    for (index_t j = 0; j < n; ++j) {
      daxpy(m, alpha * x[j * incx], a + j * lda, 1, y, incy);
    }
  } else {
    // y_j += alpha * (A(:,j) . x).
    for (index_t j = 0; j < n; ++j) {
      y[j * incy] += alpha * ddot(m, a + j * lda, 1, x, incx);
    }
  }
  opcount::record_gemv(m, n);
}

void dger(index_t m, index_t n, double alpha, const double* x, index_t incx,
          const double* y, index_t incy, double* a, index_t lda) {
  assert(m >= 0 && n >= 0 && lda >= (m > 0 ? m : 1));
  if (m == 0 || n == 0 || alpha == 0.0) return;
  for (index_t j = 0; j < n; ++j) {
    daxpy(m, alpha * y[j * incy], x, incx, a + j * lda, 1);
  }
  opcount::record_ger(m, n);
}

}  // namespace strassen::blas
