#include "blas/level2.hpp"

#include <cassert>
#include <type_traits>

#include "blas/level1.hpp"
#include "support/opcount.hpp"

namespace strassen::blas {

namespace {

template <class T>
void gemv_t(Trans trans, index_t m, index_t n, T alpha, const T* a,
            index_t lda, const T* x, index_t incx, T beta, T* y,
            index_t incy) {
  assert(m >= 0 && n >= 0 && lda >= (m > 0 ? m : 1));
  const index_t ylen = is_trans(trans) ? n : m;
  if (ylen == 0) return;

  if (beta == T(0)) {
    for (index_t i = 0; i < ylen; ++i) y[i * incy] = T(0);
  } else if (beta != T(1)) {
    if constexpr (std::is_same_v<T, float>) {
      sscal(ylen, beta, y, incy);
    } else {
      dscal(ylen, beta, y, incy);
    }
  }
  if (alpha == T(0) || m == 0 || n == 0) return;

  if (!is_trans(trans)) {
    // y += alpha * A x: accumulate columns of A scaled by x.
    for (index_t j = 0; j < n; ++j) {
      if constexpr (std::is_same_v<T, float>) {
        saxpy(m, alpha * x[j * incx], a + j * lda, 1, y, incy);
      } else {
        daxpy(m, alpha * x[j * incx], a + j * lda, 1, y, incy);
      }
    }
  } else {
    // y_j += alpha * (A(:,j) . x).
    for (index_t j = 0; j < n; ++j) {
      if constexpr (std::is_same_v<T, float>) {
        y[j * incy] += alpha * sdot(m, a + j * lda, 1, x, incx);
      } else {
        y[j * incy] += alpha * ddot(m, a + j * lda, 1, x, incx);
      }
    }
  }
  opcount::record_gemv(m, n);
}

template <class T>
void ger_t(index_t m, index_t n, T alpha, const T* x, index_t incx,
           const T* y, index_t incy, T* a, index_t lda) {
  assert(m >= 0 && n >= 0 && lda >= (m > 0 ? m : 1));
  if (m == 0 || n == 0 || alpha == T(0)) return;
  for (index_t j = 0; j < n; ++j) {
    if constexpr (std::is_same_v<T, float>) {
      saxpy(m, alpha * y[j * incy], x, incx, a + j * lda, 1);
    } else {
      daxpy(m, alpha * y[j * incy], x, incx, a + j * lda, 1);
    }
  }
  opcount::record_ger(m, n);
}

}  // namespace

void dgemv(Trans trans, index_t m, index_t n, double alpha, const double* a,
           index_t lda, const double* x, index_t incx, double beta, double* y,
           index_t incy) {
  gemv_t<double>(trans, m, n, alpha, a, lda, x, incx, beta, y, incy);
}

void sgemv(Trans trans, index_t m, index_t n, float alpha, const float* a,
           index_t lda, const float* x, index_t incx, float beta, float* y,
           index_t incy) {
  gemv_t<float>(trans, m, n, alpha, a, lda, x, incx, beta, y, incy);
}

void dger(index_t m, index_t n, double alpha, const double* x, index_t incx,
          const double* y, index_t incy, double* a, index_t lda) {
  ger_t<double>(m, n, alpha, x, incx, y, incy, a, lda);
}

void sger(index_t m, index_t n, float alpha, const float* x, index_t incx,
          const float* y, index_t incy, float* a, index_t lda) {
  ger_t<float>(m, n, alpha, x, incx, y, incy, a, lda);
}

}  // namespace strassen::blas
