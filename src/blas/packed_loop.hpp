// Reusable packed-GEMM loop skeleton (GotoBLAS/BLIS structure), opened up
// for operand-fused Strassen in the style of Huang et al., "Implementing
// Strassen's Algorithm with BLIS" (arXiv:1605.01078).
//
// The classic packed GEMM packs one A block, one B block, and writes one C
// tile. This skeleton generalizes both ends of the pipeline:
//
//  * packing forms a *linear combination* of up to kPackMaxTerms equally
//    shaped source operands (gamma0*X0 + gamma1*X1 + ...) in the same single
//    pass that reshapes the data into micro-panels -- so Strassen's S/T
//    operand sums cost no extra memory traffic and no temporaries;
//
//  * the micro-kernel epilogue scatters one register accumulator into up to
//    kPackMaxDests destinations with independent alpha/beta scalars -- so
//    Strassen's U accumulations ride the C write-back that a plain GEMM
//    performs anyway.
//
// With one term and one destination this *is* the library's packed DGEMM /
// SGEMM (gemm.cpp routes through here); the fused Winograd schedule in
// src/core/winograd_fused.cpp is the other client. Everything is templated
// on the element type: PackCombT<double>/WriteDestT<double> drive the
// double kernels, the float instantiations drive the float kernels, through
// one shared loop nest.
#pragma once

#include <cassert>

#include "blas/machine.hpp"
#include "support/config.hpp"
#include "support/matrix.hpp"

namespace strassen::blas {

/// Maximum number of gamma-weighted sources one packing pass may combine.
/// Two per fused Strassen level; 4 covers two fused levels.
inline constexpr int kPackMaxTerms = 4;

/// Maximum number of destinations one micro-tile write-back may scatter to.
/// Two per fused Strassen level; 4 covers two fused levels.
inline constexpr int kPackMaxDests = 4;

/// One gamma-weighted source operand of a packing linear combination.
/// Element (i, j) of the term contributes gamma * p[i*rs + j*cs], so a
/// transposed operand view needs no physical transpose (rs = ld, cs = 1).
template <class T>
struct PackTermT {
  const T* p = nullptr;
  index_t rs = 1;
  index_t cs = 0;
  T gamma = T(1);
};

using PackTerm = PackTermT<double>;
using PackTermF = PackTermT<float>;

/// A linear combination of up to kPackMaxTerms equally shaped operands.
template <class T>
struct PackCombT {
  PackTermT<T> term[kPackMaxTerms];
  int n = 0;

  void add(BasicView<const T> v, T gamma) {
    assert(n < kPackMaxTerms);
    term[n++] = PackTermT<T>{v.p, v.rs, v.cs, gamma};
  }
};

using PackComb = PackCombT<double>;
using PackCombF = PackCombT<float>;

/// Builds a single-term combination from a view (the plain-GEMM case).
inline PackComb pack_comb(ConstView v, double gamma = 1.0) {
  PackComb c;
  c.add(v, gamma);
  return c;
}
inline PackCombF pack_comb(ConstViewF v, float gamma = 1.0f) {
  PackCombF c;
  c.add(v, gamma);
  return c;
}

/// One write-back destination: a column-major C block with its own scalars.
/// On the first k-panel the block receives alpha*tile + beta*C (beta == 0
/// assigns, so NaNs in uninitialized C never propagate); later k-panels
/// accumulate alpha*tile on top.
template <class T>
struct WriteDestT {
  T* c = nullptr;
  index_t ldc = 0;
  T alpha = T(1);
  T beta = T(1);
};

using WriteDest = WriteDestT<double>;
using WriteDestF = WriteDestT<float>;

/// Builds a WriteDest from a column-major view.
inline WriteDest write_dest(MutView v, double alpha, double beta) {
  assert(v.col_major());
  return WriteDest{v.p, v.ld_col(), alpha, beta};
}
inline WriteDestF write_dest(MutViewF v, float alpha, float beta) {
  assert(v.col_major());
  return WriteDestF{v.p, v.ld_col(), alpha, beta};
}

/// The skeleton: for every destination d,
///   C_d <- alpha_d * (sum_i gamma_i op(A_i)) * (sum_j gamma_j op(B_j))
///          + beta_d * C_d
/// in a single pass of the Goto loop nest, where the A combination is
/// m x k, the B combination k x n, and every C_d is m x n column-major.
/// The destinations must not overlap one another or the sources.
///
/// When the calling thread's gemm_threads() setting and the problem shape
/// allow (see packed_gemm_threads), the ic macro loop of every (jc, pc)
/// iteration is fanned out over the global thread pool: the caller packs B
/// once, workers pack disjoint A row blocks into their own thread-local
/// scratch and write disjoint C row partitions. The pc loop stays
/// sequential (one barrier per k-panel), so the arithmetic per C element
/// is identical for every thread count -- results are bitwise reproducible.
template <class T>
void packed_gemm_multi(const GemmBlocking& bk, index_t m, index_t n,
                       index_t k, const PackCombT<T>& a,
                       const PackCombT<T>& b, const WriteDestT<T>* dst,
                       int ndst);

/// Optional prepacked operand images for packed_gemm_multi. A non-null side
/// makes the loop nest stream micro-panels straight from the image (laid
/// out block-by-block as in blas/pack_operand.hpp, packed under the same
/// blocking and active kernel) and skip that side's packing pass and
/// scratch entirely. A streamed side's combination must be a single term
/// with gamma == 1 over the exact operand the image was packed from -- the
/// caller (gemm_view_prepacked, the fused panel cache) has already verified
/// the stamp; this layer only asserts the term shape.
template <class T>
struct PackedStreamsT {
  const T* a = nullptr;  ///< packed image of the full m x k op(A), or null
  const T* b = nullptr;  ///< packed image of the full k x n op(B), or null
};

using PackedStreams = PackedStreamsT<double>;
using PackedStreamsF = PackedStreamsT<float>;

/// packed_gemm_multi with prepacked-image streaming. Streamed panels are
/// byte-identical to what the skipped packing pass would have produced
/// (single-term gamma == 1 packing is a pure reshaping copy), so results
/// are bitwise identical to the non-streaming overload for every thread
/// count.
template <class T>
void packed_gemm_multi(const GemmBlocking& bk, index_t m, index_t n,
                       index_t k, const PackCombT<T>& a,
                       const PackCombT<T>& b, const WriteDestT<T>* dst,
                       int ndst, const PackedStreamsT<T>& streams);

/// Upper bound on the tasks one packed_gemm_multi call fans out.
inline constexpr int kMaxGemmTasks = 64;

/// The calling thread's intra-GEMM thread setting: 0 (default) resolves to
/// the global pool size, 1 forces the serial loop nest, larger values cap
/// the fan-out. Initialized per thread from STRASSEN_GEMM_THREADS. The
/// setting is thread-local on purpose: a pre-flight decision and the
/// compute it covers always agree, and tests/benches can pin a thread
/// count without racing other threads' GEMMs.
int gemm_threads();
void set_gemm_threads(int threads);

/// RAII switch of the calling thread's gemm_threads() setting.
class ScopedGemmThreads {
 public:
  explicit ScopedGemmThreads(int threads) : prev_(gemm_threads()) {
    set_gemm_threads(threads);
  }
  ScopedGemmThreads(const ScopedGemmThreads&) = delete;
  ScopedGemmThreads& operator=(const ScopedGemmThreads&) = delete;
  ~ScopedGemmThreads() { set_gemm_threads(prev_); }

 private:
  int prev_;
};

/// Number of tasks packed_gemm_multi would fan out for this blocking and
/// shape under the calling thread's current setting: 1 when the setting
/// forces serial or m spans fewer than two mc blocks, else the setting
/// (pool size when 0) clamped to the mc-block count and kMaxGemmTasks.
/// Deterministic in (setting, pool size, bk, shape); the GEFMM pre-flight
/// uses it to decide whether pool workers need warming.
int packed_gemm_threads(const GemmBlocking& bk, index_t m, index_t n,
                        index_t k);

/// Pre-allocates the calling thread's packing scratch for blocking `bk`
/// and element type T (each element size has its own scratch, so warming
/// one never shrinks the other). The GEFMM driver calls this during its
/// pre-flight so the compute phase performs no allocation at all: packed
/// GEMM's only fallible operation is moved in front of the first write to
/// C, which the failure policy relies on (DESIGN.md section 7). Buffers
/// are sized with the kMaxMRT<T>/kMaxNRT<T> edge padding, so scratch
/// warmed for `bk` fits every kernel variant. May throw std::bad_alloc.
template <class T = double>
void ensure_pack_capacity(const GemmBlocking& bk);

/// ensure_pack_capacity for the calling thread *and* every global-pool
/// worker (each worker grows its own thread-local scratch via a pinned
/// pool task). Required before any compute that may fan a packed GEMM out
/// over the pool -- lazy first-touch allocation on a cold worker would
/// otherwise fire inside the ScopedSuspend no-fail region. Called from a
/// pool worker it degrades to the calling-thread warm (the outer parallel
/// driver has already warmed the pool). May throw std::bad_alloc or
/// TaskError (fault injection).
template <class T = double>
void ensure_pack_capacity_all_workers(const GemmBlocking& bk);

/// Frees the calling thread's packing scratch for element type T. The
/// scratch is thread_local and normally lives until thread exit; a
/// long-lived server thread that has stopped issuing GEMMs (or a binding
/// releasing its cached workspace) calls this so warmed scratch is not
/// retained-memory growth. The next packed GEMM on this thread simply
/// re-warms. Must not be called while a packed GEMM submitted from this
/// thread is still fanned out (its workers read the submitter's B scratch).
template <class T = double>
void release_pack_capacity();

/// Elements currently retained by the calling thread's packing scratch for
/// element type T (A-pack + B-pack). Zero after release_pack_capacity;
/// the release-regression tests assert exactly that.
template <class T = double>
std::size_t pack_capacity_elements();

}  // namespace strassen::blas
