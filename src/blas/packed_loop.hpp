// Reusable packed-GEMM loop skeleton (GotoBLAS/BLIS structure), opened up
// for operand-fused Strassen in the style of Huang et al., "Implementing
// Strassen's Algorithm with BLIS" (arXiv:1605.01078).
//
// The classic packed DGEMM packs one A block, one B block, and writes one C
// tile. This skeleton generalizes both ends of the pipeline:
//
//  * packing forms a *linear combination* of up to kPackMaxTerms equally
//    shaped source operands (gamma0*X0 + gamma1*X1 + ...) in the same single
//    pass that reshapes the data into micro-panels -- so Strassen's S/T
//    operand sums cost no extra memory traffic and no temporaries;
//
//  * the micro-kernel epilogue scatters one register accumulator into up to
//    kPackMaxDests destinations with independent alpha/beta scalars -- so
//    Strassen's U accumulations ride the C write-back that a plain GEMM
//    performs anyway.
//
// With one term and one destination this *is* the library's packed DGEMM
// (gemm.cpp routes through here); the fused Winograd schedule in
// src/core/winograd_fused.cpp is the other client.
#pragma once

#include <cassert>

#include "blas/machine.hpp"
#include "support/config.hpp"
#include "support/matrix.hpp"

namespace strassen::blas {

/// Maximum number of gamma-weighted sources one packing pass may combine.
/// Two per fused Strassen level; 4 covers two fused levels.
inline constexpr int kPackMaxTerms = 4;

/// Maximum number of destinations one micro-tile write-back may scatter to.
/// Two per fused Strassen level; 4 covers two fused levels.
inline constexpr int kPackMaxDests = 4;

/// One gamma-weighted source operand of a packing linear combination.
/// Element (i, j) of the term contributes gamma * p[i*rs + j*cs], so a
/// transposed operand view needs no physical transpose (rs = ld, cs = 1).
struct PackTerm {
  const double* p = nullptr;
  index_t rs = 1;
  index_t cs = 0;
  double gamma = 1.0;
};

/// A linear combination of up to kPackMaxTerms equally shaped operands.
struct PackComb {
  PackTerm term[kPackMaxTerms];
  int n = 0;

  void add(ConstView v, double gamma) {
    assert(n < kPackMaxTerms);
    term[n++] = PackTerm{v.p, v.rs, v.cs, gamma};
  }
};

/// Builds a single-term combination from a view (the plain-GEMM case).
inline PackComb pack_comb(ConstView v, double gamma = 1.0) {
  PackComb c;
  c.add(v, gamma);
  return c;
}

/// One write-back destination: a column-major C block with its own scalars.
/// On the first k-panel the block receives alpha*tile + beta*C (beta == 0
/// assigns, so NaNs in uninitialized C never propagate); later k-panels
/// accumulate alpha*tile on top.
struct WriteDest {
  double* c = nullptr;
  index_t ldc = 0;
  double alpha = 1.0;
  double beta = 1.0;
};

/// Builds a WriteDest from a column-major view.
inline WriteDest write_dest(MutView v, double alpha, double beta) {
  assert(v.col_major());
  return WriteDest{v.p, v.ld_col(), alpha, beta};
}

/// The skeleton: for every destination d,
///   C_d <- alpha_d * (sum_i gamma_i op(A_i)) * (sum_j gamma_j op(B_j))
///          + beta_d * C_d
/// in a single pass of the Goto loop nest, where the A combination is
/// m x k, the B combination k x n, and every C_d is m x n column-major.
/// The destinations must not overlap one another or the sources.
void packed_gemm_multi(const GemmBlocking& bk, index_t m, index_t n,
                       index_t k, const PackComb& a, const PackComb& b,
                       const WriteDest* dst, int ndst);

/// Pre-allocates the calling thread's packing scratch for blocking `bk`.
/// The DGEFMM driver calls this during its pre-flight so the compute phase
/// performs no allocation at all: packed GEMM's only fallible operation is
/// moved in front of the first write to C, which the failure policy relies
/// on (DESIGN.md section 7). May throw std::bad_alloc.
void ensure_pack_capacity(const GemmBlocking& bk);

}  // namespace strassen::blas
