// The portable scalar kernel variant: the original 4x8 double register
// tile plus its 8x8 float sibling, relying on whatever autovectorization
// the base compile flags allow. This is the guaranteed fallback every
// platform gets.
#include "blas/kernels.hpp"
#include "blas/kernels_generic.hpp"

namespace strassen::blas::detail {

namespace {

constexpr index_t kScalarMR = 4;
constexpr index_t kScalarNR = 8;

constexpr index_t kScalarMRf = 8;
constexpr index_t kScalarNRf = 8;

constexpr KernelArch kA = KernelArch::scalar;

const KernelInfo kScalarKernel = {
    kA,
    "scalar-4x8",
    kScalarMR,
    kScalarNR,
    &micro_kernel_t<kA, double, kScalarMR, kScalarNR>,
    &pack_a_comb_t<kA, double, kScalarMR>,
    &pack_b_comb_t<kA, double, kScalarNR>,
    &write_tile_t<kA, double, kScalarMR>,
    &vadd_t<kA, double>,
    &vsub_t<kA, double>,
    &vaxpby_t<kA, double>,
};

const KernelInfoF kScalarKernelF = {
    kA,
    "scalar-8x8-f32",
    kScalarMRf,
    kScalarNRf,
    &micro_kernel_t<kA, float, kScalarMRf, kScalarNRf>,
    &pack_a_comb_t<kA, float, kScalarMRf>,
    &pack_b_comb_t<kA, float, kScalarNRf>,
    &write_tile_t<kA, float, kScalarMRf>,
    &vadd_t<kA, float>,
    &vsub_t<kA, float>,
    &vaxpby_t<kA, float>,
};

static_assert(kScalarMR <= kMaxMRT<double> && kScalarNR <= kMaxNRT<double>,
              "scalar double tile exceeds the pack-buffer padding bound");
static_assert(kScalarMRf <= kMaxMRT<float> && kScalarNRf <= kMaxNRT<float>,
              "scalar float tile exceeds the pack-buffer padding bound");

}  // namespace

const KernelInfo* kernel_scalar() { return &kScalarKernel; }
const KernelInfoF* kernel_scalar_f() { return &kScalarKernelF; }

}  // namespace strassen::blas::detail
