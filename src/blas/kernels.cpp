#include "blas/kernels.hpp"

namespace strassen::blas::detail {

void pack_a(const double* a, index_t rs, index_t cs, index_t mc, index_t kc,
            double* out) {
  for (index_t ip = 0; ip < mc; ip += kMR) {
    const index_t rows = (mc - ip < kMR) ? (mc - ip) : kMR;
    for (index_t p = 0; p < kc; ++p) {
      const double* col = a + ip * rs + p * cs;
      index_t r = 0;
      for (; r < rows; ++r) out[p * kMR + r] = col[r * rs];
      for (; r < kMR; ++r) out[p * kMR + r] = 0.0;
    }
    out += kMR * kc;
  }
}

void pack_b(const double* b, index_t rs, index_t cs, index_t kc, index_t nc,
            double* out) {
  for (index_t jp = 0; jp < nc; jp += kNR) {
    const index_t cols = (nc - jp < kNR) ? (nc - jp) : kNR;
    for (index_t p = 0; p < kc; ++p) {
      const double* row = b + p * rs + jp * cs;
      index_t c = 0;
      for (; c < cols; ++c) out[p * kNR + c] = row[c * cs];
      for (; c < kNR; ++c) out[p * kNR + c] = 0.0;
    }
    out += kNR * kc;
  }
}

void micro_kernel(index_t kc, const double* a, const double* b, double* acc) {
  double t[kMR * kNR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const double* ap = a + p * kMR;
    const double* bp = b + p * kNR;
    for (index_t c = 0; c < kNR; ++c) {
      const double bv = bp[c];
      for (index_t r = 0; r < kMR; ++r) {
        t[r + c * kMR] += ap[r] * bv;
      }
    }
  }
  for (index_t i = 0; i < kMR * kNR; ++i) acc[i] = t[i];
}

}  // namespace strassen::blas::detail
