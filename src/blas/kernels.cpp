// The portable scalar kernel variant: the original 4x8 register tile,
// relying on whatever autovectorization the base compile flags allow. This
// is the guaranteed fallback every platform gets.
#include "blas/kernels.hpp"
#include "blas/kernels_generic.hpp"

namespace strassen::blas::detail {

namespace {

constexpr index_t kScalarMR = 4;
constexpr index_t kScalarNR = 8;

constexpr KernelArch kA = KernelArch::scalar;

const KernelInfo kScalarKernel = {
    kA,
    "scalar-4x8",
    kScalarMR,
    kScalarNR,
    &micro_kernel_t<kA, kScalarMR, kScalarNR>,
    &pack_a_comb_t<kA, kScalarMR>,
    &pack_b_comb_t<kA, kScalarNR>,
    &write_tile_t<kA, kScalarMR>,
    &vadd_t<kA>,
    &vsub_t<kA>,
    &vaxpby_t<kA>,
};

static_assert(kScalarMR <= kMaxMR && kScalarNR <= kMaxNR,
              "scalar tile exceeds the pack-buffer padding bound");

}  // namespace

const KernelInfo* kernel_scalar() { return &kScalarKernel; }

}  // namespace strassen::blas::detail
