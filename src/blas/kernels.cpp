#include "blas/kernels.hpp"

namespace strassen::blas::detail {

void pack_a(const double* a, index_t rs, index_t cs, index_t mc, index_t kc,
            double* out) {
  for (index_t ip = 0; ip < mc; ip += kMR) {
    const index_t rows = (mc - ip < kMR) ? (mc - ip) : kMR;
    for (index_t p = 0; p < kc; ++p) {
      const double* col = a + ip * rs + p * cs;
      index_t r = 0;
      for (; r < rows; ++r) out[p * kMR + r] = col[r * rs];
      for (; r < kMR; ++r) out[p * kMR + r] = 0.0;
    }
    out += kMR * kc;
  }
}

void pack_b(const double* b, index_t rs, index_t cs, index_t kc, index_t nc,
            double* out) {
  for (index_t jp = 0; jp < nc; jp += kNR) {
    const index_t cols = (nc - jp < kNR) ? (nc - jp) : kNR;
    for (index_t p = 0; p < kc; ++p) {
      const double* row = b + p * rs + jp * cs;
      index_t c = 0;
      for (; c < cols; ++c) out[p * kNR + c] = row[c * cs];
      for (; c < kNR; ++c) out[p * kNR + c] = 0.0;
    }
    out += kNR * kc;
  }
}

void pack_a_comb(const PackTerm* terms, int nterms, index_t mc, index_t kc,
                 double* out) {
  if (nterms == 1 && terms[0].gamma == 1.0) {
    pack_a(terms[0].p, terms[0].rs, terms[0].cs, mc, kc, out);
    return;
  }
  for (index_t ip = 0; ip < mc; ip += kMR) {
    const index_t rows = (mc - ip < kMR) ? (mc - ip) : kMR;
    for (index_t p = 0; p < kc; ++p) {
      double* o = out + p * kMR;
      {
        const PackTerm& t = terms[0];
        const double* col = t.p + ip * t.rs + p * t.cs;
        index_t r = 0;
        for (; r < rows; ++r) o[r] = t.gamma * col[r * t.rs];
        for (; r < kMR; ++r) o[r] = 0.0;
      }
      for (int s = 1; s < nterms; ++s) {
        const PackTerm& t = terms[s];
        const double* col = t.p + ip * t.rs + p * t.cs;
        for (index_t r = 0; r < rows; ++r) o[r] += t.gamma * col[r * t.rs];
      }
    }
    out += kMR * kc;
  }
}

void pack_b_comb(const PackTerm* terms, int nterms, index_t kc, index_t nc,
                 double* out) {
  if (nterms == 1 && terms[0].gamma == 1.0) {
    pack_b(terms[0].p, terms[0].rs, terms[0].cs, kc, nc, out);
    return;
  }
  for (index_t jp = 0; jp < nc; jp += kNR) {
    const index_t cols = (nc - jp < kNR) ? (nc - jp) : kNR;
    for (index_t p = 0; p < kc; ++p) {
      double* o = out + p * kNR;
      {
        const PackTerm& t = terms[0];
        const double* row = t.p + p * t.rs + jp * t.cs;
        index_t c = 0;
        for (; c < cols; ++c) o[c] = t.gamma * row[c * t.cs];
        for (; c < kNR; ++c) o[c] = 0.0;
      }
      for (int s = 1; s < nterms; ++s) {
        const PackTerm& t = terms[s];
        const double* row = t.p + p * t.rs + jp * t.cs;
        for (index_t c = 0; c < cols; ++c) o[c] += t.gamma * row[c * t.cs];
      }
    }
    out += kNR * kc;
  }
}

void micro_kernel(index_t kc, const double* a, const double* b, double* acc) {
  double t[kMR * kNR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const double* ap = a + p * kMR;
    const double* bp = b + p * kNR;
    for (index_t c = 0; c < kNR; ++c) {
      const double bv = bp[c];
      for (index_t r = 0; r < kMR; ++r) {
        t[r + c * kMR] += ap[r] * bv;
      }
    }
  }
  for (index_t i = 0; i < kMR * kNR; ++i) acc[i] = t[i];
}

}  // namespace strassen::blas::detail
