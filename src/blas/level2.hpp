// Level 2 BLAS subset (matrix-vector operations).
//
// DGEMV and DGER are exactly the routines the paper's dynamic-peeling
// fix-up steps call (Section 3.3): a rank-one update for an odd inner
// dimension and matrix-vector products for odd outer dimensions.
#pragma once

#include "support/config.hpp"

namespace strassen::blas {

/// y <- alpha * op(A) * x + beta * y, with A column-major m x n, ld >= m.
/// op(A) is A when trans == Trans::no (y has m elements, x has n) and A^T
/// otherwise (y has n elements, x has m).
void dgemv(Trans trans, index_t m, index_t n, double alpha, const double* a,
           index_t lda, const double* x, index_t incx, double beta, double* y,
           index_t incy);
void sgemv(Trans trans, index_t m, index_t n, float alpha, const float* a,
           index_t lda, const float* x, index_t incx, float beta, float* y,
           index_t incy);

/// A <- alpha * x * y^T + A, with A column-major m x n.
void dger(index_t m, index_t n, double alpha, const double* x, index_t incx,
          const double* y, index_t incy, double* a, index_t lda);
void sger(index_t m, index_t n, float alpha, const float* x, index_t incx,
          const float* y, index_t incy, float* a, index_t lda);

}  // namespace strassen::blas
