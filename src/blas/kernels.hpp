// Micro-kernel dispatch for the cache-blocked GEMM (GotoBLAS/BLIS-style
// structure), generic over the element type.
//
// The packed loop nest (packed_loop.cpp) is kernel-agnostic: everything
// that depends on the register tile -- the MR x NR micro-kernel itself, the
// linear-combination packing routines that shape data into MR/NR panels,
// the tile write-back, and the contiguous vector combines used by the
// Strassen quadrant adds -- is reached through a KernelInfoT<T> table. The
// dispatch axis is the instruction set; the element type selects between
// the double table (DGEFMM) and the float table (SGEFMM) of the same
// family. Per family:
//
//  * scalar : portable C++, always available (4x8 double, 8x8 float);
//  * avx2   : explicit AVX2/FMA intrinsics, 256-bit (8x6 double, 16x6
//             float -- float lanes are twice as wide);
//  * avx512 : explicit AVX-512F intrinsics, 512-bit (8x8 double, 16x8
//             float).
//
// The SIMD variants are compiled only when the compiler supports the ISA
// flags (CMake probes them) and are selected only when CPUID reports the
// ISA at run time; the first call picks the best supported kernel, and
// STRASSEN_KERNEL=scalar|avx2|avx512|auto overrides the choice for testing.
// The override selects the *family*; both element-type tables of a family
// are always compiled together, so the active float kernel is simply the
// float table of the active family.
#pragma once

#include <type_traits>

#include "blas/packed_loop.hpp"
#include "support/config.hpp"

namespace strassen::blas {

/// Instruction-set family of a micro-kernel variant.
enum class KernelArch {
  scalar,  ///< portable C++ (autovectorized at best)
  avx2,    ///< AVX2 + FMA, 256-bit
  avx512,  ///< AVX-512F, 512-bit
};

/// All variants in preference order, worst to best.
inline constexpr KernelArch kAllKernelArches[] = {
    KernelArch::scalar, KernelArch::avx2, KernelArch::avx512};

/// Short lower-case family name ("scalar", "avx2", "avx512"), matching the
/// STRASSEN_KERNEL environment values.
const char* kernel_arch_name(KernelArch arch);

/// Upper bounds on any kernel's register tile for element type T.
/// Pack-buffer sizing uses these (not the active kernel's MR/NR) so a
/// scratch buffer warmed for one blocking fits every kernel variant of
/// that blocking. Float tiles are taller: the SIMD registers hold twice
/// as many lanes.
template <class T>
inline constexpr index_t kMaxMRT = 8;
template <>
inline constexpr index_t kMaxMRT<float> = 16;

template <class T>
inline constexpr index_t kMaxNRT = 8;

/// Double-precision bounds, kept as plain names for the existing callers.
inline constexpr index_t kMaxMR = kMaxMRT<double>;
inline constexpr index_t kMaxNR = kMaxNRT<double>;

/// One micro-kernel variant: the register-tile shape plus every routine the
/// packed loop reaches through it. All function pointers are non-null.
///
/// Layout contracts shared by all variants:
///  * packed A panels hold MR rows (zero-padded) per k step: a[p*MR + r],
///    each panel 64-byte aligned when the buffer is;
///  * packed B panels hold NR columns per k step: b[p*NR + c];
///  * the accumulator tile is acc[r + c*MR] and must be 64-byte aligned
///    (the SIMD kernels use aligned stores into it).
template <class T>
struct KernelInfoT {
  KernelArch arch;
  const char* name;  ///< e.g. "avx2-8x6" (family + register tile)
  index_t mr;
  index_t nr;

  /// acc[r + c*mr] = sum_p a[p*mr + r] * b[p*nr + c] over one packed
  /// micro-panel pair of depth kc (acc fully overwritten).
  void (*micro_kernel)(index_t kc, const T* a, const T* b, T* acc);

  /// Packs the mc x kc block of sum_i gamma_i * op(A_i) into mr-row panels
  /// (rows beyond mc zero-padded). With one term of gamma == 1 this is the
  /// plain pack_a.
  void (*pack_a_comb)(const PackTermT<T>* terms, int nterms, index_t mc,
                      index_t kc, T* out);

  /// Packs the kc x nc block of sum_j gamma_j * op(B_j) into nr-column
  /// panels (columns beyond nc zero-padded).
  void (*pack_b_comb)(const PackTermT<T>* terms, int nterms, index_t kc,
                      index_t nc, T* out);

  /// C <- alpha*acc + beta_eff*C over the valid rows x cols corner of one
  /// accumulator tile (beta_eff == 0 assigns, so NaNs never propagate).
  void (*write_tile)(const T* acc, index_t rows, index_t cols, T alpha,
                     T beta_eff, T* c, index_t ldc);

  /// Contiguous elementwise combines used by the Strassen quadrant adds
  /// (core/add_kernels.cpp) on unit-stride columns:
  ///   vadd:   d[i] = x[i] + y[i]
  ///   vsub:   d[i] = x[i] - y[i]
  ///   vaxpby: d[i] = a*x[i] + b*d[i] (b == 0 never reads d, so it is
  ///           safe as a scaled copy into uninitialized storage)
  void (*vadd)(const T* x, const T* y, T* d, index_t n);
  void (*vsub)(const T* x, const T* y, T* d, index_t n);
  void (*vaxpby)(T a, const T* x, T b, T* d, index_t n);
};

using KernelInfo = KernelInfoT<double>;
using KernelInfoF = KernelInfoT<float>;

/// True when the variant was compiled into this binary (the compiler
/// supported the ISA flags). scalar is always compiled. Both element-type
/// tables of a family are compiled together.
bool kernel_compiled(KernelArch arch);

/// True when the variant is compiled in *and* this CPU executes it.
bool kernel_supported(KernelArch arch);

/// The best kernel this binary + CPU combination supports.
KernelArch best_supported_kernel();

/// The variant's table, or nullptr when not compiled in.
const KernelInfo* kernel_info(KernelArch arch);
const KernelInfoF* kernel_info_f(KernelArch arch);

/// The process-wide active kernel. The first call resolves it: the
/// STRASSEN_KERNEL environment variable if set to a supported variant
/// (silently falling back to auto-detection otherwise), else the best
/// supported kernel.
const KernelInfo& active_kernel();

/// The float table of the active family (same arch as active_kernel()).
const KernelInfoF& active_kernel_f();

/// Selects the active kernel family. Throws std::invalid_argument when the
/// variant is not supported on this binary/CPU.
void set_active_kernel(KernelArch arch);

/// Element-type generic access to the active kernel and per-arch tables.
template <class T>
inline const KernelInfoT<T>& active_kernel_t() {
  if constexpr (std::is_same_v<T, float>) {
    return active_kernel_f();
  } else {
    return active_kernel();
  }
}

template <class T>
inline const KernelInfoT<T>* kernel_info_t(KernelArch arch) {
  if constexpr (std::is_same_v<T, float>) {
    return kernel_info_f(arch);
  } else {
    return kernel_info(arch);
  }
}

/// RAII switch of the active kernel (testing / benchmarking).
class ScopedKernel {
 public:
  explicit ScopedKernel(KernelArch arch) : prev_(active_kernel().arch) {
    set_active_kernel(arch);
  }
  ScopedKernel(const ScopedKernel&) = delete;
  ScopedKernel& operator=(const ScopedKernel&) = delete;
  ~ScopedKernel() { set_active_kernel(prev_); }

 private:
  KernelArch prev_;
};

namespace detail {

/// Per-variant tables, defined one per translation unit so each can carry
/// its own ISA compile flags. A variant whose ISA the compiler lacked
/// returns nullptr. The float table lives in the same TU as the double
/// one, so the two are compiled (or stubbed) together.
const KernelInfo* kernel_scalar();
const KernelInfo* kernel_avx2();
const KernelInfo* kernel_avx512();
const KernelInfoF* kernel_scalar_f();
const KernelInfoF* kernel_avx2_f();
const KernelInfoF* kernel_avx512_f();

}  // namespace detail

}  // namespace strassen::blas
