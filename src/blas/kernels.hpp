// Packing routines and the register-tiled micro-kernel used by the
// cache-blocked DGEMM (GotoBLAS/BLIS-style structure).
#pragma once

#include "blas/packed_loop.hpp"
#include "support/config.hpp"

namespace strassen::blas::detail {

/// Micro-tile extents. MR x NR accumulators fit comfortably in registers
/// and give the compiler straight-line code to vectorize.
inline constexpr index_t kMR = 4;
inline constexpr index_t kNR = 8;

/// Packs an mc x kc block of op(A) (given by strides rs/cs) into row-panels
/// of kMR rows: out[(ip/kMR) panel][p * kMR + r]. Rows beyond mc are
/// zero-padded so the micro-kernel never needs row masking on its inputs.
void pack_a(const double* a, index_t rs, index_t cs, index_t mc, index_t kc,
            double* out);

/// Packs a kc x nc block of op(B) into column-panels of kNR columns:
/// out[(jp/kNR) panel][p * kNR + c], zero-padding columns beyond nc.
void pack_b(const double* b, index_t rs, index_t cs, index_t kc, index_t nc,
            double* out);

/// Linear-combination generalization of pack_a: packs the mc x kc block of
/// sum_i gamma_i * op(A_i) into kMR row-panels in one pass. With one term
/// of gamma == 1 this is exactly pack_a. Terms address the same mc x kc
/// logical block through their own strides.
void pack_a_comb(const PackTerm* terms, int nterms, index_t mc, index_t kc,
                 double* out);

/// Linear-combination generalization of pack_b: packs the kc x nc block of
/// sum_j gamma_j * op(B_j) into kNR column-panels in one pass.
void pack_b_comb(const PackTerm* terms, int nterms, index_t kc, index_t nc,
                 double* out);

/// acc[r + c*kMR] = sum_p a[p*kMR + r] * b[p*kNR + c] for one packed
/// micro-panel pair of depth kc.
void micro_kernel(index_t kc, const double* a, const double* b, double* acc);

}  // namespace strassen::blas::detail
