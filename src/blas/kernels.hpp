// Micro-kernel dispatch for the cache-blocked DGEMM (GotoBLAS/BLIS-style
// structure).
//
// The packed loop nest (packed_loop.cpp) is kernel-agnostic: everything
// that depends on the register tile -- the MR x NR micro-kernel itself, the
// linear-combination packing routines that shape data into MR/NR panels,
// the tile write-back, and the contiguous vector combines used by the
// Strassen quadrant adds -- is reached through a KernelInfo table. Three
// variants exist:
//
//  * scalar-4x8 : portable C++, always available (the original kernel);
//  * avx2-8x6   : explicit AVX2/FMA intrinsics, 12 ymm accumulators;
//  * avx512-8x8 : explicit AVX-512F intrinsics, 8 zmm accumulators.
//
// The SIMD variants are compiled only when the compiler supports the ISA
// flags (CMake probes them) and are selected only when CPUID reports the
// ISA at run time; the first call picks the best supported kernel, and
// STRASSEN_KERNEL=scalar|avx2|avx512|auto overrides the choice for testing.
#pragma once

#include "blas/packed_loop.hpp"
#include "support/config.hpp"

namespace strassen::blas {

/// Instruction-set family of a micro-kernel variant.
enum class KernelArch {
  scalar,  ///< portable C++ (autovectorized at best)
  avx2,    ///< AVX2 + FMA, 256-bit
  avx512,  ///< AVX-512F, 512-bit
};

/// All variants in preference order, worst to best.
inline constexpr KernelArch kAllKernelArches[] = {
    KernelArch::scalar, KernelArch::avx2, KernelArch::avx512};

/// Short lower-case family name ("scalar", "avx2", "avx512"), matching the
/// STRASSEN_KERNEL environment values.
const char* kernel_arch_name(KernelArch arch);

/// Upper bounds on any kernel's register tile. Pack-buffer sizing uses
/// these (not the active kernel's MR/NR) so a scratch buffer warmed for one
/// blocking fits every kernel variant of that blocking.
inline constexpr index_t kMaxMR = 8;
inline constexpr index_t kMaxNR = 8;

/// One micro-kernel variant: the register-tile shape plus every routine the
/// packed loop reaches through it. All function pointers are non-null.
///
/// Layout contracts shared by all variants:
///  * packed A panels hold MR rows (zero-padded) per k step: a[p*MR + r],
///    each panel 64-byte aligned when the buffer is;
///  * packed B panels hold NR columns per k step: b[p*NR + c];
///  * the accumulator tile is acc[r + c*MR] and must be 64-byte aligned
///    (the SIMD kernels use aligned stores into it).
struct KernelInfo {
  KernelArch arch;
  const char* name;  ///< e.g. "avx2-8x6" (family + register tile)
  index_t mr;
  index_t nr;

  /// acc[r + c*mr] = sum_p a[p*mr + r] * b[p*nr + c] over one packed
  /// micro-panel pair of depth kc (acc fully overwritten).
  void (*micro_kernel)(index_t kc, const double* a, const double* b,
                       double* acc);

  /// Packs the mc x kc block of sum_i gamma_i * op(A_i) into mr-row panels
  /// (rows beyond mc zero-padded). With one term of gamma == 1 this is the
  /// plain pack_a.
  void (*pack_a_comb)(const PackTerm* terms, int nterms, index_t mc,
                      index_t kc, double* out);

  /// Packs the kc x nc block of sum_j gamma_j * op(B_j) into nr-column
  /// panels (columns beyond nc zero-padded).
  void (*pack_b_comb)(const PackTerm* terms, int nterms, index_t kc,
                      index_t nc, double* out);

  /// C <- alpha*acc + beta_eff*C over the valid rows x cols corner of one
  /// accumulator tile (beta_eff == 0 assigns, so NaNs never propagate).
  void (*write_tile)(const double* acc, index_t rows, index_t cols,
                     double alpha, double beta_eff, double* c, index_t ldc);

  /// Contiguous elementwise combines used by the Strassen quadrant adds
  /// (core/add_kernels.cpp) on unit-stride columns:
  ///   vadd:   d[i] = x[i] + y[i]
  ///   vsub:   d[i] = x[i] - y[i]
  ///   vaxpby: d[i] = a*x[i] + b*d[i] (b == 0 never reads d, so it is
  ///           safe as a scaled copy into uninitialized storage)
  void (*vadd)(const double* x, const double* y, double* d, index_t n);
  void (*vsub)(const double* x, const double* y, double* d, index_t n);
  void (*vaxpby)(double a, const double* x, double b, double* d, index_t n);
};

/// True when the variant was compiled into this binary (the compiler
/// supported the ISA flags). scalar is always compiled.
bool kernel_compiled(KernelArch arch);

/// True when the variant is compiled in *and* this CPU executes it.
bool kernel_supported(KernelArch arch);

/// The best kernel this binary + CPU combination supports.
KernelArch best_supported_kernel();

/// The variant's table, or nullptr when not compiled in.
const KernelInfo* kernel_info(KernelArch arch);

/// The process-wide active kernel. The first call resolves it: the
/// STRASSEN_KERNEL environment variable if set to a supported variant
/// (silently falling back to auto-detection otherwise), else the best
/// supported kernel.
const KernelInfo& active_kernel();

/// Selects the active kernel. Throws std::invalid_argument when the
/// variant is not supported on this binary/CPU.
void set_active_kernel(KernelArch arch);

/// RAII switch of the active kernel (testing / benchmarking).
class ScopedKernel {
 public:
  explicit ScopedKernel(KernelArch arch) : prev_(active_kernel().arch) {
    set_active_kernel(arch);
  }
  ScopedKernel(const ScopedKernel&) = delete;
  ScopedKernel& operator=(const ScopedKernel&) = delete;
  ~ScopedKernel() { set_active_kernel(prev_); }

 private:
  KernelArch prev_;
};

namespace detail {

/// Per-variant tables, defined one per translation unit so each can carry
/// its own ISA compile flags. A variant whose ISA the compiler lacked
/// returns nullptr.
const KernelInfo* kernel_scalar();
const KernelInfo* kernel_avx2();
const KernelInfo* kernel_avx512();

}  // namespace detail

}  // namespace strassen::blas
