// Shared generic implementations behind every KernelInfo variant: packing,
// tile write-back, vector combines, and the reference micro-kernel, all
// parameterized on the register tile and the element type.
//
// Every template carries the KernelArch tag as a parameter even where the
// code does not use it. This is deliberate and load-bearing: each variant
// translation unit (kernels.cpp, kernels_avx2.cpp, kernels_avx512.cpp) is
// compiled with different ISA flags, and a shared instantiation symbol
// would let the linker keep an arbitrary copy -- possibly one holding
// instructions the running CPU lacks. Distinct template arguments per TU
// give every instantiation its own symbol, so code compiled with -mavx512f
// can never leak into the scalar path.
#pragma once

#include "blas/kernels.hpp"
#include "blas/packed_loop.hpp"
#include "blas/prefetch.hpp"
#include "support/config.hpp"

namespace strassen::blas::detail {

/// Packs an mc x kc block of op(A) (strides rs/cs) into MR-row panels:
/// out[(ip/MR) panel][p*MR + r], zero-padding rows beyond mc so the
/// micro-kernel never needs row masking on its inputs.
template <KernelArch A, class T, index_t MR>
void pack_a_t(const T* a, index_t rs, index_t cs, index_t mc, index_t kc,
              T* out) {
  constexpr index_t PF = pack_prefetch_distance<A>();
  const bool pf = PF > 0 && pack_prefetch_enabled();
  for (index_t ip = 0; ip < mc; ip += MR) {
    const index_t rows = (mc - ip < MR) ? (mc - ip) : MR;
    for (index_t p = 0; p < kc; ++p) {
      const T* col = a + ip * rs + p * cs;
      if (pf && p + PF < kc) prefetch_read(col + PF * cs);
      index_t r = 0;
      for (; r < rows; ++r) out[p * MR + r] = col[r * rs];
      for (; r < MR; ++r) out[p * MR + r] = T(0);
    }
    out += MR * kc;
  }
}

/// Packs a kc x nc block of op(B) into NR-column panels:
/// out[(jp/NR) panel][p*NR + c], zero-padding columns beyond nc.
template <KernelArch A, class T, index_t NR>
void pack_b_t(const T* b, index_t rs, index_t cs, index_t kc, index_t nc,
              T* out) {
  constexpr index_t PF = pack_prefetch_distance<A>();
  const bool pf = PF > 0 && pack_prefetch_enabled();
  for (index_t jp = 0; jp < nc; jp += NR) {
    const index_t cols = (nc - jp < NR) ? (nc - jp) : NR;
    for (index_t p = 0; p < kc; ++p) {
      const T* row = b + p * rs + jp * cs;
      if (pf && p + PF < kc) prefetch_read(row + PF * rs);
      index_t c = 0;
      for (; c < cols; ++c) out[p * NR + c] = row[c * cs];
      for (; c < NR; ++c) out[p * NR + c] = T(0);
    }
    out += NR * kc;
  }
}

/// Linear-combination generalization of pack_a_t: packs the mc x kc block
/// of sum_i gamma_i * op(A_i) in one pass.
template <KernelArch A, class T, index_t MR>
void pack_a_comb_t(const PackTermT<T>* terms, int nterms, index_t mc,
                   index_t kc, T* out) {
  if (nterms == 1 && terms[0].gamma == T(1)) {
    pack_a_t<A, T, MR>(terms[0].p, terms[0].rs, terms[0].cs, mc, kc, out);
    return;
  }
  constexpr index_t PF = pack_prefetch_distance<A>();
  const bool pf = PF > 0 && pack_prefetch_enabled();
  for (index_t ip = 0; ip < mc; ip += MR) {
    const index_t rows = (mc - ip < MR) ? (mc - ip) : MR;
    for (index_t p = 0; p < kc; ++p) {
      T* o = out + p * MR;
      if (pf && p + PF < kc) {
        // The combined pack interleaves nterms strided source streams, the
        // case hardware prefetchers track worst; look ahead in every one.
        for (int s = 0; s < nterms; ++s) {
          prefetch_read(terms[s].p + ip * terms[s].rs + (p + PF) * terms[s].cs);
        }
      }
      {
        const PackTermT<T>& t = terms[0];
        const T* col = t.p + ip * t.rs + p * t.cs;
        index_t r = 0;
        for (; r < rows; ++r) o[r] = t.gamma * col[r * t.rs];
        for (; r < MR; ++r) o[r] = T(0);
      }
      for (int s = 1; s < nterms; ++s) {
        const PackTermT<T>& t = terms[s];
        const T* col = t.p + ip * t.rs + p * t.cs;
        for (index_t r = 0; r < rows; ++r) o[r] += t.gamma * col[r * t.rs];
      }
    }
    out += MR * kc;
  }
}

/// Linear-combination generalization of pack_b_t.
template <KernelArch A, class T, index_t NR>
void pack_b_comb_t(const PackTermT<T>* terms, int nterms, index_t kc,
                   index_t nc, T* out) {
  if (nterms == 1 && terms[0].gamma == T(1)) {
    pack_b_t<A, T, NR>(terms[0].p, terms[0].rs, terms[0].cs, kc, nc, out);
    return;
  }
  constexpr index_t PF = pack_prefetch_distance<A>();
  const bool pf = PF > 0 && pack_prefetch_enabled();
  for (index_t jp = 0; jp < nc; jp += NR) {
    const index_t cols = (nc - jp < NR) ? (nc - jp) : NR;
    for (index_t p = 0; p < kc; ++p) {
      T* o = out + p * NR;
      if (pf && p + PF < kc) {
        for (int s = 0; s < nterms; ++s) {
          prefetch_read(terms[s].p + (p + PF) * terms[s].rs + jp * terms[s].cs);
        }
      }
      {
        const PackTermT<T>& t = terms[0];
        const T* row = t.p + p * t.rs + jp * t.cs;
        index_t c = 0;
        for (; c < cols; ++c) o[c] = t.gamma * row[c * t.cs];
        for (; c < NR; ++c) o[c] = T(0);
      }
      for (int s = 1; s < nterms; ++s) {
        const PackTermT<T>& t = terms[s];
        const T* row = t.p + p * t.rs + jp * t.cs;
        for (index_t c = 0; c < cols; ++c) o[c] += t.gamma * row[c * t.cs];
      }
    }
    out += NR * kc;
  }
}

/// Reference micro-kernel: acc[r + c*MR] = sum_p a[p*MR+r] * b[p*NR+c].
/// The scalar variant uses this directly; the SIMD variants replace it with
/// intrinsics but keep the identical accumulator layout.
template <KernelArch A, class T, index_t MR, index_t NR>
void micro_kernel_t(index_t kc, const T* a, const T* b, T* acc) {
  T t[MR * NR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const T* ap = a + p * MR;
    const T* bp = b + p * NR;
    for (index_t c = 0; c < NR; ++c) {
      const T bv = bp[c];
      for (index_t r = 0; r < MR; ++r) {
        t[r + c * MR] += ap[r] * bv;
      }
    }
  }
  for (index_t i = 0; i < MR * NR; ++i) acc[i] = t[i];
}

/// C <- alpha*acc + beta_eff*C over the valid rows x cols tile corner.
template <KernelArch A, class T, index_t MR>
void write_tile_t(const T* acc, index_t rows, index_t cols, T alpha,
                  T beta_eff, T* c, index_t ldc) {
  if (beta_eff == T(0)) {
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        c[i + j * ldc] = alpha * acc[i + j * MR];
      }
    }
  } else if (beta_eff == T(1)) {
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        c[i + j * ldc] += alpha * acc[i + j * MR];
      }
    }
  } else {
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        c[i + j * ldc] = alpha * acc[i + j * MR] + beta_eff * c[i + j * ldc];
      }
    }
  }
}

/// d[i] = x[i] + y[i] over contiguous arrays.
template <KernelArch A, class T>
void vadd_t(const T* x, const T* y, T* d, index_t n) {
  for (index_t i = 0; i < n; ++i) d[i] = x[i] + y[i];
}

/// d[i] = x[i] - y[i] over contiguous arrays.
template <KernelArch A, class T>
void vsub_t(const T* x, const T* y, T* d, index_t n) {
  for (index_t i = 0; i < n; ++i) d[i] = x[i] - y[i];
}

/// d[i] = a*x[i] + b*d[i] over contiguous arrays. b == 0 never reads d,
/// so the helper doubles as a scaled copy into uninitialized storage
/// (0 * garbage could be NaN otherwise).
template <KernelArch A, class T>
void vaxpby_t(T a, const T* x, T b, T* d, index_t n) {
  if (b == T(0)) {
    for (index_t i = 0; i < n; ++i) d[i] = a * x[i];
    return;
  }
  for (index_t i = 0; i < n; ++i) d[i] = a * x[i] + b * d[i];
}

}  // namespace strassen::blas::detail
