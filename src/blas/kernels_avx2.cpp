// AVX2/FMA kernel variant: an 8x6 register tile held in 12 ymm
// accumulators (plus two A registers and one broadcast register, 15 of the
// 16 ymm names). Compiled with -mavx2 -mfma only when CMake's compiler
// probe succeeds; otherwise this TU degrades to a nullptr stub and the
// dispatcher never offers the variant.
//
// The packing, write-back, and vector-combine entries reuse the generic
// templates from kernels_generic.hpp: instantiated in this TU they inherit
// its ISA flags, so the compiler autovectorizes them with AVX2 as well.
#include "blas/kernels.hpp"

#if defined(STRASSEN_BUILD_AVX2)

#include <immintrin.h>

#include "blas/kernels_generic.hpp"

namespace strassen::blas::detail {

namespace {

constexpr index_t kAvx2MR = 8;
constexpr index_t kAvx2NR = 6;

constexpr KernelArch kA = KernelArch::avx2;

// Packed A panels start 64-byte aligned (panel stride 8*kc doubles inside a
// 64-byte-aligned buffer), so the two halves of each A column load aligned.
// B is reached only through scalar broadcasts, so its 6-double panel rows
// need no alignment.
void micro_kernel_8x6(index_t kc, const double* a, const double* b,
                      double* acc) {
  __m256d c_lo[kAvx2NR];
  __m256d c_hi[kAvx2NR];
  for (int j = 0; j < kAvx2NR; ++j) {
    c_lo[j] = _mm256_setzero_pd();
    c_hi[j] = _mm256_setzero_pd();
  }
  for (index_t p = 0; p < kc; ++p) {
    const __m256d a_lo = _mm256_load_pd(a + p * kAvx2MR);
    const __m256d a_hi = _mm256_load_pd(a + p * kAvx2MR + 4);
    const double* bp = b + p * kAvx2NR;
#pragma GCC unroll 6
    for (int j = 0; j < kAvx2NR; ++j) {
      const __m256d bv = _mm256_broadcast_sd(bp + j);
      c_lo[j] = _mm256_fmadd_pd(a_lo, bv, c_lo[j]);
      c_hi[j] = _mm256_fmadd_pd(a_hi, bv, c_hi[j]);
    }
  }
  for (int j = 0; j < kAvx2NR; ++j) {
    _mm256_store_pd(acc + j * kAvx2MR, c_lo[j]);
    _mm256_store_pd(acc + j * kAvx2MR + 4, c_hi[j]);
  }
}

const KernelInfo kAvx2Kernel = {
    kA,
    "avx2-8x6",
    kAvx2MR,
    kAvx2NR,
    &micro_kernel_8x6,
    &pack_a_comb_t<kA, kAvx2MR>,
    &pack_b_comb_t<kA, kAvx2NR>,
    &write_tile_t<kA, kAvx2MR>,
    &vadd_t<kA>,
    &vsub_t<kA>,
    &vaxpby_t<kA>,
};

static_assert(kAvx2MR <= kMaxMR && kAvx2NR <= kMaxNR,
              "avx2 tile exceeds the pack-buffer padding bound");

}  // namespace

const KernelInfo* kernel_avx2() { return &kAvx2Kernel; }

}  // namespace strassen::blas::detail

#else  // !STRASSEN_BUILD_AVX2

namespace strassen::blas::detail {

const KernelInfo* kernel_avx2() { return nullptr; }

}  // namespace strassen::blas::detail

#endif
