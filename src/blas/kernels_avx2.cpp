// AVX2/FMA kernel variant. The double kernel is an 8x6 register tile held
// in 12 ymm accumulators (plus two A registers and one broadcast register,
// 15 of the 16 ymm names); the float kernel is the same shape in float
// lanes -- 16x6, two ymm of 8 floats per A column. Compiled with
// -mavx2 -mfma only when CMake's compiler probe succeeds; otherwise this
// TU degrades to nullptr stubs and the dispatcher never offers the variant.
//
// The packing, write-back, and vector-combine entries reuse the generic
// templates from kernels_generic.hpp: instantiated in this TU they inherit
// its ISA flags, so the compiler autovectorizes them with AVX2 as well.
#include "blas/kernels.hpp"

#if defined(STRASSEN_BUILD_AVX2)

#include <immintrin.h>

#include "blas/kernels_generic.hpp"

namespace strassen::blas::detail {

namespace {

constexpr index_t kAvx2MR = 8;
constexpr index_t kAvx2NR = 6;

constexpr index_t kAvx2MRf = 16;
constexpr index_t kAvx2NRf = 6;

constexpr KernelArch kA = KernelArch::avx2;

// Packed A panels start 64-byte aligned (panel stride 8*kc doubles inside a
// 64-byte-aligned buffer), so the two halves of each A column load aligned.
// B is reached only through scalar broadcasts, so its 6-double panel rows
// need no alignment.
void micro_kernel_8x6(index_t kc, const double* a, const double* b,
                      double* acc) {
  __m256d c_lo[kAvx2NR];
  __m256d c_hi[kAvx2NR];
  for (int j = 0; j < kAvx2NR; ++j) {
    c_lo[j] = _mm256_setzero_pd();
    c_hi[j] = _mm256_setzero_pd();
  }
  for (index_t p = 0; p < kc; ++p) {
    const __m256d a_lo = _mm256_load_pd(a + p * kAvx2MR);
    const __m256d a_hi = _mm256_load_pd(a + p * kAvx2MR + 4);
    const double* bp = b + p * kAvx2NR;
#pragma GCC unroll 6
    for (int j = 0; j < kAvx2NR; ++j) {
      const __m256d bv = _mm256_broadcast_sd(bp + j);
      c_lo[j] = _mm256_fmadd_pd(a_lo, bv, c_lo[j]);
      c_hi[j] = _mm256_fmadd_pd(a_hi, bv, c_hi[j]);
    }
  }
  for (int j = 0; j < kAvx2NR; ++j) {
    _mm256_store_pd(acc + j * kAvx2MR, c_lo[j]);
    _mm256_store_pd(acc + j * kAvx2MR + 4, c_hi[j]);
  }
}

// Float twin: 16-float A columns load as two aligned ymm of 8 lanes each
// (panel stride 16*kc floats inside a 64-byte-aligned buffer).
void micro_kernel_16x6_f(index_t kc, const float* a, const float* b,
                         float* acc) {
  __m256 c_lo[kAvx2NRf];
  __m256 c_hi[kAvx2NRf];
  for (int j = 0; j < kAvx2NRf; ++j) {
    c_lo[j] = _mm256_setzero_ps();
    c_hi[j] = _mm256_setzero_ps();
  }
  for (index_t p = 0; p < kc; ++p) {
    const __m256 a_lo = _mm256_load_ps(a + p * kAvx2MRf);
    const __m256 a_hi = _mm256_load_ps(a + p * kAvx2MRf + 8);
    const float* bp = b + p * kAvx2NRf;
#pragma GCC unroll 6
    for (int j = 0; j < kAvx2NRf; ++j) {
      const __m256 bv = _mm256_broadcast_ss(bp + j);
      c_lo[j] = _mm256_fmadd_ps(a_lo, bv, c_lo[j]);
      c_hi[j] = _mm256_fmadd_ps(a_hi, bv, c_hi[j]);
    }
  }
  for (int j = 0; j < kAvx2NRf; ++j) {
    _mm256_store_ps(acc + j * kAvx2MRf, c_lo[j]);
    _mm256_store_ps(acc + j * kAvx2MRf + 8, c_hi[j]);
  }
}

const KernelInfo kAvx2Kernel = {
    kA,
    "avx2-8x6",
    kAvx2MR,
    kAvx2NR,
    &micro_kernel_8x6,
    &pack_a_comb_t<kA, double, kAvx2MR>,
    &pack_b_comb_t<kA, double, kAvx2NR>,
    &write_tile_t<kA, double, kAvx2MR>,
    &vadd_t<kA, double>,
    &vsub_t<kA, double>,
    &vaxpby_t<kA, double>,
};

const KernelInfoF kAvx2KernelF = {
    kA,
    "avx2-16x6-f32",
    kAvx2MRf,
    kAvx2NRf,
    &micro_kernel_16x6_f,
    &pack_a_comb_t<kA, float, kAvx2MRf>,
    &pack_b_comb_t<kA, float, kAvx2NRf>,
    &write_tile_t<kA, float, kAvx2MRf>,
    &vadd_t<kA, float>,
    &vsub_t<kA, float>,
    &vaxpby_t<kA, float>,
};

static_assert(kAvx2MR <= kMaxMRT<double> && kAvx2NR <= kMaxNRT<double>,
              "avx2 double tile exceeds the pack-buffer padding bound");
static_assert(kAvx2MRf <= kMaxMRT<float> && kAvx2NRf <= kMaxNRT<float>,
              "avx2 float tile exceeds the pack-buffer padding bound");

}  // namespace

const KernelInfo* kernel_avx2() { return &kAvx2Kernel; }
const KernelInfoF* kernel_avx2_f() { return &kAvx2KernelF; }

}  // namespace strassen::blas::detail

#else  // !STRASSEN_BUILD_AVX2

namespace strassen::blas::detail {

const KernelInfo* kernel_avx2() { return nullptr; }
const KernelInfoF* kernel_avx2_f() { return nullptr; }

}  // namespace strassen::blas::detail

#endif
