#include "serve/serve.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/packed_loop.hpp"
#include "core/cabi.hpp"
#include "core/dgefmm.hpp"
#include "core/sgefmm.hpp"
#include "core/workspace.hpp"
#include "parallel/parallel_strassen.hpp"
#include "parallel/task_dag.hpp"
#include "support/arena_pool.hpp"
#include "support/errors.hpp"
#include "support/stats.hpp"

namespace strassen::serve {

bool parse_overflow_policy(const char* text, OverflowPolicy& out) {
  if (text == nullptr) return false;
  if (std::strcmp(text, "block") == 0) {
    out = OverflowPolicy::block;
    return true;
  }
  if (std::strcmp(text, "reject") == 0) {
    out = OverflowPolicy::reject;
    return true;
  }
  if (std::strcmp(text, "shed") == 0) {
    out = OverflowPolicy::shed;
    return true;
  }
  return false;
}

namespace detail {

// Shared state of one request: the submitter, the serving threads, and
// every ticket clone of the future observe it under its own mutex. The
// queue transitions it to exactly one terminal state (the popper, sweeper,
// or submitter that owns the request at that moment), so a request is
// never completed twice.
template <class T>
struct RequestStateT {
  GemmRequestT<T> req;
  std::size_t need = 0;    // exact workspace price of the chosen path
  bool use_dag = false;    // task-DAG driver vs. serial driver
  parallel::DagPlan plan;  // pinned moldable plan (valid when use_dag)
  std::atomic<bool> cancel{false};
  Clock::time_point submitted_at{};

  std::mutex mu;
  std::condition_variable cv;
  RequestStatus status = RequestStatus::queued;
  int info = kInfoPending;
  std::exception_ptr error;
  core::DgefmmStats run_stats;
  bool degraded = false;
  double latency_ms = 0.0;
};

template <class T>
class QueueImplT;

// Runs one admitted request on a serving worker: the entry checks, the
// memory wait (the run's only fallible acquisition), then the dispatch
// into the driver. strassen_lint checks this function like the gefmm
// drivers' own pre-flights: every fallible call precedes dispatch_request,
// the first point at which C may be written.
template <class T>
void execute_request(QueueImplT<T>& q,
                     const std::shared_ptr<RequestStateT<T>>& st);

template <class T>
class QueueImplT {
 public:
  explicit QueueImplT(ServeOptions opt)
      : opt_(sanitize(opt)),
        pool_(opt_.budget_elements == 0 ? kUnlimited : opt_.budget_elements),
        reservoir_(opt_.latency_reservoir, 0.0) {
    workers_.reserve(static_cast<std::size_t>(opt_.workers));
    for (int i = 0; i < opt_.workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }

  ~QueueImplT() { shutdown(); }

  const ServeOptions& options() const { return opt_; }

  TicketT<T> submit(const GemmRequestT<T>& req) {
    auto st = std::make_shared<RequestStateT<T>>();
    st->req = req;
    st->submitted_at = Clock::now();
    {
      std::lock_guard<std::mutex> guard(stats_mu_);
      ++counters_.submitted;
    }
    // 1. BLAS argument check via a zero-work driver call: alpha == 0 with
    // beta == 1 quick-returns inside the driver after validation, touching
    // neither C nor any workspace.
    const int bad = validate(req);
    if (bad != 0) {
      complete(st, RequestStatus::failed, bad, nullptr);
      return TicketT<T>(st);
    }
    // 2. Exact workspace pricing of the path that will actually run.
    plan_request(*st);
    // 3. Budget feasibility: a need beyond the whole budget can never be
    // satisfied by waiting for leases to return.
    if (st->need > pool_.budget()) {
      if (opt_.policy == OverflowPolicy::shed) {
        run_shed(st);
        return TicketT<T>(st);
      }
      complete_rejected(st,
                        "predicted workspace (" + std::to_string(st->need) +
                            " elements) exceeds the serving budget (" +
                            std::to_string(pool_.budget()) + ")");
      return TicketT<T>(st);
    }
    // 4. Bounded-queue admission per the overflow policy.
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopping_ && queue_.size() >= opt_.queue_cap) {
      if (opt_.policy == OverflowPolicy::reject) {
        lock.unlock();  // handoff: complete outside mu_
        complete_rejected(st, "submission queue is full");
        return TicketT<T>(st);
      }
      if (opt_.policy == OverflowPolicy::shed) {
        lock.unlock();  // handoff: run the shed kernel outside mu_
        run_shed(st);
        return TicketT<T>(st);
      }
      // block: wait for a slot, honoring cancellation and the deadline.
      if (st->cancel.load(std::memory_order_relaxed)) {  // relaxed: cancel-token
        lock.unlock();  // handoff: complete outside mu_
        complete_canceled(st);
        return TicketT<T>(st);
      }
      if (Clock::now() >= st->req.deadline) {
        lock.unlock();  // handoff: complete outside mu_
        complete_expired(st);
        return TicketT<T>(st);
      }
      space_cv_.wait_for(lock, opt_.watchdog_period);
    }
    if (stopping_) {
      lock.unlock();  // handoff: complete outside mu_
      complete_rejected(st, "queue is shutting down");
      return TicketT<T>(st);
    }
    queue_.push_back(st);
    const std::size_t depth = queue_.size();
    lock.unlock();  // handoff: stats counters live under stats_mu_, not mu_
    {
      std::lock_guard<std::mutex> guard(stats_mu_);
      ++counters_.admitted;
      if (depth > counters_.peak_depth) counters_.peak_depth = depth;
    }
    queue_cv_.notify_one();
    return TicketT<T>(st);
  }

  ServingStats stats() const {
    ServingStats out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      out.queue_depth = queue_.size();
    }
    std::vector<double> sample;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      out.peak_queue_depth = counters_.peak_depth;
      out.submitted = counters_.submitted;
      out.admitted = counters_.admitted;
      out.completed = counters_.completed;
      out.rejected = counters_.rejected;
      out.shed = counters_.shed;
      out.expired = counters_.expired;
      out.canceled = counters_.canceled;
      out.failed = counters_.failed;
      out.gefmm = gefmm_;
      const std::size_t n = std::min(samples_total_, reservoir_.size());
      sample.assign(reservoir_.begin(),
                    reservoir_.begin() + static_cast<std::ptrdiff_t>(n));
      out.latency_samples = n;
    }
    out.budget_elements = opt_.budget_elements;
    out.pool_in_use = pool_.in_use();
    out.pool_cached = pool_.cached();
    out.pool_peak = pool_.peak_total();
    if (!sample.empty()) {
      out.max_ms = *std::max_element(sample.begin(), sample.end());
      out.p50_ms = percentile(sample, 50.0);
      out.p99_ms = percentile(std::move(sample), 99.0);
    }
    return out;
  }

  void shutdown() {
    std::call_once(shutdown_once_, [this] {
      {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
      }
      queue_cv_.notify_all();
      space_cv_.notify_all();
      watch_cv_.notify_all();
      for (std::thread& t : workers_) t.join();
      watchdog_.join();
    });
  }

  // --- internals shared with execute_request -------------------------------

  // Maps a captured exception to its documented C-ABI info code.
  static int info_of(const std::exception_ptr& err) {
    try {
      std::rethrow_exception(err);
    } catch (const CanceledError&) {
      return STRASSEN_INFO_CANCELED;
    } catch (const DeadlineError&) {
      return STRASSEN_INFO_EXPIRED;
    } catch (const AdmissionError&) {
      return STRASSEN_INFO_REJECTED;
    } catch (const WorkspaceError&) {
      return STRASSEN_INFO_WORKSPACE;
    } catch (const std::bad_alloc&) {
      return STRASSEN_INFO_ALLOC;
    } catch (const Error&) {
      return STRASSEN_INFO_INTERNAL;
    } catch (...) {
      return STRASSEN_INFO_UNKNOWN;
    }
  }

  // Transitions a request to its terminal state, wakes its waiters, and
  // updates the serving counters and the latency reservoir. Never called
  // with mu_ held.
  void complete(const std::shared_ptr<RequestStateT<T>>& st,
                RequestStatus status, int info, std::exception_ptr error,
                bool degraded = false,
                const core::DgefmmStats* run_stats = nullptr) {
    const double ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - st->submitted_at)
                          .count();
    // Account first, publish second: once wait() returns, the serving
    // counters already include this request's terminal state.
    {
      std::lock_guard<std::mutex> guard(stats_mu_);
      switch (status) {
        case RequestStatus::completed:
          ++counters_.completed;
          if (degraded) ++counters_.shed;
          reservoir_[samples_total_ % reservoir_.size()] = ms;
          ++samples_total_;
          break;
        case RequestStatus::rejected:
          ++counters_.rejected;
          break;
        case RequestStatus::expired:
          ++counters_.expired;
          break;
        case RequestStatus::canceled:
          ++counters_.canceled;
          break;
        case RequestStatus::failed:
          ++counters_.failed;
          break;
        case RequestStatus::queued:
        case RequestStatus::running:
          break;  // not terminal; unreachable
      }
      if (run_stats != nullptr) gefmm_.merge_from(*run_stats);
    }
    {
      std::lock_guard<std::mutex> guard(st->mu);
      st->status = status;
      st->info = info;
      st->error = std::move(error);
      st->degraded = degraded;
      if (run_stats != nullptr) st->run_stats = *run_stats;
      st->latency_ms = ms;
    }
    st->cv.notify_all();
  }

  void complete_rejected(const std::shared_ptr<RequestStateT<T>>& st,
                         const std::string& why) {
    complete(st, RequestStatus::rejected, STRASSEN_INFO_REJECTED,
             std::make_exception_ptr(AdmissionError(why)));
  }

  void complete_expired(const std::shared_ptr<RequestStateT<T>>& st) {
    complete(st, RequestStatus::expired, STRASSEN_INFO_EXPIRED,
             std::make_exception_ptr(DeadlineError(
                 "deadline passed while the request was still queued")));
  }

  void complete_canceled(const std::shared_ptr<RequestStateT<T>>& st) {
    complete(st, RequestStatus::canceled, STRASSEN_INFO_CANCELED,
             std::make_exception_ptr(CanceledError(
                 "request canceled before the first write to C")));
  }

  // The load-shedding valve: one workspace-free plain GEMM over the whole
  // problem (the same degraded path as FailurePolicy::fallback), forced
  // serial so shedding never claims pool workers from admitted runs. Runs
  // on the calling thread and records the shed.
  void run_shed(const std::shared_ptr<RequestStateT<T>>& st) {
    const GemmRequestT<T>& r = st->req;
    {
      blas::ScopedGemmThreads serial_gemm(1);
      if constexpr (std::is_same_v<T, float>) {
        blas::sgemm(r.transa, r.transb, r.m, r.n, r.k, r.alpha, r.a, r.lda,
                    r.b, r.ldb, r.beta, r.c, r.ldc);
      } else {
        blas::dgemm(r.transa, r.transb, r.m, r.n, r.k, r.alpha, r.a, r.lda,
                    r.b, r.ldb, r.beta, r.c, r.ldc);
      }
    }
    complete(st, RequestStatus::completed, 0, nullptr, /*degraded=*/true);
  }

  ServeOptions opt_;
  ArenaPoolT<T> pool_;
  mutable std::mutex mu_;             // queue_, stopping_
  std::condition_variable queue_cv_;  // workers: new work / shutdown
  std::condition_variable space_cv_;  // block-policy submitters
  std::condition_variable mem_cv_;    // memory waiters (leases returned)
  std::condition_variable watch_cv_;  // watchdog (shutdown only; the
                                      // watchdog otherwise wakes on its
                                      // period, so it never steals a
                                      // worker's queue_cv_ wakeup)
  std::deque<std::shared_ptr<RequestStateT<T>>> queue_;
  bool stopping_ = false;

 private:
  // Effectively-unlimited budget: large enough that in_use + need never
  // overflows size_t arithmetic in the pool.
  static constexpr std::size_t kUnlimited =
      std::numeric_limits<std::size_t>::max() / 4;

  static ServeOptions sanitize(ServeOptions o) {
    o.queue_cap = std::max<std::size_t>(o.queue_cap, 1);
    o.workers = std::clamp(o.workers, 1, 64);
    o.latency_reservoir = std::max<std::size_t>(o.latency_reservoir, 16);
    o.watchdog_period =
        std::max(o.watchdog_period, std::chrono::milliseconds(1));
    return o;
  }

  // BLAS argument checking without work (see submit step 1). Returns the
  // positive bad-argument index or 0.
  static int validate(const GemmRequestT<T>& req) {
    core::GefmmConfigT<T> plain;
    plain.cutoff = req.cutoff;
    if constexpr (std::is_same_v<T, float>) {
      return core::sgefmm(req.transa, req.transb, req.m, req.n, req.k, T(0),
                          req.a, req.lda, req.b, req.ldb, T(1), req.c,
                          req.ldc, plain);
    } else {
      return core::dgefmm(req.transa, req.transb, req.m, req.n, req.k, T(0),
                          req.a, req.lda, req.b, req.ldb, T(1), req.c,
                          req.ldc, plain);
    }
  }

  // Decides the execution path exactly as the drivers will and prices its
  // workspace with the exact predictors, so the carved lease is an
  // exactly-sized borrowed arena the run cannot exceed. The DAG decision
  // mirrors gefmm_parallel_t's serial fallback: degenerate shapes and
  // cutoff-stopped problems run (and are priced as) the serial driver.
  void plan_request(RequestStateT<T>& st) const {
    const GemmRequestT<T>& r = st.req;
    st.use_dag = r.prefer_parallel && r.m >= 2 && r.k >= 2 && r.n >= 2 &&
                 r.alpha != T(0) && !r.cutoff.stop(r.m, r.k, r.n, 0);
    if (st.use_dag) {
      parallel::ParallelGefmmConfigT<T> cfg;
      cfg.cutoff = r.cutoff;
      cfg.scheme = r.scheme;
      st.plan = parallel::plan_dag<T>(r.m, r.n, r.k, cfg);
      st.need = static_cast<std::size_t>(st.plan.workspace);
      return;
    }
    core::GefmmConfigT<T> cfg;
    cfg.cutoff = r.cutoff;
    cfg.scheme = r.scheme;
    count_t need;
    if constexpr (std::is_same_v<T, float>) {
      need = core::workspace_floats(r.m, r.n, r.k, r.beta, cfg);
    } else {
      need = core::workspace_doubles(r.m, r.n, r.k, r.beta, cfg);
    }
    st.need = static_cast<std::size_t>(need);
  }

  void worker_loop() {
    for (;;) {
      std::shared_ptr<RequestStateT<T>> st;
      {
        std::unique_lock<std::mutex> lock(mu_);
        queue_cv_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping and drained
        st = queue_.front();
        queue_.pop_front();
      }
      space_cv_.notify_one();
      execute_request(*this, st);
    }
  }

  // Sweeps queued requests whose deadline passed or whose cancel token was
  // set, completing them exceptionally without consuming a worker slot.
  void watchdog_loop() {
    std::vector<std::shared_ptr<RequestStateT<T>>> expired;
    std::vector<std::shared_ptr<RequestStateT<T>>> canceled;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        watch_cv_.wait_for(lock, opt_.watchdog_period);
        if (stopping_ && queue_.empty()) return;
        const Clock::time_point now = Clock::now();
        for (auto it = queue_.begin(); it != queue_.end();) {
          if ((*it)->cancel.load(
                  std::memory_order_relaxed)) {  // relaxed: cancel-token
            canceled.push_back(*it);
            it = queue_.erase(it);
          } else if (now >= (*it)->req.deadline) {
            expired.push_back(*it);
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
      if (!expired.empty() || !canceled.empty()) space_cv_.notify_all();
      for (const auto& st : canceled) complete_canceled(st);
      for (const auto& st : expired) complete_expired(st);
      canceled.clear();
      expired.clear();
    }
  }

  struct Counters {
    count_t submitted = 0;
    count_t admitted = 0;
    count_t completed = 0;
    count_t rejected = 0;
    count_t shed = 0;
    count_t expired = 0;
    count_t canceled = 0;
    count_t failed = 0;
    std::size_t peak_depth = 0;
  };

  mutable std::mutex stats_mu_;  // counters_, reservoir_, gefmm_
  Counters counters_;
  std::vector<double> reservoir_;  // completion-latency ring (ms)
  std::size_t samples_total_ = 0;
  core::DgefmmStats gefmm_;
  std::once_flag shutdown_once_;
  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

// One admitted run: builds the driver configuration over the borrowed
// lease arena and calls the vertical the admission pricing assumed. The
// plan's moldable fields are pinned so the driver re-derives exactly the
// priced reservation; the cancel token rides into the task DAG, which
// checks it at every node boundary.
template <class T>
int dispatch_request(const GemmRequestT<T>& req, ArenaT<T>& workspace,
                     bool use_dag, const parallel::DagPlan& plan,
                     core::DgefmmStats* run_stats,
                     const std::atomic<bool>* cancel) {
  if (use_dag) {
    parallel::ParallelGefmmConfigT<T> cfg;
    cfg.cutoff = req.cutoff;
    cfg.scheme = req.scheme;
    cfg.par_depth = plan.par_depth;
    cfg.lanes = plan.lanes;
    cfg.leaf_gemm_threads = plan.leaf_gemm_threads;
    cfg.workspace = &workspace;
    cfg.on_failure = req.on_failure;
    cfg.stats = run_stats;
    cfg.cancel = cancel;
    if constexpr (std::is_same_v<T, float>) {
      return parallel::sgefmm_parallel(req.transa, req.transb, req.m, req.n,
                                       req.k, req.alpha, req.a, req.lda,
                                       req.b, req.ldb, req.beta, req.c,
                                       req.ldc, cfg);
    } else {
      return parallel::dgefmm_parallel(req.transa, req.transb, req.m, req.n,
                                       req.k, req.alpha, req.a, req.lda,
                                       req.b, req.ldb, req.beta, req.c,
                                       req.ldc, cfg);
    }
  }
  core::GefmmConfigT<T> cfg;
  cfg.cutoff = req.cutoff;
  cfg.scheme = req.scheme;
  cfg.packed_b = req.packed_b;
  cfg.workspace = &workspace;
  cfg.on_failure = req.on_failure;
  cfg.stats = run_stats;
  if constexpr (std::is_same_v<T, float>) {
    return core::sgefmm(req.transa, req.transb, req.m, req.n, req.k,
                        req.alpha, req.a, req.lda, req.b, req.ldb, req.beta,
                        req.c, req.ldc, cfg);
  } else {
    return core::dgefmm(req.transa, req.transb, req.m, req.n, req.k,
                        req.alpha, req.a, req.lda, req.b, req.ldb, req.beta,
                        req.c, req.ldc, cfg);
  }
}

template <class T>
void execute_request(QueueImplT<T>& q,
                     const std::shared_ptr<RequestStateT<T>>& st) {
  // Entry checks: the request was queued until this moment, so honoring a
  // cancel or an expired deadline here still leaves C untouched.
  if (st->cancel.load(std::memory_order_relaxed)) {  // relaxed: cancel-token
    q.complete_canceled(st);
    return;
  }
  if (Clock::now() >= st->req.deadline) {
    q.complete_expired(st);
    return;
  }
  // Memory wait: carve the exactly-priced lease from the budgeted pool,
  // waiting for other requests' leases to return when it does not fit
  // right now. This is the run's only fallible acquisition; a throw here
  // (allocator failure within budget, or an injected buffer fault) routes
  // through the request's failure policy with C untouched.
  PoolLeaseT<T> lease;
  {
    std::unique_lock<std::mutex> lock(q.mu_);
    for (;;) {
      if (st->cancel.load(std::memory_order_relaxed)) {  // relaxed: cancel-token
        lock.unlock();  // handoff: complete outside mu_
        q.complete_canceled(st);
        return;
      }
      if (Clock::now() >= st->req.deadline) {
        // Waiting for workspace is still "queued": C untouched.
        lock.unlock();  // handoff: complete outside mu_
        q.complete_expired(st);
        return;
      }
      try {
        lease = q.pool_.try_acquire(st->need);
      } catch (...) {
        std::exception_ptr err = std::current_exception();
        lock.unlock();  // handoff: route the failure outside mu_
        if (st->req.on_failure == core::FailurePolicy::fallback) {
          q.run_shed(st);
          return;
        }
        const int code = QueueImplT<T>::info_of(err);
        q.complete(st, RequestStatus::failed, code, std::move(err));
        return;
      }
      if (lease) break;
      q.mem_cv_.wait_for(lock, q.opt_.watchdog_period);
    }
  }
  {
    std::lock_guard<std::mutex> guard(st->mu);
    st->status = RequestStatus::running;
  }
  core::DgefmmStats run_stats;
  int info = 0;
  try {
    info = dispatch_request<T>(st->req, lease.arena(), st->use_dag, st->plan,
                               &run_stats, &st->cancel);
  } catch (...) {
    lease.release();
    q.mem_cv_.notify_all();
    std::exception_ptr err = std::current_exception();
    const int code = QueueImplT<T>::info_of(err);
    q.complete(st,
               code == STRASSEN_INFO_CANCELED ? RequestStatus::canceled
                                              : RequestStatus::failed,
               code, std::move(err), /*degraded=*/false, &run_stats);
    return;
  }
  lease.release();
  q.mem_cv_.notify_all();
  // A recorded fallback inside the run means the driver degraded it to the
  // workspace-free path; surface it as a shed in the serving stats.
  const bool degraded = run_stats.fallbacks > 0;
  q.complete(st, RequestStatus::completed, info, nullptr, degraded,
             &run_stats);
}

}  // namespace detail

template <class T>
TicketT<T>::TicketT() = default;

template <class T>
TicketT<T>::TicketT(std::shared_ptr<detail::RequestStateT<T>> state)
    : state_(std::move(state)) {}

template <class T>
TicketT<T>::TicketT(TicketT&& other) noexcept = default;

template <class T>
TicketT<T>& TicketT<T>::operator=(TicketT&& other) noexcept = default;

template <class T>
TicketT<T>::~TicketT() = default;

template <class T>
bool TicketT<T>::valid() const {
  return state_ != nullptr;
}

template <class T>
RequestStatus TicketT<T>::status() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->status;
}

template <class T>
bool TicketT<T>::done() const {
  const RequestStatus s = status();
  return s != RequestStatus::queued && s != RequestStatus::running;
}

template <class T>
void TicketT<T>::cancel() {
  state_->cancel.store(true, std::memory_order_relaxed);  // relaxed: cancel-token
}

template <class T>
int TicketT<T>::wait() {
  detail::RequestStateT<T>& st = *state_;
  std::unique_lock<std::mutex> lock(st.mu);
  st.cv.wait(lock, [&st] {
    return st.status != RequestStatus::queued &&
           st.status != RequestStatus::running;
  });
  return st.info;
}

template <class T>
int TicketT<T>::info() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->info;
}

template <class T>
void TicketT<T>::get() {
  const int code = wait();
  if (code == 0) return;
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    err = state_->error;
  }
  if (err) std::rethrow_exception(err);
  throw Error("gefmm argument " + std::to_string(code) + " is invalid");
}

template <class T>
bool TicketT<T>::degraded() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->degraded;
}

template <class T>
core::DgefmmStats TicketT<T>::stats() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->run_stats;
}

template <class T>
double TicketT<T>::latency_ms() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->latency_ms;
}

template <class T>
QueueT<T>::QueueT(ServeOptions options)
    : impl_(std::make_unique<detail::QueueImplT<T>>(options)) {}

template <class T>
QueueT<T>::~QueueT() = default;  // the impl destructor drains and joins

template <class T>
TicketT<T> QueueT<T>::submit(const GemmRequestT<T>& request) {
  return impl_->submit(request);
}

template <class T>
ServingStats QueueT<T>::stats() const {
  return impl_->stats();
}

template <class T>
const ServeOptions& QueueT<T>::options() const {
  return impl_->options();
}

template <class T>
void QueueT<T>::shutdown() {
  impl_->shutdown();
}

template class TicketT<double>;
template class TicketT<float>;
template class QueueT<double>;
template class QueueT<float>;

}  // namespace strassen::serve
