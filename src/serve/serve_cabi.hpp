// Exception-free C entry points for the async serving front-end
// (serve/serve.hpp). Like core/cabi.hpp, no exception ever crosses these
// boundaries; every outcome is an info code from the table documented
// there (extended with the serving codes STRASSEN_INFO_REJECTED /
// _EXPIRED / _CANCELED / _BAD_HANDLE).
//
// Lifecycle: submit hands the request to a process-wide serving queue and
// returns a handle; wait blocks for the terminal outcome, returns its info
// code, and frees the handle; cancel requests cooperative cancellation
// (honored only while C is untouched). The double and float families use
// separate queues with separately typed workspace budgets, mirroring the
// element-typed arenas of the synchronous bindings.
//
// The process-wide queues are configured once, lazily, from environment
// knobs (read at first submit of each element type):
//
//   STRASSEN_SERVE_QUEUE_CAP  bounded queue capacity      (default 256)
//   STRASSEN_SERVE_POLICY     block | reject | shed       (default block)
//   STRASSEN_SERVE_BUDGET     workspace budget, elements  (default 0 =
//                             unlimited; admission never fails on memory)
//   STRASSEN_SERVE_WORKERS    serving worker threads      (default 2)
//
// C is written if and only if wait returns 0 for that handle: rejected,
// expired, and canceled requests leave beta*C semantics untouched, and a
// request degraded by load-shedding still produces the correct product
// (wait returns 0; the degradation is visible in the queue statistics).
#pragma once

#include <cstdint>

extern "C" {

/// Submits C <- alpha*op(A)*op(B) + beta*C to the process-wide double
/// serving queue. `deadline_ms` <= 0 means no deadline, otherwise the
/// request expires if still queued `deadline_ms` milliseconds from now.
/// On success returns 0 and stores the request handle in *handle; returns
/// 1/2 for an invalid trans argument, 15 when `handle` is null, or a
/// negative STRASSEN_INFO_* code when the submission itself failed. All
/// other outcomes -- including rejection and bad BLAS dimensions -- are
/// reported by strassen_dgefmm_wait. A/B/C must stay valid until then.
/// Under the `block` policy this call may wait for a queue slot; under
/// `shed` it may run the degraded GEMM on the calling thread.
[[nodiscard]] int strassen_dgefmm_submit(char transa, char transb,
                                         std::int64_t m, std::int64_t n,
                                         std::int64_t k, double alpha,
                                         const double* a, std::int64_t lda,
                                         const double* b, std::int64_t ldb,
                                         double beta, double* c,
                                         std::int64_t ldc,
                                         std::int64_t deadline_ms,
                                         std::int64_t* handle);

/// Blocks until the request reaches its terminal state, frees the handle,
/// and returns the final info code: 0 success (C written), a positive
/// bad-argument index, or a negative STRASSEN_INFO_* code (including the
/// serving codes). Returns STRASSEN_INFO_BAD_HANDLE for an unknown or
/// already-waited handle. Each handle can be waited exactly once.
[[nodiscard]] int strassen_dgefmm_wait(std::int64_t handle);

/// Requests cooperative cancellation: a queued request completes as
/// canceled; a running one aborts only if the cancel wins the race against
/// the first write to C, otherwise it completes normally. Returns 0 (the
/// request to cancel was registered) or STRASSEN_INFO_BAD_HANDLE. The
/// handle stays valid -- the outcome is observed via strassen_dgefmm_wait.
int strassen_dgefmm_cancel(std::int64_t handle);

/// ---- Prepacked operands (mkldnn gemm_pack style) -------------------------
///
/// Pack op(B) once, submit many requests against the image. The pack
/// handle is stamped with the active micro-kernel and the identity of the
/// source matrix; a submit that consults it under a different kernel, or
/// after B moved, is a hard miss that silently re-packs fresh (the product
/// stays correct either way). Pack handles and request handles live in
/// disjoint registries: a pack handle stays valid until freed and may back
/// any number of concurrent submissions.

/// Stores the element count of the packed image of op(B) (k x n after the
/// transpose) under the currently active kernel in *elems. Returns 0, or 1
/// for an invalid `transb`, 2/3 for a negative dimension, 15 when `elems`
/// is null. The count changes when the kernel changes (STRASSEN_KERNEL),
/// exactly as the handle stamp demands.
[[nodiscard]] int strassen_dgefmm_pack_b_size(char transb, std::int64_t k,
                                              std::int64_t n,
                                              std::int64_t* elems);

/// Packs op(B) into a fresh process-registry handle stored in
/// *pack_handle. Returns 0, the positive bad-argument codes of
/// strassen_dgefmm_pack_b_size, or STRASSEN_INFO_ALLOC when the image
/// buffer cannot be allocated. B is read once here and never retained;
/// only its address is stamped for the consult identity check, so B must
/// stay valid (and unmodified) while submissions consult the handle.
[[nodiscard]] int strassen_dgefmm_pack_b(char transb, std::int64_t k,
                                         std::int64_t n, const double* b,
                                         std::int64_t ldb,
                                         std::int64_t* pack_handle);

/// Frees a pack handle. Returns 0 or STRASSEN_INFO_BAD_HANDLE. Every
/// submission that carries the handle must be waited before freeing it --
/// the queue borrows the image, it never copies it.
int strassen_dgefmm_pack_free(std::int64_t pack_handle);

/// strassen_dgefmm_submit with a prepacked op(B): identical semantics plus
/// the pack consult on the serving hot path (shapes the cutoff sends
/// straight to GEMM). Returns STRASSEN_INFO_BAD_HANDLE when `pack_handle`
/// is unknown; `pack_handle` 0 means "no prepack" and behaves exactly like
/// strassen_dgefmm_submit.
[[nodiscard]] int strassen_dgefmm_submit_packed(
    char transa, char transb, std::int64_t m, std::int64_t n, std::int64_t k,
    double alpha, const double* a, std::int64_t lda, const double* b,
    std::int64_t ldb, double beta, double* c, std::int64_t ldc,
    std::int64_t pack_handle, std::int64_t deadline_ms, std::int64_t* handle);

/// Float twins of the prepack surface, stamped by the float kernel.
[[nodiscard]] int strassen_sgefmm_pack_b_size(char transb, std::int64_t k,
                                              std::int64_t n,
                                              std::int64_t* elems);
[[nodiscard]] int strassen_sgefmm_pack_b(char transb, std::int64_t k,
                                         std::int64_t n, const float* b,
                                         std::int64_t ldb,
                                         std::int64_t* pack_handle);
int strassen_sgefmm_pack_free(std::int64_t pack_handle);
[[nodiscard]] int strassen_sgefmm_submit_packed(
    char transa, char transb, std::int64_t m, std::int64_t n, std::int64_t k,
    float alpha, const float* a, std::int64_t lda, const float* b,
    std::int64_t ldb, float beta, float* c, std::int64_t ldc,
    std::int64_t pack_handle, std::int64_t deadline_ms, std::int64_t* handle);

/// Float twins of the serving entry points, backed by the float queue.
[[nodiscard]] int strassen_sgefmm_submit(char transa, char transb,
                                         std::int64_t m, std::int64_t n,
                                         std::int64_t k, float alpha,
                                         const float* a, std::int64_t lda,
                                         const float* b, std::int64_t ldb,
                                         float beta, float* c,
                                         std::int64_t ldc,
                                         std::int64_t deadline_ms,
                                         std::int64_t* handle);
[[nodiscard]] int strassen_sgefmm_wait(std::int64_t handle);
int strassen_sgefmm_cancel(std::int64_t handle);

/// Drains and destroys the process-wide serving queues: every accepted
/// request reaches its terminal state, the serving threads join, and all
/// unwaited handles are invalidated. A later submit lazily rebuilds the
/// queues (re-reading the environment knobs). Never throws.
void strassen_serve_shutdown(void);

}  // extern "C"
