// Robust async serving front-end for the GEFMM verticals (DESIGN.md §12).
//
// The library's entry points are synchronous: the caller owns the thread,
// the workspace, and the failure policy of one call at a time. A long-lived
// service multiplexing many callers needs more -- bounded memory under
// concurrent mixed-shape load, bounded queueing, deadlines, cancellation,
// and a degradation story when the machine is saturated. This module is
// that front-end, built from guarantees the lower layers already prove:
//
//  * Admission control is *exact*, not heuristic. Every request's peak
//    workspace is priced by the same predictors the drivers obey
//    (core::workspace_doubles / parallel plan_dag().workspace and the float
//    twins), and all serving workspace is carved from one budgeted
//    ArenaPoolT (support/arena_pool.hpp) whose invariant
//    in_use + cached <= budget holds under a single mutex. A request that
//    can never fit the budget is rejected (or shed) up front; one that
//    cannot fit *right now* waits for leases to return. The service
//    therefore cannot OOM through workspace, by construction.
//
//  * The submission queue is bounded (ServeOptions::queue_cap) with three
//    backpressure policies: `block` makes submit() wait for a slot,
//    `reject` completes the ticket exceptionally (AdmissionError), and
//    `shed` degrades the overflowing request to the workspace-free plain
//    GEMM baseline on the submitting thread -- the PR 2 fallback path as a
//    load-shedding valve, recorded in ServingStats::shed.
//
//  * Deadlines and cancellation are honored only while C is untouched. A
//    request whose deadline passes while it is still queued completes
//    exceptionally (DeadlineError) with C bit-identical; once running, it
//    runs to completion. cancel() is cooperative: queued requests are
//    swept by the watchdog, running task-DAG requests check the token at
//    node boundaries and abort (CanceledError) only if the cancel wins the
//    race against the first combine's write to C.
//
//  * Every terminal outcome is a typed, queryable state on the ticket --
//    never an exception on a serving thread -- and the queue keeps
//    counters plus p50/p99 latency reservoirs merged with the drivers'
//    DgefmmStats.
//
// The whole front-end is element-generic like the verticals underneath:
// QueueT<double> (Queue) serves dgefmm requests, QueueT<float> (QueueF)
// sgefmm requests, with separately typed budgets. The exception-free C ABI
// lives in serve/serve_cabi.hpp.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>

#include "core/types.hpp"
#include "support/config.hpp"

namespace strassen::serve {

/// What submit() does when the bounded queue is full (and when a request's
/// exact workspace need exceeds the pool budget outright).
enum class OverflowPolicy {
  block,   ///< submit() waits for a queue slot (or the deadline/cancel)
  reject,  ///< the ticket completes exceptionally with AdmissionError
  shed,    ///< degrade to the workspace-free plain GEMM on the submitting
           ///< thread and record the shed (correct product, no queueing)
};

/// Human-readable policy name for reports and the C-ABI env knob.
constexpr const char* overflow_policy_name(OverflowPolicy p) {
  switch (p) {
    case OverflowPolicy::block:
      return "block";
    case OverflowPolicy::reject:
      return "reject";
    case OverflowPolicy::shed:
      return "shed";
  }
  return "?";
}

/// Parses "block"/"reject"/"shed" (exact, lowercase). Returns false and
/// leaves `out` untouched on anything else.
bool parse_overflow_policy(const char* text, OverflowPolicy& out);

/// Lifecycle of one submitted request. Terminal states are everything
/// except queued/running; a ticket in a terminal state never changes again.
enum class RequestStatus {
  queued,     ///< admitted, waiting for a worker (or for workspace)
  running,    ///< a serving worker is executing the GEFMM call
  completed,  ///< C holds the correct product (info() == 0; possibly via a
              ///< recorded degradation -- see TicketT::degraded)
  rejected,   ///< refused at admission (queue full under `reject`, or the
              ///< exact workspace need exceeds the budget); C untouched
  expired,    ///< the deadline passed while still queued; C untouched
  canceled,   ///< cancel() was honored before the first write to C
  failed,     ///< a bad argument (positive info) or a strict-policy typed
              ///< failure (negative info); C untouched either way
};

/// Human-readable status name for diagnostics.
constexpr const char* request_status_name(RequestStatus s) {
  switch (s) {
    case RequestStatus::queued:
      return "queued";
    case RequestStatus::running:
      return "running";
    case RequestStatus::completed:
      return "completed";
    case RequestStatus::rejected:
      return "rejected";
    case RequestStatus::expired:
      return "expired";
    case RequestStatus::canceled:
      return "canceled";
    case RequestStatus::failed:
      return "failed";
  }
  return "?";
}

/// Serving clock. Deadlines are steady-clock instants so they are immune
/// to wall-clock adjustments on a long-lived server.
using Clock = std::chrono::steady_clock;

/// Deadline value meaning "no deadline".
inline constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

/// TicketT::info() value while the request has not reached a terminal
/// state. Terminal values follow the C-ABI convention (core/cabi.hpp):
/// 0 success, positive bad-argument index, negative STRASSEN_INFO_* code.
inline constexpr int kInfoPending = -1000;

/// One C <- alpha*op(A)*op(B) + beta*C request. The A/B/C storage is
/// caller-owned and must stay valid (and, for C, unaliased by other
/// requests) until the ticket reaches a terminal state.
template <class T>
struct GemmRequestT {
  Trans transa = Trans::no;
  Trans transb = Trans::no;
  index_t m = 0;
  index_t n = 0;
  index_t k = 0;
  T alpha = T(1);
  const T* a = nullptr;
  index_t lda = 1;
  const T* b = nullptr;
  index_t ldb = 1;
  T beta = T(0);
  T* c = nullptr;
  index_t ldc = 1;
  /// Cutoff and schedule, as in GefmmConfigT. The cutoff also decides the
  /// execution path: shapes it sends straight to GEMM run the serial
  /// driver even when prefer_parallel is set.
  core::CutoffCriterion cutoff =
      core::CutoffCriterion::paper_default(blas::active_machine());
  core::Scheme scheme = core::Scheme::automatic;
  /// Per-request failure policy for acquisition failures *inside* the
  /// admitted run (injected faults, allocator failure within budget):
  /// strict completes the ticket as failed with the typed error and C
  /// untouched; fallback degrades to the workspace-free GEMM and records a
  /// shed. Admission outcomes (reject/expire/cancel) are independent of
  /// this knob.
  core::FailurePolicy on_failure = core::FailurePolicy::strict;
  /// Use the task-DAG parallel driver when the shape supports recursion
  /// (the admission predictor prices whichever path will actually run).
  bool prefer_parallel = true;
  /// Steady-clock deadline; kNoDeadline disables it. Only enforced while
  /// the request is queued -- a request that started computing finishes.
  Clock::time_point deadline = kNoDeadline;
  /// Optional prepacked image of op(B) (blas/pack_operand.hpp), shared
  /// across many requests against the same weights. Borrowed: the handle
  /// (and the source matrix it stamps) must outlive the ticket's terminal
  /// state. Consulted exactly as GefmmConfigT::packed_b -- only where the
  /// admitted run reduces to a single top-level packed GEMM, which is the
  /// skinny-shape serving hot path; the task-DAG driver ignores it. The
  /// handle lives in caller memory, so admission pricing is unchanged: the
  /// streamed path draws no workspace, and a hard miss (kernel or source
  /// mismatch) re-packs fresh inside the same priced lease.
  const blas::PackedOperandT<T>* packed_b = nullptr;
};

using GemmRequest = GemmRequestT<double>;
using GemmRequestF = GemmRequestT<float>;

/// Queue construction options (element-type independent; the budget is
/// counted in elements of the queue's type).
struct ServeOptions {
  /// Bounded submission-queue capacity (clamped to >= 1).
  std::size_t queue_cap = 256;
  /// Backpressure policy when the queue is full or a request can never fit
  /// the budget.
  OverflowPolicy policy = OverflowPolicy::block;
  /// Workspace budget in elements for the queue's ArenaPoolT; 0 means
  /// effectively unlimited (admission never fails on memory).
  std::size_t budget_elements = 0;
  /// Serving worker threads (clamped to [1, 64]). Workers execute requests
  /// FIFO; the GEFMM calls underneath fan out onto the shared thread pool.
  int workers = 2;
  /// Completion-latency reservoir size per queue (clamped to >= 16).
  std::size_t latency_reservoir = 4096;
  /// Watchdog sweep period: the granularity at which queued requests are
  /// expired/canceled and blocked submitters re-check their deadlines.
  std::chrono::milliseconds watchdog_period{2};
};

/// Snapshot of a queue's serving statistics. Counters are cumulative since
/// construction; an inline shed is both a `shed` and a `completed` (it
/// produced a correct product), and a fallback degradation inside an
/// admitted run likewise counts in both.
struct ServingStats {
  std::size_t queue_depth = 0;       ///< requests waiting right now
  std::size_t peak_queue_depth = 0;  ///< high-water mark of queue_depth
  count_t submitted = 0;  ///< submit() calls observed
  count_t admitted = 0;   ///< requests that entered the bounded queue
  count_t completed = 0;  ///< terminal completed (info == 0)
  count_t rejected = 0;   ///< terminal rejected at admission
  count_t shed = 0;       ///< degradations to the workspace-free GEMM
                          ///< (inline admission sheds + in-run fallbacks)
  count_t expired = 0;    ///< terminal expired while queued
  count_t canceled = 0;   ///< terminal canceled before the first C write
  count_t failed = 0;     ///< terminal failed (bad argument or strict error)
  std::size_t budget_elements = 0;  ///< pool budget (elements)
  std::size_t pool_in_use = 0;      ///< elements currently leased
  std::size_t pool_cached = 0;      ///< elements retained for reuse
  std::size_t pool_peak = 0;        ///< peak in_use + cached (<= budget)
  std::size_t latency_samples = 0;  ///< completions in the reservoir window
  double p50_ms = 0.0;              ///< median submit-to-complete latency
  double p99_ms = 0.0;              ///< tail latency over the reservoir
  double max_ms = 0.0;              ///< slowest completion in the reservoir
  core::DgefmmStats gefmm;          ///< merged driver stats of admitted runs
};

namespace detail {
template <class T>
struct RequestStateT;
template <class T>
class QueueImplT;
}  // namespace detail

/// Handle to one submitted request: a future over the shared request
/// state. Move-only; destroying a ticket never cancels or blocks (the
/// request keeps running and the queue keeps its accounting).
template <class T>
class TicketT {
 public:
  TicketT();
  TicketT(TicketT&& other) noexcept;
  TicketT& operator=(TicketT&& other) noexcept;
  TicketT(const TicketT&) = delete;
  TicketT& operator=(const TicketT&) = delete;
  ~TicketT();

  /// True when the ticket refers to a request (default-constructed and
  /// moved-from tickets are invalid; every submit() returns a valid one).
  bool valid() const;

  /// Current lifecycle state (terminal states never change again).
  RequestStatus status() const;

  /// True once the request reached a terminal state.
  bool done() const;

  /// Requests cooperative cancellation. Honored only while C is untouched:
  /// queued requests complete as canceled; a running task-DAG request
  /// aborts at the next node boundary if no combine has written C yet;
  /// otherwise the request completes normally. Idempotent, never blocks.
  void cancel();

  /// Blocks until the terminal state and returns its info code: 0 success,
  /// positive bad-argument index, or a negative STRASSEN_INFO_* code
  /// (core/cabi.hpp; rejected/expired/canceled map to the serving codes).
  int wait();

  /// Terminal info code, or kInfoPending before the terminal state.
  int info() const;

  /// wait(), then rethrows the typed error of a non-success outcome
  /// (AdmissionError / DeadlineError / CanceledError / the stored driver
  /// exception; a positive bad-argument info throws plain Error).
  void get();

  /// True when the result was produced by the workspace-free degradation
  /// path (an inline shed or a recorded in-run fallback). Meaningful once
  /// done().
  bool degraded() const;

  /// Driver statistics of the admitted run (zero for inline sheds and
  /// non-completed outcomes). Meaningful once done().
  core::DgefmmStats stats() const;

  /// Submit-to-terminal latency in milliseconds. Meaningful once done().
  double latency_ms() const;

 private:
  friend class detail::QueueImplT<T>;
  explicit TicketT(std::shared_ptr<detail::RequestStateT<T>> state);

  std::shared_ptr<detail::RequestStateT<T>> state_;
};

using Ticket = TicketT<double>;
using TicketF = TicketT<float>;

/// Bounded async submission queue over the GEFMM verticals for element
/// type T. Owns its serving workers and watchdog; all public methods are
/// thread-safe. Destruction drains: accepted requests finish (or expire /
/// cancel) before the destructor returns, so tickets outliving the queue
/// are always terminal.
template <class T>
class QueueT {
 public:
  explicit QueueT(ServeOptions options = ServeOptions{});
  QueueT(const QueueT&) = delete;
  QueueT& operator=(const QueueT&) = delete;
  ~QueueT();

  /// Submits one request and returns its ticket (always valid). Admission
  /// control runs on the calling thread: argument validation via a
  /// zero-work driver call, exact workspace pricing, then the bounded
  /// queue per the overflow policy -- so submit() may block (policy
  /// `block`), run a shed GEMM inline (policy `shed`), or hand back an
  /// already-terminal ticket (rejected / expired / bad argument). Failure
  /// is reported through the ticket, never thrown, except std::bad_alloc
  /// for the ticket state itself.
  [[nodiscard]] TicketT<T> submit(const GemmRequestT<T>& request);

  /// Snapshot of the queue's counters, gauges, and latency percentiles.
  ServingStats stats() const;

  /// The options the queue was built with (after clamping).
  const ServeOptions& options() const;

  /// Stops accepting new requests, drains the queue (every accepted
  /// request reaches a terminal state), and joins the serving threads.
  /// Idempotent; called by the destructor.
  void shutdown();

 private:
  std::unique_ptr<detail::QueueImplT<T>> impl_;
};

using Queue = QueueT<double>;
using QueueF = QueueT<float>;

extern template class TicketT<double>;
extern template class TicketT<float>;
extern template class QueueT<double>;
extern template class QueueT<float>;

}  // namespace strassen::serve
