#include "serve/serve_cabi.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <utility>

#include "blas/pack_operand.hpp"
#include "core/cabi.hpp"
#include "serve/serve.hpp"
#include "support/errors.hpp"
#include "support/matrix.hpp"

namespace {

using namespace strassen;

// Parses a BLAS trans character; returns false on an invalid value.
bool parse_trans_char(char ch, Trans& out) {
  switch (ch) {
    case 'N':
    case 'n':
      out = Trans::no;
      return true;
    case 'T':
    case 't':
      out = Trans::transpose;
      return true;
    case 'C':
    case 'c':
      out = Trans::conj_transpose;
      return true;
    default:
      return false;
  }
}

long env_long(const char* name, long fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0') return fallback;
  return v;
}

serve::ServeOptions options_from_env() {
  serve::ServeOptions opt;
  const long cap = env_long("STRASSEN_SERVE_QUEUE_CAP", 256);
  if (cap > 0) opt.queue_cap = static_cast<std::size_t>(cap);
  const long budget = env_long("STRASSEN_SERVE_BUDGET", 0);
  if (budget > 0) opt.budget_elements = static_cast<std::size_t>(budget);
  const long workers = env_long("STRASSEN_SERVE_WORKERS", 2);
  if (workers > 0) opt.workers = static_cast<int>(workers);
  serve::OverflowPolicy policy;
  if (serve::parse_overflow_policy(std::getenv("STRASSEN_SERVE_POLICY"),
                                   policy)) {
    opt.policy = policy;
  }
  return opt;
}

// Process-wide serving state: the lazily built per-type queues and the
// handle registry mapping int64 handles to tickets. One mutex guards the
// registry and queue construction; the queues themselves are internally
// synchronized, so submit/wait hold the mutex only around map operations,
// never around a blocking wait.
struct ServeGlobal {
  std::mutex mu;
  std::int64_t next_handle = 1;
  std::unique_ptr<serve::Queue> queue_d;
  std::unique_ptr<serve::QueueF> queue_f;
  std::map<std::int64_t, serve::Ticket> tickets_d;
  std::map<std::int64_t, serve::TicketF> tickets_f;
  // Prepacked-operand registry, disjoint from the request handles: a pack
  // handle stays valid until freed, across any number of submissions and
  // even across strassen_serve_shutdown. Map nodes give the borrowed
  // PackedOperandT pointers stable addresses.
  std::map<std::int64_t, blas::PackedOperand> packs_d;
  std::map<std::int64_t, blas::PackedOperandF> packs_f;
};

ServeGlobal& serve_global() {
  static ServeGlobal* g = new ServeGlobal();  // never destroyed: threads in
                                              // the queues must not outlive
                                              // their owner at process exit
  return *g;
}

template <class T>
serve::QueueT<T>& queue_for(ServeGlobal& g) {
  if constexpr (std::is_same_v<T, float>) {
    if (!g.queue_f) g.queue_f.reset(new serve::QueueF(options_from_env()));
    return *g.queue_f;
  } else {
    if (!g.queue_d) g.queue_d.reset(new serve::Queue(options_from_env()));
    return *g.queue_d;
  }
}

template <class T>
std::map<std::int64_t, serve::TicketT<T>>& tickets_for(ServeGlobal& g) {
  if constexpr (std::is_same_v<T, float>) {
    return g.tickets_f;
  } else {
    return g.tickets_d;
  }
}

template <class T>
std::map<std::int64_t, blas::PackedOperandT<T>>& packs_for(ServeGlobal& g) {
  if constexpr (std::is_same_v<T, float>) {
    return g.packs_f;
  } else {
    return g.packs_d;
  }
}

// Maps an in-flight exception from submit machinery to its info code.
int submit_info_from_exception() {
  try {
    throw;
  } catch (const std::bad_alloc&) {
    return STRASSEN_INFO_ALLOC;
  } catch (const Error&) {
    return STRASSEN_INFO_INTERNAL;
  } catch (...) {
    return STRASSEN_INFO_UNKNOWN;
  }
}

// ---- Prepacked-operand registry operations --------------------------------

template <class T>
int pack_b_size_t(char transb, std::int64_t k, std::int64_t n,
                  std::int64_t* elems) noexcept {
  Trans tb;
  if (!parse_trans_char(transb, tb)) return 1;
  if (k < 0) return 2;
  if (n < 0) return 3;
  if (elems == nullptr) return 15;
  *elems = static_cast<std::int64_t>(blas::gefmm_pack_b_elements<T>(k, n));
  return 0;
}

template <class T>
int pack_b_t(char transb, std::int64_t k, std::int64_t n, const T* b,
             std::int64_t ldb, std::int64_t* pack_handle) noexcept {
  Trans tb;
  if (!parse_trans_char(transb, tb)) return 1;
  if (k < 0) return 2;
  if (n < 0) return 3;
  const std::int64_t stored_rows = is_trans(tb) ? n : k;
  if (b == nullptr && k > 0 && n > 0) return 4;
  if (ldb < std::max<std::int64_t>(stored_rows, 1)) return 5;
  if (pack_handle == nullptr) return 15;
  try {
    const BasicView<const T> bv =
        make_op_view(tb, b, is_trans(tb) ? n : k, is_trans(tb) ? k : n, ldb);
    blas::PackedOperandT<T> packed = blas::gefmm_pack_b<T>(bv);
    ServeGlobal& g = serve_global();
    std::lock_guard<std::mutex> lock(g.mu);
    const std::int64_t h = g.next_handle++;
    packs_for<T>(g).emplace(h, std::move(packed));
    *pack_handle = h;
    return 0;
  } catch (...) {
    return submit_info_from_exception();
  }
}

template <class T>
int pack_free_t(std::int64_t pack_handle) noexcept {
  try {
    ServeGlobal& g = serve_global();
    std::lock_guard<std::mutex> lock(g.mu);
    auto& packs = packs_for<T>(g);
    const auto it = packs.find(pack_handle);
    if (it == packs.end()) return STRASSEN_INFO_BAD_HANDLE;
    packs.erase(it);
    return 0;
  } catch (...) {
    return STRASSEN_INFO_UNKNOWN;
  }
}

template <class T>
int submit_t(char transa, char transb, std::int64_t m, std::int64_t n,
             std::int64_t k, T alpha, const T* a, std::int64_t lda,
             const T* b, std::int64_t ldb, T beta, T* c, std::int64_t ldc,
             std::int64_t pack_handle, std::int64_t deadline_ms,
             std::int64_t* handle) noexcept {
  serve::GemmRequestT<T> req;
  if (!parse_trans_char(transa, req.transa)) return 1;
  if (!parse_trans_char(transb, req.transb)) return 2;
  if (handle == nullptr) return 15;
  req.m = m;
  req.n = n;
  req.k = k;
  req.alpha = alpha;
  req.a = a;
  req.lda = lda;
  req.b = b;
  req.ldb = ldb;
  req.beta = beta;
  req.c = c;
  req.ldc = ldc;
  // The bindings mirror the synchronous C ABI's default: degrade instead
  // of failing when acquisition fails inside an admitted run.
  req.on_failure = core::FailurePolicy::fallback;
  if (deadline_ms > 0) {
    req.deadline =
        serve::Clock::now() + std::chrono::milliseconds(deadline_ms);
  }
  try {
    ServeGlobal& g = serve_global();
    serve::QueueT<T>* q;
    {
      std::lock_guard<std::mutex> lock(g.mu);
      if (pack_handle != 0) {
        auto& packs = packs_for<T>(g);
        const auto it = packs.find(pack_handle);
        if (it == packs.end()) return STRASSEN_INFO_BAD_HANDLE;
        // Map nodes are address-stable; the caller keeps the handle alive
        // until this submission's wait returns.
        req.packed_b = &it->second;
      }
      q = &queue_for<T>(g);
    }
    // submit may block (block policy) or run a shed inline; the registry
    // mutex is not held across it.
    serve::TicketT<T> ticket = q->submit(req);
    std::lock_guard<std::mutex> lock(g.mu);
    const std::int64_t h = g.next_handle++;
    tickets_for<T>(g).emplace(h, std::move(ticket));
    *handle = h;
    return 0;
  } catch (...) {
    return submit_info_from_exception();
  }
}

template <class T>
int wait_t(std::int64_t handle) noexcept {
  try {
    ServeGlobal& g = serve_global();
    serve::TicketT<T> ticket;
    {
      std::lock_guard<std::mutex> lock(g.mu);
      auto& tickets = tickets_for<T>(g);
      const auto it = tickets.find(handle);
      if (it == tickets.end()) return STRASSEN_INFO_BAD_HANDLE;
      ticket = std::move(it->second);
      tickets.erase(it);
    }
    return ticket.wait();  // blocks outside the registry mutex
  } catch (...) {
    return STRASSEN_INFO_UNKNOWN;
  }
}

template <class T>
int cancel_t(std::int64_t handle) noexcept {
  try {
    ServeGlobal& g = serve_global();
    std::lock_guard<std::mutex> lock(g.mu);
    auto& tickets = tickets_for<T>(g);
    const auto it = tickets.find(handle);
    if (it == tickets.end()) return STRASSEN_INFO_BAD_HANDLE;
    it->second.cancel();
    return 0;
  } catch (...) {
    return STRASSEN_INFO_UNKNOWN;
  }
}

}  // namespace

extern "C" {

int strassen_dgefmm_submit(char transa, char transb, std::int64_t m,
                           std::int64_t n, std::int64_t k, double alpha,
                           const double* a, std::int64_t lda, const double* b,
                           std::int64_t ldb, double beta, double* c,
                           std::int64_t ldc, std::int64_t deadline_ms,
                           std::int64_t* handle) {
  return submit_t<double>(transa, transb, m, n, k, alpha, a, lda, b, ldb,
                          beta, c, ldc, /*pack_handle=*/0, deadline_ms,
                          handle);
}

int strassen_dgefmm_pack_b_size(char transb, std::int64_t k, std::int64_t n,
                                std::int64_t* elems) {
  return pack_b_size_t<double>(transb, k, n, elems);
}

int strassen_dgefmm_pack_b(char transb, std::int64_t k, std::int64_t n,
                           const double* b, std::int64_t ldb,
                           std::int64_t* pack_handle) {
  return pack_b_t<double>(transb, k, n, b, ldb, pack_handle);
}

int strassen_dgefmm_pack_free(std::int64_t pack_handle) {
  return pack_free_t<double>(pack_handle);
}

int strassen_dgefmm_submit_packed(char transa, char transb, std::int64_t m,
                                  std::int64_t n, std::int64_t k, double alpha,
                                  const double* a, std::int64_t lda,
                                  const double* b, std::int64_t ldb,
                                  double beta, double* c, std::int64_t ldc,
                                  std::int64_t pack_handle,
                                  std::int64_t deadline_ms,
                                  std::int64_t* handle) {
  return submit_t<double>(transa, transb, m, n, k, alpha, a, lda, b, ldb,
                          beta, c, ldc, pack_handle, deadline_ms, handle);
}

int strassen_dgefmm_wait(std::int64_t handle) {
  return wait_t<double>(handle);
}

int strassen_dgefmm_cancel(std::int64_t handle) {
  return cancel_t<double>(handle);
}

int strassen_sgefmm_submit(char transa, char transb, std::int64_t m,
                           std::int64_t n, std::int64_t k, float alpha,
                           const float* a, std::int64_t lda, const float* b,
                           std::int64_t ldb, float beta, float* c,
                           std::int64_t ldc, std::int64_t deadline_ms,
                           std::int64_t* handle) {
  return submit_t<float>(transa, transb, m, n, k, alpha, a, lda, b, ldb,
                         beta, c, ldc, /*pack_handle=*/0, deadline_ms,
                         handle);
}

int strassen_sgefmm_pack_b_size(char transb, std::int64_t k, std::int64_t n,
                                std::int64_t* elems) {
  return pack_b_size_t<float>(transb, k, n, elems);
}

int strassen_sgefmm_pack_b(char transb, std::int64_t k, std::int64_t n,
                           const float* b, std::int64_t ldb,
                           std::int64_t* pack_handle) {
  return pack_b_t<float>(transb, k, n, b, ldb, pack_handle);
}

int strassen_sgefmm_pack_free(std::int64_t pack_handle) {
  return pack_free_t<float>(pack_handle);
}

int strassen_sgefmm_submit_packed(char transa, char transb, std::int64_t m,
                                  std::int64_t n, std::int64_t k, float alpha,
                                  const float* a, std::int64_t lda,
                                  const float* b, std::int64_t ldb, float beta,
                                  float* c, std::int64_t ldc,
                                  std::int64_t pack_handle,
                                  std::int64_t deadline_ms,
                                  std::int64_t* handle) {
  return submit_t<float>(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta,
                         c, ldc, pack_handle, deadline_ms, handle);
}

int strassen_sgefmm_wait(std::int64_t handle) {
  return wait_t<float>(handle);
}

int strassen_sgefmm_cancel(std::int64_t handle) {
  return cancel_t<float>(handle);
}

void strassen_serve_shutdown(void) {
  try {
    ServeGlobal& g = serve_global();
    std::unique_ptr<serve::Queue> qd;
    std::unique_ptr<serve::QueueF> qf;
    {
      std::lock_guard<std::mutex> lock(g.mu);
      qd = std::move(g.queue_d);
      qf = std::move(g.queue_f);
      g.tickets_d.clear();
      g.tickets_f.clear();
    }
    // Queue destructors drain and join outside the registry mutex, so a
    // concurrent submit cannot deadlock against the shutdown.
    qd.reset();
    qf.reset();
  } catch (...) {
    // Never throws across the C boundary.
  }
}

}  // extern "C"
