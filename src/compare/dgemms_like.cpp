#include "compare/dgemms_like.hpp"

#include "core/dgefmm.hpp"

namespace strassen::compare {

namespace {

core::DgefmmConfig to_core_config(const DgemmsConfig& cfg) {
  core::DgefmmConfig out;
  out.cutoff = core::CutoffCriterion::square_simple(cfg.tau);
  // The three-temporary schedule run with beta == 0 stands in for ESSL's
  // internal organization: a correct Winograd code with a footprint between
  // DGEFMM's 2/3 m^2 and the CRAY code's 7/3 m^2 (ESSL documents 1.40 m^2).
  out.scheme = core::Scheme::strassen2;
  out.odd = core::OddStrategy::dynamic_padding;
  out.workspace = cfg.workspace;
  out.stats = cfg.stats;
  return out;
}

}  // namespace

int dgemms(Trans transa, Trans transb, index_t m, index_t n, index_t k,
           const double* a, index_t lda, const double* b, index_t ldb,
           double* c, index_t ldc, const DgemmsConfig& cfg) {
  return core::dgefmm(transa, transb, m, n, k, 1.0, a, lda, b, ldb, 0.0, c,
                      ldc, to_core_config(cfg));
}

count_t dgemms_workspace_doubles(index_t m, index_t n, index_t k,
                                 const DgemmsConfig& cfg) {
  return core::dgefmm_workspace_doubles(m, n, k, 0.0, to_core_config(cfg));
}

}  // namespace strassen::compare
