#include "compare/sgemms_like.hpp"

#include <algorithm>

#include "blas/gemm.hpp"
#include "core/add_kernels.hpp"
#include "core/winograd.hpp"

namespace strassen::compare {

namespace {

using core::detail::arena_matrix;

struct SgCtx {
  double tau;
  Arena* arena;
  core::DgefmmStats* stats;
};

bool sg_stop(const SgCtx& ctx, index_t m, index_t k, index_t n) {
  return m < 2 || k < 2 || n < 2 || static_cast<double>(m) <= ctx.tau ||
         static_cast<double>(k) <= ctx.tau ||
         static_cast<double>(n) <= ctx.tau;
}

void sg_fmm(double alpha, ConstView a, ConstView b, double beta, MutView c,
            SgCtx& ctx);

// Zero-padded copy (dynamic padding, as the CRAY routine's recursion used).
MutView sg_padded_copy(Arena& arena, ConstView src, index_t mp, index_t np) {
  MutView dst = arena_matrix(arena, mp, np);
  fill(dst, 0.0);
  core::copy_into(src, dst.block(0, 0, src.rows, src.cols));
  return dst;
}

// Original-variant level: compute all seven products into their own
// temporaries, then run the eight combination passes (the memory-hungry
// organization of the CRAY code).
void sg_level(double alpha, ConstView a, ConstView b, double beta, MutView c,
              SgCtx& ctx) {
  const index_t m2 = a.rows / 2, k2 = a.cols / 2, n2 = b.cols / 2;
  ArenaScope scope(*ctx.arena);
  MutView t1 = arena_matrix(*ctx.arena, m2, k2);
  MutView t2 = arena_matrix(*ctx.arena, k2, n2);
  MutView p[7];
  for (auto& pi : p) pi = arena_matrix(*ctx.arena, m2, n2);

  ConstView a11 = a.block(0, 0, m2, k2), a12 = a.block(0, k2, m2, k2);
  ConstView a21 = a.block(m2, 0, m2, k2), a22 = a.block(m2, k2, m2, k2);
  ConstView b11 = b.block(0, 0, k2, n2), b12 = b.block(0, n2, k2, n2);
  ConstView b21 = b.block(k2, 0, k2, n2), b22 = b.block(k2, n2, k2, n2);
  MutView c11 = c.block(0, 0, m2, n2), c12 = c.block(0, n2, m2, n2);
  MutView c21 = c.block(m2, 0, m2, n2), c22 = c.block(m2, n2, m2, n2);

  core::add(a11, a22, t1);
  core::add(b11, b22, t2);
  sg_fmm(1.0, t1, t2, 0.0, p[0], ctx);  // P1
  core::add(a21, a22, t1);
  sg_fmm(1.0, t1, b11, 0.0, p[1], ctx);  // P2
  core::sub(b12, b22, t2);
  sg_fmm(1.0, a11, t2, 0.0, p[2], ctx);  // P3
  core::sub(b21, b11, t2);
  sg_fmm(1.0, a22, t2, 0.0, p[3], ctx);  // P4
  core::add(a11, a12, t1);
  sg_fmm(1.0, t1, b22, 0.0, p[4], ctx);  // P5
  core::sub(a21, a11, t1);
  core::add(b11, b12, t2);
  sg_fmm(1.0, t1, t2, 0.0, p[5], ctx);  // P6
  core::sub(a12, a22, t1);
  core::add(b21, b22, t2);
  sg_fmm(1.0, t1, t2, 0.0, p[6], ctx);  // P7

  // Combine: C <- beta*C + alpha*(...).
  core::scale(beta, c11);
  core::scale(beta, c12);
  core::scale(beta, c21);
  core::scale(beta, c22);
  core::axpy(alpha, p[0], c11);   // +P1
  core::axpy(alpha, p[3], c11);   // +P4
  core::axpy(-alpha, p[4], c11);  // -P5
  core::axpy(alpha, p[6], c11);   // +P7
  core::axpy(alpha, p[2], c12);   // +P3
  core::axpy(alpha, p[4], c12);   // +P5
  core::axpy(alpha, p[1], c21);   // +P2
  core::axpy(alpha, p[3], c21);   // +P4
  core::axpy(alpha, p[0], c22);   // +P1
  core::axpy(-alpha, p[1], c22);  // -P2
  core::axpy(alpha, p[2], c22);   // +P3
  core::axpy(alpha, p[5], c22);   // +P6
}

void sg_fmm(double alpha, ConstView a, ConstView b, double beta, MutView c,
            SgCtx& ctx) {
  const index_t m = c.rows, n = c.cols, k = a.cols;
  if (m == 0 || n == 0) return;
  if (alpha == 0.0 || sg_stop(ctx, m, k, n)) {
    blas::gemm_view(alpha, a, b, beta, c);
    if (ctx.stats != nullptr) ++ctx.stats->base_gemms;
    return;
  }
  if (ctx.stats != nullptr) ++ctx.stats->strassen_levels;
  if (((m | k | n) & 1) != 0) {
    const index_t mp = m + (m & 1), kp = k + (k & 1), np = n + (n & 1);
    ArenaScope scope(*ctx.arena);
    MutView ap = sg_padded_copy(*ctx.arena, a, mp, kp);
    MutView bp = sg_padded_copy(*ctx.arena, b, kp, np);
    MutView cp = sg_padded_copy(*ctx.arena, c, mp, np);
    if (ctx.stats != nullptr) ctx.stats->pad_copies += 3;
    sg_level(alpha, ap, bp, beta, cp, ctx);
    core::copy_into(cp.block(0, 0, m, n), c);
    return;
  }
  sg_level(alpha, a, b, beta, c, ctx);
}

count_t sg_ws(double tau, index_t m, index_t k, index_t n) {
  if (m == 0 || n == 0) return 0;
  if (m < 2 || k < 2 || n < 2 || static_cast<double>(m) <= tau ||
      static_cast<double>(k) <= tau || static_cast<double>(n) <= tau) {
    return 0;
  }
  count_t pad = 0;
  if (((m | k | n) & 1) != 0) {
    const index_t mp = m + (m & 1), kp = k + (k & 1), np = n + (n & 1);
    pad = static_cast<count_t>(mp) * kp + static_cast<count_t>(kp) * np +
          static_cast<count_t>(mp) * np;
    m = mp;
    k = kp;
    n = np;
  }
  const index_t m2 = m / 2, k2 = k / 2, n2 = n / 2;
  const count_t per = static_cast<count_t>(m2) * k2 +
                      static_cast<count_t>(k2) * n2 +
                      7 * static_cast<count_t>(m2) * n2;
  return pad + per + sg_ws(tau, m2, k2, n2);
}

}  // namespace

int sgemms(Trans transa, Trans transb, index_t m, index_t n, index_t k,
           double alpha, const double* a, index_t lda, const double* b,
           index_t ldb, double beta, double* c, index_t ldc,
           const SgemmsConfig& cfg) {
  if (m < 0) return 3;
  if (n < 0) return 4;
  if (k < 0) return 5;
  const index_t a_rows = is_trans(transa) ? k : m;
  const index_t b_rows = is_trans(transb) ? n : k;
  if (lda < (a_rows > 0 ? a_rows : 1)) return 8;
  if (ldb < (b_rows > 0 ? b_rows : 1)) return 10;
  if (ldc < (m > 0 ? m : 1)) return 13;
  if (m == 0 || n == 0) return 0;
  if (k == 0 || alpha == 0.0) {
    blas::dgemm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return 0;
  }

  const count_t need = sg_ws(cfg.tau, m, k, n);
  Arena local;
  Arena* arena = cfg.workspace;
  if (arena == nullptr) {
    local.reserve(static_cast<std::size_t>(need));
    arena = &local;
  } else if (arena->in_use() == 0 &&
             arena->capacity() < static_cast<std::size_t>(need)) {
    arena->reserve(static_cast<std::size_t>(need));
  }

  SgCtx ctx{cfg.tau, arena, cfg.stats};
  const ConstView av = make_op_view(transa, a, is_trans(transa) ? k : m,
                                    is_trans(transa) ? m : k, lda);
  const ConstView bv = make_op_view(transb, b, is_trans(transb) ? n : k,
                                    is_trans(transb) ? k : n, ldb);
  MutView cv = make_view(c, m, n, ldc);
  sg_fmm(alpha, av, bv, beta, cv, ctx);
  if (cfg.stats != nullptr) {
    cfg.stats->peak_workspace =
        std::max(cfg.stats->peak_workspace, arena->peak());
  }
  return 0;
}

count_t sgemms_workspace_doubles(index_t m, index_t n, index_t k,
                                 const SgemmsConfig& cfg) {
  return sg_ws(cfg.tau, m, k, n);
}

}  // namespace strassen::compare
