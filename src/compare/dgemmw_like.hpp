// DGEMMW-like comparator: a reimplementation of the public-domain GEMMW
// code of Douglas, Heroux, Slishman & Smith (J. Comp. Phys. 110, 1994) that
// the paper benchmarks against in Figures 5 and 6.
//
// Structural choices replicated from that code:
//  * Winograd variant with the two-temporary beta == 0 schedule,
//  * DYNAMIC PADDING for odd dimensions (not peeling),
//  * the simple cutoff criterion (eq. 11): stop when m, k, or n <= tau,
//  * general alpha/beta handled through a full m x n product temporary
//    (C_tmp = op(A) op(B), then C <- alpha*C_tmp + beta*C), giving the
//    mn + (mk + kn)/3 storage requirement of Table 1.
#pragma once

#include "core/types.hpp"
#include "support/config.hpp"

namespace strassen::compare {

struct DgemmwConfig {
  double tau = 199.0;                    ///< eq. 11 cutoff
  Arena* workspace = nullptr;            ///< optional caller arena
  core::DgefmmStats* stats = nullptr;    ///< optional statistics sink
};

/// C <- alpha * op(A) * op(B) + beta * C, GEMMW-style. Returns a BLAS-style
/// info code (0 on success), like dgefmm.
int dgemmw(Trans transa, Trans transb, index_t m, index_t n, index_t k,
           double alpha, const double* a, index_t lda, const double* b,
           index_t ldb, double beta, double* c, index_t ldc,
           const DgemmwConfig& cfg = DgemmwConfig{});

/// Peak workspace in doubles for the corresponding dgemmw call.
count_t dgemmw_workspace_doubles(index_t m, index_t n, index_t k, double beta,
                                 const DgemmwConfig& cfg = DgemmwConfig{});

}  // namespace strassen::compare
