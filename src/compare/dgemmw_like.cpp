#include "compare/dgemmw_like.hpp"

#include "core/add_kernels.hpp"
#include "core/dgefmm.hpp"
#include "core/winograd.hpp"

namespace strassen::compare {

namespace {

core::DgefmmConfig to_core_config(const DgemmwConfig& cfg) {
  core::DgefmmConfig out;
  out.cutoff = core::CutoffCriterion::square_simple(cfg.tau);
  out.scheme = core::Scheme::strassen1;
  out.odd = core::OddStrategy::dynamic_padding;
  out.stats = cfg.stats;
  return out;
}

}  // namespace

int dgemmw(Trans transa, Trans transb, index_t m, index_t n, index_t k,
           double alpha, const double* a, index_t lda, const double* b,
           index_t ldb, double beta, double* c, index_t ldc,
           const DgemmwConfig& cfg) {
  core::DgefmmConfig core_cfg = to_core_config(cfg);

  if (beta == 0.0) {
    // Pure multiply: exactly the beta == 0 two-temporary path.
    core_cfg.workspace = cfg.workspace;
    return core::dgefmm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta,
                        c, ldc, core_cfg);
  }

  // GEMMW's general path: C_tmp = op(A) op(B), then C <- alpha*C_tmp +
  // beta*C. The full product temporary is what gives the comparator its
  // larger (mn + ...) footprint.
  const int info = core::dgefmm(transa, transb, m, n, k, 0.0, a, lda, b, ldb,
                                1.0, c, ldc, core_cfg);  // argument check only
  if (info != 0) return info;
  if (m == 0 || n == 0) return 0;

  const count_t inner =
      core::dgefmm_workspace_doubles(m, n, k, 0.0, core_cfg);
  const count_t need = static_cast<count_t>(m) * n + inner;

  Arena local;
  Arena* arena = cfg.workspace;
  if (arena == nullptr) {
    local.reserve(static_cast<std::size_t>(need));
    arena = &local;
  } else if (arena->in_use() == 0 &&
             arena->capacity() < static_cast<std::size_t>(need)) {
    arena->reserve(static_cast<std::size_t>(need));
  }

  ArenaScope scope(*arena);
  MutView ctmp = core::detail::arena_matrix(*arena, m, n);
  core_cfg.workspace = arena;
  core::dgefmm_view(1.0, make_op_view(transa, a, is_trans(transa) ? k : m,
                                      is_trans(transa) ? m : k, lda),
                    make_op_view(transb, b, is_trans(transb) ? n : k,
                                 is_trans(transb) ? k : n, ldb),
                    0.0, ctmp, core_cfg);
  MutView cv = make_view(c, m, n, ldc);
  core::axpby(alpha, ctmp, beta, cv);
  if (cfg.stats != nullptr) {
    cfg.stats->peak_workspace =
        std::max(cfg.stats->peak_workspace, arena->peak());
  }
  return 0;
}

count_t dgemmw_workspace_doubles(index_t m, index_t n, index_t k, double beta,
                                 const DgemmwConfig& cfg) {
  const core::DgefmmConfig core_cfg = to_core_config(cfg);
  const count_t inner = core::dgefmm_workspace_doubles(m, n, k, 0.0, core_cfg);
  if (beta == 0.0) return inner;
  return static_cast<count_t>(m) * n + inner;
}

}  // namespace strassen::compare
