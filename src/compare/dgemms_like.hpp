// DGEMMS-like comparator: models IBM ESSL's Strassen routine, which the
// paper benchmarks against in Figure 3.
//
// The defining interface quirk (Section 4.1): "IBM's DGEMMS only performs
// the multiplication portion of DGEMM, C = op(A) x op(B). The update of C
// and scaling by alpha and beta must be done separately by the calling
// routine whenever alpha != 1.0 or beta != 0.0." The benchmark harness
// replicates the paper's timing methodology by adding that external
// scale-and-update loop around this call in the general case.
//
// Internally: Winograd variant, dynamic padding for odd sizes, simple
// square cutoff, and a slightly more temporary-hungry schedule than
// DGEFMM's (ESSL's documented footprint is ~1.40 m^2 vs DGEFMM's 2/3 m^2).
#pragma once

#include "core/types.hpp"
#include "support/config.hpp"

namespace strassen::compare {

struct DgemmsConfig {
  double tau = 127.0;                  ///< ESSL used a smaller fixed cutoff
  Arena* workspace = nullptr;
  core::DgefmmStats* stats = nullptr;
};

/// C <- op(A) * op(B). No alpha/beta -- the caller scales, as with ESSL.
/// Returns a BLAS-style info code.
int dgemms(Trans transa, Trans transb, index_t m, index_t n, index_t k,
           const double* a, index_t lda, const double* b, index_t ldb,
           double* c, index_t ldc, const DgemmsConfig& cfg = DgemmsConfig{});

/// Peak workspace in doubles for the corresponding dgemms call.
count_t dgemms_workspace_doubles(index_t m, index_t n, index_t k,
                                 const DgemmsConfig& cfg = DgemmsConfig{});

}  // namespace strassen::compare
