// SGEMMS-like comparator: models the CRAY scientific-library Strassen
// routine benchmarked in Figure 4.
//
// Structural choices replicated:
//  * Strassen's ORIGINAL 1969 construction (not the Winograd variant),
//  * compute-all-seven-products-then-combine schedule with one temporary
//    per product (the memory-hungry organization behind Table 1's
//    7 m^2 / 3 entry; with the two operand temporaries, this
//    reimplementation measures ~3 m^2),
//  * dynamic padding for odd dimensions,
//  * simple square cutoff criterion.
#pragma once

#include "core/types.hpp"
#include "support/config.hpp"

namespace strassen::compare {

struct SgemmsConfig {
  double tau = 129.0;  ///< the paper's measured C90 crossover
  Arena* workspace = nullptr;
  core::DgefmmStats* stats = nullptr;
};

/// C <- alpha * op(A) * op(B) + beta * C via the original Strassen
/// construction. Returns a BLAS-style info code.
int sgemms(Trans transa, Trans transb, index_t m, index_t n, index_t k,
           double alpha, const double* a, index_t lda, const double* b,
           index_t ldb, double beta, double* c, index_t ldc,
           const SgemmsConfig& cfg = SgemmsConfig{});

/// Peak workspace in doubles for the corresponding sgemms call.
count_t sgemms_workspace_doubles(index_t m, index_t n, index_t k,
                                 const SgemmsConfig& cfg = SgemmsConfig{});

}  // namespace strassen::compare
