#include "tuning/persist.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "blas/kernels.hpp"
#include "support/errors.hpp"

namespace strassen::tuning {

bool TunedCriteria::matches_active_kernel() const {
  return kernel.empty() || kernel == blas::active_kernel().name;
}

TunedCriteria tune_both_cases(const CrossoverOptions& opts) {
  TunedCriteria out;
  out.kernel = blas::active_kernel().name;
  out.elem = "f64";  // the crossover pipeline measures the double vertical
  CrossoverOptions beta0 = opts;
  beta0.alpha = 1.0;
  beta0.beta = 0.0;
  out.beta_zero = tune_hybrid_criterion(beta0);
  CrossoverOptions general = opts;
  general.alpha = 1.0;
  general.beta = 1.0;
  out.general = tune_hybrid_criterion(general);
  return out;
}

namespace {

void write_one(std::ostream& os, const char* prefix,
               const core::CutoffCriterion& c) {
  os << prefix << ".tau = " << c.tau << "\n";
  os << prefix << ".tau_m = " << c.tau_m << "\n";
  os << prefix << ".tau_k = " << c.tau_k << "\n";
  os << prefix << ".tau_n = " << c.tau_n << "\n";
}

}  // namespace

void save_criteria(const TunedCriteria& criteria, std::ostream& os) {
  os << "# DGEFMM tuned cutoff parameters (hybrid criterion, eq. 15)\n";
  os << "format = 1\n";
  if (!criteria.kernel.empty()) os << "kernel = " << criteria.kernel << "\n";
  os << "elem = " << criteria.elem << "\n";
  write_one(os, "beta_zero", criteria.beta_zero);
  write_one(os, "general", criteria.general);
}

bool save_criteria_file(const TunedCriteria& criteria,
                        const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  save_criteria(criteria, os);
  return static_cast<bool>(os);
}

TunedCriteria load_criteria(std::istream& is) {
  std::map<std::string, double> values;
  std::string kernel;
  std::string elem = "f64";  // files predating sgefmm are double-tuned
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key, eq;
    double value;
    if (!(ls >> key)) continue;  // blank line
    if (key == "kernel" || key == "elem") {
      // String-valued keys: the micro-kernel name and element type the
      // tuning ran under.
      std::string sval;
      if (!(ls >> eq) || eq != "=" || !(ls >> sval)) {
        throw Error("tuned-criteria file: malformed line " +
                    std::to_string(lineno) + ": '" + line + "'");
      }
      if (key == "elem" && sval != "f64" && sval != "f32") {
        throw Error("tuned-criteria file: line " + std::to_string(lineno) +
                    ": elem must be f64 or f32, got '" + sval + "'");
      }
      (key == "kernel" ? kernel : elem) = sval;
      continue;
    }
    if (!(ls >> eq) || eq != "=" || !(ls >> value)) {
      if (key == "format") continue;  // tolerate "format = 1"
      throw Error("tuned-criteria file: malformed line " +
                  std::to_string(lineno) + ": '" + line + "'");
    }
    values[key] = value;
  }

  TunedCriteria out;
  out.kernel = kernel;
  out.elem = elem;
  auto fill = [&](const std::string& prefix, core::CutoffCriterion& c) {
    auto get = [&](const std::string& name, double fallback) {
      const auto it = values.find(prefix + "." + name);
      return it == values.end() ? fallback : it->second;
    };
    c = core::CutoffCriterion::hybrid(
        get("tau", c.tau), get("tau_m", c.tau_m), get("tau_k", c.tau_k),
        get("tau_n", c.tau_n));
  };
  fill("beta_zero", out.beta_zero);
  fill("general", out.general);
  return out;
}

TunedCriteria load_criteria_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw Error("tuned-criteria file: cannot open '" + path + "'");
  }
  return load_criteria(is);
}

}  // namespace strassen::tuning
