#include "tuning/persist.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "blas/kernels.hpp"
#include "support/errors.hpp"

namespace strassen::tuning {

bool TunedCriteria::matches_active_kernel() const {
  // Hard miss on any disagreement, including an absent record: the
  // crossovers are properties of the stamped kernel's GEMM speed, and a
  // file that predates kernel dispatch was measured against whatever the
  // scalar path was then -- loading it under AVX2/AVX-512 dispatch would
  // mis-route every call near the crossover. Float-tuned files check
  // against the float table of the active family.
  if (kernel.empty()) return false;
  const char* active = elem == "f32" ? blas::active_kernel_f().name
                                     : blas::active_kernel().name;
  return kernel == active;
}

TunedCriteria tune_both_cases(const CrossoverOptions& opts) {
  TunedCriteria out;
  out.kernel = blas::active_kernel().name;
  out.elem = "f64";  // the crossover pipeline measures the double vertical
  CrossoverOptions beta0 = opts;
  beta0.alpha = 1.0;
  beta0.beta = 0.0;
  out.beta_zero = tune_hybrid_criterion(beta0);
  CrossoverOptions general = opts;
  general.alpha = 1.0;
  general.beta = 1.0;
  out.general = tune_hybrid_criterion(general);
  return out;
}

namespace {

void write_one(std::ostream& os, const char* prefix,
               const core::CutoffCriterion& c) {
  os << prefix << ".tau = " << c.tau << "\n";
  os << prefix << ".tau_m = " << c.tau_m << "\n";
  os << prefix << ".tau_k = " << c.tau_k << "\n";
  os << prefix << ".tau_n = " << c.tau_n << "\n";
}

}  // namespace

void save_criteria(const TunedCriteria& criteria, std::ostream& os) {
  os << "# DGEFMM tuned cutoff parameters (hybrid criterion, eq. 15)\n";
  os << "format = 1\n";
  if (!criteria.kernel.empty()) os << "kernel = " << criteria.kernel << "\n";
  os << "elem = " << criteria.elem << "\n";
  write_one(os, "beta_zero", criteria.beta_zero);
  write_one(os, "general", criteria.general);
  if (criteria.tau_fused > 0) os << "scheme.fused = " << criteria.tau_fused
                                 << "\n";
  if (criteria.tau_fused2 > 0) os << "scheme.fused2 = " << criteria.tau_fused2
                                  << "\n";
  if (criteria.tau_hybrid > 0) os << "scheme.hybrid = " << criteria.tau_hybrid
                                  << "\n";
  if (criteria.tau_s2 > 0) os << "scheme.s2 = " << criteria.tau_s2 << "\n";
  if (criteria.tau_dag > 0) os << "scheme.dag = " << criteria.tau_dag << "\n";
  if (criteria.threads > 0) os << "threads = " << criteria.threads << "\n";
}

bool save_criteria_file(const TunedCriteria& criteria,
                        const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  save_criteria(criteria, os);
  return static_cast<bool>(os);
}

TunedCriteria load_criteria(std::istream& is) {
  std::map<std::string, double> values;
  std::string kernel;
  std::string elem = "f64";  // files predating sgefmm are double-tuned
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key, eq;
    double value;
    if (!(ls >> key)) continue;  // blank line
    if (key == "kernel" || key == "elem") {
      // String-valued keys: the micro-kernel name and element type the
      // tuning ran under.
      std::string sval;
      if (!(ls >> eq) || eq != "=" || !(ls >> sval)) {
        throw Error("tuned-criteria file: malformed line " +
                    std::to_string(lineno) + ": '" + line + "'");
      }
      if (key == "elem" && sval != "f64" && sval != "f32") {
        throw Error("tuned-criteria file: line " + std::to_string(lineno) +
                    ": elem must be f64 or f32, got '" + sval + "'");
      }
      (key == "kernel" ? kernel : elem) = sval;
      continue;
    }
    if (!(ls >> eq) || eq != "=" || !(ls >> value)) {
      if (key == "format") continue;  // tolerate "format = 1"
      throw Error("tuned-criteria file: malformed line " +
                  std::to_string(lineno) + ": '" + line + "'");
    }
    values[key] = value;
  }

  TunedCriteria out;
  out.kernel = kernel;
  out.elem = elem;
  auto fill = [&](const std::string& prefix, core::CutoffCriterion& c) {
    auto get = [&](const std::string& name, double fallback) {
      const auto it = values.find(prefix + "." + name);
      return it == values.end() ? fallback : it->second;
    };
    c = core::CutoffCriterion::hybrid(
        get("tau", c.tau), get("tau_m", c.tau_m), get("tau_k", c.tau_k),
        get("tau_n", c.tau_n));
  };
  fill("beta_zero", out.beta_zero);
  fill("general", out.general);
  auto get_value = [&](const std::string& name, double fallback) {
    const auto it = values.find(name);
    return it == values.end() ? fallback : it->second;
  };
  out.tau_fused = get_value("scheme.fused", 0);
  out.tau_fused2 = get_value("scheme.fused2", 0);
  out.tau_hybrid = get_value("scheme.hybrid", 0);
  out.tau_s2 = get_value("scheme.s2", 0);
  out.tau_dag = get_value("scheme.dag", 0);
  out.threads = static_cast<int>(get_value("threads", 0));
  return out;
}

TunedCriteria load_criteria_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw Error("tuned-criteria file: cannot open '" + path + "'");
  }
  return load_criteria(is);
}

}  // namespace strassen::tuning
